package hfxmd

import (
	"context"
	"io"
	"time"

	"hfxmd/internal/basis"
	"hfxmd/internal/bgq"
	"hfxmd/internal/chem"
	"hfxmd/internal/ckpt"
	"hfxmd/internal/dft"
	"hfxmd/internal/fleet"
	"hfxmd/internal/hfx"
	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
	"hfxmd/internal/md"
	"hfxmd/internal/mprt"
	"hfxmd/internal/opt"
	"hfxmd/internal/respa"
	"hfxmd/internal/scf"
	"hfxmd/internal/sched"
	"hfxmd/internal/screen"
	"hfxmd/internal/server"
	"hfxmd/internal/store"
	"hfxmd/internal/torus"
	"hfxmd/internal/trace"
)

// ---------------------------------------------------------------------------
// Chemistry layer.

// Molecule is a set of atoms with charge and optional periodic cell.
type Molecule = chem.Molecule

// Atom is a nucleus with element and position (bohr).
type Atom = chem.Atom

// Vec3 is a Cartesian vector in bohr.
type Vec3 = chem.Vec3

// Element identifies a chemical element.
type Element = chem.Element

// Cell is an orthorhombic periodic box.
type Cell = chem.Cell

// Geometry builders for the paper's systems.
var (
	Water              = chem.Water
	WaterCluster       = chem.WaterCluster
	PeriodicWaterBox   = chem.PeriodicWaterBox
	Hydrogen           = chem.Hydrogen
	Helium             = chem.Helium
	LithiumHydride     = chem.LithiumHydride
	LithiumFluoride    = chem.LithiumFluoride
	Methane            = chem.Methane
	PropyleneCarbonate = chem.PropyleneCarbonate
	DimethylSulfoxide  = chem.DimethylSulfoxide
	LithiumPeroxide    = chem.LithiumPeroxide
	SolvatedPeroxide   = chem.SolvatedPeroxide
)

// ReadXYZ parses a molecule from XYZ (coordinates in ångström).
func ReadXYZ(r io.Reader) (*Molecule, error) { return chem.ReadXYZ(r) }

// WriteXYZ writes a molecule in XYZ format.
func WriteXYZ(w io.Writer, m *Molecule) error { return chem.WriteXYZ(w, m) }

// ---------------------------------------------------------------------------
// Electronic-structure layer.

// Matrix is the dense matrix type used throughout the library.
type Matrix = linalg.Matrix

// BasisSet is an instantiated basis.
type BasisSet = basis.Set

// BuildBasis instantiates a named built-in basis set ("STO-3G", "3-21G",
// "6-31G") on a molecule.
func BuildBasis(name string, mol *Molecule) (*BasisSet, error) { return basis.Build(name, mol) }

// AvailableBasisSets lists the built-in basis set names.
func AvailableBasisSets() []string { return basis.Available() }

// Functional is a density functional (HF, LDA, PBE, PBE0).
type Functional = dft.Functional

// The supported model chemistries.
type (
	// HF selects pure Hartree–Fock.
	HF = dft.HF
	// LDA selects SVWN5.
	LDA = dft.LDA
	// PBE selects the PBE GGA.
	PBE = dft.PBE
	// PBE0 selects the paper's hybrid: ¼ exact + ¾ PBE exchange.
	PBE0 = dft.PBE0
)

// FunctionalByName resolves "HF", "LDA", "PBE" or "PBE0".
func FunctionalByName(name string) (Functional, bool) { return dft.ByName(name) }

// SCFConfig configures an SCF run.
type SCFConfig = scf.Config

// SCFResult is a converged (or not) SCF state.
type SCFResult = scf.Result

// GridSpec controls the DFT integration grid.
type GridSpec = dft.GridSpec

// RunSCF performs a restricted SCF calculation.
func RunSCF(mol *Molecule, cfg SCFConfig) (*SCFResult, error) { return scf.Run(mol, cfg) }

// RunSCFContext is RunSCF with a cancellation context, polled once per
// SCF iteration: deadlines and client disconnects stop the solver
// between iterations, returning the partial result and the context
// error. The hfxd job service uses this to keep hung jobs from pinning
// its workers.
func RunSCFContext(ctx context.Context, mol *Molecule, cfg SCFConfig) (*SCFResult, error) {
	return scf.RunContext(ctx, mol, cfg)
}

// UHFResult is an unrestricted (open-shell) SCF result.
type UHFResult = scf.UnrestrictedResult

// RunUHF performs a spin-unrestricted Hartree–Fock calculation for the
// given multiplicity (2S+1; 0 picks the lowest consistent value). Needed
// for the open-shell intermediates of Li/air chemistry (O2⁻, LiO2).
func RunUHF(mol *Molecule, cfg SCFConfig, multiplicity int) (*UHFResult, error) {
	return scf.RunUnrestricted(mol, cfg, multiplicity)
}

// MullikenCharges returns per-atom partial charges for a converged result.
func MullikenCharges(res *SCFResult) []float64 {
	return scf.MullikenCharges(res, integrals.NewEngine(res.Set))
}

// DipoleMoment returns the dipole vector (a.u.) for a converged result.
func DipoleMoment(res *SCFResult) [3]float64 {
	return scf.Dipole(res, integrals.NewEngine(res.Set))
}

// ---------------------------------------------------------------------------
// Exchange layer (the paper's core contribution).

// ExchangeOptions configures the task-parallel HFX builder.
type ExchangeOptions = hfx.Options

// ExchangeReport describes one exchange build.
type ExchangeReport = hfx.Report

// ScreeningOptions controls integral screening (threshold ε etc.).
type ScreeningOptions = screen.Options

// PaperExchangeOptions returns the paper's production configuration
// (LPT balancing, density-weighted screening, vector kernels).
func PaperExchangeOptions() ExchangeOptions { return hfx.DefaultOptions() }

// BaselineExchangeOptions returns the state-of-the-art comparator.
func BaselineExchangeOptions() ExchangeOptions { return hfx.BaselineOptions() }

// DefaultScreening returns the production screening options (ε = 1e-8).
func DefaultScreening() ScreeningOptions { return screen.DefaultOptions() }

// ExchangeBuilder evaluates J and K matrices for a fixed geometry.
type ExchangeBuilder struct {
	b *hfx.Builder
}

// NewExchangeBuilder prepares the screened task decomposition for a
// molecule and basis.
func NewExchangeBuilder(mol *Molecule, basisName string, sopts ScreeningOptions, opts ExchangeOptions) (*ExchangeBuilder, error) {
	set, err := basis.Build(basisName, mol)
	if err != nil {
		return nil, err
	}
	eng := integrals.NewEngine(set)
	scr := screen.BuildPairList(eng, sopts)
	return &ExchangeBuilder{b: hfx.NewBuilder(eng, scr, opts)}, nil
}

// BuildJK evaluates the Coulomb and exchange matrices for density p.
//
// WARNING: the returned matrices ALIAS the builder's persistent pool
// buffers — they are valid only until the next BuildJK on this builder,
// which silently overwrites them in place. Holding both an old and a new
// result (as the UHF driver's alpha/beta builds must) requires copying
// the first before rebuilding; use BuildJKCopy when in doubt.
func (e *ExchangeBuilder) BuildJK(p *Matrix) (j, k *Matrix, rep ExchangeReport) {
	return e.b.BuildJK(p)
}

// BuildJKCopy is BuildJK returning freshly allocated copies of J and K
// that remain valid across subsequent builds. It trades one J/K-sized
// allocation per call for aliasing safety; hot loops that consume the
// result before the next build should keep using BuildJK.
func (e *ExchangeBuilder) BuildJKCopy(p *Matrix) (j, k *Matrix, rep ExchangeReport) {
	jj, kk, rep := e.b.BuildJK(p)
	return jj.Clone(), kk.Clone(), rep
}

// Close stops the builder's persistent worker pool. Optional (a
// finalizer covers forgotten builders) but releases goroutines promptly.
func (e *ExchangeBuilder) Close() { e.b.Close() }

// NBasis returns the basis dimension of the builder.
func (e *ExchangeBuilder) NBasis() int { return e.b.Eng.Basis.NBasis }

// ---------------------------------------------------------------------------
// Multi-rank runtime layer (mprt).

// CollectiveSchedule selects how mprt collectives move data: a binomial
// tree or the torus dimension-exchange.
type CollectiveSchedule = mprt.Schedule

// The available collective schedules.
const (
	ScheduleBinomial    = mprt.Binomial
	ScheduleDimExchange = mprt.DimExchange
)

// CollectiveScheduleByName resolves "binomial" or "dim-exchange".
func CollectiveScheduleByName(name string) (CollectiveSchedule, bool) {
	return mprt.ScheduleByName(name)
}

// DistExchangeOptions configures a rank-distributed Fock build.
type DistExchangeOptions = hfx.DistOptions

// DistExchangeReport describes one rank-distributed build: per-rank phase
// walls, collective traffic, and the measured-vs-modeled schedule steps.
type DistExchangeReport = hfx.DistReport

// DistExchangeBuilder runs the Fock build across an in-process mprt
// world: the screened task list is statically partitioned over
// torus-mapped ranks and the partial J/K are combined with deterministic
// collectives. Results are bitwise identical to an ExchangeBuilder with
// Threads = Ranks×ThreadsPerRank.
type DistExchangeBuilder struct {
	d *hfx.DistBuilder
}

// NewDistExchangeBuilder prepares the screened decomposition, the mprt
// world and the per-rank pools for a molecule and basis.
func NewDistExchangeBuilder(mol *Molecule, basisName string, sopts ScreeningOptions, dopts DistExchangeOptions) (*DistExchangeBuilder, error) {
	set, err := basis.Build(basisName, mol)
	if err != nil {
		return nil, err
	}
	eng := integrals.NewEngine(set)
	scr := screen.BuildPairList(eng, sopts)
	d, err := hfx.NewDistBuilder(eng, scr, dopts)
	if err != nil {
		return nil, err
	}
	return &DistExchangeBuilder{d: d}, nil
}

// BuildJK evaluates J and K across the ranks. Like
// ExchangeBuilder.BuildJK, the returned matrices alias builder-owned
// buffers and are valid only until the next BuildJK. The error reports a
// rank failure the builder could not recover from (an injected rank
// death is recovered internally and only shows up as rep.RankRestarts).
func (e *DistExchangeBuilder) BuildJK(p *Matrix) (j, k *Matrix, rep DistExchangeReport, err error) {
	return e.d.BuildJK(p)
}

// Close stops the rank pools and the mprt world.
func (e *DistExchangeBuilder) Close() { e.d.Close() }

// NBasis returns the basis dimension of the builder.
func (e *DistExchangeBuilder) NBasis() int { return e.d.Eng.Basis.NBasis }

// ---------------------------------------------------------------------------
// Dynamics layer.

// MDOptions configures a BOMD trajectory.
type MDOptions = md.Options

// Trajectory is an MD run result.
type Trajectory = md.Trajectory

// Frame is one trajectory snapshot.
type Frame = md.Frame

// ScanPoint is one point of a reaction-coordinate profile.
type ScanPoint = md.ScanPoint

// PotentialFunc maps a geometry to an energy.
type PotentialFunc = md.PotentialFunc

// SCFPotential adapts an SCF configuration into an MD potential.
func SCFPotential(cfg SCFConfig) PotentialFunc { return md.SCFPotential(cfg) }

// Store is the two-tier content-addressed store: a byte-budgeted hot
// in-memory LRU over CRC-framed on-disk segments. hfxd, aimd and the
// fleet harness share one via its directory.
type Store = store.Store

// StoreOptions configures OpenStore.
type StoreOptions = store.Options

// OpenStore opens (creating if needed) a tiered store rooted at dir,
// rebuilding the index from the segment files on disk.
func OpenStore(opts StoreOptions) (*Store, error) { return store.Open(opts) }

// StoredSCFPotential is SCFPotential with partial-hit prefix reuse
// through a tiered store: each SCF starts from the stored converged
// density of the previous same-composition geometry (the prior MD step)
// and stores its own back. Seeded runs converge to the same tolerance
// but not the same bits as cold ones. A nil store is the cold potential.
func StoredSCFPotential(cfg SCFConfig, st *Store) PotentialFunc {
	return md.StoredSCFPotential(cfg, st)
}

// RunMD integrates a Born–Oppenheimer trajectory.
func RunMD(mol *Molecule, pot PotentialFunc, opts MDOptions) (*Trajectory, error) {
	return md.Run(mol, pot, opts)
}

// DistanceScan computes a constrained approach/dissociation profile.
func DistanceScan(mol *Molecule, pot PotentialFunc, i, j, fragStart int, coords []float64) ([]ScanPoint, error) {
	return md.DistanceScan(mol, pot, i, j, fragStart, coords)
}

// OptimizeOptions configures geometry minimisation.
type OptimizeOptions = opt.Options

// OptimizeResult is a relaxed structure.
type OptimizeResult = opt.Result

// Optimize relaxes a geometry on the given potential surface (FIRE).
func Optimize(mol *Molecule, pot PotentialFunc, opts OptimizeOptions) (*OptimizeResult, error) {
	return opt.Minimize(mol, pot, opts)
}

// MDStepError reports a trajectory failure — SCF non-convergence, a
// checkpoint write error, an injected fault — at a specific MD step.
// Match with errors.As; Unwrap exposes the cause.
type MDStepError = md.StepError

// ---------------------------------------------------------------------------
// Multiple-time-step dynamics (r-RESPA) and cross-step reuse.

// RespaOptions configures a multiple-time-step trajectory: K inner
// steps on a cheap reference force per full-surface evaluation.
type RespaOptions = respa.Options

// RespaEvaluator is the full (slow) surface: energy plus forces.
type RespaEvaluator = respa.Evaluator

// RespaForceField is the cheap (fast) reference surface: forces only.
type RespaForceField = respa.ForceField

// The built-in cheap-reference modes of BuildRespaReference.
const (
	RespaRefSpring   = respa.RefSpring
	RespaRefLoose    = respa.RefLoose
	RespaRefBaseline = respa.RefBaseline
)

// RunRESPA integrates an r-RESPA trajectory: inner velocity Verlet on
// the cheap force at δt, the slow correction F_full − F_cheap applied
// every K-th step. Checkpoint/resume composes with CkptWriter exactly
// as RunMD's does and stays bitwise across boundaries.
func RunRESPA(mol *Molecule, full RespaEvaluator, cheap RespaForceField, opts RespaOptions) (*Trajectory, error) {
	return respa.Run(mol, full, cheap, opts)
}

// RespaFDEvaluator lifts a PotentialFunc into a full-surface evaluator
// via central finite differences (the same displacement order RunMD
// uses, so k=1 RESPA matches plain BOMD step for step).
func RespaFDEvaluator(pot PotentialFunc, h float64, workers int) RespaEvaluator {
	return respa.FDEvaluator(pot, h, workers)
}

// BuildRespaReference resolves a named cheap-force mode ("spring",
// "loose", "baseline") against the initial geometry and model
// chemistry, returning the force field and its canonical label.
func BuildRespaReference(mode string, mol *Molecule, cfg SCFConfig, fdStep float64, workers int) (RespaForceField, string, error) {
	return respa.BuildReference(mode, mol, cfg, fdStep, workers)
}

// MDSession carries SCF state across the consecutive geometries of one
// trajectory: ΔP warm starts from the previous step's density,
// screening-pair-list reuse under a max-displacement invalidation
// bound, and in-place exchange-builder rebinding.
type MDSession = md.Session

// MDSessionOptions configures cross-step reuse.
type MDSessionOptions = md.SessionOptions

// MDSessionStats counts a session's reuse traffic.
type MDSessionStats = md.SessionStats

// NewMDSession prepares a reuse session for one model chemistry.
func NewMDSession(cfg SCFConfig, opt MDSessionOptions) *MDSession { return md.NewSession(cfg, opt) }

// ForcesNSeeded computes central finite-difference forces with every
// displaced SCF warm-started from the central converged density.
// Returns the forces, the central result and the displaced-run SCF
// iteration total.
func ForcesNSeeded(mol *Molecule, cfg SCFConfig, h float64, workers int) ([]Vec3, *SCFResult, int64, error) {
	return md.ForcesNSeeded(mol, cfg, h, workers)
}

// ---------------------------------------------------------------------------
// Checkpoint/restart layer.

// CkptConfig configures a trajectory checkpoint writer: directory,
// snapshot cadence and ring size, optional fault plan and registry.
type CkptConfig = ckpt.Config

// CkptWriter makes every completed MD step durable: a write-ahead
// journal record per step plus a periodic ring of full snapshots. Set it
// as MDOptions.Ckpt.
type CkptWriter = ckpt.Writer

// CkptResume is a restored checkpoint: the most advanced durable state
// and how it was reached (snapshot/journal steps, replays, fallbacks).
type CkptResume = ckpt.Resume

// CkptFaultPlan injects crash, torn-write and corrupt-section faults
// into a CkptWriter (test and smoke harness).
type CkptFaultPlan = ckpt.FaultPlan

// MDState is the complete restartable state of one MD step.
type MDState = ckpt.MDState

// ErrNoCheckpoint is returned by LoadCkpt on a directory with no usable
// state.
var ErrNoCheckpoint = ckpt.ErrNoCheckpoint

// NewCkptWriter opens a checkpoint directory for writing.
func NewCkptWriter(cfg CkptConfig) (*CkptWriter, error) { return ckpt.NewWriter(cfg) }

// LoadCkpt restores the most advanced durable state from a checkpoint
// directory: the journal head, or the newest CRC-clean snapshot when the
// journal is behind; corrupt snapshots are skipped. reg may be nil.
func LoadCkpt(dir string, reg *TraceRegistry) (*CkptResume, error) { return ckpt.Load(dir, reg) }

// TraceRegistry is the shared counters/gauges/timers registry.
type TraceRegistry = trace.Registry

// NewTraceRegistry returns an empty registry.
func NewTraceRegistry() *TraceRegistry { return trace.NewRegistry() }

// MDSummary is the shared JSON encoding of a BOMD trajectory (cmd/aimd
// -json wire format).
type MDSummary = server.MDSummary

// SummarizeMD converts a trajectory into the shared wire encoding; wall
// is the integration wall time of this process.
func SummarizeMD(traj *Trajectory, wall time.Duration) *MDSummary {
	return server.SummarizeMD(traj, wall)
}

// BarrierHeight extracts the maximum relative energy of a profile.
func BarrierHeight(pts []ScanPoint) float64 { return md.BarrierHeight(pts) }

// ReactionEnergy returns E(last) − E(first) of a profile.
func ReactionEnergy(pts []ScanPoint) float64 { return md.ReactionEnergy(pts) }

// ---------------------------------------------------------------------------
// Machine layer (BG/Q simulator).

// Machine is a simulated BG/Q partition.
type Machine = bgq.Machine

// TorusShape is a 5-D torus partition shape.
type TorusShape = torus.Shape

// MachineWorkload describes one HFX build for the simulator.
type MachineWorkload = bgq.Workload

// SimOptions selects the simulated execution scheme.
type SimOptions = bgq.SimOptions

// SimResult is a simulated build outcome.
type SimResult = bgq.SimResult

// ScalePoint is one row of a strong-scaling study.
type ScalePoint = bgq.ScalePoint

// NewMachine creates a BG/Q partition of the given rack count (1–96).
func NewMachine(racks int) (*Machine, error) { return bgq.New(racks) }

// CondensedPhaseWorkload synthesises the screened HFX workload of an
// (H2O)_n liquid-density system (see DESIGN.md for the calibration).
func CondensedPhaseWorkload(nWater, taskTarget int, seed int64) *MachineWorkload {
	return bgq.CondensedPhaseWorkload(nWater, taskTarget, seed)
}

// BaselineWorkload synthesises the state-of-the-art pair-distributed
// decomposition of the same system.
func BaselineWorkload(nWater int, seed int64) *MachineWorkload {
	return bgq.BaselineWorkload(nWater, seed)
}

// PaperScheme returns the paper's simulated execution configuration.
func PaperScheme() SimOptions { return bgq.PaperScheme() }

// BaselineScheme returns the comparator's execution configuration.
func BaselineScheme() SimOptions { return bgq.BaselineScheme() }

// StrongScaling runs a workload across rack counts and reports speedup
// and parallel efficiency.
func StrongScaling(w *MachineWorkload, racks []int, opts SimOptions) ([]ScalePoint, error) {
	return bgq.StrongScaling(w, racks, opts)
}

// WeakScaling grows the simulated system proportionally with the machine
// and reports the per-build times (flat = ideal).
func WeakScaling(watersPerRack, tasksPerRack int, racks []int, seed int64, opts SimOptions) ([]ScalePoint, error) {
	return bgq.WeakScaling(watersPerRack, tasksPerRack, racks, seed, opts)
}

// SaturationThreads returns the largest useful thread count of a study.
func SaturationThreads(pts []ScalePoint) int { return bgq.SaturationThreads(pts) }

// MDCampaign describes a hybrid-functional MD production run for the
// feasibility analysis (the paper's motivating scenario).
type MDCampaign = bgq.MDCampaign

// CampaignResult summarises a simulated MD campaign.
type CampaignResult = bgq.CampaignResult

// FeasibilityTable reports the time per MD step across machine sizes.
func FeasibilityTable(c MDCampaign, racks []int, opts SimOptions) ([]CampaignResult, error) {
	return bgq.FeasibilityTable(c, racks, opts)
}

// ---------------------------------------------------------------------------
// Job service layer (hfxd).

// JobRequest is the JSON body submitted to an hfxd server.
type JobRequest = server.JobRequest

// JobResult is the JSON response of an hfxd job.
type JobResult = server.JobResult

// SCFSummary is the shared JSON encoding of an SCF result (hfxd wire
// format, also emitted by cmd/scfrun -json).
type SCFSummary = server.SCFSummary

// ScanSummary is the shared JSON encoding of a solvent-scan profile
// (hfxd wire format, also emitted by cmd/solvents -json).
type ScanSummary = server.ScanSummary

// ScanPointJSON is one point of a ScanSummary profile.
type ScanPointJSON = server.ScanPointJSON

// TrajSummary is the shared JSON encoding of a trajectory-campaign job
// (hfxd wire format): per-outer-step records, drift, reuse counters and
// the bitwise final-state fingerprint.
type TrajSummary = server.TrajSummary

// TrajStepJSON is one completed outer step of a TrajSummary.
type TrajStepJSON = server.TrajStepJSON

// SummarizeSCF converts a converged SCF result into the shared wire
// encoding.
func SummarizeSCF(res *SCFResult) *SCFSummary { return server.SummarizeSCF(res) }

// JobClient is the Go client for an hfxd server.
type JobClient = server.Client

// NewJobClient returns a client for the given hfxd base URL.
func NewJobClient(baseURL string) *JobClient { return server.NewClient(baseURL) }

// JobServerBusyError is the 429 admission rejection with its Retry-After
// backoff hint.
type JobServerBusyError = server.BusyError

// JobServerDrainingError is the typed 503 rejection from a draining
// server: unlike a busy rejection it is not worth retrying against the
// same instance — fail the job over to another one.
type JobServerDrainingError = server.DrainingError

// JobServerConfig tunes an embedded hfxd server.
type JobServerConfig = server.Config

// JobServer is the hfxd job service, embeddable behind any http.Server.
type JobServer = server.Server

// NewJobServer starts an hfxd worker pool; attach its Handler to an HTTP
// listener and stop it with Shutdown. The error paths are job-journal
// I/O (Config.JournalPath); a journal-less config cannot fail.
func NewJobServer(cfg JobServerConfig) (*JobServer, error) { return server.New(cfg) }

// Fleet is a cluster of hfxd instances behind a routing policy (see
// internal/fleet: round-robin, least-loaded, cost-weighted,
// cache-affinity).
type Fleet = fleet.Cluster

// FleetOptions configures NewFleet.
type FleetOptions = fleet.Options

// FleetPolicy selects a fleet routing strategy.
type FleetPolicy = fleet.Policy

// The available fleet routing policies.
const (
	FleetRoundRobin    = fleet.RoundRobin
	FleetLeastLoaded   = fleet.LeastLoaded
	FleetCostWeighted  = fleet.CostWeighted
	FleetCacheAffinity = fleet.CacheAffinity
)

// NewFleet boots a cluster of hfxd instances, each on its own loopback
// port, behind the configured routing policy.
func NewFleet(opts FleetOptions) (*Fleet, error) { return fleet.New(opts) }

// PredictMakespan is the exported cost-prediction hook: the modeled
// wall-clock of executing tasks with the given costs on nWorkers workers
// under the chosen balancing algorithm.
func PredictMakespan(alg BalanceAlgorithm, costs []float64, nWorkers int) float64 {
	return sched.PredictMakespan(alg, costs, nWorkers)
}

// BalanceAlgorithm names a static load-balancing strategy.
type BalanceAlgorithm = sched.Algorithm

// The available balancing strategies.
const (
	BalanceBlock      = sched.Block
	BalanceRoundRobin = sched.RoundRobin
	BalanceLPT        = sched.LPT
	BalanceSteal      = sched.Steal
)
