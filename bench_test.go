package hfxmd_test

// One benchmark per reconstructed table/figure of the paper (ids E1…E8)
// plus the design-choice ablations (A1…A4); see DESIGN.md for the mapping
// and EXPERIMENTS.md for paper-vs-measured numbers. Each benchmark prints
// its table once (first run) and attaches its headline number as a custom
// benchmark metric so `go test -bench .` regenerates every figure.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"hfxmd"
	"hfxmd/internal/bgq"
	"hfxmd/internal/boys"
	"hfxmd/internal/hfx"
	"hfxmd/internal/linalg"
	"hfxmd/internal/qpx"
	"hfxmd/internal/sched"
)

var printOnce sync.Map

// once prints a table a single time per benchmark name.
func once(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

var benchRacks = []int{1, 2, 4, 8, 16, 32, 64, 96}

// E1 — strong scaling of the paper scheme to 6,291,456 threads.
func BenchmarkE1StrongScaling(b *testing.B) {
	w := hfxmd.CondensedPhaseWorkload(2048, 1<<19, 1)
	var pts []hfxmd.ScalePoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = hfxmd.StrongScaling(w, benchRacks, hfxmd.PaperScheme())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(100*last.Efficiency, "%eff@6.29Mthreads")
	once("e1", func() {
		fmt.Printf("\n[E1] strong scaling, %s\n", w.Name)
		fmt.Printf("%6s %10s %12s %10s %10s\n", "racks", "threads", "time[s]", "speedup", "eff")
		for _, p := range pts {
			fmt.Printf("%6d %10d %12.4f %10.1f %9.1f%%\n",
				p.Racks, p.Threads, p.Result.Total, p.Speedup, 100*p.Efficiency)
		}
	})
}

// E2 — scalability improvement over the state of the art (paper: >20×).
func BenchmarkE2BaselineComparison(b *testing.B) {
	paper := hfxmd.CondensedPhaseWorkload(2048, 1<<19, 1)
	base := hfxmd.BaselineWorkload(2048, 1)
	var ratio float64
	var pPts, bPts []hfxmd.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		pPts, err = hfxmd.StrongScaling(paper, benchRacks, hfxmd.PaperScheme())
		if err != nil {
			b.Fatal(err)
		}
		bPts, err = hfxmd.StrongScaling(base, benchRacks, hfxmd.BaselineScheme())
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(hfxmd.SaturationThreads(pPts)) / float64(hfxmd.SaturationThreads(bPts))
	}
	b.ReportMetric(ratio, "x-scalability")
	once("e2", func() {
		fmt.Printf("\n[E2] useful threads: paper %d vs baseline %d -> %.0fx (paper claims >20x)\n",
			hfxmd.SaturationThreads(pPts), hfxmd.SaturationThreads(bPts), ratio)
		fmt.Printf("%6s | %12s %8s | %12s %8s\n", "racks", "paper[s]", "eff", "base[s]", "eff")
		for i := range pPts {
			fmt.Printf("%6d | %12.4f %7.1f%% | %12.4f %7.1f%%\n",
				pPts[i].Racks, pPts[i].Result.Total, 100*pPts[i].Efficiency,
				bPts[i].Result.Total, 100*bPts[i].Efficiency)
		}
	})
}

// E3 — time-to-solution reduction at fixed machine size (paper: >10×).
func BenchmarkE3TimeToSolution(b *testing.B) {
	paper := hfxmd.CondensedPhaseWorkload(2048, 1<<19, 1)
	base := hfxmd.BaselineWorkload(2048, 1)
	m, err := hfxmd.NewMachine(16)
	if err != nil {
		b.Fatal(err)
	}
	var tp, tb float64
	for i := 0; i < b.N; i++ {
		tp = m.Simulate(paper, hfxmd.PaperScheme()).Total
		tb = m.Simulate(base, hfxmd.BaselineScheme()).Total
	}
	b.ReportMetric(tb/tp, "x-time-to-solution@16racks")
	once("e3", func() {
		fmt.Printf("\n[E3] time to solution at 16 racks: paper %.4fs vs baseline %.4fs -> %.1fx (claim >10x)\n",
			tp, tb, tb/tp)
	})
}

// E4 — controllable accuracy: exchange-matrix error vs screening ε.
func BenchmarkE4ScreeningAccuracy(b *testing.B) {
	mol := hfxmd.WaterCluster(2, 5)
	density := func(n int) *hfxmd.Matrix {
		p := linalg.Identity(n)
		return p
	}
	build := func(eps float64) (*hfxmd.Matrix, hfxmd.ExchangeReport) {
		sopts := hfxmd.DefaultScreening()
		sopts.Threshold = eps
		opts := hfxmd.PaperExchangeOptions()
		opts.DensityWeighted = false
		eb, err := hfxmd.NewExchangeBuilder(mol, "STO-3G", sopts, opts)
		if err != nil {
			b.Fatal(err)
		}
		_, k, rep := eb.BuildJK(density(eb.NBasis()))
		return k, rep
	}
	exact, _ := build(1e-16)
	type row struct {
		eps      float64
		err      float64
		computed int64
		screened int64
	}
	var rows []row
	var err8 float64
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, eps := range []float64{1e-4, 1e-6, 1e-8, 1e-10} {
			k, rep := build(eps)
			e := linalg.MaxAbsDiff(k, exact)
			rows = append(rows, row{eps, e, rep.QuartetsComputed, rep.QuartetsScreened})
			if eps == 1e-8 {
				err8 = e
			}
		}
	}
	b.ReportMetric(err8, "maxK-err@1e-8")
	once("e4", func() {
		fmt.Printf("\n[E4] screening accuracy, (H2O)2/STO-3G\n%10s %14s %12s %12s\n",
			"ε", "max|ΔK|", "computed", "screened")
		for _, r := range rows {
			fmt.Printf("%10.0e %14.3e %12d %12d\n", r.eps, r.err, r.computed, r.screened)
		}
	})
}

// E5 — on-node extreme threading: the real goroutine execution of the
// task list with balance metrics (thread counts beyond the host's CPUs
// still exercise the scheduling/merging machinery).
func BenchmarkE5OnNodeThreading(b *testing.B) {
	mol := hfxmd.WaterCluster(4, 2)
	sopts := hfxmd.DefaultScreening()
	type row struct {
		threads int
		ns      int64
		balance float64
	}
	var rows []row
	for _, threads := range []int{1, 2, 4, 8, 16} {
		opts := hfxmd.PaperExchangeOptions()
		opts.Threads = threads
		opts.DensityWeighted = false
		eb, err := hfxmd.NewExchangeBuilder(mol, "STO-3G", sopts, opts)
		if err != nil {
			b.Fatal(err)
		}
		p := linalg.Identity(eb.NBasis())
		var rep hfxmd.ExchangeReport
		res := testing.Benchmark(func(sb *testing.B) {
			for i := 0; i < sb.N; i++ {
				_, _, rep = eb.BuildJK(p)
			}
		})
		rows = append(rows, row{threads, res.NsPerOp(), rep.BalanceRatio})
	}
	for i := 0; i < b.N; i++ { // the benchmark body proper: 1-thread build
		opts := hfxmd.PaperExchangeOptions()
		opts.Threads = 1
		eb, _ := hfxmd.NewExchangeBuilder(mol, "STO-3G", sopts, opts)
		eb.BuildJK(linalg.Identity(eb.NBasis()))
	}
	b.ReportMetric(rows[len(rows)-1].balance, "balance@16threads")
	once("e5", func() {
		fmt.Printf("\n[E5] on-node threading, (H2O)4 HFX build (host has limited CPUs; balance is the paper metric)\n")
		fmt.Printf("%8s %14s %10s\n", "threads", "ns/build", "balance")
		for _, r := range rows {
			fmt.Printf("%8d %14d %10.4f\n", r.threads, r.ns, r.balance)
		}
	})
}

// E6 — short-vector (QPX) exploitation: batched vs scalar Boys kernel and
// lane utilisation of the real screened build.
func BenchmarkE6Vectorization(b *testing.B) {
	// Lane utilisation from a real build.
	mol := hfxmd.WaterCluster(2, 3)
	opts := hfxmd.PaperExchangeOptions()
	opts.Threads = 1
	eb, err := hfxmd.NewExchangeBuilder(mol, "STO-3G", hfxmd.DefaultScreening(), opts)
	if err != nil {
		b.Fatal(err)
	}
	_, _, rep := eb.BuildJK(linalg.Identity(eb.NBasis()))

	// Kernel micro-comparison.
	scalar := testing.Benchmark(func(sb *testing.B) {
		out := make([]float64, 9)
		ts := [4]float64{0.3, 1.7, 8.9, 14.2}
		for i := 0; i < sb.N; i++ {
			for _, T := range ts {
				boys.Eval(8, T, out)
			}
		}
	})
	batched := testing.Benchmark(func(sb *testing.B) {
		out := make([]qpx.Vec4, 9)
		tv := qpx.Vec4{0.3, 1.7, 8.9, 14.2}
		for i := 0; i < sb.N; i++ {
			qpx.BoysBatch(8, tv, out)
		}
	})
	speedup := float64(scalar.NsPerOp()) / math.Max(1, float64(batched.NsPerOp()))
	for i := 0; i < b.N; i++ {
		out := make([]qpx.Vec4, 9)
		qpx.BoysBatch(8, qpx.Vec4{0.3, 1.7, 8.9, 14.2}, out)
	}
	b.ReportMetric(speedup, "x-boys-batch")
	b.ReportMetric(rep.LaneUtilization, "lane-util")
	once("e6", func() {
		fmt.Printf("\n[E6] vectorization: 4-wide Boys batch %.2fx vs scalar; lane utilisation %.2f on screened (H2O)2 build\n",
			speedup, rep.LaneUtilization)
	})
}

// E7 — PBE0 hybrid AIMD feasibility: energetics across functionals and
// BOMD energy conservation.
func BenchmarkE7PBE0(b *testing.B) {
	grid := hfxmd.GridSpec{NRadial: 32, NAngular: 26}
	type row struct {
		name   string
		energy float64
		iters  int
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, fn := range []string{"HF", "LDA", "PBE", "PBE0"} {
			f, _ := hfxmd.FunctionalByName(fn)
			res, err := hfxmd.RunSCF(hfxmd.Water(), hfxmd.SCFConfig{Functional: f, Grid: grid})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Converged {
				b.Fatalf("%s did not converge", fn)
			}
			rows = append(rows, row{fn, res.Energy, res.Iterations})
		}
	}
	// BOMD conservation on H2 (HF surface).
	traj, err := hfxmd.RunMD(hfxmd.Hydrogen(1.5), hfxmd.SCFPotential(hfxmd.SCFConfig{}),
		hfxmd.MDOptions{Steps: 5, Dt: 0.4})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(traj.EnergyDrift(), "Eh-drift-per-atom")
	once("e7", func() {
		fmt.Printf("\n[E7] water energetics by functional (STO-3G) + BOMD drift %.2e Eh/atom\n",
			traj.EnergyDrift())
		for _, r := range rows {
			fmt.Printf("%6s %16.8f Eh  (%d iterations)\n", r.name, r.energy, r.iters)
		}
	})
}

// A1 — load-balancer ablation on the machine simulator.
func BenchmarkA1Balancers(b *testing.B) {
	w := hfxmd.CondensedPhaseWorkload(1024, 1<<18, 4)
	m, err := hfxmd.NewMachine(16)
	if err != nil {
		b.Fatal(err)
	}
	algs := []sched.Algorithm{sched.Block, sched.RoundRobin, sched.LPT, sched.Steal}
	totals := make([]float64, len(algs))
	balances := make([]float64, len(algs))
	for i := 0; i < b.N; i++ {
		for k, alg := range algs {
			opts := hfxmd.PaperScheme()
			opts.Balancer = alg
			res := m.Simulate(w, opts)
			totals[k], balances[k] = res.Total, res.BalanceRatio
		}
	}
	b.ReportMetric(balances[2], "lpt-balance")
	once("a1", func() {
		fmt.Printf("\n[A1] balancer ablation, 16 racks, %s\n%14s %12s %10s\n", w.Name, "balancer", "time[s]", "balance")
		for k, alg := range algs {
			fmt.Printf("%14v %12.4f %10.4f\n", alg, totals[k], balances[k])
		}
	})
}

// A2 — reduction-algorithm ablation across partition sizes.
func BenchmarkA2Reductions(b *testing.B) {
	w := hfxmd.CondensedPhaseWorkload(1024, 1<<18, 4)
	racks := []int{1, 8, 96}
	algs := []bgq.ReduceAlgorithm{bgq.DimExchange, bgq.Binomial, bgq.Ring}
	table := make([][]float64, len(racks))
	for i := 0; i < b.N; i++ {
		for ri, r := range racks {
			m, err := hfxmd.NewMachine(r)
			if err != nil {
				b.Fatal(err)
			}
			table[ri] = make([]float64, len(algs))
			for ai, alg := range algs {
				opts := hfxmd.PaperScheme()
				opts.Reduce = alg
				opts.Overlap = 0
				table[ri][ai] = m.Simulate(w, opts).Reduction
			}
		}
	}
	b.ReportMetric(table[len(racks)-1][0], "dimexch-reduce-s@96racks")
	once("a2", func() {
		fmt.Printf("\n[A2] raw reduction seconds by algorithm\n%6s %14s %14s %14s\n",
			"racks", "dim-exchange", "binomial", "ring")
		for ri, r := range racks {
			fmt.Printf("%6d %14.5f %14.5f %14.5f\n", r, table[ri][0], table[ri][1], table[ri][2])
		}
	})
}

// A3 — cost-model fidelity: schedules built from noisy predictions
// executed against true costs.
func BenchmarkA3CostModel(b *testing.B) {
	w := hfxmd.CondensedPhaseWorkload(512, 1<<17, 6)
	m, err := hfxmd.NewMachine(8)
	if err != nil {
		b.Fatal(err)
	}
	noises := []float64{0, 0.1, 0.3, 0.6}
	results := make([]float64, len(noises))
	for i := 0; i < b.N; i++ {
		for k, amp := range noises {
			truth := make([]float64, len(w.TaskCosts))
			h := uint64(1234)
			for j, c := range w.TaskCosts {
				h ^= h << 13
				h ^= h >> 7
				h ^= h << 17
				truth[j] = c * (1 + amp*(float64(h%1000)/1000-0.5))
			}
			wl := &bgq.Workload{TaskCosts: w.TaskCosts, TrueCosts: truth,
				KMatrixBytes: w.KMatrixBytes, TouchedBytesPerTask: w.TouchedBytesPerTask,
				QuartetCost: w.QuartetCost}
			results[k] = m.Simulate(wl, hfxmd.PaperScheme()).Total
		}
	}
	b.ReportMetric(results[len(noises)-1]/results[0], "slowdown@60%err")
	once("a3", func() {
		fmt.Printf("\n[A3] cost-model fidelity, 8 racks\n%12s %12s %10s\n", "cost error", "time[s]", "vs exact")
		for k, amp := range noises {
			fmt.Printf("%11.0f%% %12.4f %10.3f\n", amp*100, results[k], results[k]/results[0])
		}
	})
}

// A4 — condensed-phase cutoffs: surviving work vs system size.
func BenchmarkA4Cutoff(b *testing.B) {
	type row struct {
		waters   int
		pairs    int
		quartets int
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, n := range []int{2, 4, 8, 16} {
			mol := hfxmd.WaterCluster(n, 1)
			eb, err := hfxmd.NewExchangeBuilder(mol, "STO-3G", hfxmd.DefaultScreening(), hfxmd.PaperExchangeOptions())
			if err != nil {
				b.Fatal(err)
			}
			opts := hfxmd.PaperExchangeOptions()
			opts.DensityWeighted = false
			_ = opts
			_, _, rep := eb.BuildJK(linalg.Identity(eb.NBasis()))
			rows = append(rows, row{n, rep.ScreeningStats.SchwarzSurvived, int(rep.QuartetsComputed)})
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.quartets)/float64(last.waters), "quartets-per-water@16")
	once("a4", func() {
		fmt.Printf("\n[A4] screened work growth with system size (ε=1e-8)\n%8s %10s %12s %16s\n",
			"waters", "pairs", "quartets", "quartets/water")
		for _, r := range rows {
			fmt.Printf("%8d %10d %12d %16.0f\n", r.waters, r.pairs, r.quartets, float64(r.quartets)/float64(r.waters))
		}
	})
}

// hfx cross-check kept at the facade level: the public builder must agree
// with the internal reference on a small system (run as a benchmark so it
// is exercised in the bench sweep too).
func BenchmarkFacadeBuilderMatchesReference(b *testing.B) {
	mol := hfxmd.Water()
	opts := hfxmd.PaperExchangeOptions()
	opts.DensityWeighted = false
	sopts := hfxmd.DefaultScreening()
	sopts.Threshold = 1e-14
	eb, err := hfxmd.NewExchangeBuilder(mol, "STO-3G", sopts, opts)
	if err != nil {
		b.Fatal(err)
	}
	p := linalg.Identity(eb.NBasis())
	var k *hfxmd.Matrix
	for i := 0; i < b.N; i++ {
		_, k, _ = eb.BuildJK(p)
	}
	_ = hfx.ExchangeEnergy // keep the internal import honest
	if k.At(0, 0) == 0 {
		b.Fatal("empty exchange matrix")
	}
}

// E1b — weak scaling: the system grows with the machine (the MD
// production scenario); ideal behaviour is a flat time per build.
func BenchmarkE1bWeakScaling(b *testing.B) {
	racks := []int{1, 4, 16, 64, 96}
	var pts []hfxmd.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = hfxmd.WeakScaling(256, 1<<14, racks, 11, hfxmd.PaperScheme())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(100*last.Efficiency, "%weak-eff@96racks")
	once("e1b", func() {
		fmt.Printf("\n[E1b] weak scaling (256 waters per rack)\n%6s %10s %12s %10s\n",
			"racks", "threads", "time[s]", "weak-eff")
		for _, p := range pts {
			fmt.Printf("%6d %10d %12.4f %9.1f%%\n", p.Racks, p.Threads, p.Result.Total, 100*p.Efficiency)
		}
	})
}

// E7b — open-shell feasibility: UHF on the Li/air intermediates.
func BenchmarkE7bOpenShell(b *testing.B) {
	var li, h *hfxmd.UHFResult
	for i := 0; i < b.N; i++ {
		var err error
		h, err = hfxmd.RunUHF(&hfxmd.Molecule{Name: "H", Atoms: []hfxmd.Atom{{El: 1}}}, hfxmd.SCFConfig{}, 2)
		if err != nil {
			b.Fatal(err)
		}
		li, err = hfxmd.RunUHF(&hfxmd.Molecule{Name: "Li", Atoms: []hfxmd.Atom{{El: 3}}}, hfxmd.SCFConfig{}, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(li.Energy, "E-Li-hartree")
	once("e7b", func() {
		fmt.Printf("\n[E7b] UHF doublets: E(H)=%.5f Eh (lit -0.46658), E(Li)=%.5f Eh (lit -7.3155); S²(H)=%.3f\n",
			h.Energy, li.Energy, h.S2)
	})
}

// E7c — PBE0 MD feasibility at machine scale: time per MD step of the
// flagship condensed-phase system, the paper's motivating quantity.
func BenchmarkE7cMDFeasibility(b *testing.B) {
	w := hfxmd.CondensedPhaseWorkload(2048, 1<<19, 1)
	c := hfxmd.MDCampaign{Steps: 10000, TimestepFS: 0.5, SCFItersPerStep: 6, Workload: w}
	racks := []int{1, 8, 32, 96}
	var rows []hfxmd.CampaignResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = hfxmd.FeasibilityTable(c, racks, hfxmd.PaperScheme())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].PerStep, "s-per-MD-step@96racks")
	once("e7c", func() {
		fmt.Printf("\n[E7c] PBE0 MD feasibility, %s, 6 SCF iters/step, 10000 steps (5 ps)\n", w.Name)
		fmt.Printf("%6s %10s %14s %16s\n", "racks", "threads", "s/MD-step", "5ps wall-clock")
		for k, r := range racks {
			fmt.Printf("%6d %10d %14.3f %13.1f h\n", r, rows[k].Threads, rows[k].PerStep, rows[k].Total/3600)
		}
	})
}
