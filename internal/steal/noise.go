package steal

import (
	"math"
	"time"
)

// NoisePlan injects cost-model mispredictions and stragglers into a
// build without touching the arithmetic: Perturb distorts the *placement
// model* (the costs the static balancer sees), so the assignment is
// computed from wrong predictions while the true work is unchanged, and
// StragglerDelay slows one rank's execution. Both are deterministic
// given the seed and — because the per-task noise depends only on the
// task index — independent of the rank count, so a noisy distributed
// run and its noisy single-rank reference share one placement.
type NoisePlan struct {
	// Seed drives the per-task multiplicative noise.
	Seed uint64
	// Pct is the multiplicative noise amplitude: each task's predicted
	// cost is scaled by a uniform factor in [1-Pct, 1+Pct]. 0 disables.
	Pct float64
	// ClassSkew multiplies the predicted cost of every task of a work
	// class by the given factor — the adversarial systematic mispredict
	// (e.g. "the model thinks pp quartets are 3x cheaper than they are").
	ClassSkew map[int]float64
	// StragglerSlow > 0 enables the straggler: rank StragglerRank sleeps
	// an extra StragglerSlow×wall after each unit (1.0 = the rank runs at
	// half speed). The slowdown moves wall-clock only, never bits.
	StragglerRank int
	StragglerSlow float64
}

// Perturb returns a copy of costs distorted by the plan: per-task
// multiplicative noise plus per-class skew. classes may be nil when no
// ClassSkew is configured. A nil plan returns costs unchanged (shared).
func (n *NoisePlan) Perturb(costs []float64, classes []int) []float64 {
	if n == nil || (n.Pct == 0 && len(n.ClassSkew) == 0) {
		return costs
	}
	out := make([]float64, len(costs))
	for i, c := range costs {
		f := 1.0
		if n.Pct > 0 {
			f += n.Pct * (2*unitRand(n.Seed, uint64(i)) - 1)
		}
		if len(n.ClassSkew) > 0 && classes != nil {
			if s, ok := n.ClassSkew[classes[i]]; ok {
				f *= s
			}
		}
		if f < 1e-3 {
			f = 1e-3 // keep the placement model positive
		}
		out[i] = c * f
	}
	return out
}

// StragglerDelay returns the extra sleep a rank owes after executing a
// unit that took wall. Zero for non-stragglers and nil plans.
func (n *NoisePlan) StragglerDelay(rank int, wall time.Duration) time.Duration {
	if n == nil || n.StragglerSlow <= 0 || rank != n.StragglerRank {
		return 0
	}
	return time.Duration(float64(wall) * n.StragglerSlow)
}

// unitRand maps (seed, i) to a uniform float64 in [0, 1) via two rounds
// of splitmix64 — stateless, so task i's noise never depends on the
// order tasks are drawn in.
func unitRand(seed, i uint64) float64 {
	x := seed ^ (i+1)*0x9e3779b97f4a7c15
	for r := 0; r < 2; r++ {
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return math.Float64frombits(0x3ff0000000000000|x>>12) - 1
}
