// Package steal implements the paper's work-stealing fallback as a
// deterministic runtime layered under hfx and over mprt/sched: the static
// LPT assignment stays the *initial* placement, but the schedule is
// over-decomposed into steal units (virtual worker slots) that idle ranks
// may migrate at run time. Determinism of the *numbers* is structural:
// every unit is executed sequentially into its own accumulator wherever
// it runs, and the combination of unit partials always follows the
// canonical binary reduction tree over slot indices — so a stolen
// schedule is bitwise identical to the purely static one, and the steal
// decisions (which are timing-dependent) can only move wall-clock, never
// bits.
//
// The package is physics-agnostic: it plans, queues and calibrates
// abstract units identified by task-cost arrays and integer work classes.
// hfx.StealBuilder supplies the quartet execution and the mprt
// collectives.
package steal

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"hfxmd/internal/sched"
	"hfxmd/internal/trace"
)

// Counter names the runtime records into its trace.Registry. They appear
// in DistReport metrics and, via the hfxd registry merge, in /metrics.
const (
	CounterAttempted   = "steal.attempted"         // steal probes (incl. empty victims)
	CounterSucceeded   = "steal.succeeded"         // probes that took a unit
	CounterMigrated    = "steal.migrated_blocks"   // units executed away from home
	CounterReclaimedNS = "steal.idle_reclaimed_ns" // wall idle ranks spent on stolen work
)

// Unit is one steal unit: a virtual worker slot of the global static
// schedule. Slot is its canonical reduction position, Tasks the task
// indices it executes in order, Pred its predicted cost under the
// placement model (which may be noisy or calibrated), Home the rank the
// static schedule assigned it to.
type Unit struct {
	Slot  int
	Tasks []int
	Pred  float64
	Home  int
}

// Plan is the over-decomposed static schedule: Ranks×SlotsPerRank units,
// unit u homed on rank u/SlotsPerRank. It is immutable after NewPlan;
// per-build mutable state lives in Deques.
type Plan struct {
	Units        []Unit
	Ranks        int
	SlotsPerRank int
	// Seed drives the victim-selection order (rank-count-independent).
	Seed uint64
}

// NewPlan slices a global assignment over ranks×slotsPerRank worker
// slots into steal units. The assignment must have exactly
// ranks×slotsPerRank workers.
func NewPlan(asn *sched.Assignment, ranks int, seed uint64) (*Plan, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("steal: need at least 1 rank, got %d", ranks)
	}
	if asn.NWorkers()%ranks != 0 {
		return nil, fmt.Errorf("steal: %d worker slots do not divide into %d ranks",
			asn.NWorkers(), ranks)
	}
	spr := asn.NWorkers() / ranks
	p := &Plan{
		Units:        make([]Unit, asn.NWorkers()),
		Ranks:        ranks,
		SlotsPerRank: spr,
		Seed:         seed,
	}
	for s := range p.Units {
		p.Units[s] = Unit{
			Slot:  s,
			Tasks: asn.Workers[s],
			Pred:  asn.Loads[s],
			Home:  s / spr,
		}
	}
	return p, nil
}

// PredLoads returns the per-rank predicted load under the plan's
// placement model (the quantity BalanceRatioPredicted is computed from).
func (p *Plan) PredLoads() []float64 {
	loads := make([]float64, p.Ranks)
	for _, u := range p.Units {
		loads[u.Home] += u.Pred
	}
	return loads
}

// VictimOrder returns the order in which a thief rank probes victims.
// The order is a pure function of (seed, thief, victim) pair hashes, so
// it is deterministic for a given seed and — because each pair's rank is
// independent of how many other ranks exist — stable under changes of
// the rank count: growing the world only inserts new victims without
// reshuffling the relative order of the old ones.
func VictimOrder(seed uint64, thief, ranks int) []int {
	order := make([]int, 0, ranks-1)
	for v := 0; v < ranks; v++ {
		if v != thief {
			order = append(order, v)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		hi, hj := pairHash(seed, thief, order[i]), pairHash(seed, thief, order[j])
		if hi != hj {
			return hi < hj
		}
		return order[i] < order[j]
	})
	return order
}

func pairHash(seed uint64, thief, victim int) uint64 {
	h := fnv.New64a()
	var b [24]byte
	put64 := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			b[off+i] = byte(v >> (8 * i))
		}
	}
	put64(0, seed)
	put64(8, uint64(thief))
	put64(16, uint64(victim))
	h.Write(b[:])
	return h.Sum64()
}

// Deques is the per-rank work queues of one build: each rank's own units
// ordered by descending predicted cost (LPT execution order), popped
// from the front by the owner and from the back — cheapest first, the
// classic steal heuristic that keeps migration units small — by thieves.
type Deques struct {
	plan   *Plan
	reg    *trace.Registry
	orders [][]int // victim probe order per thief, precomputed

	mu sync.Mutex
	q  [][]int // unit indices per rank; front = next own, back = next stolen

	exec []atomic.Int32 // executor rank per unit, written by whoever runs it
}

// NewDeques prepares the queues for a plan. Reset must be called before
// each build.
func NewDeques(p *Plan, reg *trace.Registry) *Deques {
	if reg == nil {
		reg = trace.NewRegistry()
	}
	d := &Deques{
		plan:   p,
		reg:    reg,
		orders: make([][]int, p.Ranks),
		q:      make([][]int, p.Ranks),
		exec:   make([]atomic.Int32, len(p.Units)),
	}
	for r := 0; r < p.Ranks; r++ {
		d.orders[r] = VictimOrder(p.Seed, r, p.Ranks)
	}
	for _, name := range []string{CounterAttempted, CounterSucceeded, CounterMigrated, CounterReclaimedNS} {
		reg.Counter(name)
	}
	d.Reset()
	return d
}

// Registry exposes the steal counters.
func (d *Deques) Registry() *trace.Registry { return d.reg }

// Reset refills every rank's deque from the plan: own units in
// descending predicted cost (slot index breaks ties), executor map
// cleared to the homes.
func (d *Deques) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for r := range d.q {
		d.q[r] = d.q[r][:0]
	}
	for u := range d.plan.Units {
		home := d.plan.Units[u].Home
		d.q[home] = append(d.q[home], u)
		d.exec[u].Store(int32(home))
	}
	for r := range d.q {
		q := d.q[r]
		sort.Slice(q, func(i, j int) bool {
			ui, uj := &d.plan.Units[q[i]], &d.plan.Units[q[j]]
			if ui.Pred != uj.Pred {
				return ui.Pred > uj.Pred
			}
			return ui.Slot < uj.Slot
		})
	}
}

// PopOwn takes the rank's next own unit (front of its deque), or -1 when
// the deque is empty.
func (d *Deques) PopOwn(rank int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	q := d.q[rank]
	if len(q) == 0 {
		return -1
	}
	u := q[0]
	d.q[rank] = q[1:]
	return u
}

// Steal probes the thief's victim order and takes the cheapest
// outstanding unit (back of the first non-empty victim deque), marking
// the thief as its executor. It returns -1 when every victim is empty.
func (d *Deques) Steal(thief int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, v := range d.orders[thief] {
		d.reg.Counter(CounterAttempted).Add(1)
		q := d.q[v]
		if len(q) == 0 {
			continue
		}
		u := q[len(q)-1]
		d.q[v] = q[:len(q)-1]
		d.exec[u].Store(int32(thief))
		d.reg.Counter(CounterSucceeded).Add(1)
		d.reg.Counter(CounterMigrated).Add(1)
		return u
	}
	return -1
}

// Executor returns the rank that executed (or will execute) unit u, as
// of the last Reset/Steal. Safe to read after the compute phase joined.
func (d *Deques) Executor(u int) int { return int(d.exec[u].Load()) }

// Migrated reports how many units of the last build ran away from home.
func (d *Deques) Migrated() int {
	n := 0
	for u := range d.plan.Units {
		if d.Executor(u) != d.plan.Units[u].Home {
			n++
		}
	}
	return n
}
