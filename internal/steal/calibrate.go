package steal

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Calibrator fits per-work-class correction factors from measured block
// walls: the online feedback loop the paper's static scheme assumes but
// a cold cost model lacks. Each Observe folds one (class, raw predicted
// cost, measured wall) sample into an exponential moving average of the
// measured/predicted ratio for that class; Scale then sharpens any raw
// cost vector into calibrated units, which feed sched.Balance (better
// placement), sched.PredictMakespan (better admission pricing and
// Retry-After) and the fleet's cost-weighted router.
//
// The calibrator is concurrency-safe and serializable (JSON via
// MarshalBinary/UnmarshalBinary), so it survives process restarts
// through internal/store or internal/ckpt.
type Calibrator struct {
	mu      sync.Mutex
	alpha   float64
	factors map[int]float64
	obs     map[int]int64
	// errEMA tracks |measured − calibrated prediction| / calibrated
	// prediction, updated *before* each factor update: the residual error
	// of the model as it was when the prediction was made.
	errEMA  float64
	errInit bool
	epoch   uint64

	// Window accumulators: per-build mean absolute relative error of the
	// calibrated and the raw (factor-1) model over the same samples,
	// reset by BeginWindow. The raw/calibrated pair is what makes the
	// improvement measurable on noisy walls — scheduling jitter hits both
	// alike, the systematic model bias only the raw one.
	winCal, winRaw float64
	winN           int64
}

// DefaultAlpha is the EMA weight used when NewCalibrator gets 0.
const DefaultAlpha = 0.25

// NewCalibrator returns an empty calibrator (all factors 1).
func NewCalibrator(alpha float64) *Calibrator {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	return &Calibrator{
		alpha:   alpha,
		factors: make(map[int]float64),
		obs:     make(map[int]int64),
	}
}

// Observe folds one measured block wall into the class's correction
// factor. predictedNS must be the *raw* (uncalibrated) cost-model
// prediction; measuredNS the wall that block actually took. Ratios are
// clamped to [1/64, 64] so one wild outlier (GC pause, page fault)
// cannot wreck a factor.
func (c *Calibrator) Observe(class int, predictedNS, measuredNS float64) {
	if c == nil || predictedNS <= 0 || measuredNS <= 0 {
		return
	}
	r := measuredNS / predictedNS
	if r < 1.0/64 {
		r = 1.0 / 64
	} else if r > 64 {
		r = 64
	}
	c.mu.Lock()
	f, ok := c.factors[class]
	if !ok {
		f = 1
	}
	// Residual against the prediction the calibrated model would have
	// made with the pre-update factor.
	cal := predictedNS * f
	e := (measuredNS - cal) / cal
	if e < 0 {
		e = -e
	}
	if !c.errInit {
		c.errEMA, c.errInit = e, true
	} else {
		c.errEMA += c.alpha * (e - c.errEMA)
	}
	eRaw := (measuredNS - predictedNS) / predictedNS
	if eRaw < 0 {
		eRaw = -eRaw
	}
	c.winCal += e
	c.winRaw += eRaw
	c.winN++
	if !ok {
		f = r // first sample snaps the factor onto the measurement
	} else {
		f += c.alpha * (r - f)
	}
	c.factors[class] = f
	c.obs[class]++
	c.epoch++
	c.mu.Unlock()
}

// Factor returns the class's correction factor (1 when unobserved).
func (c *Calibrator) Factor(class int) float64 {
	if c == nil {
		return 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.factors[class]; ok {
		return f
	}
	return 1
}

// SetFactor overrides one class factor — the restore/test seam.
func (c *Calibrator) SetFactor(class int, f float64) {
	c.mu.Lock()
	c.factors[class] = f
	c.epoch++
	c.mu.Unlock()
}

// Scale returns a calibrated copy of costs: costs[i]×Factor(classes[i]).
// With a nil calibrator (or nil classes) the input is returned unscaled.
func (c *Calibrator) Scale(classes []int, costs []float64) []float64 {
	if c == nil || classes == nil {
		return costs
	}
	c.mu.Lock()
	if len(c.factors) == 0 {
		c.mu.Unlock()
		return costs
	}
	out := make([]float64, len(costs))
	for i, cost := range costs {
		f, ok := c.factors[classes[i]]
		if !ok {
			f = 1
		}
		out[i] = cost * f
	}
	c.mu.Unlock()
	return out
}

// Epoch returns a monotone version that advances on every Observe and
// SetFactor — memoised consumers (the fleet price cache) re-price when
// it moves.
func (c *Calibrator) Epoch() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// BeginWindow starts a fresh error window (typically one build).
func (c *Calibrator) BeginWindow() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.winCal, c.winRaw, c.winN = 0, 0, 0
	c.mu.Unlock()
}

// WindowErr returns the mean absolute relative prediction error of the
// calibrated and the raw (uncalibrated) model over the samples observed
// since BeginWindow, plus the sample count. Zero errors when the window
// is empty.
func (c *Calibrator) WindowErr() (cal, raw float64, n int64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.winN == 0 {
		return 0, 0, 0
	}
	return c.winCal / float64(c.winN), c.winRaw / float64(c.winN), c.winN
}

// MeanAbsErr returns the EMA of the relative residual |measured −
// calibrated| / calibrated — the calibration-error gauge surfaced in
// /metrics and gated by the w1 experiment.
func (c *Calibrator) MeanAbsErr() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.errEMA
}

// Observations returns the total sample count across classes.
func (c *Calibrator) Observations() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, v := range c.obs {
		n += v
	}
	return n
}

// calibratorState is the serialized form.
type calibratorState struct {
	Version int                `json:"version"`
	Alpha   float64            `json:"alpha"`
	Factors map[string]float64 `json:"factors"`
	Obs     map[string]int64   `json:"obs"`
	ErrEMA  float64            `json:"errEma"`
	ErrInit bool               `json:"errInit"`
	Epoch   uint64             `json:"epoch"`
}

// MarshalBinary serializes the calibrator (JSON under the hood) so it
// can be persisted through internal/store or internal/ckpt.
func (c *Calibrator) MarshalBinary() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := calibratorState{
		Version: 1,
		Alpha:   c.alpha,
		Factors: make(map[string]float64, len(c.factors)),
		Obs:     make(map[string]int64, len(c.obs)),
		ErrEMA:  c.errEMA,
		ErrInit: c.errInit,
		Epoch:   c.epoch,
	}
	for k, v := range c.factors {
		st.Factors[fmt.Sprint(k)] = v
	}
	for k, v := range c.obs {
		st.Obs[fmt.Sprint(k)] = v
	}
	return json.Marshal(st)
}

// UnmarshalBinary restores a serialized calibrator in place.
func (c *Calibrator) UnmarshalBinary(data []byte) error {
	var st calibratorState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("steal: calibrator decode: %w", err)
	}
	if st.Version != 1 {
		return fmt.Errorf("steal: calibrator version %d not supported", st.Version)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if st.Alpha > 0 && st.Alpha <= 1 {
		c.alpha = st.Alpha
	}
	c.factors = make(map[int]float64, len(st.Factors))
	c.obs = make(map[int]int64, len(st.Obs))
	for k, v := range st.Factors {
		var class int
		if _, err := fmt.Sscanf(k, "%d", &class); err != nil {
			return fmt.Errorf("steal: calibrator class key %q: %w", k, err)
		}
		c.factors[class] = v
	}
	for k, v := range st.Obs {
		var class int
		if _, err := fmt.Sscanf(k, "%d", &class); err != nil {
			return fmt.Errorf("steal: calibrator class key %q: %w", k, err)
		}
		c.obs[class] = v
	}
	c.errEMA, c.errInit, c.epoch = st.ErrEMA, st.ErrInit, st.Epoch
	return nil
}
