package steal

import (
	"math"
	"sync"
	"testing"
	"time"

	"hfxmd/internal/sched"
	"hfxmd/internal/trace"
)

func testPlan(t *testing.T, nTasks, ranks, slotsPerRank int) *Plan {
	t.Helper()
	costs := make([]float64, nTasks)
	for i := range costs {
		costs[i] = float64(1 + i%7)
	}
	asn := sched.Balance(sched.LPT, costs, ranks*slotsPerRank)
	p, err := NewPlan(asn, ranks, 42)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanCoversEveryTaskOnce(t *testing.T) {
	p := testPlan(t, 100, 4, 4)
	seen := make(map[int]int)
	for _, u := range p.Units {
		if u.Home != u.Slot/p.SlotsPerRank {
			t.Fatalf("unit %d homed on %d, want %d", u.Slot, u.Home, u.Slot/p.SlotsPerRank)
		}
		for _, ti := range u.Tasks {
			seen[ti]++
		}
	}
	if len(seen) != 100 {
		t.Fatalf("plan covers %d distinct tasks, want 100", len(seen))
	}
	for ti, n := range seen {
		if n != 1 {
			t.Fatalf("task %d appears %d times", ti, n)
		}
	}
}

func TestVictimOrderDeterministicAndRankCountIndependent(t *testing.T) {
	a := VictimOrder(7, 2, 8)
	b := VictimOrder(7, 2, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("victim order not deterministic: %v vs %v", a, b)
		}
	}
	if len(a) != 7 {
		t.Fatalf("thief must not appear among %v", a)
	}
	// Rank-count independence: the relative order of victims present in
	// both worlds is preserved when the world grows.
	small := VictimOrder(7, 2, 4)
	large := VictimOrder(7, 2, 8)
	pos := make(map[int]int)
	for i, v := range large {
		pos[v] = i
	}
	for i := 0; i < len(small); i++ {
		for j := i + 1; j < len(small); j++ {
			if pos[small[i]] > pos[small[j]] {
				t.Fatalf("relative victim order reshuffled when ranks grew: %v vs %v", small, large)
			}
		}
	}
	// Different seeds must disagree somewhere (overwhelmingly likely).
	c := VictimOrder(8, 2, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seed does not influence victim order")
	}
}

func TestDequesStealMovesCheapestAndCounts(t *testing.T) {
	p := testPlan(t, 64, 2, 4)
	reg := trace.NewRegistry()
	d := NewDeques(p, reg)

	// Drain rank 0's own deque.
	own := 0
	for d.PopOwn(0) >= 0 {
		own++
	}
	if own != p.SlotsPerRank {
		t.Fatalf("rank 0 popped %d own units, want %d", own, p.SlotsPerRank)
	}
	// Now steal from rank 1: must take its cheapest outstanding unit.
	u := d.Steal(0)
	if u < 0 {
		t.Fatal("steal from loaded victim failed")
	}
	if home := p.Units[u].Home; home != 1 {
		t.Fatalf("stole unit homed on %d, want 1", home)
	}
	for _, v := range p.Units[4:] { // rank 1's units
		if v.Slot != u && v.Pred < p.Units[u].Pred {
			// The stolen one must be the minimum predicted cost still queued.
			t.Fatalf("stole unit pred %g but cheaper unit %d (%g) was queued",
				p.Units[u].Pred, v.Slot, v.Pred)
		}
	}
	if d.Executor(u) != 0 {
		t.Fatalf("executor of stolen unit = %d, want 0", d.Executor(u))
	}
	if got := reg.Counter(CounterSucceeded).Value(); got != 1 {
		t.Fatalf("steal.succeeded = %d, want 1", got)
	}
	if got := reg.Counter(CounterMigrated).Value(); got != 1 {
		t.Fatalf("steal.migrated_blocks = %d, want 1", got)
	}
	if d.Migrated() != 1 {
		t.Fatalf("Migrated() = %d, want 1", d.Migrated())
	}
	// Reset restores home execution.
	d.Reset()
	if d.Migrated() != 0 {
		t.Fatal("Reset did not clear the executor map")
	}
}

func TestDequesConcurrentDrainCoversAllUnits(t *testing.T) {
	p := testPlan(t, 200, 4, 8)
	d := NewDeques(p, nil)
	var mu sync.Mutex
	got := make(map[int]bool)
	var wg sync.WaitGroup
	for r := 0; r < p.Ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				u := d.PopOwn(r)
				if u < 0 {
					u = d.Steal(r)
				}
				if u < 0 {
					return
				}
				mu.Lock()
				got[u] = true
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	if len(got) != len(p.Units) {
		t.Fatalf("drained %d units, want %d", len(got), len(p.Units))
	}
}

func TestNoisePerturbDeterministicAndBounded(t *testing.T) {
	costs := []float64{100, 200, 300, 400}
	classes := []int{0, 0, 1, 1}
	n := &NoisePlan{Seed: 3, Pct: 0.2, ClassSkew: map[int]float64{1: 0.5}}
	a := n.Perturb(costs, classes)
	b := n.Perturb(costs, classes)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("noise not deterministic")
		}
		base := costs[i]
		if classes[i] == 1 {
			base *= 0.5
		}
		if a[i] < base*0.8-1e-9 || a[i] > base*1.2+1e-9 {
			t.Fatalf("perturbed cost %g outside +/-20%% of %g", a[i], base)
		}
		if a[i] == costs[i] && n.Pct > 0 {
			// Possible but vanishingly unlikely for all entries; checked below.
			continue
		}
	}
	var nilPlan *NoisePlan
	c := nilPlan.Perturb(costs, classes)
	for i := range c {
		if c[i] != costs[i] {
			t.Fatal("nil plan must be identity")
		}
	}
	if d := (&NoisePlan{StragglerRank: 1, StragglerSlow: 1.5}).StragglerDelay(1, time.Second); d != 1500*time.Millisecond {
		t.Fatalf("straggler delay %v, want 1.5s", d)
	}
	if d := (&NoisePlan{StragglerRank: 1, StragglerSlow: 1.5}).StragglerDelay(0, time.Second); d != 0 {
		t.Fatalf("non-straggler delayed by %v", d)
	}
}

func TestCalibratorConvergesAndReducesError(t *testing.T) {
	c := NewCalibrator(0.5)
	// The "machine" runs class 0 at 3x the raw prediction.
	var lastErr float64
	for i := 0; i < 20; i++ {
		c.Observe(0, 1000, 3000)
		lastErr = c.MeanAbsErr()
	}
	if f := c.Factor(0); math.Abs(f-3) > 1e-6 {
		t.Fatalf("factor converged to %g, want 3", f)
	}
	if lastErr > 0.01 {
		t.Fatalf("residual error %g did not decay", lastErr)
	}
	got := c.Scale([]int{0, 1}, []float64{10, 10})
	if math.Abs(got[0]-30) > 1e-9 || got[1] != 10 {
		t.Fatalf("Scale = %v, want [30 10]", got)
	}
	if c.Observations() != 20 {
		t.Fatalf("observations = %d, want 20", c.Observations())
	}
}

func TestCalibratorOutlierClamp(t *testing.T) {
	c := NewCalibrator(0.5)
	c.Observe(0, 1, 1e12) // absurd ratio must clamp at 64
	if f := c.Factor(0); f > 64 {
		t.Fatalf("outlier ratio not clamped: %g", f)
	}
	c.Observe(1, 0, 100) // non-positive predictions are ignored
	if f := c.Factor(1); f != 1 {
		t.Fatalf("bad observation changed factor to %g", f)
	}
}

func TestCalibratorSerializationRoundTrip(t *testing.T) {
	c := NewCalibrator(0.3)
	c.Observe(0, 1000, 2000)
	c.Observe(5, 1000, 500)
	c.Observe(5, 1000, 600)
	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := NewCalibrator(0)
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for _, class := range []int{0, 5, 99} {
		if a, b := c.Factor(class), r.Factor(class); a != b {
			t.Fatalf("class %d factor %g != restored %g", class, a, b)
		}
	}
	if c.MeanAbsErr() != r.MeanAbsErr() {
		t.Fatal("error EMA not restored")
	}
	if c.Epoch() != r.Epoch() {
		t.Fatal("epoch not restored")
	}
	if c.Observations() != r.Observations() {
		t.Fatal("observation counts not restored")
	}
	if err := r.UnmarshalBinary([]byte("{bad")); err == nil {
		t.Fatal("corrupt blob must fail")
	}
}

func TestCalibratorEpochAdvances(t *testing.T) {
	c := NewCalibrator(0)
	e0 := c.Epoch()
	c.Observe(0, 100, 200)
	if c.Epoch() == e0 {
		t.Fatal("Observe did not advance the epoch")
	}
	e1 := c.Epoch()
	c.SetFactor(2, 1.5)
	if c.Epoch() == e1 {
		t.Fatal("SetFactor did not advance the epoch")
	}
}
