package hfx

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"hfxmd/internal/linalg"
	"hfxmd/internal/mprt"
	"hfxmd/internal/sched"
	"hfxmd/internal/screen"
	"hfxmd/internal/steal"
	"hfxmd/internal/torus"
	"hfxmd/internal/trace"

	"hfxmd/internal/integrals"
)

// DistOptions configures a rank-distributed Fock build.
type DistOptions struct {
	// Ranks is the number of mprt ranks (required, ≥ 1).
	Ranks int
	// ThreadsPerRank is each rank's persistent-pool size. It must be a
	// power of two (default 1): the global schedule is balanced over
	// Ranks×ThreadsPerRank worker slots, and power-of-two rank blocks are
	// what lets the rank-local reduction trees compose with the mprt
	// cross-rank tree into exactly the single-rank reduction order.
	ThreadsPerRank int
	// Schedule selects the mprt collective schedule.
	Schedule mprt.Schedule
	// Shape optionally fixes the torus embedding (zero value:
	// torus.ShapeForNodes(Ranks)).
	Shape torus.Shape
	// Opts is the per-rank build configuration. Threads is ignored
	// (ThreadsPerRank governs), Dynamic is rejected (racy task placement
	// would break the bitwise determinism contract), and the semi-direct
	// ERI cache is disabled (it is a per-builder structure keyed to the
	// global assignment).
	Opts Options
	// FaultPlan optionally kills one rank during one build's compute
	// phase, exercising the restart path (nil injects nothing).
	FaultPlan *RankFaultPlan
	// Noise optionally distorts the placement model (the costs the
	// static balancer sees) and slows a straggler rank — mispredict
	// injection for balance experiments. Arithmetic is never touched,
	// but a noisy placement groups tasks differently, so the bitwise pin
	// against the single-rank Builder holds only at zero noise.
	Noise *steal.NoisePlan
	// Calibrator, when non-nil, sharpens the placement costs with the
	// calibrator's per-class factors (as of construction time) and makes
	// every rank pool observe measured task walls into it.
	Calibrator *steal.Calibrator
}

// RankFaultPlan injects a rank death into a DistBuilder: on the Build-th
// BuildJK call (1-based; 0 disables) rank Rank dies before computing its
// task block. The builder re-executes the dead rank's block and re-forms
// the collective; results stay bitwise pinned to the fault-free build.
type RankFaultPlan struct {
	Rank  int
	Build int
}

// DistReport describes one distributed Fock build.
type DistReport struct {
	Ranks          int
	ThreadsPerRank int
	Schedule       mprt.Schedule
	Shape          torus.Shape
	Wall           time.Duration

	// Per-rank phase walls and communication traffic for this build.
	RankCompute []time.Duration
	RankComm    []time.Duration
	RankBytes   []int64
	RankSends   []int64
	RankHops    []int64

	// Totals over ranks.
	CommBytes int64
	Sends     int64
	Hops      int64

	// MeasuredSteps counts the collective schedule steps this build's
	// reduce-scatter + allgather executed; PredictedSteps is the analytic
	// count for the same shape and schedule (3·L+1 for L tree levels),
	// the quantity the bgq machine model prices.
	MeasuredSteps  int64
	PredictedSteps int

	// RankLoads is the per-rank cost under the placement model the
	// balancer saw. BalanceRatioPredicted is max/mean of those loads;
	// BalanceRatioMeasured is max/mean of the RankCompute walls, so
	// mispredict damage is visible as the two diverging. BalanceRatio
	// keeps the historical (predicted) meaning.
	RankLoads             []float64
	BalanceRatio          float64
	BalanceRatioPredicted float64
	BalanceRatioMeasured  float64

	NTasks           int
	QuartetsComputed int64
	QuartetsScreened int64

	// RankRestarts counts ranks that died (fault injection) during this
	// build's compute phase and had their task block re-executed.
	RankRestarts int

	// Metrics is the mprt world's registry: lifetime traffic counters and
	// per-collective call/step counts.
	Metrics *trace.Registry
}

// String renders a one-line summary.
func (r DistReport) String() string {
	return fmt.Sprintf("ranks=%d threads/rank=%d sched=%v shape=%v wall=%v bytes=%d steps=%d/%d balance=%.4f",
		r.Ranks, r.ThreadsPerRank, r.Schedule, r.Shape, r.Wall,
		r.CommBytes, r.MeasuredSteps, r.PredictedSteps, r.BalanceRatio)
}

// DistBuilder executes the paper's rank decomposition of the Fock build:
// the screened task list is priced by the sched cost model and balanced
// once over Ranks×ThreadsPerRank global worker slots; each rank owns the
// contiguous block of ThreadsPerRank slots at rank×ThreadsPerRank and
// runs it on its own persistent pool; partial J/K are combined over the
// mprt world as one fused [J‖K] vector via ReduceScatter + Allgatherv.
//
// Bitwise contract: the result is identical — every bit of J and K — to
// a single-rank Builder with Threads = Ranks×ThreadsPerRank, for any
// rank count and either collective schedule. The rank-local pool reduce
// executes exactly the global reduction tree's strides below
// ThreadsPerRank (power-of-two alignment makes the restriction exact),
// and the mprt collectives sum in the canonical tree order over ranks,
// which is the same global tree's strides at and above ThreadsPerRank.
type DistBuilder struct {
	Eng *integrals.Engine
	Scr *screen.Result

	dopts DistOptions
	world *mprt.World
	pools []*pool
	tasks []Task
	asn   *sched.Assignment // global, over Ranks×ThreadsPerRank slots

	counts []int       // fused-vector segment counts for reduce-scatter
	fused  [][]float64 // per-rank fused [J‖K] staging buffers
	jOut   *linalg.Matrix
	kOut   *linalg.Matrix

	builds    int64 // BuildJK calls so far (fault-plan trigger)
	closeOnce sync.Once
}

// NewDistBuilder prepares the global decomposition, the mprt world and
// the per-rank pools.
func NewDistBuilder(eng *integrals.Engine, scr *screen.Result, dopts DistOptions) (*DistBuilder, error) {
	if dopts.Ranks < 1 {
		return nil, fmt.Errorf("hfx: need at least 1 rank, got %d", dopts.Ranks)
	}
	if dopts.ThreadsPerRank <= 0 {
		dopts.ThreadsPerRank = 1
	}
	if t := dopts.ThreadsPerRank; t&(t-1) != 0 {
		return nil, fmt.Errorf("hfx: threads per rank must be a power of two, got %d", t)
	}
	if dopts.Opts.Dynamic {
		return nil, fmt.Errorf("hfx: dynamic dispatch is incompatible with the distributed build's bitwise determinism contract")
	}
	opts := dopts.Opts
	opts.Threads = dopts.ThreadsPerRank
	opts.CacheBudgetBytes = 0 // the ERI cache is per-builder; disabled per rank
	opts.Calibrator = dopts.Calibrator
	if opts.Cost == (CostModel{}) {
		opts.Cost = DefaultCostModel()
	}
	dopts.Opts = opts

	world, err := mprt.NewWorld(mprt.Options{
		Ranks:    dopts.Ranks,
		Schedule: dopts.Schedule,
		Shape:    dopts.Shape,
	})
	if err != nil {
		return nil, err
	}
	dopts.Shape = world.Shape()

	tasks := GenerateTasks(eng.Basis, scr.Pairs, opts.Cost, opts.Granule)
	costs := TaskCosts(tasks)
	placed := costs
	if dopts.Calibrator != nil || dopts.Noise != nil {
		classes := TaskClasses(eng.Basis, scr.Pairs, tasks)
		placed = dopts.Calibrator.Scale(classes, costs)
		placed = dopts.Noise.Perturb(placed, classes)
	}
	asn := sched.Balance(opts.Balancer, placed, dopts.Ranks*dopts.ThreadsPerRank)

	d := &DistBuilder{
		Eng:   eng,
		Scr:   scr,
		dopts: dopts,
		world: world,
		pools: make([]*pool, dopts.Ranks),
		tasks: tasks,
		asn:   asn,
	}
	for r := 0; r < dopts.Ranks; r++ {
		lo := r * dopts.ThreadsPerRank
		d.pools[r] = newPool(eng, scr, opts, tasks, costs, asn.Slice(lo, lo+dopts.ThreadsPerRank))
	}

	n := eng.Basis.NBasis
	nn := n * n
	d.counts = make([]int, dopts.Ranks)
	for r := range d.counts {
		d.counts[r] = 2 * nn / dopts.Ranks
		if r < 2*nn%dopts.Ranks {
			d.counts[r]++
		}
	}
	d.fused = make([][]float64, dopts.Ranks)
	for r := range d.fused {
		d.fused[r] = make([]float64, 2*nn)
	}
	d.jOut = linalg.NewSquare(n)
	d.kOut = linalg.NewSquare(n)
	runtime.SetFinalizer(d, (*DistBuilder).Close)
	return d, nil
}

// Close stops every rank pool and the mprt world. Idempotent; a
// finalizer calls it if the builder is collected without Close.
func (d *DistBuilder) Close() {
	d.closeOnce.Do(func() {
		for _, pl := range d.pools {
			pl.close()
		}
		d.world.Close()
	})
	runtime.SetFinalizer(d, nil)
}

// World exposes the underlying mprt world (read-only: shape, schedule,
// traffic registry).
func (d *DistBuilder) World() *mprt.World { return d.world }

// Assignment exposes the global static schedule (read-only).
func (d *DistBuilder) Assignment() *sched.Assignment { return d.asn }

// BuildJK computes J and K for density P across the ranks. The returned
// matrices are owned by the builder and valid until the next BuildJK.
//
// The build runs in two phases, each a full world.Run: first every rank
// executes its task block into its fused staging buffer (no
// communication), then every rank enters the ReduceScatter + Allgatherv
// collective. The split is what makes rank death recoverable — a rank
// that dies in the compute phase (DistOptions.FaultPlan) strands nobody,
// its block is re-executed on the same pool, and the collective is then
// re-formed with every rank alive. The static schedule makes the
// re-executed block's partials bitwise identical to the originals, so a
// recovered build equals a fault-free one bit for bit.
func (d *DistBuilder) BuildJK(p *linalg.Matrix) (j, k *linalg.Matrix, rep DistReport, err error) {
	R := d.dopts.Ranks
	nn := d.Eng.Basis.NBasis * d.Eng.Basis.NBasis
	start := time.Now()
	d.builds++

	reg := d.world.Registry()
	steps0 := reg.Counter("mprt.reducescatter.steps").Value() +
		reg.Counter("mprt.allgatherv.steps").Value()

	rep = DistReport{
		Ranks:          R,
		ThreadsPerRank: d.dopts.ThreadsPerRank,
		Schedule:       d.dopts.Schedule,
		Shape:          d.dopts.Shape,
		RankCompute:    make([]time.Duration, R),
		RankComm:       make([]time.Duration, R),
		RankBytes:      make([]int64, R),
		RankSends:      make([]int64, R),
		RankHops:       make([]int64, R),
		NTasks:         len(d.tasks),
		Metrics:        reg,
	}

	compute := func(r int) {
		pl := d.pools[r]
		t0 := time.Now()
		pl.runBuild(p)
		fused := d.fused[r]
		copy(fused[:nn], pl.jBufs[0].Data)
		copy(fused[nn:], pl.kBufs[0].Data)
		wall := time.Since(t0)
		if delay := d.dopts.Noise.StragglerDelay(r, wall); delay > 0 {
			time.Sleep(delay)
			wall += delay
		}
		rep.RankCompute[r] = wall
	}

	// Phase 1: compute. A fault-plan kill fires here, before the rank
	// touches its buffers.
	plan := d.dopts.FaultPlan
	runErr := d.world.Run(func(c *mprt.Comm) error {
		r := c.Rank()
		if plan != nil && int64(plan.Build) == d.builds && plan.Rank == r {
			return fmt.Errorf("hfx: rank %d died in compute phase of build %d: %w",
				r, d.builds, mprt.ErrRankKilled)
		}
		compute(r)
		return nil
	})
	if runErr != nil {
		if !errors.Is(runErr, mprt.ErrRankKilled) {
			return nil, nil, rep, runErr
		}
		// Restart: re-execute the dead rank's task block. The pool is
		// intact (the rank died before dispatching work) and the static
		// schedule re-produces the identical partials.
		compute(plan.Rank)
		rep.RankRestarts++
		reg.Counter("mprt.rank_restarts").Add(1)
	}

	// Phase 2: the collective, re-formed with every rank alive.
	runErr = d.world.Run(func(c *mprt.Comm) error {
		r := c.Rank()
		b0, s0, h0 := c.BytesSent(), c.Sends(), c.HopsSent()
		t0 := time.Now()
		seg := c.ReduceScatter(d.fused[r], d.counts)
		full := c.Allgatherv(seg, d.counts)
		rep.RankComm[r] = time.Since(t0)
		rep.RankBytes[r] = c.BytesSent() - b0
		rep.RankSends[r] = c.Sends() - s0
		rep.RankHops[r] = c.HopsSent() - h0

		if r == 0 {
			copy(d.jOut.Data, full[:nn])
			copy(d.kOut.Data, full[nn:])
		}
		return nil
	})
	if runErr != nil {
		return nil, nil, rep, runErr
	}

	for r := 0; r < R; r++ {
		rep.CommBytes += rep.RankBytes[r]
		rep.Sends += rep.RankSends[r]
		rep.Hops += rep.RankHops[r]
		rep.QuartetsComputed += d.pools[r].computed.Load()
		rep.QuartetsScreened += d.pools[r].screened.Load()
	}
	rep.MeasuredSteps = reg.Counter("mprt.reducescatter.steps").Value() +
		reg.Counter("mprt.allgatherv.steps").Value() - steps0
	L := d.world.PredictedReduceSteps()
	rep.PredictedSteps = 3*L + 1
	rep.RankLoads = d.asn.GroupLoads(d.dopts.ThreadsPerRank)
	rep.BalanceRatioPredicted = maxMeanRatio(rep.RankLoads)
	rep.BalanceRatio = rep.BalanceRatioPredicted
	walls := make([]float64, R)
	for r := range walls {
		walls[r] = float64(rep.RankCompute[r])
	}
	rep.BalanceRatioMeasured = maxMeanRatio(walls)
	rep.Wall = time.Since(start)
	runtime.KeepAlive(d)
	return d.jOut, d.kOut, rep, nil
}

// DistributedBuild is the one-shot form: build a DistBuilder, run a
// single J/K build, release the ranks. The returned matrices are freshly
// owned by the caller.
func DistributedBuild(eng *integrals.Engine, scr *screen.Result, dopts DistOptions,
	p *linalg.Matrix) (j, k *linalg.Matrix, rep DistReport, err error) {
	d, err := NewDistBuilder(eng, scr, dopts)
	if err != nil {
		return nil, nil, DistReport{}, err
	}
	defer d.Close()
	return d.BuildJK(p)
}
