// Package hfx implements the paper's primary contribution: the scalable
// evaluation of the Hartree–Fock exact-exchange matrix
//
//	K[μν] = Σ_{λσ} P[λσ] (μλ|νσ)
//
// by task decomposition of the screened shell-pair list. The design
// follows the IPDPS'14 scheme:
//
//   - work is generated from the *screened* pair list, so the task set
//     shrinks with the screening threshold and with distance cutoffs in
//     condensed phase;
//   - every task's cost is predicted by a calibrated flop model, enabling
//     *static* LPT balancing over any number of threads (the enabler of
//     the 6.29M-thread scaling result);
//   - each thread accumulates into a private K buffer; buffers are merged
//     by a hierarchical pairwise tree, mirroring the torus allreduce;
//   - the innermost primitive loops optionally run 4-wide (package qpx).
//
// A deliberately naive distributed-pair Baseline configuration reproduces
// the "directly comparable approach" the paper beats by >10×.
package hfx

import (
	"time"

	"hfxmd/internal/basis"
	"hfxmd/internal/integrals"
	"hfxmd/internal/screen"
)

// CostModel predicts the cost (in abstract work units; calibrated units
// are nanoseconds) of evaluating one contracted shell quartet and
// scattering it into K. The dominant term scales with the primitive
// quartet count times the Cartesian component count; the constant covers
// E-table setup and scatter overhead.
type CostModel struct {
	// PerPrimComp is the cost per (primitive quartet × component quartet).
	PerPrimComp float64
	// PerQuartet is the fixed overhead per shell quartet.
	PerQuartet float64
}

// DefaultCostModel returns coefficients in nanosecond-ish units that
// reproduce the relative s/p shell cost ratios of the Go kernels; use
// Calibrate for machine-accurate values.
func DefaultCostModel() CostModel {
	return CostModel{PerPrimComp: 35, PerQuartet: 900}
}

// Quartet returns the predicted cost of the quartet (ab|cd).
func (cm CostModel) Quartet(sa, sb, sc, sd *basis.Shell) float64 {
	prims := float64(sa.NPrims() * sb.NPrims() * sc.NPrims() * sd.NPrims())
	comps := float64(sa.NFuncs() * sb.NFuncs() * sc.NFuncs() * sd.NFuncs())
	return cm.PerQuartet + cm.PerPrimComp*prims*comps
}

// PairPair returns the predicted cost of the quartet formed by two
// screened pairs.
func (cm CostModel) PairPair(set *basis.Set, p1, p2 screen.Pair) float64 {
	return cm.Quartet(&set.Shells[p1.A], &set.Shells[p1.B], &set.Shells[p2.A], &set.Shells[p2.B])
}

// Calibrate measures the two model coefficients on the live machine by
// timing representative quartets from the given engine's basis, returning
// a fitted model. It requires at least two shells; on degenerate input it
// returns the default model.
func Calibrate(eng *integrals.Engine) CostModel {
	set := eng.Basis
	if set.NShells() < 2 {
		return DefaultCostModel()
	}
	// Pick the cheapest and the most expensive quartet classes present.
	small, large := 0, 0
	weight := func(i int) int {
		sh := &set.Shells[i]
		return sh.NPrims() * sh.NFuncs()
	}
	for i := 1; i < set.NShells(); i++ {
		if weight(i) < weight(small) {
			small = i
		}
		if weight(i) > weight(large) {
			large = i
		}
	}
	timeQuartet := func(s int) (perCall float64, work float64) {
		sh := &set.Shells[s]
		n := sh.NFuncs()
		buf := make([]float64, n*n*n*n)
		const reps = 200
		start := time.Now()
		for r := 0; r < reps; r++ {
			eng.ERIShell(s, s, s, s, buf, nil)
		}
		el := time.Since(start).Nanoseconds()
		prims := float64(sh.NPrims())
		comps := float64(n)
		return float64(el) / reps, (prims * prims * prims * prims) * (comps * comps * comps * comps)
	}
	t1, w1 := timeQuartet(small)
	t2, w2 := timeQuartet(large)
	cm := DefaultCostModel()
	if w2 != w1 {
		cm.PerPrimComp = (t2 - t1) / (w2 - w1)
		cm.PerQuartet = t1 - cm.PerPrimComp*w1
	}
	if cm.PerPrimComp <= 0 {
		cm.PerPrimComp = DefaultCostModel().PerPrimComp
	}
	if cm.PerQuartet <= 0 {
		cm.PerQuartet = DefaultCostModel().PerQuartet
	}
	return cm
}
