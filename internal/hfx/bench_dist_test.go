package hfx

import (
	"testing"

	"hfxmd/internal/chem"
	"hfxmd/internal/mprt"
)

// benchDistBuild times the steady-state rank-distributed Fock build at a
// given rank count and collective schedule, reporting the per-build
// collective traffic and schedule steps alongside ns/op. One warm-up
// build sizes every rank pool's scratch before the timer.
func benchDistBuild(b *testing.B, ranks int, sched mprt.Schedule) {
	eng, scr := setup(b, chem.WaterCluster(4, 1), 1e-8)
	p := testDensity(eng.Basis.NBasis, 1)
	d, err := NewDistBuilder(eng, scr, DistOptions{
		Ranks:    ranks,
		Schedule: sched,
		Opts:     DefaultOptions(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	_, _, rep, err := d.BuildJK(p) // warm-up
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, rep, _ = d.BuildJK(p)
	}
	b.ReportMetric(float64(rep.CommBytes), "commbytes/op")
	b.ReportMetric(float64(rep.MeasuredSteps), "steps/op")
}

func BenchmarkDistBuildR1(b *testing.B) { benchDistBuild(b, 1, mprt.DimExchange) }
func BenchmarkDistBuildR2(b *testing.B) { benchDistBuild(b, 2, mprt.DimExchange) }
func BenchmarkDistBuildR4(b *testing.B) { benchDistBuild(b, 4, mprt.DimExchange) }
func BenchmarkDistBuildR8(b *testing.B) { benchDistBuild(b, 8, mprt.DimExchange) }

// BenchmarkDistBuildR4Binomial contrasts the binomial-tree schedule with
// the torus dimension-exchange at the same rank count.
func BenchmarkDistBuildR4Binomial(b *testing.B) { benchDistBuild(b, 4, mprt.Binomial) }
