package hfx

import (
	"testing"

	"hfxmd/internal/chem"
	"hfxmd/internal/linalg"
)

// BenchmarkBuildJKPooled measures the steady-state Fock build on the
// persistent pool. One warm-up build runs before the timer so lazily
// sized scratch buffers reach their final capacity; after that every
// BuildJK must reuse the pool's buffers — the benchmark's allocation
// report (b.ReportAllocs) is the regression guard and must show
// 0 allocs/op.
func BenchmarkBuildJKPooled(b *testing.B) {
	eng, scr := setup(b, chem.WaterCluster(4, 1), 1e-8)
	p := testDensity(eng.Basis.NBasis, 1)
	builder := NewBuilder(eng, scr, DefaultOptions())
	defer builder.Close()
	builder.BuildJK(p) // warm-up: size scratch, create timer phases
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.BuildJK(p)
	}
}

// BenchmarkBuildJKPooledDynamic is the same guard for the dynamic-queue
// dispatch path.
func BenchmarkBuildJKPooledDynamic(b *testing.B) {
	eng, scr := setup(b, chem.WaterCluster(4, 1), 1e-8)
	p := testDensity(eng.Basis.NBasis, 1)
	opts := DefaultOptions()
	opts.Dynamic = true
	builder := NewBuilder(eng, scr, opts)
	defer builder.Close()
	builder.BuildJK(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.BuildJK(p)
	}
}

// BenchmarkBuildJKSemiDirect measures the warm-cache semi-direct build on
// the same system as BenchmarkBuildJKPooled: every surviving quartet is
// resident after the warm-up, so the timed builds replay cached ERI blocks
// and only re-contract against the density. Must stay 0 allocs/op and
// ≥2× below BenchmarkBuildJKPooled ns/op.
func BenchmarkBuildJKSemiDirect(b *testing.B) {
	eng, scr := setup(b, chem.WaterCluster(4, 1), 1e-8)
	p := testDensity(eng.Basis.NBasis, 1)
	opts := DefaultOptions()
	opts.CacheBudgetBytes = 256 << 20
	builder := NewBuilder(eng, scr, opts)
	defer builder.Close()
	builder.BuildJK(p) // warm-up 1: fill the cache
	_, _, rep := builder.BuildJK(p)
	if rep.Cache.Misses != 0 {
		b.Fatalf("warm cache still misses %d quartets; raise the budget", rep.Cache.Misses)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, rep = builder.BuildJK(p)
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.QuartetsComputed), "quartets/op")
	b.ReportMetric(rep.Cache.HitRatio(), "hitratio")
}

// BenchmarkBuildJKIncrementalSemiDirect measures the ΔP build an
// incremental SCF issues on a warm cache: the small difference density
// screens away most quartets (density-weighted test) and the survivors
// replay from the cache.
func BenchmarkBuildJKIncrementalSemiDirect(b *testing.B) {
	eng, scr := setup(b, chem.WaterCluster(4, 1), 1e-8)
	n := eng.Basis.NBasis
	p := testDensity(n, 1)
	dp := testDensity(n, 2)
	for i := range dp.Data {
		dp.Data[i] *= 1e-4
	}
	opts := DefaultOptions()
	opts.CacheBudgetBytes = 256 << 20
	builder := NewBuilder(eng, scr, opts)
	defer builder.Close()
	builder.BuildJK(p) // warm-up: fill the cache with the full-density survivors
	var rep Report
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, rep = builder.BuildJK(dp)
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.QuartetsComputed), "quartets/op")
	b.ReportMetric(rep.Cache.HitRatio(), "hitratio")
}

// TestSemiDirectReplayAllocs guards the replay hot path: once the cache
// is warm, a semi-direct BuildJK must not allocate.
func TestSemiDirectReplayAllocs(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(2, 1), 1e-8)
	p := testDensity(eng.Basis.NBasis, 1)
	opts := DefaultOptions()
	opts.CacheBudgetBytes = 256 << 20
	builder := NewBuilder(eng, scr, opts)
	defer builder.Close()
	builder.BuildJK(p)
	var rep Report
	allocs := testing.AllocsPerRun(10, func() {
		_, _, rep = builder.BuildJK(p)
	})
	if allocs != 0 {
		t.Fatalf("semi-direct replay allocates %.1f objects per call, want 0", allocs)
	}
	if rep.Cache.Misses != 0 || rep.Cache.Hits != rep.QuartetsComputed {
		t.Fatalf("replay not fully cached: hits=%d misses=%d computed=%d",
			rep.Cache.Hits, rep.Cache.Misses, rep.QuartetsComputed)
	}
}

// TestSteadyStateBuildAllocs is the in-suite form of the benchmark
// guard: after one warm-up, repeated BuildJK calls must not allocate.
func TestSteadyStateBuildAllocs(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(2, 1), 1e-8)
	p := testDensity(eng.Basis.NBasis, 1)
	builder := NewBuilder(eng, scr, DefaultOptions())
	defer builder.Close()
	builder.BuildJK(p)
	var j, k *linalg.Matrix
	allocs := testing.AllocsPerRun(10, func() {
		j, k, _ = builder.BuildJK(p)
	})
	if allocs != 0 {
		t.Fatalf("steady-state BuildJK allocates %.1f objects per call, want 0", allocs)
	}
	if j == nil || k == nil {
		t.Fatal("no result")
	}
}
