package hfx

import (
	"testing"

	"hfxmd/internal/chem"
	"hfxmd/internal/linalg"
)

// BenchmarkBuildJKPooled measures the steady-state Fock build on the
// persistent pool. One warm-up build runs before the timer so lazily
// sized scratch buffers reach their final capacity; after that every
// BuildJK must reuse the pool's buffers — the benchmark's allocation
// report (b.ReportAllocs) is the regression guard and must show
// 0 allocs/op.
func BenchmarkBuildJKPooled(b *testing.B) {
	eng, scr := setup(b, chem.WaterCluster(4, 1), 1e-8)
	p := testDensity(eng.Basis.NBasis, 1)
	builder := NewBuilder(eng, scr, DefaultOptions())
	defer builder.Close()
	builder.BuildJK(p) // warm-up: size scratch, create timer phases
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.BuildJK(p)
	}
}

// BenchmarkBuildJKPooledDynamic is the same guard for the dynamic-queue
// dispatch path.
func BenchmarkBuildJKPooledDynamic(b *testing.B) {
	eng, scr := setup(b, chem.WaterCluster(4, 1), 1e-8)
	p := testDensity(eng.Basis.NBasis, 1)
	opts := DefaultOptions()
	opts.Dynamic = true
	builder := NewBuilder(eng, scr, opts)
	defer builder.Close()
	builder.BuildJK(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.BuildJK(p)
	}
}

// TestSteadyStateBuildAllocs is the in-suite form of the benchmark
// guard: after one warm-up, repeated BuildJK calls must not allocate.
func TestSteadyStateBuildAllocs(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(2, 1), 1e-8)
	p := testDensity(eng.Basis.NBasis, 1)
	builder := NewBuilder(eng, scr, DefaultOptions())
	defer builder.Close()
	builder.BuildJK(p)
	var j, k *linalg.Matrix
	allocs := testing.AllocsPerRun(10, func() {
		j, k, _ = builder.BuildJK(p)
	})
	if allocs != 0 {
		t.Fatalf("steady-state BuildJK allocates %.1f objects per call, want 0", allocs)
	}
	if j == nil || k == nil {
		t.Fatal("no result")
	}
}
