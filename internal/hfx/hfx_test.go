package hfx

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"hfxmd/internal/basis"
	"hfxmd/internal/chem"
	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
	"hfxmd/internal/sched"
	"hfxmd/internal/screen"
)

// testDensity returns a plausible symmetric positive-ish density matrix
// (scaled identity plus symmetric noise) for exercising J/K builds.
func testDensity(n int, seed int64) *linalg.Matrix {
	rng := rand.New(rand.NewSource(seed))
	p := linalg.NewSquare(n)
	for i := 0; i < n; i++ {
		p.Set(i, i, 1+0.5*rng.Float64())
		for j := i + 1; j < n; j++ {
			v := 0.2 * rng.NormFloat64()
			p.Set(i, j, v)
			p.Set(j, i, v)
		}
	}
	return p
}

func setup(t testing.TB, mol *chem.Molecule, eps float64) (*integrals.Engine, *screen.Result) {
	eng := integrals.NewEngine(basis.MustBuild("STO-3G", mol))
	scr := screen.BuildPairList(eng, screen.Options{Threshold: eps, ExtentEps: 1e-12})
	return eng, scr
}

func TestBuilderMatchesReferenceWater(t *testing.T) {
	eng, scr := setup(t, chem.Water(), 1e-14)
	p := testDensity(eng.Basis.NBasis, 1)
	for _, threads := range []int{1, 2, 4, 7} {
		opts := DefaultOptions()
		opts.Threads = threads
		opts.DensityWeighted = false
		b := NewBuilder(eng, scr, opts)
		j, k, rep := b.BuildJK(p)
		jr, kr := ReferenceJK(eng, p)
		if d := linalg.MaxAbsDiff(j, jr); d > 1e-10 {
			t.Fatalf("threads=%d: J differs from reference by %g", threads, d)
		}
		if d := linalg.MaxAbsDiff(k, kr); d > 1e-10 {
			t.Fatalf("threads=%d: K differs from reference by %g", threads, d)
		}
		if rep.QuartetsComputed == 0 {
			t.Fatal("no quartets computed")
		}
	}
}

func TestBuilderMatchesReferenceCluster(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(3, 7), 1e-14)
	p := testDensity(eng.Basis.NBasis, 2)
	b := NewBuilder(eng, scr, Options{Threads: 4, Balancer: sched.LPT})
	j, k, _ := b.BuildJK(p)
	jr, kr := ReferenceJK(eng, p)
	if d := linalg.MaxAbsDiff(j, jr); d > 1e-9 {
		t.Fatalf("J differs from reference by %g", d)
	}
	if d := linalg.MaxAbsDiff(k, kr); d > 1e-9 {
		t.Fatalf("K differs from reference by %g", d)
	}
}

func TestVectorKernelMatchesScalar(t *testing.T) {
	eng, scr := setup(t, chem.Water(), 1e-14)
	p := testDensity(eng.Basis.NBasis, 3)

	optsS := DefaultOptions()
	optsS.Vector = false
	optsS.Threads = 2
	js, ks, _ := NewBuilder(eng, scr, optsS).BuildJK(p)

	engV := integrals.NewEngine(eng.Basis)
	optsV := DefaultOptions()
	optsV.Vector = true
	optsV.Threads = 2
	jv, kv, rep := NewBuilder(engV, scr, optsV).BuildJK(p)

	if d := linalg.MaxAbsDiff(js, jv); d > 1e-11 {
		t.Fatalf("vector J differs by %g", d)
	}
	if d := linalg.MaxAbsDiff(ks, kv); d > 1e-11 {
		t.Fatalf("vector K differs by %g", d)
	}
	if rep.LaneUtilization <= 0 || rep.LaneUtilization > 1 {
		t.Fatalf("lane utilization %g", rep.LaneUtilization)
	}
}

func TestScreeningErrorControlled(t *testing.T) {
	// E4 in miniature: looser thresholds give larger but bounded errors,
	// and the error decreases monotonically-ish with ε.
	mol := chem.WaterCluster(2, 5)
	eng := integrals.NewEngine(basis.MustBuild("STO-3G", mol))
	p := testDensity(eng.Basis.NBasis, 4)
	_, kexact := ReferenceJK(eng, p)

	prevErr := math.Inf(1)
	for _, eps := range []float64{1e-4, 1e-8, 1e-12} {
		scr := screen.BuildPairList(eng, screen.Options{Threshold: eps, ExtentEps: 1e-14})
		opts := DefaultOptions()
		opts.Threads = 2
		opts.DensityWeighted = false
		_, k, _ := NewBuilder(eng, scr, opts).BuildJK(p)
		err := linalg.MaxAbsDiff(k, kexact)
		if err > prevErr*1.5+1e-12 {
			t.Fatalf("error grew when tightening ε: %g -> %g", prevErr, err)
		}
		prevErr = err
	}
	if prevErr > 1e-10 {
		t.Fatalf("tightest screen error %g too large", prevErr)
	}
}

func TestDensityWeightedScreeningStillAccurate(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(2, 9), 1e-10)
	p := testDensity(eng.Basis.NBasis, 5)
	opts := DefaultOptions()
	opts.Threads = 3
	_, k, rep := NewBuilder(eng, scr, opts).BuildJK(p)
	_, kr := ReferenceJK(eng, p)
	if d := linalg.MaxAbsDiff(k, kr); d > 1e-7 {
		t.Fatalf("density-weighted K error %g", d)
	}
	if rep.QuartetsScreened == 0 {
		t.Log("note: nothing screened on this tiny system (acceptable)")
	}
}

func TestBaselineProducesSameMatrixWorseBalance(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(4, 11), 1e-10)
	p := testDensity(eng.Basis.NBasis, 6)

	paper := DefaultOptions()
	paper.Threads = 8
	paper.Vector = false
	paper.DensityWeighted = false
	jp, kp, repPaper := NewBuilder(eng, scr, paper).BuildJK(p)

	engB := integrals.NewEngine(eng.Basis)
	base := BaselineOptions()
	base.Threads = 8
	jb, kb, repBase := NewBuilder(engB, scr, base).BuildJK(p)

	if d := linalg.MaxAbsDiff(jp, jb); d > 1e-10 {
		t.Fatalf("baseline J differs by %g", d)
	}
	if d := linalg.MaxAbsDiff(kp, kb); d > 1e-10 {
		t.Fatalf("baseline K differs by %g", d)
	}
	if repPaper.BalanceRatio > repBase.BalanceRatio+1e-9 {
		t.Fatalf("paper scheme balance %.4f worse than baseline %.4f",
			repPaper.BalanceRatio, repBase.BalanceRatio)
	}
}

func TestSymmetryOfJK(t *testing.T) {
	eng, scr := setup(t, chem.Water(), 1e-12)
	p := testDensity(eng.Basis.NBasis, 8)
	opts := DefaultOptions()
	opts.Threads = 4
	j, k, _ := NewBuilder(eng, scr, opts).BuildJK(p)
	if !j.IsSymmetric(1e-9) {
		t.Fatal("J not symmetric")
	}
	if !k.IsSymmetric(1e-9) {
		t.Fatal("K not symmetric")
	}
}

func TestEnergyHelpers(t *testing.T) {
	eng, scr := setup(t, chem.Hydrogen(1.4), 1e-14)
	n := eng.Basis.NBasis
	p := linalg.NewSquare(n)
	// Closed-shell H2 density in the bonding MO: P = 2·c·cᵀ with
	// c = (φ1+φ2)/√(2(1+S12)).
	s := eng.Overlap()
	c := 1 / math.Sqrt(2*(1+s.At(0, 1)))
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			p.Set(i, j, 2*c*c)
		}
	}
	opts := DefaultOptions()
	opts.Threads = 1
	opts.DensityWeighted = false
	jm, km, _ := NewBuilder(eng, scr, opts).BuildJK(p)
	ej := CoulombEnergy(p, jm)
	ek := ExchangeEnergy(p, km)
	if ej <= 0 {
		t.Fatalf("Coulomb energy %g not positive", ej)
	}
	if ek >= 0 {
		t.Fatalf("exchange energy %g not negative", ek)
	}
	// For a 2-electron single-determinant system, E_x = −½ E_J exactly
	// (self-interaction cancellation).
	if math.Abs(ek+0.5*ej) > 1e-10 {
		t.Fatalf("2-electron identity violated: EK=%g EJ=%g", ek, ej)
	}
}

func TestTaskGeneration(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(4, 13), 1e-10)
	cm := DefaultCostModel()
	tasks := GenerateTasks(eng.Basis, scr.Pairs, cm, 0)
	if len(tasks) == 0 {
		t.Fatal("no tasks")
	}
	// Every canonical (bra, ket≤bra) combination covered exactly once.
	np := len(scr.Pairs)
	covered := make(map[[2]int]bool)
	for _, task := range tasks {
		if task.KetHi > task.Bra+1 {
			t.Fatalf("task ket range [%d,%d) exceeds bra %d", task.KetLo, task.KetHi, task.Bra)
		}
		for j := task.KetLo; j < task.KetHi; j++ {
			key := [2]int{task.Bra, j}
			if covered[key] {
				t.Fatalf("quartet %v covered twice", key)
			}
			covered[key] = true
		}
	}
	want := np * (np + 1) / 2
	if len(covered) != want {
		t.Fatalf("covered %d quartets, want %d", len(covered), want)
	}
	if TotalQuartets(tasks) != want {
		t.Fatalf("TotalQuartets %d want %d", TotalQuartets(tasks), want)
	}
}

func TestGranuleControlsTaskCount(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(4, 13), 1e-10)
	cm := DefaultCostModel()
	coarse := GenerateTasks(eng.Basis, scr.Pairs, cm, 1e12)
	fine := GenerateTasks(eng.Basis, scr.Pairs, cm, 5000)
	if len(fine) <= len(coarse) {
		t.Fatalf("finer granule should create more tasks: %d vs %d", len(fine), len(coarse))
	}
}

func TestCostModelMonotone(t *testing.T) {
	eng, _ := setup(t, chem.Water(), 1e-10)
	cm := DefaultCostModel()
	set := eng.Basis
	// Oxygen p-shell quartet must cost more than hydrogen s-shell quartet.
	var pShell, sShell int = -1, -1
	for i := range set.Shells {
		if set.Shells[i].L == 1 {
			pShell = i
		}
		if set.Shells[i].L == 0 && set.Shells[i].Atom > 0 {
			sShell = i
		}
	}
	cp := cm.Quartet(&set.Shells[pShell], &set.Shells[pShell], &set.Shells[pShell], &set.Shells[pShell])
	cs := cm.Quartet(&set.Shells[sShell], &set.Shells[sShell], &set.Shells[sShell], &set.Shells[sShell])
	if cp <= cs {
		t.Fatalf("p quartet cost %g <= s quartet cost %g", cp, cs)
	}
}

func TestCalibrate(t *testing.T) {
	eng, _ := setup(t, chem.Water(), 1e-10)
	cm := Calibrate(eng)
	if cm.PerPrimComp <= 0 || cm.PerQuartet <= 0 {
		t.Fatalf("calibrated model %+v not positive", cm)
	}
	// Degenerate basis falls back to defaults.
	single := integrals.NewEngine(basis.MustBuild("STO-3G", chem.Helium()))
	if Calibrate(single) != DefaultCostModel() {
		t.Fatal("single-shell calibration should fall back to default")
	}
}

func TestReportString(t *testing.T) {
	eng, scr := setup(t, chem.Water(), 1e-10)
	p := testDensity(eng.Basis.NBasis, 20)
	opts := DefaultOptions()
	opts.Threads = 2
	_, _, rep := NewBuilder(eng, scr, opts).BuildJK(p)
	if rep.String() == "" {
		t.Fatal("empty report")
	}
	if rep.NTasks == 0 || rep.TaskCostStats.N != rep.NTasks {
		t.Fatalf("report stats inconsistent: %+v", rep)
	}
}

func BenchmarkBuildKWater4(b *testing.B) {
	eng, scr := setup(b, chem.WaterCluster(4, 1), 1e-8)
	p := testDensity(eng.Basis.NBasis, 1)
	opts := DefaultOptions()
	builder := NewBuilder(eng, scr, opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.BuildJK(p)
	}
}

func TestDynamicExecutionMatchesStatic(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(3, 17), 1e-12)
	p := testDensity(eng.Basis.NBasis, 9)
	static := DefaultOptions()
	static.Threads = 4
	static.Vector = false
	js, ks, _ := NewBuilder(eng, scr, static).BuildJK(p)

	engD := integrals.NewEngine(eng.Basis)
	dyn := DefaultOptions()
	dyn.Threads = 4
	dyn.Vector = false
	dyn.Dynamic = true
	jd, kd, rep := NewBuilder(engD, scr, dyn).BuildJK(p)

	if d := linalg.MaxAbsDiff(js, jd); d > 1e-12 {
		t.Fatalf("dynamic J differs by %g", d)
	}
	if d := linalg.MaxAbsDiff(ks, kd); d > 1e-12 {
		t.Fatalf("dynamic K differs by %g", d)
	}
	if rep.QuartetsComputed == 0 {
		t.Fatal("dynamic run computed nothing")
	}
}

// TestSharedEngineBuilders creates two builders with opposite Vector
// settings on the SAME engine: the kernel selection must be scoped to
// each builder, and the engine's own flag must be left alone.
func TestSharedEngineBuilders(t *testing.T) {
	eng, scr := setup(t, chem.Water(), 1e-14)
	p := testDensity(eng.Basis.NBasis, 31)

	optsV := DefaultOptions()
	optsV.Threads = 2
	optsV.DensityWeighted = false
	optsS := optsV
	optsS.Vector = false

	bv := NewBuilder(eng, scr, optsV)
	bs := NewBuilder(eng, scr, optsS)
	defer bv.Close()
	defer bs.Close()
	if eng.Vector {
		t.Fatal("NewBuilder mutated the shared engine's Vector flag")
	}

	jv, kv, repV := bv.BuildJK(p)
	jr, kr := ReferenceJK(eng, p)
	if d := linalg.MaxAbsDiff(jv, jr); d > 1e-10 {
		t.Fatalf("vector builder J differs from reference by %g", d)
	}
	if repV.LaneUtilization <= 0 {
		t.Fatal("vector builder reported no lane utilisation")
	}
	js, ks, repS := bs.BuildJK(p)
	if repS.LaneUtilization != 0 {
		t.Fatal("scalar builder reported lane utilisation")
	}
	if d := linalg.MaxAbsDiff(js, jr); d > 1e-10 {
		t.Fatalf("scalar builder J differs from reference by %g", d)
	}
	if d := linalg.MaxAbsDiff(kv, kr); d > 1e-10 {
		t.Fatalf("vector builder K differs from reference by %g", d)
	}
	if d := linalg.MaxAbsDiff(ks, kr); d > 1e-10 {
		t.Fatalf("scalar builder K differs from reference by %g", d)
	}
}

// TestPooledRepeatMatchesFresh rebuilds with the same persistent pool
// across several densities and checks each result against a one-shot
// fresh builder — the pooled buffers must be indistinguishable from
// freshly allocated ones.
func TestPooledRepeatMatchesFresh(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(2, 3), 1e-12)
	opts := DefaultOptions()
	opts.Threads = 3
	pooled := NewBuilder(eng, scr, opts)
	defer pooled.Close()
	for it, seed := range []int64{11, 12, 13, 11} {
		p := testDensity(eng.Basis.NBasis, seed)
		j, k, rep := pooled.BuildJK(p)
		fresh := NewBuilder(eng, scr, opts)
		jf, kf, _ := fresh.BuildJK(p)
		fresh.Close()
		if d := linalg.MaxAbsDiff(j, jf); d > 1e-13 {
			t.Fatalf("build %d: pooled J differs from fresh by %g", it, d)
		}
		if d := linalg.MaxAbsDiff(k, kf); d > 1e-13 {
			t.Fatalf("build %d: pooled K differs from fresh by %g", it, d)
		}
		if rep.Pool.Builds != int64(it+1) {
			t.Fatalf("build %d: pool reports %d builds", it, rep.Pool.Builds)
		}
		if rep.Pool.ReuseHits != int64(it) {
			t.Fatalf("build %d: pool reports %d reuse hits", it, rep.Pool.ReuseHits)
		}
	}
}

// TestPooledDynamicRepeatIsStable exercises the persistent pool with the
// dynamic queue: repeated builds with the same density must agree with
// the first to roundoff, whatever worker claimed which task.
func TestPooledDynamicRepeatIsStable(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(2, 5), 1e-12)
	opts := DefaultOptions()
	opts.Threads = 4
	opts.Dynamic = true
	b := NewBuilder(eng, scr, opts)
	defer b.Close()
	p := testDensity(eng.Basis.NBasis, 41)
	j0, k0, _ := b.BuildJK(p)
	j0, k0 = j0.Clone(), k0.Clone() // results alias pool buffers
	for i := 0; i < 3; i++ {
		j, k, _ := b.BuildJK(p)
		if d := linalg.MaxAbsDiff(j, j0); d > 1e-12 {
			t.Fatalf("rebuild %d: dynamic J drifted by %g", i, d)
		}
		if d := linalg.MaxAbsDiff(k, k0); d > 1e-12 {
			t.Fatalf("rebuild %d: dynamic K drifted by %g", i, d)
		}
	}
}

func TestBuilderCloseIdempotent(t *testing.T) {
	eng, scr := setup(t, chem.Water(), 1e-12)
	b := NewBuilder(eng, scr, Options{Threads: 2})
	p := testDensity(eng.Basis.NBasis, 7)
	b.BuildJK(p)
	b.Close()
	b.Close() // must not panic
}

func TestReportPhaseTable(t *testing.T) {
	eng, scr := setup(t, chem.Water(), 1e-10)
	p := testDensity(eng.Basis.NBasis, 21)
	b := NewBuilder(eng, scr, Options{Threads: 2})
	defer b.Close()
	_, _, rep := b.BuildJK(p)
	tbl := rep.PhaseTable()
	for _, want := range []string{"compute", "pool.builds", "pool.buffer_bytes", "screen.wall_ns"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("phase table missing %q:\n%s", want, tbl)
		}
	}
	if rep.Pool.Workers != 2 || rep.Pool.BuffersAllocated == 0 || rep.Pool.BufferBytes == 0 {
		t.Fatalf("pool stats not populated: %+v", rep.Pool)
	}
	if rep.Metrics == nil || rep.Timings == nil {
		t.Fatal("report missing metrics registry or timer")
	}
}
