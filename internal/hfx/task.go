package hfx

import (
	"hfxmd/internal/basis"
	"hfxmd/internal/screen"
)

// Task is one unit of schedulable HFX work: a bra pair index into the
// screened pair list plus a contiguous ket-pair range [KetLo, KetHi).
// Only canonical combinations (ket index ≤ bra index) are generated, so
// every unordered quartet is computed exactly once.
type Task struct {
	Bra            int
	KetLo, KetHi   int
	Cost           float64
	QuartetsInTask int
}

// GenerateTasks chunks the screened pair list into tasks whose predicted
// cost is at most granule (one bra pair never splits below a single ket).
// A granule of 0 picks a default that yields ~64 tasks per modern core on
// small systems while keeping millions of tasks available for the machine
// simulation on large ones.
func GenerateTasks(set *basis.Set, pairs []screen.Pair, cm CostModel, granule float64) []Task {
	if granule <= 0 {
		granule = 250_000 // ~0.25 ms of quartet work per task
	}
	var tasks []Task
	for i := range pairs {
		lo := 0
		var acc float64
		var count int
		for j := 0; j <= i; j++ {
			c := cm.PairPair(set, pairs[i], pairs[j])
			if acc+c > granule && count > 0 {
				tasks = append(tasks, Task{Bra: i, KetLo: lo, KetHi: j, Cost: acc, QuartetsInTask: count})
				lo, acc, count = j, 0, 0
			}
			acc += c
			count++
		}
		if count > 0 {
			tasks = append(tasks, Task{Bra: i, KetLo: lo, KetHi: i + 1, Cost: acc, QuartetsInTask: count})
		}
	}
	return tasks
}

// TaskClasses maps each task to its work class: the angular momenta of
// the bra pair's shells, packed as La·16+Lb. Quartet cost scales steeply
// with the bra's angular structure (primitive counts, block sizes, the
// recurrence depth of the Boys chain), so the bra class is the natural
// granularity for steal.Calibrator correction factors.
func TaskClasses(set *basis.Set, pairs []screen.Pair, tasks []Task) []int {
	classes := make([]int, len(tasks))
	for i := range tasks {
		bra := pairs[tasks[i].Bra]
		classes[i] = set.Shells[bra.A].L<<4 | set.Shells[bra.B].L
	}
	return classes
}

// TaskCosts extracts the cost array for the scheduler.
func TaskCosts(tasks []Task) []float64 {
	costs := make([]float64, len(tasks))
	for i := range tasks {
		costs[i] = tasks[i].Cost
	}
	return costs
}

// TotalQuartets returns the number of canonical quartets covered.
func TotalQuartets(tasks []Task) int {
	n := 0
	for i := range tasks {
		n += tasks[i].QuartetsInTask
	}
	return n
}
