package hfx

import (
	"testing"

	"hfxmd/internal/chem"
	"hfxmd/internal/mprt"
	"hfxmd/internal/steal"
)

// TestStealBuildMatchesSingleRankBitwise is the acceptance gate for the
// work-stealing build: with a clean cost model, the stolen schedule must
// be bitwise identical — not approximately equal — to a single-rank
// Builder with Threads = Ranks×ThreadsPerRank×UnitsPerThread, for every
// rank count, thread count and collective schedule, with stealing both
// on and off.
func TestStealBuildMatchesSingleRankBitwise(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(2, 6), 1e-12)
	p := testDensity(eng.Basis.NBasis, 11)
	const upt = 2
	for _, tpr := range []int{1, 2} {
		for _, ranks := range []int{1, 2, 3, 4, 8} {
			opts := DefaultOptions()
			opts.Threads = ranks * tpr * upt
			sb := NewBuilder(eng, scr, opts)
			jRef, kRef, _ := sb.BuildJK(p)

			for _, sch := range []mprt.Schedule{mprt.Binomial, mprt.DimExchange} {
				for _, stealing := range []bool{false, true} {
					b, err := NewStealBuilder(eng, scr, StealOptions{
						Ranks:          ranks,
						ThreadsPerRank: tpr,
						UnitsPerThread: upt,
						Schedule:       sch,
						Opts:           DefaultOptions(),
						Steal:          stealing,
						Seed:           7,
					})
					if err != nil {
						t.Fatal(err)
					}
					j, k, rep, err := b.BuildJK(p)
					if err != nil {
						t.Fatal(err)
					}
					for i, v := range jRef.Data {
						if j.Data[i] != v {
							t.Fatalf("ranks=%d tpr=%d %v steal=%v: J[%d] = %x, single-rank %x",
								ranks, tpr, sch, stealing, i, j.Data[i], v)
						}
					}
					for i, v := range kRef.Data {
						if k.Data[i] != v {
							t.Fatalf("ranks=%d tpr=%d %v steal=%v: K[%d] = %x, single-rank %x",
								ranks, tpr, sch, stealing, i, k.Data[i], v)
						}
					}
					if rep.QuartetsComputed == 0 {
						t.Fatal("no quartets computed")
					}
					if rep.Units != ranks*tpr*upt {
						t.Fatalf("report shows %d units, want %d", rep.Units, ranks*tpr*upt)
					}
					if rep.MeasuredSteps != int64(rep.PredictedSteps) {
						t.Fatalf("ranks=%d %v: measured steps %d, model predicts %d",
							ranks, sch, rep.MeasuredSteps, rep.PredictedSteps)
					}
					b.Close()
				}
			}
			sb.Close()
		}
	}
}

// TestStealBuildNoisyPinnedAcrossRankCounts pins the determinism
// contract under adversarial conditions: with injected cost-model noise,
// per-class skew and a straggler rank, every decomposition of the same
// total slot count — any rank count, thread count, schedule, stealing on
// or off — must produce identical bits, because the noise perturbs only
// the placement model (per task index, rank-count-independent) and the
// reduction order is canonical over slots.
func TestStealBuildNoisyPinnedAcrossRankCounts(t *testing.T) {
	eng, scr := setup(t, chem.Water(), 1e-12)
	p := testDensity(eng.Basis.NBasis, 3)
	noise := &steal.NoisePlan{
		Seed:          99,
		Pct:           0.3,
		ClassSkew:     map[int]float64{0: 0.4},
		StragglerRank: 1,
		StragglerSlow: 1.0,
	}
	// (ranks, threads/rank, units/thread) with ranks×tpr×upt = 16 slots.
	configs := [][3]int{{1, 2, 8}, {2, 2, 4}, {2, 1, 8}, {4, 1, 4}, {4, 2, 2}, {8, 2, 1}}
	var jPin, kPin []float64
	for _, cfg := range configs {
		for _, sch := range []mprt.Schedule{mprt.Binomial, mprt.DimExchange} {
			for _, stealing := range []bool{false, true} {
				b, err := NewStealBuilder(eng, scr, StealOptions{
					Ranks:          cfg[0],
					ThreadsPerRank: cfg[1],
					UnitsPerThread: cfg[2],
					Schedule:       sch,
					Opts:           DefaultOptions(),
					Steal:          stealing,
					Noise:          noise,
					Seed:           7,
				})
				if err != nil {
					t.Fatal(err)
				}
				j, k, _, err := b.BuildJK(p)
				if err != nil {
					t.Fatal(err)
				}
				if jPin == nil {
					jPin = append([]float64(nil), j.Data...)
					kPin = append([]float64(nil), k.Data...)
				} else {
					for i := range jPin {
						if j.Data[i] != jPin[i] || k.Data[i] != kPin[i] {
							t.Fatalf("cfg=%v %v steal=%v: noisy build diverged at element %d",
								cfg, sch, stealing, i)
						}
					}
				}
				b.Close()
			}
		}
	}
	// Non-power-of-two rank count with a different slot total: steal and
	// static arms of the same noisy plan must still agree bit for bit.
	var jRef, kRef []float64
	for _, stealing := range []bool{false, true} {
		b, err := NewStealBuilder(eng, scr, StealOptions{
			Ranks: 3, ThreadsPerRank: 2, UnitsPerThread: 4,
			Opts: DefaultOptions(), Steal: stealing, Noise: noise, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		j, k, _, err := b.BuildJK(p)
		if err != nil {
			t.Fatal(err)
		}
		if jRef == nil {
			jRef = append([]float64(nil), j.Data...)
			kRef = append([]float64(nil), k.Data...)
		} else {
			for i := range jRef {
				if j.Data[i] != jRef[i] || k.Data[i] != kRef[i] {
					t.Fatalf("ranks=3: steal arm diverged from static arm at element %d", i)
				}
			}
		}
		b.Close()
	}
}

// TestStealBuildReuseStableAcrossStealPatterns pins what makes the
// determinism structural: repeated builds on one StealBuilder take
// timing-dependent (and therefore different) steal decisions, yet every
// build must produce the same bits.
func TestStealBuildReuseStableAcrossStealPatterns(t *testing.T) {
	eng, scr := setup(t, chem.Water(), 1e-12)
	p := testDensity(eng.Basis.NBasis, 5)
	b, err := NewStealBuilder(eng, scr, StealOptions{
		Ranks: 4, UnitsPerThread: 4, Schedule: mprt.DimExchange,
		Opts: DefaultOptions(), Steal: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	j1, k1, rep1, err := b.BuildJK(p)
	if err != nil {
		t.Fatal(err)
	}
	jc := append([]float64(nil), j1.Data...)
	kc := append([]float64(nil), k1.Data...)
	for build := 2; build <= 4; build++ {
		j, k, rep, err := b.BuildJK(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range jc {
			if j.Data[i] != jc[i] || k.Data[i] != kc[i] {
				t.Fatalf("build %d diverged at element %d", build, i)
			}
		}
		if rep.MeasuredSteps != rep1.MeasuredSteps {
			t.Fatalf("build %d: %d collective steps, build 1 ran %d",
				build, rep.MeasuredSteps, rep1.MeasuredSteps)
		}
	}
}

// TestStealRecoversBalanceUnderStraggler is the load-recovery gate: with
// a straggler rank and mispredicted costs, the static placement's
// measured balance degrades (the predicted ratio stays blind to it)
// while stealing pulls work off the slow rank and recovers it.
func TestStealRecoversBalanceUnderStraggler(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(2, 6), 1e-12)
	p := testDensity(eng.Basis.NBasis, 11)
	noise := &steal.NoisePlan{
		Seed:          5,
		Pct:           0.3,
		StragglerRank: 2,
		StragglerSlow: 4.0,
	}
	run := func(stealing bool) StealReport {
		b, err := NewStealBuilder(eng, scr, StealOptions{
			Ranks: 4, UnitsPerThread: 4, Opts: DefaultOptions(),
			Steal: stealing, Noise: noise, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		_, _, rep, err := b.BuildJK(p)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	static := run(false)
	stolen := run(true)
	if static.BlocksMigrated != 0 {
		t.Fatalf("static run migrated %d blocks", static.BlocksMigrated)
	}
	if stolen.BlocksMigrated == 0 || stolen.StealsSucceeded == 0 {
		t.Fatalf("stealing run migrated %d blocks (%d successful steals)",
			stolen.BlocksMigrated, stolen.StealsSucceeded)
	}
	if stolen.IdleReclaimed <= 0 {
		t.Fatal("no idle wall reclaimed by stealing")
	}
	// The straggler runs 5x slow; static-only measured imbalance must be
	// far above the predicted ratio, and stealing must claw most of it
	// back. The 10% margin keeps the gate robust on noisy CI walls.
	if static.BalanceRatioMeasured < 1.5 {
		t.Fatalf("straggler did not degrade static measured balance: %.3f",
			static.BalanceRatioMeasured)
	}
	if stolen.BalanceRatioMeasured > 0.9*static.BalanceRatioMeasured {
		t.Fatalf("stealing did not recover balance: static %.3f, steal %.3f",
			static.BalanceRatioMeasured, stolen.BalanceRatioMeasured)
	}
}

// TestStealBuilderCalibrationReducesError drives the online feedback
// loop: successive builds observe measured walls, the calibrator's
// per-class factors converge, and the mean predicted-vs-measured error
// drops. The placement must also be recomputed once the epoch moves.
func TestStealBuilderCalibrationReducesError(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(2, 6), 1e-12)
	p := testDensity(eng.Basis.NBasis, 11)
	cal := steal.NewCalibrator(0.5)
	b, err := NewStealBuilder(eng, scr, StealOptions{
		Ranks: 2, UnitsPerThread: 4, Opts: DefaultOptions(),
		Steal: true, Calibrator: cal, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var first, last StealReport
	for build := 0; build < 4; build++ {
		_, _, rep, err := b.BuildJK(p)
		if err != nil {
			t.Fatal(err)
		}
		if build == 0 {
			first = rep
			if rep.Rebalanced {
				t.Fatal("first build claims a re-balance")
			}
		} else if !rep.Rebalanced {
			t.Fatalf("build %d did not re-balance after calibration moved", build+1)
		}
		last = rep
	}
	if first.CalibObservations == 0 {
		t.Fatal("calibrator saw no observations")
	}
	if last.CalibObservations <= first.CalibObservations {
		t.Fatal("observations did not accumulate across builds")
	}
	// The calibrated model of the final build must beat the raw cost
	// model on the same samples: scheduling jitter hits both error
	// series identically, so the gap is exactly the systematic bias the
	// calibration learned away.
	if last.CalibMeanAbsErr >= last.CalibRawAbsErr {
		t.Fatalf("calibration did not reduce prediction error: calibrated %.4f, raw %.4f",
			last.CalibMeanAbsErr, last.CalibRawAbsErr)
	}
}

// TestStealBuilderRejectsInvalid pins the option validation.
func TestStealBuilderRejectsInvalid(t *testing.T) {
	eng, scr := setup(t, chem.Water(), 1e-12)
	bad := DefaultOptions()
	bad.Dynamic = true
	if _, err := NewStealBuilder(eng, scr, StealOptions{Ranks: 2, Opts: bad}); err == nil {
		t.Fatal("expected error for Dynamic")
	}
	if _, err := NewStealBuilder(eng, scr, StealOptions{Ranks: 2, ThreadsPerRank: 3}); err == nil {
		t.Fatal("expected error for non-power-of-two threads per rank")
	}
	if _, err := NewStealBuilder(eng, scr, StealOptions{Ranks: 2, UnitsPerThread: 6}); err == nil {
		t.Fatal("expected error for non-power-of-two units per thread")
	}
	if _, err := NewStealBuilder(eng, scr, StealOptions{Ranks: 0}); err == nil {
		t.Fatal("expected error for 0 ranks")
	}
}
