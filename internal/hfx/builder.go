package hfx

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
	"hfxmd/internal/qpx"
	"hfxmd/internal/sched"
	"hfxmd/internal/screen"
	"hfxmd/internal/trace"
)

// Options configures a Builder.
type Options struct {
	// Threads is the number of worker goroutines ("hardware threads" in
	// the paper's terms). Zero means GOMAXPROCS.
	Threads int
	// Balancer selects the static load-balancing algorithm. The paper's
	// scheme is sched.LPT; sched.Block reproduces the naive layout.
	Balancer sched.Algorithm
	// Granule is the target task cost passed to GenerateTasks (0 = auto).
	Granule float64
	// DensityWeighted enables the P-weighted Schwarz quartet test, which
	// tightens screening as SCF converges.
	DensityWeighted bool
	// Vector turns on the QPX-structured batched kernel.
	Vector bool
	// Dynamic replaces the static assignment with a shared work queue
	// drained by the workers — the paper's work-stealing fallback for
	// when cost predictions are off. Tasks are dispatched in the static
	// balancer's cost order, so the static schedule remains the
	// performance model of record.
	Dynamic bool
	// Cost overrides the cost model (zero value = DefaultCostModel).
	Cost CostModel
}

// DefaultOptions returns the paper's production configuration.
func DefaultOptions() Options {
	return Options{
		Balancer:        sched.LPT,
		DensityWeighted: true,
		Vector:          true,
	}
}

// BaselineOptions reproduces the "directly comparable approach": naive
// block distribution of un-chunked pair work, no density weighting, no
// vectorization.
func BaselineOptions() Options {
	return Options{
		Balancer:        sched.Block,
		DensityWeighted: false,
		Vector:          false,
		Granule:         1e18, // one task per bra pair: no chunking
	}
}

// Report describes one Fock-build execution.
type Report struct {
	NTasks           int
	QuartetsComputed int64
	QuartetsScreened int64
	BalanceRatio     float64
	TheoreticalEff   float64
	Wall             time.Duration
	ReduceDepth      int
	LaneUtilization  float64 // 0 when Vector is off
	ScreeningStats   screen.Stats
	TaskCostStats    sched.CostStats
	// Timings charges wall-clock to the "compute" and "reduce" phases.
	Timings *trace.Timer
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("tasks=%d quartets=%d screened=%d balance=%.4f wall=%v reduce=%d lanes=%.2f",
		r.NTasks, r.QuartetsComputed, r.QuartetsScreened, r.BalanceRatio, r.Wall, r.ReduceDepth, r.LaneUtilization)
}

// Builder evaluates Coulomb (J) and exchange (K) matrices with the
// paper's task-parallel scheme. It is created once per geometry and
// reused across SCF iterations; BuildJK is safe to call repeatedly but
// not concurrently with itself.
type Builder struct {
	Eng   *integrals.Engine
	Scr   *screen.Result
	Opts  Options
	tasks []Task
	asn   *sched.Assignment
}

// NewBuilder prepares the task decomposition for the given engine and
// screening result.
func NewBuilder(eng *integrals.Engine, scr *screen.Result, opts Options) *Builder {
	if opts.Threads <= 0 {
		opts.Threads = runtime.GOMAXPROCS(0)
	}
	if opts.Cost == (CostModel{}) {
		opts.Cost = DefaultCostModel()
	}
	eng.Vector = opts.Vector
	b := &Builder{Eng: eng, Scr: scr, Opts: opts}
	b.tasks = GenerateTasks(eng.Basis, scr.Pairs, opts.Cost, opts.Granule)
	b.asn = sched.Balance(opts.Balancer, TaskCosts(b.tasks), opts.Threads)
	return b
}

// Tasks exposes the generated task list (read-only) for the machine
// simulator.
func (b *Builder) Tasks() []Task { return b.tasks }

// Assignment exposes the static schedule (read-only).
func (b *Builder) Assignment() *sched.Assignment { return b.asn }

// BuildJK computes the Coulomb and exchange matrices for density P:
//
//	J[μν] = Σ_{λσ} P[λσ] (μν|λσ),   K[μν] = Σ_{λσ} P[λσ] (μλ|νσ).
//
// Both are assembled in one pass over the screened canonical quartets.
func (b *Builder) BuildJK(p *linalg.Matrix) (j, k *linalg.Matrix, rep Report) {
	n := b.Eng.Basis.NBasis
	if p.Rows != n || p.Cols != n {
		panic("hfx: density dimension mismatch")
	}
	start := time.Now()
	nw := b.asn.NWorkers()
	jBufs := make([]*linalg.Matrix, nw)
	kBufs := make([]*linalg.Matrix, nw)
	var computed, screened atomic.Int64
	var stats qpx.Stats
	timings := trace.NewTimer()

	timings.Phase("compute", func() {
		var queue chan int
		if b.Opts.Dynamic {
			// Shared-queue dispatch in descending cost order (LPT order):
			// heaviest tasks first minimises the tail.
			queue = make(chan int, len(b.tasks))
			order := make([]int, len(b.tasks))
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(x, y int) bool {
				return b.tasks[order[x]].Cost > b.tasks[order[y]].Cost
			})
			for _, ti := range order {
				queue <- ti
			}
			close(queue)
		}
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				jw := linalg.NewSquare(n)
				kw := linalg.NewSquare(n)
				jBufs[w], kBufs[w] = jw, kw
				buf := make([]float64, b.Eng.MaxERIBufLen())
				var st *qpx.Stats
				if b.Opts.Vector {
					st = &stats
				}
				if queue != nil {
					for ti := range queue {
						b.runTask(&b.tasks[ti], p, jw, kw, buf, st, &computed, &screened)
					}
					return
				}
				for _, ti := range b.asn.Workers[w] {
					t := &b.tasks[ti]
					b.runTask(t, p, jw, kw, buf, st, &computed, &screened)
				}
			}(w)
		}
		wg.Wait()
	})

	// Hierarchical pairwise reduction (binary tree), mirroring the
	// machine-scale K allreduce over the torus.
	depth := 0
	timings.Phase("reduce", func() {
		for stride := 1; stride < nw; stride *= 2 {
			depth++
			var rwg sync.WaitGroup
			for lo := 0; lo+stride < nw; lo += 2 * stride {
				rwg.Add(1)
				go func(dst, src int) {
					defer rwg.Done()
					jBufs[dst].AXPY(1, jBufs[src])
					kBufs[dst].AXPY(1, kBufs[src])
				}(lo, lo+stride)
			}
			rwg.Wait()
		}
	})
	j, k = jBufs[0], kBufs[0]
	if nw == 1 {
		depth = 0
	}

	rep = Report{
		NTasks:           len(b.tasks),
		QuartetsComputed: computed.Load(),
		QuartetsScreened: screened.Load(),
		BalanceRatio:     b.asn.BalanceRatio(),
		TheoreticalEff:   b.asn.TheoreticalEfficiency(),
		Wall:             time.Since(start),
		ReduceDepth:      depth,
		ScreeningStats:   b.Scr.Stats,
		TaskCostStats:    sched.Summarize(TaskCosts(b.tasks)),
	}
	if b.Opts.Vector {
		rep.LaneUtilization = stats.Utilization()
	}
	return j, k, rep
}

// slot mappings of the 8 index permutations of a quartet (a,b,c,d) that
// leave the integral invariant: position k of the image takes the
// function index of original slot perm[k].
var eriPerms = [8][4]int{
	{0, 1, 2, 3}, // abcd
	{1, 0, 2, 3}, // bacd
	{0, 1, 3, 2}, // abdc
	{1, 0, 3, 2}, // badc
	{2, 3, 0, 1}, // cdab
	{2, 3, 1, 0}, // cdba
	{3, 2, 0, 1}, // dcab
	{3, 2, 1, 0}, // dcba
}

// runTask executes one task: loops its quartets, applies the quartet-level
// screen, evaluates surviving blocks, and scatters them into the private
// J/K buffers via the distinct permutation images.
func (b *Builder) runTask(t *Task, p, jw, kw *linalg.Matrix, buf []float64,
	st *qpx.Stats, computed, screened *atomic.Int64) {
	set := b.Eng.Basis
	bra := b.Scr.Pairs[t.Bra]
	for ji := t.KetLo; ji < t.KetHi; ji++ {
		ket := b.Scr.Pairs[ji]
		if b.Opts.DensityWeighted {
			pmax := screen.MaxDensityAbs(set, p, bra.A, bra.B, ket.A, ket.B)
			// Both the J and K contractions multiply the integral by a
			// density element; bound with the larger of the coupling
			// blocks and the bra/ket diagonal blocks used by J.
			pj := screen.MaxDensityAbs(set, p, bra.A, ket.A, bra.B, ket.B)
			if pj > pmax {
				pmax = pj
			}
			if !b.Scr.QuartetSurvivesWeighted(bra, ket, pmax) {
				screened.Add(1)
				continue
			}
		} else if !b.Scr.QuartetSurvives(bra, ket) {
			screened.Add(1)
			continue
		}
		computed.Add(1)
		scatterQuartet(b.Eng, bra.A, bra.B, ket.A, ket.B, p, jw, kw, buf, st)
	}
}

// scatterQuartet evaluates (ab|cd) once and adds its contributions to J
// and K for every distinct permutation image.
func scatterQuartet(eng *integrals.Engine, a, b, c, d int,
	p, jw, kw *linalg.Matrix, buf []float64, st *qpx.Stats) {
	set := eng.Basis
	shells := [4]int{a, b, c, d}
	var ns [4]int
	var offs [4]int
	for s := 0; s < 4; s++ {
		shp := &set.Shells[shells[s]]
		ns[s] = shp.NFuncs()
		offs[s] = shp.Index
	}
	blk := buf[:ns[0]*ns[1]*ns[2]*ns[3]]
	eng.ERIShell(a, b, c, d, blk, st)

	// Distinct images of the shell tuple under the 8 permutations.
	var images [8][4]int
	nimg := 0
	for _, perm := range eriPerms {
		img := [4]int{shells[perm[0]], shells[perm[1]], shells[perm[2]], shells[perm[3]]}
		dup := false
		for i := 0; i < nimg; i++ {
			if images[i] == img {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		images[nimg] = img
		nimg++
		// Scatter this image: image slot k holds original slot perm[k].
		var f [4]int
		for f[0] = 0; f[0] < ns[0]; f[0]++ {
			for f[1] = 0; f[1] < ns[1]; f[1]++ {
				for f[2] = 0; f[2] < ns[2]; f[2]++ {
					base := ((f[0]*ns[1]+f[1])*ns[2] + f[2]) * ns[3]
					for f[3] = 0; f[3] < ns[3]; f[3]++ {
						v := blk[base+f[3]]
						if v == 0 {
							continue
						}
						g0 := offs[perm[0]] + f[perm[0]]
						g1 := offs[perm[1]] + f[perm[1]]
						g2 := offs[perm[2]] + f[perm[2]]
						g3 := offs[perm[3]] + f[perm[3]]
						jw.Add(g0, g1, p.At(g2, g3)*v)
						kw.Add(g0, g2, p.At(g1, g3)*v)
					}
				}
			}
		}
	}
}

// ExchangeEnergy returns the exchange energy contribution for a
// closed-shell density: E_K = −¼ Σ_{μν} P[μν]·K[μν].
func ExchangeEnergy(p, k *linalg.Matrix) float64 {
	return -0.25 * linalg.TraceMul(p, k)
}

// CoulombEnergy returns E_J = ½ Σ P∘J.
func CoulombEnergy(p, j *linalg.Matrix) float64 {
	return 0.5 * linalg.TraceMul(p, j)
}
