package hfx

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
	"hfxmd/internal/qpx"
	"hfxmd/internal/sched"
	"hfxmd/internal/screen"
	"hfxmd/internal/trace"
)

// Options configures a Builder.
type Options struct {
	// Threads is the number of worker goroutines ("hardware threads" in
	// the paper's terms). Zero means GOMAXPROCS.
	Threads int
	// Balancer selects the static load-balancing algorithm. The paper's
	// scheme is sched.LPT; sched.Block reproduces the naive layout.
	Balancer sched.Algorithm
	// Granule is the target task cost passed to GenerateTasks (0 = auto).
	Granule float64
	// DensityWeighted enables the P-weighted Schwarz quartet test, which
	// tightens screening as SCF converges.
	DensityWeighted bool
	// Vector turns on the QPX-structured batched kernel. The flag is
	// scoped to this builder: two builders sharing one integrals.Engine
	// may disagree on it without affecting each other.
	Vector bool
	// Dynamic replaces the static assignment with a shared work queue
	// drained by the workers — the paper's work-stealing fallback for
	// when cost predictions are off. Tasks are dispatched in the static
	// balancer's cost order, so the static schedule remains the
	// performance model of record.
	Dynamic bool
	// Cost overrides the cost model (zero value = DefaultCostModel).
	Cost CostModel
}

// DefaultOptions returns the paper's production configuration.
func DefaultOptions() Options {
	return Options{
		Balancer:        sched.LPT,
		DensityWeighted: true,
		Vector:          true,
	}
}

// BaselineOptions reproduces the "directly comparable approach": naive
// block distribution of un-chunked pair work, no density weighting, no
// vectorization.
func BaselineOptions() Options {
	return Options{
		Balancer:        sched.Block,
		DensityWeighted: false,
		Vector:          false,
		Granule:         1e18, // one task per bra pair: no chunking
	}
}

// Report describes one Fock-build execution.
type Report struct {
	NTasks           int
	QuartetsComputed int64
	QuartetsScreened int64
	BalanceRatio     float64
	TheoreticalEff   float64
	Wall             time.Duration
	ReduceDepth      int
	LaneUtilization  float64 // 0 when Vector is off
	ScreeningStats   screen.Stats
	TaskCostStats    sched.CostStats
	// Timings charges wall-clock to the per-build phases ("zero",
	// "compute", "reduce"). The timer is owned by the builder's pool and
	// is reset at the start of every BuildJK, so the snapshot is valid
	// until the next build.
	Timings *trace.Timer
	// Metrics is the builder's lifetime metrics registry: buffer
	// allocation counts and bytes, build and reuse counts, cumulative
	// zeroing time, and the screening wall time. Counters persist across
	// builds (only the Timer inside is per-build).
	Metrics *trace.Registry
	// Pool summarises the persistent worker pool's state.
	Pool PoolStats
}

// PoolStats describes the persistent worker pool behind a Builder.
type PoolStats struct {
	// Workers is the number of persistent worker goroutines.
	Workers int
	// BuffersAllocated counts the long-lived buffers the pool owns
	// (per-worker J/K accumulators and ERI blocks), all allocated once
	// in NewBuilder.
	BuffersAllocated int64
	// BufferBytes is the total size of those buffers.
	BufferBytes int64
	// Builds is the number of BuildJK calls served so far.
	Builds int64
	// ReuseHits counts builds that reused the pool's buffers (every
	// build after the first).
	ReuseHits int64
	// ZeroTime is the cumulative CPU time workers spent zeroing their
	// accumulators across all builds (summed over workers).
	ZeroTime time.Duration
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("tasks=%d quartets=%d screened=%d balance=%.4f wall=%v reduce=%d lanes=%.2f",
		r.NTasks, r.QuartetsComputed, r.QuartetsScreened, r.BalanceRatio, r.Wall, r.ReduceDepth, r.LaneUtilization)
}

// PhaseTable renders a per-phase accounting table: the wall-clock phases
// of the build followed by the pool's lifetime counters.
func (r Report) PhaseTable() string {
	var sb strings.Builder
	if r.Timings != nil {
		fmt.Fprintf(&sb, "  %-22s %14s\n", "phase", "time")
		for _, p := range r.Timings.Phases() {
			fmt.Fprintf(&sb, "  %-22s %14v\n", p.Name, p.D)
		}
	}
	if r.Metrics != nil {
		fmt.Fprintf(&sb, "  %-22s %14s\n", "counter", "value")
		for _, c := range r.Metrics.Counters() {
			fmt.Fprintf(&sb, "  %-22s %14d\n", c.Name, c.Value)
		}
	}
	return sb.String()
}

// Builder evaluates Coulomb (J) and exchange (K) matrices with the
// paper's task-parallel scheme. It is created once per geometry and
// reused across SCF/MD iterations; BuildJK is safe to call repeatedly
// but not concurrently with itself.
//
// The builder owns a persistent worker pool: worker goroutines, their
// J/K accumulation matrices, ERI scratch and dispatch order are all
// allocated once in NewBuilder and reused (zeroed, not reallocated) by
// every BuildJK, so the steady-state build performs no heap allocation.
// Call Close when done to stop the workers; a finalizer stops them if
// the builder is garbage-collected without Close.
type Builder struct {
	Eng  *integrals.Engine
	Scr  *screen.Result
	Opts Options

	pl        *pool
	closeOnce sync.Once
}

// pool holds everything the persistent workers touch. The workers
// reference the pool, not the Builder, so an abandoned Builder can still
// be collected and its finalizer can shut the workers down.
type pool struct {
	eng       *integrals.Engine
	scr       *screen.Result
	opts      Options
	tasks     []Task
	costs     []float64
	asn       *sched.Assignment
	costStats sched.CostStats
	// order is the dynamic-dispatch order (descending cost), computed
	// once; nil when Dynamic is off.
	order []int

	nw      int
	jBufs   []*linalg.Matrix
	kBufs   []*linalg.Matrix
	eriBufs [][]float64
	scratch []*integrals.Scratch
	reg     *trace.Registry

	// Per-build state, written by the coordinator before workers are
	// woken (the wake-channel send establishes the happens-before edge).
	p        *linalg.Matrix
	stats    *qpx.Stats // points at qstats when Vector, else nil
	qstats   qpx.Stats
	computed atomic.Int64
	screened atomic.Int64
	next     atomic.Int64
	phase    int
	stride   int

	wake []chan struct{}
	done sync.WaitGroup
	quit chan struct{}
}

const (
	phaseCompute = iota
	phaseReduce
)

// NewBuilder prepares the task decomposition, allocates the per-worker
// buffers and starts the persistent worker pool.
func NewBuilder(eng *integrals.Engine, scr *screen.Result, opts Options) *Builder {
	if opts.Threads <= 0 {
		opts.Threads = runtime.GOMAXPROCS(0)
	}
	if opts.Cost == (CostModel{}) {
		opts.Cost = DefaultCostModel()
	}
	b := &Builder{Eng: eng, Scr: scr, Opts: opts}

	pl := &pool{eng: eng, scr: scr, opts: opts, reg: trace.NewRegistry()}
	pl.tasks = GenerateTasks(eng.Basis, scr.Pairs, opts.Cost, opts.Granule)
	pl.costs = TaskCosts(pl.tasks)
	pl.asn = sched.Balance(opts.Balancer, pl.costs, opts.Threads)
	pl.costStats = sched.Summarize(pl.costs)
	if opts.Dynamic {
		pl.order = make([]int, len(pl.tasks))
		for i := range pl.order {
			pl.order[i] = i
		}
		sort.Slice(pl.order, func(x, y int) bool {
			return pl.tasks[pl.order[x]].Cost > pl.tasks[pl.order[y]].Cost
		})
	}

	nw := pl.asn.NWorkers()
	pl.nw = nw
	n := eng.Basis.NBasis
	pl.jBufs = make([]*linalg.Matrix, nw)
	pl.kBufs = make([]*linalg.Matrix, nw)
	pl.eriBufs = make([][]float64, nw)
	pl.scratch = make([]*integrals.Scratch, nw)
	buflen := eng.MaxERIBufLen()
	for w := 0; w < nw; w++ {
		pl.jBufs[w] = linalg.NewSquare(n)
		pl.kBufs[w] = linalg.NewSquare(n)
		pl.eriBufs[w] = make([]float64, buflen)
		pl.scratch[w] = integrals.NewScratch()
	}
	if opts.Vector {
		pl.stats = &pl.qstats
	}

	// Pre-create every counter the hot path touches so steady-state
	// lookups never insert into the registry map.
	pl.reg.Counter("pool.buffers_alloc").Add(int64(3 * nw))
	pl.reg.Counter("pool.buffer_bytes").Add(int64(nw * (2*n*n + buflen) * 8))
	pl.reg.Counter("pool.builds")
	pl.reg.Counter("pool.reuse_hits")
	pl.reg.Counter("pool.zero_ns")
	pl.reg.Counter("screen.wall_ns").Add(scr.Stats.Wall().Nanoseconds())

	pl.wake = make([]chan struct{}, nw)
	pl.quit = make(chan struct{})
	for w := 0; w < nw; w++ {
		pl.wake[w] = make(chan struct{}, 1)
		go pl.worker(w)
	}

	b.pl = pl
	runtime.SetFinalizer(b, (*Builder).Close)
	return b
}

// Close stops the persistent worker pool. It is idempotent and must not
// be called concurrently with BuildJK. A finalizer calls Close if the
// builder is collected without it, so forgetting Close leaks nothing
// permanently — but calling it promptly releases the goroutines sooner.
func (b *Builder) Close() {
	b.closeOnce.Do(func() { close(b.pl.quit) })
	runtime.SetFinalizer(b, nil)
}

// Tasks exposes the generated task list (read-only) for the machine
// simulator.
func (b *Builder) Tasks() []Task { return b.pl.tasks }

// Assignment exposes the static schedule (read-only).
func (b *Builder) Assignment() *sched.Assignment { return b.pl.asn }

// worker is the persistent loop of one pool worker. It sleeps on its
// wake channel, executes the phase the coordinator selected, and
// signals completion through the pool WaitGroup.
func (pl *pool) worker(w int) {
	for {
		select {
		case <-pl.quit:
			return
		case <-pl.wake[w]:
		}
		switch pl.phase {
		case phaseCompute:
			pl.compute(w)
		case phaseReduce:
			pl.reduce(w)
		}
		pl.done.Done()
	}
}

// broadcast wakes every worker for the current phase and waits for all
// of them to finish it.
func (pl *pool) broadcast() {
	pl.done.Add(pl.nw)
	for w := 0; w < pl.nw; w++ {
		pl.wake[w] <- struct{}{}
	}
	pl.done.Wait()
}

// compute zeroes this worker's accumulators and runs its share of the
// task list — the static assignment, or the shared cost-ordered queue
// when Dynamic is on.
func (pl *pool) compute(w int) {
	t0 := time.Now()
	pl.jBufs[w].Zero()
	pl.kBufs[w].Zero()
	dz := time.Since(t0)
	pl.reg.Counter("pool.zero_ns").Add(dz.Nanoseconds())
	pl.reg.Timer.Charge("zero", dz)

	jw, kw := pl.jBufs[w], pl.kBufs[w]
	buf := pl.eriBufs[w]
	sc := pl.scratch[w]
	if pl.order != nil {
		for {
			i := int(pl.next.Add(1)) - 1
			if i >= len(pl.order) {
				return
			}
			pl.runTask(&pl.tasks[pl.order[i]], jw, kw, buf, sc)
		}
	}
	for _, ti := range pl.asn.Workers[w] {
		pl.runTask(&pl.tasks[ti], jw, kw, buf, sc)
	}
}

// reduce performs this worker's merge step of the pairwise reduction
// tree at the coordinator-set stride: worker w absorbs worker w+stride
// when w is a tree parent at this level.
func (pl *pool) reduce(w int) {
	s := pl.stride
	if w%(2*s) == 0 && w+s < pl.nw {
		pl.jBufs[w].AXPY(1, pl.jBufs[w+s])
		pl.kBufs[w].AXPY(1, pl.kBufs[w+s])
	}
}

// BuildJK computes the Coulomb and exchange matrices for density P:
//
//	J[μν] = Σ_{λσ} P[λσ] (μν|λσ),   K[μν] = Σ_{λσ} P[λσ] (μλ|νσ).
//
// Both are assembled in one pass over the screened canonical quartets.
//
// The returned matrices alias the pool's persistent accumulators: they
// are valid until the next BuildJK on this builder, which overwrites
// them. Callers that need both an old and a new result simultaneously
// must copy (linalg.Matrix.Clone or CopyFrom) before rebuilding.
func (b *Builder) BuildJK(p *linalg.Matrix) (j, k *linalg.Matrix, rep Report) {
	pl := b.pl
	n := pl.eng.Basis.NBasis
	if p.Rows != n || p.Cols != n {
		panic("hfx: density dimension mismatch")
	}
	start := time.Now()
	pl.reg.Timer.Reset()
	builds := pl.reg.Counter("pool.builds")
	builds.Add(1)
	if builds.Value() > 1 {
		pl.reg.Counter("pool.reuse_hits").Add(1)
	}
	pl.p = p
	pl.computed.Store(0)
	pl.screened.Store(0)
	pl.next.Store(0)
	pl.qstats.Reset()

	pl.phase = phaseCompute
	t0 := time.Now()
	pl.broadcast()
	pl.reg.Timer.Charge("compute", time.Since(t0))

	// Hierarchical pairwise reduction (binary tree), mirroring the
	// machine-scale K allreduce over the torus. The same persistent
	// workers execute the merge steps.
	depth := 0
	t0 = time.Now()
	for stride := 1; stride < pl.nw; stride *= 2 {
		depth++
		pl.phase = phaseReduce
		pl.stride = stride
		pl.broadcast()
	}
	pl.reg.Timer.Charge("reduce", time.Since(t0))
	pl.p = nil

	j, k = pl.jBufs[0], pl.kBufs[0]
	rep = Report{
		NTasks:           len(pl.tasks),
		QuartetsComputed: pl.computed.Load(),
		QuartetsScreened: pl.screened.Load(),
		BalanceRatio:     pl.asn.BalanceRatio(),
		TheoreticalEff:   pl.asn.TheoreticalEfficiency(),
		Wall:             time.Since(start),
		ReduceDepth:      depth,
		ScreeningStats:   pl.scr.Stats,
		TaskCostStats:    pl.costStats,
		Timings:          pl.reg.Timer,
		Metrics:          pl.reg,
		Pool: PoolStats{
			Workers:          pl.nw,
			BuffersAllocated: pl.reg.Counter("pool.buffers_alloc").Value(),
			BufferBytes:      pl.reg.Counter("pool.buffer_bytes").Value(),
			Builds:           builds.Value(),
			ReuseHits:        pl.reg.Counter("pool.reuse_hits").Value(),
			ZeroTime:         time.Duration(pl.reg.Counter("pool.zero_ns").Value()),
		},
	}
	if pl.opts.Vector {
		rep.LaneUtilization = pl.qstats.Utilization()
	}
	// Keep the builder (and thus its finalizer) from being collected
	// while a build is mid-flight on the pool it owns.
	runtime.KeepAlive(b)
	return j, k, rep
}

// slot mappings of the 8 index permutations of a quartet (a,b,c,d) that
// leave the integral invariant: position k of the image takes the
// function index of original slot perm[k].
var eriPerms = [8][4]int{
	{0, 1, 2, 3}, // abcd
	{1, 0, 2, 3}, // bacd
	{0, 1, 3, 2}, // abdc
	{1, 0, 3, 2}, // badc
	{2, 3, 0, 1}, // cdab
	{2, 3, 1, 0}, // cdba
	{3, 2, 0, 1}, // dcab
	{3, 2, 1, 0}, // dcba
}

// runTask executes one task: loops its quartets, applies the quartet-level
// screen, evaluates surviving blocks, and scatters them into the private
// J/K buffers via the distinct permutation images.
func (pl *pool) runTask(t *Task, jw, kw *linalg.Matrix, buf []float64, sc *integrals.Scratch) {
	set := pl.eng.Basis
	p := pl.p
	bra := pl.scr.Pairs[t.Bra]
	for ji := t.KetLo; ji < t.KetHi; ji++ {
		ket := pl.scr.Pairs[ji]
		if pl.opts.DensityWeighted {
			pmax := screen.MaxDensityAbs(set, p, bra.A, bra.B, ket.A, ket.B)
			// Both the J and K contractions multiply the integral by a
			// density element; bound with the larger of the coupling
			// blocks and the bra/ket diagonal blocks used by J.
			pj := screen.MaxDensityAbs(set, p, bra.A, ket.A, bra.B, ket.B)
			if pj > pmax {
				pmax = pj
			}
			if !pl.scr.QuartetSurvivesWeighted(bra, ket, pmax) {
				pl.screened.Add(1)
				continue
			}
		} else if !pl.scr.QuartetSurvives(bra, ket) {
			pl.screened.Add(1)
			continue
		}
		pl.computed.Add(1)
		scatterQuartet(pl.eng, bra.A, bra.B, ket.A, ket.B, p, jw, kw, buf,
			pl.opts.Vector, pl.stats, sc)
	}
}

// scatterQuartet evaluates (ab|cd) once and adds its contributions to J
// and K for every distinct permutation image.
func scatterQuartet(eng *integrals.Engine, a, b, c, d int,
	p, jw, kw *linalg.Matrix, buf []float64,
	vector bool, st *qpx.Stats, sc *integrals.Scratch) {
	set := eng.Basis
	shells := [4]int{a, b, c, d}
	var ns [4]int
	var offs [4]int
	for s := 0; s < 4; s++ {
		shp := &set.Shells[shells[s]]
		ns[s] = shp.NFuncs()
		offs[s] = shp.Index
	}
	blk := buf[:ns[0]*ns[1]*ns[2]*ns[3]]
	eng.ERIShellScratch(a, b, c, d, blk, vector, st, sc)

	// Distinct images of the shell tuple under the 8 permutations.
	var images [8][4]int
	nimg := 0
	for _, perm := range eriPerms {
		img := [4]int{shells[perm[0]], shells[perm[1]], shells[perm[2]], shells[perm[3]]}
		dup := false
		for i := 0; i < nimg; i++ {
			if images[i] == img {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		images[nimg] = img
		nimg++
		// Scatter this image: image slot k holds original slot perm[k].
		var f [4]int
		for f[0] = 0; f[0] < ns[0]; f[0]++ {
			for f[1] = 0; f[1] < ns[1]; f[1]++ {
				for f[2] = 0; f[2] < ns[2]; f[2]++ {
					base := ((f[0]*ns[1]+f[1])*ns[2] + f[2]) * ns[3]
					for f[3] = 0; f[3] < ns[3]; f[3]++ {
						v := blk[base+f[3]]
						if v == 0 {
							continue
						}
						g0 := offs[perm[0]] + f[perm[0]]
						g1 := offs[perm[1]] + f[perm[1]]
						g2 := offs[perm[2]] + f[perm[2]]
						g3 := offs[perm[3]] + f[perm[3]]
						jw.Add(g0, g1, p.At(g2, g3)*v)
						kw.Add(g0, g2, p.At(g1, g3)*v)
					}
				}
			}
		}
	}
}

// ExchangeEnergy returns the exchange energy contribution for a
// closed-shell density: E_K = −¼ Σ_{μν} P[μν]·K[μν].
func ExchangeEnergy(p, k *linalg.Matrix) float64 {
	return -0.25 * linalg.TraceMul(p, k)
}

// CoulombEnergy returns E_J = ½ Σ P∘J.
func CoulombEnergy(p, j *linalg.Matrix) float64 {
	return 0.5 * linalg.TraceMul(p, j)
}
