package hfx

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hfxmd/internal/basis"
	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
	"hfxmd/internal/qpx"
	"hfxmd/internal/sched"
	"hfxmd/internal/screen"
	"hfxmd/internal/steal"
	"hfxmd/internal/trace"
)

// Options configures a Builder.
type Options struct {
	// Threads is the number of worker goroutines ("hardware threads" in
	// the paper's terms). Zero means GOMAXPROCS.
	Threads int
	// Balancer selects the static load-balancing algorithm. The paper's
	// scheme is sched.LPT; sched.Block reproduces the naive layout.
	Balancer sched.Algorithm
	// Granule is the target task cost passed to GenerateTasks (0 = auto).
	Granule float64
	// DensityWeighted enables the P-weighted Schwarz quartet test, which
	// tightens screening as SCF converges.
	DensityWeighted bool
	// Vector turns on the QPX-structured batched kernel. The flag is
	// scoped to this builder: two builders sharing one integrals.Engine
	// may disagree on it without affecting each other.
	Vector bool
	// Dynamic replaces the static assignment with a shared work queue
	// drained by the workers — the paper's work-stealing fallback for
	// when cost predictions are off. Tasks are dispatched in the static
	// balancer's cost order, so the static schedule remains the
	// performance model of record.
	Dynamic bool
	// Cost overrides the cost model (zero value = DefaultCostModel).
	Cost CostModel
	// CacheBudgetBytes enables semi-direct builds: up to this many bytes
	// of surviving ERI quartet blocks are cached on first evaluation and
	// replayed (re-contracted against the new density, skipping integral
	// evaluation) on later builds. Zero disables the cache (fully direct).
	// Admission is priority-ordered by Schwarz bound × predicted block
	// cost; see internal/hfx/ericache.go.
	CacheBudgetBytes int64
	// NoEarlyExit disables the sorted-pair early exit in the quartet loop
	// (the ket list is sorted by descending Q, so a failed Schwarz product
	// normally terminates the whole ket range). Ablation/testing knob; the
	// results are bitwise identical either way.
	NoEarlyExit bool
	// Calibrator, when non-nil, makes the pool time every task it executes
	// and fold (work class, raw predicted cost, measured wall) samples into
	// the calibrator's per-class correction factors. The hot path stays
	// untimed when nil.
	Calibrator *steal.Calibrator
}

// DefaultOptions returns the paper's production configuration.
func DefaultOptions() Options {
	return Options{
		Balancer:        sched.LPT,
		DensityWeighted: true,
		Vector:          true,
	}
}

// BaselineOptions reproduces the "directly comparable approach": naive
// block distribution of un-chunked pair work, no density weighting, no
// vectorization.
func BaselineOptions() Options {
	return Options{
		Balancer:        sched.Block,
		DensityWeighted: false,
		Vector:          false,
		Granule:         1e18, // one task per bra pair: no chunking
	}
}

// Report describes one Fock-build execution.
type Report struct {
	NTasks           int
	QuartetsComputed int64
	QuartetsScreened int64
	BalanceRatio     float64
	TheoreticalEff   float64
	Wall             time.Duration
	ReduceDepth      int
	LaneUtilization  float64 // 0 when Vector is off
	ScreeningStats   screen.Stats
	TaskCostStats    sched.CostStats
	// Timings charges wall-clock to the per-build phases ("zero",
	// "compute", "reduce"). The timer is owned by the builder's pool and
	// is reset at the start of every BuildJK, so the snapshot is valid
	// until the next build.
	Timings *trace.Timer
	// Metrics is the builder's lifetime metrics registry: buffer
	// allocation counts and bytes, build and reuse counts, cumulative
	// zeroing time, and the screening wall time. Counters persist across
	// builds (only the Timer inside is per-build).
	Metrics *trace.Registry
	// Pool summarises the persistent worker pool's state.
	Pool PoolStats
	// Cache summarises the semi-direct ERI block cache for this build.
	// Cache.Enabled is false for fully direct builders.
	Cache CacheStats
}

// PoolStats describes the persistent worker pool behind a Builder.
type PoolStats struct {
	// Workers is the number of persistent worker goroutines.
	Workers int
	// BuffersAllocated counts the long-lived buffers the pool owns
	// (per-worker J/K accumulators and ERI blocks), all allocated once
	// in NewBuilder.
	BuffersAllocated int64
	// BufferBytes is the total size of those buffers.
	BufferBytes int64
	// Builds is the number of BuildJK calls served so far.
	Builds int64
	// ReuseHits counts builds that reused the pool's buffers (every
	// build after the first).
	ReuseHits int64
	// ZeroTime is the cumulative CPU time workers spent zeroing their
	// accumulators across all builds (summed over workers).
	ZeroTime time.Duration
	// CacheSlabBytes is the payload capacity of the semi-direct ERI cache
	// slabs (0 when the cache is disabled). Included in BufferBytes.
	CacheSlabBytes int64
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("tasks=%d quartets=%d screened=%d balance=%.4f wall=%v reduce=%d lanes=%.2f",
		r.NTasks, r.QuartetsComputed, r.QuartetsScreened, r.BalanceRatio, r.Wall, r.ReduceDepth, r.LaneUtilization)
}

// PhaseTable renders a per-phase accounting table: the wall-clock phases
// of the build followed by the pool's lifetime counters.
func (r Report) PhaseTable() string {
	var sb strings.Builder
	if r.Timings != nil {
		fmt.Fprintf(&sb, "  %-22s %14s\n", "phase", "time")
		for _, p := range r.Timings.Phases() {
			fmt.Fprintf(&sb, "  %-22s %14v\n", p.Name, p.D)
		}
	}
	if r.Metrics != nil {
		fmt.Fprintf(&sb, "  %-22s %14s\n", "counter", "value")
		for _, c := range r.Metrics.Counters() {
			fmt.Fprintf(&sb, "  %-22s %14d\n", c.Name, c.Value)
		}
	}
	return sb.String()
}

// Builder evaluates Coulomb (J) and exchange (K) matrices with the
// paper's task-parallel scheme. It is created once per geometry and
// reused across SCF/MD iterations; BuildJK is safe to call repeatedly
// but not concurrently with itself.
//
// The builder owns a persistent worker pool: worker goroutines, their
// J/K accumulation matrices, ERI scratch and dispatch order are all
// allocated once in NewBuilder and reused (zeroed, not reallocated) by
// every BuildJK, so the steady-state build performs no heap allocation.
// Call Close when done to stop the workers; a finalizer stops them if
// the builder is garbage-collected without Close.
type Builder struct {
	Eng  *integrals.Engine
	Scr  *screen.Result
	Opts Options

	pl        *pool
	closeOnce sync.Once
}

// pool holds everything the persistent workers touch. The workers
// reference the pool, not the Builder, so an abandoned Builder can still
// be collected and its finalizer can shut the workers down.
type pool struct {
	eng       *integrals.Engine
	scr       *screen.Result
	opts      Options
	tasks     []Task
	costs     []float64
	asn       *sched.Assignment
	costStats sched.CostStats
	// order is the dynamic-dispatch order (descending cost), computed
	// once; nil when Dynamic is off.
	order []int
	// classes and calib are set when Options.Calibrator is non-nil: tasks
	// are timed and observed into the calibrator per work class.
	classes []int
	calib   *steal.Calibrator

	nw      int
	jBufs   []*linalg.Matrix
	kBufs   []*linalg.Matrix
	eriBufs [][]float64
	scratch []*integrals.Scratch
	reg     *trace.Registry
	cache   *eriCache // nil when Options.CacheBudgetBytes admitted nothing

	// Per-build state, written by the coordinator before workers are
	// woken (the wake-channel send establishes the happens-before edge).
	p        *linalg.Matrix
	pmaxAll  float64    // max |P| over the whole density (density-weighted runs)
	stats    *qpx.Stats // points at qstats when Vector, else nil
	qstats   qpx.Stats
	computed atomic.Int64
	screened atomic.Int64
	next     atomic.Int64
	phase    int
	stride   int

	// Per-build cache traffic, folded into the ericache.* counters and
	// Report.Cache at the end of BuildJK.
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheFillBytes atomic.Int64

	wake []chan struct{}
	done sync.WaitGroup
	quit chan struct{}
}

const (
	phaseCompute = iota
	phaseReduce
)

// NewBuilder prepares the task decomposition, allocates the per-worker
// buffers and starts the persistent worker pool.
func NewBuilder(eng *integrals.Engine, scr *screen.Result, opts Options) *Builder {
	if opts.Threads <= 0 {
		opts.Threads = runtime.GOMAXPROCS(0)
	}
	if opts.Cost == (CostModel{}) {
		opts.Cost = DefaultCostModel()
	}
	tasks := GenerateTasks(eng.Basis, scr.Pairs, opts.Cost, opts.Granule)
	costs := TaskCosts(tasks)
	asn := sched.Balance(opts.Balancer, costs, opts.Threads)
	b := &Builder{Eng: eng, Scr: scr, Opts: opts}
	b.pl = newPool(eng, scr, opts, tasks, costs, asn)
	runtime.SetFinalizer(b, (*Builder).Close)
	return b
}

// newPool allocates the per-worker buffers and starts the persistent
// workers for an already-prepared task decomposition. The assignment may
// be a rank-local slice of a larger global schedule (see DistBuilder), so
// the pool takes the decomposition as inputs instead of computing it.
func newPool(eng *integrals.Engine, scr *screen.Result, opts Options,
	tasks []Task, costs []float64, asn *sched.Assignment) *pool {
	pl := &pool{eng: eng, scr: scr, opts: opts, reg: trace.NewRegistry()}
	pl.tasks = tasks
	pl.costs = costs
	pl.asn = asn
	pl.costStats = sched.Summarize(pl.costs)
	if opts.Dynamic {
		pl.order = make([]int, len(pl.tasks))
		for i := range pl.order {
			pl.order[i] = i
		}
		sort.Slice(pl.order, func(x, y int) bool {
			return pl.tasks[pl.order[x]].Cost > pl.tasks[pl.order[y]].Cost
		})
	}

	nw := pl.asn.NWorkers()
	pl.nw = nw
	n := eng.Basis.NBasis
	pl.jBufs = make([]*linalg.Matrix, nw)
	pl.kBufs = make([]*linalg.Matrix, nw)
	pl.eriBufs = make([][]float64, nw)
	pl.scratch = make([]*integrals.Scratch, nw)
	buflen := eng.MaxERIBufLen()
	for w := 0; w < nw; w++ {
		pl.jBufs[w] = linalg.NewSquare(n)
		pl.kBufs[w] = linalg.NewSquare(n)
		pl.eriBufs[w] = make([]float64, buflen)
		pl.scratch[w] = integrals.NewScratch()
	}
	if opts.Vector {
		pl.stats = &pl.qstats
	}
	if opts.Calibrator != nil {
		pl.classes = TaskClasses(eng.Basis, scr.Pairs, tasks)
		pl.calib = opts.Calibrator
	}
	if opts.CacheBudgetBytes > 0 {
		pl.cache = newERICache(eng.Basis, scr.Pairs, pl.tasks, pl.asn,
			opts.Cost, opts.CacheBudgetBytes)
	}

	// Pre-create every counter the hot path touches so steady-state
	// lookups never insert into the registry map.
	pl.reg.Counter("pool.buffers_alloc").Add(int64(3 * nw))
	pl.reg.Counter("pool.buffer_bytes").Add(int64(nw * (2*n*n + buflen) * 8))
	pl.reg.Counter("pool.builds")
	pl.reg.Counter("pool.reuse_hits")
	pl.reg.Counter("pool.zero_ns")
	pl.reg.Counter("screen.wall_ns").Add(scr.Stats.Wall().Nanoseconds())
	if pl.cache != nil {
		pl.reg.Counter("pool.buffers_alloc").Add(int64(len(pl.cache.shards)))
		pl.reg.Counter("pool.buffer_bytes").Add(pl.cache.slabBytes())
		pl.reg.Counter("ericache.hits")
		pl.reg.Counter("ericache.misses")
		pl.reg.Counter("ericache.bytes")
		pl.reg.Counter("ericache.evictions")
		pl.reg.Counter("ericache.admitted").Add(pl.cache.admitted)
	}

	pl.wake = make([]chan struct{}, nw)
	pl.quit = make(chan struct{})
	for w := 0; w < nw; w++ {
		pl.wake[w] = make(chan struct{}, 1)
		go pl.worker(w)
	}
	return pl
}

// close stops the pool's persistent workers. Idempotence is the owner's
// responsibility (Builder.Close, DistBuilder.Close).
func (pl *pool) close() { close(pl.quit) }

// Close stops the persistent worker pool. It is idempotent and must not
// be called concurrently with BuildJK. A finalizer calls Close if the
// builder is collected without it, so forgetting Close leaks nothing
// permanently — but calling it promptly releases the goroutines sooner.
func (b *Builder) Close() {
	b.closeOnce.Do(func() { b.pl.close() })
	runtime.SetFinalizer(b, nil)
}

// Tasks exposes the generated task list (read-only) for the machine
// simulator.
func (b *Builder) Tasks() []Task { return b.pl.tasks }

// Assignment exposes the static schedule (read-only).
func (b *Builder) Assignment() *sched.Assignment { return b.pl.asn }

// worker is the persistent loop of one pool worker. It sleeps on its
// wake channel, executes the phase the coordinator selected, and
// signals completion through the pool WaitGroup.
func (pl *pool) worker(w int) {
	for {
		select {
		case <-pl.quit:
			return
		case <-pl.wake[w]:
		}
		switch pl.phase {
		case phaseCompute:
			pl.compute(w)
		case phaseReduce:
			pl.reduce(w)
		}
		pl.done.Done()
	}
}

// broadcast wakes every worker for the current phase and waits for all
// of them to finish it.
func (pl *pool) broadcast() {
	pl.done.Add(pl.nw)
	for w := 0; w < pl.nw; w++ {
		pl.wake[w] <- struct{}{}
	}
	pl.done.Wait()
}

// compute zeroes this worker's accumulators and runs its share of the
// task list — the static assignment, or the shared cost-ordered queue
// when Dynamic is on.
func (pl *pool) compute(w int) {
	t0 := time.Now()
	pl.jBufs[w].Zero()
	pl.kBufs[w].Zero()
	dz := time.Since(t0)
	pl.reg.Counter("pool.zero_ns").Add(dz.Nanoseconds())
	pl.reg.Timer.Charge("zero", dz)

	jw, kw := pl.jBufs[w], pl.kBufs[w]
	buf := pl.eriBufs[w]
	sc := pl.scratch[w]
	if pl.order != nil {
		for {
			i := int(pl.next.Add(1)) - 1
			if i >= len(pl.order) {
				return
			}
			pl.runTaskObserved(pl.order[i], jw, kw, buf, sc)
		}
	}
	for _, ti := range pl.asn.Workers[w] {
		pl.runTaskObserved(ti, jw, kw, buf, sc)
	}
}

// runTaskObserved wraps runTask with a per-task wall measurement folded
// into the calibrator as a (class, raw predicted, measured) sample. With
// no calibrator the hot path stays untimed.
func (pl *pool) runTaskObserved(ti int, jw, kw *linalg.Matrix, buf []float64, sc *integrals.Scratch) {
	if pl.calib == nil {
		pl.runTask(ti, jw, kw, buf, sc)
		return
	}
	t0 := time.Now()
	pl.runTask(ti, jw, kw, buf, sc)
	pl.calib.Observe(pl.classes[ti], pl.tasks[ti].Cost, float64(time.Since(t0).Nanoseconds()))
}

// reduce performs this worker's merge step of the pairwise reduction
// tree at the coordinator-set stride: worker w absorbs worker w+stride
// when w is a tree parent at this level.
func (pl *pool) reduce(w int) {
	s := pl.stride
	if w%(2*s) == 0 && w+s < pl.nw {
		pl.jBufs[w].AXPY(1, pl.jBufs[w+s])
		pl.kBufs[w].AXPY(1, pl.kBufs[w+s])
	}
}

// BuildJK computes the Coulomb and exchange matrices for density P:
//
//	J[μν] = Σ_{λσ} P[λσ] (μν|λσ),   K[μν] = Σ_{λσ} P[λσ] (μλ|νσ).
//
// Both are assembled in one pass over the screened canonical quartets.
//
// The returned matrices alias the pool's persistent accumulators: they
// are valid until the next BuildJK on this builder, which overwrites
// them. Callers that need both an old and a new result simultaneously
// must copy (linalg.Matrix.Clone or CopyFrom) before rebuilding.
func (b *Builder) BuildJK(p *linalg.Matrix) (j, k *linalg.Matrix, rep Report) {
	pl := b.pl
	start := time.Now()
	depth := pl.runBuild(p)
	j, k = pl.jBufs[0], pl.kBufs[0]
	rep = pl.buildReport(start, depth)
	// Keep the builder (and thus its finalizer) from being collected
	// while a build is mid-flight on the pool it owns.
	runtime.KeepAlive(b)
	return j, k, rep
}

// runBuild executes one compute+reduce cycle on the pool and returns the
// reduction depth. On return jBufs[0]/kBufs[0] hold the pool's J and K
// (the full matrices for a Builder, this rank's partials for a
// DistBuilder rank pool).
func (pl *pool) runBuild(p *linalg.Matrix) (depth int) {
	pl.prepareBuild(p)

	pl.phase = phaseCompute
	t0 := time.Now()
	pl.broadcast()
	pl.reg.Timer.Charge("compute", time.Since(t0))

	// Hierarchical pairwise reduction (binary tree), mirroring the
	// machine-scale K allreduce over the torus. The same persistent
	// workers execute the merge steps.
	t0 = time.Now()
	for stride := 1; stride < pl.nw; stride *= 2 {
		depth++
		pl.phase = phaseReduce
		pl.stride = stride
		pl.broadcast()
	}
	pl.reg.Timer.Charge("reduce", time.Since(t0))
	pl.p = nil
	return depth
}

// prepareBuild resets the pool's per-build state for density P: timers,
// traffic counters, the shared density pointer and the global density
// bound. Callers that drive the workers themselves (StealBuilder)
// use it without broadcast.
func (pl *pool) prepareBuild(p *linalg.Matrix) {
	n := pl.eng.Basis.NBasis
	if p.Rows != n || p.Cols != n {
		panic("hfx: density dimension mismatch")
	}
	pl.reg.Timer.Reset()
	builds := pl.reg.Counter("pool.builds")
	builds.Add(1)
	if builds.Value() > 1 {
		pl.reg.Counter("pool.reuse_hits").Add(1)
	}
	pl.p = p
	pl.computed.Store(0)
	pl.screened.Store(0)
	pl.next.Store(0)
	pl.qstats.Reset()
	pl.cacheHits.Store(0)
	pl.cacheMisses.Store(0)
	pl.cacheFillBytes.Store(0)
	pl.pmaxAll = 0
	if pl.opts.DensityWeighted {
		// One pass over P gives a global density bound; with the ket list
		// sorted by descending Q it turns the density-weighted test into a
		// monotone early-exit pre-check (see runTask).
		for _, v := range p.Data {
			if v < 0 {
				v = -v
			}
			if v > pl.pmaxAll {
				pl.pmaxAll = v
			}
		}
	}
}

// buildReport assembles the Report for the build cycle that just ran.
func (pl *pool) buildReport(start time.Time, depth int) Report {
	builds := pl.reg.Counter("pool.builds")
	rep := Report{
		NTasks:           len(pl.tasks),
		QuartetsComputed: pl.computed.Load(),
		QuartetsScreened: pl.screened.Load(),
		BalanceRatio:     pl.asn.BalanceRatio(),
		TheoreticalEff:   pl.asn.TheoreticalEfficiency(),
		Wall:             time.Since(start),
		ReduceDepth:      depth,
		ScreeningStats:   pl.scr.Stats,
		TaskCostStats:    pl.costStats,
		Timings:          pl.reg.Timer,
		Metrics:          pl.reg,
		Pool: PoolStats{
			Workers:          pl.nw,
			BuffersAllocated: pl.reg.Counter("pool.buffers_alloc").Value(),
			BufferBytes:      pl.reg.Counter("pool.buffer_bytes").Value(),
			Builds:           builds.Value(),
			ReuseHits:        pl.reg.Counter("pool.reuse_hits").Value(),
			ZeroTime:         time.Duration(pl.reg.Counter("pool.zero_ns").Value()),
		},
	}
	if pl.opts.Vector {
		rep.LaneUtilization = pl.qstats.Utilization()
	}
	rep.Cache.BudgetBytes = pl.opts.CacheBudgetBytes
	if pl.cache != nil {
		pl.reg.Counter("ericache.hits").Add(pl.cacheHits.Load())
		pl.reg.Counter("ericache.misses").Add(pl.cacheMisses.Load())
		pl.reg.Counter("ericache.bytes").Add(pl.cacheFillBytes.Load())
		rep.Cache.Enabled = true
		rep.Cache.UsedBytes = pl.cache.usedBytes
		rep.Cache.AdmittedQuartets = pl.cache.admitted
		rep.Cache.ResidentBlocks = pl.cache.filled.Load()
		rep.Cache.Hits = pl.cacheHits.Load()
		rep.Cache.Misses = pl.cacheMisses.Load()
		rep.Cache.Evictions = pl.cache.evictions.Load()
		rep.Pool.CacheSlabBytes = pl.cache.slabBytes()
	}
	return rep
}

// slot mappings of the 8 index permutations of a quartet (a,b,c,d) that
// leave the integral invariant: position k of the image takes the
// function index of original slot perm[k].
var eriPerms = [8][4]int{
	{0, 1, 2, 3}, // abcd
	{1, 0, 2, 3}, // bacd
	{0, 1, 3, 2}, // abdc
	{1, 0, 3, 2}, // badc
	{2, 3, 0, 1}, // cdab
	{2, 3, 1, 0}, // cdba
	{3, 2, 0, 1}, // dcab
	{3, 2, 1, 0}, // dcba
}

// scatterPerm is one distinct permutation image of a quartet symmetry
// class, prepared for the flat scatter kernel: the image contributes
// J[g(s0),g(s1)] += P[g(s2),g(in)]·v and K[g(s0),g(s2)] += P[g(s1),g(in)]·v,
// where slot in = perm[3] is kept innermost so both updates become dot
// products over a contiguous P row. o0 < o1 < o2 are the remaining slots.
type scatterPerm struct {
	s0, s1, s2, in int
	o0, o1, o2     int
}

// classScatter holds the deduplicated permutation images per quartet
// symmetry class, computed once at package init instead of per quartet per
// build. With canonical pairs (A ≤ B, guaranteed by screen.BuildPairList)
// the duplicate structure of the 8 images depends only on three booleans:
// a==b (bit 0), c==d (bit 1), (a,b)==(c,d) (bit 2).
var classScatter [8][]scatterPerm

func init() {
	for ci := range classScatter {
		// Representative shell tuple for the class: distinct values except
		// for the equalities the class encodes.
		a, b, c, d := 0, 1, 2, 3
		if ci&1 != 0 {
			b = a
		}
		if ci&2 != 0 {
			d = c
		}
		if ci&4 != 0 {
			c, d = a, b
		}
		rep := [4]int{a, b, c, d}
		var images [8][4]int
		nimg := 0
		for _, perm := range eriPerms {
			img := [4]int{rep[perm[0]], rep[perm[1]], rep[perm[2]], rep[perm[3]]}
			dup := false
			for i := 0; i < nimg; i++ {
				if images[i] == img {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			images[nimg] = img
			nimg++
			sp := scatterPerm{s0: perm[0], s1: perm[1], s2: perm[2], in: perm[3]}
			outs := [3]*int{&sp.o0, &sp.o1, &sp.o2}
			oi := 0
			for s := 0; s < 4; s++ {
				if s != sp.in {
					*outs[oi] = s
					oi++
				}
			}
			classScatter[ci] = append(classScatter[ci], sp)
		}
	}
}

// runTask executes one task: loops its quartets, applies the quartet-level
// screen with an early exit over the Q-sorted ket range, fetches or
// evaluates surviving blocks (semi-direct replay when cached), and scatters
// them into the private J/K buffers.
func (pl *pool) runTask(ti int, jw, kw *linalg.Matrix, buf []float64, sc *integrals.Scratch) {
	t := &pl.tasks[ti]
	set := pl.eng.Basis
	p := pl.p
	bra := pl.scr.Pairs[t.Bra]
	var slots []int32
	var shard *cacheShard
	if pl.cache != nil {
		slots = pl.cache.taskSlots[ti]
		shard = &pl.cache.shards[pl.cache.taskShard[ti]]
	}
	dw := pl.opts.DensityWeighted
	noEarly := pl.opts.NoEarlyExit
	for ji := t.KetLo; ji < t.KetHi; ji++ {
		ket := pl.scr.Pairs[ji]
		if dw {
			// The ket range ascends through pairs sorted by descending Q,
			// so the Schwarz product only shrinks: once the conservative
			// global-density bound fails, every remaining quartet fails
			// the (tighter) local test too.
			if !noEarly && !pl.scr.QuartetSurvivesWeighted(bra, ket, pl.pmaxAll) {
				pl.screened.Add(int64(t.KetHi - ji))
				break
			}
			pmax := screen.MaxDensityAbsQuartet(set, p, bra.A, bra.B, ket.A, ket.B)
			if !pl.scr.QuartetSurvivesWeighted(bra, ket, pmax) {
				pl.screened.Add(1)
				continue
			}
		} else if !pl.scr.QuartetSurvives(bra, ket) {
			if noEarly {
				pl.screened.Add(1)
				continue
			}
			pl.screened.Add(int64(t.KetHi - ji))
			break
		}
		pl.computed.Add(1)
		a, b, c, d := bra.A, bra.B, ket.A, ket.B
		if shard != nil {
			if slot := slots[ji-t.KetLo]; slot >= 0 {
				off := shard.offs[slot]
				blk := shard.slab[off : off+int64(shard.lens[slot])]
				if shard.filled[slot] {
					pl.cacheHits.Add(1)
				} else {
					// Fill on first compute: evaluate straight into the
					// slab so the scatter below reads the cached copy.
					pl.eng.ERIShellScratch(a, b, c, d, blk, pl.opts.Vector, pl.stats, sc)
					shard.filled[slot] = true
					pl.cache.filled.Add(1)
					pl.cacheFillBytes.Add(int64(len(blk)) * 8)
					pl.cacheMisses.Add(1)
				}
				scatterBlock(set, a, b, c, d, blk, p, jw, kw)
				continue
			}
			pl.cacheMisses.Add(1)
		}
		blk := buf[:eriBlockLen(set, a, b, c, d)]
		pl.eng.ERIShellScratch(a, b, c, d, blk, pl.opts.Vector, pl.stats, sc)
		scatterBlock(set, a, b, c, d, blk, p, jw, kw)
	}
}

// scatterBlock adds the contributions of the evaluated (ab|cd) block to J
// and K for every distinct permutation image of the quartet's symmetry
// class. The inner loop runs over original slot in = perm[3], which fixes
// the J and K target elements, so both updates reduce to dot products of
// the block row against hoisted P-row slices — no per-element At/Add calls.
func scatterBlock(set *basis.Set, a, b, c, d int, blk []float64,
	p, jw, kw *linalg.Matrix) {
	ci := 0
	if a == b {
		ci |= 1
	}
	if c == d {
		ci |= 2
	}
	if a == c && b == d {
		ci |= 4
	}
	perms := classScatter[ci]

	sha, shb := &set.Shells[a], &set.Shells[b]
	shc, shd := &set.Shells[c], &set.Shells[d]
	offs := [4]int{sha.Index, shb.Index, shc.Index, shd.Index}

	if len(blk) == 1 {
		// ssss fast path: one integral, direct scalar updates.
		v := blk[0]
		for i := range perms {
			sp := &perms[i]
			jw.Row(offs[sp.s0])[offs[sp.s1]] += p.Row(offs[sp.s2])[offs[sp.in]] * v
			kw.Row(offs[sp.s0])[offs[sp.s2]] += p.Row(offs[sp.s1])[offs[sp.in]] * v
		}
		return
	}

	ns := [4]int{sha.NFuncs(), shb.NFuncs(), shc.NFuncs(), shd.NFuncs()}
	st := [4]int{ns[1] * ns[2] * ns[3], ns[2] * ns[3], ns[3], 1}
	for i := range perms {
		sp := &perms[i]
		o0, o1, o2, in := sp.o0, sp.o1, sp.o2, sp.in
		nin, stin, offin := ns[in], st[in], offs[in]
		var g [4]int
		for f0 := 0; f0 < ns[o0]; f0++ {
			g[o0] = offs[o0] + f0
			base0 := f0 * st[o0]
			for f1 := 0; f1 < ns[o1]; f1++ {
				g[o1] = offs[o1] + f1
				base1 := base0 + f1*st[o1]
				for f2 := 0; f2 < ns[o2]; f2++ {
					g[o2] = offs[o2] + f2
					bi := base1 + f2*st[o2]
					pj := p.Row(g[sp.s2])[offin : offin+nin]
					pk := p.Row(g[sp.s1])[offin : offin+nin]
					var js, ks float64
					if stin == 1 {
						for f, v := range blk[bi : bi+nin] {
							js += pj[f] * v
							ks += pk[f] * v
						}
					} else {
						for f := 0; f < nin; f++ {
							v := blk[bi]
							bi += stin
							js += pj[f] * v
							ks += pk[f] * v
						}
					}
					jw.Row(g[sp.s0])[g[sp.s1]] += js
					kw.Row(g[sp.s0])[g[sp.s2]] += ks
				}
			}
		}
	}
}

// ExchangeEnergy returns the exchange energy contribution for a
// closed-shell density: E_K = −¼ Σ_{μν} P[μν]·K[μν].
func ExchangeEnergy(p, k *linalg.Matrix) float64 {
	return -0.25 * linalg.TraceMul(p, k)
}

// CoulombEnergy returns E_J = ½ Σ P∘J.
func CoulombEnergy(p, j *linalg.Matrix) float64 {
	return 0.5 * linalg.TraceMul(p, j)
}
