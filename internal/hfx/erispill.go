package hfx

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// eriSpillMagic versions the serialized ERI cache image. Integrity is
// the store's job (CRC-framed records); the layout hash embedded right
// after the magic is what guards correctness — an image only imports
// into a builder whose admission layout is byte-for-byte the same.
const eriSpillMagic = "HFXERI\x01"

// layoutHash fingerprints everything the spill format depends on: the
// basis size, the screened shell-pair list (indices and Schwarz norms,
// which fold in the screening parameters), the admission outcome and
// the per-shard slot layout. Two builders agree on the hash iff a slab
// image from one drops bit-exactly into the other. Deliberately
// independent of the density, SCF settings, and result cache key: the
// same geometry requested with a different maxIter shares spills.
func (c *eriCache) layoutHash(nbasis int, pairs []screenPairView) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	w(uint64(nbasis))
	w(uint64(c.budget))
	w(uint64(c.admitted))
	w(uint64(len(c.shards)))
	for i := range c.shards {
		sh := &c.shards[i]
		w(uint64(len(sh.lens)))
		for _, l := range sh.lens {
			w(uint64(l))
		}
	}
	w(uint64(len(pairs)))
	for _, p := range pairs {
		w(uint64(p.a))
		w(uint64(p.b))
		w(math.Float64bits(p.q))
	}
	return h.Sum64()
}

// screenPairView is the layout-relevant slice of a screen.Pair.
type screenPairView struct {
	a, b int
	q    float64
}

// builderLayoutHash computes the spill layout hash of a builder's cache,
// or 0 when the builder is fully direct.
func (b *Builder) builderLayoutHash() uint64 {
	pl := b.pl
	if pl.cache == nil {
		return 0
	}
	pairs := make([]screenPairView, len(pl.scr.Pairs))
	for i, p := range pl.scr.Pairs {
		pairs[i] = screenPairView{a: p.A, b: p.B, q: p.Q}
	}
	return pl.cache.layoutHash(pl.eng.Basis.NBasis, pairs)
}

// SpillKey returns the content-address of this builder's ERI cache
// image: a hash of (basis size, shell-pair list, screening-derived
// Schwarz norms, admission layout). Builders with equal keys can
// exchange spill images losslessly. Empty for fully direct builders.
func (b *Builder) SpillKey() string {
	h := b.builderLayoutHash()
	if h == 0 {
		return ""
	}
	return fmt.Sprintf("eri:%016x", h)
}

// ExportERICache serializes the resident ERI blocks (slab bytes plus
// fill map) so a future builder with the same SpillKey can warm from
// them instead of re-evaluating integrals. Returns nil when the cache
// is disabled or holds no resident blocks. Must not be called
// concurrently with BuildJK.
func (b *Builder) ExportERICache() []byte {
	pl := b.pl
	c := pl.cache
	if c == nil || c.filled.Load() == 0 {
		return nil
	}
	size := len(eriSpillMagic) + 8 + 4
	for i := range c.shards {
		sh := &c.shards[i]
		size += 4 + (len(sh.filled)+7)/8 + 8 + 8*len(sh.slab)
	}
	out := make([]byte, 0, size)
	out = append(out, eriSpillMagic...)
	out = binary.LittleEndian.AppendUint64(out, b.builderLayoutHash())
	out = binary.LittleEndian.AppendUint32(out, uint32(len(c.shards)))
	var spilled int64
	for i := range c.shards {
		sh := &c.shards[i]
		out = binary.LittleEndian.AppendUint32(out, uint32(len(sh.filled)))
		bitmap := make([]byte, (len(sh.filled)+7)/8)
		for s, f := range sh.filled {
			if f {
				bitmap[s/8] |= 1 << (s % 8)
				spilled++
			}
		}
		out = append(out, bitmap...)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(sh.slab)))
		for _, v := range sh.slab {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	}
	pl.reg.Counter("ericache.spilled_blocks").Add(spilled)
	return out
}

// ImportERICache restores a spill image produced by ExportERICache on a
// builder with the same SpillKey. The layout hash and every structural
// dimension are verified before any slab byte is copied; a mismatch
// imports nothing and returns an error. Returns the number of blocks
// warmed. Must not be called concurrently with BuildJK.
func (b *Builder) ImportERICache(img []byte) (int64, error) {
	pl := b.pl
	c := pl.cache
	if c == nil {
		return 0, fmt.Errorf("hfx: import into a fully direct builder")
	}
	if len(img) < len(eriSpillMagic)+12 || string(img[:len(eriSpillMagic)]) != eriSpillMagic {
		return 0, fmt.Errorf("hfx: not an ERI spill image")
	}
	off := len(eriSpillMagic)
	if got, want := binary.LittleEndian.Uint64(img[off:]), b.builderLayoutHash(); got != want {
		return 0, fmt.Errorf("hfx: spill layout hash %016x, builder wants %016x", got, want)
	}
	off += 8
	if n := int(binary.LittleEndian.Uint32(img[off:])); n != len(c.shards) {
		return 0, fmt.Errorf("hfx: spill has %d shards, builder has %d", n, len(c.shards))
	}
	off += 4

	// Pass 1: validate structure end to end before touching any state.
	type shardView struct {
		bitmap []byte
		slab   []byte
	}
	views := make([]shardView, len(c.shards))
	for i := range c.shards {
		sh := &c.shards[i]
		if off+4 > len(img) {
			return 0, fmt.Errorf("hfx: truncated spill image")
		}
		nslots := int(binary.LittleEndian.Uint32(img[off:]))
		off += 4
		if nslots != len(sh.filled) {
			return 0, fmt.Errorf("hfx: shard %d has %d slots, builder has %d", i, nslots, len(sh.filled))
		}
		nb := (nslots + 7) / 8
		if off+nb+8 > len(img) {
			return 0, fmt.Errorf("hfx: truncated spill image")
		}
		views[i].bitmap = img[off : off+nb]
		off += nb
		slabLen := int(binary.LittleEndian.Uint64(img[off:]))
		off += 8
		if slabLen != len(sh.slab) {
			return 0, fmt.Errorf("hfx: shard %d slab %d floats, builder has %d", i, slabLen, len(sh.slab))
		}
		if off+8*slabLen > len(img) {
			return 0, fmt.Errorf("hfx: truncated spill image")
		}
		views[i].slab = img[off : off+8*slabLen]
		off += 8 * slabLen
	}

	// Pass 2: copy. Only slots marked filled in the image become
	// resident; a partially-warm import composes with fill-on-miss.
	var warmed, delta int64
	for i := range c.shards {
		sh := &c.shards[i]
		for f := range sh.slab {
			sh.slab[f] = math.Float64frombits(binary.LittleEndian.Uint64(views[i].slab[8*f:]))
		}
		for s := range sh.filled {
			was := sh.filled[s]
			now := views[i].bitmap[s/8]&(1<<(s%8)) != 0
			sh.filled[s] = now
			if now {
				warmed++
			}
			if now && !was {
				delta++
			} else if was && !now {
				delta--
			}
		}
	}
	c.filled.Add(delta)
	pl.reg.Counter("ericache.warmed_blocks").Add(warmed)
	return warmed, nil
}
