package hfx

import (
	"fmt"

	"hfxmd/internal/integrals"
)

// NBasis returns the basis dimension the builder is bound to.
func (b *Builder) NBasis() int { return b.Eng.Basis.NBasis }

// Rebind points the builder at a new integral engine — a nearby
// geometry of the *same composition and basis*, whose shell structure
// (count, angular momenta, function offsets) is identical — while
// keeping everything expensive to plan: the screened pair list, the
// generated task list, the static assignment, the persistent worker
// pool, and the semi-direct cache's admission layout and slab memory.
//
// This is the cross-step reuse contract for MD: pair and task indices
// are shell-structure-based, so they stay valid across a geometry
// change; the Schwarz bounds in the retained pair list go stale by an
// amount bounded by the atomic displacement (the caller guards that —
// see md.Session); and the ERI *values* are position-dependent, so
// every resident cache block is invalidated here and refilled at the
// new geometry by the next build's fill-on-first-compute path. The net
// effect is that step n+1 replays step n's admission plan instead of
// re-deciding it, and only the integral values are recomputed.
//
// Must not be called concurrently with BuildJK.
func (b *Builder) Rebind(eng *integrals.Engine) error {
	old := b.Eng.Basis
	nb := eng.Basis
	if nb.NBasis != old.NBasis || len(nb.Shells) != len(old.Shells) {
		return fmt.Errorf("hfx: rebind shape mismatch: %d basis functions/%d shells, builder has %d/%d",
			nb.NBasis, len(nb.Shells), old.NBasis, len(old.Shells))
	}
	for i := range nb.Shells {
		if nb.Shells[i].L != old.Shells[i].L || nb.Shells[i].Index != old.Shells[i].Index ||
			nb.Shells[i].Atom != old.Shells[i].Atom {
			return fmt.Errorf("hfx: rebind shell %d mismatch (L=%d idx=%d atom=%d, builder has L=%d idx=%d atom=%d)",
				i, nb.Shells[i].L, nb.Shells[i].Index, nb.Shells[i].Atom,
				old.Shells[i].L, old.Shells[i].Index, old.Shells[i].Atom)
		}
	}
	b.Eng = eng
	b.pl.eng = eng
	b.InvalidateCache()
	b.pl.reg.Counter("hfx.rebinds").Add(1)
	return nil
}
