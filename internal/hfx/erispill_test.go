package hfx

import (
	"testing"

	"hfxmd/internal/chem"
	"hfxmd/internal/linalg"
)

// TestSpillWarmBitwiseIdentical is the acceptance pin for ERI spill: a
// cold builder warmed from another builder's exported cache image must
// replay on its first build (zero integral evaluations for admitted
// quartets) and produce J/K bitwise identical to a direct build.
func TestSpillWarmBitwiseIdentical(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(3, 1), 1e-8)
	p := testDensity(eng.Basis.NBasis, 1)
	opts := DefaultOptions()
	direct := NewBuilder(eng, scr, opts)
	defer direct.Close()
	jd, kd, _ := direct.BuildJK(p)

	opts.CacheBudgetBytes = 256 << 20
	hot := NewBuilder(eng, scr, opts)
	_, _, repHot := hot.BuildJK(p) // fill every surviving quartet
	img := hot.ExportERICache()
	if img == nil {
		t.Fatal("ExportERICache returned nil for a filled cache")
	}
	key := hot.SpillKey()
	if key == "" {
		t.Fatal("SpillKey empty for a semi-direct builder")
	}
	hot.Close() // the evicted-builder scenario: pool gone, image survives

	cold := NewBuilder(eng, scr, opts)
	defer cold.Close()
	if cold.SpillKey() != key {
		t.Fatalf("spill key not reproducible: %s vs %s", cold.SpillKey(), key)
	}
	warmed, err := cold.ImportERICache(img)
	if err != nil {
		t.Fatalf("ImportERICache: %v", err)
	}
	if warmed != repHot.Cache.ResidentBlocks {
		t.Fatalf("warmed %d blocks, exporter had %d resident", warmed, repHot.Cache.ResidentBlocks)
	}
	jw, kw, repWarm := cold.BuildJK(p)
	if repWarm.Cache.Misses != 0 {
		t.Fatalf("warmed builder's first build missed %d quartets", repWarm.Cache.Misses)
	}
	if repWarm.Cache.Hits != repHot.QuartetsComputed {
		t.Fatalf("warmed hits %d, want %d", repWarm.Cache.Hits, repHot.QuartetsComputed)
	}
	if diff := linalg.MaxAbsDiff(jd, jw); diff != 0 {
		t.Fatalf("spill-warmed J vs direct diff %g, want bitwise 0", diff)
	}
	if diff := linalg.MaxAbsDiff(kd, kw); diff != 0 {
		t.Fatalf("spill-warmed K vs direct diff %g, want bitwise 0", diff)
	}
	if got := repWarm.Metrics.Counter("ericache.warmed_blocks").Value(); got != warmed {
		t.Fatalf("ericache.warmed_blocks = %d, want %d", got, warmed)
	}
}

// TestSpillKeyIndependentOfDensity: the spill key addresses the
// (basis, shell-pair list, screening, admission) layout only — two
// builders over the same inputs agree regardless of any density or SCF
// setting, while a different geometry or budget changes the key.
func TestSpillKeyDiscriminates(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(2, 1), 1e-8)
	opts := DefaultOptions()
	opts.CacheBudgetBytes = 64 << 20
	b1 := NewBuilder(eng, scr, opts)
	defer b1.Close()
	b2 := NewBuilder(eng, scr, opts)
	defer b2.Close()
	if b1.SpillKey() != b2.SpillKey() {
		t.Fatalf("same inputs, different spill keys: %s vs %s", b1.SpillKey(), b2.SpillKey())
	}

	// Different geometry → different pair list → different key.
	eng3, scr3 := setup(t, chem.WaterCluster(3, 1), 1e-8)
	b3 := NewBuilder(eng3, scr3, opts)
	defer b3.Close()
	if b3.SpillKey() == b1.SpillKey() {
		t.Fatal("different geometry reused the spill key")
	}

	// Different budget → different admission layout → different key.
	opts4 := opts
	opts4.CacheBudgetBytes = 1 << 20
	b4 := NewBuilder(eng, scr, opts4)
	defer b4.Close()
	if b4.SpillKey() == b1.SpillKey() {
		t.Fatal("different budget reused the spill key")
	}

	// Fully direct builder has no spill identity.
	b5 := NewBuilder(eng, scr, DefaultOptions())
	defer b5.Close()
	if b5.SpillKey() != "" {
		t.Fatalf("direct builder spill key = %q, want empty", b5.SpillKey())
	}
}

// TestSpillImportRejectsMismatch: an image from a different layout must
// be rejected wholesale, leaving the importing cache untouched.
func TestSpillImportRejectsMismatch(t *testing.T) {
	engA, scrA := setup(t, chem.WaterCluster(2, 1), 1e-8)
	engB, scrB := setup(t, chem.WaterCluster(3, 1), 1e-8)
	opts := DefaultOptions()
	opts.CacheBudgetBytes = 64 << 20
	a := NewBuilder(engA, scrA, opts)
	defer a.Close()
	a.BuildJK(testDensity(engA.Basis.NBasis, 1))
	img := a.ExportERICache()

	b := NewBuilder(engB, scrB, opts)
	defer b.Close()
	if _, err := b.ImportERICache(img); err == nil {
		t.Fatal("cross-geometry import must fail")
	}
	if _, err := b.ImportERICache(img[:16]); err == nil {
		t.Fatal("truncated image must fail")
	}
	if _, err := b.ImportERICache([]byte("not a spill")); err == nil {
		t.Fatal("garbage image must fail")
	}
	_, _, rep := b.BuildJK(testDensity(engB.Basis.NBasis, 1))
	if rep.Cache.Hits != 0 {
		t.Fatalf("rejected import leaked %d resident blocks", rep.Cache.Hits)
	}
}

// TestSpillEmptyExport: a cold cache exports nothing.
func TestSpillEmptyExport(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(2, 1), 1e-8)
	opts := DefaultOptions()
	opts.CacheBudgetBytes = 64 << 20
	b := NewBuilder(eng, scr, opts)
	defer b.Close()
	if img := b.ExportERICache(); img != nil {
		t.Fatalf("cold cache exported %d bytes", len(img))
	}
	d := NewBuilder(eng, scr, DefaultOptions())
	defer d.Close()
	if img := d.ExportERICache(); img != nil {
		t.Fatal("direct builder exported a cache image")
	}
}
