package hfx

import (
	"sort"
	"sync/atomic"

	"hfxmd/internal/basis"
	"hfxmd/internal/sched"
	"hfxmd/internal/screen"
)

// eriCache is the semi-direct ERI block cache: a memory-budgeted store of
// surviving quartet integral blocks, filled the first time each quartet is
// computed and replayed on later builds so the re-contraction against a new
// density skips ERI evaluation entirely.
//
// The cache is sharded by the static assignment: every task belongs to
// exactly one shard (the worker the balancer gave it to), and a quartet's
// slot is only ever written by the worker executing that task. Builds are
// barrier-separated, so the hot path needs no locks and performs no
// allocation. This holds under Dynamic dispatch too — the shard comes from
// the static assignment, which is always computed, and a slot is still
// touched by at most one worker per build.
//
// Admission is decided once, at NewBuilder time, in descending priority
// order (Schwarz bound × predicted block cost): the quartets most likely to
// survive screening and most expensive to recompute are cached first, until
// the byte budget is exhausted. The budget charges the block payload, the
// per-entry metadata, and the fixed per-quartet slot index. The builder is
// per-geometry, so a geometry change means a new builder and hence a fresh
// cache; InvalidateCache covers in-place invalidation (e.g. basis rescale
// experiments) by dropping every resident block.
type eriCache struct {
	budget    int64
	usedBytes int64 // admission-time accounting: payload + metadata + indices
	admitted  int64 // quartets with a reserved slot

	// taskSlots[ti][ji-KetLo] is the shard-local slot of that quartet, or
	// -1 when it was not admitted. taskShard[ti] is the owning shard.
	taskSlots [][]int32
	taskShard []int32
	shards    []cacheShard

	filled    atomic.Int64 // blocks currently resident across all shards
	evictions atomic.Int64 // lifetime blocks dropped by InvalidateCache
}

// cacheShard is one worker's private slice of the cache. offs/lens/filled
// are indexed by slot; slab holds the concatenated block payloads.
type cacheShard struct {
	slab   []float64
	offs   []int64
	lens   []int32
	filled []bool
}

// cacheEntryOverhead approximates the per-admitted-quartet metadata cost
// charged against the budget (offset, length, filled flag, slab headers).
const cacheEntryOverhead = 24

// cacheSlotIndexBytes is the fixed per-canonical-quartet cost of the slot
// index (one int32 each), paid up front whenever the cache is enabled.
const cacheSlotIndexBytes = 4

// eriBlockLen returns the number of integrals in the (ab|cd) shell block.
func eriBlockLen(set *basis.Set, a, b, c, d int) int {
	return set.Shells[a].NFuncs() * set.Shells[b].NFuncs() *
		set.Shells[c].NFuncs() * set.Shells[d].NFuncs()
}

type cacheCand struct {
	task int32
	koff int32 // quartet index within the task: ji - KetLo
	blen int32
	prio float64
}

// newERICache plans the admission and allocates the shard slabs. Returns
// nil when the budget cannot hold even the slot index plus one block.
func newERICache(set *basis.Set, pairs []screen.Pair, tasks []Task,
	asn *sched.Assignment, cm CostModel, budget int64) *eriCache {
	nq := 0
	for i := range tasks {
		nq += tasks[i].QuartetsInTask
	}
	if nq == 0 {
		return nil
	}
	base := int64(nq) * cacheSlotIndexBytes
	if base >= budget {
		return nil
	}

	// Rank every canonical quartet: the Schwarz product bounds how likely
	// the block is to survive screening (and how large its contribution
	// is), the cost model predicts how expensive it is to recompute.
	cands := make([]cacheCand, 0, nq)
	for ti := range tasks {
		t := &tasks[ti]
		bra := pairs[t.Bra]
		for ji := t.KetLo; ji < t.KetHi; ji++ {
			ket := pairs[ji]
			cands = append(cands, cacheCand{
				task: int32(ti),
				koff: int32(ji - t.KetLo),
				blen: int32(eriBlockLen(set, bra.A, bra.B, ket.A, ket.B)),
				prio: bra.Q * ket.Q * cm.PairPair(set, bra, ket),
			})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].prio != cands[j].prio {
			return cands[i].prio > cands[j].prio
		}
		if cands[i].task != cands[j].task {
			return cands[i].task < cands[j].task
		}
		return cands[i].koff < cands[j].koff
	})

	c := &eriCache{budget: budget, usedBytes: base}
	c.taskShard = make([]int32, len(tasks))
	for w, list := range asn.Workers {
		for _, ti := range list {
			c.taskShard[ti] = int32(w)
		}
	}
	c.taskSlots = make([][]int32, len(tasks))
	backing := make([]int32, nq)
	for i := range backing {
		backing[i] = -1
	}
	for ti := range tasks {
		q := tasks[ti].QuartetsInTask
		c.taskSlots[ti] = backing[:q:q]
		backing = backing[q:]
	}

	c.shards = make([]cacheShard, asn.NWorkers())
	shardFloats := make([]int64, len(c.shards))
	for i := range cands {
		cd := &cands[i]
		cost := int64(cd.blen)*8 + cacheEntryOverhead
		if c.usedBytes+cost > budget {
			continue // greedy: a smaller lower-priority block may still fit
		}
		c.usedBytes += cost
		c.admitted++
		w := c.taskShard[cd.task]
		sh := &c.shards[w]
		c.taskSlots[cd.task][cd.koff] = int32(len(sh.offs))
		sh.offs = append(sh.offs, shardFloats[w])
		sh.lens = append(sh.lens, cd.blen)
		shardFloats[w] += int64(cd.blen)
	}
	if c.admitted == 0 {
		return nil
	}
	for w := range c.shards {
		sh := &c.shards[w]
		sh.slab = make([]float64, shardFloats[w])
		sh.filled = make([]bool, len(sh.offs))
	}
	return c
}

// slabBytes is the total payload capacity across all shards.
func (c *eriCache) slabBytes() int64 {
	var n int64
	for i := range c.shards {
		n += int64(len(c.shards[i].slab)) * 8
	}
	return n
}

// CacheStats reports the semi-direct ERI block cache state for one build.
type CacheStats struct {
	// Enabled is true when the builder runs semi-direct (a non-zero budget
	// that admitted at least one quartet).
	Enabled bool
	// BudgetBytes echoes Options.CacheBudgetBytes.
	BudgetBytes int64
	// UsedBytes is the admission-time accounting total: block payloads plus
	// per-entry metadata plus the per-quartet slot index.
	UsedBytes int64
	// AdmittedQuartets counts quartets with a reserved cache slot.
	AdmittedQuartets int64
	// ResidentBlocks counts slots currently holding a computed block.
	ResidentBlocks int64
	// Hits and Misses count quartets in this build that replayed a resident
	// block vs. had to evaluate ERIs (cold slot or not admitted).
	Hits   int64
	Misses int64
	// Evictions is the lifetime count of resident blocks dropped by
	// InvalidateCache.
	Evictions int64
}

// HitRatio returns Hits/(Hits+Misses), or 0 for an idle build.
func (s CacheStats) HitRatio() float64 {
	tot := s.Hits + s.Misses
	if tot == 0 {
		return 0
	}
	return float64(s.Hits) / float64(tot)
}

// InvalidateCache drops every resident ERI block, forcing the next build
// to re-evaluate (and re-fill) all cached quartets. Admission decisions
// and slab memory are kept. Use it when the integrals behind the blocks
// change without a new builder. Must not be called concurrently with
// BuildJK.
func (b *Builder) InvalidateCache() {
	pl := b.pl
	if pl.cache == nil {
		return
	}
	var n int64
	for si := range pl.cache.shards {
		sh := &pl.cache.shards[si]
		for i := range sh.filled {
			if sh.filled[i] {
				sh.filled[i] = false
				n++
			}
		}
	}
	pl.cache.filled.Add(-n)
	pl.cache.evictions.Add(n)
	pl.reg.Counter("ericache.evictions").Add(n)
}
