package hfx

import (
	"testing"

	"hfxmd/internal/chem"
	"hfxmd/internal/mprt"
	"hfxmd/internal/steal"
)

// TestDistributedBuildMatchesSingleRank is the acceptance gate for the
// distributed build: for every rank count, thread count and collective
// schedule, the distributed J and K must be bitwise identical — not
// approximately equal — to a single-rank Builder with the same total
// worker count Ranks×ThreadsPerRank.
func TestDistributedBuildMatchesSingleRank(t *testing.T) {
	for _, dw := range []bool{false, true} {
		eng, scr := setup(t, chem.WaterCluster(2, 6), 1e-12)
		p := testDensity(eng.Basis.NBasis, 11)
		for _, tpr := range []int{1, 2} {
			for _, ranks := range []int{1, 2, 3, 4, 8} {
				opts := DefaultOptions()
				opts.DensityWeighted = dw
				opts.Threads = ranks * tpr
				sb := NewBuilder(eng, scr, opts)
				jRef, kRef, _ := sb.BuildJK(p)

				for _, sched := range []mprt.Schedule{mprt.Binomial, mprt.DimExchange} {
					j, k, rep, err := DistributedBuild(eng, scr, DistOptions{
						Ranks:          ranks,
						ThreadsPerRank: tpr,
						Schedule:       sched,
						Opts:           opts,
					}, p)
					if err != nil {
						t.Fatal(err)
					}
					for i, v := range jRef.Data {
						if j.Data[i] != v {
							t.Fatalf("dw=%v ranks=%d tpr=%d %v: J[%d] = %x, single-rank %x",
								dw, ranks, tpr, sched, i, j.Data[i], v)
						}
					}
					for i, v := range kRef.Data {
						if k.Data[i] != v {
							t.Fatalf("dw=%v ranks=%d tpr=%d %v: K[%d] = %x, single-rank %x",
								dw, ranks, tpr, sched, i, k.Data[i], v)
						}
					}
					if rep.QuartetsComputed == 0 {
						t.Fatal("no quartets computed")
					}
					if ranks > 1 && rep.CommBytes == 0 {
						t.Fatalf("ranks=%d: no communication recorded", ranks)
					}
					if rep.MeasuredSteps != int64(rep.PredictedSteps) {
						t.Fatalf("dw=%v ranks=%d %v: measured steps %d, model predicts %d",
							dw, ranks, sched, rep.MeasuredSteps, rep.PredictedSteps)
					}
				}
				sb.Close()
			}
		}
	}
}

// TestDistBuilderReuse checks the persistent form: repeated BuildJK calls
// on one DistBuilder stay bitwise stable and keep traffic accounting
// consistent across builds.
func TestDistBuilderReuse(t *testing.T) {
	eng, scr := setup(t, chem.Water(), 1e-12)
	p := testDensity(eng.Basis.NBasis, 5)
	d, err := NewDistBuilder(eng, scr, DistOptions{
		Ranks:    4,
		Schedule: mprt.DimExchange,
		Opts:     DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	j1, k1, rep1, err := d.BuildJK(p)
	if err != nil {
		t.Fatal(err)
	}
	jc := append([]float64(nil), j1.Data...)
	kc := append([]float64(nil), k1.Data...)
	j2, k2, rep2, err := d.BuildJK(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jc {
		if j2.Data[i] != jc[i] || k2.Data[i] != kc[i] {
			t.Fatalf("rebuild diverged at element %d", i)
		}
	}
	if rep1.MeasuredSteps != rep2.MeasuredSteps {
		t.Fatalf("per-build step deltas differ: %d vs %d", rep1.MeasuredSteps, rep2.MeasuredSteps)
	}
	if rep2.CommBytes != rep1.CommBytes {
		t.Fatalf("per-build comm bytes differ: %d vs %d", rep1.CommBytes, rep2.CommBytes)
	}
	if len(rep1.RankLoads) != 4 {
		t.Fatalf("want 4 rank loads, got %d", len(rep1.RankLoads))
	}
	if rep1.BalanceRatio < 1 {
		t.Fatalf("balance ratio %g < 1", rep1.BalanceRatio)
	}
	_, _ = k1, k2
}

// TestDistBuilderRejectsInvalid pins the option validation: dynamic
// dispatch and non-power-of-two thread counts break the bitwise
// contract, so they must be refused up front.
func TestDistBuilderRejectsInvalid(t *testing.T) {
	eng, scr := setup(t, chem.Water(), 1e-12)
	bad := DefaultOptions()
	bad.Dynamic = true
	if _, err := NewDistBuilder(eng, scr, DistOptions{Ranks: 2, Opts: bad}); err == nil {
		t.Fatal("expected error for Dynamic")
	}
	if _, err := NewDistBuilder(eng, scr, DistOptions{Ranks: 2, ThreadsPerRank: 3}); err == nil {
		t.Fatal("expected error for non-power-of-two threads per rank")
	}
	if _, err := NewDistBuilder(eng, scr, DistOptions{Ranks: 0}); err == nil {
		t.Fatal("expected error for 0 ranks")
	}
}

// TestDistBuilderRankFaultRecovery pins the rank-restart contract: a
// rank killed during the compute phase has its task block re-executed
// and the collective re-formed, and the recovered build is bitwise
// identical — every bit of J and K — to the fault-free one. Each rank
// of the world is killed in turn, across both collective schedules.
func TestDistBuilderRankFaultRecovery(t *testing.T) {
	eng, scr := setup(t, chem.Water(), 1e-12)
	p := testDensity(eng.Basis.NBasis, 11)
	const ranks = 4
	for _, sched := range []mprt.Schedule{mprt.Binomial, mprt.DimExchange} {
		ref, err := NewDistBuilder(eng, scr, DistOptions{
			Ranks: ranks, Schedule: sched, Opts: DefaultOptions(),
		})
		if err != nil {
			t.Fatal(err)
		}
		jRef, kRef, repRef, err := ref.BuildJK(p)
		if err != nil {
			t.Fatal(err)
		}
		if repRef.RankRestarts != 0 {
			t.Fatalf("fault-free build reports %d restarts", repRef.RankRestarts)
		}
		jc := append([]float64(nil), jRef.Data...)
		kc := append([]float64(nil), kRef.Data...)
		ref.Close()

		for victim := 0; victim < ranks; victim++ {
			d, err := NewDistBuilder(eng, scr, DistOptions{
				Ranks: ranks, Schedule: sched, Opts: DefaultOptions(),
				FaultPlan: &RankFaultPlan{Rank: victim, Build: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			// Build 1 is clean; the fault plan fires on build 2.
			if _, _, rep, err := d.BuildJK(p); err != nil || rep.RankRestarts != 0 {
				t.Fatalf("build 1 should be clean: restarts=%d err=%v", rep.RankRestarts, err)
			}
			j, k, rep, err := d.BuildJK(p)
			if err != nil {
				t.Fatalf("%v victim %d: recovered build failed: %v", sched, victim, err)
			}
			if rep.RankRestarts != 1 {
				t.Fatalf("%v victim %d: want 1 restart, got %d", sched, victim, rep.RankRestarts)
			}
			for i := range jc {
				if j.Data[i] != jc[i] || k.Data[i] != kc[i] {
					t.Fatalf("%v victim %d: recovered build diverged at element %d",
						sched, victim, i)
				}
			}
			if rep.MeasuredSteps != repRef.MeasuredSteps {
				t.Fatalf("%v victim %d: re-formed collective ran %d steps, fault-free %d",
					sched, victim, rep.MeasuredSteps, repRef.MeasuredSteps)
			}
			if got := rep.Metrics.Counter("mprt.rank_restarts").Value(); got != 1 {
				t.Fatalf("mprt.rank_restarts counter = %d, want 1", got)
			}
			d.Close()
		}
	}
}

// TestDistReportBalanceRatiosDivergeUnderNoise is the regression test
// for the predicted/measured balance split: BalanceRatio used to be
// computed from predicted loads only, hiding mispredict damage. With an
// injected straggler the measured ratio must rise far above the
// predicted one, while a clean run keeps the two close.
func TestDistReportBalanceRatiosDivergeUnderNoise(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(2, 6), 1e-12)
	p := testDensity(eng.Basis.NBasis, 11)

	_, _, clean, err := DistributedBuild(eng, scr, DistOptions{
		Ranks: 4, Opts: DefaultOptions(),
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	if clean.BalanceRatio != clean.BalanceRatioPredicted {
		t.Fatalf("BalanceRatio %.4f must keep the predicted meaning (%.4f)",
			clean.BalanceRatio, clean.BalanceRatioPredicted)
	}
	if clean.BalanceRatioMeasured <= 0 {
		t.Fatal("measured balance ratio not populated")
	}

	_, _, noisy, err := DistributedBuild(eng, scr, DistOptions{
		Ranks: 4, Opts: DefaultOptions(),
		Noise: &steal.NoisePlan{Seed: 9, Pct: 0.3, StragglerRank: 1, StragglerSlow: 4.0},
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	// The placement model cannot see the straggler, so the predicted
	// ratio stays modest while the measured one blows up.
	if noisy.BalanceRatioPredicted > 2 {
		t.Fatalf("predicted ratio %.4f should stay blind to the straggler",
			noisy.BalanceRatioPredicted)
	}
	if noisy.BalanceRatioMeasured < 1.5*noisy.BalanceRatioPredicted {
		t.Fatalf("measured ratio %.4f did not diverge from predicted %.4f under noise",
			noisy.BalanceRatioMeasured, noisy.BalanceRatioPredicted)
	}
}
