package hfx

import (
	"fmt"
	"testing"

	"hfxmd/internal/chem"
	"hfxmd/internal/linalg"
)

// TestSemiDirectMatchesDirect: cached replay must agree with direct builds
// to machine precision across several SCF-like iterations (fresh densities
// and small ΔP difference densities), for both screening modes. The replay
// scatters the exact block bytes the direct path computed, so the matrices
// should in fact be bitwise identical; ≤1e-12 is the acceptance bound.
func TestSemiDirectMatchesDirect(t *testing.T) {
	for _, dw := range []bool{false, true} {
		t.Run(fmt.Sprintf("dw=%v", dw), func(t *testing.T) {
			eng, scr := setup(t, chem.WaterCluster(3, 1), 1e-8)
			n := eng.Basis.NBasis
			opts := DefaultOptions()
			opts.DensityWeighted = dw
			direct := NewBuilder(eng, scr, opts)
			defer direct.Close()
			sopts := opts
			sopts.CacheBudgetBytes = 256 << 20
			semi := NewBuilder(eng, scr, sopts)
			defer semi.Close()

			// Iterations 0..2: fresh densities. Iteration 3: a small
			// difference density, the shape Incremental SCF feeds BuildJK.
			densities := []*linalg.Matrix{
				testDensity(n, 1), testDensity(n, 2), testDensity(n, 3),
			}
			dp := testDensity(n, 4)
			for i := range dp.Data {
				dp.Data[i] *= 1e-5
			}
			densities = append(densities, dp)

			for it, p := range densities {
				jd, kd, _ := direct.BuildJK(p)
				js, ks, rep := semi.BuildJK(p)
				if diff := linalg.MaxAbsDiff(jd, js); diff > 1e-12 {
					t.Fatalf("iter %d: J semi-direct vs direct diff %g", it, diff)
				}
				if diff := linalg.MaxAbsDiff(kd, ks); diff > 1e-12 {
					t.Fatalf("iter %d: K semi-direct vs direct diff %g", it, diff)
				}
				if !rep.Cache.Enabled {
					t.Fatal("semi-direct builder reports cache disabled")
				}
				if it == 0 && rep.Cache.Hits != 0 {
					t.Fatalf("cold cache reported %d hits", rep.Cache.Hits)
				}
				if it > 0 && rep.Cache.Hits == 0 {
					t.Fatalf("iter %d: warm cache reported no hits", it)
				}
				if rep.Cache.Hits+rep.Cache.Misses != rep.QuartetsComputed {
					t.Fatalf("iter %d: hits %d + misses %d != computed %d", it,
						rep.Cache.Hits, rep.Cache.Misses, rep.QuartetsComputed)
				}
			}
		})
	}
}

// TestSemiDirectWarmHits pins the acceptance bookkeeping: with a budget
// covering every surviving quartet and an unchanged density, the second
// build's hits equal the first build's computed quartets and nothing
// misses.
func TestSemiDirectWarmHits(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(3, 1), 1e-8)
	p := testDensity(eng.Basis.NBasis, 1)
	opts := DefaultOptions()
	opts.CacheBudgetBytes = 256 << 20
	builder := NewBuilder(eng, scr, opts)
	defer builder.Close()
	_, _, rep1 := builder.BuildJK(p)
	if rep1.Cache.Hits != 0 || rep1.Cache.Misses != rep1.QuartetsComputed {
		t.Fatalf("first build: hits=%d misses=%d computed=%d",
			rep1.Cache.Hits, rep1.Cache.Misses, rep1.QuartetsComputed)
	}
	if rep1.Cache.ResidentBlocks != rep1.QuartetsComputed {
		t.Fatalf("resident %d blocks after first build, computed %d",
			rep1.Cache.ResidentBlocks, rep1.QuartetsComputed)
	}
	_, _, rep2 := builder.BuildJK(p)
	if rep2.Cache.Hits != rep1.QuartetsComputed {
		t.Fatalf("warm hits %d, want first-build computed %d",
			rep2.Cache.Hits, rep1.QuartetsComputed)
	}
	if rep2.Cache.Misses != 0 {
		t.Fatalf("warm build missed %d quartets", rep2.Cache.Misses)
	}
	if got := rep2.Metrics.Counter("ericache.hits").Value(); got != rep2.Cache.Hits {
		t.Fatalf("ericache.hits counter %d, report %d", got, rep2.Cache.Hits)
	}
}

// TestEarlyExitMatchesExhaustive pins the sorted-pair early exit: with
// NoEarlyExit the quartet loop tests every ket individually (the old
// path); the default breaks out of the Q-sorted range at the first plain
// failure. J/K must be bitwise identical and the screened/computed
// bookkeeping must agree, in both screening modes.
func TestEarlyExitMatchesExhaustive(t *testing.T) {
	for _, dw := range []bool{false, true} {
		t.Run(fmt.Sprintf("dw=%v", dw), func(t *testing.T) {
			eng, scr := setup(t, chem.WaterCluster(2, 1), 1e-8)
			p := testDensity(eng.Basis.NBasis, 1)
			opts := DefaultOptions()
			opts.DensityWeighted = dw
			opts.Threads = 2
			fast := NewBuilder(eng, scr, opts)
			defer fast.Close()
			opts.NoEarlyExit = true
			slow := NewBuilder(eng, scr, opts)
			defer slow.Close()
			jf, kf, repF := fast.BuildJK(p)
			js, ks, repS := slow.BuildJK(p)
			if diff := linalg.MaxAbsDiff(jf, js); diff != 0 {
				t.Fatalf("J early-exit vs exhaustive diff %g, want bitwise 0", diff)
			}
			if diff := linalg.MaxAbsDiff(kf, ks); diff != 0 {
				t.Fatalf("K early-exit vs exhaustive diff %g, want bitwise 0", diff)
			}
			if repF.QuartetsComputed != repS.QuartetsComputed ||
				repF.QuartetsScreened != repS.QuartetsScreened {
				t.Fatalf("bookkeeping diverged: computed %d vs %d, screened %d vs %d",
					repF.QuartetsComputed, repS.QuartetsComputed,
					repF.QuartetsScreened, repS.QuartetsScreened)
			}
		})
	}
}

// TestCacheBudgetAdmission: a tight budget admits only the top-priority
// quartets, stays within the byte budget, and partial replay still
// matches the direct build.
func TestCacheBudgetAdmission(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(3, 1), 1e-8)
	p := testDensity(eng.Basis.NBasis, 1)
	opts := DefaultOptions()
	direct := NewBuilder(eng, scr, opts)
	defer direct.Close()
	total := TotalQuartets(direct.Tasks())
	opts.CacheBudgetBytes = int64(total)*cacheSlotIndexBytes + 8<<10
	semi := NewBuilder(eng, scr, opts)
	defer semi.Close()

	jd, kd, _ := direct.BuildJK(p)
	_, _, rep1 := semi.BuildJK(p)
	if !rep1.Cache.Enabled {
		t.Fatal("tight budget disabled the cache entirely")
	}
	if rep1.Cache.AdmittedQuartets <= 0 || rep1.Cache.AdmittedQuartets >= int64(total) {
		t.Fatalf("admitted %d of %d quartets, want a strict subset", rep1.Cache.AdmittedQuartets, total)
	}
	if rep1.Cache.UsedBytes > opts.CacheBudgetBytes {
		t.Fatalf("used %d bytes over budget %d", rep1.Cache.UsedBytes, opts.CacheBudgetBytes)
	}
	js, ks, rep2 := semi.BuildJK(p)
	if rep2.Cache.Hits == 0 || rep2.Cache.Misses == 0 {
		t.Fatalf("partial cache should split traffic: hits=%d misses=%d",
			rep2.Cache.Hits, rep2.Cache.Misses)
	}
	if diff := linalg.MaxAbsDiff(jd, js); diff > 1e-12 {
		t.Fatalf("partial-cache J diff %g", diff)
	}
	if diff := linalg.MaxAbsDiff(kd, ks); diff > 1e-12 {
		t.Fatalf("partial-cache K diff %g", diff)
	}
}

// TestCacheInvalidate: dropping resident blocks forces a refill and counts
// evictions; results stay correct.
func TestCacheInvalidate(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(2, 1), 1e-8)
	p := testDensity(eng.Basis.NBasis, 1)
	opts := DefaultOptions()
	opts.CacheBudgetBytes = 256 << 20
	builder := NewBuilder(eng, scr, opts)
	defer builder.Close()
	j1, k1, rep1 := builder.BuildJK(p)
	j1, k1 = j1.Clone(), k1.Clone()
	builder.InvalidateCache()
	j2, k2, rep2 := builder.BuildJK(p)
	if rep2.Cache.Evictions != rep1.QuartetsComputed {
		t.Fatalf("evictions %d, want %d resident blocks dropped",
			rep2.Cache.Evictions, rep1.QuartetsComputed)
	}
	if rep2.Cache.Hits != 0 {
		t.Fatalf("post-invalidate build reported %d hits", rep2.Cache.Hits)
	}
	if diff := linalg.MaxAbsDiff(j1, j2); diff != 0 {
		t.Fatalf("J changed across invalidate: %g", diff)
	}
	if diff := linalg.MaxAbsDiff(k1, k2); diff != 0 {
		t.Fatalf("K changed across invalidate: %g", diff)
	}
	_, _, rep3 := builder.BuildJK(p)
	if rep3.Cache.Misses != 0 {
		t.Fatalf("cache did not refill after invalidate: misses=%d", rep3.Cache.Misses)
	}
}

// TestCacheDynamicDispatch: the shard comes from the static assignment, so
// semi-direct replay must also work (lock-free, correct) under the dynamic
// work queue where a task may run on a different worker each build.
func TestCacheDynamicDispatch(t *testing.T) {
	eng, scr := setup(t, chem.WaterCluster(2, 1), 1e-8)
	p := testDensity(eng.Basis.NBasis, 1)
	opts := DefaultOptions()
	direct := NewBuilder(eng, scr, opts)
	defer direct.Close()
	opts.CacheBudgetBytes = 256 << 20
	opts.Dynamic = true
	opts.Threads = 4
	semi := NewBuilder(eng, scr, opts)
	defer semi.Close()
	jd, kd, _ := direct.BuildJK(p)
	semi.BuildJK(p)
	js, ks, rep := semi.BuildJK(p)
	if rep.Cache.Misses != 0 {
		t.Fatalf("dynamic warm build missed %d quartets", rep.Cache.Misses)
	}
	if diff := linalg.MaxAbsDiff(jd, js); diff > 1e-12 {
		t.Fatalf("dynamic semi-direct J diff %g", diff)
	}
	if diff := linalg.MaxAbsDiff(kd, ks); diff > 1e-12 {
		t.Fatalf("dynamic semi-direct K diff %g", diff)
	}
}
