package hfx

import (
	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
)

// ReferenceJK computes J and K by brute force over all ordered shell
// quartets with no screening and no permutational folding. It is O(N⁴)
// in shells and exists purely as the correctness oracle for the
// task-parallel builder: the screened build must match it to within a
// bound derived from the screening threshold.
func ReferenceJK(eng *integrals.Engine, p *linalg.Matrix) (j, k *linalg.Matrix) {
	set := eng.Basis
	n := set.NBasis
	j = linalg.NewSquare(n)
	k = linalg.NewSquare(n)
	ns := set.NShells()
	buf := make([]float64, eng.MaxERIBufLen())
	for a := 0; a < ns; a++ {
		sa := &set.Shells[a]
		for b := 0; b < ns; b++ {
			sb := &set.Shells[b]
			for c := 0; c < ns; c++ {
				sc := &set.Shells[c]
				for d := 0; d < ns; d++ {
					sd := &set.Shells[d]
					na, nb, nc, nd := sa.NFuncs(), sb.NFuncs(), sc.NFuncs(), sd.NFuncs()
					blk := buf[:na*nb*nc*nd]
					eng.ERIShell(a, b, c, d, blk, nil)
					for fa := 0; fa < na; fa++ {
						pa := sa.Index + fa
						for fb := 0; fb < nb; fb++ {
							pb := sb.Index + fb
							for fc := 0; fc < nc; fc++ {
								pc := sc.Index + fc
								base := ((fa*nb+fb)*nc + fc) * nd
								for fd := 0; fd < nd; fd++ {
									pd := sd.Index + fd
									v := blk[base+fd]
									// J[ab] += P[cd] (ab|cd); K[ac] += P[bd] (ab|cd).
									j.Add(pa, pb, p.At(pc, pd)*v)
									k.Add(pa, pc, p.At(pb, pd)*v)
								}
							}
						}
					}
				}
			}
		}
	}
	return j, k
}
