package hfx

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"hfxmd/internal/basis"
	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
	"hfxmd/internal/mprt"
	"hfxmd/internal/sched"
	"hfxmd/internal/screen"
	"hfxmd/internal/steal"
	"hfxmd/internal/torus"
	"hfxmd/internal/trace"
)

// StealOptions configures a distributed Fock build with deterministic
// work stealing (see StealBuilder).
type StealOptions struct {
	// Ranks is the number of mprt ranks (required, ≥ 1).
	Ranks int
	// ThreadsPerRank is the number of concurrent executors per rank
	// (power of two, default 1).
	ThreadsPerRank int
	// UnitsPerThread is the over-decomposition factor: the global
	// schedule is balanced over Ranks×ThreadsPerRank×UnitsPerThread
	// virtual slots, each one steal unit (power of two, default 4).
	// More units mean finer-grained stealing at slightly worse static
	// balance per unit.
	UnitsPerThread int
	// Schedule selects the mprt collective schedule.
	Schedule mprt.Schedule
	// Shape optionally fixes the torus embedding.
	Shape torus.Shape
	// Opts is the per-rank build configuration. Threads is ignored,
	// Dynamic is rejected and the semi-direct ERI cache is disabled, as
	// in DistOptions. Opts.Calibrator is overridden by the Calibrator
	// field below.
	Opts Options
	// Steal enables migration. Off, the builder runs the pure static
	// placement (every unit on its home rank) — the baseline arm of the
	// noise experiments, bitwise identical to the stealing run.
	Steal bool
	// Noise optionally injects cost-model mispredictions and stragglers
	// (see steal.NoisePlan). Noise distorts only the placement model and
	// wall-clock, never the arithmetic.
	Noise *steal.NoisePlan
	// Calibrator, when non-nil, observes every task's measured wall and
	// re-balances the placement before a build whenever its epoch moved —
	// the online feedback loop. Placement changes between builds change
	// the task→slot grouping and therefore the bits; within one placement
	// the bitwise contract holds.
	Calibrator *steal.Calibrator
	// Seed drives the rank-count-independent victim selection order.
	Seed uint64
}

// StealReport describes one work-stealing distributed build.
type StealReport struct {
	Ranks          int
	ThreadsPerRank int
	UnitsPerThread int
	Schedule       mprt.Schedule
	Shape          torus.Shape
	Wall           time.Duration

	// RankCompute is each rank's phase-1 wall; RankExecWall attributes
	// executed unit walls (plus straggler penalties) to the rank that
	// actually ran them — the measured-balance input.
	RankCompute  []time.Duration
	RankExecWall []time.Duration
	RankComm     []time.Duration
	RankBytes    []int64

	CommBytes      int64
	MeasuredSteps  int64
	PredictedSteps int

	NTasks           int
	Units            int
	QuartetsComputed int64
	QuartetsScreened int64

	// Steal traffic of this build (per-build deltas of the lifetime
	// steal.* counters).
	StealsAttempted int64
	StealsSucceeded int64
	BlocksMigrated  int64
	IdleReclaimed   time.Duration

	// BalanceRatioPredicted is max/mean of per-rank load under the
	// placement model the balancer saw (possibly noisy/calibrated);
	// BalanceRatioMeasured is max/mean of RankExecWall. Under mispredicts
	// the two diverge for the static run; stealing pulls the measured
	// ratio back down.
	BalanceRatioPredicted float64
	BalanceRatioMeasured  float64

	// Calibration state of this build (zero when no calibrator):
	// CalibMeanAbsErr is the mean |measured − calibrated prediction| /
	// calibrated prediction over this build's task observations;
	// CalibRawAbsErr is the same over the raw (factor-1) model. Jitter
	// hits both alike, so CalibMeanAbsErr < CalibRawAbsErr is the signal
	// that calibration is removing systematic model bias.
	CalibMeanAbsErr   float64
	CalibRawAbsErr    float64
	CalibObservations int64

	// Rebalanced reports whether this build recomputed the placement from
	// a moved calibrator epoch.
	Rebalanced bool

	// Metrics is the mprt world's registry; the steal.* counters are
	// recorded there too, so one registry carries the whole build.
	Metrics *trace.Registry
}

// String renders a one-line summary.
func (r StealReport) String() string {
	return fmt.Sprintf("ranks=%d threads/rank=%d units/thread=%d wall=%v migrated=%d balance_pred=%.4f balance_meas=%.4f",
		r.Ranks, r.ThreadsPerRank, r.UnitsPerThread, r.Wall, r.BlocksMigrated,
		r.BalanceRatioPredicted, r.BalanceRatioMeasured)
}

// StealBuilder executes the paper's work-stealing fallback on top of the
// static schedule: the task list is balanced over
// Ranks×ThreadsPerRank×UnitsPerThread virtual slots, each slot becomes a
// steal unit homed on a rank, and idle ranks migrate remote units at run
// time (victim order seeded and rank-count-independent). Determinism is
// structural: every unit accumulates into its own J/K buffers wherever
// it executes, migrated partials are returned to their home rank over
// mprt p2p in global unit order, and the combination always follows the
// canonical binary reduction tree over slot indices — the rank-local
// strides below ThreadsPerRank×UnitsPerThread merge in place, the mprt
// ReduceScatter+Allgatherv supplies the strides above. A stolen schedule
// is therefore bitwise identical to the purely static one, and both
// equal a single-rank Builder with Threads = total slots.
type StealBuilder struct {
	Eng *integrals.Engine
	Scr *screen.Result

	sopts StealOptions
	world *mprt.World
	pl    *pool // nw = total virtual slots; per-slot buffers are the unit accumulators

	plan   *steal.Plan
	deques *steal.Deques
	// placedEpoch is the calibrator epoch the current placement was
	// computed under.
	placedEpoch uint64

	counts []int
	fused  [][]float64
	jOut   *linalg.Matrix
	kOut   *linalg.Matrix

	closeOnce sync.Once
}

// NewStealBuilder prepares the over-decomposed schedule, the mprt world
// and the per-unit buffers.
func NewStealBuilder(eng *integrals.Engine, scr *screen.Result, sopts StealOptions) (*StealBuilder, error) {
	if sopts.Ranks < 1 {
		return nil, fmt.Errorf("hfx: need at least 1 rank, got %d", sopts.Ranks)
	}
	if sopts.ThreadsPerRank <= 0 {
		sopts.ThreadsPerRank = 1
	}
	if t := sopts.ThreadsPerRank; t&(t-1) != 0 {
		return nil, fmt.Errorf("hfx: threads per rank must be a power of two, got %d", t)
	}
	if sopts.UnitsPerThread <= 0 {
		sopts.UnitsPerThread = 4
	}
	if u := sopts.UnitsPerThread; u&(u-1) != 0 {
		return nil, fmt.Errorf("hfx: units per thread must be a power of two, got %d", u)
	}
	if sopts.Opts.Dynamic {
		return nil, fmt.Errorf("hfx: dynamic dispatch is incompatible with the steal builder's bitwise determinism contract")
	}
	opts := sopts.Opts
	opts.CacheBudgetBytes = 0 // per-builder structure keyed to the assignment; disabled
	opts.Calibrator = sopts.Calibrator
	if opts.Cost == (CostModel{}) {
		opts.Cost = DefaultCostModel()
	}
	sopts.Opts = opts

	world, err := mprt.NewWorld(mprt.Options{
		Ranks:    sopts.Ranks,
		Schedule: sopts.Schedule,
		Shape:    sopts.Shape,
	})
	if err != nil {
		return nil, err
	}
	sopts.Shape = world.Shape()

	tasks := GenerateTasks(eng.Basis, scr.Pairs, opts.Cost, opts.Granule)
	costs := TaskCosts(tasks)

	b := &StealBuilder{Eng: eng, Scr: scr, sopts: sopts, world: world}
	slots := sopts.Ranks * sopts.ThreadsPerRank * sopts.UnitsPerThread
	asn, epoch := b.placement(eng.Basis, scr.Pairs, tasks, costs, slots)
	plan, err := steal.NewPlan(asn, sopts.Ranks, sopts.Seed)
	if err != nil {
		world.Close()
		return nil, err
	}
	b.plan = plan
	b.placedEpoch = epoch
	b.deques = steal.NewDeques(plan, world.Registry())
	// The pool contributes the per-slot buffers and the task runner; its
	// worker goroutines are never woken (the steal loop drives runTask
	// directly) but close() still releases them.
	b.pl = newPool(eng, scr, opts, tasks, costs, asn)

	n := eng.Basis.NBasis
	nn := n * n
	b.counts = make([]int, sopts.Ranks)
	for r := range b.counts {
		b.counts[r] = 2 * nn / sopts.Ranks
		if r < 2*nn%sopts.Ranks {
			b.counts[r]++
		}
	}
	b.fused = make([][]float64, sopts.Ranks)
	for r := range b.fused {
		b.fused[r] = make([]float64, 2*nn)
	}
	b.jOut = linalg.NewSquare(n)
	b.kOut = linalg.NewSquare(n)
	runtime.SetFinalizer(b, (*StealBuilder).Close)
	return b, nil
}

// placement computes the static assignment under the current placement
// model: raw costs sharpened by the calibrator, then distorted by the
// noise plan. Returns the assignment and the calibrator epoch it saw.
func (b *StealBuilder) placement(set *basis.Set, pairs []screen.Pair, tasks []Task,
	costs []float64, slots int) (*sched.Assignment, uint64) {
	var classes []int
	if b.sopts.Calibrator != nil || b.sopts.Noise != nil {
		classes = TaskClasses(set, pairs, tasks)
	}
	placed := b.sopts.Calibrator.Scale(classes, costs)
	placed = b.sopts.Noise.Perturb(placed, classes)
	return sched.Balance(b.sopts.Opts.Balancer, placed, slots), b.sopts.Calibrator.Epoch()
}

// Close stops the buffer pool's workers and the mprt world. Idempotent;
// a finalizer calls it if the builder is collected without Close.
func (b *StealBuilder) Close() {
	b.closeOnce.Do(func() {
		b.pl.close()
		b.world.Close()
	})
	runtime.SetFinalizer(b, nil)
}

// World exposes the underlying mprt world.
func (b *StealBuilder) World() *mprt.World { return b.world }

// Plan exposes the current steal plan (read-only; replaced when a moved
// calibrator epoch triggers a re-balance).
func (b *StealBuilder) Plan() *steal.Plan { return b.plan }

// BuildJK computes J and K for density P with work stealing. The
// returned matrices are owned by the builder and valid until the next
// BuildJK.
func (b *StealBuilder) BuildJK(p *linalg.Matrix) (j, k *linalg.Matrix, rep StealReport, err error) {
	R := b.sopts.Ranks
	T := b.sopts.ThreadsPerRank
	spr := T * b.sopts.UnitsPerThread // slots (units) per rank
	nn := b.Eng.Basis.NBasis * b.Eng.Basis.NBasis
	start := time.Now()
	reg := b.world.Registry()

	// Re-balance when calibration moved since the placement was computed.
	rebalanced := false
	if cal := b.sopts.Calibrator; cal != nil {
		if e := cal.Epoch(); e != b.placedEpoch {
			asn, epoch := b.placement(b.Eng.Basis, b.Scr.Pairs, b.pl.tasks, b.pl.costs, R*spr)
			plan, perr := steal.NewPlan(asn, R, b.sopts.Seed)
			if perr != nil {
				return nil, nil, rep, perr
			}
			b.plan = plan
			b.placedEpoch = epoch
			b.deques = steal.NewDeques(plan, reg)
			rebalanced = true
		}
	}

	rep = StealReport{
		Ranks:          R,
		ThreadsPerRank: T,
		UnitsPerThread: b.sopts.UnitsPerThread,
		Schedule:       b.sopts.Schedule,
		Shape:          b.sopts.Shape,
		RankCompute:    make([]time.Duration, R),
		RankExecWall:   make([]time.Duration, R),
		RankComm:       make([]time.Duration, R),
		RankBytes:      make([]int64, R),
		NTasks:         len(b.pl.tasks),
		Units:          len(b.plan.Units),
		Rebalanced:     rebalanced,
		Metrics:        reg,
	}

	attempted0 := reg.Counter(steal.CounterAttempted).Value()
	succeeded0 := reg.Counter(steal.CounterSucceeded).Value()
	migrated0 := reg.Counter(steal.CounterMigrated).Value()
	reclaimed0 := reg.Counter(steal.CounterReclaimedNS).Value()
	steps0 := reg.Counter("mprt.reducescatter.steps").Value() +
		reg.Counter("mprt.allgatherv.steps").Value()

	pl := b.pl
	pl.prepareBuild(p)
	b.sopts.Calibrator.BeginWindow()
	b.deques.Reset()
	execNS := make([]int64, R) // straggler-inclusive executed wall per rank
	var execMu sync.Mutex

	// Phase 1: compute. Each rank runs ThreadsPerRank executors draining
	// its own deque front-first (most expensive own unit next); when a
	// rank runs dry and stealing is on, it takes the cheapest outstanding
	// unit of the first non-empty victim in its seeded probe order. Every
	// unit executes sequentially into its own J/K buffers, so migration
	// changes wall-clock attribution but never summation order.
	runErr := b.world.Run(func(c *mprt.Comm) error {
		r := c.Rank()
		t0 := time.Now()
		var wg sync.WaitGroup
		var localNS int64
		var localMu sync.Mutex
		for th := 0; th < T; th++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					u := b.deques.PopOwn(r)
					stolen := false
					if u < 0 && b.sopts.Steal {
						u = b.deques.Steal(r)
						stolen = true
					}
					if u < 0 {
						return
					}
					u0 := time.Now()
					jw, kw := pl.jBufs[u], pl.kBufs[u]
					jw.Zero()
					kw.Zero()
					for _, ti := range b.plan.Units[u].Tasks {
						pl.runTaskObserved(ti, jw, kw, pl.eriBufs[u], pl.scratch[u])
					}
					wall := time.Since(u0)
					if stolen {
						reg.Counter(steal.CounterReclaimedNS).Add(wall.Nanoseconds())
					}
					if d := b.sopts.Noise.StragglerDelay(r, wall); d > 0 {
						time.Sleep(d)
						wall += d
					}
					localMu.Lock()
					localNS += wall.Nanoseconds()
					localMu.Unlock()
					// Yield between units so rank goroutines interleave even
					// on a single hardware thread: without this, one rank can
					// drain every deque before the others are scheduled at
					// all, which starves the run-time balance the stealing is
					// there to provide. Bits are unaffected (unit execution
					// order never changes summation order).
					runtime.Gosched()
				}
			}()
		}
		wg.Wait()
		rep.RankCompute[r] = time.Since(t0)
		execMu.Lock()
		execNS[r] = localNS
		execMu.Unlock()
		return nil
	})
	if runErr != nil {
		return nil, nil, rep, runErr
	}

	// Phase 2: migrated unit partials return home over p2p in global
	// unit order (both sides walk the same ascending-slot sequence, so
	// the matched Send/Recv pairs cannot deadlock on the capacity-1
	// channels), then each rank merges its contiguous unit-buffer block
	// with the canonical strides below spr and enters the collective for
	// the strides above.
	runErr = b.world.Run(func(c *mprt.Comm) error {
		r := c.Rank()
		b0 := c.BytesSent()
		t0 := time.Now()
		for u := range b.plan.Units {
			ex, home := b.deques.Executor(u), b.plan.Units[u].Home
			if ex == home {
				continue
			}
			switch r {
			case ex:
				c.Send(home, 2*u, pl.jBufs[u].Data)
				c.Send(home, 2*u+1, pl.kBufs[u].Data)
			case home:
				// The received slices are the unit's own buffers (the world
				// is in-process and the executor was the sole writer), so
				// the transfer is zero-copy; bytes and hops are still
				// accounted as if the partials crossed the torus.
				c.Recv(ex, 2*u)
				c.Recv(ex, 2*u+1)
			}
		}

		// Rank-local canonical merge: strides 1..spr/2 over the rank's
		// contiguous block of unit buffers, exactly the bottom levels of
		// the global binary reduction tree (power-of-two alignment makes
		// the restriction exact).
		base := r * spr
		for stride := 1; stride < spr; stride *= 2 {
			for w := 0; w < spr; w += 2 * stride {
				if w+stride < spr {
					pl.jBufs[base+w].AXPY(1, pl.jBufs[base+w+stride])
					pl.kBufs[base+w].AXPY(1, pl.kBufs[base+w+stride])
				}
			}
		}
		fused := b.fused[r]
		copy(fused[:nn], pl.jBufs[base].Data)
		copy(fused[nn:], pl.kBufs[base].Data)

		seg := c.ReduceScatter(fused, b.counts)
		full := c.Allgatherv(seg, b.counts)
		rep.RankComm[r] = time.Since(t0)
		rep.RankBytes[r] = c.BytesSent() - b0
		if r == 0 {
			copy(b.jOut.Data, full[:nn])
			copy(b.kOut.Data, full[nn:])
		}
		return nil
	})
	if runErr != nil {
		return nil, nil, rep, runErr
	}

	for r := 0; r < R; r++ {
		rep.CommBytes += rep.RankBytes[r]
		rep.RankExecWall[r] = time.Duration(execNS[r])
	}
	rep.QuartetsComputed = pl.computed.Load()
	rep.QuartetsScreened = pl.screened.Load()
	rep.StealsAttempted = reg.Counter(steal.CounterAttempted).Value() - attempted0
	rep.StealsSucceeded = reg.Counter(steal.CounterSucceeded).Value() - succeeded0
	rep.BlocksMigrated = reg.Counter(steal.CounterMigrated).Value() - migrated0
	rep.IdleReclaimed = time.Duration(reg.Counter(steal.CounterReclaimedNS).Value() - reclaimed0)
	rep.MeasuredSteps = reg.Counter("mprt.reducescatter.steps").Value() +
		reg.Counter("mprt.allgatherv.steps").Value() - steps0
	L := b.world.PredictedReduceSteps()
	rep.PredictedSteps = 3*L + 1
	rep.BalanceRatioPredicted = maxMeanRatio(b.plan.PredLoads())
	measured := make([]float64, R)
	for r := range measured {
		measured[r] = float64(execNS[r])
	}
	rep.BalanceRatioMeasured = maxMeanRatio(measured)
	if cal := b.sopts.Calibrator; cal != nil {
		rep.CalibMeanAbsErr, rep.CalibRawAbsErr, _ = cal.WindowErr()
		rep.CalibObservations = cal.Observations()
	}
	rep.Wall = time.Since(start)
	runtime.KeepAlive(b)
	return b.jOut, b.kOut, rep, nil
}

// maxMeanRatio returns max/mean of v (1 when the sum is not positive).
func maxMeanRatio(v []float64) float64 {
	var max, sum float64
	for _, x := range v {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum <= 0 {
		return 1
	}
	return max / (sum / float64(len(v)))
}
