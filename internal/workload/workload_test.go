package workload

import (
	"context"
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"hfxmd/internal/fleet"
	"hfxmd/internal/server"
)

func specFixture(seed uint64) Spec {
	return Spec{
		Name:    "test",
		Seed:    seed,
		Clients: 4,
		Mix: []MixEntry{
			{Name: "probe", Class: "interactive", Weight: 3,
				Request: server.JobRequest{Kind: server.KindScreen, System: "h2"}, KeyPool: 2},
			{Name: "fock", Class: "batch", Weight: 1,
				Request: server.JobRequest{Kind: server.KindBuildJK, System: "he"}},
		},
		Phases: []PhaseSpec{
			{Events: 8, RateHz: 50},
			{Events: 4, RateHz: 400, GammaShape: 0.5}, // burst
		},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(specFixture(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(specFixture(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec generated different traces")
	}
	c, err := Generate(specFixture(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds generated identical traces")
	}
	if len(a.Events) != 12 {
		t.Fatalf("got %d events, want 12", len(a.Events))
	}
	for i, ev := range a.Events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if i > 0 && ev.AtNS < a.Events[i-1].AtNS {
			t.Fatalf("arrival times not monotone at %d", i)
		}
		if ev.Client < 0 || ev.Client >= 4 {
			t.Fatalf("event %d client %d out of range", i, ev.Client)
		}
	}
	if got := a.Classes(); !reflect.DeepEqual(got, []string{"interactive", "batch"}) &&
		!reflect.DeepEqual(got, []string{"batch", "interactive"}) {
		t.Fatalf("classes = %v", got)
	}
}

// TestGenerateArrivalStatistics checks the arrival processes against
// their specs on a long trace: mean inter-arrival ≈ 1/rate for every
// shape, and the Gamma(0.25) phase visibly burstier (higher coefficient
// of variation) than the Poisson one.
func TestGenerateArrivalStatistics(t *testing.T) {
	const n = 4000
	stats := func(shape float64) (mean, cv float64) {
		tr, err := Generate(Spec{
			Seed:    42,
			Clients: 1,
			Mix:     []MixEntry{{Name: "m", Weight: 1, Request: server.JobRequest{Kind: server.KindScreen, System: "h2"}}},
			Phases:  []PhaseSpec{{Events: n, RateHz: 10, GammaShape: shape}},
		})
		if err != nil {
			t.Fatal(err)
		}
		var prev int64
		var deltas []float64
		for _, ev := range tr.Events {
			deltas = append(deltas, float64(ev.AtNS-prev)/1e9)
			prev = ev.AtNS
		}
		var sum float64
		for _, d := range deltas {
			sum += d
		}
		mean = sum / float64(len(deltas))
		var sq float64
		for _, d := range deltas {
			sq += (d - mean) * (d - mean)
		}
		return mean, math.Sqrt(sq/float64(len(deltas))) / mean
	}
	meanP, cvP := stats(1)
	meanB, cvB := stats(0.25)
	if math.Abs(meanP-0.1) > 0.01 || math.Abs(meanB-0.1) > 0.015 {
		t.Fatalf("mean inter-arrival off spec: poisson %.4f, bursty %.4f, want ~0.1", meanP, meanB)
	}
	// Poisson has CV 1; Gamma(0.25) has CV 2.
	if cvP > 1.2 || cvB < 1.5 {
		t.Fatalf("burstiness not shaped: cv(poisson)=%.2f cv(gamma 0.25)=%.2f", cvP, cvB)
	}
}

func TestGenerateKeyPoolFansOutKeys(t *testing.T) {
	tr, err := Generate(Spec{
		Seed:    3,
		Clients: 1,
		Mix: []MixEntry{{Name: "m", Weight: 1, KeyPool: 3,
			Request: server.JobRequest{Kind: server.KindScreen, System: "h2"}}},
		Phases: []PhaseSpec{{Events: 60, RateHz: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, ev := range tr.Events {
		key, err := server.CanonicalKey(ev.Request)
		if err != nil {
			t.Fatal(err)
		}
		keys[key] = true
	}
	if len(keys) != 3 {
		t.Fatalf("key pool of 3 produced %d distinct canonical keys", len(keys))
	}
}

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	tr, err := Generate(specFixture(11))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("trace did not survive the JSON round trip")
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Phases: []PhaseSpec{{Events: 1, RateHz: 1}}}, // no mix
		{Mix: []MixEntry{{Name: "m", Weight: 1}}},     // no phases
		{Mix: []MixEntry{{Name: "m", Weight: 0}}, Phases: []PhaseSpec{{Events: 1, RateHz: 1}}},
		{Mix: []MixEntry{{Name: "m", Weight: 1}}, Phases: []PhaseSpec{{Events: 1, RateHz: 0}}},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func newTestCluster(t *testing.T, policy fleet.Policy, instances int) *fleet.Cluster {
	t.Helper()
	c, err := fleet.New(fleet.Options{
		Instances: instances, Policy: policy,
		Server: server.Config{Workers: 1, QueueCap: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := c.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return c
}

// TestSerialReplayDeterministic is the seeded-replay acceptance
// criterion: the same trace through two fresh fleets under the same
// policy produces identical per-class counts and an identical digest.
func TestSerialReplayDeterministic(t *testing.T) {
	tr, err := Generate(specFixture(21))
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Report {
		c := newTestCluster(t, fleet.CacheAffinity, 2)
		rep, err := RunSerial(context.Background(), c, tr)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Digest != b.Digest {
		t.Fatalf("digests diverged: %s vs %s", a.Digest, b.Digest)
	}
	if !reflect.DeepEqual(a.Classes, b.Classes) {
		t.Fatalf("class reports diverged:\n  %+v\n  %+v", a.Classes, b.Classes)
	}
	if !reflect.DeepEqual(a.Instances, b.Instances) {
		t.Fatalf("instance reports diverged:\n  %+v\n  %+v", a.Instances, b.Instances)
	}
	var total int
	for _, cr := range a.Classes {
		total += cr.Count
		if cr.Errors != 0 || cr.Failed != 0 {
			t.Fatalf("replay had failures: %+v", cr)
		}
	}
	if total != len(tr.Events) {
		t.Fatalf("classes account for %d of %d events", total, len(tr.Events))
	}
}

// TestSerialReplaySignaturesMatchAcrossPolicies replays one trace
// through every routing policy: the routing-independent signature
// digest must agree — routing moves jobs, never answers.
func TestSerialReplaySignaturesMatchAcrossPolicies(t *testing.T) {
	tr, err := Generate(specFixture(33))
	if err != nil {
		t.Fatal(err)
	}
	var ref string
	for _, p := range fleet.Policies() {
		c := newTestCluster(t, p, 2)
		rep, err := RunSerial(context.Background(), c, tr)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if ref == "" {
			ref = rep.SigDigest
			continue
		}
		if rep.SigDigest != ref {
			t.Fatalf("%v produced different results: sig %s, want %s", p, rep.SigDigest, ref)
		}
	}
}

// TestLiveReplaySmoke plays a small trace at high speed and checks the
// time-domain report is populated and self-consistent.
func TestLiveReplaySmoke(t *testing.T) {
	tr, err := Generate(specFixture(5))
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCluster(t, fleet.LeastLoaded, 2)
	rep, err := RunLive(context.Background(), c, tr, LiveOptions{TimeScale: 0.01, Timeout: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	var total, done int
	for _, cr := range rep.Classes {
		total += cr.Count
		done += cr.Done
		if cr.Errors != 0 {
			t.Fatalf("live replay errored: %+v", cr)
		}
	}
	if total != len(tr.Events) || done != len(tr.Events) {
		t.Fatalf("accounted %d/%d of %d events", total, done, len(tr.Events))
	}
	if rep.Fairness <= 0 || rep.Fairness > 1 {
		t.Fatalf("fairness %g out of (0,1]", rep.Fairness)
	}
	ic := rep.Classes["interactive"]
	if ic.P95MS < ic.P50MS || ic.MeanMS <= 0 || ic.ThroughputHz <= 0 {
		t.Fatalf("latency summary inconsistent: %+v", ic)
	}
	if rep.WallMS <= 0 {
		t.Fatal("wall time not recorded")
	}
}

func TestJainIndex(t *testing.T) {
	if j := jain([]float64{3, 3, 3}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal allocation: %g, want 1", j)
	}
	if j := jain([]float64{9, 0, 0}); math.Abs(j-1.0/3) > 1e-12 {
		t.Fatalf("single hog: %g, want 1/3", j)
	}
	if j := jain(nil); j != 1 {
		t.Fatalf("empty allocation: %g, want 1", j)
	}
}
