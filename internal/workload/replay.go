package workload

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"hfxmd/internal/fleet"
	"hfxmd/internal/server"
)

// ClassReport aggregates one SLO class.
type ClassReport struct {
	Count     int `json:"count"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Errors    int `json:"errors"` // submissions that never produced a result
	CacheHits int `json:"cacheHits"`
	// Latency/throughput fields are live-mode only: serial replay
	// measures counts and signatures, not time.
	P50MS        float64 `json:"p50Ms,omitempty"`
	P95MS        float64 `json:"p95Ms,omitempty"`
	MeanMS       float64 `json:"meanMs,omitempty"`
	ThroughputHz float64 `json:"throughputHz,omitempty"`
}

// InstanceReport is one instance's share of a run.
type InstanceReport struct {
	Routed      int64   `json:"routed"`
	CacheHits   int64   `json:"cacheHits"`
	CacheMisses int64   `json:"cacheMisses"`
	HitRatio    float64 `json:"hitRatio"`
}

// Report summarises one trace replay against a fleet.
type Report struct {
	Policy string `json:"policy"`
	Mode   string `json:"mode"` // serial | live
	Events int    `json:"events"`
	// Classes maps SLO class -> aggregate; ClassOrder preserves
	// first-seen trace order for stable rendering.
	Classes    map[string]*ClassReport `json:"classes"`
	ClassOrder []string                `json:"classOrder"`
	Instances  []InstanceReport        `json:"instances"`
	// Fairness is the Jain index over per-client completions: 1 when
	// every client got equal service, 1/n when one client got it all.
	Fairness float64 `json:"fairness"`
	// Rejected429 and RetrySweeps are the router's backpressure
	// counters for the run.
	Rejected429 int64   `json:"rejected429"`
	RetrySweeps int64   `json:"retrySweeps"`
	WallMS      float64 `json:"wallMs"`
	// Digest folds (seq, class, instance, hit, state, payload signature)
	// over the whole run: serial replays of the same trace through the
	// same policy must agree on it exactly. SigDigest folds only
	// (seq, state, payload signature) — routing-independent — so it must
	// agree across *policies* too: the proof that routing never changes
	// answers. Both are empty in live mode.
	Digest    string `json:"digest,omitempty"`
	SigDigest string `json:"sigDigest,omitempty"`
}

// resultSignature fingerprints the numerical payload of a result:
// math.Float64bits of every physics number, so two results agree iff
// they are bitwise identical. Timing fields (QueueMS, RunMS) and IDs
// are deliberately excluded — they vary run to run; the physics must
// not.
func resultSignature(res *server.JobResult) uint64 {
	h := fnv.New64a()
	w64 := func(u uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	wf := func(f float64) { w64(math.Float64bits(f)) }
	wi := func(i int64) { w64(uint64(i)) }
	h.Write([]byte(res.State))
	h.Write([]byte(res.CacheKey))
	switch {
	case res.SCF != nil:
		s := res.SCF
		wf(s.Energy)
		wf(s.EOne)
		wf(s.ECoulomb)
		wf(s.EExchangeHF)
		wf(s.EXC)
		wf(s.ENuclear)
		wi(int64(s.Iterations))
		for _, d := range s.Dipole {
			wf(d)
		}
		for _, q := range s.Mulliken {
			wf(q)
		}
	case res.Build != nil:
		b := res.Build
		wi(int64(b.NBasis))
		wi(b.QuartetsComputed)
		wi(b.QuartetsScreened)
		wf(b.JNorm)
		wf(b.KNorm)
		wf(b.ExchangeEnergy)
	case res.Screen != nil:
		s := res.Screen
		wi(int64(s.TotalPairs))
		wi(int64(s.DistanceSurvived))
		wi(int64(s.SchwarzSurvived))
		wi(int64(s.NTasks))
		wf(s.TotalCostNS)
	case res.Scan != nil:
		for _, p := range res.Scan.Points {
			wf(p.R)
			wf(p.Energy)
		}
		wf(res.Scan.WellKcal)
	case res.Traj != nil:
		t := res.Traj
		wi(int64(t.NAtoms))
		wi(int64(t.OuterSteps))
		wi(int64(t.RespaK))
		h.Write([]byte(t.Ref))
		for _, p := range t.Steps {
			wi(int64(p.Step))
			wf(p.Potential)
			wf(p.Total)
		}
		wf(t.DriftPerAtom)
		// The final restartable state, bit for bit (WallMS and the reuse
		// counters are deliberately excluded — timing and cache state vary).
		h.Write([]byte(t.FinalStateSha256))
	}
	return h.Sum64()
}

// jain returns the Jain fairness index (Σx)²/(n·Σx²) of the non-empty
// allocation vector, 1 for an empty one.
func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// RunSerial replays a trace against the fleet one event at a time, in
// trace order, ignoring arrival times. With exactly one job in flight
// the routing decision, cache behaviour and result of every event are
// functions of the trace alone, so two serial replays of the same trace
// agree event for event — counts, per-instance routing, digest. This is
// the mode determinism checks and cross-policy comparisons use; live
// timing numbers come from RunLive.
func RunSerial(ctx context.Context, c *fleet.Cluster, tr *Trace) (*Report, error) {
	rep := newReport(c, tr, "serial")
	t0 := time.Now()
	digest := fnv.New64a()
	sigDigest := fnv.New64a()
	perClient := make([]float64, tr.Spec.Clients)
	for i := range tr.Events {
		ev := &tr.Events[i]
		cr := rep.Classes[ev.Class]
		cr.Count++
		res, inst, err := c.Submit(ctx, ev.Request)
		var sig uint64
		state := "error"
		hit := false
		if err == nil {
			state = res.State
			hit = res.CacheHit
			sig = resultSignature(res)
			switch res.State {
			case server.StateDone:
				cr.Done++
				if ev.Client < len(perClient) {
					perClient[ev.Client]++
				}
			default:
				cr.Failed++
			}
			if res.CacheHit {
				cr.CacheHits++
			}
		} else {
			cr.Errors++
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
		}
		fmt.Fprintf(digest, "%d|%s|%d|%v|%s|%016x\n", ev.Seq, ev.Class, inst, hit, state, sig)
		fmt.Fprintf(sigDigest, "%d|%s|%016x\n", ev.Seq, state, sig)
	}
	rep.finish(c, perClient, time.Since(t0))
	rep.Digest = fmt.Sprintf("%016x", digest.Sum64())
	rep.SigDigest = fmt.Sprintf("%016x", sigDigest.Sum64())
	return rep, nil
}

// LiveOptions tunes RunLive.
type LiveOptions struct {
	// TimeScale maps trace time to wall time (0.1 plays a trace at 10×
	// speed; default 1).
	TimeScale float64
	// Timeout bounds the whole run (default 5m).
	Timeout time.Duration
}

// RunLive replays a trace as a live client population: one goroutine
// per client, each pacing its own events by their arrival offsets. The
// interesting outputs are the time-domain ones — per-class latency
// percentiles and throughput, Jain fairness across clients, the
// router's 429/retry counters — which are real measurements and
// therefore NOT deterministic across runs; use RunSerial for the
// deterministic counts.
func RunLive(ctx context.Context, c *fleet.Cluster, tr *Trace, opts LiveOptions) (*Report, error) {
	if opts.TimeScale == 0 {
		opts.TimeScale = 1
	}
	if opts.Timeout == 0 {
		opts.Timeout = 5 * time.Minute
	}
	ctx, cancel := context.WithTimeout(ctx, opts.Timeout)
	defer cancel()

	rep := newReport(c, tr, "live")
	byClient := make([][]*Event, tr.Spec.Clients)
	for i := range tr.Events {
		ev := &tr.Events[i]
		k := ev.Client % len(byClient)
		byClient[k] = append(byClient[k], ev)
	}

	type outcome struct {
		ev        *Event
		res       *server.JobResult
		err       error
		latencyMS float64
	}
	out := make(chan outcome, len(tr.Events))
	start := time.Now()
	for _, evs := range byClient {
		go func(evs []*Event) {
			for _, ev := range evs {
				due := start.Add(time.Duration(float64(ev.At()) * opts.TimeScale))
				if d := time.Until(due); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
					}
				}
				t0 := time.Now()
				res, _, err := c.Submit(ctx, ev.Request)
				out <- outcome{ev, res, err, float64(time.Since(t0)) / float64(time.Millisecond)}
			}
		}(evs)
	}

	latencies := map[string][]float64{}
	perClient := make([]float64, tr.Spec.Clients)
	for n := 0; n < len(tr.Events); n++ {
		o := <-out
		cr := rep.Classes[o.ev.Class]
		cr.Count++
		if o.err != nil {
			cr.Errors++
			continue
		}
		latencies[o.ev.Class] = append(latencies[o.ev.Class], o.latencyMS)
		switch o.res.State {
		case server.StateDone:
			cr.Done++
			perClient[o.ev.Client]++
		default:
			cr.Failed++
		}
		if o.res.CacheHit {
			cr.CacheHits++
		}
	}
	wall := time.Since(start)
	for class, ls := range latencies {
		sort.Float64s(ls)
		cr := rep.Classes[class]
		cr.P50MS = quantile(ls, 0.5)
		cr.P95MS = quantile(ls, 0.95)
		var sum float64
		for _, l := range ls {
			sum += l
		}
		cr.MeanMS = sum / float64(len(ls))
		cr.ThroughputHz = float64(cr.Done) / wall.Seconds()
	}
	rep.finish(c, perClient, wall)
	return rep, nil
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func newReport(c *fleet.Cluster, tr *Trace, mode string) *Report {
	rep := &Report{
		Policy:     c.Policy().String(),
		Mode:       mode,
		Events:     len(tr.Events),
		Classes:    map[string]*ClassReport{},
		ClassOrder: tr.Classes(),
	}
	for _, cl := range rep.ClassOrder {
		rep.Classes[cl] = &ClassReport{}
	}
	return rep
}

// finish folds the fleet's state into the report: per-instance routing
// and cache counters, backpressure totals, fairness, wall time.
func (rep *Report) finish(c *fleet.Cluster, perClient []float64, wall time.Duration) {
	reg := c.Registry()
	for i, inst := range c.Instances() {
		m := inst.Srv.Metrics()
		ir := InstanceReport{
			Routed:      reg.Counter(fmt.Sprintf("fleet.inst%d.routed", i)).Value(),
			CacheHits:   m.Counter("cache.hits").Value(),
			CacheMisses: m.Counter("cache.misses").Value(),
		}
		if t := ir.CacheHits + ir.CacheMisses; t > 0 {
			ir.HitRatio = float64(ir.CacheHits) / float64(t)
		}
		rep.Instances = append(rep.Instances, ir)
	}
	rep.Rejected429 = reg.Counter("fleet.rejected_busy").Value()
	rep.RetrySweeps = reg.Counter("fleet.retry_sweeps").Value()
	rep.Fairness = jain(perClient)
	rep.WallMS = float64(wall) / float64(time.Millisecond)
}

// WarmHitRatio is the fleet-wide cache hit ratio of the run — the
// headline number cache-affinity routing is meant to move.
func (rep *Report) WarmHitRatio() float64 {
	var hits, total int64
	for _, ir := range rep.Instances {
		hits += ir.CacheHits
		total += ir.CacheHits + ir.CacheMisses
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
