// Package workload generates synthetic client populations for the hfxd
// fleet: mixed job types drawn from a weighted mix, Poisson or Gamma
// inter-arrival processes with burst phases, and SLO classes. A
// generated trace is a plain value — recordable to JSON and replayable
// bit-for-bit — so the same client population can be thrown at every
// routing policy and the runs compared event by event.
package workload

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"hfxmd/internal/server"
)

// MixEntry is one job type in the workload mix.
type MixEntry struct {
	// Name labels the entry in traces and reports.
	Name string `json:"name"`
	// Class is the SLO class events of this entry are accounted under
	// (e.g. "interactive", "batch"); defaults to Name.
	Class string `json:"class,omitempty"`
	// Weight is the relative draw probability (> 0).
	Weight float64 `json:"weight"`
	// Request is the job template.
	Request server.JobRequest `json:"request"`
	// KeyPool > 1 spreads the entry over that many distinct canonical
	// keys by varying MaxIter (which is part of the result-cache key), so
	// a trace can model repeated-key traffic with a controlled key
	// cardinality. 0 or 1 leaves the template untouched: every draw is
	// the same key, the cache-affinity router's best case.
	KeyPool int `json:"keyPool,omitempty"`
}

// PhaseSpec is one arrival phase. Phases run in order, sharing the
// trace clock, which is how bursts are modelled: a high-rate phase
// sandwiched between low-rate ones.
type PhaseSpec struct {
	// Events is the number of arrivals generated in this phase.
	Events int `json:"events"`
	// RateHz is the mean arrival rate in trace time.
	RateHz float64 `json:"rateHz"`
	// GammaShape shapes the inter-arrival distribution (Gamma with this
	// shape, scaled to mean 1/RateHz). 1 (the default) is a Poisson
	// process; < 1 is burstier than Poisson, > 1 more regular.
	GammaShape float64 `json:"gammaShape,omitempty"`
}

// Spec is a complete workload description: everything Generate needs,
// so trace files are reproducible from their embedded spec alone.
type Spec struct {
	Name    string      `json:"name,omitempty"`
	Seed    uint64      `json:"seed"`
	Clients int         `json:"clients"`
	Mix     []MixEntry  `json:"mix"`
	Phases  []PhaseSpec `json:"phases"`
}

// Event is one generated arrival.
type Event struct {
	// Seq is the 0-based position in the trace.
	Seq int `json:"seq"`
	// Client is the submitting client (0-based); live replay paces each
	// client's events independently.
	Client int `json:"client"`
	// AtNS is the arrival offset from trace start, trace-time ns.
	AtNS int64 `json:"atNs"`
	// Mix and Class echo the generating MixEntry.
	Mix   string `json:"mix"`
	Class string `json:"class"`
	// Request is the concrete job (template + key-pool variation).
	Request server.JobRequest `json:"request"`
}

// At returns the arrival offset as a duration.
func (e *Event) At() time.Duration { return time.Duration(e.AtNS) }

// Trace is a recorded client population: the generating spec plus the
// concrete event sequence.
type Trace struct {
	Spec   Spec    `json:"spec"`
	Events []Event `json:"events"`
}

// Generate expands a spec into its trace. The same spec always yields
// the same trace: the generator runs on a self-contained xorshift64*
// stream seeded from Spec.Seed, never on global randomness.
func Generate(spec Spec) (*Trace, error) {
	if spec.Clients <= 0 {
		spec.Clients = 1
	}
	if len(spec.Mix) == 0 {
		return nil, fmt.Errorf("workload: empty mix")
	}
	var totalW float64
	for i, m := range spec.Mix {
		if m.Weight <= 0 {
			return nil, fmt.Errorf("workload: mix[%d] %q has weight %g", i, m.Name, m.Weight)
		}
		totalW += m.Weight
	}
	if len(spec.Phases) == 0 {
		return nil, fmt.Errorf("workload: no phases")
	}
	total := 0
	for i, p := range spec.Phases {
		if p.Events < 0 || p.RateHz <= 0 {
			return nil, fmt.Errorf("workload: phase %d needs events >= 0 and rateHz > 0", i)
		}
		total += p.Events
	}
	r := newRNG(spec.Seed)
	tr := &Trace{Spec: spec, Events: make([]Event, 0, total)}
	var t float64 // trace clock, seconds
	seq := 0
	for _, p := range spec.Phases {
		shape := p.GammaShape
		if shape == 0 {
			shape = 1
		}
		for k := 0; k < p.Events; k++ {
			// Gamma(shape) has mean = shape, so dividing by shape·rate
			// gives mean inter-arrival 1/rate at every burstiness.
			t += r.gamma(shape) / (shape * p.RateHz)
			m := pickMix(spec.Mix, totalW, r.float64())
			req := m.Request
			if m.KeyPool > 1 {
				// MaxIter is part of the canonical cache key, so offsetting
				// it fans the template out over KeyPool distinct keys. The
				// base keeps SCF-kind variants convergent.
				req.MaxIter = keyPoolBaseIter + int(r.uint64()%uint64(m.KeyPool))
			}
			class := m.Class
			if class == "" {
				class = m.Name
			}
			tr.Events = append(tr.Events, Event{
				Seq:     seq,
				Client:  int(r.uint64() % uint64(spec.Clients)),
				AtNS:    int64(t * 1e9),
				Mix:     m.Name,
				Class:   class,
				Request: req,
			})
			seq++
		}
	}
	return tr, nil
}

// keyPoolBaseIter is the MaxIter floor of key-pool variants: high enough
// that SCF-kind jobs still converge, low enough to stay distinct from
// the 0 ("server default") sentinel.
const keyPoolBaseIter = 50

func pickMix(mix []MixEntry, totalW, u float64) *MixEntry {
	x := u * totalW
	for i := range mix {
		x -= mix[i].Weight
		if x < 0 {
			return &mix[i]
		}
	}
	return &mix[len(mix)-1]
}

// Save records the trace as JSON.
func (tr *Trace) Save(path string) error {
	b, err := json.MarshalIndent(tr, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadTrace reads a recorded trace.
func LoadTrace(path string) (*Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tr Trace
	if err := json.Unmarshal(b, &tr); err != nil {
		return nil, fmt.Errorf("workload: parse %s: %w", path, err)
	}
	return &tr, nil
}

// Classes returns the distinct SLO classes of the trace, in first-seen
// order.
func (tr *Trace) Classes() []string {
	seen := map[string]bool{}
	var out []string
	for i := range tr.Events {
		if c := tr.Events[i].Class; !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Deterministic random source: xorshift64* behind a splitmix64 seed
// scramble (the same construction internal/md uses for reproducible
// velocity draws), plus the variate shapes the generator needs.

type rng struct {
	s uint64
}

func newRNG(seed uint64) *rng {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return &rng{s: z}
}

func (r *rng) uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// float64 returns a uniform variate in [0, 1) with 53 random bits.
func (r *rng) float64() float64 { return float64(r.uint64()>>11) / (1 << 53) }

// norm returns a standard normal variate (polar Box–Muller, second
// variate discarded to keep the stream position simple).
func (r *rng) norm() float64 {
	for {
		u := 2*r.float64() - 1
		v := 2*r.float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// gamma samples Gamma(shape, 1) by Marsaglia–Tsang squeeze for
// shape >= 1, boosted from shape+1 for shape < 1.
func (r *rng) gamma(shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^(1/a)
		return r.gamma(shape+1) * math.Pow(r.float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.float64()
		if u == 0 {
			continue
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}
