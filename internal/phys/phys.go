// Package phys provides physical constants and unit conversions used
// throughout hfxmd. All internal computation is done in Hartree atomic
// units: lengths in bohr, energies in hartree, masses in electron masses,
// and time in atomic time units.
package phys

import "fmt"

// Fundamental conversion factors (CODATA-2010 era values, matching the
// vintage of the reproduced paper).
const (
	// BohrToAngstrom converts lengths from bohr to ångström.
	BohrToAngstrom = 0.52917721092
	// AngstromToBohr converts lengths from ångström to bohr.
	AngstromToBohr = 1.0 / BohrToAngstrom

	// HartreeToEV converts energies from hartree to electron-volt.
	HartreeToEV = 27.21138505
	// HartreeToKcalMol converts energies from hartree to kcal/mol.
	HartreeToKcalMol = 627.509469
	// HartreeToKJMol converts energies from hartree to kJ/mol.
	HartreeToKJMol = 2625.49962

	// AMUToElectronMass converts atomic mass units to electron masses.
	AMUToElectronMass = 1822.8884845

	// AtomicTimeToFemtosecond converts atomic time units to femtoseconds.
	AtomicTimeToFemtosecond = 0.02418884326505
	// FemtosecondToAtomicTime converts femtoseconds to atomic time units.
	FemtosecondToAtomicTime = 1.0 / AtomicTimeToFemtosecond

	// BoltzmannHartreePerK is the Boltzmann constant in hartree/kelvin.
	BoltzmannHartreePerK = 3.1668114e-6
)

// Energy is an energy value in hartree with pretty-printing helpers.
type Energy float64

// EV returns the energy in electron-volt.
func (e Energy) EV() float64 { return float64(e) * HartreeToEV }

// KcalMol returns the energy in kcal/mol.
func (e Energy) KcalMol() float64 { return float64(e) * HartreeToKcalMol }

// String renders the energy in hartree with high precision.
func (e Energy) String() string { return fmt.Sprintf("%.8f Eh", float64(e)) }

// Length is a length value in bohr.
type Length float64

// Angstrom returns the length in ångström.
func (l Length) Angstrom() float64 { return float64(l) * BohrToAngstrom }

// String renders the length in bohr.
func (l Length) String() string { return fmt.Sprintf("%.6f a0", float64(l)) }
