// Package chem provides the chemical-structure substrate: elements,
// molecules, XYZ input/output, periodic simulation cells with
// minimum-image conventions, and geometry builders for the systems studied
// in the reproduced paper (water clusters for the scaling workloads,
// propylene carbonate, dimethyl sulfoxide and lithium peroxide for the
// Li/air electrolyte chemistry).
package chem

import (
	"fmt"
	"strings"
)

// Element identifies a chemical element by atomic number.
type Element int

// Elements appearing in the workloads of this repository.
const (
	H  Element = 1
	He Element = 2
	Li Element = 3
	Be Element = 4
	B  Element = 5
	C  Element = 6
	N  Element = 7
	O  Element = 8
	F  Element = 9
	Ne Element = 10
	Na Element = 11
	Mg Element = 12
	Al Element = 13
	Si Element = 14
	P  Element = 15
	S  Element = 16
	Cl Element = 17
	Ar Element = 18
)

var symbols = []string{"", "H", "He", "Li", "Be", "B", "C", "N", "O", "F",
	"Ne", "Na", "Mg", "Al", "Si", "P", "S", "Cl", "Ar"}

// masses in unified atomic mass units, indexed by atomic number.
var masses = []float64{0, 1.00794, 4.002602, 6.941, 9.012182, 10.811,
	12.0107, 14.0067, 15.9994, 18.9984032, 20.1797, 22.98976928, 24.3050,
	26.9815386, 28.0855, 30.973762, 32.065, 35.453, 39.948}

// covalentRadii in ångström (Cordero et al. 2008 values), used for bond
// perception and basis-extent heuristics.
var covalentRadii = []float64{0, 0.31, 0.28, 1.28, 0.96, 0.84, 0.76, 0.71,
	0.66, 0.57, 0.58, 1.66, 1.41, 1.21, 1.11, 1.07, 1.05, 1.02, 1.06}

// Symbol returns the element symbol ("H", "Li", ...).
func (e Element) Symbol() string {
	if int(e) < 1 || int(e) >= len(symbols) {
		return fmt.Sprintf("Z%d", int(e))
	}
	return symbols[e]
}

// Mass returns the standard atomic mass in amu.
func (e Element) Mass() float64 {
	if int(e) < 1 || int(e) >= len(masses) {
		return 0
	}
	return masses[e]
}

// CovalentRadius returns the covalent radius in ångström.
func (e Element) CovalentRadius() float64 {
	if int(e) < 1 || int(e) >= len(covalentRadii) {
		return 1.5
	}
	return covalentRadii[e]
}

// String implements fmt.Stringer.
func (e Element) String() string { return e.Symbol() }

// ElementFromSymbol parses an element symbol (case-insensitive).
func ElementFromSymbol(s string) (Element, error) {
	s = strings.TrimSpace(s)
	for i := 1; i < len(symbols); i++ {
		if strings.EqualFold(symbols[i], s) {
			return Element(i), nil
		}
	}
	return 0, fmt.Errorf("chem: unknown element symbol %q", s)
}
