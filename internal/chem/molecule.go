package chem

import (
	"fmt"
	"math"

	"hfxmd/internal/phys"
)

// Vec3 is a Cartesian vector in bohr.
type Vec3 [3]float64

// Add returns v+w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v[0] + w[0], v[1] + w[1], v[2] + w[2]} }

// Sub returns v-w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v[0] - w[0], v[1] - w[1], v[2] - w[2]} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v[0], s * v[1], s * v[2]} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v[0]*w[0] + v[1]*w[1] + v[2]*w[2] }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v[1]*w[2] - v[2]*w[1],
		v[2]*w[0] - v[0]*w[2],
		v[0]*w[1] - v[1]*w[0],
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns |v|².
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Atom is a nucleus with element identity and position in bohr.
type Atom struct {
	El  Element
	Pos Vec3
}

// Molecule is a collection of atoms, an overall charge, and an optional
// periodic cell. Positions are in bohr.
type Molecule struct {
	Atoms  []Atom
	Charge int
	// Cell, if non-nil, defines an orthorhombic periodic box whose
	// minimum-image convention is used for condensed-phase screening.
	Cell *Cell
	// Name labels the system in reports.
	Name string
}

// Cell is an orthorhombic periodic box with edge lengths in bohr.
type Cell struct {
	L Vec3
}

// MinimumImage returns the minimum-image displacement d of b-a under the
// cell's periodic boundary conditions.
func (c *Cell) MinimumImage(a, b Vec3) Vec3 {
	d := b.Sub(a)
	for k := 0; k < 3; k++ {
		if c.L[k] > 0 {
			d[k] -= c.L[k] * math.Round(d[k]/c.L[k])
		}
	}
	return d
}

// Wrap maps p into the primary cell [0,L).
func (c *Cell) Wrap(p Vec3) Vec3 {
	for k := 0; k < 3; k++ {
		if c.L[k] > 0 {
			p[k] -= c.L[k] * math.Floor(p[k]/c.L[k])
		}
	}
	return p
}

// Volume returns the cell volume in bohr³.
func (c *Cell) Volume() float64 { return c.L[0] * c.L[1] * c.L[2] }

// NAtoms returns the number of atoms.
func (m *Molecule) NAtoms() int { return len(m.Atoms) }

// NElectrons returns the electron count (sum of atomic numbers − charge).
func (m *Molecule) NElectrons() int {
	n := 0
	for _, a := range m.Atoms {
		n += int(a.El)
	}
	return n - m.Charge
}

// Distance returns the distance between atoms i and j, honouring the
// minimum-image convention when the molecule has a periodic cell.
func (m *Molecule) Distance(i, j int) float64 {
	if m.Cell != nil {
		return m.Cell.MinimumImage(m.Atoms[i].Pos, m.Atoms[j].Pos).Norm()
	}
	return m.Atoms[j].Pos.Sub(m.Atoms[i].Pos).Norm()
}

// Displacement returns r_j − r_i (minimum image if periodic).
func (m *Molecule) Displacement(i, j int) Vec3 {
	if m.Cell != nil {
		return m.Cell.MinimumImage(m.Atoms[i].Pos, m.Atoms[j].Pos)
	}
	return m.Atoms[j].Pos.Sub(m.Atoms[i].Pos)
}

// NuclearRepulsion returns the classical nucleus-nucleus Coulomb energy in
// hartree (open boundary; for periodic systems only the minimum images are
// summed, which is adequate for the neutral cluster models used here).
func (m *Molecule) NuclearRepulsion() float64 {
	var e float64
	for i := 0; i < len(m.Atoms); i++ {
		for j := i + 1; j < len(m.Atoms); j++ {
			r := m.Distance(i, j)
			e += float64(m.Atoms[i].El) * float64(m.Atoms[j].El) / r
		}
	}
	return e
}

// CenterOfMass returns the mass-weighted centre in bohr.
func (m *Molecule) CenterOfMass() Vec3 {
	var com Vec3
	var mass float64
	for _, a := range m.Atoms {
		w := a.El.Mass()
		com = com.Add(a.Pos.Scale(w))
		mass += w
	}
	if mass == 0 {
		return com
	}
	return com.Scale(1 / mass)
}

// Translate shifts every atom by d.
func (m *Molecule) Translate(d Vec3) {
	for i := range m.Atoms {
		m.Atoms[i].Pos = m.Atoms[i].Pos.Add(d)
	}
}

// Clone returns a deep copy of the molecule.
func (m *Molecule) Clone() *Molecule {
	c := &Molecule{Charge: m.Charge, Name: m.Name}
	c.Atoms = make([]Atom, len(m.Atoms))
	copy(c.Atoms, m.Atoms)
	if m.Cell != nil {
		cc := *m.Cell
		c.Cell = &cc
	}
	return c
}

// Merge returns a new molecule containing the atoms of both inputs; the
// charge is the sum and the cell (if any) is taken from m.
func (m *Molecule) Merge(other *Molecule) *Molecule {
	out := m.Clone()
	out.Atoms = append(out.Atoms, other.Atoms...)
	out.Charge += other.Charge
	if other.Name != "" {
		out.Name = m.Name + "+" + other.Name
	}
	return out
}

// Formula returns a Hill-ish chemical formula such as "C4H6O3".
func (m *Molecule) Formula() string {
	counts := map[Element]int{}
	for _, a := range m.Atoms {
		counts[a.El]++
	}
	s := ""
	emit := func(e Element) {
		if n := counts[e]; n > 0 {
			if n == 1 {
				s += e.Symbol()
			} else {
				s += fmt.Sprintf("%s%d", e.Symbol(), n)
			}
			delete(counts, e)
		}
	}
	emit(C)
	emit(H)
	for e := Element(1); e <= Ar; e++ {
		emit(e)
	}
	return s
}

// Bonds perceives covalent bonds using the covalent-radius criterion
// r_ij < f·(R_i + R_j) with tolerance factor f (typically 1.2). Returns
// index pairs with i < j.
func (m *Molecule) Bonds(f float64) [][2]int {
	var bonds [][2]int
	for i := 0; i < len(m.Atoms); i++ {
		for j := i + 1; j < len(m.Atoms); j++ {
			rmax := f * (m.Atoms[i].El.CovalentRadius() + m.Atoms[j].El.CovalentRadius()) * phys.AngstromToBohr
			if m.Distance(i, j) < rmax {
				bonds = append(bonds, [2]int{i, j})
			}
		}
	}
	return bonds
}
