package chem

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hfxmd/internal/phys"
)

// ReadXYZ parses a molecule from standard XYZ format. Coordinates in the
// file are ångström and are converted to bohr. The comment line is stored
// as the molecule name.
func ReadXYZ(r io.Reader) (*Molecule, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("chem: empty XYZ input")
	}
	n, err := strconv.Atoi(strings.TrimSpace(sc.Text()))
	if err != nil {
		return nil, fmt.Errorf("chem: bad atom count line: %w", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("chem: negative atom count %d", n)
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("chem: missing comment line")
	}
	mol := &Molecule{Name: strings.TrimSpace(sc.Text())}
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("chem: expected %d atoms, got %d", n, i)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 {
			return nil, fmt.Errorf("chem: malformed atom line %d: %q", i+1, sc.Text())
		}
		el, err := ElementFromSymbol(fields[0])
		if err != nil {
			return nil, err
		}
		var pos Vec3
		for k := 0; k < 3; k++ {
			v, err := strconv.ParseFloat(fields[k+1], 64)
			if err != nil {
				return nil, fmt.Errorf("chem: bad coordinate on line %d: %w", i+1, err)
			}
			pos[k] = v * phys.AngstromToBohr
		}
		mol.Atoms = append(mol.Atoms, Atom{El: el, Pos: pos})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return mol, nil
}

// WriteXYZ emits the molecule in XYZ format (coordinates in ångström).
func WriteXYZ(w io.Writer, m *Molecule) error {
	if _, err := fmt.Fprintf(w, "%d\n%s\n", len(m.Atoms), m.Name); err != nil {
		return err
	}
	for _, a := range m.Atoms {
		if _, err := fmt.Fprintf(w, "%-2s %14.8f %14.8f %14.8f\n",
			a.El.Symbol(),
			a.Pos[0]*phys.BohrToAngstrom,
			a.Pos[1]*phys.BohrToAngstrom,
			a.Pos[2]*phys.BohrToAngstrom); err != nil {
			return err
		}
	}
	return nil
}

// ParseXYZString is a convenience wrapper over ReadXYZ for literals.
func ParseXYZString(s string) (*Molecule, error) {
	return ReadXYZ(strings.NewReader(s))
}
