package chem

import (
	"fmt"
	"math"
	"math/rand"

	"hfxmd/internal/phys"
)

// aa converts ångström to bohr for the literal geometries below.
func aa(x float64) float64 { return x * phys.AngstromToBohr }

// Hydrogen returns H2 at the given bond length (bohr). The default
// textbook geometry is R = 1.4 a0.
func Hydrogen(r float64) *Molecule {
	return &Molecule{
		Name: "H2",
		Atoms: []Atom{
			{H, Vec3{0, 0, 0}},
			{H, Vec3{0, 0, r}},
		},
	}
}

// Helium returns a helium atom.
func Helium() *Molecule {
	return &Molecule{Name: "He", Atoms: []Atom{{He, Vec3{}}}}
}

// LithiumHydride returns LiH at its near-equilibrium distance (3.015 a0).
func LithiumHydride() *Molecule {
	return &Molecule{
		Name: "LiH",
		Atoms: []Atom{
			{Li, Vec3{0, 0, 0}},
			{H, Vec3{0, 0, 3.015}},
		},
	}
}

// Water returns a single water molecule in its experimental gas-phase
// geometry (r_OH = 0.9572 Å, ∠HOH = 104.52°), centred on the oxygen.
func Water() *Molecule {
	roh := aa(0.9572)
	half := 104.52 / 2 * math.Pi / 180
	return &Molecule{
		Name: "H2O",
		Atoms: []Atom{
			{O, Vec3{0, 0, 0}},
			{H, Vec3{roh * math.Sin(half), 0, roh * math.Cos(half)}},
			{H, Vec3{-roh * math.Sin(half), 0, roh * math.Cos(half)}},
		},
	}
}

// WaterCluster places n water molecules on a simple-cubic lattice with a
// nearest-neighbour spacing matching liquid water density (≈3.1 Å O–O),
// each randomly rotated with the given seed for reproducibility. This is
// the condensed-phase workload family of the paper's scaling study.
func WaterCluster(n int, seed int64) *Molecule {
	if n < 1 {
		panic("chem: WaterCluster needs n >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	spacing := aa(3.107) // reproduces ~0.997 g/cm³ on a cubic lattice
	side := int(math.Ceil(math.Cbrt(float64(n))))
	mol := &Molecule{Name: fmt.Sprintf("(H2O)%d", n)}
	count := 0
grid:
	for ix := 0; ix < side; ix++ {
		for iy := 0; iy < side; iy++ {
			for iz := 0; iz < side; iz++ {
				if count >= n {
					break grid
				}
				w := Water()
				randomRotate(w, rng)
				w.Translate(Vec3{float64(ix) * spacing, float64(iy) * spacing, float64(iz) * spacing})
				mol.Atoms = append(mol.Atoms, w.Atoms...)
				count++
			}
		}
	}
	return mol
}

// PeriodicWaterBox is WaterCluster wrapped in a periodic cell sized to
// liquid-water density.
func PeriodicWaterBox(n int, seed int64) *Molecule {
	mol := WaterCluster(n, seed)
	side := int(math.Ceil(math.Cbrt(float64(n))))
	l := float64(side) * aa(3.107)
	mol.Cell = &Cell{L: Vec3{l, l, l}}
	mol.Name = fmt.Sprintf("(H2O)%d/pbc", n)
	return mol
}

// randomRotate applies a uniformly random proper rotation about the
// molecule's centre of mass.
func randomRotate(m *Molecule, rng *rand.Rand) {
	// Random rotation from three Euler angles (adequate for packing).
	a, b, c := rng.Float64()*2*math.Pi, rng.Float64()*math.Pi, rng.Float64()*2*math.Pi
	ca, sa := math.Cos(a), math.Sin(a)
	cb, sb := math.Cos(b), math.Sin(b)
	cc, sc := math.Cos(c), math.Sin(c)
	r := [3][3]float64{
		{ca*cc - sa*cb*sc, -ca*sc - sa*cb*cc, sa * sb},
		{sa*cc + ca*cb*sc, -sa*sc + ca*cb*cc, -ca * sb},
		{sb * sc, sb * cc, cb},
	}
	com := m.CenterOfMass()
	for i := range m.Atoms {
		p := m.Atoms[i].Pos.Sub(com)
		m.Atoms[i].Pos = Vec3{
			r[0][0]*p[0] + r[0][1]*p[1] + r[0][2]*p[2],
			r[1][0]*p[0] + r[1][1]*p[1] + r[1][2]*p[2],
			r[2][0]*p[0] + r[2][1]*p[1] + r[2][2]*p[2],
		}.Add(com)
	}
}

// PropyleneCarbonate returns the cyclic carbonate C4H6O3 — the electrolyte
// solvent whose degradation by Li2O2 the paper investigates. The geometry
// is an idealised ring model (bond lengths/angles from standard values).
func PropyleneCarbonate() *Molecule {
	// Five-membered ring: O1-C2(=O6)-O3-C4(H)(CH3)-C5(H2)-O1.
	// Coordinates in ångström, constructed from canonical bond data.
	mol, err := ParseXYZString(`13
propylene carbonate (idealised)
C   0.0000   0.0000   0.0000
O   1.0900   0.6700   0.0000
O  -1.0900   0.6700   0.0000
O   0.0000  -1.2000   0.0000
C   0.8800   1.9900   0.2700
C  -0.6400   2.3800  -0.2100
C   1.8500   3.0200  -0.2300
H   0.9300   2.0600   1.3600
H  -0.8200   3.4200   0.0600
H  -0.7800   2.2700  -1.2900
H   1.5900   4.0200   0.1300
H   2.8600   2.7800   0.1100
H   1.8600   3.0400  -1.3200
`)
	if err != nil {
		panic(err)
	}
	// The ring closure O1...C5: relabel — our simple model keeps the
	// carbonate group planar and the propylene tail explicit, which is all
	// the reaction-coordinate scan needs (nucleophilic attack at C2 and
	// ring-opening C4-O3 / C5-O1 cleavage are both representable).
	mol.Name = "PC"
	return mol
}

// DimethylSulfoxide returns DMSO (C2H6OS), an alternative Li/air
// electrolyte solvent with enhanced stability against peroxide attack.
func DimethylSulfoxide() *Molecule {
	mol, err := ParseXYZString(`10
dimethyl sulfoxide (idealised)
S   0.0000   0.0000   0.0000
O   0.0000   0.0000   1.4900
C   1.3600  -0.9600  -0.5800
C  -1.3600  -0.9600  -0.5800
H   2.2800  -0.4400  -0.3100
H   1.3400  -1.0600  -1.6700
H   1.3300  -1.9500  -0.1200
H  -2.2800  -0.4400  -0.3100
H  -1.3400  -1.0600  -1.6700
H  -1.3300  -1.9500  -0.1200
`)
	if err != nil {
		panic(err)
	}
	mol.Name = "DMSO"
	return mol
}

// LithiumPeroxide returns a rhombic Li2O2 molecular model: a peroxide O-O
// unit (1.55 Å) side-on coordinated by two Li ions. This is the discharge
// product responsible for electrolyte degradation in Li/air cells.
func LithiumPeroxide() *Molecule {
	doo := aa(1.55)
	// Li sits in the O-O perpendicular bisector plane at ~1.82 Å from each O.
	dLi := aa(1.82)
	h := math.Sqrt(dLi*dLi - (doo/2)*(doo/2))
	return &Molecule{
		Name: "Li2O2",
		Atoms: []Atom{
			{O, Vec3{0, 0, doo / 2}},
			{O, Vec3{0, 0, -doo / 2}},
			{Li, Vec3{h, 0, 0}},
			{Li, Vec3{-h, 0, 0}},
		},
	}
}

// LithiumFluoride returns an LiF diatomic (R = 1.564 Å), used as a small
// ionic test system.
func LithiumFluoride() *Molecule {
	return &Molecule{
		Name: "LiF",
		Atoms: []Atom{
			{Li, Vec3{0, 0, 0}},
			{F, Vec3{0, 0, aa(1.564)}},
		},
	}
}

// Methane returns CH4 in Td geometry (r_CH = 1.087 Å).
func Methane() *Molecule {
	d := aa(1.087) / math.Sqrt(3)
	return &Molecule{
		Name: "CH4",
		Atoms: []Atom{
			{C, Vec3{0, 0, 0}},
			{H, Vec3{d, d, d}},
			{H, Vec3{-d, -d, d}},
			{H, Vec3{-d, d, -d}},
			{H, Vec3{d, -d, -d}},
		},
	}
}

// SolvatedPeroxide places a Li2O2 unit at the given distance (bohr) from
// the electrophilic centre of the solvent molecule (the carbonate carbon
// of PC, the sulfur of DMSO), modelling the encounter complex that
// initiates electrolyte degradation. The peroxide approaches along the
// solvent's sterically open axis — out of the ring plane for PC, the
// direction bisecting away from the S=O and the methyls for DMSO — with
// its rhombus plane face-on to the solvent so that no atom collides with
// in-plane substituents during a rigid scan.
func SolvatedPeroxide(solvent string, distance float64) (*Molecule, error) {
	var sol *Molecule
	var u Vec3 // open approach axis (unit vector)
	switch solvent {
	case "PC":
		sol = PropyleneCarbonate()
		u = Vec3{0, 0, 1} // perpendicular to the carbonate plane
	case "DMSO":
		sol = DimethylSulfoxide()
		u = Vec3{0, 1, 0} // away from both the S=O (+z) and methyls (−y,−z)
	default:
		return nil, fmt.Errorf("chem: unknown solvent %q (want PC or DMSO)", solvent)
	}
	// Face-on Li2O2: the O–O axis and the Li–Li axis both perpendicular
	// to u, all four atoms in the plane at height `distance`.
	doo := aa(1.55)
	dLi := aa(1.82)
	h := math.Sqrt(dLi*dLi - (doo/2)*(doo/2))
	// Build an orthonormal frame (e1, e2, u).
	e1 := Vec3{1, 0, 0}
	if math.Abs(u[0]) > 0.9 {
		e1 = Vec3{0, 1, 0}
	}
	e1 = e1.Sub(u.Scale(e1.Dot(u)))
	e1 = e1.Scale(1 / e1.Norm())
	e2 := u.Cross(e1)

	site := sol.Atoms[0].Pos
	center := site.Add(u.Scale(distance))
	per := &Molecule{
		Name: "Li2O2",
		Atoms: []Atom{
			{O, center.Add(e1.Scale(doo / 2))},
			{O, center.Add(e1.Scale(-doo / 2))},
			{Li, center.Add(e2.Scale(h))},
			{Li, center.Add(e2.Scale(-h))},
		},
	}
	m := sol.Merge(per)
	m.Name = fmt.Sprintf("%s+Li2O2@%.2f", solvent, distance)
	return m, nil
}
