package chem

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"hfxmd/internal/phys"
)

func TestElementRoundTrip(t *testing.T) {
	for e := Element(1); e <= Ar; e++ {
		got, err := ElementFromSymbol(e.Symbol())
		if err != nil {
			t.Fatalf("symbol %q: %v", e.Symbol(), err)
		}
		if got != e {
			t.Fatalf("round trip %v -> %v", e, got)
		}
	}
}

func TestElementFromSymbolCaseInsensitive(t *testing.T) {
	for _, s := range []string{"li", "LI", "Li", " li "} {
		e, err := ElementFromSymbol(s)
		if err != nil || e != Li {
			t.Fatalf("%q -> %v, %v", s, e, err)
		}
	}
	if _, err := ElementFromSymbol("Xx"); err == nil {
		t.Fatal("expected error for unknown symbol")
	}
}

func TestWaterGeometry(t *testing.T) {
	w := Water()
	if w.NAtoms() != 3 || w.NElectrons() != 10 {
		t.Fatalf("water: %d atoms, %d electrons", w.NAtoms(), w.NElectrons())
	}
	r1 := w.Distance(0, 1) * phys.BohrToAngstrom
	r2 := w.Distance(0, 2) * phys.BohrToAngstrom
	if math.Abs(r1-0.9572) > 1e-6 || math.Abs(r2-0.9572) > 1e-6 {
		t.Fatalf("OH distances %g, %g", r1, r2)
	}
	// HOH angle.
	v1 := w.Atoms[1].Pos.Sub(w.Atoms[0].Pos)
	v2 := w.Atoms[2].Pos.Sub(w.Atoms[0].Pos)
	ang := math.Acos(v1.Dot(v2)/(v1.Norm()*v2.Norm())) * 180 / math.Pi
	if math.Abs(ang-104.52) > 1e-4 {
		t.Fatalf("HOH angle %g", ang)
	}
}

func TestNuclearRepulsionH2(t *testing.T) {
	h2 := Hydrogen(1.4)
	got := h2.NuclearRepulsion()
	want := 1.0 / 1.4
	if math.Abs(got-want) > 1e-14 {
		t.Fatalf("E_nn got %g want %g", got, want)
	}
}

func TestXYZRoundTrip(t *testing.T) {
	m := PropyleneCarbonate()
	var buf bytes.Buffer
	if err := WriteXYZ(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadXYZ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NAtoms() != m.NAtoms() {
		t.Fatalf("atom count %d != %d", m2.NAtoms(), m.NAtoms())
	}
	for i := range m.Atoms {
		if m.Atoms[i].El != m2.Atoms[i].El {
			t.Fatalf("atom %d element mismatch", i)
		}
		if m.Atoms[i].Pos.Sub(m2.Atoms[i].Pos).Norm() > 1e-7 {
			t.Fatalf("atom %d position drift", i)
		}
	}
}

func TestReadXYZErrors(t *testing.T) {
	cases := []string{
		"",
		"notanumber\ncomment\n",
		"2\ncomment\nH 0 0 0\n",    // too few atoms
		"1\ncomment\nQq 0 0 0\n",   // bad element
		"1\ncomment\nH 0 zero 0\n", // bad coordinate
		"1\ncomment\nH 0 0\n",      // short line
		"-1\ncomment\n",            // negative count
	}
	for _, c := range cases {
		if _, err := ReadXYZ(strings.NewReader(c)); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
}

func TestWaterClusterCountAndDensity(t *testing.T) {
	for _, n := range []int{1, 2, 8, 27, 30} {
		m := WaterCluster(n, 1)
		if m.NAtoms() != 3*n {
			t.Fatalf("n=%d: %d atoms", n, m.NAtoms())
		}
	}
	// Deterministic for the same seed.
	a := WaterCluster(8, 42)
	b := WaterCluster(8, 42)
	for i := range a.Atoms {
		if a.Atoms[i].Pos != b.Atoms[i].Pos {
			t.Fatal("WaterCluster not deterministic for fixed seed")
		}
	}
	// Different seeds produce different orientations.
	c := WaterCluster(8, 43)
	same := true
	for i := range a.Atoms {
		if a.Atoms[i].Pos != c.Atoms[i].Pos {
			same = false
			break
		}
	}
	if same {
		t.Fatal("WaterCluster ignored the seed")
	}
}

func TestPeriodicWaterBoxMinimumImage(t *testing.T) {
	m := PeriodicWaterBox(8, 1)
	if m.Cell == nil {
		t.Fatal("no cell")
	}
	l := m.Cell.L[0]
	// A displacement longer than half the box must be folded back.
	d := m.Cell.MinimumImage(Vec3{0, 0, 0}, Vec3{0.9 * l, 0, 0})
	if math.Abs(d[0]+0.1*l) > 1e-10 {
		t.Fatalf("minimum image got %g want %g", d[0], -0.1*l)
	}
}

func TestCellWrap(t *testing.T) {
	c := Cell{L: Vec3{10, 10, 10}}
	p := c.Wrap(Vec3{-1, 11, 25})
	want := Vec3{9, 1, 5}
	if p.Sub(want).Norm() > 1e-12 {
		t.Fatalf("wrap got %v want %v", p, want)
	}
}

func TestMinimumImageProperty(t *testing.T) {
	// |minimum image| ≤ L√3/2 for a cubic box.
	c := Cell{L: Vec3{7, 7, 7}}
	clamp := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Mod(x, 1e6)
	}
	f := func(ax, ay, az, bx, by, bz float64) bool {
		d := c.MinimumImage(
			Vec3{clamp(ax), clamp(ay), clamp(az)},
			Vec3{clamp(bx), clamp(by), clamp(bz)})
		for k := 0; k < 3; k++ {
			if math.Abs(d[k]) > 3.5+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMoleculeFormula(t *testing.T) {
	if f := PropyleneCarbonate().Formula(); f != "C4H6O3" {
		t.Fatalf("PC formula %q", f)
	}
	if f := DimethylSulfoxide().Formula(); f != "C2H6OS" {
		t.Fatalf("DMSO formula %q", f)
	}
	if f := LithiumPeroxide().Formula(); f != "Li2O2" {
		t.Fatalf("Li2O2 formula %q", f)
	}
}

func TestNElectronsAndCharge(t *testing.T) {
	m := LithiumPeroxide()
	if m.NElectrons() != 2*3+2*8 {
		t.Fatalf("Li2O2 electrons %d", m.NElectrons())
	}
	m.Charge = 1
	if m.NElectrons() != 21 {
		t.Fatalf("cation electrons %d", m.NElectrons())
	}
}

func TestBondsWater(t *testing.T) {
	b := Water().Bonds(1.2)
	if len(b) != 2 {
		t.Fatalf("water bonds %v", b)
	}
}

func TestSolvatedPeroxide(t *testing.T) {
	m, err := SolvatedPeroxide("PC", 6.0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NAtoms() != 13+4 {
		t.Fatalf("%d atoms", m.NAtoms())
	}
	if _, err := SolvatedPeroxide("XYZ", 6.0); err == nil {
		t.Fatal("expected error for unknown solvent")
	}
}

func TestVec3Ops(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, 5, 6}
	if v.Dot(w) != 32 {
		t.Fatalf("dot %g", v.Dot(w))
	}
	x := v.Cross(w)
	if x != (Vec3{-3, 6, -3}) {
		t.Fatalf("cross %v", x)
	}
	if math.Abs(v.Norm()-math.Sqrt(14)) > 1e-15 {
		t.Fatalf("norm %g", v.Norm())
	}
}

func TestCenterOfMassTranslate(t *testing.T) {
	m := Water()
	m.Translate(Vec3{1, 2, 3})
	com := m.CenterOfMass()
	m.Translate(com.Scale(-1))
	if m.CenterOfMass().Norm() > 1e-12 {
		t.Fatal("COM not at origin after recentring")
	}
}

func TestMergePreservesCharge(t *testing.T) {
	a := Water()
	a.Charge = 1
	b := LithiumPeroxide()
	b.Charge = -1
	m := a.Merge(b)
	if m.Charge != 0 {
		t.Fatalf("merged charge %d", m.Charge)
	}
	if m.NAtoms() != 7 {
		t.Fatalf("merged atoms %d", m.NAtoms())
	}
}
