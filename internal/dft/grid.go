// Package dft provides the semilocal density-functional substrate needed
// for the PBE0 hybrid functional: Becke-partitioned atom-centred
// integration grids (Gauss–Chebyshev radial × Lebedev angular), the LDA
// (Slater exchange, VWN5 correlation) and PBE exchange–correlation
// functionals, and the assembly of exchange–correlation energies and
// Kohn–Sham matrices over the grid.
//
// PBE0 itself is composed at the SCF level: E_xc = ¼E_x^HF + ¾E_x^PBE +
// E_c^PBE, with the exact-exchange part supplied by package hfx.
package dft

import (
	"math"

	"hfxmd/internal/chem"
	"hfxmd/internal/phys"
)

// GridPoint is one quadrature node with its combined weight (radial ×
// angular × Becke partition).
type GridPoint struct {
	Pos chem.Vec3
	W   float64
}

// Grid is a molecular integration grid.
type Grid struct {
	Points []GridPoint
}

// GridSpec controls grid construction.
type GridSpec struct {
	// NRadial is the number of radial shells per atom (default 32).
	NRadial int
	// NAngular selects the Lebedev order: one of 6, 14, 26, 38, 50
	// (default 26).
	NAngular int
}

// DefaultGridSpec returns a medium grid adequate for the energy
// differences studied here.
func DefaultGridSpec() GridSpec { return GridSpec{NRadial: 32, NAngular: 26} }

// lebedev returns the unit-sphere points and weights of the small Lebedev
// rules. Weights sum to 1 (the 4π factor is folded into the radial part).
func lebedev(n int) ([]chem.Vec3, []float64) {
	switch n {
	case 6:
		return octahedron(), repeat(1.0/6, 6)
	case 14:
		pts := append(octahedron(), cube()...)
		w := append(repeat(1.0/15, 6), repeat(3.0/40, 8)...)
		return pts, w
	case 26:
		pts := append(append(octahedron(), edges()...), cube()...)
		w := append(append(repeat(1.0/21, 6), repeat(4.0/105, 12)...), repeat(27.0/840, 8)...)
		return pts, w
	case 38:
		const p = 0.4597008433809831
		q := math.Sqrt(1 - p*p)
		pts := append(append(octahedron(), cube()...), pq0(p, q)...)
		w := append(append(repeat(0.009523809523809524, 6), repeat(0.03214285714285714, 8)...),
			repeat(0.02857142857142857, 24)...)
		return pts, w
	case 50:
		const l = 0.3015113445777636
		m := math.Sqrt(1 - 2*l*l)
		pts := append(append(append(octahedron(), edges()...), cube()...), llm(l, m)...)
		w := append(append(append(
			repeat(0.012698412698412698, 6),
			repeat(0.022574955908289243, 12)...),
			repeat(0.021093750000000000, 8)...),
			repeat(0.020173335537918871, 24)...)
		return pts, w
	default:
		panic("dft: unsupported Lebedev order (want 6, 14, 26, 38 or 50)")
	}
}

func repeat(v float64, n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = v
	}
	return w
}

func octahedron() []chem.Vec3 {
	return []chem.Vec3{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}
}

func cube() []chem.Vec3 {
	a := 1 / math.Sqrt(3)
	var pts []chem.Vec3
	for _, sx := range []float64{a, -a} {
		for _, sy := range []float64{a, -a} {
			for _, sz := range []float64{a, -a} {
				pts = append(pts, chem.Vec3{sx, sy, sz})
			}
		}
	}
	return pts
}

func edges() []chem.Vec3 {
	a := 1 / math.Sqrt2
	var pts []chem.Vec3
	for _, s1 := range []float64{a, -a} {
		for _, s2 := range []float64{a, -a} {
			pts = append(pts,
				chem.Vec3{s1, s2, 0}, chem.Vec3{s1, 0, s2}, chem.Vec3{0, s1, s2})
		}
	}
	return pts
}

// pq0 generates the 24 points (±p,±q,0) and permutations.
func pq0(p, q float64) []chem.Vec3 {
	var pts []chem.Vec3
	for _, sp := range []float64{p, -p} {
		for _, sq := range []float64{q, -q} {
			pts = append(pts,
				chem.Vec3{sp, sq, 0}, chem.Vec3{sq, sp, 0},
				chem.Vec3{sp, 0, sq}, chem.Vec3{sq, 0, sp},
				chem.Vec3{0, sp, sq}, chem.Vec3{0, sq, sp})
		}
	}
	return pts
}

// llm generates the 24 points (±l,±l,±m) and permutations.
func llm(l, m float64) []chem.Vec3 {
	var pts []chem.Vec3
	for _, s1 := range []float64{l, -l} {
		for _, s2 := range []float64{l, -l} {
			for _, s3 := range []float64{m, -m} {
				pts = append(pts,
					chem.Vec3{s1, s2, s3}, chem.Vec3{s1, s3, s2}, chem.Vec3{s3, s1, s2})
			}
		}
	}
	return pts
}

// beckeRM returns the atom-size mapping parameter in bohr.
func beckeRM(el chem.Element) float64 {
	r := el.CovalentRadius() * phys.AngstromToBohr
	if el == chem.H {
		return 0.8 // hydrogen needs a tighter map than its covalent radius
	}
	return math.Max(r, 0.5)
}

// BuildGrid constructs the Becke-partitioned molecular grid.
func BuildGrid(mol *chem.Molecule, spec GridSpec) *Grid {
	if spec.NRadial <= 0 {
		spec.NRadial = DefaultGridSpec().NRadial
	}
	if spec.NAngular <= 0 {
		spec.NAngular = DefaultGridSpec().NAngular
	}
	angPts, angW := lebedev(spec.NAngular)
	g := &Grid{}
	for ai, atom := range mol.Atoms {
		rm := beckeRM(atom.El)
		n := spec.NRadial
		for i := 1; i <= n; i++ {
			theta := float64(i) * math.Pi / float64(n+1)
			x := math.Cos(theta)
			r := rm * (1 + x) / (1 - x)
			if r < 1e-12 {
				continue
			}
			// Radial weight: Gauss–Chebyshev (2nd kind) × Jacobian of the
			// Becke map × r², with the 4π of the angular integral folded
			// in here because the Lebedev weights sum to 1.
			wRad := math.Pi / float64(n+1) * math.Sin(theta) *
				r * r * 2 * rm / ((1 - x) * (1 - x)) * 4 * math.Pi
			for k, u := range angPts {
				p := chem.Vec3{
					atom.Pos[0] + r*u[0],
					atom.Pos[1] + r*u[1],
					atom.Pos[2] + r*u[2],
				}
				w := wRad * angW[k] * beckeWeight(mol, ai, p)
				if w > 1e-16 {
					g.Points = append(g.Points, GridPoint{Pos: p, W: w})
				}
			}
		}
	}
	return g
}

// beckeWeight returns the Becke fuzzy-Voronoi partition weight of grid
// point p belonging to atom ia (3 iterations of the smoothing polynomial).
func beckeWeight(mol *chem.Molecule, ia int, p chem.Vec3) float64 {
	n := mol.NAtoms()
	if n == 1 {
		return 1
	}
	cells := make([]float64, n)
	for i := 0; i < n; i++ {
		cells[i] = 1
	}
	for i := 0; i < n; i++ {
		ri := p.Sub(mol.Atoms[i].Pos).Norm()
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			rj := p.Sub(mol.Atoms[j].Pos).Norm()
			rij := mol.Atoms[j].Pos.Sub(mol.Atoms[i].Pos).Norm()
			mu := (ri - rj) / rij
			f := mu
			for it := 0; it < 3; it++ {
				f = 1.5*f - 0.5*f*f*f
			}
			cells[i] *= 0.5 * (1 - f)
		}
	}
	var total float64
	for _, c := range cells {
		total += c
	}
	if total <= 0 {
		return 0
	}
	return cells[ia] / total
}

// NumberOfElectrons integrates a density callback over the grid — the
// standard grid-quality diagnostic (must reproduce N_e).
func (g *Grid) NumberOfElectrons(rho func(chem.Vec3) float64) float64 {
	var n float64
	for _, pt := range g.Points {
		n += pt.W * rho(pt.Pos)
	}
	return n
}
