package dft

import (
	"math"
	"runtime"
	"sync"

	"hfxmd/internal/basis"
	"hfxmd/internal/chem"
	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
)

// XCResult holds the integrated exchange–correlation quantities.
type XCResult struct {
	// Energy is the semilocal XC energy in hartree.
	Energy float64
	// V is the Kohn–Sham XC matrix.
	V *linalg.Matrix
	// NElec is the grid-integrated electron count (grid diagnostic).
	NElec float64
}

// EvalBasis computes every basis-function value and gradient at point r.
// vals and grads must have length set.NBasis.
func EvalBasis(set *basis.Set, r chem.Vec3, vals []float64, grads [][3]float64) {
	for i := range vals {
		vals[i] = 0
		grads[i] = [3]float64{}
	}
	for si := range set.Shells {
		sh := &set.Shells[si]
		d := [3]float64{r[0] - sh.Center[0], r[1] - sh.Center[1], r[2] - sh.Center[2]}
		r2 := d[0]*d[0] + d[1]*d[1] + d[2]*d[2]
		comps := integrals.Components(sh.L)
		for ci, comp := range comps {
			norm := integrals.ComponentNorm(comp)
			idx := sh.Index + ci
			pows := [3]int{comp.X, comp.Y, comp.Z}
			// Angular part and its derivative factors.
			ang := powi(d[0], pows[0]) * powi(d[1], pows[1]) * powi(d[2], pows[2])
			for pi, alpha := range sh.Exps {
				c := sh.Coefs[pi] * norm
				g := c * math.Exp(-alpha*r2)
				vals[idx] += g * ang
				for k := 0; k < 3; k++ {
					// d/dx [x^l e^{-αr²}] = (l x^{l-1} − 2αx·x^l) e^{-αr²}.
					var dAng float64
					if pows[k] > 0 {
						dAng = float64(pows[k]) * powi(d[k], pows[k]-1)
						for j := 0; j < 3; j++ {
							if j != k {
								dAng *= powi(d[j], pows[j])
							}
						}
					}
					grads[idx][k] += g * (dAng - 2*alpha*d[k]*ang)
				}
			}
		}
	}
}

func powi(x float64, n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= x
	}
	return r
}

// Integrate evaluates the semilocal XC energy and matrix for density p
// over the grid, parallelising over grid points with per-worker private
// matrices (the same private-buffer + tree-merge pattern as package hfx).
func Integrate(f Functional, set *basis.Set, g *Grid, p *linalg.Matrix) XCResult {
	n := set.NBasis
	nw := runtime.GOMAXPROCS(0)
	if nw > len(g.Points) {
		nw = 1
	}
	type partial struct {
		v      *linalg.Matrix
		energy float64
		nelec  float64
	}
	parts := make([]partial, nw)
	var wg sync.WaitGroup
	chunk := (len(g.Points) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * chunk
			hi := lo + chunk
			if hi > len(g.Points) {
				hi = len(g.Points)
			}
			vals := make([]float64, n)
			grads := make([][3]float64, n)
			v := linalg.NewSquare(n)
			var energy, nelec float64
			needGrad := f.NeedsGradient()
			for _, pt := range g.Points[lo:hi] {
				EvalBasis(set, pt.Pos, vals, grads)
				// ρ = Σ_{μν} P_{μν} φ_μ φ_ν ; ∇ρ = 2 Σ P φ_μ ∇φ_ν.
				var rho float64
				var grho [3]float64
				for i := 0; i < n; i++ {
					if vals[i] == 0 && grads[i] == ([3]float64{}) {
						continue
					}
					row := p.Row(i)
					var t float64
					for j := 0; j < n; j++ {
						t += row[j] * vals[j]
					}
					rho += t * vals[i]
					if needGrad {
						for k := 0; k < 3; k++ {
							grho[k] += 2 * t * grads[i][k]
						}
					}
				}
				if rho < rhoFloor {
					continue
				}
				gamma := grho[0]*grho[0] + grho[1]*grho[1] + grho[2]*grho[2]
				fv, dfdrho, dfdgamma := f.Eval(rho, gamma)
				energy += pt.W * fv
				nelec += pt.W * rho
				// V_{μν} += w [ ∂f/∂ρ φμφν + 2 ∂f/∂γ ∇ρ·(φμ∇φν + φν∇φμ) ].
				for i := 0; i < n; i++ {
					fi := vals[i]
					wi := pt.W * dfdrho * fi
					var gi float64
					if needGrad && dfdgamma != 0 {
						gi = 2 * pt.W * dfdgamma *
							(grho[0]*grads[i][0] + grho[1]*grads[i][1] + grho[2]*grads[i][2])
					}
					row := v.Row(i)
					for j := 0; j < n; j++ {
						row[j] += wi * vals[j]
						if gi != 0 {
							row[j] += gi * vals[j]
						}
						if needGrad && dfdgamma != 0 {
							row[j] += 2 * pt.W * dfdgamma * fi *
								(grho[0]*grads[j][0] + grho[1]*grads[j][1] + grho[2]*grads[j][2])
						}
					}
				}
			}
			parts[w] = partial{v: v, energy: energy, nelec: nelec}
		}(w)
	}
	wg.Wait()
	res := XCResult{V: linalg.NewSquare(n)}
	for _, pt := range parts {
		if pt.v == nil {
			continue
		}
		res.V.AXPY(1, pt.v)
		res.Energy += pt.energy
		res.NElec += pt.nelec
	}
	res.V.Symmetrize()
	return res
}
