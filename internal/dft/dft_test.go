package dft

import (
	"math"
	"testing"

	"hfxmd/internal/basis"
	"hfxmd/internal/chem"
	"hfxmd/internal/linalg"
)

func TestLebedevWeightsAndMoments(t *testing.T) {
	for _, n := range []int{6, 14, 26, 38, 50} {
		pts, w := lebedev(n)
		if len(pts) != n || len(w) != n {
			t.Fatalf("order %d: %d points %d weights", n, len(pts), len(w))
		}
		var sum, x2, xy float64
		for i, p := range pts {
			if math.Abs(p.Norm()-1) > 1e-12 {
				t.Fatalf("order %d point %d not on unit sphere: |p|=%g", n, i, p.Norm())
			}
			sum += w[i]
			x2 += w[i] * p[0] * p[0]
			xy += w[i] * p[0] * p[1]
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("order %d weights sum %g", n, sum)
		}
		// ⟨x²⟩ = 1/3 and ⟨xy⟩ = 0 for any rule exact beyond degree 2.
		if math.Abs(x2-1.0/3) > 1e-10 {
			t.Fatalf("order %d ⟨x²⟩ = %g", n, x2)
		}
		if math.Abs(xy) > 1e-12 {
			t.Fatalf("order %d ⟨xy⟩ = %g", n, xy)
		}
	}
}

func TestLebedevUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	lebedev(17)
}

func TestBeckeWeightsPartitionUnity(t *testing.T) {
	mol := chem.Water()
	pts := []chem.Vec3{{0.3, 0.1, 0.5}, {1.5, -0.2, 0.9}, {-2, 1, 0}}
	for _, p := range pts {
		var sum float64
		for a := range mol.Atoms {
			sum += beckeWeight(mol, a, p)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("Becke weights at %v sum to %g", p, sum)
		}
	}
}

func TestGridIntegratesGaussian(t *testing.T) {
	// A normalized s Gaussian on the oxygen of water: ∫ρ = 1.
	mol := chem.Water()
	alpha := 1.3
	norm := math.Pow(2*alpha/math.Pi, 1.5)
	rho := func(r chem.Vec3) float64 {
		d := r.Sub(mol.Atoms[0].Pos)
		return norm * math.Exp(-2*alpha*d.Norm2())
	}
	// On a single centre the radial rule is essentially exact.
	he := chem.Helium()
	gHe := BuildGrid(he, GridSpec{NRadial: 48, NAngular: 14})
	got := gHe.NumberOfElectrons(func(r chem.Vec3) float64 {
		return norm * math.Exp(-2*alpha*r.Norm2())
	})
	if math.Abs(got-1) > 1e-7 {
		t.Fatalf("single-centre grid integral %g want 1", got)
	}
	// Multi-centre accuracy is limited by the small Lebedev orders (the
	// Becke partition shifts density onto neighbour grids); it must stay
	// within a few 1e-3 and improve with angular order.
	err26 := math.Abs(BuildGrid(mol, GridSpec{NRadial: 48, NAngular: 26}).NumberOfElectrons(rho) - 1)
	err50 := math.Abs(BuildGrid(mol, GridSpec{NRadial: 48, NAngular: 50}).NumberOfElectrons(rho) - 1)
	if err26 > 5e-3 {
		t.Fatalf("26-point angular error %g too large", err26)
	}
	if err50 >= err26 {
		t.Fatalf("angular refinement did not help: %g -> %g", err26, err50)
	}
}

func TestGridElectronCountFromDensityMatrix(t *testing.T) {
	// With P = 2(S^{-1}) ... simpler: use the exact normalized first basis
	// function: P with P_00 = 2 integrates to 2.
	mol := chem.Helium()
	set := basis.MustBuild("STO-3G", mol)
	g := BuildGrid(mol, GridSpec{NRadial: 48, NAngular: 14})
	p := linalg.NewSquare(set.NBasis)
	p.Set(0, 0, 2)
	res := Integrate(LDA{}, set, g, p)
	if math.Abs(res.NElec-2) > 1e-4 {
		t.Fatalf("grid electron count %g want 2", res.NElec)
	}
	if res.Energy >= 0 {
		t.Fatalf("LDA XC energy %g should be negative", res.Energy)
	}
	if !res.V.IsSymmetric(1e-12) {
		t.Fatal("XC matrix not symmetric")
	}
}

func TestEvalBasisGradientFiniteDifference(t *testing.T) {
	set := basis.MustBuild("STO-3G", chem.Water())
	n := set.NBasis
	vals := make([]float64, n)
	grads := make([][3]float64, n)
	r := chem.Vec3{0.4, -0.3, 0.7}
	EvalBasis(set, r, vals, grads)
	const h = 1e-6
	vp := make([]float64, n)
	vm := make([]float64, n)
	gp := make([][3]float64, n)
	for k := 0; k < 3; k++ {
		rp, rm := r, r
		rp[k] += h
		rm[k] -= h
		EvalBasis(set, rp, vp, gp)
		EvalBasis(set, rm, vm, gp)
		for i := 0; i < n; i++ {
			fd := (vp[i] - vm[i]) / (2 * h)
			if math.Abs(fd-grads[i][k]) > 1e-6*(1+math.Abs(fd)) {
				t.Fatalf("basis %d grad[%d]: analytic %g fd %g", i, k, grads[i][k], fd)
			}
		}
	}
}

func TestSlaterExchangeValue(t *testing.T) {
	// f_x(ρ) = −cx·ρ^{4/3}: check against an independent evaluation.
	rho := 0.8
	f, v, _ := (LDA{}).Eval(rho, 0)
	fx := -0.7385587663820224 * math.Pow(rho, 4.0/3.0)
	ecPart := f - fx
	if ecPart >= 0 {
		t.Fatalf("correlation energy density %g should be negative", ecPart)
	}
	// v must equal the numeric derivative of f w.r.t. ρ.
	h := 1e-7
	fp, _, _ := (LDA{}).Eval(rho+h, 0)
	fm, _, _ := (LDA{}).Eval(rho-h, 0)
	fd := (fp - fm) / (2 * h)
	if math.Abs(fd-v) > 1e-6 {
		t.Fatalf("LDA potential %g vs numeric %g", v, fd)
	}
}

func TestPBEReducesToLDAExchangeAtZeroGradient(t *testing.T) {
	rho := 0.37
	exPBE := pbeExchangeOnly(rho, 0)
	exLDA := -cx * rho * math.Cbrt(rho)
	if math.Abs(exPBE-exLDA) > 1e-13 {
		t.Fatalf("PBE exchange at s=0: %g vs LDA %g", exPBE, exLDA)
	}
}

func TestPBEEnhancementBounded(t *testing.T) {
	// PBE exchange enhancement is bounded by 1+κ = 1.804 (Lieb–Oxford).
	rho := 0.2
	exLDA := -cx * rho * math.Cbrt(rho)
	for _, gamma := range []float64{0, 0.01, 1, 100, 1e6} {
		ex := pbeExchangeOnly(rho, gamma)
		ratio := ex / exLDA
		if ratio < 1-1e-12 || ratio > 1.804+1e-12 {
			t.Fatalf("γ=%g: enhancement %g out of [1, 1.804]", gamma, ratio)
		}
	}
}

func TestPBEMoreNegativeWithGradient(t *testing.T) {
	// Exchange becomes more negative as the gradient grows.
	rho := 0.5
	prev := pbeExchangeOnly(rho, 0)
	for _, gamma := range []float64{0.1, 1, 10} {
		ex := pbeExchangeOnly(rho, gamma)
		if ex >= prev {
			t.Fatalf("exchange not decreasing with γ: %g -> %g", prev, ex)
		}
		prev = ex
	}
}

func TestVWNDerivativeConsistency(t *testing.T) {
	for _, rho := range []float64{0.01, 0.1, 1, 10} {
		ec, vc := vwn5(rho)
		if ec >= 0 {
			t.Fatalf("ε_c(%g) = %g not negative", rho, ec)
		}
		// v_c = d(ρ·ε_c)/dρ.
		h := rho * 1e-6
		ep, _ := vwn5(rho + h)
		em, _ := vwn5(rho - h)
		fd := ((rho+h)*ep - (rho-h)*em) / (2 * h)
		if math.Abs(fd-vc) > 1e-5*math.Abs(vc) {
			t.Fatalf("ρ=%g: v_c %g vs numeric %g", rho, vc, fd)
		}
	}
}

func TestFunctionalRegistry(t *testing.T) {
	for _, name := range []string{"HF", "LDA", "PBE", "PBE0"} {
		f, ok := ByName(name)
		if !ok || f.Name() == "" {
			t.Fatalf("missing functional %s", name)
		}
	}
	if _, ok := ByName("B3LYP"); ok {
		t.Fatal("unexpected functional")
	}
	if (PBE0{}).ExactExchangeFraction() != 0.25 {
		t.Fatal("PBE0 mixing wrong")
	}
	if (HF{}).ExactExchangeFraction() != 1 {
		t.Fatal("HF mixing wrong")
	}
}

func TestPBE0SemilocalLessExchangeThanPBE(t *testing.T) {
	// PBE0's semilocal part removes 25% of PBE exchange, so its energy
	// density must be above (less negative than) PBE's.
	rho, gamma := 0.4, 0.3
	fp, _, _ := (PBE{}).Eval(rho, gamma)
	f0, _, _ := (PBE0{}).Eval(rho, gamma)
	if !(f0 > fp) {
		t.Fatalf("PBE0 semilocal %g not above PBE %g", f0, fp)
	}
	diff := f0 - fp
	want := -0.25 * pbeExchangeOnly(rho, gamma)
	if math.Abs(diff-want) > 1e-9 {
		t.Fatalf("PBE0-PBE difference %g want %g", diff, want)
	}
}

func TestGridSpecDefaults(t *testing.T) {
	g := BuildGrid(chem.Helium(), GridSpec{})
	if len(g.Points) == 0 {
		t.Fatal("empty default grid")
	}
}

func BenchmarkIntegrateLDAWater(b *testing.B) {
	mol := chem.Water()
	set := basis.MustBuild("STO-3G", mol)
	g := BuildGrid(mol, GridSpec{NRadial: 24, NAngular: 14})
	p := linalg.Identity(set.NBasis)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Integrate(LDA{}, set, g, p)
	}
}
