package dft

import "math"

// Functional is a closed-shell semilocal exchange–correlation functional
// f(ρ, γ) with γ = |∇ρ|². Eval returns the energy density per volume and
// its partial derivatives (∂f/∂ρ analytic where practical; GGA gradient
// derivatives by central finite differences, which is accurate to ~1e-9
// at the scales encountered and keeps the implementation auditable).
type Functional interface {
	// Name identifies the functional in reports.
	Name() string
	// ExactExchangeFraction is the hybrid mixing parameter a in
	// E_xc = a·E_x^HF + semilocal part (0 for pure functionals, 1 for HF).
	ExactExchangeFraction() float64
	// NeedsGrid reports whether a semilocal part must be integrated.
	NeedsGrid() bool
	// NeedsGradient reports whether γ enters (GGA).
	NeedsGradient() bool
	// Eval returns f and ∂f/∂ρ, ∂f/∂γ at one grid point.
	Eval(rho, gamma float64) (f, dfdrho, dfdgamma float64)
}

const (
	// cx is the Slater/Dirac exchange constant (3/4)(3/π)^{1/3}.
	cx = 0.7385587663820224

	rhoFloor = 1e-12 // below this the point contributes nothing
)

// ---------------------------------------------------------------------------
// Hartree–Fock: no semilocal part, full exact exchange.

// HF is the "functional" describing pure Hartree–Fock.
type HF struct{}

// Name implements Functional.
func (HF) Name() string { return "HF" }

// ExactExchangeFraction implements Functional.
func (HF) ExactExchangeFraction() float64 { return 1 }

// NeedsGrid implements Functional.
func (HF) NeedsGrid() bool { return false }

// NeedsGradient implements Functional.
func (HF) NeedsGradient() bool { return false }

// Eval implements Functional.
func (HF) Eval(rho, gamma float64) (float64, float64, float64) { return 0, 0, 0 }

// ---------------------------------------------------------------------------
// LDA: Slater exchange + VWN5 correlation.

// LDA is the local density approximation (SVWN5, closed shell).
type LDA struct{}

// Name implements Functional.
func (LDA) Name() string { return "LDA" }

// ExactExchangeFraction implements Functional.
func (LDA) ExactExchangeFraction() float64 { return 0 }

// NeedsGrid implements Functional.
func (LDA) NeedsGrid() bool { return true }

// NeedsGradient implements Functional.
func (LDA) NeedsGradient() bool { return false }

// Eval implements Functional.
func (LDA) Eval(rho, gamma float64) (float64, float64, float64) {
	if rho < rhoFloor {
		return 0, 0, 0
	}
	// Slater exchange: f_x = −cx·ρ^{4/3}, v_x = −(4/3)cx·ρ^{1/3}.
	r13 := math.Cbrt(rho)
	fx := -cx * rho * r13
	vx := -4.0 / 3.0 * cx * r13
	ec, vc := vwn5(rho)
	return fx + rho*ec, vx + vc, 0
}

// vwn5 returns the VWN5 paramagnetic correlation energy per electron ε_c
// and potential v_c = ε_c − (rs/3)·dε_c/drs.
func vwn5(rho float64) (ec, vc float64) {
	const (
		a  = 0.0310907
		x0 = -0.10498
		b  = 3.72744
		c  = 12.9352
	)
	rs := math.Cbrt(3 / (4 * math.Pi * rho))
	x := math.Sqrt(rs)
	xx := func(y float64) float64 { return y*y + b*y + c }
	q := math.Sqrt(4*c - b*b)
	fx0 := xx(x0)
	atn := math.Atan(q / (2*x + b))
	ec = a * (math.Log(x*x/xx(x)) + 2*b/q*atn -
		b*x0/fx0*(math.Log((x-x0)*(x-x0)/xx(x))+2*(b+2*x0)/q*atn))
	// dε_c/dx via the standard closed form.
	dec := a * (2/x - (2*x+b)/xx(x) - 4*b/(q*q+(2*x+b)*(2*x+b)) -
		b*x0/fx0*(2/(x-x0)-(2*x+b)/xx(x)-4*(b+2*x0)/(q*q+(2*x+b)*(2*x+b))))
	// v_c = ε_c − (x/6)·dε_c/dx  (since rs = x² and v = ε − rs/3·dε/drs).
	vc = ec - x/6*dec
	return ec, vc
}

// ---------------------------------------------------------------------------
// PBE: GGA exchange and correlation (Perdew, Burke, Ernzerhof 1996).

// PBE is the closed-shell PBE GGA functional.
type PBE struct{}

// Name implements Functional.
func (PBE) Name() string { return "PBE" }

// ExactExchangeFraction implements Functional.
func (PBE) ExactExchangeFraction() float64 { return 0 }

// NeedsGrid implements Functional.
func (PBE) NeedsGrid() bool { return true }

// NeedsGradient implements Functional.
func (PBE) NeedsGradient() bool { return true }

// Eval implements Functional.
func (PBE) Eval(rho, gamma float64) (float64, float64, float64) {
	return evalNumeric(pbeEnergyDensity, rho, gamma)
}

// pbeEnergyDensity returns the PBE exchange+correlation energy per volume.
func pbeEnergyDensity(rho, gamma float64) float64 {
	if rho < rhoFloor {
		return 0
	}
	const (
		kappa = 0.804
		mu    = 0.2195149727645171
		beta  = 0.06672455060314922
	)
	gammaC := (1 - math.Ln2) / (math.Pi * math.Pi)

	grad := math.Sqrt(math.Max(gamma, 0))
	kf := math.Cbrt(3 * math.Pi * math.Pi * rho)
	// Exchange: f_x = −cx ρ^{4/3} F_x(s), s = |∇ρ|/(2 k_f ρ).
	s := grad / (2 * kf * rho)
	fxEnh := 1 + kappa - kappa/(1+mu*s*s/kappa)
	ex := -cx * rho * math.Cbrt(rho) * fxEnh

	// Correlation: ε_c^PBE = ε_c^LDA + H(rs, t).
	ecLDA, _ := vwn5(rho)
	ks := math.Sqrt(4 * kf / math.Pi)
	t := grad / (2 * ks * rho)
	expo := math.Exp(-ecLDA / gammaC)
	var aTerm float64
	if expo > 1 {
		aTerm = beta / gammaC / (expo - 1)
	} else {
		aTerm = 1e30 // ε_c ≥ 0 cannot happen for VWN, guard anyway
	}
	t2 := t * t
	num := 1 + aTerm*t2
	den := 1 + aTerm*t2 + aTerm*aTerm*t2*t2
	h := gammaC * math.Log(1+beta/gammaC*t2*num/den)
	return ex + rho*(ecLDA+h)
}

// evalNumeric computes the derivatives of an energy-density function by
// central differences with relative steps; used by the GGA functionals.
func evalNumeric(f func(rho, gamma float64) float64, rho, gamma float64) (float64, float64, float64) {
	if rho < rhoFloor {
		return 0, 0, 0
	}
	v := f(rho, gamma)
	hr := 1e-6 * rho
	dfdrho := (f(rho+hr, gamma) - f(rho-hr, gamma)) / (2 * hr)
	var dfdgamma float64
	if gamma > 1e-20 {
		hg := 1e-6 * gamma
		dfdgamma = (f(rho, gamma+hg) - f(rho, gamma-hg)) / (2 * hg)
	}
	return v, dfdrho, dfdgamma
}

// ---------------------------------------------------------------------------
// PBE0: hybrid with 25% exact exchange and scaled PBE exchange.

// PBE0 is the parameter-free hybrid functional used for the paper's
// production AIMD: E_xc = ¼E_x^HF + ¾E_x^PBE + E_c^PBE.
type PBE0 struct{}

// Name implements Functional.
func (PBE0) Name() string { return "PBE0" }

// ExactExchangeFraction implements Functional.
func (PBE0) ExactExchangeFraction() float64 { return 0.25 }

// NeedsGrid implements Functional.
func (PBE0) NeedsGrid() bool { return true }

// NeedsGradient implements Functional.
func (PBE0) NeedsGradient() bool { return true }

// Eval implements Functional. The semilocal part is ¾ of PBE exchange
// plus the full PBE correlation.
func (PBE0) Eval(rho, gamma float64) (float64, float64, float64) {
	return evalNumeric(func(r, g float64) float64 {
		full := pbeEnergyDensity(r, g)
		exOnly := pbeExchangeOnly(r, g)
		return full - 0.25*exOnly
	}, rho, gamma)
}

// pbeExchangeOnly returns just the PBE exchange energy density.
func pbeExchangeOnly(rho, gamma float64) float64 {
	if rho < rhoFloor {
		return 0
	}
	const (
		kappa = 0.804
		mu    = 0.2195149727645171
	)
	grad := math.Sqrt(math.Max(gamma, 0))
	kf := math.Cbrt(3 * math.Pi * math.Pi * rho)
	s := grad / (2 * kf * rho)
	fxEnh := 1 + kappa - kappa/(1+mu*s*s/kappa)
	return -cx * rho * math.Cbrt(rho) * fxEnh
}

// ByName returns a functional by its report name.
func ByName(name string) (Functional, bool) {
	switch name {
	case "HF":
		return HF{}, true
	case "LDA", "SVWN":
		return LDA{}, true
	case "PBE":
		return PBE{}, true
	case "PBE0":
		return PBE0{}, true
	default:
		return nil, false
	}
}
