package server

import (
	"crypto/sha256"
	"encoding/hex"
	"time"

	"hfxmd/internal/chem"
	"hfxmd/internal/ckpt"
	"hfxmd/internal/md"
	"hfxmd/internal/respa"
)

// TrajStepJSON is one completed outer step of a trajectory job — the
// BuildSummary-style per-step progress record. The list is appended to
// as the campaign runs, and the step counters land in /metrics after
// every outer step, so a client polling the metrics surface watches a
// long campaign advance.
type TrajStepJSON struct {
	// Step is the inner-step index of this outer boundary (outer·k).
	Step int `json:"step"`
	// TimeFS is the simulated time.
	TimeFS float64 `json:"timeFs"`
	// Potential/Total are the full-surface potential and conserved
	// total energy in hartree.
	Potential float64 `json:"potential"`
	Total     float64 `json:"total"`
	TempK     float64 `json:"tempK"`
	// WallMS is the wall time this outer step took (inner steps
	// included).
	WallMS float64 `json:"wallMs"`
}

// TrajSummary is the result of a trajectory job: per-outer-step
// progress records plus the campaign-level diagnostics (per-atom
// energy drift, the bitwise final-state fingerprint, and the
// cross-step reuse counters that show what the session saved).
type TrajSummary struct {
	NAtoms     int     `json:"natoms"`
	OuterSteps int     `json:"outerSteps"`
	RespaK     int     `json:"respaK"`
	Ref        string  `json:"ref"`
	TimeFS     float64 `json:"timeFs"`
	// DriftPerAtom is the peak-to-peak conserved-energy variation per
	// atom over the campaign (hartree).
	DriftPerAtom   float64        `json:"driftPerAtom"`
	FinalPotential float64        `json:"finalPotential"`
	FinalTotal     float64        `json:"finalTotal"`
	FinalTempK     float64        `json:"finalTempK"`
	Steps          []TrajStepJSON `json:"steps"`
	// SCFIterations is the session total across central and displaced
	// runs; WarmStarts/PairListReuses/PairListBuilds expose the
	// cross-step ΔP and screening reuse that priced the campaign.
	SCFIterations  int64 `json:"scfIterations"`
	WarmStarts     int64 `json:"warmStarts"`
	StoreSeeds     int64 `json:"storeSeeds,omitempty"`
	PairListBuilds int64 `json:"pairListBuilds"`
	PairListReuses int64 `json:"pairListReuses"`
	// FinalStateSha256 hashes the canonical encoding of the complete
	// restartable state (ckpt.EncodeState, version 2), the bitwise
	// identity of the campaign's end point.
	FinalStateSha256 string `json:"finalStateSha256,omitempty"`
}

// runTrajectory executes a RESPA AIMD campaign (kind trajectory): the
// cheap reference force every inner step, the full HFX-bearing surface
// every k-th, with an md.Session carrying ΔP, the screening pair list
// and the builder across consecutive geometries. The job context is
// threaded into every SCF (scf.Config.Ctx) and polled between inner
// steps, so cancellation lands between steps with a typed *md.StepError
// naming the step it struck.
func (s *Server) runTrajectory(j *job) *JobResult {
	req := &j.req
	cfg := s.scfConfig(req)
	cfg.Ctx = j.ctx
	sess := md.NewSession(cfg, md.SessionOptions{Store: s.store})
	defer sess.Close()

	fullEval := respa.Evaluator(func(m *chem.Molecule) (float64, []chem.Vec3, error) {
		f, e, err := sess.Forces(m, 0, s.cfg.BuilderThreads)
		return e, f, err
	})

	cheap, refLabel, err := respa.BuildReference(req.Ref, j.prep.mol, cfg, 0, s.cfg.BuilderThreads)
	if err != nil {
		return &JobResult{State: StateFailed, Error: err.Error()}
	}

	sum := &TrajSummary{
		NAtoms:     j.prep.mol.NAtoms(),
		OuterSteps: req.MaxSteps,
		RespaK:     req.RespaK,
		Ref:        refLabel,
	}
	stepStart := time.Now()
	opts := respa.Options{
		Steps:        req.MaxSteps,
		K:            req.RespaK,
		Dt:           req.DtFS,
		TemperatureK: req.TempK,
		Thermostat:   req.TempK > 0,
		Seed:         req.Seed,
		RefLabel:     refLabel,
		Ctx:          j.ctx,
		OnOuterStep: func(outer int, f md.Frame) {
			if outer == 0 {
				stepStart = time.Now()
				return // initial state, not a completed step
			}
			now := time.Now()
			sum.Steps = append(sum.Steps, TrajStepJSON{
				Step:      f.Step,
				TimeFS:    f.TimeFS,
				Potential: f.Potential,
				Total:     f.Total,
				TempK:     f.TempK,
				WallMS:    float64(now.Sub(stepStart)) / float64(time.Millisecond),
			})
			stepStart = now
			s.reg.Counter("traj.outer_steps").Add(1)
			s.reg.Gauge("traj.last_step").Set(int64(f.Step))
		},
	}
	traj, err := respa.Run(j.prep.mol, fullEval, cheap, opts)
	fillTrajSummary(sum, traj, sess.Stats())
	if err != nil {
		state := StateFailed
		if j.ctx.Err() != nil {
			state = StateCancelled
		}
		return &JobResult{State: state, Error: err.Error(), Traj: sum}
	}
	return &JobResult{State: StateDone, Traj: sum}
}

// fillTrajSummary folds the trajectory result and session counters into
// the wire summary (also on the error path, so a cancelled campaign
// reports the steps it completed).
func fillTrajSummary(sum *TrajSummary, traj *md.Trajectory, st md.SessionStats) {
	sum.SCFIterations = st.SCFIterations
	sum.WarmStarts = st.WarmStarts
	sum.StoreSeeds = st.StoreSeeds
	sum.PairListBuilds = st.PairListBuilds
	sum.PairListReuses = st.PairListReuses
	if traj == nil {
		return
	}
	sum.DriftPerAtom = traj.EnergyDrift()
	if n := len(traj.Frames); n > 0 {
		last := traj.Frames[n-1]
		sum.TimeFS = last.TimeFS
		sum.FinalPotential = last.Potential
		sum.FinalTotal = last.Total
		sum.FinalTempK = last.TempK
	}
	if traj.Final != nil {
		h := sha256.Sum256(ckpt.EncodeState(traj.Final))
		sum.FinalStateSha256 = hex.EncodeToString(h[:])
	}
}
