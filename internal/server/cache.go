package server

import (
	"container/list"
	"sync"
)

// lruCache is the result cache: canonical job hash → finished JobResult.
// A hit answers a repeated job without queueing it or touching a
// builder. Only successfully completed (state done) results are stored;
// eviction is least-recently-used by entry count. A capacity of 0
// disables the cache.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	res JobResult // stored by value; payload pointers are never mutated
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached result for key, marking it most recently used.
func (c *lruCache) get(key string) (JobResult, bool) {
	if c.cap <= 0 {
		return JobResult{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return JobResult{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores a finished result, evicting the least recently used entry
// when over capacity.
func (c *lruCache) put(key string, res JobResult) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// contains reports whether key is cached without refreshing its LRU
// position: an affinity probe must not make an entry look hot.
func (c *lruCache) contains(key string) bool {
	if c.cap <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
