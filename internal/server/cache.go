package server

import (
	"encoding/json"

	"hfxmd/internal/store"
)

// Store key namespaces. One store directory holds three kinds of
// content-addressed entries, distinguished by prefix: finished job
// results, converged densities for prefix reuse, and spilled ERI cache
// images (whose "eri:" prefix is minted by hfx.Builder.SpillKey).
const (
	resultKeyPrefix  = "result:"
	densityKeyPrefix = "density:"
)

// resultCache adapts the tiered content-addressed store to the server's
// result cache: canonical job hash → JSON-encoded finished JobResult.
// The store's byte-budgeted hot tier replaces the old entry-count LRU
// (results vary ~100× in payload size, so an entry count left worst-case
// memory unbounded), and its disk tier is what lets canonical results
// survive restarts and be shared across fleet instances pointing at one
// store directory.
type resultCache struct {
	st *store.Store
}

// get returns the cached result for key, marking it hot. A result read
// from the disk tier decodes like a fresh one — the disk-warm hit that
// answers a repeated job after a restart with zero builder work.
func (c *resultCache) get(key string) (JobResult, bool) {
	b, ok := c.st.Get(resultKeyPrefix + key)
	if !ok {
		return JobResult{}, false
	}
	var res JobResult
	if err := json.Unmarshal(b, &res); err != nil {
		return JobResult{}, false
	}
	return res, true
}

// put stores a finished result in both tiers.
func (c *resultCache) put(key string, res JobResult) {
	b, err := json.Marshal(res)
	if err != nil {
		return
	}
	c.st.Put(resultKeyPrefix+key, b)
}

// contains reports whether either tier holds the key without refreshing
// its hot-tier position: an affinity probe must not make an entry look
// hot.
func (c *resultCache) contains(key string) bool {
	return c.st.Contains(resultKeyPrefix + key)
}

// entries counts the addressable keys (all namespaces): the disk index
// when a disk tier exists, the hot tier otherwise.
func (c *resultCache) entries() int {
	st := c.st.Stats()
	if c.st.Dir() != "" {
		return st.DiskEntries
	}
	return st.HotEntries
}

// bytes is the hot-tier resident size — the cache.bytes gauge.
func (c *resultCache) bytes() int64 {
	return c.st.Stats().HotBytes
}
