package server

import (
	"container/heap"
	"context"
	"errors"
	"sync"
	"time"
)

// Queue admission errors.
var (
	// ErrQueueFull reports that the bounded admission queue is at
	// capacity; the HTTP layer maps it to 429 + Retry-After.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrDraining reports that the server has stopped accepting jobs.
	ErrDraining = errors.New("server: draining, not accepting jobs")
)

// job is one admitted unit of work flowing through the queue.
type job struct {
	id  string
	req JobRequest
	key string // canonical cache key

	prep      *prepared
	predicted float64 // cost-model ns
	// rank is the static heap key implementing shortest-predicted-job-
	// first with starvation aging (see queue docs).
	rank float64
	seq  int64 // FIFO tie-break for equal ranks

	enq    time.Time
	ctx    context.Context
	cancel context.CancelFunc

	// result is written by the worker (or the cache path) before done is
	// closed; the submitting handler only reads it after <-done.
	result *JobResult
	done   chan struct{}
}

// queue is the bounded, cost-aware admission queue. Ordering is
// shortest-predicted-job-first with starvation aging: the heap key is
//
//	rank = predictedCost + aging·t_enqueue
//
// where t_enqueue is seconds since server start. Because every job's
// rank is fixed at admission, the relative order of two queued jobs
// never changes (a heap-stable formulation), yet aging still bounds
// starvation: a job that arrives Δt seconds after an expensive one must
// be at least aging·Δt cheaper to overtake it, so an expensive job can
// be overtaken for at most predicted/aging seconds of arrivals.
type queue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    jobHeap
	cap      int
	draining bool
	// queuedNS sums the predicted cost of queued jobs (Retry-After).
	queuedNS float64
}

func newQueue(capacity int) *queue {
	q := &queue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits a job or reports why it cannot.
func (q *queue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return ErrDraining
	}
	if len(q.items) >= q.cap {
		return ErrQueueFull
	}
	heap.Push(&q.items, j)
	q.queuedNS += j.predicted
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available or the queue is drained empty; the
// second return is false when the caller (a worker) should exit.
func (q *queue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.draining {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j := heap.Pop(&q.items).(*job)
	q.queuedNS -= j.predicted
	return j, true
}

// drain stops admission and wakes every sleeping worker so they can
// finish the remaining queued jobs and exit.
func (q *queue) drain() {
	q.mu.Lock()
	q.draining = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// depth returns the number of queued jobs.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// queuedCost returns the summed predicted cost of queued jobs in ns.
func (q *queue) queuedCost() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queuedNS
}

// jobHeap orders jobs by ascending rank, sequence-number tie-broken so
// equal-rank jobs stay FIFO and the order is deterministic.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].rank != h[j].rank {
		return h[i].rank < h[j].rank
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old) - 1
	j := old[n]
	old[n] = nil
	*h = old[:n]
	return j
}
