package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestJobJournalSubmitFinishRoundTrip pins the journal's core contract:
// submits without a matching finish survive a close/reopen, in submit
// order, and finished jobs are struck out.
func TestJobJournalSubmitFinishRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	jl, err := openJobJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []JobRequest{
		{Kind: KindScreen, System: "h2"},
		{Kind: KindSCF, System: "water"},
		{Kind: KindBuildJK, System: "lih"},
	}
	for i := range reqs {
		if _, err := jl.submit(jobID(t, i+1), &reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := jl.finish(jobID(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}

	jl2, err := openJobJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.close()
	out := jl2.snapshotOutstanding()
	if len(out) != 2 {
		t.Fatalf("want 2 outstanding, got %d", len(out))
	}
	if out[0].ID != jobID(t, 1) || out[0].Req.System != "h2" {
		t.Fatalf("first outstanding = %+v", out[0])
	}
	if out[1].ID != jobID(t, 3) || out[1].Req.Kind != KindBuildJK {
		t.Fatalf("second outstanding = %+v", out[1])
	}
}

func jobID(t *testing.T, n int) string {
	t.Helper()
	return fmt.Sprintf("job-%06d", n)
}

// TestJobJournalTornTailDiscarded writes a torn half-record at the tail
// and checks it is discarded on reopen, truncated from the file, and
// that appends after the reopen are durable.
func TestJobJournalTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	jl, err := openJobJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	req := JobRequest{Kind: KindScreen, System: "h2"}
	if _, err := jl.submit("job-000001", &req); err != nil {
		t.Fatal(err)
	}
	// Tear: append only half of a framed record, as if the process died
	// mid-write.
	full, err := frameRecord(journalRecord{Op: "submit", ID: "job-000002", Req: &req})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jl.f.Write(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}
	jl.close()

	jl2, err := openJobJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if out := jl2.snapshotOutstanding(); len(out) != 1 || out[0].ID != "job-000001" {
		t.Fatalf("torn record leaked into outstanding: %+v", out)
	}
	// The tail must have been truncated, or this append would hide
	// behind the torn bytes forever.
	if _, err := jl2.submit("job-000003", &req); err != nil {
		t.Fatal(err)
	}
	jl2.close()
	jl3, err := openJobJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl3.close()
	if out := jl3.snapshotOutstanding(); len(out) != 2 || out[1].ID != "job-000003" {
		t.Fatalf("post-truncation append lost: %+v", out)
	}
}

// TestServerRestoresJournaledJobsOnBoot is the crash-restart acceptance
// test: a journal holding submits with no finish — the on-disk state a
// dead hfxd leaves behind — must be re-enqueued on boot, run to
// completion, fill the result cache, and be struck from the journal.
func TestServerRestoresJournaledJobsOnBoot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")

	// Simulate the dead server's journal: two accepted jobs, one of
	// which also finished.
	jl, err := openJobJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	pending := JobRequest{Kind: KindScreen, System: "h2"}
	doneReq := JobRequest{Kind: KindScreen, System: "water"}
	if _, err := jl.submit("job-000007", &pending); err != nil {
		t.Fatal(err)
	}
	if _, err := jl.submit("job-000008", &doneReq); err != nil {
		t.Fatal(err)
	}
	if _, _, err := jl.finish("job-000008"); err != nil {
		t.Fatal(err)
	}
	jl.close()

	// Boot: the pending job replays before the workers start.
	s := mustNew(t, Config{Workers: 1, JournalPath: path})
	if got := s.reg.Counter("journal.replayed").Value(); got != 1 {
		t.Fatalf("journal.replayed = %d, want 1", got)
	}
	waitCounter(t, s, "jobs.done", 1)

	// The replayed result must be servable from the cache without
	// touching a builder.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	res := submit(t, ts, JobRequest{Kind: KindScreen, System: "h2"})
	if !res.CacheHit {
		t.Fatal("replayed job's result not in the cache")
	}
	if res.Screen == nil || res.Screen.TotalPairs == 0 {
		t.Fatalf("replayed screen result empty: %+v", res)
	}

	// A cache hit answers from its own ID sequence — it must not consume
	// a job ID, which would leave a journal-less gap in the job-NNN space.
	if !strings.HasPrefix(res.ID, "hit-") {
		t.Fatalf("cache-hit ID %s, want hit- form", res.ID)
	}
	// Job-ID allocation must have advanced past the replayed IDs: a
	// genuinely new job may not collide with the replayed range.
	fresh := submit(t, ts, JobRequest{Kind: KindScreen, System: "lih"})
	if fresh.CacheHit || fresh.ID <= "job-000007" {
		t.Fatalf("live job ID %s collides with replayed range", fresh.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// After the drain the journal must hold no outstanding work.
	jl2, err := openJobJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.close()
	if out := jl2.snapshotOutstanding(); len(out) != 0 {
		t.Fatalf("journal still holds %d outstanding after drain: %+v", len(out), out)
	}
}

// TestServerJournalsLiveJobs checks the steady-state write path: a job
// accepted over HTTP lands a submit record and, once done, a finish
// record, leaving nothing outstanding.
func TestServerJournalsLiveJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	s := mustNew(t, Config{Workers: 1, JournalPath: path})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res := submit(t, ts, JobRequest{Kind: KindScreen, System: "h2"})
	if res.State != StateDone {
		t.Fatalf("job state %s: %s", res.State, res.Error)
	}
	if got := s.reg.Counter("journal.appends").Value(); got < 2 {
		t.Fatalf("journal.appends = %d, want >= 2 (submit + finish)", got)
	}
	if s.reg.Counter("journal.append_errors").Value() != 0 {
		t.Fatal("journal append errors recorded")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	jl, err := openJobJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.close()
	if out := jl.snapshotOutstanding(); len(out) != 0 {
		t.Fatalf("outstanding after clean run: %+v", out)
	}
}

// TestJobJournalRejectsForeignFile pins the magic check.
func TestJobJournalRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	if err := os.WriteFile(path, []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openJobJournal(path); err == nil || !strings.Contains(err.Error(), "not a job journal") {
		t.Fatalf("want magic error, got %v", err)
	}
}

// waitCounter polls a registry counter until it reaches want.
func waitCounter(t *testing.T, s *Server, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if s.reg.Counter(name).Value() >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("counter %s never reached %d (at %d)", name, want, s.reg.Counter(name).Value())
}
