package server

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hfxmd/internal/steal"
)

// pClasses are the angular-momentum classes with at least one p shell in
// the bra pair (class = La<<4 | Lb); water's cost is dominated by them,
// while a hydrogen chain is pure class 0.
var pClasses = []int{0x01, 0x10, 0x11}

// hChainXYZ builds an n-atom hydrogen chain: a system whose every task
// is class 0 (s-s bra), so per-class calibration of the p classes leaves
// its price untouched.
func hChainXYZ(n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d\nhydrogen chain\n", n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "H %.3f 0.0 0.0\n", float64(i)*0.9)
	}
	return sb.String()
}

// TestPriceRequestCalibratedScalesByClassFactors pins the pricing seam:
// per-class factors rescale exactly the classes they name. Water (p-
// heavy) gets much more expensive under inflated p factors; a pure-s
// hydrogen chain does not move at all; an empty calibrator prices like
// the raw model.
func TestPriceRequestCalibratedScalesByClassFactors(t *testing.T) {
	water := JobRequest{Kind: KindBuildJK, System: "water"}
	chain := JobRequest{Kind: KindBuildJK, XYZ: hChainXYZ(10)}

	_, waterRaw, err := PriceRequest(water, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, chainRaw, err := PriceRequest(chain, 1)
	if err != nil {
		t.Fatal(err)
	}

	empty := steal.NewCalibrator(0)
	if _, p, _ := PriceRequestCalibrated(water, 1, empty); p != waterRaw {
		t.Fatalf("empty calibrator priced water %g, raw %g", p, waterRaw)
	}

	cal := steal.NewCalibrator(0)
	for _, cls := range pClasses {
		cal.SetFactor(cls, 40)
	}
	_, waterCal, err := PriceRequestCalibrated(water, 1, cal)
	if err != nil {
		t.Fatal(err)
	}
	if waterCal < 10*waterRaw {
		t.Fatalf("40x p-class factors raised water only %g -> %g", waterRaw, waterCal)
	}
	if _, chainCal, _ := PriceRequestCalibrated(chain, 1, cal); chainCal != chainRaw {
		t.Fatalf("pure-s chain must be immune to p-class factors: %g != %g", chainCal, chainRaw)
	}
}

// TestServerCalibratedAdmissionPricing gates the feedback loop end to
// end inside one server: the workers' Fock builds observe measured block
// walls into the configured calibrator, and admission prices subsequent
// jobs with the learned (here: injected) factors — the /v1/jobs
// predictedCostNs field moves with the model.
func TestServerCalibratedAdmissionPricing(t *testing.T) {
	cal := steal.NewCalibrator(0)
	s := mustNew(t, Config{Workers: 1, CacheBytes: -1, Calibrator: cal})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A real build must feed the calibrator: this is the observation leg.
	if r := submit(t, ts, JobRequest{Kind: KindBuildJK, System: "water"}); r.State != StateDone {
		t.Fatalf("water build: %+v", r)
	}
	if cal.Observations() == 0 {
		t.Fatal("builder did not observe block walls into the configured calibrator")
	}
	snap := s.snapshot()
	if snap.Gauges["calib.observations"] == 0 || snap.Gauges["calib.epoch"] == 0 {
		t.Fatalf("calibration gauges not populated: %+v", snap.Gauges)
	}

	// Pricing leg: with a known factor on the chain's only class, the
	// admission-time prediction must be exactly the rescaled raw price.
	chain := JobRequest{Kind: KindBuildJK, XYZ: hChainXYZ(12)}
	_, raw, err := PriceRequest(chain, 1)
	if err != nil {
		t.Fatal(err)
	}
	cal.SetFactor(0, 50)
	r := submit(t, ts, chain)
	if r.State != StateDone {
		t.Fatalf("chain build: %+v", r)
	}
	if want := 50 * raw; math.Abs(r.PredictedCostNS-want) > 1e-9*want {
		t.Fatalf("calibrated admission price %g, want 50x raw = %g", r.PredictedCostNS, want)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRetryAfterUsesCalibratedCosts pins that the 429 backoff hint is in
// measured units: two servers rejecting the identical overload answer
// with very different Retry-After once one of them has learned that
// class-0 blocks run 64x slower than the raw model claims.
func TestRetryAfterUsesCalibratedCosts(t *testing.T) {
	chain := JobRequest{Kind: KindBuildJK, XYZ: hChainXYZ(20)}

	retryFor := func(cal *steal.Calibrator) time.Duration {
		block := make(chan struct{})
		running := make(chan string, 1)
		s := mustNew(t, Config{
			Workers: 1, QueueCap: 1, CacheBytes: -1, Calibrator: cal,
			BeforeRun: func(kind string) {
				select {
				case running <- kind:
					<-block
				default: // only the held job blocks
				}
			},
		})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		// Job A holds the worker, job B fills the queue, job C is rejected
		// with a Retry-After priced from A+B+C's predicted costs.
		go NewClient(ts.URL).Submit(context.Background(), chain)
		<-running
		go NewClient(ts.URL).Submit(context.Background(), chain)
		deadline := time.Now().Add(10 * time.Second)
		for s.QueueDepth() != 1 {
			if time.Now().After(deadline) {
				t.Fatal("job B never queued")
			}
			time.Sleep(time.Millisecond)
		}
		_, err := NewClient(ts.URL).Submit(context.Background(), chain)
		busy, ok := err.(*BusyError)
		if !ok {
			t.Fatalf("overloaded submit returned %T (%v), want *BusyError", err, err)
		}
		close(block)
		if err := s.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		return busy.RetryAfter
	}

	rawRetry := retryFor(nil)
	slow := steal.NewCalibrator(0)
	slow.SetFactor(0, 64)
	calRetry := retryFor(slow)
	// Raw model: ~0.1 s of predicted work, clamped up to the 1 s floor.
	// Calibrated: ~7.5 s of predicted work, an honest multi-second hint.
	if calRetry <= rawRetry {
		t.Fatalf("calibrated Retry-After %v not above raw %v", calRetry, rawRetry)
	}
	if calRetry < 5*time.Second {
		t.Fatalf("calibrated Retry-After %v, want >= 5s for 64x class-0 costs", calRetry)
	}
}

// TestServerCalibratorPersistsAcrossRestart pins the warm-start path: a
// server with a persistent store saves its calibrator at shutdown, and a
// fresh process on the same store restores the learned factors before
// serving its first request.
func TestServerCalibratorPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	calA := steal.NewCalibrator(0)
	s1 := mustNew(t, Config{Workers: 1, StoreDir: dir, Calibrator: calA})
	ts1 := httptest.NewServer(s1.Handler())
	if r := submit(t, ts1, JobRequest{Kind: KindBuildJK, System: "water"}); r.State != StateDone {
		t.Fatalf("water build: %+v", r)
	}
	ts1.Close()
	obs := calA.Observations()
	if obs == 0 {
		t.Fatal("no observations before shutdown")
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := counter(s1, "calib.persisted"); got != 1 {
		t.Fatalf("calib.persisted = %d, want 1", got)
	}

	calB := steal.NewCalibrator(0)
	s2 := mustNew(t, Config{Workers: 1, StoreDir: dir, Calibrator: calB})
	defer s2.Shutdown(context.Background())
	if got := counter(s2, "calib.restored"); got != 1 {
		t.Fatalf("calib.restored = %d, want 1", got)
	}
	if calB.Observations() != obs {
		t.Fatalf("restored %d observations, want %d", calB.Observations(), obs)
	}
	for _, cls := range append([]int{0}, pClasses...) {
		if calB.Factor(cls) != calA.Factor(cls) {
			t.Fatalf("class %#x factor %g != persisted %g", cls, calB.Factor(cls), calA.Factor(cls))
		}
	}
}
