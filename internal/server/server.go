package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hfxmd/internal/chem"
	"hfxmd/internal/dft"
	"hfxmd/internal/hfx"
	"hfxmd/internal/linalg"
	"hfxmd/internal/mprt"
	"hfxmd/internal/scf"
	"hfxmd/internal/screen"
	"hfxmd/internal/steal"
	"hfxmd/internal/store"
	"hfxmd/internal/trace"
)

// Config tunes an hfxd server. The zero value gets sensible defaults
// from New.
type Config struct {
	// Workers is the number of job workers, each owning long-lived
	// builder state (default 4).
	Workers int
	// QueueCap bounds the admission queue; a full queue answers 429 with
	// Retry-After (default 64).
	QueueCap int
	// CacheBytes is the byte budget of the result store's hot in-memory
	// tier (default 64 MiB). Results vary ~100× in payload size, so the
	// budget is bytes, not entries. A negative value disables the hot
	// tier — with no StoreDir that disables caching entirely.
	CacheBytes int64
	// StoreDir, if non-empty, adds a disk tier under the hot one: every
	// finished canonical result, converged prefix density and spilled ERI
	// cache image is persisted there, so a restarted server (or another
	// fleet instance pointing at the same directory) answers repeated
	// jobs from disk with zero builder work. Must be a different
	// directory from the journal's.
	StoreDir string
	// Store, if non-nil, is an externally owned store shared with other
	// server instances (the fleet wiring). It overrides CacheBytes and
	// StoreDir; the server does not close it.
	Store *store.Store
	// BuilderThreads is the HFX thread count per builder. The default 1
	// is right for a worker-parallel server: concurrency comes from jobs,
	// not from intra-build threads.
	BuilderThreads int
	// DefaultTimeout caps jobs that do not set TimeoutMS (default 2m);
	// MaxTimeout clamps client-requested deadlines (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// AgingNSPerSec is the starvation-aging rate of the admission queue
	// in predicted-cost nanoseconds per second of wait (default 1e8: one
	// queued second outweighs 100ms of predicted work).
	AgingNSPerSec float64
	// BeforeRun, if set, is invoked by each worker between dequeue and
	// execution with the job kind — an observability seam also used by
	// the lifecycle tests to hold workers at a known point.
	BeforeRun func(kind string)
	// Calibrator, if non-nil, closes the cost-model feedback loop: every
	// Fock build the workers run observes its measured per-class block
	// walls into it, and admission pricing (queue ordering, the 429
	// Retry-After hint, the /v1/jobs predicted cost) scales the raw cost
	// model by the learned factors. Share one calibrator across a fleet's
	// instances so the router and the servers price in the same units.
	// When the server owns a persistent store (StoreDir), the calibrator
	// state is restored from it at boot and saved at shutdown.
	Calibrator *steal.Calibrator
	// JournalPath, if non-empty, makes job admission crash-safe: every
	// accepted job is recorded in a framed write-ahead journal before it
	// runs and struck out when it finishes. On boot, submits without a
	// matching finish — jobs that were queued or running when the
	// previous process died — are re-enqueued and run to completion,
	// filling the result cache as if the crash had not happened.
	JournalPath string
}

func (c *Config) fillDefaults() {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.BuilderThreads == 0 {
		c.BuilderThreads = 1
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.AgingNSPerSec == 0 {
		c.AgingNSPerSec = 1e8
	}
}

// Server is the hfxd job service: a bounded cost-aware admission queue
// in front of a fixed worker pool, an LRU result cache, and a metrics
// registry merging server gauges with the builders' trace counters.
// Create with New, expose with Handler, stop with Shutdown.
type Server struct {
	cfg   Config
	reg   *trace.Registry
	store *store.Store
	cache *resultCache
	// ownStore marks a store opened by New (from CacheBytes/StoreDir)
	// rather than injected via Config.Store; only an owned store is
	// closed on shutdown.
	ownStore bool
	q        *queue
	mux      *http.ServeMux

	journal *jobJournal // nil unless Config.JournalPath is set

	start     time.Time
	nextID    atomic.Int64
	nextHitID atomic.Int64
	nextSeq   atomic.Int64
	// inflightNS sums the predicted cost (cost-model ns) of jobs the
	// workers are currently executing; together with the queue's queued
	// cost it prices the Retry-After hint of a 429.
	inflightNS atomic.Int64
	draining   atomic.Bool
	workerWG   sync.WaitGroup
	shutOnce   sync.Once
}

// latencyEdgesMS are the request-latency histogram buckets.
var latencyEdgesMS = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// New starts a server: the worker pool runs immediately; attach
// Handler() to an http.Server to accept jobs. With Config.JournalPath
// set, jobs left queued or running by a previous process are re-enqueued
// before the workers start; the only error paths are journal I/O.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if cfg.StoreDir != "" && cfg.JournalPath != "" {
		// Segment files and journal frames must not interleave in one
		// directory: boot-time scans of each would trip over the other's
		// files, and journal compaction renames could collide with segment
		// rotation.
		if filepath.Clean(cfg.StoreDir) == filepath.Clean(filepath.Dir(cfg.JournalPath)) {
			return nil, fmt.Errorf("server: store dir and journal dir must be distinct (both %q)",
				filepath.Clean(cfg.StoreDir))
		}
	}
	s := &Server{
		cfg:   cfg,
		reg:   trace.NewRegistry(),
		q:     newQueue(cfg.QueueCap),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	if cfg.Store != nil {
		s.store = cfg.Store
	} else {
		st, err := store.Open(store.Options{
			Dir:      cfg.StoreDir,
			HotBytes: cfg.CacheBytes,
			Registry: s.reg,
		})
		if err != nil {
			return nil, fmt.Errorf("server: open result store: %w", err)
		}
		s.store = st
		s.ownStore = true
	}
	s.cache = &resultCache{st: s.store}
	s.restoreCalibrator()
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/systems", s.handleSystems)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	// Pre-create the instruments handlers touch so snapshots are stable.
	for _, c := range []string{
		"jobs.submitted", "jobs.executed", "jobs.done", "jobs.failed",
		"jobs.cancelled", "jobs.rejected_full", "jobs.rejected_draining",
		"cache.hits", "cache.misses", "builders.created", "builders.reused",
		"journal.appends", "journal.bytes", "journal.replayed",
		"journal.compactions", "journal.append_errors", "journal.replay_dropped",
		"eri.spills", "eri.spill_bytes", "eri.warmed_builders", "eri.warmed_blocks",
		"prefix.density_hits", "prefix.density_misses", "prefix.density_stored",
		"calib.restored", "calib.persisted",
		// Pre-created so a restarted server that answers everything from
		// the store visibly reports zero Fock builds (the smoke test's
		// disk-warm assertion).
		"hfx.fock_builds",
		"traj.outer_steps",
	} {
		s.reg.Counter(c)
	}
	for _, g := range []string{
		"jobs.queued", "jobs.running", "builders.open", "cache.entries", "cache.bytes",
		"calib.epoch", "calib.observations", "calib.err_milli", "traj.last_step",
	} {
		s.reg.Gauge(g)
	}
	if cfg.JournalPath != "" {
		jl, err := openJobJournal(cfg.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("server: open job journal: %w", err)
		}
		s.journal = jl
		s.replayJournal()
		if err := jl.compact(); err != nil {
			return nil, fmt.Errorf("server: compact job journal: %w", err)
		}
		s.reg.Counter("journal.compactions").Add(1)
	}
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// replayJournal re-enqueues every outstanding journaled job before the
// workers start. Requests that no longer validate, and jobs beyond the
// queue capacity, are struck out instead of replayed. No handler waits
// on a replayed job: it runs, lands in the result cache, and its finish
// record strikes it from the journal like any live job.
func (s *Server) replayJournal() {
	for _, rec := range s.journal.snapshotOutstanding() {
		// Keep the original ID and advance the allocator past it so live
		// submissions never collide with replayed ones.
		var seq int64
		if _, err := fmt.Sscanf(rec.ID, "job-%d", &seq); err == nil {
			for cur := s.nextID.Load(); cur < seq; cur = s.nextID.Load() {
				if s.nextID.CompareAndSwap(cur, seq) {
					break
				}
			}
		}
		req := *rec.Req
		req.normalize()
		drop := func(why error) {
			s.reg.Counter("journal.replay_dropped").Add(1)
			s.journal.finish(rec.ID)
			_ = why
		}
		if err := req.validate(); err != nil {
			drop(err)
			continue
		}
		sopts := screen.DefaultOptions()
		sopts.Threshold = req.Screen
		prep, predicted, err := prepare(&req, s.cfg.BuilderThreads, sopts, s.cfg.Calibrator)
		if err != nil {
			drop(err)
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DefaultTimeout)
		j := &job{
			id: rec.ID, req: req, key: req.cacheKey(prep.mol),
			prep: prep, predicted: predicted,
			rank: predicted,
			seq:  s.nextSeq.Add(1),
			enq:  time.Now(), ctx: ctx, cancel: cancel,
			done: make(chan struct{}),
		}
		s.reg.Gauge("jobs.queued").Add(1)
		if err := s.q.push(j); err != nil {
			s.reg.Gauge("jobs.queued").Add(-1)
			cancel()
			drop(err)
			continue
		}
		s.reg.Counter("journal.replayed").Add(1)
	}
}

// calibStoreKey is the store key of the persisted calibrator state. It
// shares the store's namespace with results, densities and ERI images,
// so one fleet-wide store carries one fleet-wide cost model.
const calibStoreKey = "calib:model"

// restoreCalibrator warm-starts the configured calibrator from the
// store, when a previous process persisted one: a restarted server (or
// another fleet instance on the same store) prices with the learned
// factors from the first request instead of re-learning from scratch.
func (s *Server) restoreCalibrator() {
	if s.cfg.Calibrator == nil {
		return
	}
	b, ok := s.store.Get(calibStoreKey)
	if !ok {
		return
	}
	if err := s.cfg.Calibrator.UnmarshalBinary(b); err == nil {
		s.reg.Counter("calib.restored").Add(1)
	}
}

// persistCalibrator saves the calibrator state to the store, so the
// factors learned by this process survive a restart.
func (s *Server) persistCalibrator() {
	if s.cfg.Calibrator == nil || s.cfg.Calibrator.Observations() == 0 {
		return
	}
	b, err := s.cfg.Calibrator.MarshalBinary()
	if err != nil {
		return
	}
	if err := s.store.Put(calibStoreKey, b); err == nil {
		s.reg.Counter("calib.persisted").Add(1)
	}
}

// Handler returns the HTTP interface of the server.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's registry (shared with tests and the
// /metrics endpoint).
func (s *Server) Metrics() *trace.Registry { return s.reg }

// QueueDepth reports the current number of queued jobs.
func (s *Server) QueueDepth() int { return s.q.depth() }

// QueuedCostNS reports the summed predicted cost (cost-model ns) of the
// queued jobs — the live load signal least-loaded fleet routing uses.
func (s *Server) QueuedCostNS() float64 { return s.q.queuedCost() }

// InflightCostNS reports the summed predicted cost (cost-model ns) of
// the jobs currently executing on the workers.
func (s *Server) InflightCostNS() float64 { return float64(s.inflightNS.Load()) }

// Workers reports the configured worker count, the capacity a
// cost-weighted router divides predicted load by.
func (s *Server) Workers() int { return s.cfg.Workers }

// Draining reports whether the server has stopped accepting jobs — the
// lifecycle signal a fleet router uses to route around an instance that
// is shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// CacheContains reports whether the result cache currently holds the
// canonical key, without touching the LRU order: the probe behind
// cache-affinity routing.
func (s *Server) CacheContains(key string) bool { return s.cache.contains(key) }

// Shutdown gracefully stops the server: admission is closed immediately
// (submits answer 503), the workers drain every queued and in-flight
// job, then close their builders and exit. It returns when the drain
// completes or ctx expires, whichever is first; on expiry the workers
// are left to finish in the background and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		s.draining.Store(true)
		s.q.drain()
	})
	done := make(chan struct{})
	go func() { s.workerWG.Wait(); close(done) }()
	select {
	case <-done:
		s.persistCalibrator()
		var err error
		if s.journal != nil {
			err = s.journal.close()
		}
		if s.ownStore {
			if cerr := s.store.Close(); err == nil {
				err = cerr
			}
		}
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Store exposes the server's result store (shared with fleet wiring and
// tests). With Config.Store it is the injected instance; otherwise it is
// owned by the server and closed on Shutdown.
func (s *Server) Store() *store.Store { return s.store }

// ---------------------------------------------------------------------------
// Worker pool.

// workerState is the long-lived per-worker builder cache: a worker keeps
// its most recent hfx.Builder (and the basis/engine it is bound to)
// alive across jobs, so consecutive jobs on the same geometry and method
// reuse the persistent pool instead of re-allocating it.
type workerState struct {
	key     string
	builder *hfx.Builder
	dist    *hfx.DistBuilder
	prep    *prepared
}

// close releases the cached builders, if any, spilling the semi-direct
// ERI cache to the store first: builder eviction is exactly when the
// integral work it holds would otherwise be lost.
func (st *workerState) close(s *Server) {
	if st.builder != nil {
		s.spillERI(st.builder)
		st.builder.Close()
		st.builder = nil
		s.reg.Gauge("builders.open").Add(-1)
	}
	if st.dist != nil {
		st.dist.Close()
		st.dist = nil
		s.reg.Gauge("builders.open").Add(-1)
	}
}

// spillERI serializes a builder's resident ERI blocks under its layout
// hash, so a future builder over the same (basis, shell-pair list,
// screening) warms from disk instead of recomputing the integrals.
func (s *Server) spillERI(b *hfx.Builder) {
	key := b.SpillKey()
	if key == "" {
		return
	}
	img := b.ExportERICache()
	if img == nil {
		return
	}
	if err := s.store.Put(key, img); err == nil {
		s.reg.Counter("eri.spills").Add(1)
		s.reg.Counter("eri.spill_bytes").Add(int64(len(img)))
	}
}

// warmERI restores a spilled ERI cache image into a freshly created
// builder, when the store holds one for its layout hash.
func (s *Server) warmERI(b *hfx.Builder) {
	key := b.SpillKey()
	if key == "" {
		return
	}
	img, ok := s.store.Get(key)
	if !ok {
		return
	}
	n, err := b.ImportERICache(img)
	if err != nil {
		return
	}
	s.reg.Counter("eri.warmed_builders").Add(1)
	s.reg.Counter("eri.warmed_blocks").Add(n)
}

// builderFor returns a builder for the job's prepared state, reusing the
// cached one when the builder key matches. A replacement builder with a
// semi-direct cache is warmed from any spilled image in the store.
func (st *workerState) builderFor(j *job, s *Server) *hfx.Builder {
	if st.builder != nil && st.key == j.prep.builderKey {
		s.reg.Counter("builders.reused").Add(1)
		return st.builder
	}
	st.close(s)
	opts := hfx.DefaultOptions()
	opts.Threads = s.cfg.BuilderThreads
	opts.DensityWeighted = *j.req.DensityWeighted
	opts.CacheBudgetBytes = int64(j.req.CacheMB) << 20
	opts.Calibrator = s.cfg.Calibrator
	st.builder = hfx.NewBuilder(j.prep.eng, j.prep.scr, opts)
	st.key = j.prep.builderKey
	st.prep = j.prep
	s.reg.Counter("builders.created").Add(1)
	s.reg.Gauge("builders.open").Add(1)
	s.warmERI(st.builder)
	return st.builder
}

// distBuilderFor is builderFor's multi-rank counterpart: it caches a
// DistBuilder under the same builder key (which includes the rank
// count, so single-rank and distributed builders never collide). The
// distributed build is bitwise identical to the single-rank one; only
// the wall-time decomposition and the traffic metrics change.
func (st *workerState) distBuilderFor(j *job, s *Server) (*hfx.DistBuilder, error) {
	if st.dist != nil && st.key == j.prep.builderKey {
		s.reg.Counter("builders.reused").Add(1)
		return st.dist, nil
	}
	st.close(s)
	opts := hfx.DefaultOptions()
	opts.DensityWeighted = *j.req.DensityWeighted
	// No calibrator here: calibrated placement would regroup the partial
	// sums and drift the distributed bits away from the single-rank build,
	// violating the invariant that lets ranks stay out of the result cache
	// key. The single-rank builders feed the calibrator instead.
	d, err := hfx.NewDistBuilder(j.prep.eng, j.prep.scr, hfx.DistOptions{
		Ranks:    j.req.Ranks,
		Schedule: mprt.DimExchange,
		Opts:     opts,
	})
	if err != nil {
		return nil, err
	}
	st.dist = d
	st.key = j.prep.builderKey
	st.prep = j.prep
	s.reg.Counter("builders.created").Add(1)
	s.reg.Gauge("builders.open").Add(1)
	return d, nil
}

// worker is the persistent job loop: pop, execute, finish; on drain it
// closes its builders and exits.
func (s *Server) worker() {
	defer s.workerWG.Done()
	var st workerState
	defer st.close(s)
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		s.reg.Gauge("jobs.queued").Add(-1)
		queueMS := float64(time.Since(j.enq)) / float64(time.Millisecond)
		s.reg.Histogram("job.queue_ms", latencyEdgesMS).Observe(queueMS)
		if err := j.ctx.Err(); err != nil {
			// Cancelled (client gone or deadline passed) while queued:
			// never touches a builder.
			s.finish(j, &JobResult{State: StateCancelled, Error: err.Error(), QueueMS: queueMS})
			continue
		}
		s.inflightNS.Add(int64(j.predicted))
		if s.cfg.BeforeRun != nil {
			s.cfg.BeforeRun(j.req.Kind)
		}
		s.reg.Gauge("jobs.running").Add(1)
		t0 := time.Now()
		res := s.execute(&st, j)
		res.QueueMS = queueMS
		res.RunMS = float64(time.Since(t0)) / float64(time.Millisecond)
		s.reg.Gauge("jobs.running").Add(-1)
		s.inflightNS.Add(-int64(j.predicted))
		s.reg.Counter("jobs.executed").Add(1)
		s.reg.Histogram("job.run_ms", latencyEdgesMS).Observe(res.RunMS)
		s.finish(j, res)
	}
}

// finish publishes the result, updates the state counters, stores done
// results in the cache, and wakes the submitting handler.
func (s *Server) finish(j *job, res *JobResult) {
	res.ID = j.id
	res.Kind = j.req.Kind
	res.CacheKey = j.key
	res.PredictedCostNS = j.predicted
	switch res.State {
	case StateDone:
		s.reg.Counter("jobs.done").Add(1)
		s.cache.put(j.key, *res)
		s.reg.Gauge("cache.entries").Set(int64(s.cache.entries()))
		s.reg.Gauge("cache.bytes").Set(s.cache.bytes())
	case StateFailed:
		s.reg.Counter("jobs.failed").Add(1)
	case StateCancelled:
		s.reg.Counter("jobs.cancelled").Add(1)
	}
	if s.journal != nil {
		n, compacted, err := s.journal.finish(j.id)
		if err != nil {
			s.reg.Counter("journal.append_errors").Add(1)
		} else {
			s.reg.Counter("journal.appends").Add(1)
			s.reg.Counter("journal.bytes").Add(int64(n))
			if compacted {
				s.reg.Counter("journal.compactions").Add(1)
			}
		}
	}
	j.result = res
	close(j.done)
	j.cancel()
}

// execute dispatches one job on this worker.
func (s *Server) execute(st *workerState, j *job) *JobResult {
	switch j.req.Kind {
	case KindSCF:
		return s.runSCF(j)
	case KindBuildJK:
		return s.runBuildJK(st, j)
	case KindScreen:
		return s.runScreen(j)
	case KindSolventScan:
		return s.runScan(j)
	case KindTrajectory:
		return s.runTrajectory(j)
	default: // unreachable: validate rejected it
		return &JobResult{State: StateFailed, Error: "unknown kind " + j.req.Kind}
	}
}

// scfConfig maps a request to the SCF driver configuration.
func (s *Server) scfConfig(req *JobRequest) scf.Config {
	f, _ := dft.ByName(req.Functional)
	sopts := screen.DefaultOptions()
	sopts.Threshold = req.Screen
	hopts := hfx.DefaultOptions()
	hopts.Threads = s.cfg.BuilderThreads
	hopts.DensityWeighted = *req.DensityWeighted
	hopts.CacheBudgetBytes = int64(req.CacheMB) << 20
	hopts.Calibrator = s.cfg.Calibrator
	return scf.Config{
		Basis:      req.Basis,
		Functional: f,
		Screen:     sopts,
		HFX:        hopts,
		MaxIter:    req.MaxIter,
	}
}

// seedDensity applies partial-hit prefix reuse to an SCF config: when
// the store holds a converged density for the same model-chemistry and
// composition prefix (a neighbouring scan point, an earlier MD step, a
// different geometry of the same system), SCF starts from it with the
// incremental ΔP build path instead of a cold SAD guess. Returns the
// store key under which this run's converged density belongs.
func (s *Server) seedDensity(cfg *scf.Config, mol *chem.Molecule, nbasis int) string {
	key := densityKeyPrefix + scf.DensityPrefixKey(*cfg, mol)
	if b, ok := s.store.Get(key); ok {
		if n, data, err := store.DecodeMatrix(b); err == nil && n == nbasis {
			cfg.InitialDensity = &linalg.Matrix{Rows: n, Cols: n, Data: data}
			cfg.Incremental = true
			s.reg.Counter("prefix.density_hits").Add(1)
			return key
		}
	}
	s.reg.Counter("prefix.density_misses").Add(1)
	return key
}

// storeDensity records a converged density under its prefix key.
func (s *Server) storeDensity(key string, res *scf.Result) {
	if !res.Converged {
		return
	}
	if err := s.store.Put(key, store.EncodeMatrix(res.Set.NBasis, res.P.Data)); err == nil {
		s.reg.Counter("prefix.density_stored").Add(1)
	}
}

func (s *Server) runSCF(j *job) *JobResult {
	cfg := s.scfConfig(&j.req)
	dkey := s.seedDensity(&cfg, j.prep.mol, j.prep.set.NBasis)
	res, err := scf.RunContext(j.ctx, j.prep.mol, cfg)
	if err != nil {
		state := StateFailed
		if j.ctx.Err() != nil {
			state = StateCancelled
		}
		return &JobResult{State: state, Error: err.Error()}
	}
	s.mergeReport(res.HFXReport)
	s.storeDensity(dkey, res)
	return &JobResult{State: StateDone, SCF: SummarizeSCF(res)}
}

func (s *Server) runBuildJK(st *workerState, j *job) *JobResult {
	if j.req.Ranks > 1 {
		return s.runDistBuildJK(st, j)
	}
	b := st.builderFor(j, s)
	p := scf.SADDensity(j.prep.set)
	jm, km, rep := b.BuildJK(p)
	s.mergeReport(rep)
	return &JobResult{State: StateDone, Build: &BuildSummary{
		NBasis:           j.prep.set.NBasis,
		NTasks:           rep.NTasks,
		QuartetsComputed: rep.QuartetsComputed,
		QuartetsScreened: rep.QuartetsScreened,
		BalanceRatio:     rep.BalanceRatio,
		WallNS:           rep.Wall.Nanoseconds(),
		JNorm:            frobenius(jm),
		KNorm:            frobenius(km),
		ExchangeEnergy:   hfx.ExchangeEnergy(p, km),
		EriCacheHits:     rep.Cache.Hits,
		EriCacheMisses:   rep.Cache.Misses,
	}}
}

// runDistBuildJK is the ranks > 1 path of a buildjk job: the build runs
// on the in-process mprt runtime, and the per-rank compute/comm phase
// walls plus the collective traffic land in the /metrics registry.
func (s *Server) runDistBuildJK(st *workerState, j *job) *JobResult {
	d, err := st.distBuilderFor(j, s)
	if err != nil {
		return &JobResult{State: StateFailed, Error: err.Error()}
	}
	p := scf.SADDensity(j.prep.set)
	jm, km, rep, err := d.BuildJK(p)
	if err != nil {
		return &JobResult{State: StateFailed, Error: err.Error()}
	}
	s.mergeDistReport(rep)
	return &JobResult{State: StateDone, Build: &BuildSummary{
		NBasis:           j.prep.set.NBasis,
		NTasks:           rep.NTasks,
		QuartetsComputed: rep.QuartetsComputed,
		QuartetsScreened: rep.QuartetsScreened,
		BalanceRatio:     rep.BalanceRatio,
		WallNS:           rep.Wall.Nanoseconds(),
		JNorm:            frobenius(jm),
		KNorm:            frobenius(km),
		ExchangeEnergy:   hfx.ExchangeEnergy(p, km),
		Ranks:            rep.Ranks,
		CommBytes:        rep.CommBytes,
		ReduceSteps:      rep.MeasuredSteps,
	}}
}

func (s *Server) runScreen(j *job) *JobResult {
	st := j.prep.scr.Stats
	return &JobResult{State: StateDone, Screen: &ScreenSummary{
		TotalPairs:       st.TotalPairs,
		DistanceSurvived: st.DistanceSurvived,
		SchwarzSurvived:  st.SchwarzSurvived,
		NTasks:           len(j.prep.tasks),
		TotalCostNS:      j.prep.totalNS,
		MakespanNS:       j.prep.makespanNS,
		Threads:          st.Threads,
	}}
}

func (s *Server) runScan(j *job) *JobResult {
	cfg := s.scfConfig(&j.req)
	// The E8 profile needs the robust solver settings of cmd/solvents.
	cfg.Damping, cfg.DampIters = 0.5, 8
	cfg.LevelShift = 0.3
	if cfg.MaxIter == 0 {
		cfg.MaxIter = 120
	}
	req := &j.req
	sum := &ScanSummary{Solvent: req.Solvent}
	var ref float64
	for i := 0; i < req.Points; i++ {
		r := req.RMax + (req.RMin-req.RMax)*float64(i)/float64(req.Points-1)
		mol, err := chem.SolvatedPeroxide(req.Solvent, r)
		if err != nil {
			return &JobResult{State: StateFailed, Error: err.Error()}
		}
		// Every point shares the scan's composition prefix, so point i
		// starts from point i−1's converged density — the partial-hit
		// reuse that makes a scan cheaper than independent SCFs.
		pcfg := cfg
		dkey := s.seedDensity(&pcfg, mol, j.prep.set.NBasis)
		res, err := scf.RunContext(j.ctx, mol, pcfg)
		if err != nil {
			if j.ctx.Err() != nil {
				return &JobResult{State: StateCancelled, Error: err.Error(), Scan: sum}
			}
			return &JobResult{State: StateFailed, Error: err.Error(), Scan: sum}
		}
		s.mergeReport(res.HFXReport)
		s.storeDensity(dkey, res)
		if i == 0 {
			ref = res.Energy
		}
		sum.Points = append(sum.Points, ScanPointJSON{
			R: r, Energy: res.Energy, Rel: res.Energy - ref, Converged: res.Converged,
		})
	}
	sum.WellKcal = wellDepth(sum.Points)
	return &JobResult{State: StateDone, Scan: sum}
}

// mergeReport folds one builder execution report into the server-level
// registry: the pool/phase counters of the per-job builders become
// cumulative service metrics next to the queue/cache gauges.
func (s *Server) mergeReport(rep hfx.Report) {
	s.reg.Counter("hfx.fock_builds").Add(max64(rep.Pool.Builds, 1))
	s.reg.Counter("hfx.quartets_computed").Add(rep.QuartetsComputed)
	s.reg.Counter("hfx.quartets_screened").Add(rep.QuartetsScreened)
	s.reg.Counter("hfx.zero_ns").Add(int64(rep.Pool.ZeroTime))
	s.reg.Counter("hfx.screen_wall_ns").Add(rep.ScreeningStats.Wall().Nanoseconds())
	if rep.Cache.Enabled {
		s.reg.Counter("hfx.ericache.hits").Add(rep.Cache.Hits)
		s.reg.Counter("hfx.ericache.misses").Add(rep.Cache.Misses)
	}
	if rep.Timings != nil {
		for _, p := range rep.Timings.Phases() {
			s.reg.Timer.Charge("hfx."+p.Name, p.D)
		}
	}
}

// mergeDistReport folds one distributed build into the registry: the
// aggregate build counters, the collective-traffic totals, and the
// per-rank compute/comm phase walls, so /metrics exposes the rank
// decomposition of every distributed job.
func (s *Server) mergeDistReport(rep hfx.DistReport) {
	s.reg.Counter("hfx.fock_builds").Add(1)
	s.reg.Counter("hfx.quartets_computed").Add(rep.QuartetsComputed)
	s.reg.Counter("hfx.quartets_screened").Add(rep.QuartetsScreened)
	s.reg.Counter("mprt.comm_bytes").Add(rep.CommBytes)
	s.reg.Counter("mprt.sends").Add(rep.Sends)
	s.reg.Counter("mprt.hops").Add(rep.Hops)
	s.reg.Counter("mprt.reduce_steps").Add(rep.MeasuredSteps)
	for r := range rep.RankCompute {
		s.reg.Timer.Charge(fmt.Sprintf("dist.rank%d.compute", r), rep.RankCompute[r])
		s.reg.Timer.Charge(fmt.Sprintf("dist.rank%d.comm", r), rep.RankComm[r])
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// HTTP handlers.

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() {
		s.reg.Histogram("http.jobs_ms", latencyEdgesMS).
			Observe(float64(time.Since(t0)) / float64(time.Millisecond))
	}()
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	req.normalize()
	if err := req.validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.reg.Counter("jobs.submitted").Add(1)

	// Resolve the geometry once: the canonical hash serves the cache
	// lookup and, on a miss, admission pricing.
	mol, err := req.resolveMolecule()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := req.cacheKey(mol)
	if res, ok := s.cache.get(key); ok {
		s.reg.Counter("cache.hits").Add(1)
		res.CacheHit = true
		// Hits mint from their own sequence with a distinct prefix: a
		// job-NNN ID is only ever handed out by admission, which (when
		// journaling) records it, so after a restart every job-NNN ID maps
		// to exactly one journaled submit — a hit must not burn one.
		res.ID = s.newHitID()
		res.QueueMS, res.RunMS = 0, 0
		writeJSON(w, http.StatusOK, res)
		return
	}
	s.reg.Counter("cache.misses").Add(1)

	if s.draining.Load() {
		s.reg.Counter("jobs.rejected_draining").Add(1)
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	// Admission pricing: screen the system and predict the job cost from
	// the pair list (the paper's predictability claim, repurposed).
	sopts := screen.DefaultOptions()
	sopts.Threshold = req.Screen
	prep, predicted, err := prepare(&req, s.cfg.BuilderThreads, sopts, s.cfg.Calibrator)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.reg.Histogram("job.predicted_ms", latencyEdgesMS).Observe(predicted / 1e6)

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	j := &job{
		id: s.newID(), req: req, key: key,
		prep: prep, predicted: predicted,
		rank: predicted + s.cfg.AgingNSPerSec*time.Since(s.start).Seconds(),
		seq:  s.nextSeq.Add(1),
		enq:  time.Now(), ctx: ctx, cancel: cancel,
		done: make(chan struct{}),
	}
	s.reg.Gauge("jobs.queued").Add(1)
	if err := s.q.push(j); err != nil {
		s.reg.Gauge("jobs.queued").Add(-1)
		cancel()
		if err == ErrDraining {
			s.reg.Counter("jobs.rejected_draining").Add(1)
			httpError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		s.reg.Counter("jobs.rejected_full").Add(1)
		w.Header().Set("Retry-After",
			strconv.Itoa(retryAfterSeconds(s.q.queuedCost(), s.InflightCostNS(), predicted, s.cfg.Workers)))
		httpError(w, http.StatusTooManyRequests, "admission queue full")
		return
	}
	if s.journal != nil {
		// Record the accepted job. Replay pairs submits with finishes as
		// sets, so the worker racing this append to the finish record is
		// harmless — both land before any future boot reads them.
		if n, err := s.journal.submit(j.id, &req); err != nil {
			s.reg.Counter("journal.append_errors").Add(1)
		} else {
			s.reg.Counter("journal.appends").Add(1)
			s.reg.Counter("journal.bytes").Add(int64(n))
		}
	}

	// The worker closes j.done in every path, including cancellation —
	// a disconnected client's job still finishes (and fills the cache).
	<-j.done
	writeJSON(w, http.StatusOK, *j.result)
}

func (s *Server) newID() string {
	return fmt.Sprintf("job-%06d", s.nextID.Add(1))
}

func (s *Server) newHitID() string {
	return fmt.Sprintf("hit-%06d", s.nextHitID.Add(1))
}

// handleSystems lists the built-in geometries and job kinds.
func (s *Server) handleSystems(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"systems": []string{"water", "h2", "he", "lih", "lif", "ch4", "pc", "dmso", "li2o2", "watercluster"},
		"kinds":   []string{KindSCF, KindBuildJK, KindScreen, KindSolventScan, KindTrajectory},
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// metricsSnapshot is the JSON form of /metrics?format=json.
type metricsSnapshot struct {
	UptimeSec  float64                   `json:"uptimeSec"`
	Workers    int                       `json:"workers"`
	QueueDepth int                       `json:"queueDepth"`
	CacheRatio float64                   `json:"cacheHitRatio"`
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]int64          `json:"gauges"`
	Histograms map[string]map[string]any `json:"histograms"`
	Phases     map[string]float64        `json:"phaseSeconds"`
}

func (s *Server) snapshot() metricsSnapshot {
	snap := metricsSnapshot{
		UptimeSec:  time.Since(s.start).Seconds(),
		Workers:    s.cfg.Workers,
		QueueDepth: s.q.depth(),
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]map[string]any{},
		Phases:     map[string]float64{},
	}
	s.reg.Gauge("jobs.queued").Set(int64(snap.QueueDepth))
	if cal := s.cfg.Calibrator; cal != nil {
		// The calibration gauges: model version, total samples, and the
		// residual-error EMA in thousandths (gauges are integral).
		s.reg.Gauge("calib.epoch").Set(int64(cal.Epoch()))
		s.reg.Gauge("calib.observations").Set(cal.Observations())
		s.reg.Gauge("calib.err_milli").Set(int64(cal.MeanAbsErr() * 1000))
	}
	for _, c := range s.reg.Counters() {
		snap.Counters[c.Name] = c.Value
	}
	for _, g := range s.reg.Gauges() {
		snap.Gauges[g.Name] = g.Value
	}
	hits, misses := snap.Counters["cache.hits"], snap.Counters["cache.misses"]
	if hits+misses > 0 {
		snap.CacheRatio = float64(hits) / float64(hits+misses)
	}
	for _, h := range s.reg.Histograms() {
		snap.Histograms[h.Name] = map[string]any{
			"total": h.Total, "edges": h.Edges, "counts": h.Counts,
		}
	}
	for _, p := range s.reg.Timer.Phases() {
		snap.Phases[p.Name] = p.D.Seconds()
	}
	return snap
}

// handleMetrics merges the builders' trace counters with the server
// gauges. Plain text by default; ?format=json for the structured form.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "# hfxd metrics (uptime %.1fs, %d workers, queue depth %d, cache hit ratio %.3f)\n",
		snap.UptimeSec, snap.Workers, snap.QueueDepth, snap.CacheRatio)
	writeSortedInt64 := func(kind string, m map[string]int64) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%-7s %-26s %d\n", kind, k, m[k])
		}
	}
	writeSortedInt64("counter", snap.Counters)
	writeSortedInt64("gauge", snap.Gauges)
	for _, h := range s.reg.Histograms() {
		hh := s.reg.Histogram(h.Name, h.Edges)
		fmt.Fprintf(w, "%-7s %-26s n=%d p50<=%g p95<=%g\n",
			"hist", h.Name, h.Total, hh.Quantile(0.5), hh.Quantile(0.95))
	}
	for _, p := range s.reg.Timer.Phases() {
		fmt.Fprintf(w, "%-7s %-26s %v\n", "phase", p.Name, p.D)
	}
}

// writeJSON marshals before writing the header, so an unencodable value
// becomes a clean 500 instead of a 200 with a truncated body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding result: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
