package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Retry-After: the hint must price the work a retry actually waits
// behind, which includes what the workers are executing right now.

func TestRetryAfterIncludesInflightWork(t *testing.T) {
	secNS := float64(time.Second)
	// The bug: empty queue, 4 workers each 2 minutes into a running job.
	// Queued cost alone says "retry in 1 s", which is guaranteed wrong.
	if got := retryAfterSeconds(0, 4*120*secNS, 1e6, 4); got < 119 || got > 121 {
		t.Fatalf("retryAfter with 4x120s in flight = %ds, want ~120", got)
	}
	// Queued and in-flight work add up.
	if got := retryAfterSeconds(4*10*secNS, 4*10*secNS, 0, 4); got != 20 {
		t.Fatalf("retryAfter queued+inflight = %ds, want 20", got)
	}
	// Clamps: never below 1 s, never above 300 s.
	if got := retryAfterSeconds(0, 0, 1e6, 4); got != 1 {
		t.Fatalf("retryAfter floor = %ds, want 1", got)
	}
	if got := retryAfterSeconds(1e6*secNS, 0, 0, 1); got != 300 {
		t.Fatalf("retryAfter ceiling = %ds, want 300", got)
	}
	// The rejected job's own cost is part of the wait.
	if got := retryAfterSeconds(0, 0, 7*secNS, 1); got != 7 {
		t.Fatalf("retryAfter own-cost = %ds, want 7", got)
	}
}

func TestServerTracksInflightCost(t *testing.T) {
	block := make(chan struct{})
	running := make(chan string, 1)
	s := mustNew(t, Config{
		Workers: 1, QueueCap: 1, CacheBytes: -1,
		BeforeRun: func(kind string) { running <- kind; <-block },
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resA := make(chan *JobResult, 1)
	go func() {
		r, err := NewClient(ts.URL).Submit(context.Background(), JobRequest{Kind: KindSCF, System: "water"})
		if err != nil {
			t.Errorf("job A: %v", err)
			r = &JobResult{}
		}
		resA <- r
	}()
	<-running
	// The worker is holding job A: with an empty queue, the in-flight
	// predicted cost is the only signal a Retry-After estimate has.
	if s.QueueDepth() != 0 {
		t.Fatalf("queue depth %d, want 0", s.QueueDepth())
	}
	inflight := s.InflightCostNS()
	if inflight <= 0 {
		t.Fatal("running job must be accounted as in-flight predicted cost")
	}
	close(block)
	r := <-resA
	if r.State != StateDone {
		t.Fatalf("job A: %+v", r)
	}
	if math.Abs(inflight-r.PredictedCostNS) > 1e-6*r.PredictedCostNS {
		t.Fatalf("inflight %g != job A's predicted cost %g", inflight, r.PredictedCostNS)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s.InflightCostNS(); got != 0 {
		t.Fatalf("inflight after drain = %g, want 0", got)
	}
}

// ---------------------------------------------------------------------------
// Typed draining rejection: the fleet router needs to tell "this
// instance is going away, fail over" apart from a generic error.

func TestClientDrainingErrorTyped(t *testing.T) {
	block := make(chan struct{})
	running := make(chan string, 1)
	s := mustNew(t, Config{
		Workers: 1, CacheBytes: -1,
		BeforeRun: func(kind string) { running <- kind; <-block },
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resA := make(chan error, 1)
	go func() {
		_, err := NewClient(ts.URL).Submit(context.Background(), JobRequest{Kind: KindScreen, System: "h2"})
		resA <- err
	}()
	<-running

	// Shutdown blocks on the held worker, but flips the draining flag
	// immediately; poll it before probing the rejection path.
	shutDone := make(chan error, 1)
	go func() { shutDone <- s.Shutdown(context.Background()) }()
	deadline := time.Now().Add(10 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := NewClient(ts.URL).Submit(context.Background(), JobRequest{Kind: KindScreen, System: "water"})
	var draining *DrainingError
	if !errors.As(err, &draining) {
		t.Fatalf("draining submit returned %T (%v), want *DrainingError", err, err)
	}
	close(block)
	if err := <-resA; err != nil {
		t.Fatalf("in-flight job through the drain: %v", err)
	}
	if err := <-shutDone; err != nil {
		t.Fatal(err)
	}
}

func TestClientSubmitRetryWaitsOutBusy(t *testing.T) {
	block := make(chan struct{})
	running := make(chan string, 1)
	s := mustNew(t, Config{
		Workers: 1, QueueCap: 1, CacheBytes: -1,
		BeforeRun: func(kind string) {
			select {
			case running <- kind:
				<-block
			default: // only the first job is held
			}
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	// Job A holds the worker, job B fills the queue: C's first attempts
	// all meet a full queue until the worker is released.
	go NewClient(ts.URL).Submit(context.Background(), JobRequest{Kind: KindScreen, System: "h2"})
	<-running
	go NewClient(ts.URL).Submit(context.Background(), JobRequest{Kind: KindScreen, System: "water"})
	deadline := time.Now().Add(10 * time.Second)
	for s.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("job B never queued")
		}
		time.Sleep(time.Millisecond)
	}

	go func() { time.Sleep(50 * time.Millisecond); close(block) }()
	res, attempts, err := NewClient(ts.URL).SubmitRetry(context.Background(),
		JobRequest{Kind: KindScreen, System: "he"},
		RetryPolicy{MaxAttempts: 200, BackoffScale: 0.005, MaxBackoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("SubmitRetry: %v (after %d attempts)", err, attempts)
	}
	if res.State != StateDone {
		t.Fatalf("job C: %+v", res)
	}
	if attempts < 2 {
		t.Fatalf("job C should have been rejected at least once, attempts=%d", attempts)
	}
	if got := s.Metrics().Counter("jobs.rejected_full").Value(); got < 1 {
		t.Fatalf("jobs.rejected_full %d, want >= 1", got)
	}
}

// ---------------------------------------------------------------------------
// Cache-hit ID provenance: a hit must not burn a job-NNN ID, so that
// after a journal replay every job-NNN maps to exactly one journaled
// submit.

func TestCacheHitIDsDistinctFromJournaledJobIDs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")

	// The on-disk state of a dead server: job-000001 accepted, not
	// finished.
	jl, err := openJobJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	req := JobRequest{Kind: KindScreen, System: "h2"}
	req.normalize()
	if _, err := jl.submit("job-000001", &req); err != nil {
		t.Fatal(err)
	}
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}

	s := mustNew(t, Config{Workers: 1, JournalPath: path})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Wait for the replayed job to run to completion and fill the cache.
	deadline := time.Now().Add(30 * time.Second)
	for counter(s, "jobs.done") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("replayed job never completed")
		}
		time.Sleep(time.Millisecond)
	}

	// Repeats are cache hits: distinct ID form, own sequence.
	hit1 := submit(t, ts, JobRequest{Kind: KindScreen, System: "h2"})
	hit2 := submit(t, ts, JobRequest{Kind: KindScreen, System: "h2"})
	if !hit1.CacheHit || !hit2.CacheHit {
		t.Fatalf("repeats must hit the replayed cache: %+v %+v", hit1, hit2)
	}
	for _, h := range []*JobResult{hit1, hit2} {
		if !strings.HasPrefix(h.ID, "hit-") {
			t.Fatalf("cache hit ID %q must use the hit- form, not consume job IDs", h.ID)
		}
	}
	if hit1.ID == hit2.ID {
		t.Fatal("hit IDs must still be unique")
	}

	// A genuinely new job gets the *next* job ID after the replayed one:
	// the hits burned nothing, so the journal's job-NNN space is gapless
	// and every ID in it corresponds to a journaled submit.
	fresh := submit(t, ts, JobRequest{Kind: KindScreen, System: "water"})
	if fresh.ID != "job-000002" {
		t.Fatalf("fresh job ID %q, want job-000002 (hits must not advance the job sequence)", fresh.ID)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Nothing outstanding: both real jobs finished and were struck out;
	// no phantom IDs were minted that a future boot could re-assign.
	jl2, err := openJobJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.close()
	if out := jl2.snapshotOutstanding(); len(out) != 0 {
		t.Fatalf("journal should be clean, got %d outstanding", len(out))
	}
}

// ---------------------------------------------------------------------------
// Queue properties (satellite: starvation aging + FIFO under
// concurrency).

// propRNG is a tiny deterministic generator for the property tests.
type propRNG uint64

func (r *propRNG) next() uint64 {
	*r ^= *r >> 12
	*r ^= *r << 25
	*r ^= *r >> 27
	return uint64(*r) * 0x2545f4914f6cdd1d
}

func (r *propRNG) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// TestQueueAgingOvertakeBoundProperty pushes a randomized arrival stream
// ranked exactly as server admission ranks jobs (rank = predicted +
// aging·t_enqueue) and checks two properties of the pop order: it is the
// deterministic (rank, seq) order, and no job overtakes an earlier,
// more expensive job that arrived more than predicted/aging seconds
// before it — the starvation bound the queue documents.
func TestQueueAgingOvertakeBoundProperty(t *testing.T) {
	const (
		n     = 300
		aging = 1e8 // ns of predicted cost per queued second
	)
	rng := propRNG(42)
	type spec struct {
		predicted, t float64
	}
	specs := make([]spec, n)
	var now float64
	for i := range specs {
		now += 2 * rng.float64() // mean 1 s between arrivals
		// Log-uniform predicted costs over four decades: heavy tails are
		// exactly where starvation shows up.
		p := math.Pow(10, 6+4*rng.float64())
		specs[i] = spec{predicted: p, t: now}
	}

	q := newQueue(n)
	for i, sp := range specs {
		j := fakeJob(fmt.Sprintf("j%d", i), sp.predicted+aging*sp.t, int64(i))
		j.predicted = sp.predicted
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}

	// Expected order: ascending (rank, seq).
	want := make([]int, n)
	for i := range want {
		want[i] = i
	}
	sort.SliceStable(want, func(a, b int) bool {
		ra := specs[want[a]].predicted + aging*specs[want[a]].t
		rb := specs[want[b]].predicted + aging*specs[want[b]].t
		if ra != rb {
			return ra < rb
		}
		return want[a] < want[b]
	})

	pos := make([]int, n) // pos[i] = pop position of job i
	for k := 0; k < n; k++ {
		j, ok := q.pop()
		if !ok {
			t.Fatalf("queue exhausted at pop %d", k)
		}
		var id int
		fmt.Sscanf(j.id, "j%d", &id)
		if id != want[k] {
			t.Fatalf("pop %d: got j%d, want j%d (order must be (rank, seq))", k, id, want[k])
		}
		pos[id] = k
	}

	// Overtake bound: j overtakes an earlier i only while i's aging
	// credit has not caught up, i.e. within predicted_i/aging seconds of
	// arrivals after i.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pos[j] < pos[i] && specs[j].predicted < specs[i].predicted {
				maxDelay := specs[i].predicted / aging
				if delay := specs[j].t - specs[i].t; delay > maxDelay {
					t.Fatalf("job %d (arrived %.2fs after job %d) overtook it beyond the %.2fs aging bound",
						j, delay, i, maxDelay)
				}
			}
		}
	}
}

// TestQueueEqualRankConcurrentPushFIFO hammers the queue with concurrent
// pushers and checks that equal-rank jobs still pop in strict seq
// (admission) order — the determinism FIFO tie-break the heap promises.
func TestQueueEqualRankConcurrentPushFIFO(t *testing.T) {
	const (
		n          = 256
		goroutines = 8
	)
	q := newQueue(n)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for seq := g; seq < n; seq += goroutines {
				if err := q.push(fakeJob(fmt.Sprintf("j%d", seq), 7, int64(seq))); err != nil {
					t.Errorf("push seq %d: %v", seq, err)
				}
			}
		}(g)
	}
	wg.Wait()
	for k := 0; k < n; k++ {
		j, ok := q.pop()
		if !ok {
			t.Fatalf("queue exhausted at pop %d", k)
		}
		if want := fmt.Sprintf("j%d", k); j.id != want {
			t.Fatalf("pop %d: got %s, want %s (equal ranks must stay FIFO)", k, j.id, want)
		}
	}
}

// ---------------------------------------------------------------------------
// Router-facing pricing hooks.

func TestCanonicalKeyAndPriceRequest(t *testing.T) {
	req := JobRequest{Kind: KindBuildJK, System: "water"}
	key, err := CanonicalKey(req)
	if err != nil || key == "" {
		t.Fatalf("CanonicalKey: %q, %v", key, err)
	}
	// CanonicalKey must agree with what admission computes.
	norm := req
	norm.normalize()
	mol, err := norm.resolveMolecule()
	if err != nil {
		t.Fatal(err)
	}
	if admKey := norm.cacheKey(mol); admKey != key {
		t.Fatalf("CanonicalKey %q != admission key %q", key, admKey)
	}
	// The caller's request must not be mutated by normalization.
	if req.Basis != "" || req.Functional != "" {
		t.Fatalf("CanonicalKey mutated its argument: %+v", req)
	}

	pKey, predicted, err := PriceRequest(req, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pKey != key {
		t.Fatalf("PriceRequest key %q != CanonicalKey %q", pKey, key)
	}
	if predicted <= 0 {
		t.Fatalf("predicted cost %g, want > 0", predicted)
	}
	if _, err := CanonicalKey(JobRequest{Kind: "nope"}); err == nil {
		t.Fatal("CanonicalKey must validate")
	}
	if _, _, err := PriceRequest(JobRequest{System: "unobtainium"}, 1); err == nil {
		t.Fatal("PriceRequest must validate")
	}
}
