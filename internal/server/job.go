// Package server implements hfxd, the concurrent SCF/HFX job service:
// an HTTP/JSON front end that multiplexes many clients onto a small
// fixed pool of workers owning long-lived hfx.Builder/SCF state.
//
// The design leans on the paper's central observation — HFX task cost is
// *predictable* from the screened pair list — to do cost-aware admission:
// every job is priced at submit time (screening + cost model + the
// sched.PredictMakespan hook) and the bounded queue runs shortest-
// predicted-job-first with starvation aging, the serving-layer analogue
// of the paper's static LPT schedule. Identical jobs are answered from
// an LRU result cache keyed by a canonical hash of the resolved
// geometry, basis and method options, skipping the builders entirely.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
	"time"

	"hfxmd/internal/basis"
	"hfxmd/internal/chem"
	"hfxmd/internal/dft"
	"hfxmd/internal/hfx"
	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
	"hfxmd/internal/phys"
	"hfxmd/internal/respa"
	"hfxmd/internal/scf"
	"hfxmd/internal/sched"
	"hfxmd/internal/screen"
	"hfxmd/internal/steal"
)

// The job kinds hfxd serves.
const (
	KindSCF         = "scf"          // full SCF energy (HF/LDA/PBE/PBE0)
	KindBuildJK     = "buildjk"      // one Fock build on the SAD guess density
	KindScreen      = "screen"       // screening statistics + cost prediction
	KindSolventScan = "solvent-scan" // Li2O2 approach profile (experiment E8)
	KindTrajectory  = "trajectory"   // RESPA AIMD campaign (multiple-time-step MD)
)

// JobRequest is the JSON body of POST /v1/jobs. Exactly one of System or
// XYZ selects the geometry (solvent-scan jobs use Solvent instead).
type JobRequest struct {
	// Kind is one of scf|buildjk|screen|solvent-scan (default scf).
	Kind string `json:"kind,omitempty"`
	// System names a built-in geometry:
	// water|h2|he|lih|lif|ch4|pc|dmso|li2o2|watercluster.
	System string `json:"system,omitempty"`
	// NWater sizes -system watercluster (default 4).
	NWater int `json:"nwater,omitempty"`
	// XYZ is an inline geometry in XYZ format (ångström).
	XYZ string `json:"xyz,omitempty"`
	// Charge is the total molecular charge.
	Charge int `json:"charge,omitempty"`
	// Basis names a built-in basis set (default STO-3G).
	Basis string `json:"basis,omitempty"`
	// Functional is HF|LDA|PBE|PBE0 (default HF).
	Functional string `json:"functional,omitempty"`
	// Screen is the integral screening threshold ε (default 1e-8).
	Screen float64 `json:"screen,omitempty"`
	// DensityWeighted toggles P-weighted quartet screening (default on,
	// the paper's production setting).
	DensityWeighted *bool `json:"densityWeighted,omitempty"`
	// MaxIter bounds the SCF iterations (default 100).
	MaxIter int `json:"maxIter,omitempty"`
	// CacheMB enables semi-direct Fock builds: a per-builder ERI block
	// cache of up to this many MiB replays surviving integral blocks
	// across SCF iterations instead of recomputing them (0 = fully
	// direct). It never changes the numbers, only the speed, so it is
	// part of the builder identity but not of the result cache key.
	CacheMB int `json:"cacheMb,omitempty"`
	// Ranks runs the Fock build on the in-process mprt multi-rank runtime
	// (kind buildjk only): the screened task list is statically
	// partitioned over this many torus-mapped ranks and the partial J/K
	// are combined with deterministic collectives. The result is bitwise
	// identical to the single-rank build, so ranks shapes the builder —
	// and the per-rank phase walls in /metrics — but not the result cache
	// key. 0 or 1 means single-rank; the semi-direct ERI cache (cacheMb)
	// is disabled on the distributed path.
	Ranks int `json:"ranks,omitempty"`
	// TimeoutMS is the per-job deadline in milliseconds (0 = server
	// default). The deadline is checked between SCF iterations.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`

	// Solvent-scan parameters (kind solvent-scan only).
	Solvent string  `json:"solvent,omitempty"` // PC|DMSO (default PC)
	Points  int     `json:"points,omitempty"`  // scan points (default 5)
	RMin    float64 `json:"rmin,omitempty"`    // closest approach, bohr (default 3.4)
	RMax    float64 `json:"rmax,omitempty"`    // farthest approach, bohr (default 9.0)

	// Trajectory parameters (kind trajectory only): a short RESPA AIMD
	// campaign on the requested model chemistry.
	// MaxSteps is the outer-step count — full-force evaluations (default 4).
	MaxSteps int `json:"maxSteps,omitempty"`
	// RespaK is the RESPA split: inner (cheap-force) steps per outer
	// step (default 2; 1 recovers single-time-step BOMD).
	RespaK int `json:"respaK,omitempty"`
	// DtFS is the inner timestep in femtoseconds (default 0.5).
	DtFS float64 `json:"dtFs,omitempty"`
	// TempK seeds Maxwell–Boltzmann velocities and drives the Berendsen
	// bath (default 300).
	TempK float64 `json:"tempK,omitempty"`
	// Ref selects the cheap reference force: spring|loose|baseline
	// (default spring).
	Ref string `json:"ref,omitempty"`
	// Seed makes velocity initialisation reproducible (default 1).
	Seed int64 `json:"seed,omitempty"`
}

// normalize fills defaults in place so that equivalent requests have
// identical field values before cache-key hashing.
func (r *JobRequest) normalize() {
	if r.Kind == "" {
		r.Kind = KindSCF
	}
	r.Kind = strings.ToLower(r.Kind)
	if r.System == "" && r.XYZ == "" && r.Kind != KindSolventScan {
		r.System = "water"
	}
	r.System = strings.ToLower(r.System)
	if r.NWater == 0 {
		r.NWater = 4
	}
	if r.Basis == "" {
		r.Basis = "STO-3G"
	}
	if r.Functional == "" {
		r.Functional = "HF"
	}
	r.Functional = strings.ToUpper(r.Functional)
	if r.Screen == 0 {
		r.Screen = 1e-8
	}
	if r.DensityWeighted == nil {
		t := true
		r.DensityWeighted = &t
	}
	if r.Kind == KindSolventScan {
		if r.Solvent == "" {
			r.Solvent = "PC"
		}
		r.Solvent = strings.ToUpper(r.Solvent)
		if r.Points == 0 {
			r.Points = 5
		}
		if r.RMin == 0 {
			r.RMin = 3.4
		}
		if r.RMax == 0 {
			r.RMax = 9.0
		}
	}
	if r.Kind == KindTrajectory {
		if r.MaxSteps == 0 {
			r.MaxSteps = 4
		}
		if r.RespaK == 0 {
			r.RespaK = 2
		}
		if r.DtFS == 0 {
			r.DtFS = 0.5
		}
		if r.TempK == 0 {
			r.TempK = 300
		}
		if r.Ref == "" {
			r.Ref = respa.RefSpring
		}
		r.Ref = strings.ToLower(r.Ref)
		if r.Seed == 0 {
			r.Seed = 1
		}
	}
}

// validate rejects malformed requests before any work is done.
func (r *JobRequest) validate() error {
	switch r.Kind {
	case KindSCF, KindBuildJK, KindScreen:
	case KindTrajectory:
		if r.MaxSteps < 1 || r.MaxSteps > maxTrajectorySteps {
			return fmt.Errorf("trajectory needs 1 <= maxSteps <= %d, got %d", maxTrajectorySteps, r.MaxSteps)
		}
		if r.RespaK < 1 || r.RespaK > maxTrajectoryK {
			return fmt.Errorf("trajectory needs 1 <= respaK <= %d, got %d", maxTrajectoryK, r.RespaK)
		}
		if !(r.DtFS > 0) {
			return fmt.Errorf("trajectory needs dtFs > 0, got %g", r.DtFS)
		}
		if r.TempK < 0 {
			return fmt.Errorf("negative tempK %g", r.TempK)
		}
		switch r.Ref {
		case respa.RefSpring, respa.RefLoose, respa.RefBaseline:
		default:
			return fmt.Errorf("unknown trajectory ref %q (want %s, %s or %s)",
				r.Ref, respa.RefSpring, respa.RefLoose, respa.RefBaseline)
		}
	case KindSolventScan:
		if r.Solvent != "PC" && r.Solvent != "DMSO" {
			return fmt.Errorf("unknown solvent %q (want PC or DMSO)", r.Solvent)
		}
		if r.Points < 2 {
			return fmt.Errorf("solvent-scan needs at least 2 points, got %d", r.Points)
		}
		if !(r.RMin > 0 && r.RMax > r.RMin) {
			return fmt.Errorf("solvent-scan needs 0 < rmin < rmax, got [%g, %g]", r.RMin, r.RMax)
		}
	default:
		return fmt.Errorf("unknown job kind %q", r.Kind)
	}
	if r.System != "" && r.XYZ != "" {
		return fmt.Errorf("system and xyz are mutually exclusive")
	}
	if _, ok := dft.ByName(r.Functional); !ok {
		return fmt.Errorf("unknown functional %q", r.Functional)
	}
	if r.Screen < 0 {
		return fmt.Errorf("negative screening threshold %g", r.Screen)
	}
	if r.CacheMB < 0 {
		return fmt.Errorf("negative cacheMb %d", r.CacheMB)
	}
	if r.Ranks < 0 {
		return fmt.Errorf("negative ranks %d", r.Ranks)
	}
	if r.Ranks > maxJobRanks {
		return fmt.Errorf("ranks %d exceeds the per-job limit %d", r.Ranks, maxJobRanks)
	}
	if r.Ranks > 1 && r.Kind != KindBuildJK {
		return fmt.Errorf("ranks is only supported for buildjk jobs")
	}
	return nil
}

// maxJobRanks bounds the mprt world one job may request: each rank is a
// goroutine with its own persistent pool, so the limit keeps a single
// request from monopolising the process.
const maxJobRanks = 64

// maxTrajectorySteps and maxTrajectoryK bound a trajectory campaign:
// every outer step costs 6N+1 SCF runs, so an unbounded request could
// pin a worker for hours. Long campaigns belong in cmd/aimd, where
// checkpointing makes them resumable.
const (
	maxTrajectorySteps = 64
	maxTrajectoryK     = 16
)

// resolveMolecule maps the request's geometry selector to a Molecule.
// For solvent-scan jobs it returns the closest-approach geometry, which
// dominates the predicted cost.
func (r *JobRequest) resolveMolecule() (*chem.Molecule, error) {
	if r.Kind == KindSolventScan {
		return chem.SolvatedPeroxide(r.Solvent, r.RMin)
	}
	if r.XYZ != "" {
		mol, err := chem.ReadXYZ(strings.NewReader(r.XYZ))
		if err != nil {
			return nil, err
		}
		mol.Charge = r.Charge
		return mol, nil
	}
	var mol *chem.Molecule
	switch r.System {
	case "water":
		mol = chem.Water()
	case "h2":
		mol = chem.Hydrogen(1.4)
	case "he":
		mol = chem.Helium()
	case "lih":
		mol = chem.LithiumHydride()
	case "lif":
		mol = chem.LithiumFluoride()
	case "ch4":
		mol = chem.Methane()
	case "pc":
		mol = chem.PropyleneCarbonate()
	case "dmso":
		mol = chem.DimethylSulfoxide()
	case "li2o2":
		mol = chem.LithiumPeroxide()
	case "watercluster":
		mol = chem.WaterCluster(r.NWater, 1)
	default:
		return nil, fmt.Errorf("unknown system %q", r.System)
	}
	mol.Charge = r.Charge
	return mol, nil
}

// cacheKey returns the canonical hash identifying the *numerical*
// content of a job: kind, resolved geometry (element + position in bohr
// at full float precision, charge, cell), basis, functional, screening
// options and the density-weighting flag. Options that cannot change
// the result — worker threads, balancer, deadline — are deliberately
// excluded, so e.g. the same job submitted with different timeouts is
// one cache entry. The request must be normalized first.
func (r *JobRequest) cacheKey(mol *chem.Molecule) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kind=%s;basis=%s;func=%s;screen=%.17g;dw=%v;maxiter=%d;",
		r.Kind, r.Basis, r.Functional, r.Screen, *r.DensityWeighted, r.MaxIter)
	if r.Kind == KindSolventScan {
		fmt.Fprintf(&sb, "solvent=%s;points=%d;rmin=%.17g;rmax=%.17g;",
			r.Solvent, r.Points, r.RMin, r.RMax)
	}
	if r.Kind == KindTrajectory {
		fmt.Fprintf(&sb, "maxsteps=%d;k=%d;dt=%.17g;temp=%.17g;ref=%s;seed=%d;",
			r.MaxSteps, r.RespaK, r.DtFS, r.TempK, r.Ref, r.Seed)
	}
	fmt.Fprintf(&sb, "charge=%d;", mol.Charge)
	if mol.Cell != nil {
		fmt.Fprintf(&sb, "cell=%.17g,%.17g,%.17g;", mol.Cell.L[0], mol.Cell.L[1], mol.Cell.L[2])
	}
	for _, a := range mol.Atoms {
		fmt.Fprintf(&sb, "%d:%.17g,%.17g,%.17g;", int(a.El), a.Pos[0], a.Pos[1], a.Pos[2])
	}
	h := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(h[:16])
}

// JobResult is the JSON response of POST /v1/jobs. Exactly one of the
// payload pointers (SCF, Build, Screen, Scan) is set for a done job.
type JobResult struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"` // done|failed|cancelled
	// CacheHit marks a result served from the LRU cache without touching
	// a builder; CacheKey is the canonical job hash.
	CacheHit bool   `json:"cacheHit"`
	CacheKey string `json:"cacheKey"`
	// PredictedCostNS is the admission-time cost prediction (cost-model
	// nanoseconds) used for queue ordering.
	PredictedCostNS float64 `json:"predictedCostNs,omitempty"`
	QueueMS         float64 `json:"queueMs"`
	RunMS           float64 `json:"runMs"`
	Error           string  `json:"error,omitempty"`

	SCF    *SCFSummary    `json:"scf,omitempty"`
	Build  *BuildSummary  `json:"build,omitempty"`
	Screen *ScreenSummary `json:"screen,omitempty"`
	Scan   *ScanSummary   `json:"scan,omitempty"`
	Traj   *TrajSummary   `json:"traj,omitempty"`
}

// SCFSummary is the shared JSON encoding of a converged SCF result, used
// by the server and by cmd/scfrun -json.
type SCFSummary struct {
	Energy      float64 `json:"energy"`
	EOne        float64 `json:"eOne"`
	ECoulomb    float64 `json:"eCoulomb"`
	EExchangeHF float64 `json:"eExchangeHF"`
	EXC         float64 `json:"exc"`
	ENuclear    float64 `json:"eNuclear"`
	Converged   bool    `json:"converged"`
	Iterations  int     `json:"iterations"`
	NBasis      int     `json:"nbasis"`
	// HOMO and LUMO are omitted when undefined (no occupied orbitals,
	// or a minimal basis with no virtuals — e.g. He/STO-3G): NaN is not
	// representable in JSON.
	HOMO     *float64   `json:"homo,omitempty"`
	LUMO     *float64   `json:"lumo,omitempty"`
	Dipole   [3]float64 `json:"dipole"`
	Mulliken []float64  `json:"mulliken,omitempty"`
}

// SummarizeSCF builds the shared wire encoding from an SCF result.
// finiteOrNil maps NaN/Inf to nil so the value JSON-encodes as absent.
func finiteOrNil(x float64) *float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return nil
	}
	return &x
}

func SummarizeSCF(res *scf.Result) *SCFSummary {
	eng := integrals.NewEngine(res.Set)
	return &SCFSummary{
		Energy:      res.Energy,
		EOne:        res.EOne,
		ECoulomb:    res.ECoulomb,
		EExchangeHF: res.EExchangeHF,
		EXC:         res.EXC,
		ENuclear:    res.ENuclear,
		Converged:   res.Converged,
		Iterations:  res.Iterations,
		NBasis:      res.Set.NBasis,
		HOMO:        finiteOrNil(res.HOMO()),
		LUMO:        finiteOrNil(res.LUMO()),
		Dipole:      scf.Dipole(res, eng),
		Mulliken:    scf.MullikenCharges(res, eng),
	}
}

// BuildSummary reports one Fock build (kind buildjk): compact matrix
// fingerprints plus the builder's execution report.
type BuildSummary struct {
	NBasis           int     `json:"nbasis"`
	NTasks           int     `json:"ntasks"`
	QuartetsComputed int64   `json:"quartetsComputed"`
	QuartetsScreened int64   `json:"quartetsScreened"`
	BalanceRatio     float64 `json:"balanceRatio"`
	WallNS           int64   `json:"wallNs"`
	JNorm            float64 `json:"jNorm"`
	KNorm            float64 `json:"kNorm"`
	// ExchangeEnergy is −¼·tr(P·K) for the SAD guess density.
	ExchangeEnergy float64 `json:"exchangeEnergy"`
	// EriCacheHits/Misses report the semi-direct ERI block cache traffic
	// of this build (absent for fully direct builders, cacheMb = 0).
	EriCacheHits   int64 `json:"eriCacheHits,omitempty"`
	EriCacheMisses int64 `json:"eriCacheMisses,omitempty"`
	// Ranks/CommBytes/ReduceSteps describe the distributed path (requests
	// with ranks > 1): the mprt rank count, total collective traffic and
	// the measured reduce-scatter + allgather schedule steps. Absent for
	// single-rank builds.
	Ranks       int   `json:"ranks,omitempty"`
	CommBytes   int64 `json:"commBytes,omitempty"`
	ReduceSteps int64 `json:"reduceSteps,omitempty"`
}

// ScreenSummary reports screening statistics and the admission-time cost
// prediction (kind screen).
type ScreenSummary struct {
	TotalPairs       int     `json:"totalPairs"`
	DistanceSurvived int     `json:"distanceSurvived"`
	SchwarzSurvived  int     `json:"schwarzSurvived"`
	NTasks           int     `json:"ntasks"`
	TotalCostNS      float64 `json:"totalCostNs"`
	MakespanNS       float64 `json:"makespanNs"`
	Threads          int     `json:"threads"`
}

// ScanPointJSON is one point of a solvent-scan profile, shared with
// cmd/solvents -json.
type ScanPointJSON struct {
	R         float64 `json:"r"`      // constrained coordinate, bohr
	Energy    float64 `json:"energy"` // hartree
	Rel       float64 `json:"rel"`    // hartree, vs the first (farthest) point
	Converged bool    `json:"converged"`
}

// ScanSummary is the result of a solvent-scan job: the approach profile
// of Li2O2 towards the solvent's electrophilic centre and the depth of
// the encounter well (the E8 stability gauge).
type ScanSummary struct {
	Solvent  string          `json:"solvent"`
	Points   []ScanPointJSON `json:"points"`
	WellKcal float64         `json:"wellKcal"`
}

// prepared is the admission-time state of a job: the resolved geometry,
// instantiated basis, integral engine, screened pair list and task
// decomposition. Workers reuse it so the screening work done to price
// the job is not repeated for buildjk/screen kinds.
type prepared struct {
	mol   *chem.Molecule
	set   *basis.Set
	eng   *integrals.Engine
	scr   *screen.Result
	tasks []hfx.Task
	// builderKey identifies the (geometry, basis, screening, options)
	// combination a builder is specific to; workers reuse a live builder
	// across consecutive jobs with the same key.
	builderKey string
	// totalNS/makespanNS are the cost-model predictions for one Fock
	// build: serial cost and the LPT makespan on the server's builder
	// thread count.
	totalNS, makespanNS float64
}

// scfIterationsEstimate is the Fock-build count assumed when pricing an
// SCF job: admission ordering needs relative, not absolute, accuracy.
const scfIterationsEstimate = 15

// prepare resolves, screens and prices a normalized request. The
// returned predicted cost is in cost-model nanoseconds. A non-nil
// calibrator sharpens the raw cost model with the per-class correction
// factors learned from measured block walls, so admission ordering and
// the Retry-After hint track what jobs actually cost on this machine.
func prepare(req *JobRequest, threads int, sopts screen.Options, cal *steal.Calibrator) (*prepared, float64, error) {
	mol, err := req.resolveMolecule()
	if err != nil {
		return nil, 0, err
	}
	set, err := basis.Build(req.Basis, mol)
	if err != nil {
		return nil, 0, err
	}
	eng := integrals.NewEngine(set)
	scr := screen.BuildPairList(eng, sopts)
	cm := hfx.DefaultCostModel()
	tasks := hfx.GenerateTasks(set, scr.Pairs, cm, 0)
	costs := hfx.TaskCosts(tasks)
	if cal != nil {
		costs = cal.Scale(hfx.TaskClasses(set, scr.Pairs, tasks), costs)
	}
	p := &prepared{
		mol: mol, set: set, eng: eng, scr: scr, tasks: tasks,
		totalNS:    sched.TotalCost(costs),
		makespanNS: sched.PredictMakespan(sched.LPT, costs, max(threads, 1)),
	}
	// The geometry+method hash doubles as builder identity; the ERI cache
	// budget and the rank count shape the builder (not the result — the
	// distributed build is bitwise-pinned), so they extend the key.
	p.builderKey = fmt.Sprintf("%s;cachemb=%d;ranks=%d",
		req.cacheKey(mol), req.CacheMB, max(req.Ranks, 1))
	predicted := p.makespanNS
	switch req.Kind {
	case KindSCF:
		predicted *= scfIterationsEstimate
	case KindSolventScan:
		predicted *= scfIterationsEstimate * float64(req.Points)
	case KindTrajectory:
		// Each outer step evaluates the full surface once centrally plus
		// 6N finite-difference displacements, each an SCF. Inner cheap
		// steps are priced at zero (the spring reference literally is;
		// the SCF references are bounded by the same term).
		predicted *= scfIterationsEstimate *
			float64(req.MaxSteps) * float64(6*mol.NAtoms()+1)
	case KindScreen:
		// All the work already happened here at admission.
		predicted = 0
	}
	return p, predicted, nil
}

// jobState values.
const (
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// frobenius returns the Frobenius norm of m.
func frobenius(m *linalg.Matrix) float64 { return m.FrobeniusNorm() }

// wellDepth returns the most negative relative energy of a profile in
// kcal/mol (0 when the profile is purely repulsive).
func wellDepth(pts []ScanPointJSON) float64 {
	var well float64
	for _, p := range pts {
		if p.Converged && p.Rel < well {
			well = p.Rel
		}
	}
	return well * phys.HartreeToKcalMol
}

// retryAfterSeconds estimates how long a client should wait before
// resubmitting when the queue is full: the predicted work ahead of the
// retry — everything queued, everything the workers are currently
// executing, and the rejected job itself — divided by the worker count,
// clamped to [1, 300] seconds. In-flight work matters: with an empty
// queue but every worker minutes deep into a running job, the queued
// cost alone would suggest an immediate retry that is guaranteed to
// find the workers still busy.
func retryAfterSeconds(queuedNS, inflightNS, newNS float64, workers int) int {
	s := (queuedNS + inflightNS + newNS) / float64(max(workers, 1)) / float64(time.Second)
	switch {
	case s < 1:
		return 1
	case s > 300:
		return 300
	default:
		return int(s + 0.5)
	}
}

// CanonicalKey returns the canonical result-cache hash of a request —
// the identity a fleet router needs for cache-affinity routing — without
// doing any screening work. The request is normalized and validated on a
// copy; the caller's value is not mutated.
func CanonicalKey(req JobRequest) (string, error) {
	req.normalize()
	if err := req.validate(); err != nil {
		return "", err
	}
	mol, err := req.resolveMolecule()
	if err != nil {
		return "", err
	}
	return req.cacheKey(mol), nil
}

// PriceRequest resolves, screens and prices a request exactly as server
// admission would (sched.PredictMakespan over the screened task costs),
// returning the canonical cache key and the predicted cost in cost-model
// nanoseconds. It is the router-side pricing hook: a cost-weighted fleet
// router calls it once per distinct key and scores instances by
// predicted completion time. The request is normalized on a copy.
func PriceRequest(req JobRequest, threads int) (key string, predictedNS float64, err error) {
	return PriceRequestCalibrated(req, threads, nil)
}

// PriceRequestCalibrated is PriceRequest with the measured cost model: a
// non-nil calibrator rescales every task's raw cost-model prediction by
// its angular-momentum-class correction factor before the makespan is
// computed. A router sharing the calibrator with its instances therefore
// prices jobs in the same units as the servers' queued/in-flight load
// signals, and re-prices automatically when the factors move (see
// Calibrator.Epoch).
func PriceRequestCalibrated(req JobRequest, threads int, cal *steal.Calibrator) (key string, predictedNS float64, err error) {
	req.normalize()
	if err := req.validate(); err != nil {
		return "", 0, err
	}
	sopts := screen.DefaultOptions()
	sopts.Threshold = req.Screen
	prep, predicted, err := prepare(&req, max(threads, 1), sopts, cal)
	if err != nil {
		return "", 0, err
	}
	return req.cacheKey(prep.mol), predicted, nil
}
