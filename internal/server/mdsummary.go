package server

import (
	"crypto/sha256"
	"encoding/hex"
	"time"

	"hfxmd/internal/ckpt"
	"hfxmd/internal/md"
)

// MDSummary is the shared JSON encoding of a BOMD trajectory — the
// md-layer counterpart of SCFSummary, emitted by cmd/aimd -json. The
// FinalStateSha256 fingerprint hashes the canonical encoding of the
// complete restartable state (positions, velocities, forces, energies,
// RNG), so two runs agree on it iff they are bitwise identical — it is
// what the crash-restart smoke test diffs against an uninterrupted
// reference.
type MDSummary struct {
	Steps              int     `json:"steps"`
	TimeFS             float64 `json:"timeFs"`
	NAtoms             int     `json:"natoms"`
	EnergyDriftPerAtom float64 `json:"energyDriftPerAtom"`
	FinalPotential     float64 `json:"finalPotential"`
	FinalTotal         float64 `json:"finalTotal"`
	FinalTempK         float64 `json:"finalTempK"`
	WallMS             float64 `json:"wallMs"`
	WallPerStepMS      float64 `json:"wallPerStepMs"`

	// RespaK is the inner-steps-per-outer-step split of a RESPA run
	// (absent for plain velocity-Verlet BOMD).
	RespaK int `json:"respaK,omitempty"`

	// ResumedFromStep is the restore point of a resumed run (absent for
	// a fresh one); ReplayedSteps counts journal records ahead of the
	// snapshot the restore absorbed.
	ResumedFromStep *int64 `json:"resumedFromStep,omitempty"`
	ReplayedSteps   int64  `json:"replayedSteps,omitempty"`

	// Checkpoint traffic of this run (absent without -ckpt-dir).
	CkptSnapshots      int64 `json:"ckptSnapshots,omitempty"`
	CkptSnapshotBytes  int64 `json:"ckptSnapshotBytes,omitempty"`
	CkptJournalAppends int64 `json:"ckptJournalAppends,omitempty"`
	CkptJournalBytes   int64 `json:"ckptJournalBytes,omitempty"`

	FinalStateSha256 string `json:"finalStateSha256,omitempty"`
}

// SummarizeMD builds the shared wire encoding from a trajectory. wall is
// this process's integration wall time; per-step wall divides by the
// steps actually integrated here (a resumed run's frames start at the
// restore point).
func SummarizeMD(traj *md.Trajectory, wall time.Duration) *MDSummary {
	sum := &MDSummary{
		NAtoms:             len(traj.Mol.Atoms),
		EnergyDriftPerAtom: traj.EnergyDrift(),
		WallMS:             float64(wall) / float64(time.Millisecond),
	}
	if n := len(traj.Frames); n > 0 {
		last := traj.Frames[n-1]
		sum.Steps = last.Step
		sum.TimeFS = last.TimeFS
		sum.FinalPotential = last.Potential
		sum.FinalTotal = last.Total
		sum.FinalTempK = last.TempK
		if n > 1 {
			sum.WallPerStepMS = sum.WallMS / float64(n-1)
		}
	}
	if traj.Final != nil {
		h := sha256.Sum256(ckpt.EncodeState(traj.Final))
		sum.FinalStateSha256 = hex.EncodeToString(h[:])
	}
	return sum
}
