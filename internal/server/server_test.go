package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"hfxmd/internal/store"
)

// mustNew starts a server or fails the test; the journal-less configs
// used here can only fail on journal I/O.
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// ---------------------------------------------------------------------------
// Queue unit tests.

func fakeJob(id string, rank float64, seq int64) *job {
	return &job{id: id, rank: rank, seq: seq, done: make(chan struct{}),
		ctx: context.Background(), cancel: func() {}}
}

func TestQueueShortestPredictedFirst(t *testing.T) {
	q := newQueue(8)
	for i, rank := range []float64{50, 10, 30, 20, 40} {
		if err := q.push(fakeJob(fmt.Sprintf("j%d", i), rank, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"j1", "j3", "j2", "j4", "j0"}
	for _, w := range want {
		j, ok := q.pop()
		if !ok || j.id != w {
			t.Fatalf("pop order wrong: got %v, want %s", j, w)
		}
	}
}

func TestQueueAgingBoundsStarvation(t *testing.T) {
	// rank = predicted + aging·t_enqueue. An expensive job admitted at
	// t=0 must NOT be overtaken by equally-late cheap jobs forever: a
	// cheap job arriving after predicted/aging seconds ranks behind it.
	const aging = 1e8 // ns per queued second
	expensive := fakeJob("expensive", 5e8+aging*0, 0)
	earlyCheap := fakeJob("early-cheap", 1e6+aging*1, 1) // 1s later: overtakes
	lateCheap := fakeJob("late-cheap", 1e6+aging*600, 2) // 10min later: does not
	q := newQueue(8)
	for _, j := range []*job{expensive, earlyCheap, lateCheap} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for i := 0; i < 3; i++ {
		j, _ := q.pop()
		order = append(order, j.id)
	}
	want := "early-cheap,expensive,late-cheap"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("aging order %s, want %s", got, want)
	}
}

func TestQueueFIFOTieBreak(t *testing.T) {
	q := newQueue(4)
	for i := 0; i < 4; i++ {
		q.push(fakeJob(fmt.Sprintf("j%d", i), 7, int64(i)))
	}
	for i := 0; i < 4; i++ {
		j, _ := q.pop()
		if want := fmt.Sprintf("j%d", i); j.id != want {
			t.Fatalf("equal ranks must stay FIFO: got %s, want %s", j.id, want)
		}
	}
}

func TestQueueFullAndDrain(t *testing.T) {
	q := newQueue(2)
	if err := q.push(fakeJob("a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(fakeJob("b", 2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(fakeJob("c", 3, 2)); err != ErrQueueFull {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	q.drain()
	if err := q.push(fakeJob("d", 4, 3)); err != ErrDraining {
		t.Fatalf("want ErrDraining, got %v", err)
	}
	// Drained queues still hand out the remaining jobs, then stop.
	if j, ok := q.pop(); !ok || j.id != "a" {
		t.Fatalf("drained pop 1: %v %v", j, ok)
	}
	if j, ok := q.pop(); !ok || j.id != "b" {
		t.Fatalf("drained pop 2: %v %v", j, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("empty drained queue must report exhaustion")
	}
}

// ---------------------------------------------------------------------------
// Cache unit tests.

// newTestCache builds a memory-only resultCache with the given hot-tier
// byte budget.
func newTestCache(t *testing.T, hotBytes int64) *resultCache {
	t.Helper()
	st, err := store.Open(store.Options{HotBytes: hotBytes})
	if err != nil {
		t.Fatal(err)
	}
	return &resultCache{st: st}
}

func TestCacheByteBudgetEviction(t *testing.T) {
	// Each JSON-encoded JobResult here is a few hundred bytes; a 1 KiB
	// budget holds roughly two, so inserting a third evicts the least
	// recently used one — "b", because the get refreshed "a".
	c := newTestCache(t, 1<<10)
	c.put("a", JobResult{ID: "a", Error: strings.Repeat("x", 200)})
	c.put("b", JobResult{ID: "b", Error: strings.Repeat("x", 200)})
	c.get("a") // refresh a: b is now least recently used
	c.put("c", JobResult{ID: "c", Error: strings.Repeat("x", 200)})
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if res, ok := c.get(k); !ok || res.ID != k {
			t.Fatalf("%s should be cached", k)
		}
	}
	if c.bytes() > 1<<10 {
		t.Fatalf("cache.bytes %d exceeds the 1 KiB budget", c.bytes())
	}
	// A single result bigger than the whole budget is never admitted.
	c.put("huge", JobResult{ID: "huge", Error: strings.Repeat("x", 4<<10)})
	if _, ok := c.get("huge"); ok {
		t.Fatal("over-budget result must not be admitted")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newTestCache(t, -1)
	c.put("a", JobResult{})
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache must not store")
	}
	if c.contains("a") {
		t.Fatal("disabled cache must not report residency")
	}
}

func TestCacheKeyCanonicalization(t *testing.T) {
	key := func(mutate func(*JobRequest)) string {
		r := JobRequest{Kind: KindSCF, System: "water"}
		if mutate != nil {
			mutate(&r)
		}
		r.normalize()
		mol, err := r.resolveMolecule()
		if err != nil {
			t.Fatal(err)
		}
		return r.cacheKey(mol)
	}
	base := key(nil)
	// Options that cannot change the numbers do not change the key.
	if k := key(func(r *JobRequest) { r.TimeoutMS = 5000 }); k != base {
		t.Fatal("timeout must not enter the cache key")
	}
	// Defaults are canonical: explicitly spelling them changes nothing.
	if k := key(func(r *JobRequest) { r.Basis = "STO-3G"; r.Functional = "hf"; r.Screen = 1e-8 }); k != base {
		t.Fatal("explicit defaults must hash like implied defaults")
	}
	// Numerics-affecting fields do.
	if k := key(func(r *JobRequest) { r.Screen = 1e-6 }); k == base {
		t.Fatal("screening threshold must enter the cache key")
	}
	if k := key(func(r *JobRequest) { r.Functional = "PBE0" }); k == base {
		t.Fatal("functional must enter the cache key")
	}
	if k := key(func(r *JobRequest) { r.System = "lih" }); k == base {
		t.Fatal("geometry must enter the cache key")
	}
	if k := key(func(r *JobRequest) { r.Charge = 2 }); k == base {
		t.Fatal("charge must enter the cache key")
	}
	f := false
	if k := key(func(r *JobRequest) { r.DensityWeighted = &f }); k == base {
		t.Fatal("density weighting must enter the cache key")
	}
	if k := key(func(r *JobRequest) { r.Kind = KindBuildJK }); k == base {
		t.Fatal("job kind must enter the cache key")
	}
}

// ---------------------------------------------------------------------------
// End-to-end server tests.

func submit(t *testing.T, ts *httptest.Server, req JobRequest) *JobResult {
	t.Helper()
	res, err := NewClient(ts.URL).Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func counter(s *Server, name string) int64 { return s.Metrics().Counter(name).Value() }

func TestServerSCFJobAndCacheHit(t *testing.T) {
	s := mustNew(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	res := submit(t, ts, JobRequest{Kind: KindSCF, System: "water"})
	if res.State != StateDone || res.CacheHit {
		t.Fatalf("first run: %+v", res)
	}
	if res.SCF == nil || !res.SCF.Converged {
		t.Fatalf("scf payload missing or unconverged: %+v", res.SCF)
	}
	if e := res.SCF.Energy; e > -74.9 || e < -75.1 {
		t.Fatalf("water energy %f out of range", e)
	}
	if res.PredictedCostNS <= 0 {
		t.Fatal("admission must price the job")
	}

	builds := counter(s, "hfx.fock_builds")
	if builds == 0 {
		t.Fatal("builder report was not merged into the server registry")
	}
	// The repeat is answered from the cache: no queueing, no execution,
	// no builder work.
	res2 := submit(t, ts, JobRequest{Kind: KindSCF, System: "water"})
	if !res2.CacheHit || res2.State != StateDone {
		t.Fatalf("second run must be a cache hit: %+v", res2)
	}
	if res2.SCF == nil || res2.SCF.Energy != res.SCF.Energy {
		t.Fatal("cache hit must return the stored payload")
	}
	if got := counter(s, "cache.hits"); got != 1 {
		t.Fatalf("cache.hits %d, want 1", got)
	}
	if got := counter(s, "jobs.executed"); got != 1 {
		t.Fatalf("jobs.executed %d, want 1 (cache hit must not execute)", got)
	}
	if got := counter(s, "hfx.fock_builds"); got != builds {
		t.Fatalf("cache hit did builder work: %d -> %d Fock builds", builds, got)
	}
}

func TestServerScreenAndBuildJKWithBuilderReuse(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, CacheBytes: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	scr := submit(t, ts, JobRequest{Kind: KindScreen, System: "water"})
	if scr.State != StateDone || scr.Screen == nil {
		t.Fatalf("screen job: %+v", scr)
	}
	if scr.Screen.SchwarzSurvived <= 0 || scr.Screen.MakespanNS <= 0 {
		t.Fatalf("screen stats empty: %+v", scr.Screen)
	}

	b1 := submit(t, ts, JobRequest{Kind: KindBuildJK, System: "water"})
	if b1.State != StateDone || b1.Build == nil || b1.Build.KNorm <= 0 {
		t.Fatalf("buildjk job: %+v", b1)
	}
	if b1.Build.ExchangeEnergy >= 0 {
		t.Fatalf("exchange energy must be negative, got %g", b1.Build.ExchangeEnergy)
	}
	// Same geometry/method again (cache disabled): the single worker
	// must reuse its long-lived builder, not build a new one.
	b2 := submit(t, ts, JobRequest{Kind: KindBuildJK, System: "water"})
	if b2.State != StateDone {
		t.Fatalf("second buildjk: %+v", b2)
	}
	if created, reused := counter(s, "builders.created"), counter(s, "builders.reused"); created != 1 || reused != 1 {
		t.Fatalf("builder lifecycle: created=%d reused=%d, want 1/1", created, reused)
	}
	if b1.Build.KNorm != b2.Build.KNorm {
		t.Fatal("repeated build on the same density must be identical")
	}
}

func TestServerSemiDirectBuildJK(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, CacheBytes: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	// cacheMb=0 vs cacheMb=64 are different builders (distinct builder
	// keys) but must produce identical numbers.
	direct := submit(t, ts, JobRequest{Kind: KindBuildJK, System: "water"})
	b1 := submit(t, ts, JobRequest{Kind: KindBuildJK, System: "water", CacheMB: 64})
	if b1.State != StateDone || b1.Build == nil {
		t.Fatalf("semi-direct buildjk: %+v", b1)
	}
	if b1.Build.EriCacheHits != 0 || b1.Build.EriCacheMisses == 0 {
		t.Fatalf("cold cache traffic: hits=%d misses=%d",
			b1.Build.EriCacheHits, b1.Build.EriCacheMisses)
	}
	b2 := submit(t, ts, JobRequest{Kind: KindBuildJK, System: "water", CacheMB: 64})
	if b2.Build.EriCacheHits == 0 || b2.Build.EriCacheMisses != 0 {
		t.Fatalf("warm cache traffic: hits=%d misses=%d",
			b2.Build.EriCacheHits, b2.Build.EriCacheMisses)
	}
	if b2.Build.KNorm != direct.Build.KNorm || b2.Build.JNorm != direct.Build.JNorm {
		t.Fatal("semi-direct replay must match the direct build")
	}
	if got := counter(s, "hfx.ericache.hits"); got != b2.Build.EriCacheHits {
		t.Fatalf("hfx.ericache.hits %d, want %d merged into /metrics", got, b2.Build.EriCacheHits)
	}
	// cacheMb participates in the builder key: direct + semi-direct on one
	// worker means two builders were created, plus one warm reuse.
	if created, reused := counter(s, "builders.created"), counter(s, "builders.reused"); created != 2 || reused != 1 {
		t.Fatalf("builder lifecycle: created=%d reused=%d, want 2/1", created, reused)
	}
}

func TestServerDistributedBuildJK(t *testing.T) {
	// BuilderThreads 4 makes the single-rank builder's global worker count
	// equal to the distributed build's 4 ranks × 1 thread — the
	// configuration the bitwise contract pins.
	s := mustNew(t, Config{Workers: 1, CacheBytes: -1, BuilderThreads: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	single := submit(t, ts, JobRequest{Kind: KindBuildJK, System: "water"})
	if single.State != StateDone || single.Build == nil || single.Build.Ranks != 0 {
		t.Fatalf("single-rank buildjk: %+v", single)
	}
	dist := submit(t, ts, JobRequest{Kind: KindBuildJK, System: "water", Ranks: 4})
	if dist.State != StateDone || dist.Build == nil {
		t.Fatalf("distributed buildjk: %+v", dist)
	}
	if dist.Build.Ranks != 4 || dist.Build.CommBytes <= 0 || dist.Build.ReduceSteps <= 0 {
		t.Fatalf("distributed summary missing traffic: %+v", dist.Build)
	}
	// The bitwise contract holds through the service path: the ranks=4
	// build must reproduce the single-rank norms and exchange energy
	// exactly, not approximately.
	if dist.Build.JNorm != single.Build.JNorm || dist.Build.KNorm != single.Build.KNorm {
		t.Fatalf("distributed norms diverged: J %x vs %x, K %x vs %x",
			dist.Build.JNorm, single.Build.JNorm, dist.Build.KNorm, single.Build.KNorm)
	}
	if dist.Build.ExchangeEnergy != single.Build.ExchangeEnergy {
		t.Fatal("distributed exchange energy diverged")
	}

	// Same request again: the worker must reuse its cached DistBuilder.
	submit(t, ts, JobRequest{Kind: KindBuildJK, System: "water", Ranks: 4})
	if created, reused := counter(s, "builders.created"), counter(s, "builders.reused"); created != 2 || reused != 1 {
		t.Fatalf("builder lifecycle: created=%d reused=%d, want 2/1", created, reused)
	}

	// Per-rank phase walls and collective traffic land in /metrics.
	for r := 0; r < 4; r++ {
		if s.Metrics().Timer.Get(fmt.Sprintf("dist.rank%d.compute", r)) <= 0 {
			t.Fatalf("rank %d compute phase missing from registry", r)
		}
		if s.Metrics().Timer.Get(fmt.Sprintf("dist.rank%d.comm", r)) <= 0 {
			t.Fatalf("rank %d comm phase missing from registry", r)
		}
	}
	if counter(s, "mprt.comm_bytes") != 2*dist.Build.CommBytes {
		t.Fatalf("mprt.comm_bytes %d, want %d (two identical builds)",
			counter(s, "mprt.comm_bytes"), 2*dist.Build.CommBytes)
	}
	if counter(s, "mprt.reduce_steps") != 2*dist.Build.ReduceSteps {
		t.Fatalf("mprt.reduce_steps %d, want %d", counter(s, "mprt.reduce_steps"), 2*dist.Build.ReduceSteps)
	}

	// Validation: ranks is buildjk-only and bounded.
	for _, bad := range []JobRequest{
		{Kind: KindSCF, System: "water", Ranks: 4},
		{Kind: KindBuildJK, System: "water", Ranks: -1},
		{Kind: KindBuildJK, System: "water", Ranks: maxJobRanks + 1},
	} {
		bad.normalize()
		if err := bad.validate(); err == nil {
			t.Fatalf("request %+v must be rejected", bad)
		}
	}
}

func TestServerJobDeadline(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, CacheBytes: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	res := submit(t, ts, JobRequest{Kind: KindSCF, System: "watercluster", NWater: 2, TimeoutMS: 5})
	if res.State != StateCancelled {
		t.Fatalf("deadline job state %q, want cancelled (err %q)", res.State, res.Error)
	}
	if !strings.Contains(res.Error, "deadline") {
		t.Fatalf("error should mention the deadline: %q", res.Error)
	}
}

func TestServerValidationAndMethods(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	post := func(body string) int {
		t.Helper()
		res, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		return res.StatusCode
	}
	for _, body := range []string{
		`{"kind":"nope"}`,
		`{"system":"unobtainium"}`,
		`{"functional":"B3LYP"}`,
		`{"kind":"solvent-scan","solvent":"H2O"}`,
		`{"system":"water","xyz":"1\n\nH 0 0 0\n"}`,
		`{not json`,
	} {
		if code := post(body); code != http.StatusBadRequest {
			t.Fatalf("body %s: status %d, want 400", body, code)
		}
	}
	res, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs: %d, want 405", res.StatusCode)
	}

	// Metrics render in both formats.
	mres, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(mres.Body)
	mres.Body.Close()
	if err != nil || !strings.Contains(string(text), "gauge") {
		t.Fatalf("text metrics unreadable: %v\n%s", err, text)
	}
	m, err := NewClient(ts.URL).MetricsJSON(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m["counters"]; !ok {
		t.Fatalf("json metrics missing counters: %v", m)
	}
}

// TestServerLifecycle is the drain/backpressure/cancellation test of the
// issue: fill the queue to get a 429, cancel a queued job, then shut
// down and assert that in-flight work completes, every builder is
// closed, and no goroutines leak.
func TestServerLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()

	block := make(chan struct{})
	running := make(chan string, 16)
	s := mustNew(t, Config{
		Workers:  1,
		QueueCap: 1,
		CacheBytes: -1,
		BeforeRun: func(kind string) {
			running <- kind
			<-block
		},
	})
	ts := httptest.NewServer(s.Handler())

	// Job A occupies the single worker (held inside BeforeRun).
	resA := make(chan *JobResult, 1)
	go func() {
		r, err := NewClient(ts.URL).Submit(context.Background(), JobRequest{Kind: KindSCF, System: "water"})
		if err != nil {
			t.Errorf("job A: %v", err)
			r = &JobResult{}
		}
		resA <- r
	}()
	select {
	case <-running:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never picked up job A")
	}

	// Job B fills the queue (capacity 1); its context will be cancelled
	// while it waits.
	ctxB, cancelB := context.WithCancel(context.Background())
	errB := make(chan error, 1)
	go func() {
		_, err := NewClient(ts.URL).Submit(ctxB, JobRequest{Kind: KindSCF, System: "lih"})
		errB <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("job B never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Job C finds the queue full: 429 with a Retry-After hint.
	_, err := NewClient(ts.URL).Submit(context.Background(), JobRequest{Kind: KindSCF, System: "he"})
	busy, ok := err.(*BusyError)
	if !ok {
		t.Fatalf("job C should hit a full queue, got %v", err)
	}
	if busy.RetryAfter < time.Second {
		t.Fatalf("Retry-After %v, want >= 1s", busy.RetryAfter)
	}
	if got := counter(s, "jobs.rejected_full"); got != 1 {
		t.Fatalf("jobs.rejected_full %d, want 1", got)
	}

	// Cancel queued job B, release the worker, and drain.
	cancelB()
	if err := <-errB; err == nil {
		t.Fatal("job B's client should observe its cancellation")
	}
	close(block)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// In-flight job A completed despite the drain.
	select {
	case r := <-resA:
		if r.State != StateDone {
			t.Fatalf("in-flight job A must complete through the drain: %+v", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("job A never finished")
	}
	if got := counter(s, "jobs.cancelled"); got != 1 {
		t.Fatalf("jobs.cancelled %d, want 1 (queued job B)", got)
	}
	// Submissions after the drain are refused.
	if _, err := NewClient(ts.URL).Submit(context.Background(), JobRequest{Kind: KindSCF, System: "water"}); err == nil {
		t.Fatal("draining server must refuse new jobs")
	}
	// Every builder is closed.
	if open := s.Metrics().Gauge("builders.open").Value(); open != 0 {
		t.Fatalf("builders.open %d after shutdown, want 0", open)
	}
	ts.Close()

	// No goroutine leak: workers, builder pools and handlers are gone.
	deadline = time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerConcurrentJobs drives 8 concurrent jobs of mixed kinds
// through a 4-worker server — the race-cleanliness criterion (run under
// -race by scripts/check.sh).
func TestServerConcurrentJobs(t *testing.T) {
	s := mustNew(t, Config{Workers: 4, CacheBytes: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	reqs := []JobRequest{
		{Kind: KindSCF, System: "water"},
		{Kind: KindSCF, System: "h2"},
		{Kind: KindSCF, System: "he"},
		{Kind: KindSCF, System: "lih"},
		{Kind: KindBuildJK, System: "water"},
		{Kind: KindBuildJK, System: "ch4"},
		{Kind: KindScreen, System: "lif"},
		{Kind: KindScreen, System: "watercluster", NWater: 2},
	}
	var wg sync.WaitGroup
	results := make([]*JobResult, len(reqs))
	errs := make([]error, len(reqs))
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req JobRequest) {
			defer wg.Done()
			results[i], errs[i] = NewClient(ts.URL).Submit(context.Background(), req)
		}(i, req)
	}
	wg.Wait()
	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("job %d (%s %s): %v", i, reqs[i].Kind, reqs[i].System, errs[i])
		}
		if results[i].State != StateDone {
			t.Fatalf("job %d (%s %s): %+v", i, reqs[i].Kind, reqs[i].System, results[i])
		}
	}
	if got := counter(s, "jobs.executed"); got != int64(len(reqs)) {
		t.Fatalf("jobs.executed %d, want %d", got, len(reqs))
	}
}

func TestServerResultJSONRoundTrip(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	res := submit(t, ts, JobRequest{Kind: KindSCF, System: "h2"})
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back JobResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.SCF == nil || back.SCF.Energy != res.SCF.Energy || back.CacheKey != res.CacheKey {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, res)
	}
}
