package server

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func trajReq() JobRequest {
	return JobRequest{Kind: KindTrajectory, System: "h2", MaxSteps: 3, RespaK: 2, Ref: "spring"}
}

func TestServerTrajectoryJob(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	res := submit(t, ts, trajReq())
	if res.State != StateDone || res.CacheHit {
		t.Fatalf("first run: state %q (err %q)", res.State, res.Error)
	}
	tr := res.Traj
	if tr == nil {
		t.Fatal("done trajectory job must carry a Traj payload")
	}
	if tr.OuterSteps != 3 || tr.RespaK != 2 || tr.Ref != "spring" || tr.NAtoms != 2 {
		t.Fatalf("campaign header wrong: %+v", tr)
	}
	if len(tr.Steps) != 3 {
		t.Fatalf("want 3 streamed outer-step records, got %d", len(tr.Steps))
	}
	for i, st := range tr.Steps {
		if st.Step != (i+1)*2 {
			t.Fatalf("step record %d at inner step %d, want %d (outer boundaries)", i, st.Step, (i+1)*2)
		}
	}
	if tr.FinalStateSha256 == "" {
		t.Fatal("campaign must fingerprint its final restartable state")
	}
	if tr.SCFIterations == 0 || tr.PairListBuilds == 0 {
		t.Fatalf("session counters missing: %+v", tr)
	}
	if tr.WarmStarts == 0 {
		t.Fatalf("consecutive outer steps should warm-start from the previous density: %+v", tr)
	}
	if got := counter(s, "traj.outer_steps"); got != 3 {
		t.Fatalf("traj.outer_steps = %d, want 3", got)
	}

	// The repeat is answered from the result cache with the same bits.
	res2 := submit(t, ts, trajReq())
	if !res2.CacheHit || res2.Traj == nil || res2.Traj.FinalStateSha256 != tr.FinalStateSha256 {
		t.Fatalf("repeat must be a cache hit with the stored payload: %+v", res2)
	}
}

func TestServerTrajectoryValidation(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	for _, mut := range []func(*JobRequest){
		func(r *JobRequest) { r.MaxSteps = maxTrajectorySteps + 1 },
		func(r *JobRequest) { r.RespaK = maxTrajectoryK + 1 },
		func(r *JobRequest) { r.Ref = "magic" },
		func(r *JobRequest) { r.DtFS = -1 },
	} {
		req := trajReq()
		mut(&req)
		if _, err := NewClient(ts.URL).Submit(context.Background(), req); err == nil {
			t.Fatalf("invalid request %+v must be rejected", req)
		}
	}
}

// TestServerTrajectoryCancelNamesStep: a deadline mid-campaign must
// surface as a cancelled job whose error identifies the MD step the
// trajectory stopped at (the typed *md.StepError's text).
func TestServerTrajectoryCancelNamesStep(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	req := JobRequest{Kind: KindTrajectory, System: "water", MaxSteps: 32, RespaK: 2,
		Ref: "spring", TimeoutMS: 300}
	res := submit(t, ts, req)
	if res.State != StateCancelled {
		t.Fatalf("state %q, want cancelled (err %q)", res.State, res.Error)
	}
	if !strings.Contains(res.Error, "step") {
		t.Fatalf("cancellation error should name the step: %q", res.Error)
	}
	if res.Traj == nil {
		t.Fatal("cancelled campaign should still report the steps it completed")
	}
}

// TestServerTrajectoryJournalReplay: a trajectory job journaled as
// outstanding by a crashed server is re-executed on the next boot (the
// journal stores the full request, so the new kind needs no special
// replay support — this pins that).
func TestServerTrajectoryJournalReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	jl, err := openJobJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	req := trajReq()
	req.normalize()
	if _, err := jl.submit("job-000001", &req); err != nil {
		t.Fatal(err)
	}
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}

	s := mustNew(t, Config{Workers: 1, JournalPath: path})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())
	deadline := time.Now().Add(30 * time.Second)
	for counter(s, "jobs.done") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("replayed trajectory job never completed")
		}
		time.Sleep(time.Millisecond)
	}
	if got := counter(s, "journal.replayed"); got != 1 {
		t.Fatalf("journal.replayed = %d, want 1", got)
	}
	// The replayed execution filled the cache: a fresh submit hits.
	hit := submit(t, ts, trajReq())
	if !hit.CacheHit || hit.Traj == nil {
		t.Fatalf("resubmit after replay must be a cache hit: %+v", hit)
	}
}
