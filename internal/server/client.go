package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client is the Go client for an hfxd server, shared by cmd/hfxd's
// -submit mode and the smoke test; library users reach it through the
// hfxmd facade.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// BusyError reports a 429 admission rejection with the server's
// suggested backoff.
type BusyError struct{ RetryAfter time.Duration }

// Error implements error.
func (e *BusyError) Error() string {
	return fmt.Sprintf("server busy, retry after %v", e.RetryAfter)
}

// DrainingError reports a 503 rejection from a server that has stopped
// accepting jobs. It is typed — unlike a generic transport error —
// because the right reaction differs: a fleet router fails the job over
// to another instance immediately, while a busy rejection is worth a
// backoff-and-retry against the same instance.
type DrainingError struct{ Msg string }

// Error implements error.
func (e *DrainingError) Error() string {
	if e.Msg == "" {
		return "server is draining"
	}
	return "server is draining: " + e.Msg
}

// Submit posts one job and waits for its result. Job-level outcomes
// (done, failed, cancelled) come back as a JobResult with State set;
// transport and admission failures come back as errors — a full queue is
// a *BusyError carrying the Retry-After hint, a draining server a
// *DrainingError the caller can fail over on.
func (c *Client) Submit(ctx context.Context, req JobRequest) (*JobResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	switch hres.StatusCode {
	case http.StatusOK:
		var res JobResult
		if err := json.NewDecoder(hres.Body).Decode(&res); err != nil {
			return nil, fmt.Errorf("decoding job result: %w", err)
		}
		return &res, nil
	case http.StatusTooManyRequests:
		secs, _ := strconv.Atoi(hres.Header.Get("Retry-After"))
		if secs <= 0 {
			secs = 1
		}
		return nil, &BusyError{RetryAfter: time.Duration(secs) * time.Second}
	case http.StatusServiceUnavailable:
		var body struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(io.LimitReader(hres.Body, 4096)).Decode(&body)
		return nil, &DrainingError{Msg: body.Error}
	default:
		msg, _ := io.ReadAll(io.LimitReader(hres.Body, 4096))
		return nil, fmt.Errorf("server returned %s: %s", hres.Status, bytes.TrimSpace(msg))
	}
}

// RetryPolicy shapes SubmitRetry's reaction to 429 rejections.
type RetryPolicy struct {
	// MaxAttempts bounds the total submit attempts (default 4).
	MaxAttempts int
	// MaxBackoff caps a single wait (default 2s). The wait itself is the
	// server's Retry-After hint scaled by BackoffScale.
	MaxBackoff time.Duration
	// BackoffScale scales the server's Retry-After hint; in-process
	// harnesses use small values so a 1 s hint does not dominate the run
	// (default 1.0).
	BackoffScale float64
}

func (p *RetryPolicy) fillDefaults() {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.BackoffScale == 0 {
		p.BackoffScale = 1
	}
}

// SubmitRetry posts a job, backing off and retrying on BusyError per the
// policy. It is the client loop synthetic-load generators use: busy
// rejections are waited out (honouring the server's Retry-After hint),
// while DrainingError returns immediately — one instance cannot wait a
// drain out, the caller must fail over. The attempt count (≥ 1) is
// returned alongside the result so callers can account retries.
func (c *Client) SubmitRetry(ctx context.Context, req JobRequest, pol RetryPolicy) (*JobResult, int, error) {
	pol.fillDefaults()
	var lastErr error
	for attempt := 1; ; attempt++ {
		res, err := c.Submit(ctx, req)
		if err == nil {
			return res, attempt, nil
		}
		lastErr = err
		busy, ok := err.(*BusyError)
		if !ok || attempt >= pol.MaxAttempts {
			return nil, attempt, lastErr
		}
		wait := time.Duration(float64(busy.RetryAfter) * pol.BackoffScale)
		if wait > pol.MaxBackoff {
			wait = pol.MaxBackoff
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, attempt, ctx.Err()
		}
	}
}

// MetricsJSON fetches the structured /metrics snapshot.
func (c *Client) MetricsJSON(ctx context.Context) (map[string]any, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics?format=json", nil)
	if err != nil {
		return nil, err
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics returned %s", hres.Status)
	}
	var m map[string]any
	if err := json.NewDecoder(hres.Body).Decode(&m); err != nil {
		return nil, err
	}
	return m, nil
}

// Health probes /healthz.
func (c *Client) Health(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %s", hres.Status)
	}
	return nil
}
