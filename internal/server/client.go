package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client is the Go client for an hfxd server, shared by cmd/hfxd's
// -submit mode and the smoke test; library users reach it through the
// hfxmd facade.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// BusyError reports a 429 admission rejection with the server's
// suggested backoff.
type BusyError struct{ RetryAfter time.Duration }

// Error implements error.
func (e *BusyError) Error() string {
	return fmt.Sprintf("server busy, retry after %v", e.RetryAfter)
}

// Submit posts one job and waits for its result. Job-level outcomes
// (done, failed, cancelled) come back as a JobResult with State set;
// transport and admission failures come back as errors — a full queue is
// a *BusyError carrying the Retry-After hint.
func (c *Client) Submit(ctx context.Context, req JobRequest) (*JobResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	switch hres.StatusCode {
	case http.StatusOK:
		var res JobResult
		if err := json.NewDecoder(hres.Body).Decode(&res); err != nil {
			return nil, fmt.Errorf("decoding job result: %w", err)
		}
		return &res, nil
	case http.StatusTooManyRequests:
		secs, _ := strconv.Atoi(hres.Header.Get("Retry-After"))
		if secs <= 0 {
			secs = 1
		}
		return nil, &BusyError{RetryAfter: time.Duration(secs) * time.Second}
	default:
		msg, _ := io.ReadAll(io.LimitReader(hres.Body, 4096))
		return nil, fmt.Errorf("server returned %s: %s", hres.Status, bytes.TrimSpace(msg))
	}
}

// MetricsJSON fetches the structured /metrics snapshot.
func (c *Client) MetricsJSON(ctx context.Context) (map[string]any, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics?format=json", nil)
	if err != nil {
		return nil, err
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics returned %s", hres.Status)
	}
	var m map[string]any
	if err := json.NewDecoder(hres.Body).Decode(&m); err != nil {
		return nil, err
	}
	return m, nil
}

// Health probes /healthz.
func (c *Client) Health(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %s", hres.Status)
	}
	return nil
}
