package server

import (
	"context"
	"math"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"hfxmd/internal/basis"
	"hfxmd/internal/chem"
	"hfxmd/internal/scf"
)

// ---------------------------------------------------------------------------
// Tiered-store integration: restart warm hits, ERI spill/warm, prefix reuse.

func TestStoreDirMustDifferFromJournalDir(t *testing.T) {
	dir := t.TempDir()
	_, err := New(Config{
		Workers:     1,
		JournalPath: filepath.Join(dir, "jobs.journal"),
		StoreDir:    dir,
	})
	if err == nil || !strings.Contains(err.Error(), "distinct") {
		t.Fatalf("same dir for journal and store must be rejected, got %v", err)
	}
	// Distinct directories are fine.
	s := mustNew(t, Config{
		Workers:     1,
		JournalPath: filepath.Join(dir, "journal", "jobs.journal"),
		StoreDir:    filepath.Join(dir, "store"),
	})
	s.Shutdown(context.Background())
}

func TestRestartAnswersFromDiskWithZeroFockBuilds(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "store")
	req := JobRequest{Kind: KindSCF, System: "water", Functional: "PBE0"}

	s1 := mustNew(t, Config{Workers: 1, StoreDir: storeDir})
	ts1 := httptest.NewServer(s1.Handler())
	r1 := submit(t, ts1, req)
	ts1.Close()
	if r1.State != StateDone || r1.CacheHit || r1.SCF == nil {
		t.Fatalf("first run: %+v", r1)
	}
	if counter(s1, "hfx.fock_builds") == 0 {
		t.Fatal("first run should have built Fock matrices")
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A brand-new server over the same store directory must answer the
	// repeated canonical job from the disk tier: cache hit, and the
	// restarted process never runs a Fock build.
	s2 := mustNew(t, Config{Workers: 1, StoreDir: storeDir})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Shutdown(context.Background())
	r2 := submit(t, ts2, req)
	if r2.State != StateDone || !r2.CacheHit {
		t.Fatalf("restarted server should serve a disk-warm hit: %+v", r2)
	}
	if got := counter(s2, "hfx.fock_builds"); got != 0 {
		t.Fatalf("restarted server ran %d Fock builds answering a stored job", got)
	}
	if got := counter(s2, "store.disk_hits"); got == 0 {
		t.Fatal("disk tier never hit on the restarted server")
	}
	if r2.SCF.Energy != r1.SCF.Energy || r2.CacheKey != r1.CacheKey {
		t.Fatalf("disk-warm result drifted: %+v vs %+v", r2.SCF, r1.SCF)
	}
}

func TestERISpillWarmsReplacementBuilder(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, StoreDir: filepath.Join(t.TempDir(), "store")})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	// Fill the first builder's ERI cache.
	b1 := submit(t, ts, JobRequest{Kind: KindBuildJK, System: "water", CacheMB: 64})
	if b1.State != StateDone || b1.Build == nil {
		t.Fatalf("cold buildjk: %+v", b1)
	}
	if b1.Build.EriCacheMisses == 0 || b1.Build.EriCacheHits != 0 {
		t.Fatalf("cold cache traffic: hits=%d misses=%d",
			b1.Build.EriCacheHits, b1.Build.EriCacheMisses)
	}

	// MaxIter is numerically irrelevant for buildjk but participates in
	// the builder key, so the single worker evicts its builder (spilling
	// the filled ERI cache to the store) and creates a replacement with
	// the same spill key — which must warm from disk and replay every
	// quartet as a hit, bitwise identical to the cold build.
	b2 := submit(t, ts, JobRequest{Kind: KindBuildJK, System: "water", CacheMB: 64, MaxIter: 7})
	if b2.State != StateDone || b2.CacheHit {
		t.Fatalf("replacement buildjk: %+v", b2)
	}
	if b2.Build.EriCacheMisses != 0 || b2.Build.EriCacheHits == 0 {
		t.Fatalf("warmed builder traffic: hits=%d misses=%d",
			b2.Build.EriCacheHits, b2.Build.EriCacheMisses)
	}
	if b2.Build.JNorm != b1.Build.JNorm || b2.Build.KNorm != b1.Build.KNorm {
		t.Fatal("spill-warmed build must be bitwise identical to the cold build")
	}
	if spills, warmed := counter(s, "eri.spills"), counter(s, "eri.warmed_builders"); spills != 1 || warmed != 1 {
		t.Fatalf("spill lifecycle: spills=%d warmed=%d, want 1/1", spills, warmed)
	}
	if counter(s, "eri.spill_bytes") == 0 {
		t.Fatal("eri.spill_bytes not accounted")
	}
}

func TestPrefixDensitySeedsRelatedJob(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, StoreDir: filepath.Join(t.TempDir(), "store")})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	r1 := submit(t, ts, JobRequest{Kind: KindSCF, System: "water"})
	if r1.State != StateDone || r1.SCF == nil || !r1.SCF.Converged {
		t.Fatalf("first scf: %+v", r1)
	}
	if counter(s, "prefix.density_stored") == 0 {
		t.Fatal("converged density was not stored")
	}

	// Different canonical job (MaxIter changes the cache key) but same
	// model chemistry and composition: the stored density seeds it, so
	// it converges in fewer iterations to the same energy.
	r2 := submit(t, ts, JobRequest{Kind: KindSCF, System: "water", MaxIter: 50})
	if r2.State != StateDone || r2.CacheHit || r2.SCF == nil || !r2.SCF.Converged {
		t.Fatalf("seeded scf: %+v", r2)
	}
	if counter(s, "prefix.density_hits") == 0 {
		t.Fatal("prefix density never hit")
	}
	if r2.SCF.Iterations >= r1.SCF.Iterations {
		t.Fatalf("seeded run took %d iterations, cold run %d — no warm-start win",
			r2.SCF.Iterations, r1.SCF.Iterations)
	}
	if math.Abs(r2.SCF.Energy-r1.SCF.Energy) > 1e-8 {
		t.Fatalf("seeded energy %g drifted from cold energy %g", r2.SCF.Energy, r1.SCF.Energy)
	}
}

func TestDensityChainsAcrossGeometries(t *testing.T) {
	// The scan/MD scenario behind prefix reuse: geometries that differ
	// only in coordinates share a prefix key, so point i seeds point i+1.
	// (A real solvent-scan job exercises the same path but is far too
	// expensive for a unit test; this pins the chaining directly.)
	s := mustNew(t, Config{Workers: 1, StoreDir: filepath.Join(t.TempDir(), "store")})
	defer s.Shutdown(context.Background())

	req := JobRequest{Kind: KindSCF, System: "water"}
	req.normalize()
	molA := chem.Water()
	molB := chem.Water()
	for i := range molB.Atoms {
		molB.Atoms[i].Pos[2] += 0.05 // bohr: same composition, new geometry
	}

	cfgA := s.scfConfig(&req)
	set, err := basis.Build(req.Basis, molA)
	if err != nil {
		t.Fatal(err)
	}
	keyA := s.seedDensity(&cfgA, molA, set.NBasis)
	if cfgA.InitialDensity != nil {
		t.Fatal("empty store must not seed")
	}
	resA, err := scf.Run(molA, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	s.storeDensity(keyA, resA)

	cfgB := s.scfConfig(&req)
	keyB := s.seedDensity(&cfgB, molB, set.NBasis)
	if keyB != keyA {
		t.Fatalf("perturbed geometry changed the prefix key: %s vs %s", keyB, keyA)
	}
	if cfgB.InitialDensity == nil || !cfgB.Incremental {
		t.Fatal("neighbouring geometry's density should seed the next point")
	}
	resB, err := scf.Run(molB, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if !resB.Converged || resB.Iterations >= resA.Iterations {
		t.Fatalf("seeded neighbour took %d iterations (cold %d)",
			resB.Iterations, resA.Iterations)
	}
	if got := counter(s, "prefix.density_hits"); got != 1 {
		t.Fatalf("prefix.density_hits = %d, want 1", got)
	}
}
