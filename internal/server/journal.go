package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// The crash-safe job journal. hfxd's HTTP API is synchronous — a client
// holds its request open until the job finishes — but an accepted job
// represents real promised work: it may be queued behind minutes of
// other jobs, and its result is what fills the LRU cache other clients
// hit. If the daemon dies, every accepted-but-unfinished job would
// silently vanish. The journal makes admission durable: one framed
// record per accepted job (the full request) and one per finished job;
// on boot the submits without a matching finish are re-enqueued and run
// to completion, landing their results in the cache exactly as if the
// crash had not happened.
//
// On-disk format: the magic "HFXDJNL\x01" followed by framed records,
// each  size uint32 LE | crc32(payload) IEEE | payload (JSON). A torn
// tail — a crash mid-append — fails the size or CRC check; the file is
// truncated back to its valid prefix before reopening for append, so
// later records can never hide behind torn bytes. Compaction (boot, and
// periodically once enough finish records accumulate) rewrites the file
// with only the outstanding submits via temp-file + fsync + rename.
const jnlMagic = "HFXDJNL\x01"

// journalRecord is one journal entry.
type journalRecord struct {
	// Op is "submit" (Req holds the accepted request) or "finish".
	Op string `json:"op"`
	// ID is the server-assigned job ID the two records share.
	ID string `json:"id"`
	// Req is the normalized accepted request (submit records only).
	Req *JobRequest `json:"req,omitempty"`
}

// compactEvery is the finish-record count that triggers an in-flight
// compaction, bounding journal growth on a long-lived daemon.
const compactEvery = 1024

// jobJournal is the append handle plus the in-memory outstanding set
// (submits without a finish), which is what compaction rewrites.
type jobJournal struct {
	mu          sync.Mutex
	f           *os.File
	path        string
	outstanding map[string]*JobRequest
	order       []string // outstanding IDs in submit order
	finishes    int      // finish records since the last compaction
}

// frameRecord encodes one record with its size+CRC header.
func frameRecord(rec journalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	return buf, nil
}

// scanRecords walks the framed records in b (which excludes the magic)
// and returns the decoded valid prefix plus its byte length.
func scanRecords(b []byte) ([]journalRecord, int) {
	var recs []journalRecord
	off := 0
	for off+8 <= len(b) {
		size := int(binary.LittleEndian.Uint32(b[off:]))
		if off+8+size > len(b) {
			break // torn tail
		}
		payload := b[off+8 : off+8+size]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[off+4:]) {
			break
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		recs = append(recs, rec)
		off += 8 + size
	}
	return recs, off
}

// openJobJournal opens (or creates) the journal at path, truncates any
// torn tail, and returns the handle with its outstanding set rebuilt
// from the valid records.
func openJobJournal(path string) (*jobJournal, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	jl := &jobJournal{path: path, outstanding: map[string]*JobRequest{}}
	b, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		if err := jl.rewrite(nil); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, err
	default:
		if len(b) < len(jnlMagic) || string(b[:len(jnlMagic)]) != jnlMagic {
			return nil, fmt.Errorf("server: %s is not a job journal", path)
		}
		recs, valid := scanRecords(b[len(jnlMagic):])
		finished := map[string]bool{}
		for _, r := range recs {
			if r.Op == "finish" {
				finished[r.ID] = true
			}
		}
		for _, r := range recs {
			if r.Op == "submit" && r.Req != nil && !finished[r.ID] {
				if _, dup := jl.outstanding[r.ID]; !dup {
					jl.outstanding[r.ID] = r.Req
					jl.order = append(jl.order, r.ID)
				}
			}
		}
		// Truncate the torn tail before reopening for append, so new
		// records never land beyond bytes the scanner cannot reach.
		if err := os.Truncate(path, int64(len(jnlMagic)+valid)); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		jl.f = f
	}
	return jl, nil
}

// rewrite atomically replaces the journal with the given outstanding
// submit records (temp + fsync + rename) and reopens it for append.
func (jl *jobJournal) rewrite(ids []string) error {
	if jl.f != nil {
		jl.f.Close()
		jl.f = nil
	}
	tmp := jl.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(jnlMagic)); err == nil {
		for _, id := range ids {
			var buf []byte
			if buf, err = frameRecord(journalRecord{Op: "submit", ID: id, Req: jl.outstanding[id]}); err != nil {
				break
			}
			if _, err = f.Write(buf); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, jl.path); err != nil {
		return err
	}
	if d, err := os.Open(filepath.Dir(jl.path)); err == nil {
		d.Sync()
		d.Close()
	}
	out, err := os.OpenFile(jl.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	jl.f = out
	jl.finishes = 0
	return nil
}

// appendLocked writes one fsynced record; callers hold jl.mu.
func (jl *jobJournal) appendLocked(rec journalRecord) (int, error) {
	buf, err := frameRecord(rec)
	if err != nil {
		return 0, err
	}
	if _, err := jl.f.Write(buf); err != nil {
		return 0, err
	}
	return len(buf), jl.f.Sync()
}

// submit records an accepted job.
func (jl *jobJournal) submit(id string, req *JobRequest) (int, error) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if _, dup := jl.outstanding[id]; !dup {
		jl.outstanding[id] = req
		jl.order = append(jl.order, id)
	}
	return jl.appendLocked(journalRecord{Op: "submit", ID: id, Req: req})
}

// finish records a terminal job state and compacts once enough finish
// records have accumulated. It reports whether a compaction ran.
func (jl *jobJournal) finish(id string) (int, bool, error) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if _, ok := jl.outstanding[id]; ok {
		delete(jl.outstanding, id)
		for i, oid := range jl.order {
			if oid == id {
				jl.order = append(jl.order[:i], jl.order[i+1:]...)
				break
			}
		}
	}
	n, err := jl.appendLocked(journalRecord{Op: "finish", ID: id})
	if err != nil {
		return n, false, err
	}
	jl.finishes++
	if jl.finishes >= compactEvery {
		return n, true, jl.rewrite(jl.order)
	}
	return n, false, nil
}

// compact rewrites the journal down to the outstanding submits.
func (jl *jobJournal) compact() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.rewrite(jl.order)
}

// snapshotOutstanding returns the outstanding (id, request) pairs in
// submit order.
func (jl *jobJournal) snapshotOutstanding() []journalRecord {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	recs := make([]journalRecord, 0, len(jl.order))
	for _, id := range jl.order {
		recs = append(recs, journalRecord{Op: "submit", ID: id, Req: jl.outstanding[id]})
	}
	return recs
}

// close releases the file handle.
func (jl *jobJournal) close() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return nil
	}
	err := jl.f.Close()
	jl.f = nil
	return err
}
