package md

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hfxmd/internal/basis"
	"hfxmd/internal/chem"
	"hfxmd/internal/hfx"
	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
	"hfxmd/internal/scf"
	"hfxmd/internal/screen"
	"hfxmd/internal/store"
)

// SessionOptions configures cross-step reuse.
type SessionOptions struct {
	// MaxDisplacement is the pair-list invalidation bound in bohr
	// (default 0.25): while no atom has moved farther than this from the
	// geometry the screening pair list was built at, consecutive steps
	// reuse the list (and the builder's task schedule and ERI-cache
	// admission plan) instead of re-screening. Past the bound the list,
	// builder and reference geometry are rebuilt. MD steps move atoms by
	// ~1e-2 bohr, so one list typically serves tens of steps.
	MaxDisplacement float64
	// Store, if non-nil, seeds the *first* step of a session from a
	// persisted prefix density (the same "density:" namespace hfxd and
	// StoredSCFPotential share) and persists each converged density
	// back, so trajectories warm-start across processes and fleet
	// instances. Within a session the in-memory previous-step density
	// always wins — it is one step old, the best seed there is.
	Store *store.Store
}

// SessionStats counts the session's reuse traffic.
type SessionStats struct {
	// Runs counts central SCF evaluations; WarmStarts of them were
	// seeded from the previous step's density, StoreSeeds from a
	// persisted prefix density, ColdStarts from the SAD guess.
	Runs, WarmStarts, StoreSeeds, ColdStarts int64
	// PairListBuilds/PairListReuses count screening decisions;
	// a build replaces the builder, a reuse rebinds it in place.
	PairListBuilds, PairListReuses int64
	// SCFIterations accumulates iterations over every SCF the session
	// ran (central and displaced), the machine-independent cost metric
	// BENCH_mts gates on.
	SCFIterations int64
	// DisplacedRuns counts finite-difference displacement SCFs.
	DisplacedRuns int64
	// Fallbacks counts seeded runs that failed and were retried cold.
	Fallbacks int64
}

// Session carries SCF state across the consecutive geometries of one
// trajectory: the previous step's converged density (ΔP warm start),
// the screening pair list under a max-displacement invalidation bound,
// and a persistent hfx.Builder rebound in place so the semi-direct
// cache's admission plan and slab memory survive from step to step.
//
// A seeded SCF converges to the same tolerance but not the same bits as
// a cold one, so session trajectories are not bitwise comparable to
// cold ones — the integrator's checkpoint/resume stays bitwise because
// forces are stored, not recomputed, across a restore.
//
// All methods are safe for concurrent use; evaluations are serialized
// internally (the shared builder admits one build at a time).
type Session struct {
	cfg scf.Config
	opt SessionOptions

	mu      sync.Mutex
	prevP   *linalg.Matrix
	scr     *screen.Result
	builder *hfx.Builder
	refPos  []chem.Vec3 // geometry the pair list was built at
	refEl   []chem.Element
	stats   SessionStats
}

// NewSession prepares a reuse session for one model chemistry. The
// config's Ctx (if any) is honoured by every SCF the session runs, so
// a server can cancel a trajectory mid-step.
func NewSession(cfg scf.Config, opt SessionOptions) *Session {
	if cfg.Basis == "" {
		cfg.Basis = "STO-3G"
	}
	if cfg.Screen == (screen.Options{}) {
		cfg.Screen = screen.DefaultOptions()
	}
	if cfg.HFX == (hfx.Options{}) {
		cfg.HFX = hfx.DefaultOptions()
	}
	if opt.MaxDisplacement <= 0 {
		opt.MaxDisplacement = 0.25
	}
	return &Session{cfg: cfg, opt: opt}
}

// Close releases the persistent builder.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.builder != nil {
		s.builder.Close()
		s.builder = nil
	}
}

// Stats returns a snapshot of the reuse counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Run performs one SCF at the given geometry with every cross-step
// shortcut the session has banked: ΔP warm start from the previous
// converged density, pair-list reuse within the displacement bound, and
// in-place builder rebinding. A failed seeded run falls back to a cold
// one (unless the failure is a context cancellation, which propagates).
func (s *Session) Run(m *chem.Molecule) (*scf.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runLocked(m)
}

func (s *Session) runLocked(m *chem.Molecule) (*scf.Result, error) {
	s.stats.Runs++
	set, err := basis.Build(s.cfg.Basis, m)
	if err != nil {
		return nil, err
	}
	eng := integrals.NewEngine(set)

	// Screening-list reuse, guarded by composition identity and the
	// max-displacement invalidation bound.
	reuse := s.builder != nil && s.sameComposition(m) &&
		screen.MaxDisplacement(s.refPos, m) <= s.opt.MaxDisplacement
	if reuse {
		reuse = s.builder.Rebind(eng) == nil
	}
	if reuse {
		s.stats.PairListReuses++
	} else {
		if s.builder != nil {
			s.builder.Close()
		}
		s.scr = screen.BuildPairList(eng, s.cfg.Screen)
		s.builder = hfx.NewBuilder(eng, s.scr, s.cfg.HFX)
		s.refPos = positionsOf(m)
		s.refEl = elementsOf(m)
		s.stats.PairListBuilds++
	}

	run := s.cfg
	run.Screening = s.scr
	run.ExternalBuilder = s.builder
	seeded := false
	switch {
	case s.prevP != nil && s.prevP.Rows == set.NBasis:
		run.InitialDensity = s.prevP
		run.Incremental = true
		seeded = true
		s.stats.WarmStarts++
	case s.opt.Store != nil:
		key := densityKeyPrefix + scf.DensityPrefixKey(s.cfg, m)
		if b, ok := s.opt.Store.Get(key); ok {
			if n, data, err := store.DecodeMatrix(b); err == nil && n == set.NBasis {
				run.InitialDensity = &linalg.Matrix{Rows: n, Cols: n, Data: data}
				run.Incremental = true
				seeded = true
				s.stats.StoreSeeds++
			}
		}
		if !seeded {
			s.stats.ColdStarts++
		}
	default:
		s.stats.ColdStarts++
	}

	res, err := scf.Run(m, run)
	if err != nil && seeded && (s.cfg.Ctx == nil || s.cfg.Ctx.Err() == nil) {
		// A stale seed must never fail the trajectory: retry cold on the
		// same builder (its cache blocks are already at this geometry).
		s.stats.Fallbacks++
		cold := s.cfg
		cold.Screening = s.scr
		cold.ExternalBuilder = s.builder
		res, err = scf.Run(m, cold)
	}
	if err != nil {
		return res, err
	}
	if res.Iterations > 0 {
		s.stats.SCFIterations += int64(res.Iterations)
	}
	if res.Converged {
		s.prevP = res.P // scf returns a fresh clone; safe to retain
		if s.opt.Store != nil {
			key := densityKeyPrefix + scf.DensityPrefixKey(s.cfg, m)
			s.opt.Store.Put(key, store.EncodeMatrix(set.NBasis, res.P.Data))
		}
	}
	return res, nil
}

// Potential adapts the session into a PotentialFunc: energy with every
// cross-step shortcut applied.
func (s *Session) Potential() PotentialFunc {
	return func(m *chem.Molecule) (float64, error) {
		res, err := s.Run(m)
		if err != nil {
			return 0, err
		}
		if !res.Converged {
			return res.Energy, fmt.Errorf("md: SCF not converged at this geometry")
		}
		return res.Energy, nil
	}
}

// Forces evaluates the full surface at m — energy plus central
// finite-difference forces — with the two-level warm start: the central
// SCF seeds from the previous step's density (session state), and every
// displaced SCF seeds from the central converged density, sharing the
// session's pair list. This is the per-outer-step evaluation a RESPA
// trajectory makes.
func (s *Session) Forces(m *chem.Molecule, h float64, workers int) ([]chem.Vec3, float64, error) {
	s.mu.Lock()
	res, err := s.runLocked(m)
	if err == nil && !res.Converged {
		err = fmt.Errorf("md: SCF not converged at this geometry")
	}
	var base scf.Config
	var scr *screen.Result
	if err == nil {
		base = s.cfg
		scr = s.scr
	}
	s.mu.Unlock()
	if err != nil {
		return nil, 0, err
	}
	f, iters, derr := seededForces(m, base, scr, res.P, h, workers)
	s.mu.Lock()
	s.stats.SCFIterations += iters
	s.stats.DisplacedRuns += int64(6 * m.NAtoms())
	s.mu.Unlock()
	if derr != nil {
		return nil, 0, derr
	}
	return f, res.Energy, nil
}

// ForcesNSeeded is the standalone form of the displaced-run warm start:
// one cold central SCF, then the 6N finite-difference displacements
// each seeded from the central converged density with incremental ΔP
// builds (instead of rebuilding SCF from scratch per displacement).
// Forces agree with the cold path to finite-difference accuracy — the
// seeded runs converge to the same tolerance, not the same bits — and
// the returned iteration count is the displaced-run total, measurably
// below the cold path's. The central result is returned so callers can
// reuse its energy and density.
func ForcesNSeeded(mol *chem.Molecule, cfg scf.Config, h float64, workers int) ([]chem.Vec3, *scf.Result, int64, error) {
	central, err := scf.Run(mol, cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	if !central.Converged {
		return nil, central, 0, fmt.Errorf("md: central SCF not converged")
	}
	f, iters, err := seededForces(mol, cfg, nil, central.P, h, workers)
	if err != nil {
		return nil, central, iters, err
	}
	return f, central, iters, nil
}

// seededForces runs ForcesN with a potential whose SCF starts from the
// central density (and optionally shares a pair list built at the
// central geometry — valid for FD-sized displacements). Returns the
// total displaced-run SCF iterations.
func seededForces(mol *chem.Molecule, cfg scf.Config, scr *screen.Result, centralP *linalg.Matrix, h float64, workers int) ([]chem.Vec3, int64, error) {
	var iters atomic.Int64
	pot := func(dm *chem.Molecule) (float64, error) {
		run := cfg
		run.Screening = scr
		run.InitialDensity = centralP // scf clones it; shared read-only
		run.Incremental = true
		res, err := scf.Run(dm, run)
		if err != nil || !res.Converged {
			if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
				return 0, err
			}
			// Seed rejected at this displacement: pay the cold price.
			res, err = scf.Run(dm, cfg)
			if err != nil {
				return 0, err
			}
		}
		iters.Add(int64(res.Iterations))
		if !res.Converged {
			return res.Energy, fmt.Errorf("md: SCF not converged at displaced geometry")
		}
		return res.Energy, nil
	}
	f, err := ForcesN(mol, pot, h, workers)
	return f, iters.Load(), err
}

func positionsOf(m *chem.Molecule) []chem.Vec3 {
	pos := make([]chem.Vec3, m.NAtoms())
	for i, a := range m.Atoms {
		pos[i] = a.Pos
	}
	return pos
}

func elementsOf(m *chem.Molecule) []chem.Element {
	els := make([]chem.Element, m.NAtoms())
	for i, a := range m.Atoms {
		els[i] = a.El
	}
	return els
}

// sameComposition reports whether m matches the pair-list reference
// system atom for atom.
func (s *Session) sameComposition(m *chem.Molecule) bool {
	if len(s.refEl) != m.NAtoms() {
		return false
	}
	for i, a := range m.Atoms {
		if a.El != s.refEl[i] {
			return false
		}
	}
	return true
}
