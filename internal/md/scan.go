package md

import (
	"fmt"

	"hfxmd/internal/chem"
)

// ScanPoint is one point on a reaction-coordinate profile.
type ScanPoint struct {
	// Coord is the constrained coordinate value in bohr.
	Coord float64
	// Energy is the SCF energy at that geometry in hartree.
	Energy float64
	// Rel is Energy minus the profile minimum, in hartree.
	Rel float64
}

// DistanceScan computes the energy profile along the distance between two
// atoms by rigidly translating the fragment containing atom j (all atoms
// with index ≥ fragStart) along the i→j axis. This is the constrained
// scan used for the peroxide-attack coordinate in experiment E8.
func DistanceScan(mol *chem.Molecule, pot PotentialFunc, i, j, fragStart int, coords []float64) ([]ScanPoint, error) {
	if i < 0 || j < 0 || i >= mol.NAtoms() || j >= mol.NAtoms() {
		return nil, fmt.Errorf("md: scan atoms (%d,%d) out of range", i, j)
	}
	if fragStart <= 0 || fragStart > mol.NAtoms() {
		return nil, fmt.Errorf("md: fragment start %d out of range", fragStart)
	}
	axis := mol.Atoms[j].Pos.Sub(mol.Atoms[i].Pos)
	r0 := axis.Norm()
	if r0 < 1e-10 {
		return nil, fmt.Errorf("md: scan atoms coincide")
	}
	u := axis.Scale(1 / r0)

	pts := make([]ScanPoint, 0, len(coords))
	for _, r := range coords {
		g := mol.Clone()
		shift := u.Scale(r - r0)
		for k := fragStart; k < g.NAtoms(); k++ {
			g.Atoms[k].Pos = g.Atoms[k].Pos.Add(shift)
		}
		e, err := pot(g)
		if err != nil {
			return pts, fmt.Errorf("md: scan point r=%.3f: %w", r, err)
		}
		pts = append(pts, ScanPoint{Coord: r, Energy: e})
	}
	// Fill relative energies.
	min := pts[0].Energy
	for _, p := range pts[1:] {
		if p.Energy < min {
			min = p.Energy
		}
	}
	for k := range pts {
		pts[k].Rel = pts[k].Energy - min
	}
	return pts, nil
}

// BarrierHeight returns the highest relative energy encountered before
// the profile's global minimum position — a simple proxy for the forward
// reaction barrier on a scan ordered from far to near approach.
func BarrierHeight(pts []ScanPoint) float64 {
	var maxRel float64
	for _, p := range pts {
		if p.Rel > maxRel {
			maxRel = p.Rel
		}
	}
	return maxRel
}

// ReactionEnergy returns E(last) − E(first): negative means the scan's
// end point (e.g. the degraded adduct) is more stable than the separated
// reactants at the scan start.
func ReactionEnergy(pts []ScanPoint) float64 {
	if len(pts) < 2 {
		return 0
	}
	return pts[len(pts)-1].Energy - pts[0].Energy
}
