package md

import (
	"math"
	"testing"

	"hfxmd/internal/chem"
	"hfxmd/internal/scf"
)

func sessionCfg() scf.Config { return scf.Config{Basis: "STO-3G"} }

// nudged returns LiH with atom 1 displaced along z by dz bohr. LiH
// (not h2) because a 2-function system converges in ~3 iterations from
// any guess, leaving no headroom to measure warm-start savings.
func nudged(dz float64) *chem.Molecule {
	m := chem.LithiumHydride()
	m.Atoms[1].Pos[2] += dz
	return m
}

// TestSessionWarmStartReducesIterations drives a session through a
// sequence of MD-sized geometry steps and checks the two cross-step
// claims: the ΔP-seeded SCFs converge in measurably fewer iterations
// than cold ones at the same geometries, to energies that agree with
// the cold answers to convergence tolerance; and the screening pair
// list is built once and rebound thereafter.
func TestSessionWarmStartReducesIterations(t *testing.T) {
	steps := []float64{0, 0.01, 0.02, 0.03, 0.04}

	var coldIters int64
	coldE := make([]float64, len(steps))
	for i, dz := range steps {
		res, err := scf.Run(nudged(dz), sessionCfg())
		if err != nil {
			t.Fatal(err)
		}
		coldIters += int64(res.Iterations)
		coldE[i] = res.Energy
	}

	s := NewSession(sessionCfg(), SessionOptions{})
	defer s.Close()
	for i, dz := range steps {
		res, err := s.Run(nudged(dz))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("step %d did not converge", i)
		}
		if d := math.Abs(res.Energy - coldE[i]); d > 1e-7 {
			t.Fatalf("step %d: seeded energy off by %.3e Eh from cold", i, d)
		}
	}
	st := s.Stats()
	if st.Runs != int64(len(steps)) || st.WarmStarts != int64(len(steps)-1) || st.ColdStarts != 1 {
		t.Fatalf("stats %+v: want %d runs, %d warm starts, 1 cold", st, len(steps), len(steps)-1)
	}
	if st.PairListBuilds != 1 || st.PairListReuses != int64(len(steps)-1) {
		t.Fatalf("stats %+v: pair list should be built once and rebound %d times", st, len(steps)-1)
	}
	if st.SCFIterations >= coldIters {
		t.Fatalf("warm session took %d SCF iterations, cold sequence %d — no reduction", st.SCFIterations, coldIters)
	}
	t.Logf("SCF iterations: warm %d vs cold %d", st.SCFIterations, coldIters)
}

// TestSessionInvalidationBound: a displacement past MaxDisplacement
// must rebuild the pair list (and reset the reuse reference), one
// within the bound must rebind.
func TestSessionInvalidationBound(t *testing.T) {
	s := NewSession(sessionCfg(), SessionOptions{MaxDisplacement: 0.05})
	defer s.Close()
	for _, dz := range []float64{0, 0.04} { // within bound
		if _, err := s.Run(nudged(dz)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.PairListBuilds != 1 || st.PairListReuses != 1 {
		t.Fatalf("within-bound step should rebind, stats %+v", st)
	}
	if _, err := s.Run(nudged(0.2)); err != nil { // past bound vs reference at 0
		t.Fatal(err)
	}
	if st := s.Stats(); st.PairListBuilds != 2 {
		t.Fatalf("past-bound step should rebuild the pair list, stats %+v", st)
	}
	// The reference moved to 0.2: a nearby geometry rebinds again.
	if _, err := s.Run(nudged(0.21)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.PairListBuilds != 2 || st.PairListReuses != 2 {
		t.Fatalf("post-rebuild step should rebind against the new reference, stats %+v", st)
	}
}

// TestSessionCompositionChange: a different system can never reuse the
// builder, whatever the displacement metric says.
func TestSessionCompositionChange(t *testing.T) {
	s := NewSession(sessionCfg(), SessionOptions{MaxDisplacement: 1e9})
	defer s.Close()
	if _, err := s.Run(chem.Hydrogen(1.4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(chem.Helium()); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.PairListBuilds != 2 || st.PairListReuses != 0 {
		t.Fatalf("composition change must rebuild, stats %+v", st)
	}
}

// TestForcesNSeeded is the FD warm-start satellite gate: displaced SCFs
// seeded from the central converged density must (a) reproduce the
// cold-path forces within finite-difference accuracy and (b) take
// measurably fewer SCF iterations than the cold displaced runs.
func TestForcesNSeeded(t *testing.T) {
	mol := chem.LithiumHydride()
	cfg := sessionCfg()
	h := 5e-3

	// Cold reference: plain ForcesN, counting iterations by hand.
	var coldIters int64
	coldPot := func(dm *chem.Molecule) (float64, error) {
		res, err := scf.Run(dm, cfg)
		if err != nil {
			return 0, err
		}
		coldIters += int64(res.Iterations)
		return res.Energy, nil
	}
	coldF, err := ForcesN(mol, coldPot, h, 1)
	if err != nil {
		t.Fatal(err)
	}

	seedF, central, seedIters, err := ForcesNSeeded(mol, cfg, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !central.Converged {
		t.Fatal("central SCF did not converge")
	}
	for i := range coldF {
		for c := 0; c < 3; c++ {
			// Both paths converge to EnergyTol; the FD quotient divides the
			// residual by h, so agreement is gated at tol/h-scale.
			if d := math.Abs(seedF[i][c] - coldF[i][c]); d > 1e-5 {
				t.Fatalf("force[%d][%d]: seeded %g vs cold %g (d=%.3e)", i, c, seedF[i][c], coldF[i][c], d)
			}
		}
	}
	if seedIters >= coldIters {
		t.Fatalf("seeded displaced runs took %d iterations, cold %d — no reduction", seedIters, coldIters)
	}
	t.Logf("displaced-run SCF iterations: seeded %d vs cold %d", seedIters, coldIters)
}

// TestSessionForcesMatchColdForces: the session's two-level warm start
// (ΔP across steps, central density into displacements, shared pair
// list) must not change the physics — forces at a fresh geometry agree
// with the cold path.
func TestSessionForcesMatchColdForces(t *testing.T) {
	mol := chem.Hydrogen(1.5)
	cfg := sessionCfg()
	h := 5e-3
	coldF, err := ForcesN(mol, SCFPotential(cfg), h, 1)
	if err != nil {
		t.Fatal(err)
	}

	s := NewSession(cfg, SessionOptions{})
	defer s.Close()
	// Prime the session at a neighbouring geometry so the test exercises
	// the warm path, not the first cold run.
	if _, err := s.Run(chem.Hydrogen(1.48)); err != nil {
		t.Fatal(err)
	}
	f, epot, err := s.Forces(mol, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := scf.Run(mol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(epot - cres.Energy); d > 1e-7 {
		t.Fatalf("session energy off by %.3e Eh", d)
	}
	for i := range coldF {
		for c := 0; c < 3; c++ {
			if d := math.Abs(f[i][c] - coldF[i][c]); d > 1e-5 {
				t.Fatalf("force[%d][%d]: session %g vs cold %g", i, c, f[i][c], coldF[i][c])
			}
		}
	}
	if st := s.Stats(); st.DisplacedRuns != int64(6*mol.NAtoms()) {
		t.Fatalf("stats %+v: want %d displaced runs", st, 6*mol.NAtoms())
	}
}
