// Package md implements Born–Oppenheimer molecular dynamics on the SCF
// potential-energy surface: velocity-Verlet integration with central
// finite-difference Hellmann–Feynman forces, a Berendsen thermostat, and
// the constrained reaction-coordinate scans used for the Li/air
// electrolyte-degradation study (paper experiment E8).
//
// Finite-difference forces substitute for the analytic integral
// derivatives of the production code: on the cluster models driven here
// they are accurate to ~1e-6 hartree/bohr and exercise the identical SCF
// machinery (the paper's point is the cost of each SCF energy, which is
// dominated by HFX).
package md

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"hfxmd/internal/chem"
	"hfxmd/internal/phys"
	"hfxmd/internal/scf"
)

// PotentialFunc maps a geometry to a total energy in hartree.
type PotentialFunc func(*chem.Molecule) (float64, error)

// SCFPotential adapts an scf.Config into a PotentialFunc.
func SCFPotential(cfg scf.Config) PotentialFunc {
	return func(m *chem.Molecule) (float64, error) {
		res, err := scf.Run(m, cfg)
		if err != nil {
			return 0, err
		}
		if !res.Converged {
			return res.Energy, fmt.Errorf("md: SCF not converged at this geometry")
		}
		return res.Energy, nil
	}
}

// Forces computes −∂E/∂R by central differences with step h (bohr),
// evaluating the 6N displaced energies over a bounded worker group sized
// by GOMAXPROCS. Identical (bitwise) to ForcesN with any worker count:
// each force component depends only on its own two displaced energies.
func Forces(mol *chem.Molecule, pot PotentialFunc, h float64) ([]chem.Vec3, error) {
	return ForcesN(mol, pot, h, 0)
}

// ForcesN is Forces with an explicit worker bound (0 or negative means
// GOMAXPROCS; the bound is clamped to the 3N displacement jobs). Every
// worker displaces its own clone of the geometry, so pot is called
// concurrently — the PotentialFunc must be safe for that, which
// SCFPotential is (each call builds its own SCF state).
func ForcesN(mol *chem.Molecule, pot PotentialFunc, h float64, workers int) ([]chem.Vec3, error) {
	if h <= 0 {
		h = 5e-3
	}
	n := mol.NAtoms()
	jobs := 3 * n
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	f := make([]chem.Vec3, n)
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			work := mol.Clone()
			for {
				jid := int(next.Add(1)) - 1
				if jid >= jobs || errs[w] != nil {
					return
				}
				i, k := jid/3, jid%3
				orig := work.Atoms[i].Pos[k]
				work.Atoms[i].Pos[k] = orig + h
				ep, err := pot(work)
				if err != nil {
					errs[w] = fmt.Errorf("md: forward displacement atom %d dim %d: %w", i, k, err)
					return
				}
				work.Atoms[i].Pos[k] = orig - h
				em, err := pot(work)
				if err != nil {
					errs[w] = fmt.Errorf("md: backward displacement atom %d dim %d: %w", i, k, err)
					return
				}
				work.Atoms[i].Pos[k] = orig
				f[i][k] = -(ep - em) / (2 * h)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Options configures a trajectory.
type Options struct {
	// Steps is the number of MD steps.
	Steps int
	// Dt is the timestep in femtoseconds (default 0.5).
	Dt float64
	// TemperatureK seeds velocities and, with Thermostat, drives the bath.
	TemperatureK float64
	// Thermostat enables Berendsen velocity rescaling.
	Thermostat bool
	// TauFS is the Berendsen coupling time (default 20 fs).
	TauFS float64
	// FDStep is the finite-difference displacement in bohr (default 5e-3).
	FDStep float64
	// Seed makes velocity initialisation reproducible.
	Seed int64
}

// Frame is one trajectory snapshot.
type Frame struct {
	Step      int
	TimeFS    float64
	Potential float64 // hartree
	Kinetic   float64 // hartree
	Total     float64 // hartree
	TempK     float64
	Positions []chem.Vec3
}

// Trajectory is the result of a run.
type Trajectory struct {
	Frames []Frame
	Mol    *chem.Molecule // final geometry
}

// EnergyDrift returns the peak-to-peak variation of the conserved total
// energy per atom, the standard integrator-quality diagnostic.
func (t *Trajectory) EnergyDrift() float64 {
	if len(t.Frames) == 0 {
		return 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, f := range t.Frames {
		if f.Total < lo {
			lo = f.Total
		}
		if f.Total > hi {
			hi = f.Total
		}
	}
	return (hi - lo) / float64(len(t.Mol.Atoms))
}

// Run integrates a BOMD trajectory with velocity Verlet.
func Run(mol *chem.Molecule, pot PotentialFunc, opts Options) (*Trajectory, error) {
	if opts.Steps <= 0 {
		return nil, fmt.Errorf("md: Steps must be positive")
	}
	if opts.Dt <= 0 {
		opts.Dt = 0.5
	}
	if opts.TauFS <= 0 {
		opts.TauFS = 20
	}
	dt := opts.Dt * phys.FemtosecondToAtomicTime

	m := mol.Clone()
	n := m.NAtoms()
	masses := make([]float64, n)
	for i, a := range m.Atoms {
		masses[i] = a.El.Mass() * phys.AMUToElectronMass
	}
	vel := initVelocities(m, masses, opts.TemperatureK, opts.Seed)

	frc, err := Forces(m, pot, opts.FDStep)
	if err != nil {
		return nil, err
	}
	epot, err := pot(m)
	if err != nil {
		return nil, err
	}

	traj := &Trajectory{Mol: m}
	record := func(step int) {
		ekin := kinetic(vel, masses)
		pos := make([]chem.Vec3, n)
		for i := range pos {
			pos[i] = m.Atoms[i].Pos
		}
		traj.Frames = append(traj.Frames, Frame{
			Step:      step,
			TimeFS:    float64(step) * opts.Dt,
			Potential: epot,
			Kinetic:   ekin,
			Total:     epot + ekin,
			TempK:     temperature(ekin, n),
			Positions: pos,
		})
	}
	record(0)

	for step := 1; step <= opts.Steps; step++ {
		// Velocity Verlet: half kick, drift, force, half kick.
		for i := 0; i < n; i++ {
			for k := 0; k < 3; k++ {
				vel[i][k] += 0.5 * dt * frc[i][k] / masses[i]
				m.Atoms[i].Pos[k] += dt * vel[i][k]
			}
		}
		frc, err = Forces(m, pot, opts.FDStep)
		if err != nil {
			return traj, err
		}
		epot, err = pot(m)
		if err != nil {
			return traj, err
		}
		for i := 0; i < n; i++ {
			for k := 0; k < 3; k++ {
				vel[i][k] += 0.5 * dt * frc[i][k] / masses[i]
			}
		}
		if opts.Thermostat && opts.TemperatureK > 0 {
			berendsen(vel, masses, opts.TemperatureK, opts.Dt, opts.TauFS, n)
		}
		record(step)
	}
	return traj, nil
}

// kinetic returns ½Σmv² in hartree.
func kinetic(vel []chem.Vec3, masses []float64) float64 {
	var e float64
	for i, v := range vel {
		e += 0.5 * masses[i] * v.Norm2()
	}
	return e
}

// temperature converts kinetic energy to an instantaneous temperature via
// equipartition over 3N degrees of freedom.
func temperature(ekin float64, n int) float64 {
	dof := 3 * n
	if dof == 0 {
		return 0
	}
	return 2 * ekin / (float64(dof) * phys.BoltzmannHartreePerK)
}

// berendsen rescales velocities towards the bath temperature.
func berendsen(vel []chem.Vec3, masses []float64, t0, dtFS, tauFS float64, n int) {
	tcur := temperature(kinetic(vel, masses), n)
	if tcur <= 0 {
		return
	}
	lambda := math.Sqrt(1 + dtFS/tauFS*(t0/tcur-1))
	for i := range vel {
		vel[i] = vel[i].Scale(lambda)
	}
}

// initVelocities draws Maxwell–Boltzmann velocities, removes the centre-
// of-mass drift, and rescales to the target temperature exactly.
func initVelocities(m *chem.Molecule, masses []float64, tempK float64, seed int64) []chem.Vec3 {
	n := m.NAtoms()
	vel := make([]chem.Vec3, n)
	if tempK <= 0 {
		return vel
	}
	rng := newRNG(seed)
	for i := range vel {
		sigma := math.Sqrt(phys.BoltzmannHartreePerK * tempK / masses[i])
		for k := 0; k < 3; k++ {
			vel[i][k] = sigma * rng.NormFloat64()
		}
	}
	// Remove COM momentum.
	var ptot chem.Vec3
	var mtot float64
	for i := range vel {
		ptot = ptot.Add(vel[i].Scale(masses[i]))
		mtot += masses[i]
	}
	vcom := ptot.Scale(1 / mtot)
	for i := range vel {
		vel[i] = vel[i].Sub(vcom)
	}
	// Exact rescale to T.
	tcur := temperature(kinetic(vel, masses), n)
	if tcur > 0 {
		s := math.Sqrt(tempK / tcur)
		for i := range vel {
			vel[i] = vel[i].Scale(s)
		}
	}
	return vel
}
