// Package md implements Born–Oppenheimer molecular dynamics on the SCF
// potential-energy surface: velocity-Verlet integration with central
// finite-difference Hellmann–Feynman forces, a Berendsen thermostat, and
// the constrained reaction-coordinate scans used for the Li/air
// electrolyte-degradation study (paper experiment E8).
//
// Finite-difference forces substitute for the analytic integral
// derivatives of the production code: on the cluster models driven here
// they are accurate to ~1e-6 hartree/bohr and exercise the identical SCF
// machinery (the paper's point is the cost of each SCF energy, which is
// dominated by HFX).
package md

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"hfxmd/internal/chem"
	"hfxmd/internal/ckpt"
	"hfxmd/internal/phys"
	"hfxmd/internal/scf"
)

// PotentialFunc maps a geometry to a total energy in hartree.
type PotentialFunc func(*chem.Molecule) (float64, error)

// SCFPotential adapts an scf.Config into a PotentialFunc.
func SCFPotential(cfg scf.Config) PotentialFunc {
	return func(m *chem.Molecule) (float64, error) {
		res, err := scf.Run(m, cfg)
		if err != nil {
			return 0, err
		}
		if !res.Converged {
			return res.Energy, fmt.Errorf("md: SCF not converged at this geometry")
		}
		return res.Energy, nil
	}
}

// Forces computes −∂E/∂R by central differences with step h (bohr),
// evaluating the 6N displaced energies over a bounded worker group sized
// by GOMAXPROCS. Identical (bitwise) to ForcesN with any worker count:
// each force component depends only on its own two displaced energies.
func Forces(mol *chem.Molecule, pot PotentialFunc, h float64) ([]chem.Vec3, error) {
	return ForcesN(mol, pot, h, 0)
}

// ForcesN is Forces with an explicit worker bound (0 or negative means
// GOMAXPROCS; the bound is clamped to the 3N displacement jobs). Every
// worker displaces its own clone of the geometry, so pot is called
// concurrently — the PotentialFunc must be safe for that, which
// SCFPotential is (each call builds its own SCF state).
func ForcesN(mol *chem.Molecule, pot PotentialFunc, h float64, workers int) ([]chem.Vec3, error) {
	if h <= 0 {
		h = 5e-3
	}
	n := mol.NAtoms()
	jobs := 3 * n
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	f := make([]chem.Vec3, n)
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			work := mol.Clone()
			for {
				jid := int(next.Add(1)) - 1
				if jid >= jobs || errs[w] != nil {
					return
				}
				i, k := jid/3, jid%3
				orig := work.Atoms[i].Pos[k]
				work.Atoms[i].Pos[k] = orig + h
				ep, err := pot(work)
				if err != nil {
					errs[w] = fmt.Errorf("md: forward displacement atom %d dim %d: %w", i, k, err)
					return
				}
				work.Atoms[i].Pos[k] = orig - h
				em, err := pot(work)
				if err != nil {
					errs[w] = fmt.Errorf("md: backward displacement atom %d dim %d: %w", i, k, err)
					return
				}
				work.Atoms[i].Pos[k] = orig
				f[i][k] = -(ep - em) / (2 * h)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Options configures a trajectory.
type Options struct {
	// Steps is the number of MD steps.
	Steps int
	// Dt is the timestep in femtoseconds (default 0.5).
	Dt float64
	// TemperatureK seeds velocities and, with Thermostat, drives the bath.
	TemperatureK float64
	// Thermostat enables Berendsen velocity rescaling.
	Thermostat bool
	// TauFS is the Berendsen coupling time (default 20 fs).
	TauFS float64
	// FDStep is the finite-difference displacement in bohr (default 5e-3).
	FDStep float64
	// Seed makes velocity initialisation reproducible.
	Seed int64
	// Ckpt, if non-nil, makes every completed step durable: one journal
	// record per step plus a periodic snapshot ring (see package ckpt).
	Ckpt *ckpt.Writer
	// Resume, if non-nil, continues a trajectory from a restored state
	// (ckpt.Load) instead of initialising velocities. Positions,
	// velocities, forces, energy extrema and the RNG are restored
	// bit-for-bit, so the resumed run is bitwise identical to the
	// uninterrupted one from the restore point on. The remaining Options
	// must match the original run; a mismatch is rejected via the
	// state's parameter fingerprint.
	Resume *ckpt.MDState
}

// StepError reports a failure — an SCF that stopped converging, a
// checkpoint write error, an injected fault — at a specific MD step,
// so a driver can resume from the last durable state and retry instead
// of discarding the trajectory.
type StepError struct {
	Step int
	Err  error
}

func (e *StepError) Error() string { return fmt.Sprintf("md: step %d: %v", e.Step, e.Err) }

// Unwrap exposes the cause to errors.Is/As.
func (e *StepError) Unwrap() error { return e.Err }

// Frame is one trajectory snapshot.
type Frame struct {
	Step      int
	TimeFS    float64
	Potential float64 // hartree
	Kinetic   float64 // hartree
	Total     float64 // hartree
	TempK     float64
	Positions []chem.Vec3
}

// Trajectory is the result of a run.
type Trajectory struct {
	Frames []Frame
	Mol    *chem.Molecule // final geometry
	// Final is the complete restartable state after the last completed
	// step — what a checkpoint of that step would contain, and what the
	// aimd -json summary fingerprints.
	Final *ckpt.MDState
	// eLo/eHi accumulate the conserved-energy extrema over every frame,
	// including (on a resumed run) the frames recorded before the
	// restart; seen marks whether any frame contributed.
	eLo, eHi float64
	seen     bool
}

// EnergyDrift returns the peak-to-peak variation of the conserved total
// energy per atom, the standard integrator-quality diagnostic. The
// extrema are accumulated as frames are recorded and restored across a
// checkpoint/resume boundary, so a resumed run reports exactly the
// drift of the uninterrupted one.
func (t *Trajectory) EnergyDrift() float64 {
	if !t.seen {
		return 0
	}
	return (t.eHi - t.eLo) / float64(len(t.Mol.Atoms))
}

// paramsHash fingerprints the run configuration and system identity:
// everything that must match for a checkpoint to be resumable by this
// run. Positions are deliberately excluded — they evolve.
func paramsHash(m *chem.Molecule, opts *Options) uint64 {
	h := fnv.New64a()
	w := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	w(math.Float64bits(opts.Dt))
	w(math.Float64bits(opts.TemperatureK))
	if opts.Thermostat {
		w(1)
	} else {
		w(0)
	}
	w(math.Float64bits(opts.TauFS))
	w(math.Float64bits(opts.FDStep))
	w(uint64(opts.Seed))
	// Steps is excluded: resuming with a longer horizon (trajectory
	// extension) is legitimate and changes no per-step arithmetic.
	w(uint64(int64(m.Charge)))
	w(uint64(m.NAtoms()))
	for _, a := range m.Atoms {
		w(uint64(a.El))
	}
	return h.Sum64()
}

// Run integrates a BOMD trajectory with velocity Verlet, optionally
// checkpointing every step (Options.Ckpt) and optionally continuing a
// restored one (Options.Resume).
func Run(mol *chem.Molecule, pot PotentialFunc, opts Options) (*Trajectory, error) {
	if opts.Steps <= 0 {
		return nil, fmt.Errorf("md: Steps must be positive")
	}
	if opts.Dt <= 0 {
		opts.Dt = 0.5
	}
	if opts.TauFS <= 0 {
		opts.TauFS = 20
	}
	dt := opts.Dt * phys.FemtosecondToAtomicTime

	m := mol.Clone()
	n := m.NAtoms()
	masses := make([]float64, n)
	for i, a := range m.Atoms {
		masses[i] = a.El.Mass() * phys.AMUToElectronMass
	}
	ph := paramsHash(m, &opts)

	traj := &Trajectory{Mol: m, eLo: math.Inf(1), eHi: math.Inf(-1)}
	var (
		vel, frc []chem.Vec3
		epot     float64
		rng      = newRNG(opts.Seed)
	)
	// stateAt captures the complete post-step state — the unit of both
	// checkpointing and the Final fingerprint.
	stateAt := func(step int) *ckpt.MDState {
		st := &ckpt.MDState{
			Step: int64(step),
			Pos:  make([]chem.Vec3, n),
			Vel:  append([]chem.Vec3(nil), vel...),
			Frc:  append([]chem.Vec3(nil), frc...),
			Epot: epot,
			ELo:  traj.eLo, EHi: traj.eHi,
			RNG:        rng.state(),
			ParamsHash: ph,
		}
		for i := range st.Pos {
			st.Pos[i] = m.Atoms[i].Pos
		}
		return st
	}
	record := func(step int) {
		ekin := kinetic(vel, masses)
		pos := make([]chem.Vec3, n)
		for i := range pos {
			pos[i] = m.Atoms[i].Pos
		}
		total := epot + ekin
		if total < traj.eLo {
			traj.eLo = total
		}
		if total > traj.eHi {
			traj.eHi = total
		}
		traj.seen = true
		traj.Frames = append(traj.Frames, Frame{
			Step:      step,
			TimeFS:    float64(step) * opts.Dt,
			Potential: epot,
			Kinetic:   ekin,
			Total:     total,
			TempK:     temperature(ekin, n),
			Positions: pos,
		})
		traj.Final = stateAt(step)
	}

	startStep := 1
	if st := opts.Resume; st != nil {
		if len(st.Pos) != n {
			return nil, fmt.Errorf("md: resume state holds %d atoms, molecule has %d", len(st.Pos), n)
		}
		if st.ParamsHash != ph {
			return nil, fmt.Errorf("md: resume state was written by a different run configuration (params fingerprint %016x, want %016x)", st.ParamsHash, ph)
		}
		if int(st.Step) > opts.Steps {
			return nil, fmt.Errorf("md: resume state is at step %d, beyond Steps=%d", st.Step, opts.Steps)
		}
		for i := range m.Atoms {
			m.Atoms[i].Pos = st.Pos[i]
		}
		vel = append([]chem.Vec3(nil), st.Vel...)
		frc = append([]chem.Vec3(nil), st.Frc...)
		epot = st.Epot
		rng.setState(st.RNG)
		traj.eLo, traj.eHi = st.ELo, st.EHi
		traj.seen = true
		record(int(st.Step)) // resume-point frame, bitwise equal to the original's
		startStep = int(st.Step) + 1
	} else {
		vel = initVelocities(m, masses, opts.TemperatureK, rng)
		var err error
		frc, err = Forces(m, pot, opts.FDStep)
		if err != nil {
			return nil, &StepError{Step: 0, Err: err}
		}
		epot, err = pot(m)
		if err != nil {
			return nil, &StepError{Step: 0, Err: err}
		}
		record(0)
		if opts.Ckpt != nil {
			if err := opts.Ckpt.OnStep(traj.Final); err != nil {
				return traj, &StepError{Step: 0, Err: err}
			}
		}
	}

	for step := startStep; step <= opts.Steps; step++ {
		// Velocity Verlet: half kick, drift, force, half kick.
		for i := 0; i < n; i++ {
			for k := 0; k < 3; k++ {
				vel[i][k] += 0.5 * dt * frc[i][k] / masses[i]
				m.Atoms[i].Pos[k] += dt * vel[i][k]
			}
		}
		var err error
		frc, err = Forces(m, pot, opts.FDStep)
		if err != nil {
			return traj, &StepError{Step: step, Err: err}
		}
		epot, err = pot(m)
		if err != nil {
			return traj, &StepError{Step: step, Err: err}
		}
		for i := 0; i < n; i++ {
			for k := 0; k < 3; k++ {
				vel[i][k] += 0.5 * dt * frc[i][k] / masses[i]
			}
		}
		if opts.Thermostat && opts.TemperatureK > 0 {
			berendsen(vel, masses, opts.TemperatureK, opts.Dt, opts.TauFS, n)
		}
		record(step)
		if opts.Ckpt != nil {
			if err := opts.Ckpt.OnStep(traj.Final); err != nil {
				return traj, &StepError{Step: step, Err: err}
			}
		}
	}
	return traj, nil
}

// kinetic returns ½Σmv² in hartree.
func kinetic(vel []chem.Vec3, masses []float64) float64 {
	var e float64
	for i, v := range vel {
		e += 0.5 * masses[i] * v.Norm2()
	}
	return e
}

// temperature converts kinetic energy to an instantaneous temperature via
// equipartition over 3N degrees of freedom.
func temperature(ekin float64, n int) float64 {
	dof := 3 * n
	if dof == 0 {
		return 0
	}
	return 2 * ekin / (float64(dof) * phys.BoltzmannHartreePerK)
}

// berendsen rescales velocities towards the bath temperature.
func berendsen(vel []chem.Vec3, masses []float64, t0, dtFS, tauFS float64, n int) {
	tcur := temperature(kinetic(vel, masses), n)
	if tcur <= 0 {
		return
	}
	lambda := math.Sqrt(1 + dtFS/tauFS*(t0/tcur-1))
	for i := range vel {
		vel[i] = vel[i].Scale(lambda)
	}
}

// initVelocities draws Maxwell–Boltzmann velocities, removes the centre-
// of-mass drift, and rescales to the target temperature exactly. The
// caller owns the RNG so its post-init state can be checkpointed.
func initVelocities(m *chem.Molecule, masses []float64, tempK float64, rng *rng) []chem.Vec3 {
	n := m.NAtoms()
	vel := make([]chem.Vec3, n)
	if tempK <= 0 {
		return vel
	}
	for i := range vel {
		sigma := math.Sqrt(phys.BoltzmannHartreePerK * tempK / masses[i])
		for k := 0; k < 3; k++ {
			vel[i][k] = sigma * rng.NormFloat64()
		}
	}
	// Remove COM momentum.
	var ptot chem.Vec3
	var mtot float64
	for i := range vel {
		ptot = ptot.Add(vel[i].Scale(masses[i]))
		mtot += masses[i]
	}
	vcom := ptot.Scale(1 / mtot)
	for i := range vel {
		vel[i] = vel[i].Sub(vcom)
	}
	// Exact rescale to T.
	tcur := temperature(kinetic(vel, masses), n)
	if tcur > 0 {
		s := math.Sqrt(tempK / tcur)
		for i := range vel {
			vel[i] = vel[i].Scale(s)
		}
	}
	return vel
}
