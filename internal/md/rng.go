package md

import "math"

// rng is the velocity-initialisation random source: xorshift64* with a
// Box–Muller second-variate cache. Unlike math/rand it is fully
// serializable — state() and setState() round-trip every bit — which is
// what lets a checkpoint capture the generator mid-stream and a resumed
// run continue the identical sequence.
type rng struct {
	s        uint64
	gauss    float64
	hasGauss bool
}

// newRNG seeds the generator through a splitmix64 scramble so nearby
// integer seeds decorrelate; a zero post-scramble state (which would
// pin xorshift at zero forever) is remapped.
func newRNG(seed int64) *rng {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return &rng{s: z}
}

// uint64 advances the xorshift64* stream.
func (r *rng) uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// float64 returns a uniform variate in [0, 1) with 53 random bits.
func (r *rng) float64() float64 { return float64(r.uint64()>>11) / (1 << 53) }

// NormFloat64 returns a standard normal variate (polar Box–Muller; the
// paired second variate is cached and therefore part of the state).
func (r *rng) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.float64() - 1
		v := 2*r.float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// state serialises the generator: stream word, cached variate bits,
// cache-valid flag.
func (r *rng) state() [3]uint64 {
	var h uint64
	if r.hasGauss {
		h = 1
	}
	return [3]uint64{r.s, math.Float64bits(r.gauss), h}
}

// setState restores a serialised generator.
func (r *rng) setState(st [3]uint64) {
	r.s = st[0]
	r.gauss = math.Float64frombits(st[1])
	r.hasGauss = st[2] != 0
}
