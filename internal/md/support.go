package md

import (
	"math"

	"hfxmd/internal/chem"
	"hfxmd/internal/ckpt"
	"hfxmd/internal/phys"
)

// This file exports the integrator building blocks internal/respa
// composes into the multiple-time-step driver: mass tables, the
// Maxwell–Boltzmann draw (with its serializable RNG state), the
// Berendsen rescale, and trajectory accumulation. md.Run itself keeps
// using the unexported forms, so its arithmetic — and every bitwise
// pin on it — is untouched.

// AtomicMasses returns per-atom masses in electron-mass units, the
// integrator's native unit.
func AtomicMasses(m *chem.Molecule) []float64 {
	masses := make([]float64, m.NAtoms())
	for i, a := range m.Atoms {
		masses[i] = a.El.Mass() * phys.AMUToElectronMass
	}
	return masses
}

// Kinetic returns ½Σmv² in hartree.
func Kinetic(vel []chem.Vec3, masses []float64) float64 { return kinetic(vel, masses) }

// Temperature converts kinetic energy to an instantaneous temperature
// via equipartition over 3N degrees of freedom.
func Temperature(ekin float64, natoms int) float64 { return temperature(ekin, natoms) }

// DrawVelocities initialises Maxwell–Boltzmann velocities from a fresh
// RNG seeded with seed and returns them together with the post-draw RNG
// state, so a caller that checkpoints its own integrator (respa) can
// restore the stream bit-for-bit. The draw is identical to the one
// md.Run performs for the same seed.
func DrawVelocities(m *chem.Molecule, masses []float64, tempK float64, seed int64) ([]chem.Vec3, [3]uint64) {
	r := newRNG(seed)
	vel := initVelocities(m, masses, tempK, r)
	return vel, r.state()
}

// BerendsenRescale applies one Berendsen thermostat step towards t0
// with coupling time tauFS over an elapsed dtFS.
func BerendsenRescale(vel []chem.Vec3, masses []float64, t0, dtFS, tauFS float64) {
	berendsen(vel, masses, t0, dtFS, tauFS, len(vel))
}

// NewTrajectory returns an empty trajectory accumulating energy extrema
// over frames added with AddFrame. mol is aliased as the (evolving,
// then final) geometry.
func NewTrajectory(mol *chem.Molecule) *Trajectory {
	return &Trajectory{Mol: mol, eLo: math.Inf(1), eHi: math.Inf(-1)}
}

// AddFrame appends a frame and folds its conserved total energy into
// the drift extrema.
func (t *Trajectory) AddFrame(f Frame) {
	if f.Total < t.eLo {
		t.eLo = f.Total
	}
	if f.Total > t.eHi {
		t.eHi = f.Total
	}
	t.seen = true
	t.Frames = append(t.Frames, f)
}

// RestoreExtrema seeds the drift extrema from a checkpoint, so a
// resumed trajectory reports exactly the drift of the uninterrupted
// one.
func (t *Trajectory) RestoreExtrema(st *ckpt.MDState) {
	t.eLo, t.eHi = st.ELo, st.EHi
	t.seen = true
}

// Extrema returns the accumulated conserved-energy extrema (for
// checkpointing by an external integrator).
func (t *Trajectory) Extrema() (lo, hi float64) { return t.eLo, t.eHi }
