package md

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"hfxmd/internal/chem"
	"hfxmd/internal/ckpt"
	"hfxmd/internal/scf"
)

// ckptOpts is the shared trajectory configuration for the resume tests:
// a thermostatted water-cluster run on the analytic spring surface, so
// every integrator feature (velocity init, Berendsen, drift extrema) is
// exercised without paying for SCF.
func ckptOpts(steps int) Options {
	return Options{
		Steps: steps, Dt: 0.5, TemperatureK: 300, Thermostat: true, TauFS: 5,
		FDStep: 1e-4, Seed: 11,
	}
}

func ckptMol() *chem.Molecule { return chem.WaterCluster(2, 3) }
func ckptPot() PotentialFunc  { return springPot(0.1, 2.0) }

// runUninterrupted is the reference: one continuous trajectory.
func runUninterrupted(t *testing.T, steps int) *Trajectory {
	t.Helper()
	traj, err := Run(ckptMol(), ckptPot(), ckptOpts(steps))
	if err != nil {
		t.Fatal(err)
	}
	return traj
}

// assertBitwiseEqual compares two final states through the canonical
// encoding: every position, velocity, force, energy and extremum bit.
func assertBitwiseEqual(t *testing.T, got, want *ckpt.MDState) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("missing final state (got %v, want %v)", got, want)
	}
	if !bytes.Equal(ckpt.EncodeState(got), ckpt.EncodeState(want)) {
		t.Fatalf("final states differ:\n got step %d epot %x\nwant step %d epot %x",
			got.Step, math.Float64bits(got.Epot), want.Step, math.Float64bits(want.Epot))
	}
}

// crashAndResume runs with the given fault plan until the injected
// crash, then resumes from the checkpoint directory and returns the
// completed trajectory.
func crashAndResume(t *testing.T, steps int, plan *ckpt.FaultPlan, every int64) *Trajectory {
	t.Helper()
	dir := t.TempDir()
	w, err := ckpt.NewWriter(ckpt.Config{Dir: dir, Every: every, Keep: 3, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	opts := ckptOpts(steps)
	opts.Ckpt = w
	_, err = Run(ckptMol(), ckptPot(), opts)
	if !errors.Is(err, ckpt.ErrInjectedCrash) {
		t.Fatalf("want injected crash, got %v", err)
	}
	var se *StepError
	if !errors.As(err, &se) || int64(se.Step) != plan.CrashAtStep {
		t.Fatalf("crash should surface as StepError at step %d, got %v", plan.CrashAtStep, err)
	}
	w.Close()

	res, err := ckpt.Load(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := ckpt.NewWriter(ckpt.Config{Dir: dir, Every: every, Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	opts = ckptOpts(steps)
	opts.Ckpt = w2
	opts.Resume = res.State
	traj, err := Run(ckptMol(), ckptPot(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return traj
}

func TestResumeBitwiseIdenticalCleanCrash(t *testing.T) {
	const steps = 30
	ref := runUninterrupted(t, steps)
	got := crashAndResume(t, steps, &ckpt.FaultPlan{CrashAtStep: 17}, 8)
	assertBitwiseEqual(t, got.Final, ref.Final)
	if got.EnergyDrift() != ref.EnergyDrift() {
		t.Fatalf("drift differs: %x vs %x",
			math.Float64bits(got.EnergyDrift()), math.Float64bits(ref.EnergyDrift()))
	}
}

func TestResumeBitwiseIdenticalTornWrite(t *testing.T) {
	const steps = 30
	ref := runUninterrupted(t, steps)
	// The torn record for step 17 must be discarded; resume restarts
	// from step 16 and still lands on the identical final state.
	got := crashAndResume(t, steps, &ckpt.FaultPlan{CrashAtStep: 17, TornWrite: true}, 8)
	assertBitwiseEqual(t, got.Final, ref.Final)
	if got.EnergyDrift() != ref.EnergyDrift() {
		t.Fatal("drift differs after torn-write resume")
	}
}

func TestResumeBitwiseIdenticalCorruptSnapshot(t *testing.T) {
	const steps = 30
	ref := runUninterrupted(t, steps)
	// Crash exactly at a snapshot step with the fresh snapshot (step 16)
	// corrupted: the journal was just reset, so resume must fall back to
	// the previous ring entry (step 8) and re-integrate forward.
	got := crashAndResume(t, steps,
		&ckpt.FaultPlan{CrashAtStep: 16, CorruptSection: ckpt.SectionVelocities}, 8)
	assertBitwiseEqual(t, got.Final, ref.Final)
	if got.EnergyDrift() != ref.EnergyDrift() {
		t.Fatal("drift differs after corrupt-snapshot resume")
	}
	if first := got.Frames[0].Step; first != 8 {
		t.Fatalf("corrupt-snapshot resume should restart from the ring fallback at 8, got %d", first)
	}
}

func TestResumeEnergyConservationAcrossBoundary(t *testing.T) {
	// NVE (no thermostat): the drift of a resumed run must equal the
	// uninterrupted drift to the last ulp, and stay physically small.
	const steps = 200
	opts := Options{Steps: steps, Dt: 0.25, FDStep: 1e-4}
	ref, err := Run(chem.Hydrogen(1.5), springPot(0.35, 1.4), opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	w, err := ckpt.NewWriter(ckpt.Config{Dir: dir, Every: 25, Keep: 2,
		Plan: &ckpt.FaultPlan{CrashAtStep: 90}})
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Ckpt = w
	if _, err := Run(chem.Hydrogen(1.5), springPot(0.35, 1.4), o); !errors.Is(err, ckpt.ErrInjectedCrash) {
		t.Fatalf("want injected crash, got %v", err)
	}
	w.Close()
	res, err := ckpt.Load(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	o = opts
	o.Resume = res.State
	got, err := Run(chem.Hydrogen(1.5), springPot(0.35, 1.4), o)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwiseEqual(t, got.Final, ref.Final)
	if gd, rd := got.EnergyDrift(), ref.EnergyDrift(); math.Float64bits(gd) != math.Float64bits(rd) {
		t.Fatalf("drift across resume boundary: %g (%x) vs %g (%x)",
			gd, math.Float64bits(gd), rd, math.Float64bits(rd))
	}
	if got.EnergyDrift() > 3e-5 {
		t.Fatalf("resumed NVE drift %g Eh/atom too large", got.EnergyDrift())
	}
}

func TestResumeRejectsMismatchedParams(t *testing.T) {
	dir := t.TempDir()
	w, err := ckpt.NewWriter(ckpt.Config{Dir: dir, Every: 5, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	opts := ckptOpts(10)
	opts.Ckpt = w
	if _, err := Run(ckptMol(), ckptPot(), opts); err != nil {
		t.Fatal(err)
	}
	w.Close()
	res, err := ckpt.Load(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := ckptOpts(20)
	bad.Dt = 0.4 // different timestep: different dynamics
	bad.Resume = res.State
	if _, err := Run(ckptMol(), ckptPot(), bad); err == nil {
		t.Fatal("resume with a different timestep must be rejected")
	}
	// Different molecule: atom count mismatch.
	other := ckptOpts(20)
	other.Resume = res.State
	if _, err := Run(chem.Hydrogen(1.4), ckptPot(), other); err == nil {
		t.Fatal("resume with a different molecule must be rejected")
	}
}

func TestStepErrorCarriesStepIndex(t *testing.T) {
	// A potential that dies mid-trajectory must surface a typed
	// StepError with the failing step, not a bare string.
	fail := errors.New("md test: potential blew up")
	calls := 0
	pot := func(m *chem.Molecule) (float64, error) {
		calls++
		if calls > 30 { // initial Forces+pot plus a few steps
			return 0, fail
		}
		return springPot(0.35, 1.4)(m)
	}
	_, err := Run(chem.Hydrogen(1.5), pot, Options{Steps: 50, Dt: 0.25, FDStep: 1e-4})
	var se *StepError
	if !errors.As(err, &se) {
		t.Fatalf("want *StepError, got %T: %v", err, err)
	}
	if se.Step <= 0 {
		t.Fatalf("StepError.Step = %d, want mid-trajectory step", se.Step)
	}
	if !errors.Is(err, fail) {
		t.Fatal("StepError must unwrap to the underlying cause")
	}
}

func TestSCFNonConvergenceSurfacesAsStepError(t *testing.T) {
	// An SCF that converges at the initial geometry but not later must
	// produce a StepError carrying the failing step so a driver can
	// resume from the last snapshot and retry. The first few potential
	// evaluations (initial energy + finite-difference forces) use the
	// analytic spring; later calls hit a real SCF capped at one
	// iteration, which cannot converge.
	calls := 0
	good := springPot(0.35, 1.4)
	diverge := SCFPotential(scf.Config{MaxIter: 1})
	pot := func(m *chem.Molecule) (float64, error) {
		calls++
		if calls > 30 {
			return diverge(m)
		}
		return good(m)
	}
	_, err := Run(chem.Hydrogen(1.5), pot, Options{Steps: 50, Dt: 0.25, FDStep: 1e-4})
	var se *StepError
	if !errors.As(err, &se) {
		t.Fatalf("want *StepError, got %T: %v", err, err)
	}
	if se.Step <= 0 {
		t.Fatalf("StepError.Step = %d, want mid-trajectory step", se.Step)
	}
}
