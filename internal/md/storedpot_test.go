package md

import (
	"math"
	"testing"

	"hfxmd/internal/chem"
	"hfxmd/internal/scf"
	"hfxmd/internal/store"
)

func TestStoredSCFPotentialSeedsRepeatCalls(t *testing.T) {
	st, err := store.Open(store.Options{}) // memory-only
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cfg := scf.Config{Basis: "STO-3G"}
	cold := SCFPotential(cfg)
	pot := StoredSCFPotential(cfg, st)

	mol := chem.Hydrogen(1.5)
	eCold, err := cold(mol)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := pot(mol) // cold: nothing stored yet
	if err != nil {
		t.Fatal(err)
	}
	if seeded := st.Registry().Counter("md.density_seeded").Value(); seeded != 0 {
		t.Fatalf("first call seeded from an empty store (%d)", seeded)
	}
	if e1 != eCold {
		t.Fatalf("unseeded stored potential diverged: %g vs %g", e1, eCold)
	}

	// Perturbed geometry (an MD step): same composition prefix, so the
	// stored density seeds it; energies agree to SCF tolerance.
	mol2 := chem.Hydrogen(1.52)
	e2, err := pot(mol2)
	if err != nil {
		t.Fatal(err)
	}
	eCold2, err := cold(mol2)
	if err != nil {
		t.Fatal(err)
	}
	if seeded := st.Registry().Counter("md.density_seeded").Value(); seeded != 1 {
		t.Fatalf("md.density_seeded = %d, want 1", seeded)
	}
	if math.Abs(e2-eCold2) > 1e-8 {
		t.Fatalf("seeded energy %g drifted from cold %g", e2, eCold2)
	}

	// A nil store degrades to the plain potential.
	eNil, err := StoredSCFPotential(cfg, nil)(mol)
	if err != nil {
		t.Fatal(err)
	}
	if eNil != eCold {
		t.Fatalf("nil-store potential diverged: %g vs %g", eNil, eCold)
	}
}
