package md

import (
	"fmt"

	"hfxmd/internal/chem"
	"hfxmd/internal/linalg"
	"hfxmd/internal/scf"
	"hfxmd/internal/store"
)

// densityKeyPrefix is the store namespace for converged densities; it
// matches internal/server's, so an aimd trajectory and an hfxd instance
// pointed at the same store directory seed each other.
const densityKeyPrefix = "density:"

// StoredSCFPotential is SCFPotential with partial-hit prefix reuse
// through a tiered store: every call looks up the converged density of
// the last geometry with the same composition prefix (the previous MD
// step, or a displaced geometry from the force loop) and starts SCF from
// it with incremental ΔP Fock builds, then stores its own converged
// density back. Across an MD trajectory the seed is always one step old,
// which is exactly when a warm start pays.
//
// Trade-off: a seeded SCF converges to the same tolerance but not to the
// same bits as a cold one, so -store-dir trajectories are NOT bitwise
// comparable to cold trajectories (checkpoint resume within one store
// stays self-consistent: the replayed step re-reads the same stored
// density). A nil store degrades to the plain cold potential.
//
// Safe for the concurrent calls ForcesN makes: the store is internally
// locked, and concurrent writers of one key are all valid seeds.
func StoredSCFPotential(cfg scf.Config, st *store.Store) PotentialFunc {
	if st == nil {
		return SCFPotential(cfg)
	}
	return func(m *chem.Molecule) (float64, error) {
		key := densityKeyPrefix + scf.DensityPrefixKey(cfg, m)
		run := cfg
		if b, ok := st.Get(key); ok {
			if n, data, err := store.DecodeMatrix(b); err == nil {
				run.InitialDensity = &linalg.Matrix{Rows: n, Cols: n, Data: data}
				run.Incremental = true
				st.Registry().Counter("md.density_seeded").Add(1)
			}
		}
		res, err := scf.Run(m, run)
		if err != nil && run.InitialDensity != nil {
			// A stale or mismatched seed must never fail the
			// trajectory: fall back to the cold guess.
			st.Registry().Counter("md.seed_fallbacks").Add(1)
			res, err = scf.Run(m, cfg)
		}
		if err != nil {
			return 0, err
		}
		if !res.Converged {
			return res.Energy, fmt.Errorf("md: SCF not converged at this geometry")
		}
		st.Put(key, store.EncodeMatrix(res.Set.NBasis, res.P.Data))
		return res.Energy, nil
	}
}
