package md

import (
	"testing"

	"hfxmd/internal/chem"
	"hfxmd/internal/scf"
)

// TestForcesNDeterministic pins the parallel finite-difference path
// against the serial one: every force component depends only on its own
// two displaced energies, so any worker count must give bitwise-identical
// forces.
func TestForcesNDeterministic(t *testing.T) {
	mol := chem.WaterCluster(2, 6)
	pot := springPot(0.35, 1.4)
	serial, err := ForcesN(mol, pot, 1e-4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 100} {
		par, err := ForcesN(mol, pot, 1e-4, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			for k := 0; k < 3; k++ {
				if par[i][k] != serial[i][k] {
					t.Fatalf("workers=%d atom %d dim %d: %x != serial %x",
						workers, i, k, par[i][k], serial[i][k])
				}
			}
		}
	}
}

// TestForcesNDeterministicSCF repeats the bitwise check with the real SCF
// potential (concurrent pot calls), on the smallest system that keeps the
// test fast.
func TestForcesNDeterministicSCF(t *testing.T) {
	mol := chem.Hydrogen(1.4)
	pot := SCFPotential(scf.Config{})
	serial, err := ForcesN(mol, pot, 5e-3, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ForcesN(mol, pot, 5e-3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		for k := 0; k < 3; k++ {
			if par[i][k] != serial[i][k] {
				t.Fatalf("atom %d dim %d: parallel %x != serial %x", i, k, par[i][k], serial[i][k])
			}
		}
	}
}

// TestForcesNErrorPropagation checks a failing potential surfaces its
// error through the worker group.
func TestForcesNErrorPropagation(t *testing.T) {
	failing := func(m *chem.Molecule) (float64, error) { return 0, errTest }
	if _, err := ForcesN(chem.Water(), failing, 1e-4, 4); err == nil {
		t.Fatal("expected propagated error")
	}
}
