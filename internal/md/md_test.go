package md

import (
	"fmt"
	"math"
	"testing"

	"hfxmd/internal/chem"
	"hfxmd/internal/scf"
)

// springPot is an analytic pairwise harmonic potential used to test the
// integrator without paying for SCF at every step.
func springPot(k, r0 float64) PotentialFunc {
	return func(m *chem.Molecule) (float64, error) {
		var e float64
		for i := 0; i < m.NAtoms(); i++ {
			for j := i + 1; j < m.NAtoms(); j++ {
				d := m.Distance(i, j) - r0
				e += 0.5 * k * d * d
			}
		}
		return e, nil
	}
}

// morsePot is an analytic Morse potential between atoms 0 and 1.
func morsePot(de, a, r0 float64) PotentialFunc {
	return func(m *chem.Molecule) (float64, error) {
		x := math.Exp(-a * (m.Distance(0, 1) - r0))
		return de * (1 - x) * (1 - x), nil
	}
}

func TestForcesMatchAnalyticSpring(t *testing.T) {
	mol := chem.Hydrogen(1.6) // stretched: force pulls atoms together
	k, r0 := 0.35, 1.4
	f, err := Forces(mol, springPot(k, r0), 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic force on atom 1 (at +z): −k(r−r0) along +z... the bond is
	// stretched so the force on atom 1 points towards atom 0 (−z).
	want := -k * (1.6 - r0)
	if math.Abs(f[1][2]-want) > 1e-7 {
		t.Fatalf("F_z on atom 1 = %g want %g", f[1][2], want)
	}
	if math.Abs(f[0][2]+want) > 1e-7 {
		t.Fatalf("Newton's third law violated: %g vs %g", f[0][2], -want)
	}
}

func TestVerletConservesEnergyHarmonic(t *testing.T) {
	mol := chem.Hydrogen(1.5)
	traj, err := Run(mol, springPot(0.35, 1.4), Options{
		Steps: 200, Dt: 0.25, TemperatureK: 0, FDStep: 1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Frames) != 201 {
		t.Fatalf("%d frames", len(traj.Frames))
	}
	if drift := traj.EnergyDrift(); drift > 3e-5 {
		t.Fatalf("energy drift %g Eh/atom too large", drift)
	}
	// The bond oscillates: the distance must dip below and rise above r0.
	sawBelow, sawAbove := false, false
	for _, fr := range traj.Frames {
		d := fr.Positions[1].Sub(fr.Positions[0]).Norm()
		if d < 1.4 {
			sawBelow = true
		}
		if d > 1.45 {
			sawAbove = true
		}
	}
	if !sawBelow || !sawAbove {
		t.Fatal("bond did not oscillate")
	}
}

func TestThermostatEquilibrates(t *testing.T) {
	mol := chem.WaterCluster(2, 3)
	traj, err := Run(mol, springPot(0.1, 2.0), Options{
		Steps: 400, Dt: 0.5, TemperatureK: 300, Thermostat: true, TauFS: 5,
		FDStep: 1e-4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Average temperature over the last third should be near the bath.
	var sum float64
	cnt := 0
	for _, fr := range traj.Frames[2*len(traj.Frames)/3:] {
		sum += fr.TempK
		cnt++
	}
	avg := sum / float64(cnt)
	if avg < 240 || avg > 360 {
		t.Fatalf("equilibrated temperature %g K far from 300 K", avg)
	}
}

func TestInitVelocitiesTemperatureAndCOM(t *testing.T) {
	mol := chem.WaterCluster(3, 5)
	masses := make([]float64, mol.NAtoms())
	for i, a := range mol.Atoms {
		masses[i] = a.El.Mass() * 1822.888
	}
	vel := initVelocities(mol, masses, 300, newRNG(42))
	if got := temperature(kinetic(vel, masses), mol.NAtoms()); math.Abs(got-300) > 1e-9 {
		t.Fatalf("initial temperature %g", got)
	}
	var p chem.Vec3
	for i, v := range vel {
		p = p.Add(v.Scale(masses[i]))
	}
	if p.Norm() > 1e-9 {
		t.Fatalf("net momentum %v", p)
	}
	// Zero temperature: all velocities zero.
	vz := initVelocities(mol, masses, 0, newRNG(1))
	for _, v := range vz {
		if v.Norm() != 0 {
			t.Fatal("nonzero velocity at T=0")
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(chem.Hydrogen(1.4), springPot(1, 1), Options{Steps: 0}); err == nil {
		t.Fatal("expected error for zero steps")
	}
}

func TestSCFMDShortTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("SCF MD is slow")
	}
	pot := SCFPotential(scf.Config{})
	traj, err := Run(chem.Hydrogen(1.5), pot, Options{Steps: 4, Dt: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if drift := traj.EnergyDrift(); drift > 5e-4 {
		t.Fatalf("BOMD drift %g Eh/atom", drift)
	}
	// The stretched bond should contract initially.
	d0 := traj.Frames[0].Positions[1].Sub(traj.Frames[0].Positions[0]).Norm()
	dN := traj.Frames[len(traj.Frames)-1].Positions[1].Sub(traj.Frames[len(traj.Frames)-1].Positions[0]).Norm()
	if dN >= d0 {
		t.Fatalf("bond did not contract: %g -> %g", d0, dN)
	}
}

func TestDistanceScanMorse(t *testing.T) {
	// Two-atom molecule, fragment = atom 1; Morse well at r0=1.4.
	mol := chem.Hydrogen(4.0)
	pot := morsePot(0.17, 1.0, 1.4)
	coords := []float64{4.0, 3.0, 2.2, 1.7, 1.4, 1.2}
	pts, err := DistanceScan(mol, pot, 0, 1, 1, coords)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(coords) {
		t.Fatalf("%d points", len(pts))
	}
	// Minimum at r=1.4, relative energy zero there.
	for _, p := range pts {
		if p.Coord == 1.4 && p.Rel > 1e-12 {
			t.Fatalf("minimum not at 1.4: %+v", p)
		}
		if p.Rel < 0 {
			t.Fatalf("negative relative energy %+v", p)
		}
	}
	// Binding: end of scan approaches the well from the repulsive side,
	// reaction energy relative to separated limit is negative at r0.
	if ReactionEnergy(pts[:5]) >= 0 {
		t.Fatal("Morse approach should be downhill to the minimum")
	}
	if BarrierHeight(pts) <= 0 {
		t.Fatal("repulsive wall should register as a positive max")
	}
}

func TestDistanceScanValidation(t *testing.T) {
	mol := chem.Hydrogen(1.4)
	pot := springPot(1, 1)
	if _, err := DistanceScan(mol, pot, 0, 9, 1, []float64{1}); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := DistanceScan(mol, pot, 0, 1, 0, []float64{1}); err == nil {
		t.Fatal("expected fragment error")
	}
	bad := chem.Hydrogen(0)
	if _, err := DistanceScan(bad, pot, 0, 1, 1, []float64{1}); err == nil {
		t.Fatal("expected coincident-atom error")
	}
}

func TestEnergyDriftEmpty(t *testing.T) {
	tr := &Trajectory{Mol: chem.Hydrogen(1.4)}
	if tr.EnergyDrift() != 0 {
		t.Fatal("empty trajectory drift should be 0")
	}
}

var errTest = fmt.Errorf("md: injected test failure")

func TestSCFPotentialPropagatesNonConvergence(t *testing.T) {
	// MaxIter 1 cannot converge: the potential must surface an error so
	// MD/optimizers never silently integrate a garbage surface.
	pot := SCFPotential(scf.Config{MaxIter: 1})
	if _, err := pot(chem.Hydrogen(1.4)); err == nil {
		t.Fatal("expected non-convergence error")
	}
	// And a basis error propagates too.
	bad := SCFPotential(scf.Config{Basis: "NOPE"})
	if _, err := bad(chem.Hydrogen(1.4)); err == nil {
		t.Fatal("expected basis error")
	}
}

func TestForcesErrorPropagation(t *testing.T) {
	failing := func(m *chem.Molecule) (float64, error) {
		return 0, errTest
	}
	if _, err := Forces(chem.Hydrogen(1.4), failing, 1e-4); err == nil {
		t.Fatal("expected propagated error")
	}
	if _, err := Run(chem.Hydrogen(1.4), failing, Options{Steps: 2}); err == nil {
		t.Fatal("expected run error")
	}
}
