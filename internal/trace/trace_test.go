package trace

import (
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(2)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 20000 {
		t.Fatalf("counter %d", c.Value())
	}
}

func TestTimerPhases(t *testing.T) {
	tm := NewTimer()
	tm.Phase("a", func() { time.Sleep(2 * time.Millisecond) })
	tm.Charge("b", 5*time.Millisecond)
	tm.Charge("b", 5*time.Millisecond)
	if tm.Get("a") < 2*time.Millisecond {
		t.Fatalf("phase a %v", tm.Get("a"))
	}
	if tm.Get("b") != 10*time.Millisecond {
		t.Fatalf("phase b %v", tm.Get("b"))
	}
	if tm.Get("missing") != 0 {
		t.Fatal("missing phase should be zero")
	}
	if tm.String() == "" {
		t.Fatal("empty render")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 5000} {
		h.Observe(v)
	}
	counts := h.Counts()
	want := []int64{2, 1, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts %v want %v", counts, want)
		}
	}
	if h.Total() != 5 {
		t.Fatalf("total %d", h.Total())
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Fatalf("median bound %g", q)
	}
	if q := h.Quantile(1.0); q != 100 {
		t.Fatalf("max bound %g", q)
	}
}

func TestHistogramEmptyAndEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if h.Quantile(0.9) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// Edge values land in their bucket (SearchFloat64s: v == edge goes to
	// the bucket whose upper edge is v... i.e. index of first edge ≥ v).
	h.Observe(1)
	if c := h.Counts(); c[0] != 1 {
		t.Fatalf("edge observation %v", c)
	}
}

func TestHistogramPanicsOnBadEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram([]float64{2, 1})
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{10})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(float64(j % 20))
			}
		}()
	}
	wg.Wait()
	if h.Total() != 4000 {
		t.Fatalf("total %d", h.Total())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge %d, want 4", g.Value())
	}
	g.Set(-2)
	if g.Value() != -2 {
		t.Fatalf("gauge %d, want -2", g.Value())
	}
}

func TestRegistryGaugesAndHistograms(t *testing.T) {
	r := NewRegistry()
	r.Gauge("depth").Set(3)
	if got := r.Gauge("depth").Value(); got != 3 {
		t.Fatalf("gauge lookup %d, want 3", got)
	}
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)
	if h2 := r.Histogram("lat", []float64{99}); h2 != h {
		t.Fatal("second Histogram lookup must return the same instance")
	}
	gs := r.Gauges()
	if len(gs) != 1 || gs[0].Name != "depth" || gs[0].Value != 3 {
		t.Fatalf("gauge snapshot %+v", gs)
	}
	hs := r.Histograms()
	if len(hs) != 1 || hs[0].Total != 3 || len(hs[0].Counts) != 3 {
		t.Fatalf("histogram snapshot %+v", hs)
	}
	if s := r.String(); s == "" {
		t.Fatal("String() empty")
	}
}

// TestRegistryConcurrentStress hammers one Registry from many goroutines
// mixing hot-path writes (Add/Charge/Set/Observe) with snapshot reads —
// the access pattern of the hfxd server, where every worker and every
// HTTP handler shares the server registry. Run under -race it is the
// data-race guard for the whole metrics surface.
func TestRegistryConcurrentStress(t *testing.T) {
	r := NewRegistry()
	names := []string{"a", "b", "c", "d"}
	const writers = 12
	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := names[(w+i)%len(names)]
				r.Counter(n).Add(1)
				r.Gauge(n).Add(1)
				r.Histogram(n, []float64{1, 10, 100}).Observe(float64(i % 200))
				r.Timer.Charge(n, time.Microsecond)
				if i%50 == 0 {
					// Snapshot paths race against the writers.
					r.Counters()
					r.Gauges()
					r.Histograms()
					r.Timer.Phases()
					_ = r.String()
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, c := range r.Counters() {
		total += c.Value
	}
	if total != writers*iters {
		t.Fatalf("counter sum %d, want %d", total, writers*iters)
	}
	var htotal int64
	for _, h := range r.Histograms() {
		htotal += h.Total
	}
	if htotal != writers*iters {
		t.Fatalf("histogram total %d, want %d", htotal, writers*iters)
	}
}
