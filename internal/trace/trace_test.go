package trace

import (
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(2)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 20000 {
		t.Fatalf("counter %d", c.Value())
	}
}

func TestTimerPhases(t *testing.T) {
	tm := NewTimer()
	tm.Phase("a", func() { time.Sleep(2 * time.Millisecond) })
	tm.Charge("b", 5*time.Millisecond)
	tm.Charge("b", 5*time.Millisecond)
	if tm.Get("a") < 2*time.Millisecond {
		t.Fatalf("phase a %v", tm.Get("a"))
	}
	if tm.Get("b") != 10*time.Millisecond {
		t.Fatalf("phase b %v", tm.Get("b"))
	}
	if tm.Get("missing") != 0 {
		t.Fatal("missing phase should be zero")
	}
	if tm.String() == "" {
		t.Fatal("empty render")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 5000} {
		h.Observe(v)
	}
	counts := h.Counts()
	want := []int64{2, 1, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts %v want %v", counts, want)
		}
	}
	if h.Total() != 5 {
		t.Fatalf("total %d", h.Total())
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Fatalf("median bound %g", q)
	}
	if q := h.Quantile(1.0); q != 100 {
		t.Fatalf("max bound %g", q)
	}
}

func TestHistogramEmptyAndEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if h.Quantile(0.9) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// Edge values land in their bucket (SearchFloat64s: v == edge goes to
	// the bucket whose upper edge is v... i.e. index of first edge ≥ v).
	h.Observe(1)
	if c := h.Counts(); c[0] != 1 {
		t.Fatalf("edge observation %v", c)
	}
}

func TestHistogramPanicsOnBadEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram([]float64{2, 1})
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{10})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(float64(j % 20))
			}
		}()
	}
	wg.Wait()
	if h.Total() != 4000 {
		t.Fatalf("total %d", h.Total())
	}
}
