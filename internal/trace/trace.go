// Package trace provides the lightweight performance instrumentation used
// across hfxmd: concurrent counters, gauges, phase timers and fixed-bucket
// histograms. It exists so that the execution reports (package hfx), the
// hfxd job service and the command-line tools can account where time goes
// without pulling in any dependency.
package trace

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a concurrent monotonic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a concurrent instantaneous value (queue depth, open builders,
// jobs in flight). Unlike a Counter it may go down and be overwritten.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the gauge.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates wall-clock durations per named phase. It is safe for
// concurrent use; overlapping phases accumulate independently.
type Timer struct {
	mu     sync.Mutex
	phases map[string]time.Duration
}

// NewTimer returns an empty phase timer.
func NewTimer() *Timer { return &Timer{phases: make(map[string]time.Duration)} }

// Phase runs f and charges its duration to the named phase.
func (t *Timer) Phase(name string, f func()) {
	start := time.Now()
	f()
	t.Charge(name, time.Since(start))
}

// Charge adds d to the named phase.
func (t *Timer) Charge(name string, d time.Duration) {
	t.mu.Lock()
	t.phases[name] += d
	t.mu.Unlock()
}

// Reset clears all phases while keeping the map storage, so a timer can
// be reused across iterations without reallocating.
func (t *Timer) Reset() {
	t.mu.Lock()
	clear(t.phases)
	t.mu.Unlock()
}

// Phases returns a snapshot of the accumulated phases sorted by
// descending duration.
func (t *Timer) Phases() []PhaseDuration {
	t.mu.Lock()
	defer t.mu.Unlock()
	rows := make([]PhaseDuration, 0, len(t.phases))
	for k, v := range t.phases {
		rows = append(rows, PhaseDuration{Name: k, D: v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].D != rows[j].D {
			return rows[i].D > rows[j].D
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// PhaseDuration is one row of a Timer snapshot.
type PhaseDuration struct {
	Name string
	D    time.Duration
}

// Get returns the accumulated duration of a phase.
func (t *Timer) Get(name string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.phases[name]
}

// String renders all phases sorted by descending time.
func (t *Timer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	type kv struct {
		k string
		v time.Duration
	}
	rows := make([]kv, 0, len(t.phases))
	for k, v := range t.phases {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].v > rows[j].v })
	s := ""
	for _, r := range rows {
		s += fmt.Sprintf("%-16s %v\n", r.k, r.v)
	}
	return s
}

// Registry is a named collection of counters, gauges and histograms plus
// a phase timer: the metrics surface that long-lived pipeline objects
// (e.g. the persistent HFX builder pool, the hfxd job service) expose
// through their execution reports and /metrics endpoints. Lookup by a
// constant name is allocation-free after the instrument has been
// created, so hot paths may call Counter/Gauge/Histogram per event.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// Timer accumulates the per-phase wall clock of the current
	// iteration; callers Reset it between iterations while the counters
	// persist for the lifetime of the registry.
	Timer *Timer
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		Timer:    NewTimer(),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	r.mu.Unlock()
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	r.mu.Unlock()
	return g
}

// Histogram returns the named histogram, creating it with the given
// edges on first use; the edges of an existing histogram are kept.
func (r *Registry) Histogram(name string, edges []float64) *Histogram {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(edges)
		r.hists[name] = h
	}
	r.mu.Unlock()
	return h
}

// Merge folds another registry's counters into this one (added) — used by
// the hfxd service to absorb the traffic counters of a finished
// distributed build's mprt world into its lifetime /metrics registry.
// Gauges, histograms and the timer are not merged: they describe live
// state of their owner, not accumulated work.
func (r *Registry) Merge(src *Registry) {
	if src == nil || src == r {
		return
	}
	for _, c := range src.Counters() {
		r.Counter(c.Name).Add(c.Value)
	}
}

// CounterValue is one row of a Registry snapshot.
type CounterValue struct {
	Name  string
	Value int64
}

// Counters returns a snapshot of all counters sorted by name.
func (r *Registry) Counters() []CounterValue {
	r.mu.Lock()
	defer r.mu.Unlock()
	rows := make([]CounterValue, 0, len(r.counters))
	for k, c := range r.counters {
		rows = append(rows, CounterValue{Name: k, Value: c.Value()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// GaugeValue is one row of a Registry gauge snapshot.
type GaugeValue struct {
	Name  string
	Value int64
}

// Gauges returns a snapshot of all gauges sorted by name.
func (r *Registry) Gauges() []GaugeValue {
	r.mu.Lock()
	defer r.mu.Unlock()
	rows := make([]GaugeValue, 0, len(r.gauges))
	for k, g := range r.gauges {
		rows = append(rows, GaugeValue{Name: k, Value: g.Value()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// HistogramSnapshot is one row of a Registry histogram snapshot.
type HistogramSnapshot struct {
	Name   string
	Edges  []float64
	Counts []int64 // len(Edges)+1; last entry is overflow
	Total  int64
}

// Histograms returns a snapshot of all histograms sorted by name.
func (r *Registry) Histograms() []HistogramSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	rows := make([]HistogramSnapshot, 0, len(r.hists))
	for k, h := range r.hists {
		rows = append(rows, HistogramSnapshot{
			Name: k, Edges: h.Edges(), Counts: h.Counts(), Total: h.Total(),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// String renders the counters, gauges, histogram quantiles and timer
// phases, in that order, each sorted deterministically.
func (r *Registry) String() string {
	s := ""
	for _, c := range r.Counters() {
		s += fmt.Sprintf("%-24s %d\n", c.Name, c.Value)
	}
	for _, g := range r.Gauges() {
		s += fmt.Sprintf("%-24s %d\n", g.Name, g.Value)
	}
	for _, h := range r.Histograms() {
		r.mu.Lock()
		hh := r.hists[h.Name]
		r.mu.Unlock()
		s += fmt.Sprintf("%-24s n=%d p50<=%g p95<=%g\n", h.Name, h.Total, hh.Quantile(0.5), hh.Quantile(0.95))
	}
	for _, p := range r.Timer.Phases() {
		s += fmt.Sprintf("%-24s %v\n", p.Name, p.D)
	}
	return s
}

// Histogram is a fixed-boundary histogram for positive values (e.g. task
// costs). Boundaries are upper bucket edges; values beyond the last edge
// land in the overflow bucket.
type Histogram struct {
	edges  []float64
	counts []atomic.Int64
}

// NewHistogram creates a histogram with the given ascending upper edges.
func NewHistogram(edges []float64) *Histogram {
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("trace: histogram edges must ascend")
		}
	}
	return &Histogram{
		edges:  append([]float64(nil), edges...),
		counts: make([]atomic.Int64, len(edges)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.edges, v)
	h.counts[i].Add(1)
}

// Edges returns a copy of the bucket upper edges.
func (h *Histogram) Edges() []float64 {
	return append([]float64(nil), h.edges...)
}

// Counts returns the per-bucket counts (last entry is overflow).
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 {
	var t int64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// Quantile returns an upper bound for the q-quantile (0<q≤1) based on the
// bucket edges; +Inf-ish (last edge) when it falls in the overflow bucket.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i < len(h.edges) {
				return h.edges[i]
			}
			return h.edges[len(h.edges)-1]
		}
	}
	return h.edges[len(h.edges)-1]
}
