// Package trace provides the lightweight performance instrumentation used
// across hfxmd: concurrent counters, phase timers and fixed-bucket
// histograms. It exists so that the execution reports (package hfx) and
// the command-line tools can account where time goes without pulling in
// any dependency.
package trace

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a concurrent monotonic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Timer accumulates wall-clock durations per named phase. It is safe for
// concurrent use; overlapping phases accumulate independently.
type Timer struct {
	mu     sync.Mutex
	phases map[string]time.Duration
}

// NewTimer returns an empty phase timer.
func NewTimer() *Timer { return &Timer{phases: make(map[string]time.Duration)} }

// Phase runs f and charges its duration to the named phase.
func (t *Timer) Phase(name string, f func()) {
	start := time.Now()
	f()
	t.Charge(name, time.Since(start))
}

// Charge adds d to the named phase.
func (t *Timer) Charge(name string, d time.Duration) {
	t.mu.Lock()
	t.phases[name] += d
	t.mu.Unlock()
}

// Get returns the accumulated duration of a phase.
func (t *Timer) Get(name string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.phases[name]
}

// String renders all phases sorted by descending time.
func (t *Timer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	type kv struct {
		k string
		v time.Duration
	}
	rows := make([]kv, 0, len(t.phases))
	for k, v := range t.phases {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].v > rows[j].v })
	s := ""
	for _, r := range rows {
		s += fmt.Sprintf("%-16s %v\n", r.k, r.v)
	}
	return s
}

// Histogram is a fixed-boundary histogram for positive values (e.g. task
// costs). Boundaries are upper bucket edges; values beyond the last edge
// land in the overflow bucket.
type Histogram struct {
	edges  []float64
	counts []atomic.Int64
}

// NewHistogram creates a histogram with the given ascending upper edges.
func NewHistogram(edges []float64) *Histogram {
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("trace: histogram edges must ascend")
		}
	}
	return &Histogram{
		edges:  append([]float64(nil), edges...),
		counts: make([]atomic.Int64, len(edges)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.edges, v)
	h.counts[i].Add(1)
}

// Counts returns the per-bucket counts (last entry is overflow).
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 {
	var t int64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// Quantile returns an upper bound for the q-quantile (0<q≤1) based on the
// bucket edges; +Inf-ish (last edge) when it falls in the overflow bucket.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i < len(h.edges) {
				return h.edges[i]
			}
			return h.edges[len(h.edges)-1]
		}
	}
	return h.edges[len(h.edges)-1]
}
