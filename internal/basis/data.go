package basis

import "hfxmd/internal/chem"

// Built-in basis-set parameters. Exponents and contraction coefficients
// are the standard published values (EMSL basis set exchange vintage).
// STO-3G sp shells are stored as separate s and p shells sharing the same
// exponents, which is mathematically identical and simplifies the engine.

// Shared STO-3G contraction patterns: the coefficients of the 1s, 2sp and
// 3sp shells are universal; only the exponents are element-specific.
var (
	sto1sCoefs = []float64{0.15432897, 0.53532814, 0.44463454}
	sto2sCoefs = []float64{-0.09996723, 0.39951283, 0.70011547}
	sto2pCoefs = []float64{0.15591627, 0.60768372, 0.39195739}
	sto3sCoefs = []float64{-0.21962037, 0.22559543, 0.90039843}
	sto3pCoefs = []float64{0.01058760, 0.59516701, 0.46200101}
)

// sto3g builds the template for a first-row element from its 1s and 2sp
// exponent triples.
func sto3gRow1(exp1s []float64) []rawShell {
	return []rawShell{{0, exp1s, sto1sCoefs}}
}

func sto3gRow2(exp1s, exp2sp []float64) []rawShell {
	return []rawShell{
		{0, exp1s, sto1sCoefs},
		{0, exp2sp, sto2sCoefs},
		{1, exp2sp, sto2pCoefs},
	}
}

func sto3gRow3(exp1s, exp2sp, exp3sp []float64) []rawShell {
	return []rawShell{
		{0, exp1s, sto1sCoefs},
		{0, exp2sp, sto2sCoefs},
		{1, exp2sp, sto2pCoefs},
		{0, exp3sp, sto3sCoefs},
		{1, exp3sp, sto3pCoefs},
	}
}

var sto3g = map[chem.Element][]rawShell{
	chem.H:  sto3gRow1([]float64{3.42525091, 0.62391373, 0.16885540}),
	chem.He: sto3gRow1([]float64{6.36242139, 1.15892300, 0.31364979}),
	chem.Li: sto3gRow2(
		[]float64{16.11957475, 2.93620066, 0.79465049},
		[]float64{0.63628975, 0.14786005, 0.04808868}),
	chem.Be: sto3gRow2(
		[]float64{30.16787069, 5.49511531, 1.48719265},
		[]float64{1.31483311, 0.30553894, 0.09937075}),
	chem.B: sto3gRow2(
		[]float64{48.79111318, 8.88736217, 2.40526704},
		[]float64{2.23695614, 0.51982050, 0.16906176}),
	chem.C: sto3gRow2(
		[]float64{71.61683735, 13.04509632, 3.53051216},
		[]float64{2.94124936, 0.68348310, 0.22228992}),
	chem.N: sto3gRow2(
		[]float64{99.10616896, 18.05231239, 4.88566024},
		[]float64{3.78045588, 0.87849664, 0.28571437}),
	chem.O: sto3gRow2(
		[]float64{130.70932140, 23.80886605, 6.44360831},
		[]float64{5.03315132, 1.16959612, 0.38038896}),
	chem.F: sto3gRow2(
		[]float64{166.67913400, 30.36081233, 8.21682067},
		[]float64{6.46480325, 1.50228124, 0.48858849}),
	chem.S: sto3gRow3(
		[]float64{533.12573590, 97.10951830, 26.28162542},
		[]float64{33.32975173, 7.74511752, 2.51895260},
		[]float64{2.02919427, 0.56614005, 0.22158338}),
	chem.Cl: sto3gRow3(
		[]float64{601.34561360, 109.53585420, 29.64467686},
		[]float64{38.96041889, 9.05356348, 2.94449983},
		[]float64{2.12938650, 0.59409343, 0.23252414}),
}

// 3-21G split-valence set for H, C, N, O.
var b321g = map[chem.Element][]rawShell{
	chem.H: {
		{0, []float64{5.4471780, 0.8245470}, []float64{0.1562850, 0.9046910}},
		{0, []float64{0.1831920}, []float64{1.0}},
	},
	chem.C: {
		{0, []float64{172.2560, 25.91090, 5.533350}, []float64{0.0617669, 0.3587940, 0.7007130}},
		{0, []float64{3.664980, 0.7705450}, []float64{-0.3958970, 1.2158400}},
		{1, []float64{3.664980, 0.7705450}, []float64{0.2364600, 0.8606190}},
		{0, []float64{0.1958570}, []float64{1.0}},
		{1, []float64{0.1958570}, []float64{1.0}},
	},
	chem.N: {
		{0, []float64{242.7660, 36.48510, 7.814490}, []float64{0.0598657, 0.3529550, 0.7065130}},
		{0, []float64{5.425220, 1.149150}, []float64{-0.4133010, 1.2244200}},
		{1, []float64{5.425220, 1.149150}, []float64{0.2379720, 0.8589530}},
		{0, []float64{0.2832050}, []float64{1.0}},
		{1, []float64{0.2832050}, []float64{1.0}},
	},
	chem.O: {
		{0, []float64{322.0370, 48.43080, 10.42060}, []float64{0.0592394, 0.3515000, 0.7076580}},
		{0, []float64{7.402940, 1.576200}, []float64{-0.4044530, 1.2215600}},
		{1, []float64{7.402940, 1.576200}, []float64{0.2445860, 0.8539550}},
		{0, []float64{0.3736840}, []float64{1.0}},
		{1, []float64{0.3736840}, []float64{1.0}},
	},
}

// 6-31G split-valence set for H, C, N, O.
var b631g = map[chem.Element][]rawShell{
	chem.H: {
		{0, []float64{18.7311370, 2.8253937, 0.6401217},
			[]float64{0.03349460, 0.23472695, 0.81375733}},
		{0, []float64{0.1612778}, []float64{1.0}},
	},
	chem.C: {
		{0, []float64{3047.5249, 457.36951, 103.94869, 29.210155, 9.2866630, 3.1639270},
			[]float64{0.0018347, 0.0140373, 0.0688426, 0.2321844, 0.4679413, 0.3623120}},
		{0, []float64{7.8682724, 1.8812885, 0.5442493},
			[]float64{-0.1193324, -0.1608542, 1.1434564}},
		{1, []float64{7.8682724, 1.8812885, 0.5442493},
			[]float64{0.0689991, 0.3164240, 0.7443083}},
		{0, []float64{0.1687144}, []float64{1.0}},
		{1, []float64{0.1687144}, []float64{1.0}},
	},
	chem.N: {
		{0, []float64{4173.5110, 627.45790, 142.90210, 40.234330, 12.820210, 4.3904370},
			[]float64{0.0018348, 0.0139950, 0.0685870, 0.2322410, 0.4690700, 0.3604550}},
		{0, []float64{11.626358, 2.7162800, 0.7722180},
			[]float64{-0.1149610, -0.1691180, 1.1458520}},
		{1, []float64{11.626358, 2.7162800, 0.7722180},
			[]float64{0.0675800, 0.3239070, 0.7408950}},
		{0, []float64{0.2120313}, []float64{1.0}},
		{1, []float64{0.2120313}, []float64{1.0}},
	},
	chem.O: {
		{0, []float64{5484.6717, 825.23495, 188.04696, 52.964500, 16.897570, 5.7996353},
			[]float64{0.0018311, 0.0139501, 0.0684451, 0.2327143, 0.4701930, 0.3585209}},
		{0, []float64{15.539616, 3.5999336, 1.0137618},
			[]float64{-0.1107775, -0.1480263, 1.1307670}},
		{1, []float64{15.539616, 3.5999336, 1.0137618},
			[]float64{0.0708743, 0.3397528, 0.7271586}},
		{0, []float64{0.2700058}, []float64{1.0}},
		{1, []float64{0.2700058}, []float64{1.0}},
	},
}

// b631gStar is 6-31G* (6-31G(d)): 6-31G plus a single Cartesian
// d-polarization shell (exponent 0.8) on each heavy atom. Hydrogens are
// unchanged.
var b631gStar = func() map[chem.Element][]rawShell {
	out := map[chem.Element][]rawShell{}
	for el, shells := range b631g {
		cp := append([]rawShell(nil), shells...)
		if el != chem.H {
			cp = append(cp, rawShell{2, []float64{0.8}, []float64{1.0}})
		}
		out[el] = cp
	}
	return out
}()

// registry maps basis-set names to element templates.
var registry = map[string]map[chem.Element][]rawShell{
	"STO-3G": sto3g,
	"3-21G":  b321g,
	"6-31G":  b631g,
	"6-31G*": b631gStar,
}
