// Package basis implements contracted Cartesian Gaussian basis sets: shell
// and primitive data structures, normalization, shell-pair preprocessing,
// and a registry of built-in basis sets (STO-3G, 3-21G, 6-31G) for the
// elements appearing in the Li/air electrolyte workloads (H, He, Li, Be,
// B, C, N, O, F, S, Cl).
//
// Conventions: a shell of angular momentum L carries (L+1)(L+2)/2
// Cartesian components ordered lexicographically by decreasing x-power
// (e.g. p: x,y,z; d: xx,xy,xz,yy,yz,zz). Contraction coefficients stored in
// Shell.Coefs already include primitive and contracted normalization for
// the (L,0,0) component; the remaining components of d and higher shells
// are renormalized inside the integral engine.
package basis

import (
	"fmt"
	"math"
	"sort"

	"hfxmd/internal/chem"
)

// Shell is a contracted Cartesian Gaussian shell centred on an atom.
type Shell struct {
	// L is the angular momentum (0=s, 1=p, 2=d).
	L int
	// Exps are the primitive exponents, sorted descending.
	Exps []float64
	// Coefs are fully normalized contraction coefficients (same length
	// as Exps).
	Coefs []float64
	// Center is the shell origin in bohr.
	Center chem.Vec3
	// Atom is the index of the parent atom in the molecule.
	Atom int
	// Index is the offset of this shell's first basis function in the
	// full basis enumeration.
	Index int
}

// NFuncs returns the number of Cartesian components of the shell.
func (s *Shell) NFuncs() int { return (s.L + 1) * (s.L + 2) / 2 }

// NPrims returns the number of primitives.
func (s *Shell) NPrims() int { return len(s.Exps) }

// MinExp returns the smallest (most diffuse) exponent in the shell.
func (s *Shell) MinExp() float64 {
	m := s.Exps[0]
	for _, e := range s.Exps[1:] {
		if e < m {
			m = e
		}
	}
	return m
}

// Extent returns the radius beyond which the shell's radial amplitude is
// below eps, used for the condensed-phase distance screening of the paper.
// For a Gaussian exp(-α r²) the extent is sqrt(ln(1/eps)/α) for the most
// diffuse primitive.
func (s *Shell) Extent(eps float64) float64 {
	if eps <= 0 || eps >= 1 {
		eps = 1e-10
	}
	return math.Sqrt(math.Log(1/eps) / s.MinExp())
}

// Set is a basis set instantiated on a molecule: a list of shells plus a
// lookup from basis-function index to shell.
type Set struct {
	Shells []Shell
	// NBasis is the total number of Cartesian basis functions.
	NBasis int
	// Mol is the molecule the basis was built for.
	Mol *chem.Molecule
	// Name records the basis set name ("STO-3G", ...).
	Name string
}

// NShells returns the number of shells.
func (b *Set) NShells() int { return len(b.Shells) }

// ShellOf returns the index of the shell containing basis function i.
func (b *Set) ShellOf(i int) int {
	lo, hi := 0, len(b.Shells)
	for lo < hi {
		mid := (lo + hi) / 2
		sh := &b.Shells[mid]
		if i < sh.Index {
			hi = mid
		} else if i >= sh.Index+sh.NFuncs() {
			lo = mid + 1
		} else {
			return mid
		}
	}
	panic(fmt.Sprintf("basis: function index %d out of range", i))
}

// MaxL returns the largest angular momentum in the set.
func (b *Set) MaxL() int {
	m := 0
	for i := range b.Shells {
		if b.Shells[i].L > m {
			m = b.Shells[i].L
		}
	}
	return m
}

// doubleFactorial returns n!! with (-1)!! = 1.
func doubleFactorial(n int) float64 {
	r := 1.0
	for ; n > 1; n -= 2 {
		r *= float64(n)
	}
	return r
}

// primitiveNorm returns the normalization constant of the Cartesian
// primitive x^L e^{-α r²} (the (L,0,0) component).
func primitiveNorm(alpha float64, l int) float64 {
	num := math.Pow(2*alpha/math.Pi, 0.75) * math.Pow(4*alpha, 0.5*float64(l))
	return num / math.Sqrt(doubleFactorial(2*l-1))
}

// normalizeShell folds primitive and contraction normalization into the
// coefficient array (for the (L,0,0) component convention).
func normalizeShell(l int, exps, coefs []float64) []float64 {
	out := make([]float64, len(coefs))
	for i := range coefs {
		out[i] = coefs[i] * primitiveNorm(exps[i], l)
	}
	// Contracted self-overlap of the (L,0,0) component.
	var s float64
	df := doubleFactorial(2*l - 1)
	for i := range out {
		for j := range out {
			p := exps[i] + exps[j]
			s += out[i] * out[j] * math.Pow(math.Pi/p, 1.5) * df / math.Pow(2*p, float64(l))
		}
	}
	inv := 1.0 / math.Sqrt(s)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// rawShell is an element-level shell template before instantiation.
type rawShell struct {
	l     int
	exps  []float64
	coefs []float64
}

// Build instantiates the named basis set on a molecule. It returns an
// error when the set lacks parameters for one of the molecule's elements.
func Build(name string, mol *chem.Molecule) (*Set, error) {
	tmpl, ok := registry[name]
	if !ok {
		names := make([]string, 0, len(registry))
		for k := range registry {
			names = append(names, k)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("basis: unknown basis set %q (have %v)", name, names)
	}
	set := &Set{Mol: mol, Name: name}
	for ai, atom := range mol.Atoms {
		shells, ok := tmpl[atom.El]
		if !ok {
			return nil, fmt.Errorf("basis: %s has no parameters for element %s", name, atom.El)
		}
		for _, rs := range shells {
			sh := Shell{
				L:      rs.l,
				Exps:   append([]float64(nil), rs.exps...),
				Coefs:  normalizeShell(rs.l, rs.exps, rs.coefs),
				Center: atom.Pos,
				Atom:   ai,
				Index:  set.NBasis,
			}
			set.Shells = append(set.Shells, sh)
			set.NBasis += sh.NFuncs()
		}
	}
	return set, nil
}

// MustBuild is Build that panics on error, for tests and examples with
// known-supported systems.
func MustBuild(name string, mol *chem.Molecule) *Set {
	b, err := Build(name, mol)
	if err != nil {
		panic(err)
	}
	return b
}

// Available returns the names of the built-in basis sets.
func Available() []string {
	names := make([]string, 0, len(registry))
	for k := range registry {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// SupportedElements returns the elements parameterised in the named set.
func SupportedElements(name string) []chem.Element {
	tmpl, ok := registry[name]
	if !ok {
		return nil
	}
	els := make([]chem.Element, 0, len(tmpl))
	for e := range tmpl {
		els = append(els, e)
	}
	sort.Slice(els, func(i, j int) bool { return els[i] < els[j] })
	return els
}
