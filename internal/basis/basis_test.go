package basis

import (
	"math"
	"testing"

	"hfxmd/internal/chem"
)

func TestBuildWaterSTO3G(t *testing.T) {
	b := MustBuild("STO-3G", chem.Water())
	// O: 1s, 2s, 2p (1+1+3 = 5 funcs); 2 H: 1s each → 7 total.
	if b.NBasis != 7 {
		t.Fatalf("NBasis %d want 7", b.NBasis)
	}
	if b.NShells() != 5 {
		t.Fatalf("NShells %d want 5", b.NShells())
	}
	if b.MaxL() != 1 {
		t.Fatalf("MaxL %d", b.MaxL())
	}
}

func TestBuildUnknownBasis(t *testing.T) {
	if _, err := Build("BOGUS", chem.Water()); err == nil {
		t.Fatal("expected error for unknown basis")
	}
}

func TestBuildMissingElement(t *testing.T) {
	// 6-31G here lacks Li.
	if _, err := Build("6-31G", chem.LithiumHydride()); err == nil {
		t.Fatal("expected error for missing Li in 6-31G")
	}
}

func TestShellOf(t *testing.T) {
	b := MustBuild("STO-3G", chem.Water())
	for i := 0; i < b.NBasis; i++ {
		si := b.ShellOf(i)
		sh := &b.Shells[si]
		if i < sh.Index || i >= sh.Index+sh.NFuncs() {
			t.Fatalf("ShellOf(%d) = %d has range [%d,%d)", i, si, sh.Index, sh.Index+sh.NFuncs())
		}
	}
}

func TestShellIndexContiguity(t *testing.T) {
	b := MustBuild("STO-3G", chem.PropyleneCarbonate())
	next := 0
	for i := range b.Shells {
		if b.Shells[i].Index != next {
			t.Fatalf("shell %d index %d want %d", i, b.Shells[i].Index, next)
		}
		next += b.Shells[i].NFuncs()
	}
	if next != b.NBasis {
		t.Fatalf("sum of shell sizes %d != NBasis %d", next, b.NBasis)
	}
}

// selfOverlap computes the analytic self-overlap of the (L,0,0) component
// of a normalized shell; it must be 1.
func selfOverlap(sh *Shell) float64 {
	df := 1.0
	for n := 2*sh.L - 1; n > 1; n -= 2 {
		df *= float64(n)
	}
	var s float64
	for i := range sh.Exps {
		for j := range sh.Exps {
			p := sh.Exps[i] + sh.Exps[j]
			s += sh.Coefs[i] * sh.Coefs[j] * math.Pow(math.Pi/p, 1.5) * df / math.Pow(2*p, float64(sh.L))
		}
	}
	return s
}

func TestShellNormalization(t *testing.T) {
	for _, name := range Available() {
		for _, el := range SupportedElements(name) {
			mol := &chem.Molecule{Atoms: []chem.Atom{{El: el}}}
			b := MustBuild(name, mol)
			for i := range b.Shells {
				if s := selfOverlap(&b.Shells[i]); math.Abs(s-1) > 1e-10 {
					t.Errorf("%s %s shell %d (L=%d): self-overlap %.12f", name, el, i, b.Shells[i].L, s)
				}
			}
		}
	}
}

func TestExtentMonotonicity(t *testing.T) {
	b := MustBuild("STO-3G", chem.Water())
	sh := &b.Shells[0]
	if !(sh.Extent(1e-12) > sh.Extent(1e-6)) {
		t.Fatal("tighter eps must give larger extent")
	}
	// Garbage eps falls back to a sane default.
	if sh.Extent(-1) <= 0 || sh.Extent(2) <= 0 {
		t.Fatal("extent fallback broken")
	}
}

func TestAvailable(t *testing.T) {
	names := Available()
	want := map[string]bool{"STO-3G": true, "3-21G": true, "6-31G": true, "6-31G*": true}
	if len(names) != len(want) {
		t.Fatalf("Available() = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected basis %q", n)
		}
	}
}

func TestSupportedElements(t *testing.T) {
	els := SupportedElements("STO-3G")
	has := func(e chem.Element) bool {
		for _, x := range els {
			if x == e {
				return true
			}
		}
		return false
	}
	for _, e := range []chem.Element{chem.H, chem.Li, chem.C, chem.O, chem.S} {
		if !has(e) {
			t.Fatalf("STO-3G missing %s", e)
		}
	}
	if SupportedElements("BOGUS") != nil {
		t.Fatal("expected nil for unknown set")
	}
}

func TestSplitValenceCounts(t *testing.T) {
	// 6-31G water: O 3s2p (3+6=9... count: s,s,p,s,p = 1+1+3+1+3=9), H 2s each.
	b := MustBuild("6-31G", chem.Water())
	if b.NBasis != 9+2+2 {
		t.Fatalf("6-31G water NBasis %d want 13", b.NBasis)
	}
	b = MustBuild("3-21G", chem.Water())
	if b.NBasis != 9+2+2 {
		t.Fatalf("3-21G water NBasis %d want 13", b.NBasis)
	}
}

func TestDoubleFactorial(t *testing.T) {
	cases := map[int]float64{-1: 1, 0: 1, 1: 1, 2: 2, 3: 3, 5: 15, 7: 105}
	for n, want := range cases {
		if got := doubleFactorial(n); got != want {
			t.Fatalf("(%d)!! = %g want %g", n, got, want)
		}
	}
}
