// Package linalg provides the dense linear algebra needed by the SCF and
// HFX machinery: a simple row-major matrix type, symmetric eigensolvers
// (Householder tridiagonalisation followed by implicit-shift QL), Cholesky
// factorisation, and the Löwdin symmetric orthogonalisation used to build
// the SCF transformation matrix.
//
// The package is deliberately self-contained (stdlib only) and tuned for
// the modest matrix sizes (N ≲ a few thousand basis functions) that appear
// in the cluster models driven by this repository. Hot loops are written
// cache-friendly (row-major, ikj products).
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewSquare allocates a zeroed n×n matrix.
func NewSquare(n int) *Matrix { return NewMatrix(n, n) }

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewSquare(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i,j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom overwrites m with src (dimensions must match).
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("linalg: CopyFrom dimension mismatch")
	}
	copy(m.Data, src.Data)
}

// Zero clears all elements.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AXPY performs m += a*x elementwise and returns m.
func (m *Matrix) AXPY(a float64, x *Matrix) *Matrix {
	if m.Rows != x.Rows || m.Cols != x.Cols {
		panic("linalg: AXPY dimension mismatch")
	}
	for i := range m.Data {
		m.Data[i] += a * x.Data[i]
	}
	return m
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j, v := range ri {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Mul returns a*b as a new matrix using a cache-friendly ikj loop order.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bkj := range brow {
				crow[j] += aik * bkj
			}
		}
	}
	return c
}

// MulABt returns a·bᵀ without materialising the transpose.
func MulABt(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic("linalg: MulABt dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			crow[j] = s
		}
	}
	return c
}

// Trace returns the trace of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("linalg: Trace of non-square matrix")
	}
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.At(i, i)
	}
	return t
}

// TraceMul returns tr(a·b) without forming the product; a and b must be
// square with matching dimensions. For symmetric b this equals Σ a∘bᵀ.
func TraceMul(a, b *Matrix) float64 {
	if a.Cols != b.Rows || a.Rows != b.Cols {
		panic("linalg: TraceMul dimension mismatch")
	}
	var t float64
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		for k, av := range arow {
			t += av * b.At(k, i)
		}
	}
	return t
}

// MaxAbsDiff returns max |a-b| over all elements.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: MaxAbsDiff dimension mismatch")
	}
	var m float64
	for i, v := range a.Data {
		d := math.Abs(v - b.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Symmetrize overwrites m with (m + mᵀ)/2.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("linalg: Symmetrize of non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// IsSymmetric reports whether max |m - mᵀ| ≤ tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%12.6f ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
