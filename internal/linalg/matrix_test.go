package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMulIdentity(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}})
	p := Mul(a, Identity(3))
	if MaxAbsDiff(a, p) > 1e-15 {
		t.Fatalf("A·I != A, diff %g", MaxAbsDiff(a, p))
	}
	p = Mul(Identity(3), a)
	if MaxAbsDiff(a, p) > 1e-15 {
		t.Fatalf("I·A != A")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(c, want) > 1e-14 {
		t.Fatalf("got %v want %v", c, want)
	}
}

func TestMulABt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(4, 6)
	b := NewMatrix(5, 6)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	got := MulABt(a, b)
	want := Mul(a, b.T())
	if MaxAbsDiff(got, want) > 1e-13 {
		t.Fatalf("MulABt mismatch %g", MaxAbsDiff(got, want))
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		m := NewMatrix(r, c)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		return MaxAbsDiff(m, m.T().T()) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTraceMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewSquare(5)
	b := NewSquare(5)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
		b.Data[i] = rng.NormFloat64()
	}
	want := Mul(a, b).Trace()
	got := TraceMul(a, b)
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("TraceMul got %g want %g", got, want)
	}
}

func randomSymmetric(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewSquare(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestEigenSymReconstruction(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 10, 25, 60} {
		a := randomSymmetric(n, int64(n))
		vals, vecs := EigenSym(a)
		// Check A·v = λ·v for every pair.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				var av float64
				for j := 0; j < n; j++ {
					av += a.At(i, j) * vecs.At(j, k)
				}
				if !almostEqual(av, vals[k]*vecs.At(i, k), 1e-9*float64(n)) {
					t.Fatalf("n=%d: eigenpair %d violates A·v=λ·v at row %d: %g vs %g",
						n, k, i, av, vals[k]*vecs.At(i, k))
				}
			}
		}
		// Eigenvalues ascending.
		for k := 1; k < n; k++ {
			if vals[k] < vals[k-1] {
				t.Fatalf("n=%d: eigenvalues not ascending", n)
			}
		}
		// Orthonormality of eigenvectors.
		vtv := Mul(vecs.T(), vecs)
		if MaxAbsDiff(vtv, Identity(n)) > 1e-10*float64(n) {
			t.Fatalf("n=%d: eigenvectors not orthonormal (err %g)", n, MaxAbsDiff(vtv, Identity(n)))
		}
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0, 0}, {0, -1, 0}, {0, 0, 2}})
	vals, _ := EigenSym(a)
	want := []float64{-1, 2, 3}
	for i := range want {
		if !almostEqual(vals[i], want[i], 1e-12) {
			t.Fatalf("diagonal eigenvalues got %v want %v", vals, want)
		}
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, _ := EigenSym(a)
	if !almostEqual(vals[0], 1, 1e-12) || !almostEqual(vals[1], 3, 1e-12) {
		t.Fatalf("got %v want [1 3]", vals)
	}
}

func TestCholesky(t *testing.T) {
	// Build SPD matrix A = B·Bᵀ + n·I.
	n := 8
	b := randomSymmetric(n, 3)
	a := Mul(b, b.T())
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	llt := MulABt(l, l)
	if MaxAbsDiff(a, llt) > 1e-10 {
		t.Fatalf("L·Lᵀ != A (err %g)", MaxAbsDiff(a, llt))
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestLowdin(t *testing.T) {
	// X = S^{-1/2} must satisfy Xᵀ·S·X = I.
	n := 6
	b := randomSymmetric(n, 11)
	s := Mul(b, b.T())
	for i := 0; i < n; i++ {
		s.Add(i, i, 1)
	}
	x := LowdinOrthogonalizer(s, 1e-10)
	xsx := Mul(x.T(), Mul(s, x))
	if MaxAbsDiff(xsx, Identity(x.Cols)) > 1e-9 {
		t.Fatalf("Xᵀ S X != I (err %g)", MaxAbsDiff(xsx, Identity(x.Cols)))
	}
}

func TestLowdinCanonicalDropsLinearDependence(t *testing.T) {
	// Overlap with a near-zero eigenvalue must lose a column.
	s := FromRows([][]float64{
		{1, 1 - 1e-13},
		{1 - 1e-13, 1},
	})
	x := LowdinOrthogonalizer(s, 1e-8)
	if x.Cols != 1 {
		t.Fatalf("expected 1 surviving column, got %d", x.Cols)
	}
}

func TestSolveLinear(t *testing.T) {
	a := FromRows([][]float64{{4, 1, 0}, {1, 3, -1}, {0, -1, 2}})
	want := FromRows([][]float64{{1}, {2}, {3}})
	b := Mul(a, want)
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(x, want) > 1e-11 {
		t.Fatalf("solve mismatch: got %v want %v", x, want)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	b := FromRows([][]float64{{1}, {2}})
	if _, err := SolveLinear(a, b); err == nil {
		t.Fatal("expected singularity error")
	}
}

func TestSymmetrize(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {4, 3}})
	m.Symmetrize()
	if !m.IsSymmetric(0) {
		t.Fatal("not symmetric after Symmetrize")
	}
	if m.At(0, 1) != 3 {
		t.Fatalf("expected mean 3, got %g", m.At(0, 1))
	}
}

func TestPropertyEigenTraceInvariant(t *testing.T) {
	// Sum of eigenvalues equals the trace (similarity invariant).
	f := func(seed int64) bool {
		n := 3 + int(uint64(seed)%6)
		a := randomSymmetric(n, seed)
		vals, _ := EigenSym(a)
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return almostEqual(sum, a.Trace(), 1e-9*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCholeskyDeterminant(t *testing.T) {
	// det(A) = Π L_ii² — cross-validate against eigenvalue product.
	f := func(seed int64) bool {
		n := 2 + int(uint64(seed)%5)
		b := randomSymmetric(n, seed)
		a := Mul(b, b.T())
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		detL := 1.0
		for i := 0; i < n; i++ {
			detL *= l.At(i, i) * l.At(i, i)
		}
		vals, _ := EigenSym(a)
		detE := 1.0
		for _, v := range vals {
			detE *= v
		}
		return math.Abs(detL-detE) <= 1e-7*math.Abs(detE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEigenSym100(b *testing.B) {
	a := randomSymmetric(100, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EigenSym(a)
	}
}

func BenchmarkMul200(b *testing.B) {
	m := randomSymmetric(200, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(m, m)
	}
}
