package linalg

import (
	"fmt"
	"math"
)

// EigenSym computes all eigenvalues and eigenvectors of the symmetric
// matrix a. It returns the eigenvalues in ascending order and a matrix
// whose COLUMNS are the corresponding orthonormal eigenvectors.
//
// The implementation is the classic two-stage dense path: Householder
// reduction to tridiagonal form followed by the implicit-shift QL
// iteration (tql2), the same algorithm used by EISPACK and Numerical
// Recipes. It is O(N^3) and robust for the matrix sizes used here.
func EigenSym(a *Matrix) (vals []float64, vecs *Matrix) {
	if a.Rows != a.Cols {
		panic("linalg: EigenSym of non-square matrix")
	}
	n := a.Rows
	z := a.Clone() // will hold the accumulated transformations
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(z, d, e)
	if err := tql2(z, d, e); err != nil {
		panic(err)
	}
	sortEigen(d, z)
	return d, z
}

// tred2 reduces the symmetric matrix stored in z to tridiagonal form via
// Householder similarity transforms, accumulating the orthogonal matrix in
// z. On output d holds the diagonal, e the sub-diagonal (e[0] unused).
func tred2(z *Matrix, d, e []float64) {
	n := z.Rows
	for i := 0; i < n; i++ {
		d[i] = z.At(n-1, i)
	}
	for i := n - 1; i > 0; i-- {
		// Scale to avoid under/overflow.
		var scale, h float64
		for k := 0; k < i; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = z.At(i-1, j)
				z.Set(i, j, 0)
				z.Set(j, i, 0)
			}
		} else {
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}
			// Apply similarity transformation to remaining columns.
			for j := 0; j < i; j++ {
				f = d[j]
				z.Set(j, i, f)
				g = e[j] + z.At(j, j)*f
				for k := j + 1; k <= i-1; k++ {
					g += z.At(k, j) * d[k]
					e[k] += z.At(k, j) * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			for j := 0; j < i; j++ {
				f = d[j]
				g = e[j]
				for k := j; k <= i-1; k++ {
					z.Set(k, j, z.At(k, j)-(f*e[k]+g*d[k]))
				}
				d[j] = z.At(i-1, j)
				z.Set(i, j, 0)
			}
		}
		d[i] = h
	}
	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		z.Set(n-1, i, z.At(i, i))
		z.Set(i, i, 1)
		h := d[i+1]
		if h != 0 {
			for k := 0; k <= i; k++ {
				d[k] = z.At(k, i+1) / h
			}
			for j := 0; j <= i; j++ {
				var g float64
				for k := 0; k <= i; k++ {
					g += z.At(k, i+1) * z.At(k, j)
				}
				for k := 0; k <= i; k++ {
					z.Set(k, j, z.At(k, j)-g*d[k])
				}
			}
		}
		for k := 0; k <= i; k++ {
			z.Set(k, i+1, 0)
		}
	}
	for j := 0; j < n; j++ {
		d[j] = z.At(n-1, j)
		z.Set(n-1, j, 0)
	}
	z.Set(n-1, n-1, 1)
	e[0] = 0
}

// tql2 is the implicit-shift QL iteration for a symmetric tridiagonal
// matrix (diagonal d, sub-diagonal e), accumulating eigenvectors into z.
func tql2(z *Matrix, d, e []float64) error {
	n := z.Rows
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	var f, tst1 float64
	eps := math.Nextafter(1, 2) - 1 // machine epsilon
	for l := 0; l < n; l++ {
		tst1 = math.Max(tst1, math.Abs(d[l])+math.Abs(e[l]))
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				if iter >= 50 {
					return fmt.Errorf("linalg: tql2 failed to converge at eigenvalue %d", l)
				}
				// Compute implicit shift.
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				// Implicit QL transformation.
				p = d[m]
				c := 1.0
				c2, c3 := c, c
				el1 := e[l+1]
				var s, s2 float64
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					// Accumulate transformation.
					for k := 0; k < n; k++ {
						h = z.At(k, i+1)
						z.Set(k, i+1, s*z.At(k, i)+c*h)
						z.Set(k, i, c*z.At(k, i)-s*h)
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
	return nil
}

// sortEigen sorts eigenvalues ascending, permuting eigenvector columns.
func sortEigen(d []float64, z *Matrix) {
	n := len(d)
	for i := 0; i < n-1; i++ {
		k := i
		p := d[i]
		for j := i + 1; j < n; j++ {
			if d[j] < p {
				k = j
				p = d[j]
			}
		}
		if k != i {
			d[k] = d[i]
			d[i] = p
			for r := 0; r < n; r++ {
				tmp := z.At(r, i)
				z.Set(r, i, z.At(r, k))
				z.Set(r, k, tmp)
			}
		}
	}
}

// Cholesky computes the lower-triangular L with a = L·Lᵀ for a symmetric
// positive-definite matrix. It returns an error if a is not (numerically)
// positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewSquare(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (s=%g)", i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// LowdinOrthogonalizer returns X = S^{-1/2} via the spectral decomposition
// of the (symmetric positive definite) overlap matrix S. Eigenvalues below
// lindep are discarded (canonical orthogonalisation), in which case X is
// rectangular N×M with M ≤ N.
func LowdinOrthogonalizer(s *Matrix, lindep float64) *Matrix {
	vals, vecs := EigenSym(s)
	n := s.Rows
	keep := make([]int, 0, n)
	for i, v := range vals {
		if v > lindep {
			keep = append(keep, i)
		}
	}
	x := NewMatrix(n, len(keep))
	for j, col := range keep {
		inv := 1.0 / math.Sqrt(vals[col])
		for i := 0; i < n; i++ {
			x.Set(i, j, vecs.At(i, col)*inv)
		}
	}
	return x
}

// SolveLinear solves a·x = b for x by Gaussian elimination with partial
// pivoting. a and b are not modified. b may have multiple columns.
func SolveLinear(a, b *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: SolveLinear needs square a")
	}
	if a.Rows != b.Rows {
		return nil, fmt.Errorf("linalg: SolveLinear dimension mismatch")
	}
	n := a.Rows
	m := b.Cols
	aug := NewMatrix(n, n+m)
	for i := 0; i < n; i++ {
		copy(aug.Row(i)[:n], a.Row(i))
		copy(aug.Row(i)[n:], b.Row(i))
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		best := math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug.At(r, col)); v > best {
				best = v
				piv = r
			}
		}
		if best < 1e-14 {
			return nil, fmt.Errorf("linalg: singular matrix in SolveLinear at column %d", col)
		}
		if piv != col {
			rp, rc := aug.Row(piv), aug.Row(col)
			for k := range rp {
				rp[k], rc[k] = rc[k], rp[k]
			}
		}
		inv := 1.0 / aug.At(col, col)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug.At(r, col) * inv
			if f == 0 {
				continue
			}
			rr, rc := aug.Row(r), aug.Row(col)
			for k := col; k < n+m; k++ {
				rr[k] -= f * rc[k]
			}
		}
	}
	x := NewMatrix(n, m)
	for i := 0; i < n; i++ {
		inv := 1.0 / aug.At(i, i)
		for j := 0; j < m; j++ {
			x.Set(i, j, aug.At(i, n+j)*inv)
		}
	}
	return x, nil
}
