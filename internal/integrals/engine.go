package integrals

import (
	"math"
	"sync"

	"hfxmd/internal/basis"
	"hfxmd/internal/boys"
	"hfxmd/internal/linalg"
)

// Engine evaluates molecular integrals over a basis.Set. It is safe for
// concurrent use: per-call scratch is allocated locally and the shell-
// pair cache is guarded by a read-mostly lock.
type Engine struct {
	Basis *basis.Set
	// Vector enables the QPX-style 4-wide batched Boys evaluation inside
	// the ERI kernel (see package qpx); results are identical, the point
	// is the kernel structure and its performance accounting.
	Vector bool

	// pairCache memoises the Hermite E tables of every shell pair
	// (indexed a·NShells+b), built lazily on first use.
	pairMu    sync.RWMutex
	pairCache [][]pairData
}

// NewEngine returns an integral engine over the given basis.
func NewEngine(b *basis.Set) *Engine { return &Engine{Basis: b} }

// twoPi52 = 2·π^{5/2}, the ERI prefactor.
var twoPi52 = 2 * math.Pow(math.Pi, 2.5)

// Overlap returns the overlap matrix S.
func (e *Engine) Overlap() *linalg.Matrix {
	return e.oneElectron(func(sa, sb *basis.Shell) []float64 {
		return overlapBlock(sa, sb)
	})
}

// Kinetic returns the kinetic-energy matrix T.
func (e *Engine) Kinetic() *linalg.Matrix {
	return e.oneElectron(func(sa, sb *basis.Shell) []float64 {
		return kineticBlock(sa, sb)
	})
}

// Nuclear returns the nuclear-attraction matrix V (negative definite-ish,
// summed over all nuclei with charges −Z).
func (e *Engine) Nuclear() *linalg.Matrix {
	return e.oneElectron(func(sa, sb *basis.Shell) []float64 {
		return nuclearBlock(sa, sb, e.Basis)
	})
}

// CoreHamiltonian returns H = T + V.
func (e *Engine) CoreHamiltonian() *linalg.Matrix {
	h := e.Kinetic()
	h.AXPY(1, e.Nuclear())
	return h
}

// oneElectron assembles a symmetric one-electron matrix from shell-pair
// blocks produced by block (row-major na×nb).
func (e *Engine) oneElectron(block func(sa, sb *basis.Shell) []float64) *linalg.Matrix {
	n := e.Basis.NBasis
	m := linalg.NewSquare(n)
	for i := range e.Basis.Shells {
		sa := &e.Basis.Shells[i]
		for j := i; j < len(e.Basis.Shells); j++ {
			sb := &e.Basis.Shells[j]
			blk := block(sa, sb)
			na, nb := sa.NFuncs(), sb.NFuncs()
			for a := 0; a < na; a++ {
				for b := 0; b < nb; b++ {
					v := blk[a*nb+b]
					m.Set(sa.Index+a, sb.Index+b, v)
					m.Set(sb.Index+b, sa.Index+a, v)
				}
			}
		}
	}
	return m
}

// overlap1D returns the 1D overlap factor ⟨x_A^i | x_B^j⟩ = E_0^{ij}·√(π/p).
func overlap1D(et *eTable, i, j int, p float64) float64 {
	return et.at(i, j, 0) * math.Sqrt(math.Pi/p)
}

// overlapBlock returns the shell-pair overlap block (row-major na×nb).
func overlapBlock(sa, sb *basis.Shell) []float64 {
	ca, cb := Components(sa.L), Components(sb.L)
	out := make([]float64, len(ca)*len(cb))
	ab := [3]float64{
		sa.Center[0] - sb.Center[0],
		sa.Center[1] - sb.Center[1],
		sa.Center[2] - sb.Center[2],
	}
	for ia, ea := range sa.Exps {
		for ib, eb := range sb.Exps {
			coef := sa.Coefs[ia] * sb.Coefs[ib]
			p := ea + eb
			var ets [3]*eTable
			for d := 0; d < 3; d++ {
				ets[d] = buildETable(sa.L, sb.L, ab[d], ea, eb)
			}
			for a, compA := range ca {
				na := componentNorm(compA)
				for b, compB := range cb {
					nb := componentNorm(compB)
					v := overlap1D(ets[0], compA.X, compB.X, p) *
						overlap1D(ets[1], compA.Y, compB.Y, p) *
						overlap1D(ets[2], compA.Z, compB.Z, p)
					out[a*len(cb)+b] += coef * na * nb * v
				}
			}
		}
	}
	return out
}

// kineticBlock returns the shell-pair kinetic-energy block.
//
// The kinetic integral decomposes per dimension using
//
//	T_ij = b(2j+1)·S_ij − 2b²·S_{i,j+2} − ½j(j−1)·S_{i,j−2}
//
// applied to the x, y, z factors in turn while the other two dimensions
// contribute plain overlaps.
func kineticBlock(sa, sb *basis.Shell) []float64 {
	ca, cb := Components(sa.L), Components(sb.L)
	out := make([]float64, len(ca)*len(cb))
	ab := [3]float64{
		sa.Center[0] - sb.Center[0],
		sa.Center[1] - sb.Center[1],
		sa.Center[2] - sb.Center[2],
	}
	for ia, ea := range sa.Exps {
		for ib, eb := range sb.Exps {
			coef := sa.Coefs[ia] * sb.Coefs[ib]
			p := ea + eb
			var ets [3]*eTable
			for d := 0; d < 3; d++ {
				// j+2 shifted overlaps require jmax+2 in the table.
				ets[d] = buildETable(sa.L, sb.L+2, ab[d], ea, eb)
			}
			s := func(d, i, j int) float64 {
				if i < 0 || j < 0 {
					return 0
				}
				return overlap1D(ets[d], i, j, p)
			}
			t1D := func(d, i, j int) float64 {
				v := eb * float64(2*j+1) * s(d, i, j)
				v -= 2 * eb * eb * s(d, i, j+2)
				if j >= 2 {
					v -= 0.5 * float64(j*(j-1)) * s(d, i, j-2)
				}
				return v
			}
			for a, compA := range ca {
				na := componentNorm(compA)
				ax, ay, az := compA.X, compA.Y, compA.Z
				for b, compB := range cb {
					nb := componentNorm(compB)
					bx, by, bz := compB.X, compB.Y, compB.Z
					v := t1D(0, ax, bx)*s(1, ay, by)*s(2, az, bz) +
						s(0, ax, bx)*t1D(1, ay, by)*s(2, az, bz) +
						s(0, ax, bx)*s(1, ay, by)*t1D(2, az, bz)
					out[a*len(cb)+b] += coef * na * nb * v
				}
			}
		}
	}
	return out
}

// nuclearBlock returns the shell-pair nuclear-attraction block, summed
// over all nuclei of the molecule with weight −Z.
func nuclearBlock(sa, sb *basis.Shell, set *basis.Set) []float64 {
	ca, cb := Components(sa.L), Components(sb.L)
	out := make([]float64, len(ca)*len(cb))
	ltot := sa.L + sb.L
	fn := make([]float64, ltot+1)
	ab := [3]float64{
		sa.Center[0] - sb.Center[0],
		sa.Center[1] - sb.Center[1],
		sa.Center[2] - sb.Center[2],
	}
	for ia, ea := range sa.Exps {
		for ib, eb := range sb.Exps {
			coef := sa.Coefs[ia] * sb.Coefs[ib]
			p := ea + eb
			px := (ea*sa.Center[0] + eb*sb.Center[0]) / p
			py := (ea*sa.Center[1] + eb*sb.Center[1]) / p
			pz := (ea*sa.Center[2] + eb*sb.Center[2]) / p
			var ets [3]*eTable
			for d := 0; d < 3; d++ {
				ets[d] = buildETable(sa.L, sb.L, ab[d], ea, eb)
			}
			pref := 2 * math.Pi / p * coef
			for _, atom := range set.Mol.Atoms {
				pc := [3]float64{px - atom.Pos[0], py - atom.Pos[1], pz - atom.Pos[2]}
				r2 := pc[0]*pc[0] + pc[1]*pc[1] + pc[2]*pc[2]
				boys.Eval(ltot, p*r2, fn)
				rt := buildRTensor(ltot, pc, p, fn, nil)
				z := -float64(atom.El)
				for a, compA := range ca {
					na := componentNorm(compA)
					for b, compB := range cb {
						nb := componentNorm(compB)
						var v float64
						for t := 0; t <= compA.X+compB.X; t++ {
							ex := ets[0].at(compA.X, compB.X, t)
							if ex == 0 {
								continue
							}
							for u := 0; u <= compA.Y+compB.Y; u++ {
								ey := ets[1].at(compA.Y, compB.Y, u)
								if ey == 0 {
									continue
								}
								for w := 0; w <= compA.Z+compB.Z; w++ {
									ez := ets[2].at(compA.Z, compB.Z, w)
									if ez == 0 {
										continue
									}
									v += ex * ey * ez * rt.at(t, u, w)
								}
							}
						}
						out[a*len(cb)+b] += pref * z * na * nb * v
					}
				}
			}
		}
	}
	return out
}

// Dipole returns the three dipole-moment matrices ⟨μ|x_c|ν⟩ relative to
// origin c (usually the centre of charge).
func (e *Engine) Dipole(c [3]float64) [3]*linalg.Matrix {
	var out [3]*linalg.Matrix
	for d := 0; d < 3; d++ {
		dim := d
		out[d] = e.oneElectron(func(sa, sb *basis.Shell) []float64 {
			return dipoleBlock(sa, sb, dim, c[dim])
		})
	}
	return out
}

// dipoleBlock computes ⟨a|x_dim − c|b⟩ using the Hermite identity
// ⟨i|x_P|j⟩ = E_1^{ij}·√(π/p)·??? — we use the simpler shift
// x − c = (x − A) + (A_x − c), i.e. raise the bra angular momentum.
func dipoleBlock(sa, sb *basis.Shell, dim int, c float64) []float64 {
	ca, cb := Components(sa.L), Components(sb.L)
	out := make([]float64, len(ca)*len(cb))
	ab := [3]float64{
		sa.Center[0] - sb.Center[0],
		sa.Center[1] - sb.Center[1],
		sa.Center[2] - sb.Center[2],
	}
	shiftA := sa.Center[dim] - c
	for ia, ea := range sa.Exps {
		for ib, eb := range sb.Exps {
			coef := sa.Coefs[ia] * sb.Coefs[ib]
			p := ea + eb
			var ets [3]*eTable
			for d := 0; d < 3; d++ {
				lmaxA := sa.L
				if d == dim {
					lmaxA++ // raised bra momentum for the (x−A) term
				}
				ets[d] = buildETable(lmaxA, sb.L, ab[d], ea, eb)
			}
			for a, compA := range ca {
				na := componentNorm(compA)
				ia3 := [3]int{compA.X, compA.Y, compA.Z}
				for b, compB := range cb {
					nb := componentNorm(compB)
					ib3 := [3]int{compB.X, compB.Y, compB.Z}
					// ⟨a|(x−A)|b⟩: raise bra power in dim by 1.
					raised := 1.0
					plain := 1.0
					for d := 0; d < 3; d++ {
						i, j := ia3[d], ib3[d]
						if d == dim {
							raised *= overlap1D(ets[d], i+1, j, p)
						} else {
							raised *= overlap1D(ets[d], i, j, p)
						}
						plain *= overlap1D(ets[d], i, j, p)
					}
					out[a*len(cb)+b] += coef * na * nb * (raised + shiftA*plain)
				}
			}
		}
	}
	return out
}
