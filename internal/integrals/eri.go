package integrals

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"hfxmd/internal/basis"
	"hfxmd/internal/boys"
	"hfxmd/internal/linalg"
	"hfxmd/internal/qpx"
)

// pairData caches the bra- or ket-side primitive-pair quantities of a
// shell pair: combined exponent p, Gaussian-product centre P, and the
// Hermite E tables per dimension.
type pairData struct {
	p    float64
	coef float64
	px   [3]float64
	ets  [3]*eTable
	// e000 caches E_0^{00,x}·E_0^{00,y}·E_0^{00,z}, the only Hermite
	// coefficient an (ss| pair needs — the ssss fast path below.
	e000 float64
}

// pairDataFor returns the (cached) primitive-pair data of a shell pair.
// The cache persists across quartets and SCF iterations — rebuilding the
// Hermite E tables per quartet would dominate the contraction cost.
func (e *Engine) pairDataFor(a, b int) []pairData {
	ns := e.Basis.NShells()
	idx := a*ns + b
	e.pairMu.RLock()
	if e.pairCache != nil && e.pairCache[idx] != nil {
		pd := e.pairCache[idx]
		e.pairMu.RUnlock()
		return pd
	}
	e.pairMu.RUnlock()
	pd := buildPairData(&e.Basis.Shells[a], &e.Basis.Shells[b])
	e.pairMu.Lock()
	if e.pairCache == nil {
		e.pairCache = make([][]pairData, ns*ns)
	}
	e.pairCache[idx] = pd
	e.pairMu.Unlock()
	return pd
}

// buildPairData enumerates the primitive pairs of two shells.
func buildPairData(sa, sb *basis.Shell) []pairData {
	ab := [3]float64{
		sa.Center[0] - sb.Center[0],
		sa.Center[1] - sb.Center[1],
		sa.Center[2] - sb.Center[2],
	}
	pairs := make([]pairData, 0, len(sa.Exps)*len(sb.Exps))
	for ia, ea := range sa.Exps {
		for ib, eb := range sb.Exps {
			p := ea + eb
			pd := pairData{
				p:    p,
				coef: sa.Coefs[ia] * sb.Coefs[ib],
				px: [3]float64{
					(ea*sa.Center[0] + eb*sb.Center[0]) / p,
					(ea*sa.Center[1] + eb*sb.Center[1]) / p,
					(ea*sa.Center[2] + eb*sb.Center[2]) / p,
				},
			}
			for d := 0; d < 3; d++ {
				pd.ets[d] = buildETable(sa.L, sb.L, ab[d], ea, eb)
			}
			pd.e000 = pd.ets[0].at(0, 0, 0) * pd.ets[1].at(0, 0, 0) * pd.ets[2].at(0, 0, 0)
			pairs = append(pairs, pd)
		}
	}
	return pairs
}

// Scratch is the reusable working set of the ERI kernel. A Scratch is
// not safe for concurrent use; give each worker goroutine its own (via
// NewScratch) and reuse it across quartets and SCF iterations — after a
// warm-up build its buffers stop growing and the hot loop performs no
// heap allocations.
type Scratch struct {
	fn       []float64
	fnBatch  []qpx.Vec4
	rsc      rScratch
	braList  []hermTerm
	ketLists [][]hermTerm
	jobs     []primJob
}

// NewScratch returns a ready-to-use ERI scratch.
func NewScratch() *Scratch {
	return &Scratch{
		fn:      make([]float64, boys.MaxOrder+1),
		fnBatch: make([]qpx.Vec4, boys.MaxOrder+1),
	}
}

// init sizes the fixed buffers of a zero-value Scratch.
func (s *Scratch) init() {
	if s.fn == nil {
		s.fn = make([]float64, boys.MaxOrder+1)
		s.fnBatch = make([]qpx.Vec4, boys.MaxOrder+1)
	}
}

var eriPool = sync.Pool{New: func() any { return NewScratch() }}

// ERIShell computes the full quartet block (ab|cd) for four shells and
// writes it into out in row-major order [na][nb][nc][nd]. out must have
// length na·nb·nc·nd. The optional stats record QPX lane utilisation when
// the engine's Vector mode is on.
func (e *Engine) ERIShell(a, b, c, d int, out []float64, stats *qpx.Stats) {
	scratch := eriPool.Get().(*Scratch)
	e.ERIShellScratch(a, b, c, d, out, e.Vector, stats, scratch)
	eriPool.Put(scratch)
}

// ERIShellScratch is ERIShell with the kernel selection and working set
// scoped to the caller: vector picks the QPX-batched kernel regardless of
// the engine-wide Vector flag, and scratch supplies the reusable buffers.
// This is the entry point for persistent worker pools (package hfx) —
// two pools sharing one engine can select different kernels without
// stomping each other, and a per-worker scratch keeps the steady state
// allocation-free.
func (e *Engine) ERIShellScratch(a, b, c, d int, out []float64, vector bool, stats *qpx.Stats, scratch *Scratch) {
	sa := &e.Basis.Shells[a]
	sb := &e.Basis.Shells[b]
	sc := &e.Basis.Shells[c]
	sd := &e.Basis.Shells[d]
	bra := e.pairDataFor(a, b)
	ket := e.pairDataFor(c, d)
	scratch.init()
	eriQuartet(sa, sb, sc, sd, bra, ket, out, vector, stats, scratch)
}

// eriQuartet is the contraction kernel shared by the engine and the
// Schwarz bound computation.
func eriQuartet(sa, sb, sc, sd *basis.Shell, bra, ket []pairData,
	out []float64, vector bool, stats *qpx.Stats, scratch *Scratch) {
	na, nb, nc, nd := sa.NFuncs(), sb.NFuncs(), sc.NFuncs(), sd.NFuncs()
	for i := range out[:na*nb*nc*nd] {
		out[i] = 0
	}
	ltot := sa.L + sb.L + sc.L + sd.L

	if vector {
		eriQuartetVector(sa, sb, sc, sd, bra, ket, out, stats, scratch)
		return
	}

	fn := scratch.fn[:ltot+1]
	if ltot == 0 {
		// ssss fast path: the Hermite contraction collapses to
		// pref·E000_bra·E000_ket·F_0(T). This class dominates screened
		// pair lists, so it is worth the special case.
		var acc float64
		for i := range bra {
			bp := &bra[i]
			for j := range ket {
				kp := &ket[j]
				alpha := bp.p * kp.p / (bp.p + kp.p)
				dx := bp.px[0] - kp.px[0]
				dy := bp.px[1] - kp.px[1]
				dz := bp.px[2] - kp.px[2]
				boys.Eval(0, alpha*(dx*dx+dy*dy+dz*dz), fn)
				pref := twoPi52 / (bp.p * kp.p * math.Sqrt(bp.p+kp.p)) * bp.coef * kp.coef
				acc += pref * bp.e000 * kp.e000 * fn[0]
			}
		}
		out[0] = acc
		return
	}
	ca, cb := Components(sa.L), Components(sb.L)
	cc, cd := Components(sc.L), Components(sd.L)
	for i := range bra {
		bp := &bra[i]
		for j := range ket {
			kp := &ket[j]
			alpha := bp.p * kp.p / (bp.p + kp.p)
			pq := [3]float64{
				bp.px[0] - kp.px[0],
				bp.px[1] - kp.px[1],
				bp.px[2] - kp.px[2],
			}
			r2 := pq[0]*pq[0] + pq[1]*pq[1] + pq[2]*pq[2]
			boys.Eval(ltot, alpha*r2, fn)
			rt := buildRTensor(ltot, pq, alpha, fn, &scratch.rsc)
			pref := twoPi52 / (bp.p * kp.p * math.Sqrt(bp.p+kp.p)) * bp.coef * kp.coef
			accumulateQuartet(ca, cb, cc, cd, *bp, *kp, rt, pref, nb, nc, nd, out, scratch)
		}
	}
}

// hermTerm is one nonzero Hermite expansion coefficient E_t E_u E_v of a
// Cartesian component pair, with the component norms (and, on the ket
// side, the (−1)^{t+u+v} phase) folded into val.
type hermTerm struct {
	t, u, v int32
	val     float64
}

// hermList collects the nonzero Hermite terms of component pair (cA, cB)
// of a primitive pair into dst, scaling by scale and applying the ket
// phase when phase is true.
func hermList(dst []hermTerm, pd *pairData, cA, cB CartComponent, scale float64, phase bool) []hermTerm {
	dst = dst[:0]
	for t := 0; t <= cA.X+cB.X; t++ {
		ex := pd.ets[0].at(cA.X, cB.X, t)
		if ex == 0 {
			continue
		}
		for u := 0; u <= cA.Y+cB.Y; u++ {
			ey := pd.ets[1].at(cA.Y, cB.Y, u)
			if ey == 0 {
				continue
			}
			for v := 0; v <= cA.Z+cB.Z; v++ {
				ez := pd.ets[2].at(cA.Z, cB.Z, v)
				if ez == 0 {
					continue
				}
				val := scale * ex * ey * ez
				if phase && (t+u+v)&1 == 1 {
					val = -val
				}
				dst = append(dst, hermTerm{int32(t), int32(u), int32(v), val})
			}
		}
	}
	return dst
}

// accumulateQuartet folds one primitive bra×ket combination into the
// contracted quartet block. The Hermite expansions of the ket component
// pairs are materialised once and reused across every bra component pair,
// which removes the dominant redundant eTable traffic.
func accumulateQuartet(ca, cb, cc, cd []CartComponent, bp, kp pairData,
	rt *rTensor, pref float64, nb, nc, nd int, out []float64, scratch *Scratch) {
	nKet := len(cc) * len(cd)
	for len(scratch.ketLists) < nKet {
		scratch.ketLists = append(scratch.ketLists, nil)
	}
	normC := cartNorms[cc[0].X+cc[0].Y+cc[0].Z]
	normD := cartNorms[cd[0].X+cd[0].Y+cd[0].Z]
	for ci, compC := range cc {
		for di, compD := range cd {
			scratch.ketLists[ci*nd+di] = hermList(
				scratch.ketLists[ci*nd+di], &kp, compC, compD,
				normC[ci]*normD[di], true)
		}
	}
	normA := cartNorms[ca[0].X+ca[0].Y+ca[0].Z]
	normB := cartNorms[cb[0].X+cb[0].Y+cb[0].Z]
	n := int32(rt.ltot + 1)
	data := rt.data
	for ai, compA := range ca {
		for bi, compB := range cb {
			scratch.braList = hermList(scratch.braList, &bp, compA, compB,
				pref*normA[ai]*normB[bi], false)
			rowBase := (ai*nb + bi) * nc
			for ci := 0; ci < nc; ci++ {
				outBase := (rowBase + ci) * nd
				for di := 0; di < nd; di++ {
					var v float64
					for _, b := range scratch.braList {
						for _, k := range scratch.ketLists[ci*nd+di] {
							v += b.val * k.val * data[((b.t+k.t)*n+(b.u+k.u))*n+(b.v+k.v)]
						}
					}
					out[outBase+di] += v
				}
			}
		}
	}
}

// primJob is one gathered primitive bra×ket combination of the vector
// kernel; the job list lives in Scratch so the gather is allocation-free
// in steady state.
type primJob struct {
	bp, kp *pairData
	alpha  float64
	pq     [3]float64
	pref   float64
}

// eriQuartetVector is the QPX-structured kernel: primitive bra×ket
// combinations are gathered four at a time, their Boys arguments evaluated
// lane-parallel, and the Hermite assembly then proceeds per quartet. The
// final partial batch records reduced lane utilisation, reproducing the
// paper's vector-efficiency accounting.
func eriQuartetVector(sa, sb, sc, sd *basis.Shell, bra, ket []pairData,
	out []float64, stats *qpx.Stats, scratch *Scratch) {
	nb, nc, nd := sb.NFuncs(), sc.NFuncs(), sd.NFuncs()
	ltot := sa.L + sb.L + sc.L + sd.L
	ca, cb := Components(sa.L), Components(sb.L)
	cc, cd := Components(sc.L), Components(sd.L)

	jobs := scratch.jobs[:0]
	for i := range bra {
		for j := range ket {
			bp, kp := &bra[i], &ket[j]
			alpha := bp.p * kp.p / (bp.p + kp.p)
			pq := [3]float64{
				bp.px[0] - kp.px[0],
				bp.px[1] - kp.px[1],
				bp.px[2] - kp.px[2],
			}
			jobs = append(jobs, primJob{
				bp: bp, kp: kp, alpha: alpha, pq: pq,
				pref: twoPi52 / (bp.p * kp.p * math.Sqrt(bp.p+kp.p)) * bp.coef * kp.coef,
			})
		}
	}
	scratch.jobs = jobs // keep any growth for reuse

	fnBatch := scratch.fnBatch[:ltot+1]
	fn := scratch.fn[:ltot+1]
	for base := 0; base < len(jobs); base += qpx.Width {
		end := base + qpx.Width
		if end > len(jobs) {
			end = len(jobs)
		}
		active := end - base
		var tvec qpx.Vec4
		for lane := 0; lane < active; lane++ {
			j := &jobs[base+lane]
			r2 := j.pq[0]*j.pq[0] + j.pq[1]*j.pq[1] + j.pq[2]*j.pq[2]
			tvec[lane] = j.alpha * r2
		}
		qpx.BoysBatch(ltot, tvec, fnBatch)
		if stats != nil {
			stats.Record(active)
		}
		for lane := 0; lane < active; lane++ {
			j := &jobs[base+lane]
			for k := 0; k <= ltot; k++ {
				fn[k] = fnBatch[k][lane]
			}
			rt := buildRTensor(ltot, j.pq, j.alpha, fn, &scratch.rsc)
			accumulateQuartet(ca, cb, cc, cd, *j.bp, *j.kp, rt, j.pref, nb, nc, nd, out, scratch)
		}
	}
}

// SchwarzMatrix returns the shell-pair Cauchy–Schwarz norms
//
//	Q[ab] = √( max_{μ∈a,ν∈b} (μν|μν) ),
//
// the rigorous upper-bound factors |(μν|λσ)| ≤ Q[ab]·Q[cd] that drive the
// paper's controllable-accuracy screening. It parallelises over shell
// rows with GOMAXPROCS workers; use SchwarzMatrixThreads to control the
// worker count.
func (e *Engine) SchwarzMatrix() *linalg.Matrix {
	return e.SchwarzMatrixThreads(0)
}

// SchwarzMatrixThreads computes the Schwarz matrix with the given number
// of worker goroutines (the same convention as hfx.Options.Threads: zero
// or negative means GOMAXPROCS). Rows are dispatched dynamically because
// row a carries NShells−a pairs — a static block split would be badly
// imbalanced. Every (a,b) entry is computed independently, so the result
// is deterministic regardless of the worker count.
func (e *Engine) SchwarzMatrixThreads(threads int) *linalg.Matrix {
	ns := e.Basis.NShells()
	q := linalg.NewSquare(ns)
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > ns {
		threads = max(ns, 1)
	}
	var nextRow atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []float64
			scratch := eriPool.Get().(*Scratch)
			defer eriPool.Put(scratch)
			for {
				a := int(nextRow.Add(1)) - 1
				if a >= ns {
					return
				}
				sa := &e.Basis.Shells[a]
				for b := a; b < ns; b++ {
					sb := &e.Basis.Shells[b]
					na, nb := sa.NFuncs(), sb.NFuncs()
					need := na * nb * na * nb
					if cap(buf) < need {
						buf = make([]float64, need)
					}
					blk := buf[:need]
					pd := e.pairDataFor(a, b)
					eriQuartet(sa, sb, sa, sb, pd, pd, blk, false, nil, scratch)
					var m float64
					for i := 0; i < na; i++ {
						for j := 0; j < nb; j++ {
							v := blk[((i*nb+j)*na+i)*nb+j] // (ij|ij)
							if v > m {
								m = v
							}
						}
					}
					val := math.Sqrt(math.Max(m, 0))
					q.Set(a, b, val)
					q.Set(b, a, val)
				}
			}
		}()
	}
	wg.Wait()
	return q
}

// MaxERIBufLen returns the maximum quartet block length over the basis,
// for sizing scratch buffers.
func (e *Engine) MaxERIBufLen() int {
	maxn := 0
	for i := range e.Basis.Shells {
		if n := e.Basis.Shells[i].NFuncs(); n > maxn {
			maxn = n
		}
	}
	return maxn * maxn * maxn * maxn
}
