// Package integrals implements the McMurchie–Davidson evaluation of all
// molecular integrals over contracted Cartesian Gaussian shells: overlap,
// kinetic energy, nuclear attraction, dipole moments, and — the workhorse
// of Hartree–Fock exact exchange — the four-index electron repulsion
// integrals (ERIs), together with the Cauchy–Schwarz shell-pair norms used
// for screening.
//
// The McMurchie–Davidson scheme expands each product of two Cartesian
// Gaussians in Hermite Gaussians via the E-coefficient recurrences, and
// contracts Coulomb-type integrals through the Hermite R-tensor whose seed
// values are Boys functions. See McMurchie & Davidson, J. Comput. Phys. 26
// (1978) 218.
package integrals

// CartComponent is one Cartesian angular-momentum triple (lx,ly,lz).
type CartComponent struct{ X, Y, Z int }

// cartLists[L] enumerates the (L+1)(L+2)/2 components of angular momentum
// L in the conventional order (decreasing x-power, then decreasing
// y-power): s; p: x,y,z; d: xx,xy,xz,yy,yz,zz; f likewise.
var cartLists [][]CartComponent

// maxSupportedL bounds the precomputed component tables; the engine
// handles shells up to this angular momentum (g functions), which covers
// every basis set shipped with this repository with room to spare.
const maxSupportedL = 4

// cartNorms[l][i] caches componentNorm(cartLists[l][i]).
var cartNorms [][]float64

func init() {
	cartLists = make([][]CartComponent, maxSupportedL+1)
	cartNorms = make([][]float64, maxSupportedL+1)
	for l := 0; l <= maxSupportedL; l++ {
		var list []CartComponent
		for x := l; x >= 0; x-- {
			for y := l - x; y >= 0; y-- {
				list = append(list, CartComponent{x, y, l - x - y})
			}
		}
		cartLists[l] = list
		norms := make([]float64, len(list))
		for i, c := range list {
			norms[i] = componentNorm(c)
		}
		cartNorms[l] = norms
	}
}

// Components returns the Cartesian components of angular momentum l.
func Components(l int) []CartComponent {
	if l < 0 || l > maxSupportedL {
		panic("integrals: unsupported angular momentum")
	}
	return cartLists[l]
}

// NCart returns the number of Cartesian components for angular momentum l.
func NCart(l int) int { return (l + 1) * (l + 2) / 2 }

// doubleFactorial returns n!! with (-1)!! = 1.
func doubleFactorial(n int) float64 {
	r := 1.0
	for ; n > 1; n -= 2 {
		r *= float64(n)
	}
	return r
}

// ComponentNorm exposes the per-component normalization correction for
// consumers that evaluate basis functions directly (e.g. the DFT grid
// code).
func ComponentNorm(c CartComponent) float64 { return componentNorm(c) }

// componentNorm returns the normalization correction for a Cartesian
// component relative to the (L,0,0) convention used when the shell
// coefficients were normalized: √[(2L−1)!! / ((2lx−1)!!(2ly−1)!!(2lz−1)!!)].
// For s and p shells this is exactly 1.
func componentNorm(c CartComponent) float64 {
	l := c.X + c.Y + c.Z
	if l < 2 {
		return 1
	}
	num := doubleFactorial(2*l - 1)
	den := doubleFactorial(2*c.X-1) * doubleFactorial(2*c.Y-1) * doubleFactorial(2*c.Z-1)
	return sqrt(num / den)
}
