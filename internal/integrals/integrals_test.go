package integrals

import (
	"math"
	"testing"

	"hfxmd/internal/basis"
	"hfxmd/internal/chem"
	"hfxmd/internal/linalg"
	"hfxmd/internal/qpx"
)

func h2Engine() *Engine {
	return NewEngine(basis.MustBuild("STO-3G", chem.Hydrogen(1.4)))
}

func waterEngine() *Engine {
	return NewEngine(basis.MustBuild("STO-3G", chem.Water()))
}

// Szabo & Ostlund, "Modern Quantum Chemistry", H2/STO-3G at R=1.4 a0
// (their ζ=1.24 scaling equals the standard STO-3G hydrogen exponents).
// All reference values are quoted to 4 decimals.
const soTol = 2e-4

func TestH2Overlap(t *testing.T) {
	s := h2Engine().Overlap()
	if math.Abs(s.At(0, 0)-1) > 1e-10 || math.Abs(s.At(1, 1)-1) > 1e-10 {
		t.Fatalf("diagonal overlap not 1: %g, %g", s.At(0, 0), s.At(1, 1))
	}
	if math.Abs(s.At(0, 1)-0.6593) > soTol {
		t.Fatalf("S12 = %.4f want 0.6593", s.At(0, 1))
	}
}

func TestH2Kinetic(t *testing.T) {
	k := h2Engine().Kinetic()
	if math.Abs(k.At(0, 0)-0.7600) > soTol {
		t.Fatalf("T11 = %.4f want 0.7600", k.At(0, 0))
	}
	if math.Abs(k.At(0, 1)-0.2365) > soTol {
		t.Fatalf("T12 = %.4f want 0.2365", k.At(0, 1))
	}
}

func TestH2Nuclear(t *testing.T) {
	v := h2Engine().Nuclear()
	// V11 = attraction to both nuclei: -1.2266 + (-0.6538) = -1.8804.
	if math.Abs(v.At(0, 0)-(-1.8804)) > 2*soTol {
		t.Fatalf("V11 = %.4f want -1.8804", v.At(0, 0))
	}
	// V12 = -0.5974 (nucleus 1) + -0.5974 (nucleus 2) = -1.1948.
	if math.Abs(v.At(0, 1)-(-1.1948)) > 2*soTol {
		t.Fatalf("V12 = %.4f want -1.1948", v.At(0, 1))
	}
}

func TestH2ERIs(t *testing.T) {
	e := h2Engine()
	out := make([]float64, 1)
	get := func(a, b, c, d int) float64 {
		e.ERIShell(a, b, c, d, out, nil)
		return out[0]
	}
	cases := []struct {
		a, b, c, d int
		want       float64
	}{
		{0, 0, 0, 0, 0.7746},
		{1, 1, 0, 0, 0.5697},
		{1, 0, 0, 0, 0.4441},
		{1, 0, 1, 0, 0.2970},
	}
	for _, c := range cases {
		if got := get(c.a, c.b, c.c, c.d); math.Abs(got-c.want) > soTol {
			t.Fatalf("(%d%d|%d%d) = %.4f want %.4f", c.a, c.b, c.c, c.d, got, c.want)
		}
	}
}

func TestOverlapSPD(t *testing.T) {
	s := waterEngine().Overlap()
	if !s.IsSymmetric(1e-12) {
		t.Fatal("overlap not symmetric")
	}
	vals, _ := linalg.EigenSym(s)
	if vals[0] <= 0 {
		t.Fatalf("overlap not positive definite: λmin = %g", vals[0])
	}
	for i := 0; i < s.Rows; i++ {
		if math.Abs(s.At(i, i)-1) > 1e-9 {
			t.Fatalf("normalized basis function %d has S_ii = %.10f", i, s.At(i, i))
		}
	}
}

func TestKineticPositive(t *testing.T) {
	k := waterEngine().Kinetic()
	if !k.IsSymmetric(1e-12) {
		t.Fatal("kinetic not symmetric")
	}
	vals, _ := linalg.EigenSym(k)
	if vals[0] <= 0 {
		t.Fatalf("kinetic matrix not positive definite: λmin = %g", vals[0])
	}
}

func TestNuclearNegativeDiagonal(t *testing.T) {
	v := waterEngine().Nuclear()
	for i := 0; i < v.Rows; i++ {
		if v.At(i, i) >= 0 {
			t.Fatalf("V_%d%d = %g not negative", i, i, v.At(i, i))
		}
	}
}

func TestERIPermutationSymmetry(t *testing.T) {
	e := waterEngine()
	buf := make([]float64, e.MaxERIBufLen())
	// Use shells including p functions: shell 2 is the oxygen 2p.
	quartets := [][4]int{{0, 1, 2, 3}, {2, 2, 2, 2}, {0, 2, 1, 3}, {4, 2, 0, 1}}
	for _, q := range quartets {
		a, b, c, d := q[0], q[1], q[2], q[3]
		get := func(w, x, y, z int) []float64 {
			sw := &e.Basis.Shells[w]
			sx := &e.Basis.Shells[x]
			sy := &e.Basis.Shells[y]
			sz := &e.Basis.Shells[z]
			n := sw.NFuncs() * sx.NFuncs() * sy.NFuncs() * sz.NFuncs()
			out := make([]float64, n)
			copy(out, buf[:0])
			e.ERIShell(w, x, y, z, out, nil)
			return out
		}
		base := get(a, b, c, d)
		swapped := get(c, d, a, b)
		sa := &e.Basis.Shells[a]
		sb := &e.Basis.Shells[b]
		sc := &e.Basis.Shells[c]
		sd := &e.Basis.Shells[d]
		na, nb, nc, nd := sa.NFuncs(), sb.NFuncs(), sc.NFuncs(), sd.NFuncs()
		for i := 0; i < na; i++ {
			for j := 0; j < nb; j++ {
				for k := 0; k < nc; k++ {
					for l := 0; l < nd; l++ {
						v1 := base[((i*nb+j)*nc+k)*nd+l]
						v2 := swapped[((k*nd+l)*na+i)*nb+j]
						if math.Abs(v1-v2) > 1e-11 {
							t.Fatalf("quartet %v: (ab|cd) != (cd|ab): %g vs %g", q, v1, v2)
						}
					}
				}
			}
		}
	}
}

func TestERIBraSwapSymmetry(t *testing.T) {
	e := waterEngine()
	a, b := 2, 4 // oxygen p and hydrogen s
	sa, sb := &e.Basis.Shells[a], &e.Basis.Shells[b]
	na, nb := sa.NFuncs(), sb.NFuncs()
	ab := make([]float64, na*nb*na*nb)
	ba := make([]float64, nb*na*na*nb)
	e.ERIShell(a, b, a, b, ab, nil)
	e.ERIShell(b, a, a, b, ba, nil)
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			for k := 0; k < na; k++ {
				for l := 0; l < nb; l++ {
					v1 := ab[((i*nb+j)*na+k)*nb+l]
					v2 := ba[((j*na+i)*na+k)*nb+l]
					if math.Abs(v1-v2) > 1e-11 {
						t.Fatalf("(ab|·) != (ba|·) at %d%d%d%d: %g vs %g", i, j, k, l, v1, v2)
					}
				}
			}
		}
	}
}

func TestSchwarzBoundHolds(t *testing.T) {
	e := waterEngine()
	q := e.SchwarzMatrix()
	ns := e.Basis.NShells()
	buf := make([]float64, e.MaxERIBufLen())
	for a := 0; a < ns; a++ {
		for b := 0; b < ns; b++ {
			for c := 0; c < ns; c++ {
				for d := 0; d < ns; d++ {
					sa := &e.Basis.Shells[a]
					sb := &e.Basis.Shells[b]
					sc := &e.Basis.Shells[c]
					sd := &e.Basis.Shells[d]
					n := sa.NFuncs() * sb.NFuncs() * sc.NFuncs() * sd.NFuncs()
					blk := buf[:n]
					e.ERIShell(a, b, c, d, blk, nil)
					var m float64
					for _, v := range blk {
						if x := math.Abs(v); x > m {
							m = x
						}
					}
					bound := q.At(a, b) * q.At(c, d)
					if m > bound+1e-10 {
						t.Fatalf("Schwarz violated for (%d%d|%d%d): max %g > bound %g", a, b, c, d, m, bound)
					}
				}
			}
		}
	}
}

func TestVectorPathMatchesScalar(t *testing.T) {
	mol := chem.Water()
	es := NewEngine(basis.MustBuild("STO-3G", mol))
	ev := NewEngine(basis.MustBuild("STO-3G", mol))
	ev.Vector = true
	var stats qpx.Stats
	ns := es.Basis.NShells()
	buf1 := make([]float64, es.MaxERIBufLen())
	buf2 := make([]float64, es.MaxERIBufLen())
	for a := 0; a < ns; a++ {
		for b := 0; b <= a; b++ {
			for c := 0; c <= a; c++ {
				for d := 0; d <= c; d++ {
					sa := &es.Basis.Shells[a]
					sb := &es.Basis.Shells[b]
					sc := &es.Basis.Shells[c]
					sd := &es.Basis.Shells[d]
					n := sa.NFuncs() * sb.NFuncs() * sc.NFuncs() * sd.NFuncs()
					es.ERIShell(a, b, c, d, buf1[:n], nil)
					ev.ERIShell(a, b, c, d, buf2[:n], &stats)
					for i := 0; i < n; i++ {
						if math.Abs(buf1[i]-buf2[i]) > 1e-12 {
							t.Fatalf("vector/scalar mismatch (%d%d|%d%d)[%d]: %g vs %g",
								a, b, c, d, i, buf1[i], buf2[i])
						}
					}
				}
			}
		}
	}
	if stats.Batches() == 0 {
		t.Fatal("vector path recorded no batches")
	}
	if u := stats.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization %g out of range", u)
	}
}

func TestTranslationInvariance(t *testing.T) {
	m1 := chem.Water()
	m2 := chem.Water()
	m2.Translate(chem.Vec3{3.7, -1.2, 0.4})
	e1 := NewEngine(basis.MustBuild("STO-3G", m1))
	e2 := NewEngine(basis.MustBuild("STO-3G", m2))
	if d := linalg.MaxAbsDiff(e1.Overlap(), e2.Overlap()); d > 1e-11 {
		t.Fatalf("overlap not translation invariant: %g", d)
	}
	if d := linalg.MaxAbsDiff(e1.Kinetic(), e2.Kinetic()); d > 1e-11 {
		t.Fatalf("kinetic not translation invariant: %g", d)
	}
	if d := linalg.MaxAbsDiff(e1.Nuclear(), e2.Nuclear()); d > 1e-10 {
		t.Fatalf("nuclear not translation invariant: %g", d)
	}
	buf1 := make([]float64, e1.MaxERIBufLen())
	buf2 := make([]float64, e2.MaxERIBufLen())
	e1.ERIShell(2, 1, 3, 4, buf1, nil)
	e2.ERIShell(2, 1, 3, 4, buf2, nil)
	for i := range buf1 {
		if math.Abs(buf1[i]-buf2[i]) > 1e-11 {
			t.Fatalf("ERI not translation invariant at %d", i)
		}
	}
}

func TestDipoleHydrogenSymmetry(t *testing.T) {
	// H2 along z centred at the midpoint: z-dipole matrix elements must be
	// antisymmetric between the two atoms; x and y blocks vanish.
	mol := chem.Hydrogen(1.4)
	mol.Translate(chem.Vec3{0, 0, -0.7})
	e := NewEngine(basis.MustBuild("STO-3G", mol))
	d := e.Dipole([3]float64{0, 0, 0})
	if math.Abs(d[0].At(0, 0)) > 1e-12 || math.Abs(d[1].At(1, 1)) > 1e-12 {
		t.Fatal("x/y dipole should vanish for H2 on z-axis")
	}
	if math.Abs(d[2].At(0, 0)+d[2].At(1, 1)) > 1e-10 {
		t.Fatalf("z-dipole diagonal not antisymmetric: %g vs %g", d[2].At(0, 0), d[2].At(1, 1))
	}
}

func TestCartComponents(t *testing.T) {
	if n := len(Components(0)); n != 1 {
		t.Fatalf("s components %d", n)
	}
	if n := len(Components(1)); n != 3 {
		t.Fatalf("p components %d", n)
	}
	if n := len(Components(2)); n != 6 {
		t.Fatalf("d components %d", n)
	}
	// p order: x, y, z.
	p := Components(1)
	if p[0] != (CartComponent{1, 0, 0}) || p[1] != (CartComponent{0, 1, 0}) || p[2] != (CartComponent{0, 0, 1}) {
		t.Fatalf("p order %v", p)
	}
	for _, c := range Components(3) {
		if c.X+c.Y+c.Z != 3 {
			t.Fatalf("bad f component %v", c)
		}
	}
}

func TestComponentNorm(t *testing.T) {
	// s and p: 1. d_xx: 1; d_xy: sqrt(3).
	if componentNorm(CartComponent{0, 0, 0}) != 1 {
		t.Fatal("s norm")
	}
	if componentNorm(CartComponent{1, 0, 0}) != 1 {
		t.Fatal("p norm")
	}
	if componentNorm(CartComponent{2, 0, 0}) != 1 {
		t.Fatal("dxx norm")
	}
	if math.Abs(componentNorm(CartComponent{1, 1, 0})-math.Sqrt(3)) > 1e-15 {
		t.Fatal("dxy norm")
	}
}

func TestCoreHamiltonian(t *testing.T) {
	e := h2Engine()
	h := e.CoreHamiltonian()
	want := e.Kinetic()
	want.AXPY(1, e.Nuclear())
	if linalg.MaxAbsDiff(h, want) > 1e-14 {
		t.Fatal("H != T+V")
	}
	// S&O: H11 = T11 + V11 = 0.7600 - 1.8804 = -1.1204 (they quote -1.1204).
	if math.Abs(h.At(0, 0)-(-1.1204)) > 3*soTol {
		t.Fatalf("H11 = %.4f want -1.1204", h.At(0, 0))
	}
}

func BenchmarkERIQuartetSSSS(b *testing.B) {
	e := waterEngine()
	out := make([]float64, 1)
	for i := 0; i < b.N; i++ {
		e.ERIShell(0, 3, 0, 4, out, nil)
	}
}

func BenchmarkERIQuartetPPPP(b *testing.B) {
	e := waterEngine()
	out := make([]float64, 81)
	for i := 0; i < b.N; i++ {
		e.ERIShell(2, 2, 2, 2, out, nil)
	}
}

func BenchmarkSchwarzWater(b *testing.B) {
	e := waterEngine()
	for i := 0; i < b.N; i++ {
		e.SchwarzMatrix()
	}
}

func TestDShellOverlapNormalized(t *testing.T) {
	// 6-31G* puts a Cartesian d shell on oxygen: every component must be
	// unit-normalized including the mixed xy/xz/yz ones.
	e := NewEngine(basis.MustBuild("6-31G*", chem.Water()))
	s := e.Overlap()
	for i := 0; i < s.Rows; i++ {
		if math.Abs(s.At(i, i)-1) > 1e-9 {
			t.Fatalf("6-31G* S_%d%d = %.10f", i, i, s.At(i, i))
		}
	}
	if !s.IsSymmetric(1e-12) {
		t.Fatal("overlap not symmetric with d shells")
	}
}

func TestDShellERISymmetryAndVector(t *testing.T) {
	set := basis.MustBuild("6-31G*", chem.Water())
	es := NewEngine(set)
	ev := NewEngine(set)
	ev.Vector = true
	// Find the d shell.
	dShell := -1
	for i := range set.Shells {
		if set.Shells[i].L == 2 {
			dShell = i
			break
		}
	}
	if dShell < 0 {
		t.Fatal("no d shell in 6-31G*")
	}
	n := 6 * 6 * 6 * 6
	b1 := make([]float64, n)
	b2 := make([]float64, n)
	es.ERIShell(dShell, dShell, dShell, dShell, b1, nil)
	ev.ERIShell(dShell, dShell, dShell, dShell, b2, nil)
	for i := range b1 {
		if math.Abs(b1[i]-b2[i]) > 1e-12 {
			t.Fatalf("d-shell vector mismatch at %d: %g vs %g", i, b1[i], b2[i])
		}
	}
	// (dd|dd) diagonal elements positive (they are self-repulsions).
	for f := 0; f < 6; f++ {
		v := b1[((f*6+f)*6+f)*6+f]
		if v <= 0 {
			t.Fatalf("(ff|ff) = %g not positive for d component %d", v, f)
		}
	}
	// Schwarz bound must hold with d shells in the mix.
	q := es.SchwarzMatrix()
	var m float64
	for _, v := range b1 {
		if x := math.Abs(v); x > m {
			m = x
		}
	}
	if m > q.At(dShell, dShell)*q.At(dShell, dShell)+1e-10 {
		t.Fatalf("Schwarz violated for d quartet: %g > %g", m, q.At(dShell, dShell)*q.At(dShell, dShell))
	}
}

func TestDShellKineticPositive(t *testing.T) {
	e := NewEngine(basis.MustBuild("6-31G*", chem.Water()))
	k := e.Kinetic()
	vals, _ := linalg.EigenSym(k)
	if vals[0] <= 0 {
		t.Fatalf("kinetic with d shells not positive definite: %g", vals[0])
	}
}
