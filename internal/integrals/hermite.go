package integrals

import "math"

func sqrt(x float64) float64 { return math.Sqrt(x) }

// eTable holds the Hermite expansion coefficients E_t^{ij} for one
// Cartesian dimension of a primitive pair: the product of Gaussians with
// exponents a (angular power up to imax) and b (up to jmax) expands as
//
//	x_A^i x_B^j e^{-a x_A²} e^{-b x_B²} = Σ_t E_t^{ij} Λ_t(x_P; p)
//
// with p = a+b and Λ_t Hermite Gaussians. Storage is a flat slice indexed
// by (i, j, t) with t ≤ i+j.
type eTable struct {
	imax, jmax int
	data       []float64
}

func (e *eTable) at(i, j, t int) float64 {
	if t < 0 || t > i+j {
		return 0
	}
	return e.data[(i*(e.jmax+1)+j)*(e.imax+e.jmax+1)+t]
}

func (e *eTable) set(i, j, t int, v float64) {
	e.data[(i*(e.jmax+1)+j)*(e.imax+e.jmax+1)+t] = v
}

// buildETable computes the E coefficients for one dimension. ab is the
// separation A_x − B_x, a and b the primitive exponents.
//
// Recurrences (McMurchie–Davidson):
//
//	E_t^{i+1,j} = E_{t-1}^{ij}/(2p) + X_PA·E_t^{ij} + (t+1)·E_{t+1}^{ij}
//	E_t^{i,j+1} = E_{t-1}^{ij}/(2p) + X_PB·E_t^{ij} + (t+1)·E_{t+1}^{ij}
//	E_0^{00}    = exp(−μ·X_AB²),  μ = ab/(a+b)
func buildETable(imax, jmax int, ab, a, b float64) *eTable {
	e := &eTable{
		imax: imax,
		jmax: jmax,
		data: make([]float64, (imax+1)*(jmax+1)*(imax+jmax+1)),
	}
	p := a + b
	mu := a * b / p
	xpa := -b * ab / p // P_x − A_x with X_AB = A_x − B_x
	xpb := a * ab / p  // P_x − B_x
	e.set(0, 0, 0, math.Exp(-mu*ab*ab))
	// Build up in i first (j=0), then extend in j for each i.
	for i := 0; i < imax; i++ {
		for t := 0; t <= i+1; t++ {
			v := xpa*e.at(i, 0, t) + float64(t+1)*e.at(i, 0, t+1)
			if t > 0 {
				v += e.at(i, 0, t-1) / (2 * p)
			}
			e.set(i+1, 0, t, v)
		}
	}
	for i := 0; i <= imax; i++ {
		for j := 0; j < jmax; j++ {
			for t := 0; t <= i+j+1; t++ {
				v := xpb*e.at(i, j, t) + float64(t+1)*e.at(i, j, t+1)
				if t > 0 {
					v += e.at(i, j, t-1) / (2 * p)
				}
				e.set(i, j+1, t, v)
			}
		}
	}
	return e
}

// rTensor computes the Hermite Coulomb auxiliary integrals
//
//	R^0_{tuv}(p, PC) with t+u+v ≤ ltot
//
// given the Boys values fn[n] = F_n(p·|PC|²). The result is stored flat
// with stride (ltot+1) per dimension; entries with t+u+v > ltot are
// garbage and never read.
//
// Recurrences:
//
//	R^n_{000}      = (−2p)^n F_n(T)
//	R^n_{t+1,u,v}  = t·R^{n+1}_{t−1,u,v} + X_PC·R^{n+1}_{tuv}   (etc.)
type rTensor struct {
	ltot int
	data []float64
}

func (r *rTensor) at(t, u, v int) float64 {
	n := r.ltot + 1
	return r.data[(t*n+u)*n+v]
}

// rScratch provides two reusable ping-pong buffers for buildRTensor; it
// removes the dominant allocation of the primitive-quartet loop. The
// recurrence for auxiliary order m only reads order m+1, so two buffers
// of alternating parity suffice.
type rScratch struct {
	bufs [2][]float64
	rt   rTensor
}

func (s *rScratch) buf(parity, size int) []float64 {
	if cap(s.bufs[parity]) < size {
		s.bufs[parity] = make([]float64, size)
	}
	return s.bufs[parity][:size]
}

// buildRTensor computes the order-0 Hermite Coulomb tensor. The returned
// tensor aliases the scratch buffers: it is valid only until the next
// buildRTensor call with the same scratch. Entries with t+u+v > ltot are
// never written and must not be read. A nil scratch allocates fresh
// buffers (used by the cold one-electron path).
func buildRTensor(ltot int, pc [3]float64, p float64, fn []float64, sc *rScratch) *rTensor {
	if sc == nil {
		sc = new(rScratch)
	}
	n := ltot + 1
	size := n * n * n
	idx := func(t, u, v int) int { return (t*n+u)*n + v }

	var cur []float64
	for m := ltot; m >= 0; m-- {
		up := cur
		cur = sc.buf(m&1, size)
		cur[idx(0, 0, 0)] = math.Pow(-2*p, float64(m)) * fn[m]
		for l := 1; l <= ltot-m; l++ {
			for t := l; t >= 0; t-- {
				for u := l - t; u >= 0; u-- {
					v := l - t - u
					var val float64
					switch {
					case t > 0:
						val = pc[0] * up[idx(t-1, u, v)]
						if t > 1 {
							val += float64(t-1) * up[idx(t-2, u, v)]
						}
					case u > 0:
						val = pc[1] * up[idx(t, u-1, v)]
						if u > 1 {
							val += float64(u-1) * up[idx(t, u-2, v)]
						}
					default:
						val = pc[2] * up[idx(t, u, v-1)]
						if v > 1 {
							val += float64(v-1) * up[idx(t, u, v-2)]
						}
					}
					cur[idx(t, u, v)] = val
				}
			}
		}
	}
	sc.rt.ltot = ltot
	sc.rt.data = cur
	return &sc.rt
}
