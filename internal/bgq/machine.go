// Package bgq is the Blue Gene/Q machine simulator that stands in for the
// 96-rack hardware of the paper (see DESIGN.md, substitution table). It
// models:
//
//   - the partition structure: racks → 1024 nodes/rack → 16 cores × 4 SMT
//     threads (65,536 hardware threads per rack, 6,291,456 at 96 racks);
//   - the 5-D torus network with per-hop latency and per-link bandwidth,
//     and three allreduce algorithms (binomial tree, torus dimension-
//     exchange, ring) for the K-matrix reduction;
//   - execution of a *real* task schedule: the same task lists and static
//     assignments produced by packages hfx and sched are replayed against
//     the calibrated cost model, with deterministic per-node OS noise.
//
// The simulator therefore reproduces exactly the two quantities that
// decide the paper's scaling claims — load-balance quality of the static
// schedule and reduction cost growth with partition size — without
// instantiating millions of goroutines.
package bgq

import (
	"fmt"
	"math"

	"hfxmd/internal/torus"
)

// Machine hardware constants (production BG/Q values).
const (
	NodesPerRack   = 1024
	CoresPerNode   = 16
	ThreadsPerCore = 4
	ThreadsPerNode = CoresPerNode * ThreadsPerCore // 64
)

// Machine is a BG/Q partition plus its network timing parameters.
type Machine struct {
	Racks int
	Torus *torus.Torus
	// LinkBandwidth is the usable per-link bandwidth in bytes/second
	// (BG/Q: 2 GB/s raw, ~1.8 GB/s effective).
	LinkBandwidth float64
	// HopLatency is the per-hop wire+router latency in seconds (~40 ns).
	HopLatency float64
	// SoftwareLatency is the per-message software overhead in seconds
	// (~600 ns for MPI on BG/Q).
	SoftwareLatency float64
	// NoiseAmplitude is the relative per-node compute jitter (BG/Q's CNK
	// is famously quiet: default 0.3%).
	NoiseAmplitude float64
}

// New creates a machine with production timing defaults.
func New(racks int) (*Machine, error) {
	shape, err := torus.ShapeForRacks(racks)
	if err != nil {
		return nil, err
	}
	tor, err := torus.New(shape)
	if err != nil {
		return nil, err
	}
	return &Machine{
		Racks:           racks,
		Torus:           tor,
		LinkBandwidth:   1.8e9,
		HopLatency:      40e-9,
		SoftwareLatency: 600e-9,
		NoiseAmplitude:  0.003,
	}, nil
}

// Nodes returns the node count.
func (m *Machine) Nodes() int { return m.Torus.Shape.Nodes() }

// Threads returns the hardware-thread count of the partition.
func (m *Machine) Threads() int { return m.Nodes() * ThreadsPerNode }

// String describes the partition.
func (m *Machine) String() string {
	return fmt.Sprintf("BG/Q %d rack(s), torus %s, %d nodes, %d threads",
		m.Racks, m.Torus.Shape, m.Nodes(), m.Threads())
}

// ReduceAlgorithm selects the K-matrix allreduce model.
type ReduceAlgorithm int

const (
	// DimExchange is the torus-native dimension-ordered recursive
	// halving/doubling: nearest-neighbour transfers only, bandwidth
	// near-optimal. This is the paper's production choice.
	DimExchange ReduceAlgorithm = iota
	// Binomial is a latency-oriented binomial tree (hops grow with the
	// partition diameter).
	Binomial
	// Ring is the classic bandwidth-optimal but latency-heavy ring.
	Ring
)

// String implements fmt.Stringer.
func (r ReduceAlgorithm) String() string {
	switch r {
	case DimExchange:
		return "dim-exchange"
	case Binomial:
		return "binomial"
	case Ring:
		return "ring"
	default:
		return fmt.Sprintf("ReduceAlgorithm(%d)", int(r))
	}
}

// AllreduceTime models the time to allreduce b bytes across all nodes of
// the partition with the given algorithm.
func (m *Machine) AllreduceTime(bytes int, alg ReduceAlgorithm) float64 {
	n := float64(m.Nodes())
	if n <= 1 {
		return 0
	}
	b := float64(bytes)
	switch alg {
	case DimExchange:
		// Recursive halving + doubling over each torus dimension:
		// nearest-neighbour hops only; total payload moved per node is
		// 2·b·(1−1/N); per step software latency.
		steps := float64(m.Torus.DimExchangeSteps()) * 2 // reduce + broadcast phases
		return steps*(m.SoftwareLatency+m.HopLatency) + 2*b*(1-1/n)/m.LinkBandwidth
	case Binomial:
		// log2(N) rounds; each round's message crosses on average half
		// the diameter; payload b per round (reduce then broadcast).
		rounds := math.Ceil(math.Log2(n))
		avgHops := float64(m.Torus.Diameter()) / 2
		return 2 * rounds * (m.SoftwareLatency + avgHops*m.HopLatency + b/m.LinkBandwidth)
	case Ring:
		// 2(N−1) steps of b/N each between neighbours.
		return 2 * (n - 1) * (m.SoftwareLatency + m.HopLatency + b/n/m.LinkBandwidth)
	default:
		panic("bgq: unknown reduce algorithm")
	}
}

// IntraNodeReduceTime models the shared-memory tree combine of the
// thread-private K buffers inside one node: log2(64) rounds of a memcpy-
// rate add over b bytes.
func (m *Machine) IntraNodeReduceTime(bytes int) float64 {
	const memBandwidth = 28e9 // bytes/s effective DDR3 stream rate per node
	rounds := math.Log2(ThreadsPerNode)
	return rounds * float64(bytes) / memBandwidth
}

// nodeNoise returns the deterministic jitter factor (≥1) for a node:
// a cheap hash spread over [1, 1+NoiseAmplitude].
func (m *Machine) nodeNoise(node int) float64 {
	h := uint64(node)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	frac := float64(h%1000000) / 1000000
	return 1 + m.NoiseAmplitude*frac
}
