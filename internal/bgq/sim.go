package bgq

import (
	"fmt"

	"hfxmd/internal/sched"
)

// Workload describes one HFX build to be executed on the simulated
// machine. Tasks are node-level work units (the inner 64-way SMT split is
// modelled analytically, see Simulate); costs are in seconds.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// TaskCosts are the scheduled per-task costs in seconds.
	TaskCosts []float64
	// TrueCosts, when non-nil, are the costs actually incurred at
	// execution time (for the cost-model-fidelity ablation A3). Must have
	// the same length as TaskCosts.
	TrueCosts []float64
	// KMatrixBytes is the size of the full exchange matrix.
	KMatrixBytes int
	// TouchedBytesPerTask bounds the K payload a single task contributes;
	// the reduction is a reduce-scatter over per-node contributions, so
	// per-node payload = min(KMatrixBytes, tasks×TouchedBytesPerTask).
	TouchedBytesPerTask float64
	// QuartetCost is the finest splittable work unit (seconds); the
	// intra-node dynamic queue balances to within one quartet.
	QuartetCost float64
}

// TotalWork returns the summed scheduled cost in seconds.
func (w *Workload) TotalWork() float64 {
	var s float64
	for _, c := range w.TaskCosts {
		s += c
	}
	return s
}

// SimOptions selects the execution scheme.
type SimOptions struct {
	// Balancer is the static node-level assignment algorithm (the paper
	// uses sched.LPT; the baseline uses sched.Block).
	Balancer sched.Algorithm
	// Reduce selects the allreduce algorithm for the K combination.
	Reduce ReduceAlgorithm
	// Overlap is the fraction of reduction hidden behind compute via
	// non-blocking collectives (paper: 0.9; baseline: 0).
	Overlap float64
	// PerTaskMessages models the data-distributed baseline: every task
	// requires a synchronous fetch of remote density blocks and a send of
	// K blocks (two messages of MessageBytes each).
	PerTaskMessages bool
	// MessageBytes is the payload of each baseline message.
	MessageBytes int
	// MaxThreadsPerTask caps how many of a node's 64 hardware threads can
	// cooperate on one task (0 = all). The paper's scheme splits any task
	// down to quartet granularity across the full SMT width; the
	// comparable prior approaches threaded at core level only (16-way),
	// which is what limits their strong-scaling floor.
	MaxThreadsPerTask int
}

// PaperScheme returns the paper's production configuration.
func PaperScheme() SimOptions {
	return SimOptions{Balancer: sched.LPT, Reduce: DimExchange, Overlap: 0.9}
}

// BaselineScheme returns the directly-comparable approach: replicated-K
// with a classic ring allreduce and no communication overlap, block
// distribution of un-chunked pair tasks, per-task density/K messaging,
// and core-level (16-way) threading without the SMT-wide task split.
func BaselineScheme() SimOptions {
	return SimOptions{
		Balancer:          sched.Block,
		Reduce:            Ring,
		Overlap:           0,
		PerTaskMessages:   true,
		MessageBytes:      32 * 1024,
		MaxThreadsPerTask: CoresPerNode,
	}
}

// SimResult is the outcome of one simulated HFX build.
type SimResult struct {
	// Compute is the critical-path compute time (seconds).
	Compute float64
	// Reduction is the visible (non-overlapped) K-reduction time.
	Reduction float64
	// Messaging is the per-task communication serialised on the critical
	// node (baseline scheme only).
	Messaging float64
	// Total is the simulated wall-clock of the build.
	Total float64
	// BalanceRatio is max/mean node load.
	BalanceRatio float64
	// Threads echoes the machine's hardware-thread count.
	Threads int
	// TasksPerNodeMean for diagnostics.
	TasksPerNodeMean float64
}

// String renders the result compactly.
func (r SimResult) String() string {
	return fmt.Sprintf("total=%.4gs (compute=%.4g reduce=%.4g msg=%.4g) balance=%.4f threads=%d",
		r.Total, r.Compute, r.Reduction, r.Messaging, r.BalanceRatio, r.Threads)
}

// Simulate executes the workload's schedule on the machine.
//
// The node level replays the real static assignment produced by package
// sched. The intra-node level — 64 SMT threads draining the node's task
// list from a shared queue — is modelled analytically: dynamic scheduling
// of work divisible to quartet granularity balances to within half a
// quartet of perfect, so
//
//	t_node = load/64 + quartetCost/2,
//
// which is exact in the limit the paper engineers for (quartet ≪ task).
func (m *Machine) Simulate(w *Workload, opts SimOptions) SimResult {
	if len(w.TaskCosts) == 0 {
		return SimResult{Threads: m.Threads(), BalanceRatio: 1}
	}
	if w.TrueCosts != nil && len(w.TrueCosts) != len(w.TaskCosts) {
		panic("bgq: TrueCosts length mismatch")
	}
	nodes := m.Nodes()
	asn := sched.Balance(opts.Balancer, w.TaskCosts, nodes)

	// Per-node execution time: true loads (if provided) + SMT split +
	// OS noise (+ serialized per-task messaging for the baseline).
	msgCost := 0.0
	if opts.PerTaskMessages {
		msgCost = 2 * (m.SoftwareLatency + float64(opts.MessageBytes)/m.LinkBandwidth +
			float64(m.Torus.Diameter())/2*m.HopLatency)
	}
	taskWidth := opts.MaxThreadsPerTask
	if taskWidth <= 0 || taskWidth > ThreadsPerNode {
		taskWidth = ThreadsPerNode
	}
	var compute, messaging float64
	var maxLoad, sumLoad float64
	maxTasksNode := 0
	for node := 0; node < nodes; node++ {
		load := asn.Loads[node]
		maxTask := 0.0
		if w.TrueCosts != nil {
			load = 0
			for _, ti := range asn.Workers[node] {
				load += w.TrueCosts[ti]
			}
		}
		if taskWidth < ThreadsPerNode {
			for _, ti := range asn.Workers[node] {
				c := w.TaskCosts[ti]
				if w.TrueCosts != nil {
					c = w.TrueCosts[ti]
				}
				if c > maxTask {
					maxTask = c
				}
			}
		}
		sumLoad += load
		if load > maxLoad {
			maxLoad = load
		}
		// A node finishes no earlier than its total work spread over all
		// threads, and no earlier than its largest task spread over the
		// threads allowed to cooperate on one task.
		t := load / ThreadsPerNode
		if floor := maxTask / float64(taskWidth); floor > t {
			t = floor
		}
		t = (t + w.QuartetCost/2) * m.nodeNoise(node)
		msg := msgCost * float64(len(asn.Workers[node]))
		if t+msg > compute+messaging {
			compute, messaging = t, msg
		}
		if len(asn.Workers[node]) > maxTasksNode {
			maxTasksNode = len(asn.Workers[node])
		}
	}

	// Reduction: reduce-scatter + allgather of the per-node contribution.
	perNodeBytes := float64(w.KMatrixBytes)
	if w.TouchedBytesPerTask > 0 {
		touched := w.TouchedBytesPerTask * float64(maxTasksNode)
		if touched < perNodeBytes {
			perNodeBytes = touched
		}
	}
	reduce := m.AllreduceTime(int(perNodeBytes), opts.Reduce) +
		m.IntraNodeReduceTime(int(perNodeBytes))
	visible := reduce * (1 - clamp01(opts.Overlap))
	// Overlap cannot hide more communication than there is computation.
	if hidden := reduce - visible; hidden > compute {
		visible = reduce - compute
	}

	mean := sumLoad / float64(nodes)
	ratio := 1.0
	if mean > 0 {
		ratio = maxLoad / mean
	}
	return SimResult{
		Compute:          compute,
		Reduction:        visible,
		Messaging:        messaging,
		Total:            compute + messaging + visible,
		BalanceRatio:     ratio,
		Threads:          m.Threads(),
		TasksPerNodeMean: float64(len(w.TaskCosts)) / float64(nodes),
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// ScalePoint is one row of a strong-scaling study.
type ScalePoint struct {
	Racks      int
	Threads    int
	Result     SimResult
	Speedup    float64 // vs the first (smallest) configuration
	Efficiency float64 // speedup / ideal speedup
}

// StrongScaling runs the workload on each rack count and derives speedups
// and parallel efficiencies relative to the smallest configuration.
func StrongScaling(w *Workload, racks []int, opts SimOptions) ([]ScalePoint, error) {
	if len(racks) == 0 {
		return nil, fmt.Errorf("bgq: no rack counts given")
	}
	pts := make([]ScalePoint, 0, len(racks))
	var t0 float64
	var th0 int
	for i, r := range racks {
		m, err := New(r)
		if err != nil {
			return nil, err
		}
		res := m.Simulate(w, opts)
		p := ScalePoint{Racks: r, Threads: m.Threads(), Result: res}
		if i == 0 {
			t0, th0 = res.Total, m.Threads()
			p.Speedup, p.Efficiency = 1, 1
		} else {
			p.Speedup = t0 / res.Total
			ideal := float64(m.Threads()) / float64(th0)
			p.Efficiency = p.Speedup / ideal
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// WeakScaling grows the system with the machine (waters ∝ racks, the
// paper's condensed-phase MD use case) and reports the per-build time at
// each size; ideal weak scaling keeps Result.Total flat.
func WeakScaling(watersPerRack, tasksPerRack int, racks []int, seed int64, opts SimOptions) ([]ScalePoint, error) {
	if len(racks) == 0 {
		return nil, fmt.Errorf("bgq: no rack counts given")
	}
	pts := make([]ScalePoint, 0, len(racks))
	var t0 float64
	for i, r := range racks {
		m, err := New(r)
		if err != nil {
			return nil, err
		}
		w := CondensedPhaseWorkload(watersPerRack*r, tasksPerRack*r, seed)
		res := m.Simulate(w, opts)
		p := ScalePoint{Racks: r, Threads: m.Threads(), Result: res}
		if i == 0 {
			t0 = res.Total
			p.Speedup, p.Efficiency = 1, 1
		} else {
			// Weak-scaling efficiency: T(1)/T(r) for proportional work.
			p.Efficiency = t0 / res.Total
			p.Speedup = p.Efficiency * float64(m.Threads()) / float64(pts[0].Threads)
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// SaturationThreads returns the thread count beyond which adding racks no
// longer improves (or worsens) the time by at least 5%: the scalability
// limit used for the paper's ">20-fold improvement" comparison (E2).
func SaturationThreads(pts []ScalePoint) int {
	if len(pts) == 0 {
		return 0
	}
	best := pts[0]
	for _, p := range pts[1:] {
		if p.Result.Total < best.Result.Total*0.95 {
			best = p
		} else {
			break
		}
	}
	return best.Threads
}

// TimeToSolution returns the simulated wall-clock at the given rack count
// (convenience for the E3 comparison).
func TimeToSolution(w *Workload, racks int, opts SimOptions) (float64, error) {
	m, err := New(racks)
	if err != nil {
		return 0, err
	}
	return m.Simulate(w, opts).Total, nil
}
