package bgq

import (
	"math"
	"testing"

	"hfxmd/internal/basis"
	"hfxmd/internal/chem"
	"hfxmd/internal/hfx"
	"hfxmd/internal/integrals"
	"hfxmd/internal/sched"
	"hfxmd/internal/screen"
)

func TestMachineThreadCounts(t *testing.T) {
	cases := map[int]int{1: 65536, 8: 524288, 96: 6291456}
	for racks, threads := range cases {
		m, err := New(racks)
		if err != nil {
			t.Fatal(err)
		}
		if m.Threads() != threads {
			t.Fatalf("%d racks: %d threads want %d", racks, m.Threads(), threads)
		}
	}
	if _, err := New(0); err == nil {
		t.Fatal("expected error for 0 racks")
	}
}

func TestMachineString(t *testing.T) {
	m, _ := New(96)
	if m.String() == "" {
		t.Fatal("empty description")
	}
}

func TestAllreduceModels(t *testing.T) {
	m, _ := New(8)
	bytes := 64 << 20
	for _, alg := range []ReduceAlgorithm{DimExchange, Binomial, Ring} {
		tm := m.AllreduceTime(bytes, alg)
		if tm <= 0 {
			t.Fatalf("%v: time %g", alg, tm)
		}
		if alg.String() == "" {
			t.Fatal("empty name")
		}
	}
	// Dimension exchange must beat the ring at scale (latency) and the
	// binomial tree on bandwidth for large payloads.
	de := m.AllreduceTime(bytes, DimExchange)
	ring := m.AllreduceTime(bytes, Ring)
	bin := m.AllreduceTime(bytes, Binomial)
	if de >= ring {
		t.Fatalf("dim-exchange %g not better than ring %g", de, ring)
	}
	if de >= bin {
		t.Fatalf("dim-exchange %g not better than binomial %g", de, bin)
	}
}

func TestAllreduceSingleNodeFree(t *testing.T) {
	shape1 := Machine{Racks: 0}
	_ = shape1
	// A one-node "partition" cannot occur via New (min 1 rack), so test
	// the N≤1 guard directly through a tiny hand-made machine.
	m, _ := New(1)
	if m.AllreduceTime(0, DimExchange) < 0 {
		t.Fatal("negative time")
	}
}

func TestCondensedPhaseWorkloadShape(t *testing.T) {
	w := CondensedPhaseWorkload(512, 1<<16, 1)
	if len(w.TaskCosts) != 1<<16 {
		t.Fatalf("%d tasks", len(w.TaskCosts))
	}
	want := 512.0 * pairsPerWaterSTO * quartetsPerPair * quartetCostSTO
	if math.Abs(w.TotalWork()-want) > 0.01*want {
		t.Fatalf("total work %g want %g", w.TotalWork(), want)
	}
	// Near-uniform tasks: coefficient of variation must be small.
	st := sched.Summarize(w.TaskCosts)
	if st.CV > 0.1 {
		t.Fatalf("task CV %g too large", st.CV)
	}
}

func TestBaselineWorkloadHeavyTailed(t *testing.T) {
	w := BaselineWorkload(512, 1)
	st := sched.Summarize(w.TaskCosts)
	if st.CV < 0.5 {
		t.Fatalf("baseline CV %g should be heavy-tailed", st.CV)
	}
	if len(w.TaskCosts) != 512*pairsPerWaterSTO {
		t.Fatalf("%d tasks", len(w.TaskCosts))
	}
	// Same physical system but scalar kernels and weaker screening: the
	// total work carries the documented 9x inefficiency factor.
	wp := CondensedPhaseWorkload(512, 1<<16, 1)
	want := baselineKernelFactor * baselineScreenFactor
	ratio := w.TotalWork() / wp.TotalWork()
	if ratio < 0.5*want || ratio > 2*want {
		t.Fatalf("baseline/paper work ratio %g want ~%g", ratio, want)
	}
}

func TestSimulateBasicInvariants(t *testing.T) {
	m, _ := New(1)
	w := CondensedPhaseWorkload(128, 1<<15, 2)
	res := m.Simulate(w, PaperScheme())
	if res.Total <= 0 || res.Compute <= 0 {
		t.Fatalf("result %+v", res)
	}
	if res.Total < res.Compute {
		t.Fatal("total below compute")
	}
	if res.BalanceRatio < 1 {
		t.Fatalf("balance ratio %g", res.BalanceRatio)
	}
	if res.Threads != 65536 {
		t.Fatalf("threads %d", res.Threads)
	}
	// Perfect-machine lower bound: work/threads.
	lower := w.TotalWork() / float64(res.Threads)
	if res.Compute < lower*0.999 {
		t.Fatalf("compute %g below physical lower bound %g", res.Compute, lower)
	}
}

func TestSimulateEmptyWorkload(t *testing.T) {
	m, _ := New(1)
	res := m.Simulate(&Workload{}, PaperScheme())
	if res.Total != 0 || res.BalanceRatio != 1 {
		t.Fatalf("empty workload result %+v", res)
	}
}

func TestStrongScalingNearPerfect(t *testing.T) {
	// E1 in miniature: the paper scheme holds ≥90% efficiency to 96 racks
	// on the flagship workload.
	w := CondensedPhaseWorkload(4096, 1<<20, 3)
	racks := []int{1, 2, 4, 8, 16, 32, 64, 96}
	pts, err := StrongScaling(w, racks, PaperScheme())
	if err != nil {
		t.Fatal(err)
	}
	last := pts[len(pts)-1]
	if last.Threads != 6291456 {
		t.Fatalf("final point %d threads", last.Threads)
	}
	if last.Efficiency < 0.9 {
		t.Fatalf("96-rack efficiency %.3f < 0.9", last.Efficiency)
	}
	// Monotone speedup.
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup <= pts[i-1].Speedup {
			t.Fatalf("speedup not monotone at %d racks", pts[i].Racks)
		}
	}
}

func TestBaselineSaturatesEarly(t *testing.T) {
	// E2 in miniature: the baseline scheme must stop scaling far below
	// the paper scheme (>20× fewer useful threads).
	paper := CondensedPhaseWorkload(4096, 1<<20, 3)
	base := BaselineWorkload(4096, 3)
	racks := []int{1, 2, 4, 8, 16, 32, 64, 96}
	pPts, err := StrongScaling(paper, racks, PaperScheme())
	if err != nil {
		t.Fatal(err)
	}
	bPts, err := StrongScaling(base, racks, BaselineScheme())
	if err != nil {
		t.Fatal(err)
	}
	pSat := SaturationThreads(pPts)
	bSat := SaturationThreads(bPts)
	if pSat < 20*bSat {
		t.Fatalf("scalability improvement %d/%d = %.1fx < 20x", pSat, bSat, float64(pSat)/float64(bSat))
	}
}

func TestTimeToSolutionAdvantage(t *testing.T) {
	// E3 in miniature: >10× faster at a fixed machine size.
	paper := CondensedPhaseWorkload(4096, 1<<20, 3)
	base := BaselineWorkload(4096, 3)
	tp, err := TimeToSolution(paper, 32, PaperScheme())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := TimeToSolution(base, 32, BaselineScheme())
	if err != nil {
		t.Fatal(err)
	}
	if tb < 10*tp {
		t.Fatalf("time-to-solution improvement %.1fx < 10x (paper %g baseline %g)", tb/tp, tp, tb)
	}
}

func TestCostModelFidelityAblation(t *testing.T) {
	// A3: scheduling with noisy predicted costs but executing true costs
	// degrades balance only mildly when the noise is small.
	w := CondensedPhaseWorkload(256, 1<<16, 5)
	truth := make([]float64, len(w.TaskCosts))
	h := uint64(99)
	for i, c := range w.TaskCosts {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		truth[i] = c * (1 + 0.2*(float64(h%1000)/1000-0.5))
	}
	m, _ := New(4)
	exact := m.Simulate(&Workload{TaskCosts: truth, TrueCosts: truth,
		KMatrixBytes: w.KMatrixBytes, QuartetCost: w.QuartetCost}, PaperScheme())
	modeled := m.Simulate(&Workload{TaskCosts: w.TaskCosts, TrueCosts: truth,
		KMatrixBytes: w.KMatrixBytes, QuartetCost: w.QuartetCost}, PaperScheme())
	if modeled.Total < exact.Total*0.99 {
		t.Fatalf("modeled schedule beats exact schedule: %g vs %g", modeled.Total, exact.Total)
	}
	if modeled.Total > exact.Total*1.25 {
		t.Fatalf("modeled schedule degrades too much: %g vs %g", modeled.Total, exact.Total)
	}
}

func TestTrueCostsLengthMismatchPanics(t *testing.T) {
	m, _ := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Simulate(&Workload{TaskCosts: []float64{1, 2}, TrueCosts: []float64{1}}, PaperScheme())
}

func TestMeasuredWorkloadGroundsSynthetic(t *testing.T) {
	// The measured per-quartet cost from the real pipeline must be within
	// an order of magnitude of the synthetic generator's constant.
	mol := chem.WaterCluster(8, 1)
	eng := integrals.NewEngine(basis.MustBuild("STO-3G", mol))
	scr := screen.BuildPairList(eng, screen.DefaultOptions())
	cm := hfx.Calibrate(eng)
	tasks := hfx.GenerateTasks(eng.Basis, scr.Pairs, cm, 0)
	w := MeasuredWorkload(eng.Basis, scr.Pairs, tasks)
	if len(w.TaskCosts) != len(tasks) {
		t.Fatalf("%d costs for %d tasks", len(w.TaskCosts), len(tasks))
	}
	perQuartet := w.TotalWork() / float64(hfx.TotalQuartets(tasks))
	if perQuartet < quartetCostSTO/30 || perQuartet > quartetCostSTO*30 {
		t.Fatalf("measured quartet cost %g vs synthetic %g: more than 30x apart",
			perQuartet, quartetCostSTO)
	}
	m, _ := New(1)
	res := m.Simulate(w, PaperScheme())
	if res.Total <= 0 {
		t.Fatalf("measured workload simulation %+v", res)
	}
}

func TestNodeNoiseDeterministicBounded(t *testing.T) {
	m, _ := New(1)
	for _, node := range []int{0, 1, 777, 1023} {
		f1 := m.nodeNoise(node)
		f2 := m.nodeNoise(node)
		if f1 != f2 {
			t.Fatal("noise not deterministic")
		}
		if f1 < 1 || f1 > 1+m.NoiseAmplitude {
			t.Fatalf("noise %g out of range", f1)
		}
	}
}

func TestReductionAlgorithmsAblation(t *testing.T) {
	// A2: at large scale, ring reduction must be catastrophically worse.
	w := CondensedPhaseWorkload(1024, 1<<20, 7)
	m, _ := New(96)
	opts := PaperScheme()
	de := m.Simulate(w, opts)
	opts.Reduce = Ring
	ring := m.Simulate(w, opts)
	if ring.Total <= de.Total {
		t.Fatalf("ring %g not worse than dim-exchange %g at 96 racks", ring.Total, de.Total)
	}
}

func BenchmarkSimulate96Racks(b *testing.B) {
	w := CondensedPhaseWorkload(4096, 1<<20, 1)
	m, _ := New(96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Simulate(w, PaperScheme())
	}
}

func TestWeakScalingFlat(t *testing.T) {
	// Growing the system with the machine must keep the build time
	// roughly flat (the condensed-phase MD use case).
	pts, err := WeakScaling(256, 1<<14, []int{1, 4, 16, 64}, 9, PaperScheme())
	if err != nil {
		t.Fatal(err)
	}
	t0 := pts[0].Result.Total
	for _, p := range pts[1:] {
		if p.Result.Total > 1.3*t0 {
			t.Fatalf("weak scaling degraded at %d racks: %g vs %g", p.Racks, p.Result.Total, t0)
		}
		if p.Efficiency < 0.7 {
			t.Fatalf("weak efficiency %.2f at %d racks", p.Efficiency, p.Racks)
		}
	}
	if _, err := WeakScaling(1, 1, nil, 0, PaperScheme()); err == nil {
		t.Fatal("expected error for empty rack list")
	}
}

func TestCampaignSimulation(t *testing.T) {
	w := CondensedPhaseWorkload(1024, 1<<18, 3)
	m, _ := New(16)
	c := MDCampaign{Steps: 1000, TimestepFS: 0.5, SCFItersPerStep: 6, Workload: w}
	res := m.SimulateCampaign(c, PaperScheme())
	if res.PerStep <= 0 || res.Total <= 0 {
		t.Fatalf("campaign result %+v", res)
	}
	if math.Abs(res.PerStep-6*res.PerBuild) > 1e-12 {
		t.Fatalf("per-step %g != 6 × per-build %g", res.PerStep, res.PerBuild)
	}
	if math.Abs(res.SimulatedPS-0.5) > 1e-12 {
		t.Fatalf("simulated ps %g want 0.5", res.SimulatedPS)
	}
	if res.String() == "" {
		t.Fatal("empty render")
	}
	// Defaults fill in.
	def := m.SimulateCampaign(MDCampaign{Workload: w}, PaperScheme())
	if def.PerStep <= 0 || def.SimulatedPS <= 0 {
		t.Fatalf("default campaign %+v", def)
	}
	// More racks: faster steps.
	m96, _ := New(96)
	res96 := m96.SimulateCampaign(c, PaperScheme())
	if res96.PerStep >= res.PerStep {
		t.Fatalf("96-rack step %g not faster than 16-rack %g", res96.PerStep, res.PerStep)
	}
}

func TestFeasibilityTable(t *testing.T) {
	w := CondensedPhaseWorkload(1024, 1<<18, 3)
	c := MDCampaign{Steps: 10000, SCFItersPerStep: 6, Workload: w}
	rows, err := FeasibilityTable(c, []int{1, 16, 96}, PaperScheme())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if !(rows[2].Total < rows[0].Total) {
		t.Fatal("trajectory time should shrink with racks")
	}
	if _, err := FeasibilityTable(c, []int{0}, PaperScheme()); err == nil {
		t.Fatal("expected error for invalid rack count")
	}
}
