package bgq

import (
	"fmt"
	"math"

	"hfxmd/internal/basis"
	"hfxmd/internal/hfx"
	"hfxmd/internal/screen"
)

// Per-water condensed-phase statistics measured from the real pipeline on
// water clusters with the default ε = 1e-8 screening (see the calibration
// test in workload_test.go). These extrapolate the screened workload to
// system sizes whose pair lists would be impractical to enumerate here —
// the substitution documented in DESIGN.md for the paper's production
// systems.
const (
	// pairsPerWaterSTO is the surviving shell pairs per water molecule in
	// a liquid-density cluster (STO-3G).
	pairsPerWaterSTO = 300
	// quartetsPerPair is the significant partner pairs each pair couples
	// to in the exchange contraction (roughly N-independent because the
	// density decays).
	quartetsPerPair = 600
	// quartetCostSTO is the mean contracted-quartet evaluation time in
	// seconds on a BG/Q core (measured ~tens of microseconds in our Go
	// kernels; BG/Q A2 cores at 1.6 GHz are comparable).
	quartetCostSTO = 30e-6
	// basisPerWater counts basis functions per water (STO-3G).
	basisPerWater = 7
)

// CondensedPhaseWorkload synthesises the screened HFX workload of an
// (H2O)_n liquid-density system at node-task granularity. taskTarget sets
// how many node-level tasks the decomposition produces (the paper sizes
// tasks so that every node holds a few dozen; quartets remain the finest
// unit and are split dynamically inside the node).
func CondensedPhaseWorkload(nWater, taskTarget int, seed int64) *Workload {
	if nWater < 1 {
		panic("bgq: need at least one water")
	}
	if taskTarget < 1 {
		taskTarget = 1 << 20
	}
	totalQuartets := float64(nWater) * pairsPerWaterSTO * quartetsPerPair
	totalWork := totalQuartets * quartetCostSTO
	granule := totalWork / float64(taskTarget)

	costs := make([]float64, taskTarget)
	h := uint64(seed)*0x9e3779b97f4a7c15 + 1
	for i := range costs {
		// Tasks are granule-sized by construction with a small residual
		// spread (±5%) from uneven quartet boundaries.
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		frac := float64(h%1000)/1000 - 0.5
		costs[i] = granule * (1 + 0.1*frac)
	}
	nb := nWater * basisPerWater
	quartetsPerTask := totalQuartets / float64(taskTarget)
	return &Workload{
		Name:         fmt.Sprintf("(H2O)%d condensed-phase HFX", nWater),
		TaskCosts:    costs,
		KMatrixBytes: nb * nb * 8,
		// Each quartet writes ≤8 small K blocks; shared bra rows dedupe
		// most of it, ~500 bytes of distinct K per quartet survives.
		TouchedBytesPerTask: 500 * quartetsPerTask,
		QuartetCost:         quartetCostSTO,
	}
}

// Baseline inefficiency factors relative to the paper's kernels,
// reflecting what the "directly comparable approaches" lacked:
const (
	// baselineKernelFactor: scalar inner loops instead of the 4-wide
	// QPX-batched Boys/Hermite kernels.
	baselineKernelFactor = 3.0
	// baselineScreenFactor: plain Schwarz screening without density
	// weighting and without the condensed-phase distance pre-screen
	// computes ~3× more quartets at the same accuracy.
	baselineScreenFactor = 3.0
)

// BaselineWorkload synthesises the same physical system decomposed the
// state-of-the-art way: one task per bra shell pair (no chunking), with
// the heavy-tailed cost distribution that pair lists exhibit (cost ∝
// number of surviving partner pairs, which spans orders of magnitude),
// scalar kernels and weaker screening (see the factors above). K is
// distributed, so only negligible per-task slices are reduced — the
// scheme pays in per-task messaging instead (see BaselineScheme).
func BaselineWorkload(nWater int, seed int64) *Workload {
	pairs := nWater * pairsPerWaterSTO
	costs := make([]float64, pairs)
	h := uint64(seed)*0x2545f4914f6cdd1d + 1
	meanCost := quartetsPerPair * quartetCostSTO * baselineKernelFactor * baselineScreenFactor
	for i := range costs {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		// Log-normal-ish tail: most pairs cheap, a few very expensive.
		u1 := float64(h%100000)/100000 + 1e-9
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		u2 := float64(h%100000) / 100000
		z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		costs[i] = meanCost * math.Exp(0.9*z-0.405) // unit-mean log-normal
	}
	nb := nWater * basisPerWater
	return &Workload{
		Name:                fmt.Sprintf("(H2O)%d baseline pair-distributed HFX", nWater),
		TaskCosts:           costs,
		KMatrixBytes:        nb * nb * 8,
		TouchedBytesPerTask: 500, // K distributed: only local slices reduce
		QuartetCost:         quartetCostSTO * baselineKernelFactor,
	}
}

// MeasuredWorkload converts a real task decomposition from package hfx
// into a simulator workload, using the calibrated cost model to convert
// abstract cost units (nanoseconds) to seconds. This grounds the
// synthetic generators: their statistics are validated against this path
// in the tests.
func MeasuredWorkload(set *basis.Set, pairs []screen.Pair, tasks []hfx.Task) *Workload {
	costs := make([]float64, len(tasks))
	var maxQ float64
	for i := range tasks {
		costs[i] = tasks[i].Cost * 1e-9
		if c := tasks[i].Cost / float64(maxInt(tasks[i].QuartetsInTask, 1)); c > maxQ {
			maxQ = c
		}
	}
	nb := set.NBasis
	return &Workload{
		Name:                fmt.Sprintf("%s measured HFX", set.Mol.Name),
		TaskCosts:           costs,
		KMatrixBytes:        nb * nb * 8,
		TouchedBytesPerTask: 500 * float64(hfx.TotalQuartets(tasks)) / float64(maxInt(len(tasks), 1)),
		QuartetCost:         maxQ * 1e-9,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
