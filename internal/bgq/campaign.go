package bgq

import (
	"fmt"
	"time"
)

// MDCampaign describes a Born–Oppenheimer MD production run: every MD
// step performs SCFItersPerStep self-consistency cycles, each dominated
// by one HFX build of the given workload. This is the paper's motivating
// scenario — hybrid-functional (PBE0) dynamics of Li/air electrolytes —
// where the question is whether a *single MD step* fits in a useful wall
// clock at all.
type MDCampaign struct {
	// Steps is the number of MD steps in the trajectory.
	Steps int
	// TimestepFS is the MD timestep in femtoseconds (reporting only).
	TimestepFS float64
	// SCFItersPerStep is the SCF cycles per step; with incremental (ΔP)
	// Fock builds and a good extrapolated guess this is small (4–8).
	SCFItersPerStep int
	// Workload is the per-build HFX work.
	Workload *Workload
}

// CampaignResult summarises a simulated campaign.
type CampaignResult struct {
	// PerBuild is the simulated wall time of one HFX build.
	PerBuild float64
	// PerStep is the wall time of one MD step (SCF iterations × build).
	PerStep float64
	// Total is the trajectory wall time in seconds.
	Total float64
	// SimulatedPS is the physical time covered, in picoseconds.
	SimulatedPS float64
	// Threads echoes the partition size.
	Threads int
}

// String renders the feasibility verdict.
func (r CampaignResult) String() string {
	return fmt.Sprintf("%.3fs/step, %.1f ps in %v on %d threads",
		r.PerStep, r.SimulatedPS, time.Duration(r.Total*float64(time.Second)).Round(time.Minute), r.Threads)
}

// SimulateCampaign evaluates the trajectory cost on this machine.
func (m *Machine) SimulateCampaign(c MDCampaign, opts SimOptions) CampaignResult {
	if c.Steps <= 0 {
		c.Steps = 1
	}
	if c.SCFItersPerStep <= 0 {
		c.SCFItersPerStep = 6
	}
	if c.TimestepFS <= 0 {
		c.TimestepFS = 0.5
	}
	build := m.Simulate(c.Workload, opts).Total
	perStep := build * float64(c.SCFItersPerStep)
	return CampaignResult{
		PerBuild:    build,
		PerStep:     perStep,
		Total:       perStep * float64(c.Steps),
		SimulatedPS: float64(c.Steps) * c.TimestepFS / 1000,
		Threads:     m.Threads(),
	}
}

// FeasibilityTable computes the time-per-MD-step across rack counts — the
// "can we run PBE0 dynamics at all" table that motivates the paper.
func FeasibilityTable(c MDCampaign, racks []int, opts SimOptions) ([]CampaignResult, error) {
	out := make([]CampaignResult, 0, len(racks))
	for _, r := range racks {
		m, err := New(r)
		if err != nil {
			return nil, err
		}
		out = append(out, m.SimulateCampaign(c, opts))
	}
	return out, nil
}
