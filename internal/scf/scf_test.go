package scf

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"hfxmd/internal/chem"
	"hfxmd/internal/dft"
	"hfxmd/internal/hfx"
	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
)

func runHF(t testing.TB, mol *chem.Molecule) *Result {
	t.Helper()
	res, err := Run(mol, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("%s did not converge in %d iterations (E=%.8f)", mol.Name, res.Iterations, res.Energy)
	}
	return res
}

// Literature RHF/STO-3G total energies (hartree).
func TestH2Energy(t *testing.T) {
	res := runHF(t, chem.Hydrogen(1.4))
	// Szabo & Ostlund: E(H2, R=1.4) = −1.1167 Eh.
	if math.Abs(res.Energy-(-1.1167)) > 5e-4 {
		t.Fatalf("H2 energy %.6f want -1.1167", res.Energy)
	}
}

func TestHeliumEnergy(t *testing.T) {
	res := runHF(t, chem.Helium())
	// STO-3G helium RHF: −2.8078 Eh.
	if math.Abs(res.Energy-(-2.8078)) > 1e-3 {
		t.Fatalf("He energy %.6f want -2.8078", res.Energy)
	}
}

func TestWaterEnergy(t *testing.T) {
	res := runHF(t, chem.Water())
	// RHF/STO-3G at the experimental geometry: ≈ −74.963 Eh.
	if math.Abs(res.Energy-(-74.963)) > 5e-3 {
		t.Fatalf("H2O energy %.6f want about -74.963", res.Energy)
	}
	if res.NOcc != 5 {
		t.Fatalf("water NOcc %d", res.NOcc)
	}
	// Aufbau sanity: HOMO below LUMO, gap positive.
	if !(res.Gap() > 0) {
		t.Fatalf("gap %g", res.Gap())
	}
}

func TestLiHEnergy(t *testing.T) {
	res := runHF(t, chem.LithiumHydride())
	// RHF/STO-3G LiH ≈ −7.862 Eh near equilibrium.
	if math.Abs(res.Energy-(-7.862)) > 5e-3 {
		t.Fatalf("LiH energy %.6f want about -7.862", res.Energy)
	}
}

func TestEnergyDecompositionConsistency(t *testing.T) {
	res := runHF(t, chem.Water())
	sum := res.EOne + res.ECoulomb + res.EExchangeHF + res.EXC + res.ENuclear
	if math.Abs(sum-res.Energy) > 1e-10 {
		t.Fatalf("decomposition %.10f != total %.10f", sum, res.Energy)
	}
	if res.ECoulomb <= 0 || res.EExchangeHF >= 0 || res.EOne >= 0 || res.ENuclear <= 0 {
		t.Fatalf("component signs wrong: %+v", res)
	}
}

func TestDensityTrace(t *testing.T) {
	res := runHF(t, chem.Water())
	eng := integrals.NewEngine(res.Set)
	s := eng.Overlap()
	// tr(P·S) = number of electrons.
	if got := linalg.TraceMul(res.P, s); math.Abs(got-10) > 1e-8 {
		t.Fatalf("tr(PS) = %g want 10", got)
	}
}

func TestVirialRatioApprox(t *testing.T) {
	// −V/T ≈ 2 for a system near equilibrium (loose check 1.9–2.1).
	res := runHF(t, chem.Water())
	eng := integrals.NewEngine(res.Set)
	kin := linalg.TraceMul(res.P, eng.Kinetic())
	v := res.Energy - kin
	ratio := -v / kin
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("virial ratio %g", ratio)
	}
}

func TestOddElectronRejected(t *testing.T) {
	mol := chem.Water()
	mol.Charge = 1
	if _, err := Run(mol, Config{}); err == nil {
		t.Fatal("expected error for odd electron count")
	}
}

func TestUnknownBasisPropagates(t *testing.T) {
	if _, err := Run(chem.Water(), Config{Basis: "NOPE"}); err == nil {
		t.Fatal("expected basis error")
	}
}

func TestLDAWater(t *testing.T) {
	res, err := Run(chem.Water(), Config{
		Functional: dft.LDA{},
		Grid:       dft.GridSpec{NRadial: 32, NAngular: 26},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("LDA water did not converge")
	}
	// SVWN total energy is below HF for water in the same basis (the
	// LDA XC energy overbinds).
	if res.EXC >= 0 {
		t.Fatalf("EXC %g should be negative", res.EXC)
	}
	if math.Abs(res.GridElectrons-10) > 0.05 {
		t.Fatalf("grid electrons %g want ~10", res.GridElectrons)
	}
	if res.EExchangeHF != 0 {
		t.Fatal("pure functional should have no HF exchange")
	}
}

func TestPBEWater(t *testing.T) {
	res, err := Run(chem.Water(), Config{
		Functional: dft.PBE{},
		Grid:       dft.GridSpec{NRadial: 32, NAngular: 26},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("PBE water did not converge")
	}
	if res.EXC >= 0 {
		t.Fatal("PBE XC energy should be negative")
	}
}

func TestPBE0Water(t *testing.T) {
	res, err := Run(chem.Water(), Config{
		Functional: dft.PBE0{},
		Grid:       dft.GridSpec{NRadial: 32, NAngular: 26},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("PBE0 water did not converge")
	}
	// The hybrid must carry both exact exchange and a semilocal part.
	if res.EExchangeHF >= 0 {
		t.Fatalf("PBE0 HF-exchange part %g should be negative", res.EExchangeHF)
	}
	if res.EXC >= 0 {
		t.Fatalf("PBE0 semilocal part %g should be negative", res.EXC)
	}
	// 25% mixing: |E_x^HF(PBE0)| should be about a quarter of the HF one.
	hf := runHF(t, chem.Water())
	ratio := res.EExchangeHF / hf.EExchangeHF
	if ratio < 0.15 || ratio > 0.35 {
		t.Fatalf("PBE0/HF exchange ratio %g want ~0.25", ratio)
	}
}

func TestMullikenChargesSumToCharge(t *testing.T) {
	res := runHF(t, chem.Water())
	eng := integrals.NewEngine(res.Set)
	q := MullikenCharges(res, eng)
	var sum float64
	for _, v := range q {
		sum += v
	}
	if math.Abs(sum-0) > 1e-8 {
		t.Fatalf("Mulliken charges sum %g want 0", sum)
	}
	// Oxygen negative, hydrogens positive.
	if q[0] >= 0 || q[1] <= 0 || q[2] <= 0 {
		t.Fatalf("charges %v have wrong polarity", q)
	}
}

func TestDipoleWater(t *testing.T) {
	res := runHF(t, chem.Water())
	eng := integrals.NewEngine(res.Set)
	mu := Dipole(res, eng)
	norm := math.Sqrt(mu[0]*mu[0] + mu[1]*mu[1] + mu[2]*mu[2])
	// RHF/STO-3G water dipole ≈ 0.68 a.u. (1.7 D); loose window.
	if norm < 0.4 || norm > 1.0 {
		t.Fatalf("water dipole %g a.u. out of window", norm)
	}
	// By symmetry (molecule in xz plane, C2v along z): μx ≈ μy ≈ 0... our
	// geometry has the H atoms symmetric about the z axis in the x
	// direction, so μx ≈ 0.
	if math.Abs(mu[0]) > 1e-6 {
		t.Fatalf("μx = %g should vanish by symmetry", mu[0])
	}
}

func TestH2DissociationCurveShape(t *testing.T) {
	// Energy must have a minimum near R=1.4 a0 in STO-3G.
	energies := map[float64]float64{}
	for _, r := range []float64{1.0, 1.4, 2.2} {
		res := runHF(t, chem.Hydrogen(r))
		energies[r] = res.Energy
	}
	if !(energies[1.4] < energies[1.0] && energies[1.4] < energies[2.2]) {
		t.Fatalf("no minimum at 1.4: %v", energies)
	}
}

func TestBaselineHFXOptionsGiveSameEnergy(t *testing.T) {
	resA, err := Run(chem.Water(), Config{HFX: hfx.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Run(chem.Water(), Config{HFX: hfx.BaselineOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resA.Energy-resB.Energy) > 1e-6 {
		t.Fatalf("paper %f vs baseline %f", resA.Energy, resB.Energy)
	}
}

// TestBaselineHFXOptionsRespected guards against fillDefaults replacing
// an explicitly requested configuration. hfx.BaselineOptions() happens
// to have Balancer == sched.Block (0), Threads == 0 and DensityWeighted
// == false, which the old field-by-field "is it unset?" test mistook for
// the zero value — so a baseline run silently got the production options
// (vector kernels on). Only the full zero value means "use defaults".
func TestBaselineHFXOptionsRespected(t *testing.T) {
	res, err := Run(chem.Water(), Config{HFX: hfx.BaselineOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("baseline SCF did not converge")
	}
	// The baseline has Vector off, so the report must show zero lane
	// utilisation; the production defaults would report > 0.
	if res.HFXReport.LaneUtilization != 0 {
		t.Fatalf("baseline options were replaced by defaults: lane utilisation %g",
			res.HFXReport.LaneUtilization)
	}
	// And the zero value must still mean "fill in the defaults".
	var cfg Config
	cfg.fillDefaults()
	if cfg.HFX != hfx.DefaultOptions() {
		t.Fatalf("zero HFX config not defaulted: %+v", cfg.HFX)
	}
}

func TestLevelShiftStillConverges(t *testing.T) {
	res, err := Run(chem.Water(), Config{LevelShift: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("level-shifted SCF did not converge")
	}
	if math.Abs(res.Energy-(-74.963)) > 5e-3 {
		t.Fatalf("level-shifted energy %.6f drifted", res.Energy)
	}
}

func TestIncrementalFockMatchesDirect(t *testing.T) {
	direct, err := Run(chem.Water(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	incr, err := Run(chem.Water(), Config{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if !incr.Converged {
		t.Fatal("incremental SCF did not converge")
	}
	if math.Abs(direct.Energy-incr.Energy) > 1e-6 {
		t.Fatalf("incremental %f vs direct %f", incr.Energy, direct.Energy)
	}
}

func TestSemiDirectSCFMatchesDirect(t *testing.T) {
	// Semi-direct builds (hfx.Options.CacheBudgetBytes) replay cached ERI
	// blocks instead of re-evaluating them; the SCF trajectory must be
	// unchanged to machine precision, with and without Incremental.
	cached := hfx.DefaultOptions()
	cached.CacheBudgetBytes = 64 << 20
	for _, inc := range []bool{false, true} {
		direct, err := Run(chem.Water(), Config{Incremental: inc})
		if err != nil {
			t.Fatal(err)
		}
		semi, err := Run(chem.Water(), Config{Incremental: inc, HFX: cached})
		if err != nil {
			t.Fatal(err)
		}
		if !semi.Converged {
			t.Fatalf("inc=%v: semi-direct SCF did not converge", inc)
		}
		if d := math.Abs(direct.Energy - semi.Energy); d > 1e-12 {
			t.Fatalf("inc=%v: semi-direct energy differs by %g", inc, d)
		}
		if semi.Iterations != direct.Iterations {
			t.Fatalf("inc=%v: iteration count diverged: %d vs %d",
				inc, semi.Iterations, direct.Iterations)
		}
		rep := semi.HFXReport
		if !rep.Cache.Enabled {
			t.Fatalf("inc=%v: cache not enabled in final report", inc)
		}
		// The final incremental iteration may screen away every quartet
		// (ΔP→0), so check the lifetime hit counter, not the last build's.
		if rep.Metrics.Counter("ericache.hits").Value() == 0 {
			t.Fatalf("inc=%v: SCF never replayed from the cache", inc)
		}
	}
}

func TestIncrementalScreensMoreAsSCFConverges(t *testing.T) {
	// The whole point of ΔP builds: the density-weighted screen discards
	// more quartets in later iterations because ΔP shrinks.
	var first, last int64
	seen := 0
	_, err := Run(chem.WaterCluster(2, 3), Config{
		Incremental: true,
		OnIteration: func(iter int, e, d float64) { seen = iter },
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = seen
	// Re-run capturing per-iteration screening via the report: the last
	// iteration of a converged incremental run must screen at least as
	// many quartets as a from-scratch build of the same system.
	resD, err := Run(chem.WaterCluster(2, 3), Config{})
	if err != nil {
		t.Fatal(err)
	}
	resI, err := Run(chem.WaterCluster(2, 3), Config{Incremental: true, RebuildEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	first = resD.HFXReport.QuartetsScreened
	last = resI.HFXReport.QuartetsScreened
	if last < first {
		t.Fatalf("incremental final build screened %d < direct %d", last, first)
	}
	if math.Abs(resD.Energy-resI.Energy) > 1e-5 {
		t.Fatalf("energy drift: direct %f vs incremental %f", resD.Energy, resI.Energy)
	}
}

func BenchmarkSCFWaterHF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(chem.Water(), Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWater631GAnchors(t *testing.T) {
	// Literature RHF values at the experimental geometry:
	// 6-31G ≈ −75.985 Eh; 6-31G* ≈ −76.011 Eh (d functions included).
	res, err := Run(chem.Water(), Config{Basis: "6-31G"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("6-31G water did not converge")
	}
	if math.Abs(res.Energy-(-75.985)) > 1e-2 {
		t.Fatalf("6-31G water %.6f want about -75.985", res.Energy)
	}
	resD, err := Run(chem.Water(), Config{Basis: "6-31G*"})
	if err != nil {
		t.Fatal(err)
	}
	if !resD.Converged {
		t.Fatal("6-31G* water did not converge")
	}
	if math.Abs(resD.Energy-(-76.011)) > 1.5e-2 {
		t.Fatalf("6-31G* water %.6f want about -76.011", resD.Energy)
	}
	// Variational ordering: bigger basis, lower energy.
	if !(resD.Energy < res.Energy) {
		t.Fatalf("6-31G* %.6f not below 6-31G %.6f", resD.Energy, res.Energy)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, chem.Water(), Config{})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("partial result must still be returned on cancellation")
	}
	if res.Converged || res.Iterations != 0 {
		t.Fatalf("pre-cancelled run must not iterate: converged=%v iters=%d",
			res.Converged, res.Iterations)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		OnIteration: func(iter int, energy, diisErr float64) {
			if iter == 2 {
				cancel()
			}
		},
	}
	res, err := RunContext(ctx, chem.Water(), cfg)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Iterations != 2 {
		t.Fatalf("cancellation is checked once per iteration: stopped after %d, want 2", res.Iterations)
	}
	if res.Converged {
		t.Fatal("cancelled run must not report convergence")
	}
}

func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := RunContext(ctx, chem.Water(), Config{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestRunContextUHF(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Ctx: ctx}
	res, err := RunUnrestricted(chem.Water(), cfg, 1)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from UHF, got %v", err)
	}
	if res == nil || res.Iterations != 0 {
		t.Fatal("UHF must stop before the first iteration when pre-cancelled")
	}
}

// TestInitialDensityGuess pins the prefix-reuse path: restarting water
// from its own converged density must converge to the same energy in
// fewer iterations than the SAD cold start, and a wrong-sized initial
// density must be rejected before any iteration runs.
func TestInitialDensityGuess(t *testing.T) {
	mol := chem.Water()
	cold, err := Run(mol, Config{})
	if err != nil || !cold.Converged {
		t.Fatalf("cold run: %v (converged=%v)", err, cold != nil && cold.Converged)
	}
	warm, err := Run(mol, Config{InitialDensity: cold.P, Incremental: true})
	if err != nil || !warm.Converged {
		t.Fatalf("warm run: %v", err)
	}
	if math.Abs(warm.Energy-cold.Energy) > 1e-8 {
		t.Fatalf("warm energy %.10f, cold %.10f", warm.Energy, cold.Energy)
	}
	if warm.Iterations >= cold.Iterations {
		t.Fatalf("converged-density restart took %d iterations, cold start %d",
			warm.Iterations, cold.Iterations)
	}
	// The stored matrix must be cloned, not aliased, so the caller's copy
	// survives the run untouched.
	before := cold.P.Clone()
	if _, err := Run(mol, Config{InitialDensity: cold.P, MaxIter: 2, EnergyTol: 1e-14, CommutatorTol: 1e-14}); err != nil {
		t.Fatal(err)
	}
	if diff := linalg.MaxAbsDiff(before, cold.P); diff != 0 {
		t.Fatalf("InitialDensity was mutated by the run (diff %g)", diff)
	}

	bad := linalg.NewSquare(3)
	if _, err := Run(mol, Config{InitialDensity: bad}); err == nil {
		t.Fatal("dimension-mismatched initial density must be rejected")
	}
}
