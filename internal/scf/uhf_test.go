package scf

import (
	"math"
	"testing"

	"hfxmd/internal/chem"
	"hfxmd/internal/dft"
	"hfxmd/internal/integrals"
)

func TestUHFHydrogenAtom(t *testing.T) {
	mol := &chem.Molecule{Name: "H", Atoms: []chem.Atom{{El: chem.H}}}
	res, err := RunUnrestricted(mol, Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("H atom UHF did not converge")
	}
	// STO-3G hydrogen atom: E = −0.46658 Eh (basis-limited; exact −0.5).
	if math.Abs(res.Energy-(-0.46658)) > 1e-4 {
		t.Fatalf("E(H) = %.6f want -0.46658", res.Energy)
	}
	if res.NAlpha != 1 || res.NBeta != 0 {
		t.Fatalf("occupations %d/%d", res.NAlpha, res.NBeta)
	}
	// A one-electron system is contamination-free: ⟨S²⟩ = 0.75 exactly.
	if math.Abs(res.S2-0.75) > 1e-8 {
		t.Fatalf("S² = %g want 0.75", res.S2)
	}
}

func TestUHFLithiumAtom(t *testing.T) {
	mol := &chem.Molecule{Name: "Li", Atoms: []chem.Atom{{El: chem.Li}}}
	res, err := RunUnrestricted(mol, Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("Li UHF did not converge")
	}
	// ROHF/STO-3G lithium ≈ −7.3155 Eh; UHF is equal or slightly below.
	if math.Abs(res.Energy-(-7.3155)) > 5e-3 {
		t.Fatalf("E(Li) = %.6f want about -7.3155", res.Energy)
	}
	if res.S2 < res.S2Exact()-1e-8 {
		t.Fatalf("S² = %g below exact %g", res.S2, res.S2Exact())
	}
}

func TestUHFMatchesRHFForClosedShell(t *testing.T) {
	rhf, err := Run(chem.Water(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	uhf, err := RunUnrestricted(chem.Water(), Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !uhf.Converged {
		t.Fatal("UHF water did not converge")
	}
	if math.Abs(uhf.Energy-rhf.Energy) > 1e-6 {
		t.Fatalf("UHF %f vs RHF %f", uhf.Energy, rhf.Energy)
	}
	// Singlet: S² = 0.
	if math.Abs(uhf.S2) > 1e-6 {
		t.Fatalf("singlet S² = %g", uhf.S2)
	}
	// tr(Pσ S) per spin channel.
	if d := linTraceTimesOverlap(uhf, t); math.Abs(d-10) > 1e-6 {
		t.Fatalf("tr(Pt·S) = %g", d)
	}
}

func linTraceTimesOverlap(res *UnrestrictedResult, t *testing.T) float64 {
	t.Helper()
	s := integrals.NewEngine(res.Set).Overlap()
	var tr float64
	for i := 0; i < s.Rows; i++ {
		for k := 0; k < s.Rows; k++ {
			tr += res.PTotal.At(i, k) * s.At(k, i)
		}
	}
	return tr
}

func TestUHFSuperoxideAnionDoublet(t *testing.T) {
	// O2⁻ — the Li/air discharge intermediate. 17 electrons, doublet.
	o2 := &chem.Molecule{
		Name:   "O2-",
		Charge: -1,
		Atoms: []chem.Atom{
			{El: chem.O, Pos: chem.Vec3{0, 0, 0}},
			{El: chem.O, Pos: chem.Vec3{0, 0, 2.55}}, // ~1.35 Å superoxide bond
		},
	}
	res, err := RunUnrestricted(o2, Config{Damping: 0.4, DampIters: 6, LevelShift: 0.2, MaxIter: 200}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("O2- did not converge (E=%.6f after %d iters)", res.Energy, res.Iterations)
	}
	if res.NAlpha-res.NBeta != 1 {
		t.Fatalf("occupations %d/%d", res.NAlpha, res.NBeta)
	}
	if res.Energy > -140 || res.Energy < -160 {
		t.Fatalf("O2- energy %.4f out of plausible STO-3G window", res.Energy)
	}
	// Doublet: S² ≥ 0.75 (UHF contamination can only raise it).
	if res.S2 < 0.75-1e-6 {
		t.Fatalf("S² = %g below 0.75", res.S2)
	}
}

func TestUHFValidation(t *testing.T) {
	if _, err := RunUnrestricted(chem.Water(), Config{Functional: dft.PBE{}}, 1); err == nil {
		t.Fatal("expected error for semilocal functional")
	}
	if _, err := RunUnrestricted(chem.Water(), Config{}, 2); err == nil {
		t.Fatal("expected error for inconsistent multiplicity")
	}
	if _, err := RunUnrestricted(chem.Water(), Config{Basis: "NOPE"}, 1); err == nil {
		t.Fatal("expected basis error")
	}
	empty := &chem.Molecule{}
	if _, err := RunUnrestricted(empty, Config{}, 1); err == nil {
		t.Fatal("expected electron-count error")
	}
}

func TestUHFDefaultMultiplicity(t *testing.T) {
	mol := &chem.Molecule{Name: "H", Atoms: []chem.Atom{{El: chem.H}}}
	res, err := RunUnrestricted(mol, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NAlpha != 1 || res.NBeta != 0 {
		t.Fatalf("auto multiplicity picked %d/%d", res.NAlpha, res.NBeta)
	}
}
