package scf

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"hfxmd/internal/chem"
)

// DensityPrefixKey fingerprints the part of a calculation that a stored
// converged density can seed: the model chemistry (basis, functional,
// screening threshold, density weighting) plus the system's charge and
// element composition. Atomic positions are deliberately excluded —
// geometries that differ only in coordinates (solvent-scan points, MD
// steps) share the key, which is exactly the partial-hit prefix reuse
// the tiered store exploits: the stored density of a neighbouring
// geometry becomes Config.InitialDensity for the next one.
//
// Sharing the key guarantees matching basis dimensions (same elements,
// same basis set ⇒ same NBasis), so a decoded density always fits.
func DensityPrefixKey(cfg Config, mol *chem.Molecule) string {
	cfg.fillDefaults()
	h := sha256.New()
	fmt.Fprintf(h, "basis=%s;func=%s;screen=%g;dw=%v;charge=%d;",
		cfg.Basis, cfg.Functional.Name(), cfg.Screen.Threshold,
		cfg.HFX.DensityWeighted, mol.Charge)
	counts := map[chem.Element]int{}
	for _, a := range mol.Atoms {
		counts[a.El]++
	}
	els := make([]int, 0, len(counts))
	for el := range counts {
		els = append(els, int(el))
	}
	sort.Ints(els)
	for _, el := range els {
		fmt.Fprintf(h, "%d:%d;", el, counts[chem.Element(el)])
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}
