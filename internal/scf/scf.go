// Package scf drives restricted Hartree–Fock and Kohn–Sham self-consistent
// field calculations on top of the integral engine, the task-parallel HFX
// builder and the DFT grid machinery. It supports the functionals HF, LDA,
// PBE and — the paper's production method — the PBE0 hybrid, whose exact-
// exchange part is exactly the quantity the paper's parallelization scheme
// accelerates.
//
// Convergence is accelerated with Pulay DIIS on the orthonormalised
// commutator FPS−SPF, with an optional level shift for difficult cases.
package scf

import (
	"context"
	"errors"
	"fmt"
	"math"

	"hfxmd/internal/basis"
	"hfxmd/internal/chem"
	"hfxmd/internal/dft"
	"hfxmd/internal/hfx"
	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
	"hfxmd/internal/screen"
)

// Config selects the model chemistry and the solver parameters.
type Config struct {
	// Basis names a built-in basis set (default "STO-3G").
	Basis string
	// Functional is one of dft.HF, dft.LDA, dft.PBE, dft.PBE0
	// (default HF).
	Functional dft.Functional
	// Screen configures integral screening (default screen.DefaultOptions).
	Screen screen.Options
	// HFX configures the exchange builder (default hfx.DefaultOptions).
	HFX hfx.Options
	// Grid configures the XC grid for DFT functionals.
	Grid dft.GridSpec
	// MaxIter bounds the SCF iterations (default 100).
	MaxIter int
	// EnergyTol is the energy-change convergence criterion (default 1e-8).
	EnergyTol float64
	// CommutatorTol is the DIIS-error convergence criterion (default 1e-6).
	CommutatorTol float64
	// DIISDepth is the maximum number of stored Fock matrices (default 8).
	DIISDepth int
	// LevelShift adds a virtual-orbital shift (hartree) for robustness.
	LevelShift float64
	// Damping mixes the new density with the old one during the first
	// DampIters iterations: P ← (1−Damping)·P_new + Damping·P_old.
	// Stabilises difficult core-guess starts (0 disables).
	Damping   float64
	DampIters int
	// OnIteration, if set, is called after every SCF cycle with the
	// iteration number, current energy and DIIS error norm.
	OnIteration func(iter int, energy, diisErr float64)
	// Guess selects the starting density: "sad" (superposition of atomic
	// densities, the default) or "core" (diagonalised core Hamiltonian).
	Guess string
	// InitialDensity, when non-nil, overrides Guess with an explicit
	// starting density (row-major n×n, matching the built basis). This is
	// the prefix-reuse path: a converged density stored for a related
	// geometry (a neighbouring scan point or MD step) restarts SCF close
	// to the solution, typically pairing with Incremental so the first
	// rebuilt ΔP is already small. The matrix is cloned, not aliased.
	InitialDensity *linalg.Matrix
	// Incremental enables difference-density Fock builds: after the first
	// iteration J and K are updated with ΔP = P − P_prev instead of being
	// rebuilt from scratch. Combined with density-weighted screening this
	// is the standard acceleration for MD, where ΔP shrinks every step;
	// a full rebuild every RebuildEvery iterations (default 8) bounds
	// accumulation error.
	Incremental  bool
	RebuildEvery int
	// Ctx, if non-nil, is polled once per SCF iteration; when it is
	// cancelled (deadline exceeded, client disconnect, server drain)
	// the driver stops between iterations and returns the context error
	// alongside the partial result, so a hung or abandoned job cannot
	// pin a server worker forever. Nil preserves the pre-context
	// behaviour. RunContext is the convenience wrapper that sets it.
	Ctx context.Context
	// Screening, when non-nil, injects a prebuilt pair list instead of
	// screening here — the cross-step reuse path for MD, where the shell
	// structure (and hence every pair index) is geometry-independent for
	// a fixed composition and basis. The Schwarz bounds inside are then
	// *stale* relative to the current geometry; the caller owns keeping
	// the staleness bounded (see md.Session's max-displacement guard).
	// Integrals themselves are always evaluated at the current geometry.
	Screening *screen.Result
	// ExternalBuilder, when non-nil, performs the Fock builds instead of
	// a builder constructed (and closed) per Run. The caller owns its
	// lifecycle and must have rebound it to this geometry
	// (hfx.Builder.Rebind) — across consecutive MD steps this preserves
	// the worker pool, the task schedule and the semi-direct cache
	// layout, so the new step's first build refills exactly the admitted
	// ERI blocks of the previous one. Implies Screening (the builder's
	// pair list is used).
	ExternalBuilder *hfx.Builder
}

func (c *Config) fillDefaults() {
	if c.Basis == "" {
		c.Basis = "STO-3G"
	}
	if c.Functional == nil {
		c.Functional = dft.HF{}
	}
	if c.Screen == (screen.Options{}) {
		c.Screen = screen.DefaultOptions()
	}
	if c.MaxIter == 0 {
		c.MaxIter = 100
	}
	if c.EnergyTol == 0 {
		c.EnergyTol = 1e-8
	}
	if c.CommutatorTol == 0 {
		c.CommutatorTol = 1e-6
	}
	if c.DIISDepth == 0 {
		c.DIISDepth = 8
	}
	if c.Guess == "" {
		c.Guess = "sad"
	}
	if c.RebuildEvery == 0 {
		c.RebuildEvery = 8
	}
	// Only a fully zero HFX config means "unset". Comparing individual
	// fields here used to misfire: hfx.BaselineOptions() has Balancer ==
	// sched.Block (0), Threads == 0 and DensityWeighted == false, so an
	// explicitly requested baseline was silently replaced by the
	// production defaults.
	if c.HFX == (hfx.Options{}) {
		c.HFX = hfx.DefaultOptions()
	}
}

// Result carries the converged state and energy decomposition.
type Result struct {
	// Energy is the total energy in hartree.
	Energy float64
	// EOne, ECoulomb, EExchangeHF, EXC, ENuclear decompose it.
	EOne, ECoulomb, EExchangeHF, EXC, ENuclear float64
	// Converged reports whether both criteria were met within MaxIter.
	Converged bool
	// Iterations actually performed.
	Iterations int
	// OrbitalEnergies in hartree, ascending.
	OrbitalEnergies []float64
	// NOcc is the number of doubly occupied orbitals.
	NOcc int
	// C are the MO coefficients (columns), P the final density.
	C, P *linalg.Matrix
	// HFXReport is the exchange builder's report from the last iteration.
	HFXReport hfx.Report
	// GridElectrons is the grid-integrated electron count (DFT only).
	GridElectrons float64
	// Set is the instantiated basis.
	Set *basis.Set
}

// HOMO returns the highest occupied orbital energy.
func (r *Result) HOMO() float64 {
	if r.NOcc == 0 {
		return math.NaN()
	}
	return r.OrbitalEnergies[r.NOcc-1]
}

// LUMO returns the lowest unoccupied orbital energy (NaN if none).
func (r *Result) LUMO() float64 {
	if r.NOcc >= len(r.OrbitalEnergies) {
		return math.NaN()
	}
	return r.OrbitalEnergies[r.NOcc]
}

// Gap returns the HOMO-LUMO gap.
func (r *Result) Gap() float64 { return r.LUMO() - r.HOMO() }

// RunContext performs the SCF under an explicit cancellation context: a
// wrapper over Run that sets cfg.Ctx so existing call sites keep the old
// two-argument signature. Cancellation is checked once per iteration; on
// cancellation the partial (unconverged) result is returned together
// with an error wrapping ctx.Err().
func RunContext(ctx context.Context, mol *chem.Molecule, cfg Config) (*Result, error) {
	cfg.Ctx = ctx
	return Run(mol, cfg)
}

// Run performs the SCF for the molecule under the given configuration.
func Run(mol *chem.Molecule, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	ne := mol.NElectrons()
	if ne <= 0 {
		return nil, fmt.Errorf("scf: molecule has %d electrons", ne)
	}
	if ne%2 != 0 {
		return nil, errors.New("scf: restricted SCF requires an even electron count")
	}
	nocc := ne / 2

	set, err := basis.Build(cfg.Basis, mol)
	if err != nil {
		return nil, err
	}
	eng := integrals.NewEngine(set)
	s := eng.Overlap()
	h := eng.CoreHamiltonian()
	x := linalg.LowdinOrthogonalizer(s, 1e-9)
	if x.Cols < nocc {
		return nil, fmt.Errorf("scf: basis too linearly dependent: %d independent functions for %d occupied orbitals", x.Cols, nocc)
	}

	builder := cfg.ExternalBuilder
	if builder != nil {
		if nb := builder.NBasis(); nb != set.NBasis {
			return nil, fmt.Errorf("scf: external builder is bound to %d basis functions, geometry needs %d", nb, set.NBasis)
		}
	} else {
		scr := cfg.Screening
		if scr == nil {
			scr = screen.BuildPairList(eng, cfg.Screen)
		}
		builder = hfx.NewBuilder(eng, scr, cfg.HFX)
		defer builder.Close()
	}

	var grid *dft.Grid
	if cfg.Functional.NeedsGrid() {
		grid = dft.BuildGrid(mol, cfg.Grid)
	}

	res := &Result{Set: set, NOcc: nocc, ENuclear: mol.NuclearRepulsion()}
	n := set.NBasis
	p := linalg.NewSquare(n)
	diis := newDIIS(cfg.DIISDepth)

	var c *linalg.Matrix
	var eps []float64
	switch {
	case cfg.InitialDensity != nil:
		if cfg.InitialDensity.Rows != n || cfg.InitialDensity.Cols != n {
			return nil, fmt.Errorf("scf: initial density is %dx%d, basis needs %dx%d",
				cfg.InitialDensity.Rows, cfg.InitialDensity.Cols, n, n)
		}
		p.CopyFrom(cfg.InitialDensity)
	case cfg.Guess == "core":
		c, eps = solveFock(h, x)
		buildDensity(p, c, nocc)
	case cfg.Guess == "sad":
		sadGuess(set, p)
	default:
		return nil, fmt.Errorf("scf: unknown guess %q (want sad or core)", cfg.Guess)
	}

	var lastE float64
	aX := cfg.Functional.ExactExchangeFraction()
	// Incremental-build state: accumulated J/K and the density they
	// correspond to.
	var jAcc, kAcc, pPrev *linalg.Matrix
	for iter := 1; iter <= cfg.MaxIter; iter++ {
		if cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				return res, fmt.Errorf("scf: cancelled before iteration %d: %w", iter, err)
			}
		}
		var j, k *linalg.Matrix
		var rep hfx.Report
		if cfg.Incremental && jAcc != nil && (iter-1)%cfg.RebuildEvery != 0 {
			dp := p.Clone()
			dp.AXPY(-1, pPrev)
			dj, dk, drep := builder.BuildJK(dp)
			jAcc.AXPY(1, dj)
			kAcc.AXPY(1, dk)
			pPrev.CopyFrom(p)
			j, k, rep = jAcc, kAcc, drep
		} else {
			j, k, rep = builder.BuildJK(p)
			if cfg.Incremental {
				jAcc, kAcc = j.Clone(), k.Clone()
				pPrev = p.Clone()
				j, k = jAcc, kAcc
			}
		}
		res.HFXReport = rep

		f := h.Clone()
		f.AXPY(1, j)
		if aX != 0 {
			f.AXPY(-0.5*aX, k)
		}
		var exc float64
		if grid != nil {
			xc := dft.Integrate(cfg.Functional, set, grid, p)
			f.AXPY(1, xc.V)
			exc = xc.Energy
			res.GridElectrons = xc.NElec
		}

		e1 := linalg.TraceMul(p, h)
		ej := 0.5 * linalg.TraceMul(p, j)
		ek := 0.0
		if aX != 0 {
			ek = -0.25 * aX * linalg.TraceMul(p, k)
		}
		energy := e1 + ej + ek + exc + res.ENuclear

		// DIIS extrapolation on the orthonormalised commutator.
		errMat := commutator(f, p, s, x)
		f = diis.extrapolate(f, errMat)
		errNorm := errMat.FrobeniusNorm()

		if cfg.LevelShift != 0 {
			f = levelShift(f, s, p, cfg.LevelShift, nocc)
		}

		c, eps = solveFock(f, x)
		if cfg.Damping > 0 && iter <= cfg.DampIters {
			pOld := p.Clone()
			buildDensity(p, c, nocc)
			p.Scale(1-cfg.Damping).AXPY(cfg.Damping, pOld)
		} else {
			buildDensity(p, c, nocc)
		}

		if cfg.OnIteration != nil {
			cfg.OnIteration(iter, energy, errNorm)
		}
		res.Iterations = iter
		res.Energy = energy
		res.EOne, res.ECoulomb, res.EExchangeHF, res.EXC = e1, ej, ek, exc
		res.OrbitalEnergies = eps
		res.C = c
		res.P = p.Clone()

		if iter > 1 && math.Abs(energy-lastE) < cfg.EnergyTol && errNorm < cfg.CommutatorTol {
			res.Converged = true
			break
		}
		lastE = energy
	}
	return res, nil
}

// sadGuess fills p with a superposition of (spherically averaged) neutral
// atomic densities: each atom's shells are aufbau-filled in basis order
// with up to 2 electrons per s shell and 6 per p shell, spread evenly
// over the Cartesian components. The resulting diagonal density carries
// the right electron count per atom and starts the SCF far closer to the
// solution than the core guess for polyatomics.
func sadGuess(set *basis.Set, p *linalg.Matrix) {
	p.Zero()
	remaining := make(map[int]float64, set.Mol.NAtoms())
	for ai, atom := range set.Mol.Atoms {
		remaining[ai] = float64(atom.El)
	}
	for si := range set.Shells {
		sh := &set.Shells[si]
		rem := remaining[sh.Atom]
		if rem <= 0 {
			continue
		}
		cap := 2.0
		if sh.L == 1 {
			cap = 6
		}
		take := math.Min(rem, cap)
		remaining[sh.Atom] = rem - take
		per := take / float64(sh.NFuncs())
		for f := sh.Index; f < sh.Index+sh.NFuncs(); f++ {
			p.Set(f, f, per)
		}
	}
}

// SADDensity returns the superposition-of-atomic-densities guess for a
// basis set as a fresh matrix — the density the hfxd single-build
// (buildjk) jobs contract against without running a full SCF.
func SADDensity(set *basis.Set) *linalg.Matrix {
	p := linalg.NewSquare(set.NBasis)
	sadGuess(set, p)
	return p
}

// solveFock diagonalises F in the orthonormal basis X and back-transforms
// the coefficients: F' = XᵀFX, F'C' = C'ε, C = XC'.
func solveFock(f, x *linalg.Matrix) (*linalg.Matrix, []float64) {
	fp := linalg.Mul(x.T(), linalg.Mul(f, x))
	fp.Symmetrize()
	eps, cp := linalg.EigenSym(fp)
	return linalg.Mul(x, cp), eps
}

// buildDensity overwrites p with 2·C_occ·C_occᵀ.
func buildDensity(p, c *linalg.Matrix, nocc int) {
	n := p.Rows
	for i := 0; i < n; i++ {
		ci := c.Row(i)[:nocc]
		row := p.Row(i)
		for j := 0; j < n; j++ {
			cj := c.Row(j)[:nocc]
			var v float64
			for o := 0; o < nocc; o++ {
				v += ci[o] * cj[o]
			}
			row[j] = 2 * v
		}
	}
}

// commutator returns Xᵀ(FPS−SPF)X, the DIIS error vector.
func commutator(f, p, s, x *linalg.Matrix) *linalg.Matrix {
	fps := linalg.Mul(f, linalg.Mul(p, s))
	spf := linalg.Mul(s, linalg.Mul(p, f))
	fps.AXPY(-1, spf)
	return linalg.Mul(x.T(), linalg.Mul(fps, x))
}

// levelShift raises the virtual-orbital energies by adding
// shift·(S − S·P·S/2) — the standard density-based projector shift.
func levelShift(f, s, p *linalg.Matrix, shift float64, nocc int) *linalg.Matrix {
	sps := linalg.Mul(s, linalg.Mul(p, s))
	out := f.Clone()
	out.AXPY(shift, s)
	out.AXPY(-shift/2, sps)
	return out
}

// MullikenCharges returns per-atom Mulliken partial charges.
func MullikenCharges(res *Result, eng *integrals.Engine) []float64 {
	set := res.Set
	s := eng.Overlap()
	ps := linalg.Mul(res.P, s)
	q := make([]float64, set.Mol.NAtoms())
	for ai := range q {
		q[ai] = float64(set.Mol.Atoms[ai].El)
	}
	for si := range set.Shells {
		sh := &set.Shells[si]
		for fi := sh.Index; fi < sh.Index+sh.NFuncs(); fi++ {
			q[sh.Atom] -= ps.At(fi, fi)
		}
	}
	return q
}

// Dipole returns the molecular dipole moment vector in atomic units.
func Dipole(res *Result, eng *integrals.Engine) [3]float64 {
	mol := res.Set.Mol
	var mu [3]float64
	for _, a := range mol.Atoms {
		for k := 0; k < 3; k++ {
			mu[k] += float64(a.El) * a.Pos[k]
		}
	}
	d := eng.Dipole([3]float64{0, 0, 0})
	for k := 0; k < 3; k++ {
		mu[k] -= linalg.TraceMul(res.P, d[k])
	}
	return mu
}
