package scf

import (
	"errors"
	"fmt"
	"math"

	"hfxmd/internal/basis"
	"hfxmd/internal/chem"
	"hfxmd/internal/hfx"
	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
	"hfxmd/internal/screen"
)

// UnrestrictedResult carries a converged UHF state. The Li/air chemistry
// of the reproduced paper involves open-shell species (superoxide O2⁻,
// lithium superoxide LiO2, solvent radicals from the degradation
// pathway), so the SCF layer supports spin-unrestricted Hartree–Fock in
// addition to the restricted driver.
type UnrestrictedResult struct {
	// Energy is the total UHF energy in hartree.
	Energy float64
	// EOne, ECoulomb, EExchange, ENuclear decompose it.
	EOne, ECoulomb, EExchange, ENuclear float64
	// Converged reports convergence within MaxIter.
	Converged bool
	// Iterations actually performed.
	Iterations int
	// NAlpha, NBeta are the spin-channel occupations.
	NAlpha, NBeta int
	// EpsAlpha, EpsBeta are the orbital energies per spin.
	EpsAlpha, EpsBeta []float64
	// PAlpha, PBeta are the spin densities; PTotal their sum.
	PAlpha, PBeta, PTotal *linalg.Matrix
	// S2 is the ⟨S²⟩ expectation value (spin-contamination diagnostic);
	// the exact value is S(S+1) with S = (Nα−Nβ)/2.
	S2 float64
	// Set is the instantiated basis.
	Set *basis.Set
}

// S2Exact returns the contamination-free S(S+1) for the spin state.
func (r *UnrestrictedResult) S2Exact() float64 {
	s := 0.5 * float64(r.NAlpha-r.NBeta)
	return s * (s + 1)
}

// RunUnrestricted performs a spin-unrestricted Hartree–Fock calculation.
// Multiplicity is 2S+1 (0 means the lowest consistent with the electron
// count: 1 for even, 2 for odd). Only the HF functional is supported —
// spin-polarised semilocal functionals are outside this reproduction's
// scope and return an error.
func RunUnrestricted(mol *chem.Molecule, cfg Config, multiplicity int) (*UnrestrictedResult, error) {
	cfg.fillDefaults()
	if cfg.Functional.NeedsGrid() {
		return nil, errors.New("scf: unrestricted SCF supports the HF functional only")
	}
	ne := mol.NElectrons()
	if ne <= 0 {
		return nil, fmt.Errorf("scf: molecule has %d electrons", ne)
	}
	if multiplicity == 0 {
		multiplicity = 1 + ne%2
	}
	nUnpaired := multiplicity - 1
	if nUnpaired < 0 || (ne-nUnpaired)%2 != 0 || nUnpaired > ne {
		return nil, fmt.Errorf("scf: multiplicity %d inconsistent with %d electrons", multiplicity, ne)
	}
	nb := (ne - nUnpaired) / 2
	na := nb + nUnpaired

	set, err := basis.Build(cfg.Basis, mol)
	if err != nil {
		return nil, err
	}
	eng := integrals.NewEngine(set)
	s := eng.Overlap()
	h := eng.CoreHamiltonian()
	x := linalg.LowdinOrthogonalizer(s, 1e-9)
	if x.Cols < na {
		return nil, fmt.Errorf("scf: basis too small: %d functions for %d alpha electrons", x.Cols, na)
	}

	scr := screen.BuildPairList(eng, cfg.Screen)
	builder := hfx.NewBuilder(eng, scr, cfg.HFX)
	defer builder.Close()

	res := &UnrestrictedResult{
		Set: set, NAlpha: na, NBeta: nb,
		ENuclear: mol.NuclearRepulsion(),
	}
	n := set.NBasis
	pa := linalg.NewSquare(n)
	pb := linalg.NewSquare(n)
	// SAD guess split by spin fraction.
	sadGuess(set, pa)
	pb.CopyFrom(pa)
	pa.Scale(float64(na) / float64(ne))
	pb.Scale(float64(nb) / float64(ne))

	diisA := newDIIS(cfg.DIISDepth)
	diisB := newDIIS(cfg.DIISDepth)
	var ca, cb *linalg.Matrix
	var lastE float64
	// BuildJK returns matrices aliasing the builder's pooled buffers, so
	// the alpha-channel result must be copied out before the beta build
	// overwrites it.
	ja := linalg.NewSquare(n)
	ka := linalg.NewSquare(n)
	for iter := 1; iter <= cfg.MaxIter; iter++ {
		if cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				return res, fmt.Errorf("scf: cancelled before iteration %d: %w", iter, err)
			}
		}
		// J and K are linear in the density: two builds give everything.
		jaP, kaP, _ := builder.BuildJK(pa)
		ja.CopyFrom(jaP)
		ka.CopyFrom(kaP)
		jb, kb, _ := builder.BuildJK(pb)
		jt := ja.Clone()
		jt.AXPY(1, jb)

		fa := h.Clone()
		fa.AXPY(1, jt)
		fa.AXPY(-1, ka)
		fb := h.Clone()
		fb.AXPY(1, jt)
		fb.AXPY(-1, kb)

		pt := pa.Clone()
		pt.AXPY(1, pb)
		e1 := linalg.TraceMul(pt, h)
		ej := 0.5 * linalg.TraceMul(pt, jt)
		ek := -0.5 * (linalg.TraceMul(pa, ka) + linalg.TraceMul(pb, kb))
		energy := e1 + ej + ek + res.ENuclear

		errA := commutator(fa, pa, s, x)
		errB := commutator(fb, pb, s, x)
		fa = diisA.extrapolate(fa, errA)
		fb = diisB.extrapolate(fb, errB)
		errNorm := math.Hypot(errA.FrobeniusNorm(), errB.FrobeniusNorm())

		if cfg.LevelShift != 0 {
			fa = levelShift(fa, s, pa, cfg.LevelShift, na)
			fb = levelShift(fb, s, pb, cfg.LevelShift, nb)
		}

		var epsA, epsB []float64
		ca, epsA = solveFock(fa, x)
		cb, epsB = solveFock(fb, x)
		updateSpinDensity(pa, ca, na, cfg, iter)
		updateSpinDensity(pb, cb, nb, cfg, iter)

		if cfg.OnIteration != nil {
			cfg.OnIteration(iter, energy, errNorm)
		}
		res.Iterations = iter
		res.Energy = energy
		res.EOne, res.ECoulomb, res.EExchange = e1, ej, ek
		res.EpsAlpha, res.EpsBeta = epsA, epsB

		if iter > 1 && math.Abs(energy-lastE) < cfg.EnergyTol && errNorm < cfg.CommutatorTol {
			res.Converged = true
			break
		}
		lastE = energy
	}
	res.PAlpha = pa.Clone()
	res.PBeta = pb.Clone()
	res.PTotal = pa.Clone()
	res.PTotal.AXPY(1, pb)
	res.S2 = spinSquared(ca, cb, s, na, nb)
	return res, nil
}

// updateSpinDensity builds P_σ = C_occ·C_occᵀ (note: no factor 2 for a
// spin channel), with optional early-iteration damping.
func updateSpinDensity(p, c *linalg.Matrix, nocc int, cfg Config, iter int) {
	build := func(dst *linalg.Matrix) {
		n := dst.Rows
		for i := 0; i < n; i++ {
			ci := c.Row(i)[:nocc]
			row := dst.Row(i)
			for j := 0; j < n; j++ {
				cj := c.Row(j)[:nocc]
				var v float64
				for o := 0; o < nocc; o++ {
					v += ci[o] * cj[o]
				}
				row[j] = v
			}
		}
	}
	if cfg.Damping > 0 && iter <= cfg.DampIters {
		old := p.Clone()
		build(p)
		p.Scale(1-cfg.Damping).AXPY(cfg.Damping, old)
	} else {
		build(p)
	}
}

// spinSquared evaluates ⟨S²⟩ = S_z(S_z+1) + N_β − Σ_{ij} |⟨φ_i^α|φ_j^β⟩|²
// over the occupied spin orbitals.
func spinSquared(ca, cb *linalg.Matrix, s *linalg.Matrix, na, nb int) float64 {
	if ca == nil || cb == nil {
		return 0
	}
	sz := 0.5 * float64(na-nb)
	val := sz*(sz+1) + float64(nb)
	// Overlap of occupied alpha with occupied beta orbitals: CαᵀSCβ.
	sc := linalg.Mul(ca.T(), linalg.Mul(s, cb))
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			o := sc.At(i, j)
			val -= o * o
		}
	}
	return val
}
