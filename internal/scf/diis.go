package scf

import "hfxmd/internal/linalg"

// diis implements Pulay's direct inversion in the iterative subspace:
// the next Fock matrix is the linear combination of stored Fock matrices
// whose associated error vectors combine to the minimum-norm residual,
// subject to Σc = 1.
type diis struct {
	depth int
	focks []*linalg.Matrix
	errs  []*linalg.Matrix
}

func newDIIS(depth int) *diis {
	if depth < 2 {
		depth = 2
	}
	return &diis{depth: depth}
}

// extrapolate stores the (F, err) pair and returns the DIIS-extrapolated
// Fock matrix; with fewer than two stored pairs it returns f unchanged.
func (d *diis) extrapolate(f, errMat *linalg.Matrix) *linalg.Matrix {
	d.focks = append(d.focks, f.Clone())
	d.errs = append(d.errs, errMat.Clone())
	if len(d.focks) > d.depth {
		d.focks = d.focks[1:]
		d.errs = d.errs[1:]
	}
	m := len(d.focks)
	if m < 2 {
		return f
	}
	// Build the augmented B system:
	//   [ B  -1 ] [c] = [0]
	//   [ -1  0 ] [λ]   [-1]
	b := linalg.NewSquare(m + 1)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			var dot float64
			for k, v := range d.errs[i].Data {
				dot += v * d.errs[j].Data[k]
			}
			b.Set(i, j, dot)
			b.Set(j, i, dot)
		}
		b.Set(i, m, -1)
		b.Set(m, i, -1)
	}
	rhs := linalg.NewMatrix(m+1, 1)
	rhs.Set(m, 0, -1)
	sol, err := linalg.SolveLinear(b, rhs)
	if err != nil {
		// Singular subspace: drop the oldest pair and fall back to f.
		d.focks = d.focks[1:]
		d.errs = d.errs[1:]
		return f
	}
	out := linalg.NewSquare(f.Rows)
	for i := 0; i < m; i++ {
		out.AXPY(sol.At(i, 0), d.focks[i])
	}
	return out
}
