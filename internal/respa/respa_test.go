package respa

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"hfxmd/internal/chem"
	"hfxmd/internal/ckpt"
	"hfxmd/internal/md"
)

// springEval is an analytic all-pairs harmonic surface with exact
// forces — the full (slow) surface of these tests, so the integrator is
// exercised without SCF and without finite-difference noise.
func springEval(k, r0 float64) Evaluator {
	return func(m *chem.Molecule) (float64, []chem.Vec3, error) {
		n := m.NAtoms()
		f := make([]chem.Vec3, n)
		var e float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := m.Atoms[j].Pos.Sub(m.Atoms[i].Pos)
				r := d.Norm()
				x := r - r0
				e += 0.5 * k * x * x
				// F_j = −k(r−r0)·d̂ (pulls the pair back to r0).
				for c := 0; c < 3; c++ {
					g := -k * x * d[c] / r
					f[j][c] += g
					f[i][c] -= g
				}
			}
		}
		return e, f, nil
	}
}

// springField is the forces-only form — the cheap reference, with a
// deliberately different spring constant so F_slow = F_full − F_cheap
// is non-zero and the slow kicks actually matter.
func springField(k, r0 float64) ForceField {
	eval := springEval(k, r0)
	return func(m *chem.Molecule) ([]chem.Vec3, error) {
		_, f, err := eval(m)
		return f, err
	}
}

func respaMol() *chem.Molecule { return chem.WaterCluster(2, 3) }

// respaOpts integrates the same total simulated time at every k: the
// inner timestep is fixed, outer steps shrink as k grows.
func respaOpts(totalInner, k int) Options {
	return Options{
		Steps: totalInner / k, K: k, Dt: 0.25,
		TemperatureK: 300, Seed: 11,
	}
}

const (
	fullK  = 0.10 // full-surface spring constant
	cheapK = 0.08 // cheap reference: 20% off, so the correction is real
	bondR0 = 2.0
)

func runRESPA(t *testing.T, totalInner, k int, mut func(*Options)) *md.Trajectory {
	t.Helper()
	opts := respaOpts(totalInner, k)
	if mut != nil {
		mut(&opts)
	}
	traj, err := Run(respaMol(), springEval(fullK, bondR0), springField(cheapK, bondR0), opts)
	if err != nil {
		t.Fatal(err)
	}
	return traj
}

// TestDriftAcrossK is the energy-drift gate: the conserved quantity
// E_full + E_kin, recorded at outer boundaries, must stay physically
// small at every split and must not blow up relative to the k=1
// baseline as the full force is applied 8× less often. The system is
// the md-layer conservation benchmark (stretched H2 on a bond spring,
// static start) so the k=1 row inherits its 3e-5 Eh/atom gate; the
// cheap reference is ~14% off the full surface, so the slow correction
// — the part integrated at k·δt — is genuinely exercised.
func TestDriftAcrossK(t *testing.T) {
	const totalInner = 256
	mol := chem.Hydrogen(1.5)
	full := springEval(0.35, 1.4)
	cheap := springField(0.30, 1.4)
	drifts := map[int]float64{}
	for _, k := range []int{1, 2, 4, 8} {
		traj, err := Run(mol, full, cheap, Options{Steps: totalInner / k, K: k, Dt: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		if want := totalInner/k + 1; len(traj.Frames) != want {
			t.Fatalf("k=%d recorded %d frames, want %d (outer boundaries only)", k, len(traj.Frames), want)
		}
		drifts[k] = traj.EnergyDrift()
		t.Logf("k=%d drift %.3e Eh/atom", k, drifts[k])
	}
	if drifts[1] > 3e-5 {
		t.Fatalf("k=1 baseline drift %.3e Eh/atom too large", drifts[1])
	}
	// The slow component sees an effective timestep of k·δt, so its
	// drift contribution grows ~k². Gate each split against that scaling
	// law with 2x headroom (a sign error or a missed half-kick lands
	// orders of magnitude above it) plus an absolute ceiling.
	floor := math.Max(drifts[1], 1e-6)
	for _, k := range []int{2, 4, 8} {
		if bound := 2 * float64(k*k) * floor; drifts[k] > bound {
			t.Fatalf("k=%d drift %.3e exceeds the k^2 scaling bound %.3e", k, drifts[k], bound)
		}
		if drifts[k] > 5e-4 {
			t.Fatalf("k=%d drift %.3e Eh/atom above the absolute ceiling", k, drifts[k])
		}
	}
}

// TestKOneMatchesPlainVerlet: at k=1 the split degenerates to velocity
// Verlet on the full surface (the two half-kicks are applied in two
// additions instead of one, so agreement is to rounding, not bitwise).
func TestKOneMatchesPlainVerlet(t *testing.T) {
	const steps = 64
	pot := func(m *chem.Molecule) (float64, error) {
		e, _, err := springEval(fullK, bondR0)(m)
		return e, err
	}
	// FDEvaluator with the same displacement makes the per-step forces
	// identical to md.Run's, isolating the integrator arithmetic.
	opts := respaOpts(steps, 1)
	traj, err := Run(respaMol(), FDEvaluator(pot, 1e-5, 1), springField(cheapK, bondR0), opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := md.Run(respaMol(), pot,
		md.Options{Steps: steps, Dt: 0.25, TemperatureK: 300, Seed: 11, FDStep: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	last, rlast := traj.Frames[len(traj.Frames)-1], ref.Frames[len(ref.Frames)-1]
	if last.Step != rlast.Step {
		t.Fatalf("step mismatch: %d vs %d", last.Step, rlast.Step)
	}
	if d := math.Abs(last.Total - rlast.Total); d > 1e-6 {
		t.Fatalf("k=1 total energy deviates from plain Verlet by %.3e Eh", d)
	}
}

// crashAndResume mirrors the md-layer harness: run with an injected
// crash, reload the most advanced durable state, finish the trajectory.
func crashAndResume(t *testing.T, totalInner, k int, plan *ckpt.FaultPlan, every int64) *md.Trajectory {
	t.Helper()
	dir := t.TempDir()
	w, err := ckpt.NewWriter(ckpt.Config{Dir: dir, Every: every, Keep: 3, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	opts := respaOpts(totalInner, k)
	opts.Ckpt = w
	_, err = Run(respaMol(), springEval(fullK, bondR0), springField(cheapK, bondR0), opts)
	if !errors.Is(err, ckpt.ErrInjectedCrash) {
		t.Fatalf("want injected crash, got %v", err)
	}
	var se *md.StepError
	if !errors.As(err, &se) || int64(se.Step) != plan.CrashAtStep {
		t.Fatalf("crash should surface as StepError at step %d, got %v", plan.CrashAtStep, err)
	}
	w.Close()

	res, err := ckpt.Load(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.State.Slow == nil {
		t.Fatal("restored RESPA state lost its slow force")
	}
	w2, err := ckpt.NewWriter(ckpt.Config{Dir: dir, Every: every, Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	opts = respaOpts(totalInner, k)
	opts.Ckpt = w2
	opts.Resume = res.State
	traj, err := Run(respaMol(), springEval(fullK, bondR0), springField(cheapK, bondR0), opts)
	if err != nil {
		t.Fatal(err)
	}
	return traj
}

func assertBitwiseEqual(t *testing.T, got, want *ckpt.MDState) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("missing final state (got %v, want %v)", got, want)
	}
	if !bytes.Equal(ckpt.EncodeState(got), ckpt.EncodeState(want)) {
		t.Fatalf("final states differ:\n got step %d epot %x\nwant step %d epot %x",
			got.Step, math.Float64bits(got.Epot), want.Step, math.Float64bits(want.Epot))
	}
}

// TestResumeBitwiseOnOuterBoundary crashes exactly at an outer boundary
// (step 16 with k=4): the restore point has a fresh slow force and the
// resumed run must land on the identical final bits.
func TestResumeBitwiseOnOuterBoundary(t *testing.T) {
	const totalInner, k = 32, 4
	ref := runRESPA(t, totalInner, k, nil)
	got := crashAndResume(t, totalInner, k, &ckpt.FaultPlan{CrashAtStep: 16}, 8)
	assertBitwiseEqual(t, got.Final, ref.Final)
	if got.EnergyDrift() != ref.EnergyDrift() {
		t.Fatal("drift differs after boundary resume")
	}
}

// TestResumeBitwiseMidCycle crashes between two outer boundaries (step
// 18 with k=4, phase 2 of the cycle): the restore carries the cycle's
// slow force from two steps before, and resume is still bitwise because
// both forces are stored, not recomputed.
func TestResumeBitwiseMidCycle(t *testing.T) {
	const totalInner, k = 32, 4
	ref := runRESPA(t, totalInner, k, nil)
	got := crashAndResume(t, totalInner, k, &ckpt.FaultPlan{CrashAtStep: 18}, 7)
	assertBitwiseEqual(t, got.Final, ref.Final)
	if got.EnergyDrift() != ref.EnergyDrift() {
		t.Fatal("drift differs after mid-cycle resume")
	}
}

// TestResumeRejectsPlainMDState: a version-1 checkpoint (no slow force)
// must be refused, not silently integrated with a zero correction.
func TestResumeRejectsPlainMDState(t *testing.T) {
	opts := respaOpts(8, 2)
	ref := runRESPA(t, 8, 2, nil)
	st := ref.Final.Clone()
	st.Slow = nil
	opts.Resume = st
	if _, err := Run(respaMol(), springEval(fullK, bondR0), springField(cheapK, bondR0), opts); err == nil {
		t.Fatal("plain-MD state must not resume a RESPA run")
	}
}

// TestResumeRejectsDifferentSplit: the params fingerprint covers K and
// the reference label, so a checkpoint from one split cannot seed
// another.
func TestResumeRejectsDifferentSplit(t *testing.T) {
	ref := runRESPA(t, 8, 2, nil)
	opts := respaOpts(8, 4)
	opts.Resume = ref.Final
	if _, err := Run(respaMol(), springEval(fullK, bondR0), springField(cheapK, bondR0), opts); err == nil {
		t.Fatal("k=2 checkpoint must not resume a k=4 run")
	}
	opts = respaOpts(8, 2)
	opts.RefLabel = "other"
	opts.Resume = ref.Final
	if _, err := Run(respaMol(), springEval(fullK, bondR0), springField(cheapK, bondR0), opts); err == nil {
		t.Fatal("checkpoint must not resume under a different reference label")
	}
}

// TestCancelIdentifiesStep: cancelling mid-campaign surfaces a typed
// *md.StepError naming the first step that observed the cancellation.
func TestCancelIdentifiesStep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opts := respaOpts(64, 4)
	opts.Ctx = ctx
	opts.OnOuterStep = func(outer int, _ md.Frame) {
		if outer == 2 { // after inner step 8
			cancel()
		}
	}
	_, err := Run(respaMol(), springEval(fullK, bondR0), springField(cheapK, bondR0), opts)
	var se *md.StepError
	if !errors.As(err, &se) {
		t.Fatalf("want *md.StepError, got %v", err)
	}
	if se.Step != 9 {
		t.Fatalf("cancellation surfaced at step %d, want 9 (first step after the cancel)", se.Step)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause should unwrap to context.Canceled, got %v", err)
	}
}

// TestSpringReference exercises the built-in cheap reference: bonded
// pairs at the initial geometry, restoring force toward the captured
// r0.
func TestSpringReference(t *testing.T) {
	mol := chem.Hydrogen(1.4)
	ff := SpringReference(mol, 0, 0)
	stretched := mol.Clone()
	stretched.Atoms[1].Pos[2] += 0.2
	f, err := ff(stretched)
	if err != nil {
		t.Fatal(err)
	}
	if f[1][2] >= 0 {
		t.Fatalf("stretched bond must pull atom 1 back (-z), got F_z=%g", f[1][2])
	}
	if d := f[0][2] + f[1][2]; math.Abs(d) > 1e-15 {
		t.Fatalf("spring forces must sum to zero, residual %g", d)
	}
	// At the captured geometry the reference force vanishes.
	f0, err := ff(mol)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f0 {
		for c := 0; c < 3; c++ {
			if f0[i][c] != 0 {
				t.Fatalf("nonzero reference force at the captured geometry: %v", f0)
			}
		}
	}
}
