// Package respa implements the r-RESPA multiple-time-step integrator
// for Born–Oppenheimer MD (Tuckerman/Berne/Martyna splitting, applied
// to hybrid-functional AIMD following Mandal et al., arXiv:2110.07670):
// a cheap reference force drives the inner velocity-Verlet loop at δt,
// and the expensive correction F_slow = F_full − F_cheap — in this
// codebase, the force of the full HFX-bearing SCF surface — kicks the
// velocities only every k-th step, at Δt = k·δt. Because the paper's
// per-step cost is dominated by exact exchange, evaluating it 1/k as
// often is the single biggest per-trajectory lever the roadmap names.
//
// The integrator is symplectic for each split and reduces to plain
// velocity Verlet on the full surface at k=1 (up to the order of the
// two half-kicks). The conserved quantity is E_full + E_kin, recorded
// at outer boundaries where the full potential is evaluated anyway, so
// monitoring drift adds no extra SCF work.
//
// Every *inner* step yields a complete restartable state that composes
// with package ckpt: positions, velocities, the current cheap force,
// and the outer cycle's slow force (ckpt.MDState version 2). Resume is
// bitwise — landing exactly on or between outer boundaries — because
// both forces are restored rather than recomputed.
package respa

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"

	"hfxmd/internal/chem"
	"hfxmd/internal/ckpt"
	"hfxmd/internal/dft"
	"hfxmd/internal/md"
	"hfxmd/internal/phys"
	"hfxmd/internal/scf"
)

// Evaluator returns the potential energy and forces −∂E/∂R of a
// geometry — the full (slow) surface.
type Evaluator func(m *chem.Molecule) (epot float64, f []chem.Vec3, err error)

// ForceField returns only the forces of a geometry — the cheap (fast)
// reference surface, evaluated every inner step, where its energy is
// never needed.
type ForceField func(m *chem.Molecule) ([]chem.Vec3, error)

// Options configures a multiple-time-step trajectory.
type Options struct {
	// Steps is the number of outer steps (full-force evaluations).
	Steps int
	// K is the number of inner steps per outer step (default 1).
	K int
	// Dt is the inner timestep in femtoseconds (default 0.5); the outer
	// timestep is K·Dt.
	Dt float64
	// TemperatureK seeds velocities and, with Thermostat, drives the bath.
	TemperatureK float64
	// Thermostat enables Berendsen rescaling, applied once per outer step.
	Thermostat bool
	// TauFS is the Berendsen coupling time (default 20 fs).
	TauFS float64
	// Seed makes velocity initialisation reproducible.
	Seed int64
	// RefLabel names the cheap reference force; it is folded into the
	// checkpoint parameter fingerprint so a resume with a different
	// reference is rejected.
	RefLabel string
	// Ckpt, if non-nil, makes every completed inner step durable.
	Ckpt *ckpt.Writer
	// Resume, if non-nil, continues from a restored RESPA state
	// (ckpt.Load); the restore is bitwise whether the state landed on an
	// outer boundary or between two.
	Resume *ckpt.MDState
	// Ctx, if non-nil, is polled before every inner step; cancellation
	// surfaces as a *md.StepError wrapping ctx.Err(), identifying the
	// step the trajectory stopped at.
	Ctx context.Context
	// OnOuterStep, if non-nil, is called after each completed outer step
	// with the outer index (1-based) and the recorded frame — the
	// streamed-progress hook hfxd trajectory jobs use.
	OnOuterStep func(outer int, f md.Frame)
}

// paramsHash fingerprints the run configuration, mirroring md.Run's but
// tagged with the RESPA split (K, reference label) so plain-MD and
// RESPA checkpoints can never resume each other.
func paramsHash(m *chem.Molecule, opts *Options) uint64 {
	h := fnv.New64a()
	h.Write([]byte("respa\x00" + opts.RefLabel + "\x00"))
	w := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	w(uint64(opts.K))
	w(math.Float64bits(opts.Dt))
	w(math.Float64bits(opts.TemperatureK))
	if opts.Thermostat {
		w(1)
	} else {
		w(0)
	}
	w(math.Float64bits(opts.TauFS))
	w(uint64(opts.Seed))
	// Steps is excluded: extending the horizon changes no per-step
	// arithmetic, exactly as in md.Run.
	w(uint64(int64(m.Charge)))
	w(uint64(m.NAtoms()))
	for _, a := range m.Atoms {
		w(uint64(a.El))
	}
	return h.Sum64()
}

// Run integrates a RESPA trajectory. Frames (and the conserved-energy
// drift they feed) are recorded at outer boundaries; Trajectory.Final
// tracks the complete restartable state after every inner step.
func Run(mol *chem.Molecule, full Evaluator, cheap ForceField, opts Options) (*md.Trajectory, error) {
	if opts.Steps <= 0 {
		return nil, fmt.Errorf("respa: Steps must be positive")
	}
	if opts.K <= 0 {
		opts.K = 1
	}
	if opts.Dt <= 0 {
		opts.Dt = 0.5
	}
	if opts.TauFS <= 0 {
		opts.TauFS = 20
	}
	k := opts.K
	dt := opts.Dt * phys.FemtosecondToAtomicTime
	totalInner := opts.Steps * k

	m := mol.Clone()
	n := m.NAtoms()
	masses := md.AtomicMasses(m)
	ph := paramsHash(m, &opts)

	traj := md.NewTrajectory(m)
	var (
		vel, fc, fs []chem.Vec3 // velocities, cheap force, slow force
		epot        float64     // full potential at the last outer boundary
		rngState    [3]uint64
	)
	stateAt := func(step int) *ckpt.MDState {
		lo, hi := traj.Extrema()
		st := &ckpt.MDState{
			Step: int64(step),
			Pos:  make([]chem.Vec3, n),
			Vel:  append([]chem.Vec3(nil), vel...),
			Frc:  append([]chem.Vec3(nil), fc...),
			Slow: append([]chem.Vec3(nil), fs...),
			Epot: epot,
			ELo:  lo, EHi: hi,
			RNG:        rngState,
			ParamsHash: ph,
		}
		for i := range st.Pos {
			st.Pos[i] = m.Atoms[i].Pos
		}
		return st
	}
	recordOuter := func(step int) {
		ekin := md.Kinetic(vel, masses)
		pos := make([]chem.Vec3, n)
		for i := range pos {
			pos[i] = m.Atoms[i].Pos
		}
		f := md.Frame{
			Step:      step,
			TimeFS:    float64(step) * opts.Dt,
			Potential: epot,
			Kinetic:   ekin,
			Total:     epot + ekin,
			TempK:     md.Temperature(ekin, n),
			Positions: pos,
		}
		traj.AddFrame(f)
		traj.Final = stateAt(step)
		if opts.OnOuterStep != nil {
			opts.OnOuterStep(step/k, f)
		}
	}

	startStep := 1
	if st := opts.Resume; st != nil {
		if len(st.Pos) != n {
			return nil, fmt.Errorf("respa: resume state holds %d atoms, molecule has %d", len(st.Pos), n)
		}
		if st.ParamsHash != ph {
			return nil, fmt.Errorf("respa: resume state was written by a different run configuration (params fingerprint %016x, want %016x)", st.ParamsHash, ph)
		}
		if st.Slow == nil {
			return nil, fmt.Errorf("respa: resume state at step %d is a plain-MD state, not a RESPA one", st.Step)
		}
		if int(st.Step) > totalInner {
			return nil, fmt.Errorf("respa: resume state is at inner step %d, beyond Steps·K=%d", st.Step, totalInner)
		}
		for i := range m.Atoms {
			m.Atoms[i].Pos = st.Pos[i]
		}
		vel = append([]chem.Vec3(nil), st.Vel...)
		fc = append([]chem.Vec3(nil), st.Frc...)
		fs = append([]chem.Vec3(nil), st.Slow...)
		epot = st.Epot
		rngState = st.RNG
		traj.RestoreExtrema(st)
		if st.Step%int64(k) == 0 {
			// Outer-boundary restore point: re-emit its frame, bitwise
			// equal to the original's.
			recordOuter(int(st.Step))
		} else {
			traj.Final = stateAt(int(st.Step))
		}
		startStep = int(st.Step) + 1
	} else {
		vel, rngState = md.DrawVelocities(m, masses, opts.TemperatureK, opts.Seed)
		var err error
		fc, err = cheap(m)
		if err != nil {
			return nil, &md.StepError{Step: 0, Err: err}
		}
		var ffull []chem.Vec3
		epot, ffull, err = full(m)
		if err != nil {
			return nil, &md.StepError{Step: 0, Err: err}
		}
		fs = slowForce(ffull, fc)
		recordOuter(0)
		if opts.Ckpt != nil {
			if err := opts.Ckpt.OnStep(traj.Final); err != nil {
				return traj, &md.StepError{Step: 0, Err: err}
			}
		}
	}

	outerDt := float64(k) * dt
	for step := startStep; step <= totalInner; step++ {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return traj, &md.StepError{Step: step, Err: err}
			}
		}
		// A cycle's opening slow half-kick reuses F_slow evaluated at the
		// previous boundary — the positions have not moved since.
		if (step-1)%k == 0 {
			for i := 0; i < n; i++ {
				for c := 0; c < 3; c++ {
					vel[i][c] += 0.5 * outerDt * fs[i][c] / masses[i]
				}
			}
		}
		// Inner velocity Verlet on the cheap surface.
		for i := 0; i < n; i++ {
			for c := 0; c < 3; c++ {
				vel[i][c] += 0.5 * dt * fc[i][c] / masses[i]
				m.Atoms[i].Pos[c] += dt * vel[i][c]
			}
		}
		var err error
		fc, err = cheap(m)
		if err != nil {
			return traj, &md.StepError{Step: step, Err: err}
		}
		for i := 0; i < n; i++ {
			for c := 0; c < 3; c++ {
				vel[i][c] += 0.5 * dt * fc[i][c] / masses[i]
			}
		}
		if step%k == 0 {
			// Outer boundary: full surface, closing slow half-kick,
			// thermostat, frame.
			var ffull []chem.Vec3
			epot, ffull, err = full(m)
			if err != nil {
				return traj, &md.StepError{Step: step, Err: err}
			}
			fs = slowForce(ffull, fc)
			for i := 0; i < n; i++ {
				for c := 0; c < 3; c++ {
					vel[i][c] += 0.5 * outerDt * fs[i][c] / masses[i]
				}
			}
			if opts.Thermostat && opts.TemperatureK > 0 {
				md.BerendsenRescale(vel, masses, opts.TemperatureK, opts.Dt*float64(k), opts.TauFS)
			}
			recordOuter(step)
		} else {
			traj.Final = stateAt(step)
		}
		if opts.Ckpt != nil {
			if err := opts.Ckpt.OnStep(traj.Final); err != nil {
				return traj, &md.StepError{Step: step, Err: err}
			}
		}
	}
	return traj, nil
}

// slowForce returns F_full − F_cheap.
func slowForce(full, cheap []chem.Vec3) []chem.Vec3 {
	fs := make([]chem.Vec3, len(full))
	for i := range fs {
		fs[i] = full[i].Sub(cheap[i])
	}
	return fs
}

// FDEvaluator adapts a PotentialFunc into the full-surface Evaluator:
// central finite-difference forces over a bounded worker group (6N
// evaluations) plus one central energy, exactly the per-step work
// md.Run does.
func FDEvaluator(pot md.PotentialFunc, h float64, workers int) Evaluator {
	return func(m *chem.Molecule) (float64, []chem.Vec3, error) {
		f, err := md.ForcesN(m, pot, h, workers)
		if err != nil {
			return 0, nil, err
		}
		e, err := pot(m)
		if err != nil {
			return 0, nil, err
		}
		return e, f, nil
	}
}

// FDReference adapts a PotentialFunc into a cheap ForceField by central
// finite differences — the "FD on a loose SCF" and "PBE-style baseline"
// reference modes.
func FDReference(pot md.PotentialFunc, h float64, workers int) ForceField {
	return func(m *chem.Molecule) ([]chem.Vec3, error) {
		return md.ForcesN(m, pot, h, workers)
	}
}

// SpringReference builds an analytic harmonic-bond reference from the
// initial geometry: every pair the covalent-radius heuristic calls
// bonded (scale factor bondScale, default 1.3) becomes a spring of
// stiffness kSpring (hartree/bohr², default 0.35) at its initial
// length. When the heuristic finds no bonds (noble gases, stretched
// dimers) every atom pair becomes a spring, so the reference is never
// empty for a polyatomic. The reference costs O(bonds) per inner step —
// effectively free next to any SCF — and its only job is to carry the
// stiff near-equilibrium motion between HFX corrections.
func SpringReference(mol *chem.Molecule, bondScale, kSpring float64) ForceField {
	if bondScale <= 0 {
		bondScale = 1.3
	}
	if kSpring <= 0 {
		kSpring = 0.35
	}
	pairs := mol.Bonds(bondScale)
	if len(pairs) == 0 {
		for i := 0; i < mol.NAtoms(); i++ {
			for j := i + 1; j < mol.NAtoms(); j++ {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	r0 := make([]float64, len(pairs))
	for b, p := range pairs {
		r0[b] = mol.Distance(p[0], p[1])
	}
	return func(m *chem.Molecule) ([]chem.Vec3, error) {
		f := make([]chem.Vec3, m.NAtoms())
		for b, p := range pairs {
			i, j := p[0], p[1]
			d := m.Atoms[j].Pos.Sub(m.Atoms[i].Pos)
			r := d.Norm()
			if r == 0 {
				continue
			}
			// F_i = k(r−r0)·û_ij: pulls i towards j when stretched.
			s := kSpring * (r - r0[b]) / r
			f[i] = f[i].Add(d.Scale(s))
			f[j] = f[j].Sub(d.Scale(s))
		}
		return f, nil
	}
}

// LooseSCF derives the loosened solver settings for a reference surface
// from a production config: convergence three orders of magnitude
// coarser and a tighter iteration cap, enough for forces that only have
// to track the cheap part of the dynamics between HFX corrections.
func LooseSCF(cfg scf.Config) scf.Config {
	loose := cfg
	loose.EnergyTol = 1e-5
	loose.CommutatorTol = 1e-3
	if loose.MaxIter == 0 || loose.MaxIter > 50 {
		loose.MaxIter = 50
	}
	return loose
}

// BaselineSCF derives the PBE-style baseline reference from a
// production config: the semilocal functional with no exact-exchange
// fraction, the split Mandal et al. use (full hybrid on the outer step,
// pure GGA inside).
func BaselineSCF(cfg scf.Config) scf.Config {
	base := cfg
	base.Functional = dft.PBE{}
	return base
}

// Reference modes accepted by BuildReference.
const (
	RefSpring   = "spring"
	RefLoose    = "loose"
	RefBaseline = "baseline"
)

// BuildReference resolves a named cheap-force mode against the initial
// geometry and production SCF config: "spring" (analytic harmonic
// bonds), "loose" (FD forces on a loosened SCF) or "baseline" (FD
// forces on the PBE baseline surface). fdStep and workers configure the
// finite-difference modes; the returned label goes into
// Options.RefLabel.
func BuildReference(mode string, mol *chem.Molecule, cfg scf.Config, fdStep float64, workers int) (ForceField, string, error) {
	switch mode {
	case RefSpring, "":
		return SpringReference(mol, 0, 0), RefSpring, nil
	case RefLoose:
		return FDReference(md.SCFPotential(LooseSCF(cfg)), fdStep, workers), RefLoose, nil
	case RefBaseline:
		return FDReference(md.SCFPotential(BaselineSCF(cfg)), fdStep, workers), RefBaseline, nil
	default:
		return nil, "", fmt.Errorf("respa: unknown reference mode %q (want %s, %s or %s)",
			mode, RefSpring, RefLoose, RefBaseline)
	}
}
