// Package mprt is an in-process message-passing runtime: the layer that
// *executes* the paper's rank decomposition instead of modelling it. A
// World joins N ranks — plain goroutines — through Comm handles with real
// collectives (Barrier, Bcast, Allreduce, ReduceScatter, Allgatherv),
// each available in two schedules:
//
//   - Binomial: the latency-oriented binomial tree over linear ranks;
//   - DimExchange: the BG/Q-style torus schedule, partners chosen by
//     dimension-ordered exchange over the rank→coordinate embedding of a
//     torus.Shape (fastest row-major dimension first, coordinate distance
//     doubling within each dimension).
//
// Point-to-point delivery is typed channels; there are no background
// goroutines, so a World leaks nothing once its rank functions return.
// Every send records bytes, torus hops and schedule steps into a
// trace.Registry, which is what lets the d1 experiment validate measured
// collective traffic against the analytic bgq.AllreduceTime model.
//
// Determinism rule (load-bearing for hfx.DistributedBuild): every
// reduction sums in the canonical binary-tree order over rank indices —
// the same ((r0+r1)+(r2+r3))+… association as the HFX worker pool's
// stride-doubling reduce — regardless of schedule. The two schedules
// move the data along different partner sequences, but the DimExchange
// embedding produced by torus.ShapeForNodes keeps every dimension except
// the slowest at a power-of-two length, which makes its nested
// dimension-ordered tree coincide exactly with the canonical one. Results
// are therefore bitwise identical across schedules and independent of
// goroutine interleaving.
package mprt

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"hfxmd/internal/torus"
	"hfxmd/internal/trace"
)

// ErrRankKilled marks a rank function that terminated by fault injection
// rather than by finishing its work: the in-process analogue of a node
// dying mid-job. Drivers match it with errors.Is, re-execute the dead
// rank's work, and re-form the collective (see hfx.DistBuilder.BuildJK).
// A rank must only die *between* collectives — a rank that vanishes
// mid-collective would strand its partners on channel receives, exactly
// as a real torus partition wedges when a node stops acknowledging.
var ErrRankKilled = errors.New("mprt: rank killed by fault injection")

// Schedule selects the collective communication schedule.
type Schedule int

const (
	// Binomial is the binomial tree over linear rank indices.
	Binomial Schedule = iota
	// DimExchange is the torus dimension-ordered exchange schedule.
	DimExchange
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case Binomial:
		return "binomial"
	case DimExchange:
		return "dim-exchange"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// ScheduleByName resolves "binomial" or "dim-exchange".
func ScheduleByName(name string) (Schedule, bool) {
	switch name {
	case "binomial":
		return Binomial, true
	case "dim-exchange", "dimexchange":
		return DimExchange, true
	}
	return 0, false
}

// Options configures a World.
type Options struct {
	// Ranks is the number of ranks (required, ≥ 1).
	Ranks int
	// Schedule selects the collective schedule (default Binomial).
	Schedule Schedule
	// Shape is the torus the ranks are embedded onto. The zero value
	// picks torus.ShapeForNodes(Ranks), whose power-of-two fast
	// dimensions guarantee the canonical reduction order (see the package
	// comment); a custom shape must cover exactly Ranks nodes.
	Shape torus.Shape
	// Registry receives the traffic counters (default: a fresh one).
	Registry *trace.Registry
}

// message is one point-to-point delivery. The payload slice is borrowed,
// not copied: the receiver may read it until its next send to (or
// receive from) establishes a new ordering with the sender, which is the
// discipline all collectives follow.
type message struct {
	tag  int
	data []float64
}

// op is one rank's action in one schedule level: receive-and-accumulate
// from a child, or send the local partial to the parent (always the last
// op of a rank's sequence).
type op struct {
	partner int
	recv    bool
	level   int // global level index (for step accounting)
	hops    int // torus hop distance to the partner
}

// World is a set of ranks joined by channels. Create with NewWorld, hand
// the Comm handles to goroutines (or use Run), and Close when done.
type World struct {
	n     int
	sched Schedule
	tor   *torus.Torus
	reg   *trace.Registry

	coords []torus.Coord
	chans  [][]chan message // chans[to][from]
	comms  []*Comm

	// reduceOps[r] is rank r's action sequence for one canonical tree
	// reduction to rank 0; levels is the total number of schedule levels
	// (= message rounds of one reduce phase). block[r] is the contiguous
	// rank range [r, block[r]) absorbed into r by a full reduction.
	reduceOps [][]op
	levels    int
	block     []int

	closeOnce sync.Once
	closed    chan struct{}
}

// NewWorld creates a world of opts.Ranks ranks.
func NewWorld(opts Options) (*World, error) {
	if opts.Ranks < 1 {
		return nil, fmt.Errorf("mprt: need at least 1 rank, got %d", opts.Ranks)
	}
	shape := opts.Shape
	if shape == (torus.Shape{}) {
		s, err := torus.ShapeForNodes(opts.Ranks)
		if err != nil {
			return nil, err
		}
		shape = s
	}
	if shape.Nodes() != opts.Ranks {
		return nil, fmt.Errorf("mprt: shape %v holds %d nodes, want %d ranks",
			shape, shape.Nodes(), opts.Ranks)
	}
	tor, err := torus.New(shape)
	if err != nil {
		return nil, err
	}
	reg := opts.Registry
	if reg == nil {
		reg = trace.NewRegistry()
	}
	w := &World{
		n:      opts.Ranks,
		sched:  opts.Schedule,
		tor:    tor,
		reg:    reg,
		coords: make([]torus.Coord, opts.Ranks),
		chans:  make([][]chan message, opts.Ranks),
		comms:  make([]*Comm, opts.Ranks),
		closed: make(chan struct{}),
	}
	for r := 0; r < opts.Ranks; r++ {
		w.coords[r] = tor.Coords(r)
		w.chans[r] = make([]chan message, opts.Ranks)
		for from := 0; from < opts.Ranks; from++ {
			w.chans[r][from] = make(chan message, 1)
		}
	}
	for r := 0; r < opts.Ranks; r++ {
		w.comms[r] = &Comm{w: w, rank: r}
	}
	w.buildSchedule()
	// Pre-create every counter the collectives touch.
	for _, name := range []string{
		"mprt.sends", "mprt.bytes", "mprt.hops",
		"mprt.barrier.calls", "mprt.bcast.calls", "mprt.allreduce.calls",
		"mprt.reducescatter.calls", "mprt.allgatherv.calls",
		"mprt.allreduce.steps", "mprt.reducescatter.steps",
		"mprt.allgatherv.steps", "mprt.bcast.steps", "mprt.barrier.steps",
	} {
		reg.Counter(name)
	}
	return w, nil
}

// buildSchedule precomputes each rank's canonical-tree action sequence
// under the world's schedule, the level count, and the subtree blocks.
func (w *World) buildSchedule() {
	w.reduceOps = make([][]op, w.n)
	type pair struct{ parent, child int }
	var levels [][]pair

	switch w.sched {
	case Binomial:
		for s := 1; s < w.n; s *= 2 {
			var lv []pair
			for r := 0; r+s < w.n; r += 2 * s {
				lv = append(lv, pair{r, r + s})
			}
			levels = append(levels, lv)
		}
	case DimExchange:
		// Fastest row-major dimension (E) first. Only ranks whose faster
		// coordinates are already 0 participate in a dimension's levels,
		// and within a dimension the coordinate distance doubles — the
		// nested tree this produces is canonical for ShapeForNodes shapes.
		shape := w.tor.Shape
		for d := torus.Dims - 1; d >= 0; d-- {
			for q := 1; q < shape[d]; q *= 2 {
				var lv []pair
				for r := 0; r < w.n; r++ {
					c := w.coords[r]
					eligible := true
					for fd := d + 1; fd < torus.Dims; fd++ {
						if c[fd] != 0 {
							eligible = false
							break
						}
					}
					if !eligible || c[d]%(2*q) != 0 || c[d]+q >= shape[d] {
						continue
					}
					pc := c
					pc[d] += q
					lv = append(lv, pair{r, w.tor.Rank(pc)})
				}
				if len(lv) > 0 {
					levels = append(levels, lv)
				}
			}
		}
	default:
		panic(fmt.Sprintf("mprt: unknown schedule %v", w.sched))
	}

	w.levels = len(levels)
	span := make([]int, w.n)
	for r := range span {
		span[r] = 1
	}
	for li, lv := range levels {
		for _, p := range lv {
			h := w.tor.HopDistance(w.coords[p.parent], w.coords[p.child])
			w.reduceOps[p.parent] = append(w.reduceOps[p.parent],
				op{partner: p.child, recv: true, level: li, hops: h})
			w.reduceOps[p.child] = append(w.reduceOps[p.child],
				op{partner: p.parent, recv: false, level: li, hops: h})
			span[p.parent] += span[p.child]
		}
	}
	w.block = make([]int, w.n)
	for r := range w.block {
		w.block[r] = r + span[r]
	}
	if w.block[0] != w.n {
		panic(fmt.Sprintf("mprt: schedule %v does not cover all %d ranks", w.sched, w.n))
	}
}

// Size returns the rank count.
func (w *World) Size() int { return w.n }

// Schedule returns the collective schedule.
func (w *World) Schedule() Schedule { return w.sched }

// Shape returns the torus shape the ranks are embedded onto.
func (w *World) Shape() torus.Shape { return w.tor.Shape }

// CoordOf returns the torus coordinate of a rank.
func (w *World) CoordOf(rank int) torus.Coord { return w.coords[rank] }

// Registry exposes the traffic counters.
func (w *World) Registry() *trace.Registry { return w.reg }

// PredictedReduceSteps returns the message rounds of one tree reduction
// under the schedule — the quantity the bgq machine model predicts as
// ceil(log2 N) rounds (binomial) or torus.DimExchangeSteps (dimension
// exchange). One Allreduce measures 2× this (reduce + broadcast phases),
// matching the factor in bgq.AllreduceTime.
func (w *World) PredictedReduceSteps() int {
	switch w.sched {
	case DimExchange:
		return w.tor.DimExchangeSteps()
	default:
		if w.n <= 1 {
			return 0
		}
		return bits.Len(uint(w.n - 1)) // ceil(log2 n)
	}
}

// Comm returns the handle for one rank. Each handle must be driven by a
// single goroutine at a time; collectives must be entered by all ranks.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.n {
		panic(fmt.Sprintf("mprt: rank %d outside world of %d", rank, w.n))
	}
	return w.comms[rank]
}

// Run spawns one goroutine per rank, invokes f with its Comm, and waits
// for all of them. The first non-nil error (lowest rank) is returned.
func (w *World) Run(f func(*Comm) error) error {
	errs := make([]error, w.n)
	var wg sync.WaitGroup
	wg.Add(w.n)
	for r := 0; r < w.n; r++ {
		go func(r int) {
			defer wg.Done()
			errs[r] = f(w.comms[r])
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close marks the world closed: subsequent sends and receives panic.
// The world owns no goroutines, so Close frees nothing else — it exists
// to turn use-after-close into a loud failure instead of a deadlock.
func (w *World) Close() {
	w.closeOnce.Do(func() { close(w.closed) })
}

// Comm is one rank's endpoint in a World.
type Comm struct {
	w    *World
	rank int

	// Per-rank traffic, written only by this rank's goroutine; read them
	// after Run returns (or any other happens-before edge).
	bytesSent int64
	sends     int64
	hopsSent  int64
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world's rank count.
func (c *Comm) Size() int { return c.w.n }

// BytesSent returns the total payload bytes this rank has sent.
func (c *Comm) BytesSent() int64 { return c.bytesSent }

// Sends returns the number of messages this rank has sent.
func (c *Comm) Sends() int64 { return c.sends }

// HopsSent returns the summed torus hop distance of this rank's sends.
func (c *Comm) HopsSent() int64 { return c.hopsSent }

// Send delivers data to the given rank under a tag. The slice is
// borrowed by the receiver, not copied: the sender must not write to it
// until a later message from the receiver (or Run returning) establishes
// an ordering. All collectives obey this discipline internally.
func (c *Comm) Send(to, tag int, data []float64) {
	c.sendHops(to, tag, data, c.w.tor.HopDistance(c.w.coords[c.rank], c.w.coords[to]))
}

func (c *Comm) sendHops(to, tag int, data []float64, hops int) {
	select {
	case <-c.w.closed:
		panic("mprt: send on closed world")
	default:
	}
	b := int64(8 * len(data))
	c.bytesSent += b
	c.sends++
	c.hopsSent += int64(hops)
	c.w.reg.Counter("mprt.sends").Add(1)
	c.w.reg.Counter("mprt.bytes").Add(b)
	c.w.reg.Counter("mprt.hops").Add(int64(hops))
	c.w.chans[to][c.rank] <- message{tag: tag, data: data}
}

// Recv blocks for the next message from the given rank and checks its
// tag; a mismatch is a protocol bug and panics.
func (c *Comm) Recv(from, tag int) []float64 {
	select {
	case <-c.w.closed:
		panic("mprt: recv on closed world")
	case m := <-c.w.chans[c.rank][from]:
		if m.tag != tag {
			panic(fmt.Sprintf("mprt: rank %d expected tag %d from %d, got %d",
				c.rank, tag, from, m.tag))
		}
		return m.data
	}
}
