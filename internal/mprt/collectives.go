package mprt

import "fmt"

// Internal protocol tags (user Send/Recv tags must be ≥ 0).
const (
	tagReduce = -1 - iota
	tagBcast
	tagScatter
	tagGather
)

// reduce performs the canonical-tree reduction of data onto rank 0:
// parents accumulate children's partials in schedule-level order, and a
// rank's final action (if any) is the single send of its subtree partial
// to its parent. With nil data the same message pattern runs with empty
// payloads (the barrier). After reduce, rank 0's data holds the
// canonical ((r0+r1)+(r2+r3))+… sum; other ranks' data is stale.
func (c *Comm) reduce(tag int, data []float64) {
	for _, o := range c.w.reduceOps[c.rank] {
		if o.recv {
			rd := c.Recv(o.partner, tag)
			for i, v := range rd {
				data[i] += v
			}
		} else {
			c.sendHops(o.partner, tag, data, o.hops)
		}
	}
}

// bcastTree pushes root's data down the reversed reduction tree. Root
// sends one freshly cloned buffer that all descendants share read-only;
// every other rank copies it into data and forwards the shared buffer,
// so no rank ever borrows a slice its caller may overwrite.
func (c *Comm) bcastTree(tag, root int, data []float64) {
	n := c.w.n
	v := ((c.rank-root)%n + n) % n
	ops := c.w.reduceOps[v]
	phys := func(p int) int { return (p + root) % n }
	if v == 0 {
		var shared []float64
		if data != nil {
			shared = append([]float64(nil), data...)
		}
		for i := len(ops) - 1; i >= 0; i-- {
			c.Send(phys(ops[i].partner), tag, shared)
		}
		return
	}
	// A non-root rank's last reduce op was the send to its parent; in the
	// broadcast it becomes the first receive, then the rank re-sends to
	// its own children in reverse level order.
	last := len(ops) - 1
	shared := c.Recv(phys(ops[last].partner), tag)
	copy(data, shared)
	for i := last - 1; i >= 0; i-- {
		c.Send(phys(ops[i].partner), tag, shared)
	}
}

// Barrier blocks until every rank has entered it: an empty-payload
// reduction followed by an empty-payload broadcast.
func (c *Comm) Barrier() {
	if c.rank == 0 {
		c.w.reg.Counter("mprt.barrier.calls").Add(1)
		c.w.reg.Counter("mprt.barrier.steps").Add(int64(2 * c.w.levels))
	}
	if c.w.n == 1 {
		return
	}
	c.reduce(tagReduce, nil)
	c.bcastTree(tagBcast, 0, nil)
}

// Bcast replaces every rank's data with root's copy. All ranks must pass
// slices of equal length.
func (c *Comm) Bcast(root int, data []float64) {
	if root < 0 || root >= c.w.n {
		panic(fmt.Sprintf("mprt: bcast root %d outside world of %d", root, c.w.n))
	}
	if c.rank == 0 {
		c.w.reg.Counter("mprt.bcast.calls").Add(1)
		c.w.reg.Counter("mprt.bcast.steps").Add(int64(c.w.levels))
	}
	if c.w.n == 1 {
		return
	}
	c.bcastTree(tagBcast, root, data)
}

// Allreduce sums data element-wise across all ranks, in place, leaving
// every rank with the identical canonical-tree total: a reduction to
// rank 0 followed by a broadcast — the reduce+broadcast factor-of-two
// the bgq.AllreduceTime model charges for both schedules.
func (c *Comm) Allreduce(data []float64) {
	if c.rank == 0 {
		c.w.reg.Counter("mprt.allreduce.calls").Add(1)
		c.w.reg.Counter("mprt.allreduce.steps").Add(int64(2 * c.w.levels))
	}
	if c.w.n == 1 {
		return
	}
	c.reduce(tagReduce, data)
	c.bcastTree(tagBcast, 0, data)
}

// checkCounts validates a counts vector against the data length.
func (c *Comm) checkCounts(counts []int, total int) []int {
	if len(counts) != c.w.n {
		panic(fmt.Sprintf("mprt: counts has %d entries for %d ranks", len(counts), c.w.n))
	}
	offs := make([]int, c.w.n+1)
	for r, cnt := range counts {
		if cnt < 0 {
			panic("mprt: negative segment count")
		}
		offs[r+1] = offs[r] + cnt
	}
	if total >= 0 && offs[c.w.n] != total {
		panic(fmt.Sprintf("mprt: segment counts sum to %d, data has %d", offs[c.w.n], total))
	}
	return offs
}

// ReduceScatter reduces data across ranks (canonical tree, like
// Allreduce) and returns the segment owned by this rank: counts[r]
// elements starting at offset Σ counts[<r]. The returned slice is
// freshly owned by the caller. All ranks must pass identical counts.
func (c *Comm) ReduceScatter(data []float64, counts []int) []float64 {
	offs := c.checkCounts(counts, len(data))
	if c.rank == 0 {
		c.w.reg.Counter("mprt.reducescatter.calls").Add(1)
		c.w.reg.Counter("mprt.reducescatter.steps").Add(int64(c.w.levels + 1))
	}
	if c.w.n == 1 {
		return append([]float64(nil), data...)
	}
	c.reduce(tagReduce, data)
	if c.rank == 0 {
		// One scatter round: the root clones its reduced vector once and
		// hands each rank a disjoint sub-slice of the clone.
		buf := append([]float64(nil), data...)
		for r := 1; r < c.w.n; r++ {
			c.Send(r, tagScatter, buf[offs[r]:offs[r+1]:offs[r+1]])
		}
		return buf[offs[0]:offs[1]:offs[1]]
	}
	return c.Recv(0, tagScatter)
}

// Allgatherv concatenates every rank's local slice (counts[r] elements
// from rank r) and returns the full vector on all ranks, gathered up the
// canonical tree and broadcast back down. The returned slice is freshly
// owned by the caller; len(local) must equal counts[rank].
func (c *Comm) Allgatherv(local []float64, counts []int) []float64 {
	offs := c.checkCounts(counts, -1)
	if len(local) != counts[c.rank] {
		panic(fmt.Sprintf("mprt: rank %d local has %d elements, counts says %d",
			c.rank, len(local), counts[c.rank]))
	}
	if c.rank == 0 {
		c.w.reg.Counter("mprt.allgatherv.calls").Add(1)
		c.w.reg.Counter("mprt.allgatherv.steps").Add(int64(2 * c.w.levels))
	}
	total := offs[c.w.n]
	buf := make([]float64, total)
	copy(buf[offs[c.rank]:], local)
	if c.w.n == 1 {
		return buf
	}
	// Gather: a child's subtree block is the contiguous rank range
	// [child, block[child]), so it ships one contiguous region per send.
	for _, o := range c.w.reduceOps[c.rank] {
		if o.recv {
			child := o.partner
			rd := c.Recv(child, tagGather)
			copy(buf[offs[child]:offs[c.w.block[child]]], rd)
		} else {
			c.sendHops(o.partner, tagGather, buf[offs[c.rank]:offs[c.w.block[c.rank]]], o.hops)
		}
	}
	// Broadcast the assembled vector back down. Root's buf is shared
	// read-only by descendants; non-roots copy into their own buf.
	if c.rank == 0 {
		ops := c.w.reduceOps[0]
		shared := append([]float64(nil), buf...)
		for i := len(ops) - 1; i >= 0; i-- {
			c.Send(ops[i].partner, tagBcast, shared)
		}
		return buf
	}
	ops := c.w.reduceOps[c.rank]
	last := len(ops) - 1
	shared := c.Recv(ops[last].partner, tagBcast)
	copy(buf, shared)
	for i := last - 1; i >= 0; i-- {
		c.Send(ops[i].partner, tagBcast, shared)
	}
	return buf
}
