package mprt

import (
	"math/bits"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"hfxmd/internal/torus"
)

var testRanks = []int{1, 2, 3, 4, 5, 6, 8, 12, 16}

var schedules = []Schedule{Binomial, DimExchange}

// canonicalSum reduces rank partials with the canonical stride-doubling
// tree — the association every mprt reduction must reproduce bitwise.
func canonicalSum(parts [][]float64) []float64 {
	n := len(parts)
	acc := make([][]float64, n)
	for r := range parts {
		acc[r] = append([]float64(nil), parts[r]...)
	}
	for s := 1; s < n; s *= 2 {
		for w := 0; w+s < n; w += 2 * s {
			for i, v := range acc[w+s] {
				acc[w][i] += v
			}
		}
	}
	return acc[0]
}

func randParts(n, m int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	parts := make([][]float64, n)
	for r := range parts {
		parts[r] = make([]float64, m)
		for i := range parts[r] {
			// Wildly varying magnitudes make float addition order visible.
			parts[r][i] = rng.NormFloat64() * float64(int64(1)<<uint(rng.Intn(40)))
		}
	}
	return parts
}

func TestAllreduceCanonicalBothSchedules(t *testing.T) {
	for _, n := range testRanks {
		parts := randParts(n, 37, int64(n))
		want := canonicalSum(parts)
		for _, sched := range schedules {
			w, err := NewWorld(Options{Ranks: n, Schedule: sched})
			if err != nil {
				t.Fatal(err)
			}
			got := make([][]float64, n)
			err = w.Run(func(c *Comm) error {
				data := append([]float64(nil), parts[c.Rank()]...)
				c.Allreduce(data)
				got[c.Rank()] = data
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			w.Close()
			for r := 0; r < n; r++ {
				for i := range want {
					if got[r][i] != want[i] {
						t.Fatalf("n=%d %v rank %d elem %d: got %g want %g (bitwise)",
							n, sched, r, i, got[r][i], want[i])
					}
				}
			}
		}
	}
}

func TestAllreduceDeterministicAcrossRuns(t *testing.T) {
	const n, m = 6, 53
	parts := randParts(n, m, 99)
	for _, sched := range schedules {
		var first []float64
		for rep := 0; rep < 5; rep++ {
			w, err := NewWorld(Options{Ranks: n, Schedule: sched})
			if err != nil {
				t.Fatal(err)
			}
			var got []float64
			w.Run(func(c *Comm) error {
				data := append([]float64(nil), parts[c.Rank()]...)
				// Jitter the rank goroutines to vary interleaving.
				time.Sleep(time.Duration(c.Rank()*rep) * time.Microsecond)
				c.Allreduce(data)
				if c.Rank() == 3 {
					got = data
				}
				return nil
			})
			w.Close()
			if rep == 0 {
				first = got
				continue
			}
			for i := range first {
				if got[i] != first[i] {
					t.Fatalf("%v rep %d elem %d: %g != %g", sched, rep, i, got[i], first[i])
				}
			}
		}
	}
}

func TestReduceScatterAllgathervRoundTrip(t *testing.T) {
	for _, n := range testRanks {
		const m = 41 // deliberately not divisible by most rank counts
		parts := randParts(n, m, 7*int64(n))
		want := canonicalSum(parts)
		counts := make([]int, n)
		for r := range counts {
			counts[r] = m / n
			if r < m%n {
				counts[r]++
			}
		}
		for _, sched := range schedules {
			w, err := NewWorld(Options{Ranks: n, Schedule: sched})
			if err != nil {
				t.Fatal(err)
			}
			full := make([][]float64, n)
			err = w.Run(func(c *Comm) error {
				data := append([]float64(nil), parts[c.Rank()]...)
				seg := c.ReduceScatter(data, counts)
				if len(seg) != counts[c.Rank()] {
					t.Errorf("rank %d segment length %d, want %d", c.Rank(), len(seg), counts[c.Rank()])
				}
				full[c.Rank()] = c.Allgatherv(seg, counts)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			w.Close()
			for r := 0; r < n; r++ {
				for i := range want {
					if full[r][i] != want[i] {
						t.Fatalf("n=%d %v rank %d elem %d: got %g want %g",
							n, sched, r, i, full[r][i], want[i])
					}
				}
			}
		}
	}
}

func TestBcastAllRoots(t *testing.T) {
	for _, n := range []int{1, 2, 3, 6, 8} {
		for _, sched := range schedules {
			for root := 0; root < n; root++ {
				w, err := NewWorld(Options{Ranks: n, Schedule: sched})
				if err != nil {
					t.Fatal(err)
				}
				src := []float64{1.5, -2.25, float64(root), float64(n)}
				got := make([][]float64, n)
				w.Run(func(c *Comm) error {
					data := make([]float64, len(src))
					if c.Rank() == root {
						copy(data, src)
					}
					c.Bcast(root, data)
					got[c.Rank()] = data
					return nil
				})
				w.Close()
				for r := 0; r < n; r++ {
					for i := range src {
						if got[r][i] != src[i] {
							t.Fatalf("n=%d %v root %d rank %d: got %v", n, sched, root, r, got[r])
						}
					}
				}
			}
		}
	}
}

func TestBarrierAndPointToPoint(t *testing.T) {
	w, err := NewWorld(Options{Ranks: 4, Schedule: DimExchange})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	sum := make([]float64, 4)
	err = w.Run(func(c *Comm) error {
		// Ring: rank r sends r+1 its rank, receives from r-1.
		next, prev := (c.Rank()+1)%4, (c.Rank()+3)%4
		c.Send(next, 7, []float64{float64(c.Rank())})
		got := c.Recv(prev, 7)
		c.Barrier()
		sum[c.Rank()] = got[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if want := float64((r + 3) % 4); sum[r] != want {
			t.Fatalf("rank %d received %g, want %g", r, sum[r], want)
		}
	}
}

// TestMeasuredStepsMatchModel pins the measured collective step counts
// against the analytic predictions the bgq machine model uses for the
// same shape: ceil(log2 N) rounds per phase for the binomial tree and
// torus.DimExchangeSteps for the dimension exchange, ×2 for the
// reduce+broadcast phases of an allreduce. scripts/check.sh runs this
// test explicitly as the model-vs-measured gate.
func TestMeasuredStepsMatchModel(t *testing.T) {
	for _, n := range testRanks {
		for _, sched := range schedules {
			w, err := NewWorld(Options{Ranks: n, Schedule: sched})
			if err != nil {
				t.Fatal(err)
			}
			const calls = 3
			w.Run(func(c *Comm) error {
				data := make([]float64, 8)
				for k := 0; k < calls; k++ {
					c.Allreduce(data)
				}
				return nil
			})
			w.Close()

			tor, _ := torus.New(w.Shape())
			var predictedReduce int
			if sched == DimExchange {
				predictedReduce = tor.DimExchangeSteps()
			} else if n > 1 {
				predictedReduce = bits.Len(uint(n - 1))
			}
			if got := w.PredictedReduceSteps(); got != predictedReduce {
				t.Fatalf("n=%d %v: PredictedReduceSteps %d, model %d", n, sched, got, predictedReduce)
			}
			measured := w.Registry().Counter("mprt.allreduce.steps").Value()
			if want := int64(calls * 2 * predictedReduce); measured != want {
				t.Fatalf("n=%d %v: measured allreduce steps %d, model predicts %d",
					n, sched, measured, want)
			}
			if got := w.Registry().Counter("mprt.allreduce.calls").Value(); got != calls {
				t.Fatalf("n=%d %v: %d calls recorded, want %d", n, sched, got, calls)
			}
		}
	}
}

func TestTrafficCounters(t *testing.T) {
	w, err := NewWorld(Options{Ranks: 4, Schedule: Binomial})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const m = 10
	w.Run(func(c *Comm) error {
		data := make([]float64, m)
		c.Allreduce(data)
		return nil
	})
	// Binomial over 4 ranks: reduce sends from ranks 1,3 (stride 1) and 2
	// (stride 2); bcast mirrors them: 6 messages of m floats.
	if got := w.Registry().Counter("mprt.sends").Value(); got != 6 {
		t.Fatalf("sends = %d, want 6", got)
	}
	if got := w.Registry().Counter("mprt.bytes").Value(); got != 6*m*8 {
		t.Fatalf("bytes = %d, want %d", got, 6*m*8)
	}
	var perRank int64
	for r := 0; r < 4; r++ {
		perRank += w.Comm(r).BytesSent()
	}
	if perRank != w.Registry().Counter("mprt.bytes").Value() {
		t.Fatalf("per-rank bytes %d != registry total", perRank)
	}
	if w.Registry().Counter("mprt.hops").Value() < 6 {
		t.Fatalf("hops = %d, want >= 1 per send", w.Registry().Counter("mprt.hops").Value())
	}
}

// TestNoGoroutineLeak enforces the lifecycle criterion: a world spawns
// goroutines only inside Run, so after Run returns and Close is called
// the goroutine count returns to its baseline.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for rep := 0; rep < 3; rep++ {
		w, err := NewWorld(Options{Ranks: 8, Schedule: DimExchange})
		if err != nil {
			t.Fatal(err)
		}
		w.Run(func(c *Comm) error {
			data := make([]float64, 16)
			c.Allreduce(data)
			c.Barrier()
			return nil
		})
		w.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(Options{Ranks: 0}); err == nil {
		t.Fatal("expected error for 0 ranks")
	}
	if _, err := NewWorld(Options{Ranks: 3, Shape: torus.Shape{2, 1, 1, 1, 1}}); err == nil {
		t.Fatal("expected error for shape/rank mismatch")
	}
	w, err := NewWorld(Options{Ranks: 6, Schedule: DimExchange})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Shape().Nodes() != 6 {
		t.Fatalf("auto shape %v does not cover 6 ranks", w.Shape())
	}
	// Round-trip the embedding.
	for r := 0; r < 6; r++ {
		tor, _ := torus.New(w.Shape())
		if back := tor.Rank(w.CoordOf(r)); back != r {
			t.Fatalf("rank %d -> %v -> %d", r, w.CoordOf(r), back)
		}
	}
}
