package torus

import "testing"

// TestShapeForNodesCoverage checks the mprt embedding over a wide range of
// node counts: exact coverage, the power-of-two invariant on every
// dimension except A, and fast-dimensions-first filling.
func TestShapeForNodesCoverage(t *testing.T) {
	isPow2 := func(x int) bool { return x > 0 && x&(x-1) == 0 }
	for n := 1; n <= 256; n++ {
		s, err := ShapeForNodes(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Nodes() != n {
			t.Fatalf("n=%d: shape %v covers %d nodes", n, s, s.Nodes())
		}
		if !s.Valid() {
			t.Fatalf("n=%d: invalid shape %v", n, s)
		}
		for d := 1; d < Dims; d++ {
			if !isPow2(s[d]) {
				t.Fatalf("n=%d: dimension %d of %v is %d, not a power of two", n, d, s, s[d])
			}
		}
	}
	if _, err := ShapeForNodes(0); err == nil {
		t.Fatal("expected error for 0 nodes")
	}
	if _, err := ShapeForNodes(-4); err == nil {
		t.Fatal("expected error for negative nodes")
	}
}

// TestShapeForNodesKnown pins specific embeddings: odd factor into A,
// powers of two spread E-first, A doubling only on overflow.
func TestShapeForNodesKnown(t *testing.T) {
	cases := []struct {
		n    int
		want Shape
	}{
		{1, Shape{1, 1, 1, 1, 1}},
		{2, Shape{1, 1, 1, 1, 2}},
		{3, Shape{3, 1, 1, 1, 1}},
		{4, Shape{1, 1, 1, 2, 2}},
		{6, Shape{3, 1, 1, 1, 2}},
		{8, Shape{1, 1, 2, 2, 2}},
		{12, Shape{3, 1, 1, 2, 2}},
		{16, Shape{1, 2, 2, 2, 2}},
		{32, Shape{2, 2, 2, 2, 2}},
		{48, Shape{3, 2, 2, 2, 2}},
		{64, Shape{4, 2, 2, 2, 2}},
		{5, Shape{5, 1, 1, 1, 1}},
		{20, Shape{5, 1, 1, 2, 2}},
	}
	for _, c := range cases {
		s, err := ShapeForNodes(c.n)
		if err != nil {
			t.Fatal(err)
		}
		if s != c.want {
			t.Fatalf("ShapeForNodes(%d) = %v, want %v", c.n, s, c.want)
		}
	}
}

// TestRoundTripEveryNode walks every node of several shapes — including
// non-power-of-two dimensions and the production E=2 constraint — and
// checks rank→coord→rank identity plus row-major ordering (A slowest).
func TestRoundTripEveryNode(t *testing.T) {
	shapes := []Shape{
		{3, 2, 1, 1, 2}, // non-power-of-two A, mixed fast dims
		{5, 1, 1, 1, 1}, // single odd dimension
		{2, 3, 4, 5, 2}, // every length different, E=2
		{4, 4, 4, 8, 2}, // production 1-rack shape
		{1, 1, 1, 1, 1}, // degenerate single node
		{7, 2, 2, 2, 2}, // ShapeForNodes(112) style
	}
	for _, s := range shapes {
		tor, err := New(s)
		if err != nil {
			t.Fatal(err)
		}
		prev := -1
		for rank := 0; rank < s.Nodes(); rank++ {
			c := tor.Coords(rank)
			for d := 0; d < Dims; d++ {
				if c[d] < 0 || c[d] >= s[d] {
					t.Fatalf("shape %v rank %d: coordinate %v out of bounds", s, rank, c)
				}
			}
			if got := tor.Rank(c); got != rank {
				t.Fatalf("shape %v: rank %d -> %v -> %d", s, rank, c, got)
			}
			if rank <= prev {
				t.Fatalf("shape %v: rank ordering broke at %d", s, rank)
			}
			prev = rank
		}
		// Row-major with A slowest: incrementing the A coordinate jumps the
		// rank by the product of all faster dimensions.
		if s[0] > 1 {
			stride := s.Nodes() / s[0]
			c0, c1 := tor.Coords(0), Coord{1, 0, 0, 0, 0}
			if tor.Rank(c1)-tor.Rank(c0) != stride {
				t.Fatalf("shape %v: A stride %d, want %d", s, tor.Rank(c1), stride)
			}
		}
	}
}

// TestProductionShapesKeepE2 checks every tabulated production rack shape
// keeps the hardware's fixed E=2 dimension.
func TestProductionShapesKeepE2(t *testing.T) {
	for racks, s := range rackShapes {
		if s[4] != 2 {
			t.Fatalf("%d-rack shape %v: E dimension %d != 2", racks, s, s[4])
		}
		if !s.Valid() {
			t.Fatalf("%d-rack shape %v invalid", racks, s)
		}
	}
}
