// Package torus models the Blue Gene/Q 5-D torus interconnect: partition
// shapes (A,B,C,D,E dimensions with E fixed at 2), node coordinates,
// minimal-hop routing distances, and the structural quantities (diameter,
// bisection width) that drive the collective-communication models in
// package bgq.
package torus

import (
	"fmt"
	"sort"
)

// Dims is the number of torus dimensions on BG/Q.
const Dims = 5

// Shape is a 5-D torus partition shape (A,B,C,D,E).
type Shape [Dims]int

// Nodes returns the node count of the partition.
func (s Shape) Nodes() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// String renders the shape as "AxBxCxDxE".
func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%dx%dx%d", s[0], s[1], s[2], s[3], s[4])
}

// Valid reports whether all dimensions are positive.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d < 1 {
			return false
		}
	}
	return true
}

// rackShapes are the standard production partition shapes: a BG/Q rack
// holds 1024 nodes (two 512-node midplanes of shape 4×4×4×4×2); the
// 96-rack shape is the Sequoia configuration.
var rackShapes = map[int]Shape{
	1:  {4, 4, 4, 8, 2},
	2:  {4, 4, 8, 8, 2},
	4:  {4, 8, 8, 8, 2},
	8:  {8, 8, 8, 8, 2},
	16: {8, 8, 8, 16, 2},
	24: {8, 8, 12, 16, 2},
	32: {8, 8, 16, 16, 2},
	48: {8, 12, 16, 16, 2},
	64: {8, 16, 16, 16, 2},
	96: {16, 16, 12, 16, 2},
}

// ShapeForRacks returns the partition shape for the given rack count. For
// rack counts without a tabulated production shape it factors 1024·racks
// into the most cube-like 5-D shape with E=2.
func ShapeForRacks(racks int) (Shape, error) {
	if racks < 1 {
		return Shape{}, fmt.Errorf("torus: rack count %d out of range", racks)
	}
	if s, ok := rackShapes[racks]; ok {
		return s, nil
	}
	return balancedShape(racks * 1024)
}

// balancedShape factors n into 5 dimensions (last fixed to 2) as evenly
// as possible; n must be divisible by 2 and factor into small primes.
func balancedShape(n int) (Shape, error) {
	if n%2 != 0 {
		return Shape{}, fmt.Errorf("torus: node count %d not divisible by E=2", n)
	}
	rem := n / 2
	dims := []int{1, 1, 1, 1}
	// Greedy: repeatedly strip the smallest prime factor onto the
	// currently smallest dimension.
	for rem > 1 {
		f := smallestFactor(rem)
		sort.Ints(dims)
		dims[0] *= f
		rem /= f
	}
	sort.Sort(sort.Reverse(sort.IntSlice(dims)))
	return Shape{dims[0], dims[1], dims[2], dims[3], 2}, nil
}

func smallestFactor(n int) int {
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			return f
		}
	}
	return n
}

// ShapeForNodes embeds an arbitrary positive node count into a 5-D shape
// for the in-process message-passing runtime (package mprt). Unlike
// ShapeForRacks it does not force E=2: the count's odd factor goes
// entirely into A (the slowest row-major dimension) and the power-of-two
// factor is spread over E,D,C,B (fastest first), doubling A only when the
// four fast dimensions are exhausted.
//
// The resulting invariant — every dimension except possibly A has a
// power-of-two length — is what lets the dimension-ordered exchange
// schedule of package mprt reproduce the canonical binary reduction tree
// exactly (see the determinism rules in DESIGN.md).
func ShapeForNodes(n int) (Shape, error) {
	if n < 1 {
		return Shape{}, fmt.Errorf("torus: node count %d out of range", n)
	}
	twos := 0
	odd := n
	for odd%2 == 0 {
		odd /= 2
		twos++
	}
	s := Shape{odd, 1, 1, 1, 1}
	for d := Dims - 1; d >= 1 && twos > 0; d-- {
		s[d] = 2
		twos--
	}
	for ; twos > 0; twos-- {
		s[0] *= 2
	}
	return s, nil
}

// Coord is a node coordinate in the torus.
type Coord [Dims]int

// Torus is an instantiated partition.
type Torus struct {
	Shape Shape
}

// New creates a torus of the given shape.
func New(s Shape) (*Torus, error) {
	if !s.Valid() {
		return nil, fmt.Errorf("torus: invalid shape %v", s)
	}
	return &Torus{Shape: s}, nil
}

// Rank maps a coordinate to its linear rank (row-major, A slowest).
func (t *Torus) Rank(c Coord) int {
	r := 0
	for d := 0; d < Dims; d++ {
		if c[d] < 0 || c[d] >= t.Shape[d] {
			panic(fmt.Sprintf("torus: coordinate %v outside shape %v", c, t.Shape))
		}
		r = r*t.Shape[d] + c[d]
	}
	return r
}

// Coords maps a linear rank back to its coordinate.
func (t *Torus) Coords(rank int) Coord {
	if rank < 0 || rank >= t.Shape.Nodes() {
		panic(fmt.Sprintf("torus: rank %d outside partition of %d nodes", rank, t.Shape.Nodes()))
	}
	var c Coord
	for d := Dims - 1; d >= 0; d-- {
		c[d] = rank % t.Shape[d]
		rank /= t.Shape[d]
	}
	return c
}

// HopDistance returns the minimal-hop routing distance between two nodes
// (sum of per-dimension wrap-around distances).
func (t *Torus) HopDistance(a, b Coord) int {
	h := 0
	for d := 0; d < Dims; d++ {
		diff := a[d] - b[d]
		if diff < 0 {
			diff = -diff
		}
		if wrap := t.Shape[d] - diff; wrap < diff {
			diff = wrap
		}
		h += diff
	}
	return h
}

// Diameter returns the maximum minimal-hop distance in the partition.
func (t *Torus) Diameter() int {
	d := 0
	for k := 0; k < Dims; k++ {
		d += t.Shape[k] / 2
	}
	return d
}

// BisectionLinks returns the number of links crossing the partition's
// narrowest bisection: cut the longest dimension in half; 2 directions ×
// the product of the remaining dimensions (×2 again for the torus wrap).
func (t *Torus) BisectionLinks() int {
	longest := 0
	for d := 1; d < Dims; d++ {
		if t.Shape[d] > t.Shape[longest] {
			longest = d
		}
	}
	other := 1
	for d := 0; d < Dims; d++ {
		if d != longest {
			other *= t.Shape[d]
		}
	}
	wrap := 2
	if t.Shape[longest] <= 2 {
		wrap = 1 // a dimension of length ≤2 has no independent wrap link
	}
	return other * wrap
}

// NeighborCount returns the number of torus neighbours of any node
// (2 per dimension of length > 2, 1 for length-2 dimensions).
func (t *Torus) NeighborCount() int {
	n := 0
	for d := 0; d < Dims; d++ {
		switch {
		case t.Shape[d] >= 3:
			n += 2
		case t.Shape[d] == 2:
			n++
		}
	}
	return n
}

// DimExchangeSteps returns the number of nearest-neighbour exchange steps
// of a dimension-ordered recursive-halving allreduce: Σ_d ceil(log2 L_d).
func (t *Torus) DimExchangeSteps() int {
	steps := 0
	for d := 0; d < Dims; d++ {
		l := t.Shape[d]
		for l > 1 {
			steps++
			l = (l + 1) / 2
		}
	}
	return steps
}
