package torus

import (
	"testing"
	"testing/quick"
)

func TestShapeForRacksProduction(t *testing.T) {
	for racks, want := range map[int]int{1: 1024, 2: 2048, 8: 8192, 96: 98304} {
		s, err := ShapeForRacks(racks)
		if err != nil {
			t.Fatal(err)
		}
		if s.Nodes() != want {
			t.Fatalf("%d racks: %v = %d nodes, want %d", racks, s, s.Nodes(), want)
		}
		if s[4] != 2 {
			t.Fatalf("%d racks: E dimension %d != 2", racks, s[4])
		}
	}
	// Sequoia shape check.
	s, _ := ShapeForRacks(96)
	if s != (Shape{16, 16, 12, 16, 2}) {
		t.Fatalf("96-rack shape %v", s)
	}
}

func TestShapeForRacksFallback(t *testing.T) {
	// 3 racks has no production entry: fallback must still hit the node
	// count.
	s, err := ShapeForRacks(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes() != 3072 {
		t.Fatalf("3 racks: %v = %d nodes", s, s.Nodes())
	}
	if _, err := ShapeForRacks(0); err == nil {
		t.Fatal("expected error for 0 racks")
	}
}

func TestRankCoordRoundTrip(t *testing.T) {
	s, _ := ShapeForRacks(1)
	tor, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < s.Nodes(); rank += 37 {
		c := tor.Coords(rank)
		if got := tor.Rank(c); got != rank {
			t.Fatalf("rank %d -> %v -> %d", rank, c, got)
		}
	}
}

func TestRankPanicsOutOfRange(t *testing.T) {
	tor, _ := New(Shape{2, 2, 2, 2, 2})
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { tor.Coords(32) })
	mustPanic(func() { tor.Rank(Coord{0, 0, 0, 0, 5}) })
}

func TestHopDistanceProperties(t *testing.T) {
	tor, _ := New(Shape{4, 4, 4, 8, 2})
	n := tor.Shape.Nodes()
	f := func(a, b uint16) bool {
		ca := tor.Coords(int(a) % n)
		cb := tor.Coords(int(b) % n)
		d := tor.HopDistance(ca, cb)
		// Symmetry, identity, bounded by diameter.
		return d == tor.HopDistance(cb, ca) &&
			(d == 0) == (ca == cb) &&
			d <= tor.Diameter()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHopDistanceWrap(t *testing.T) {
	tor, _ := New(Shape{8, 4, 4, 4, 2})
	a := Coord{0, 0, 0, 0, 0}
	b := Coord{7, 0, 0, 0, 0}
	if d := tor.HopDistance(a, b); d != 1 {
		t.Fatalf("wrap distance %d want 1", d)
	}
	c := Coord{4, 0, 0, 0, 0}
	if d := tor.HopDistance(a, c); d != 4 {
		t.Fatalf("half-way distance %d want 4", d)
	}
}

func TestDiameter(t *testing.T) {
	tor, _ := New(Shape{4, 4, 4, 8, 2})
	// 2+2+2+4+1 = 11.
	if d := tor.Diameter(); d != 11 {
		t.Fatalf("diameter %d", d)
	}
}

func TestNeighborCount(t *testing.T) {
	tor, _ := New(Shape{4, 4, 4, 8, 2})
	// 4 dims of length ≥3 → 8 links, E=2 → 1 link: 9.
	if n := tor.NeighborCount(); n != 9 {
		t.Fatalf("neighbors %d", n)
	}
	tiny, _ := New(Shape{1, 1, 1, 1, 2})
	if n := tiny.NeighborCount(); n != 1 {
		t.Fatalf("tiny neighbors %d", n)
	}
}

func TestDimExchangeSteps(t *testing.T) {
	tor, _ := New(Shape{4, 4, 4, 8, 2})
	// log2: 2+2+2+3+1 = 10.
	if s := tor.DimExchangeSteps(); s != 10 {
		t.Fatalf("steps %d", s)
	}
}

func TestBisectionGrowsWithPartition(t *testing.T) {
	prev := 0
	for _, racks := range []int{1, 8, 96} {
		s, _ := ShapeForRacks(racks)
		tor, _ := New(s)
		b := tor.BisectionLinks()
		if b <= prev {
			t.Fatalf("bisection did not grow: %d racks -> %d links (prev %d)", racks, b, prev)
		}
		prev = b
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Shape{0, 1, 1, 1, 2}); err == nil {
		t.Fatal("expected error")
	}
}

func TestShapeString(t *testing.T) {
	if got := (Shape{4, 4, 4, 8, 2}).String(); got != "4x4x4x8x2" {
		t.Fatalf("%q", got)
	}
}
