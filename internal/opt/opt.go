// Package opt provides geometry optimization on any potential-energy
// surface exposed through md.PotentialFunc, using the FIRE (Fast Inertial
// Relaxation Engine) algorithm — the standard structural relaxer for the
// encounter complexes and degradation products of the Li/air study.
package opt

import (
	"fmt"
	"math"

	"hfxmd/internal/chem"
	"hfxmd/internal/md"
)

// Options controls the FIRE minimisation.
type Options struct {
	// MaxSteps bounds the iteration count (default 200).
	MaxSteps int
	// ForceTol is the convergence threshold on max |F| in hartree/bohr
	// (default 5e-4).
	ForceTol float64
	// FDStep is the finite-difference displacement for forces (default
	// as in package md).
	FDStep float64
	// MaxStepLength caps the per-step atomic displacement in bohr
	// (default 0.3) to keep the SCF in its convergence basin.
	MaxStepLength float64
	// DtInit is the initial FIRE timestep (default 0.3, arbitrary units
	// with unit masses).
	DtInit float64
	// OnStep, if set, receives progress (step, energy, max force).
	OnStep func(step int, energy, fmax float64)
}

// Result is the outcome of a minimisation.
type Result struct {
	// Mol is the relaxed geometry.
	Mol *chem.Molecule
	// Energy is the final potential energy.
	Energy float64
	// MaxForce is the final max |F| component.
	MaxForce float64
	// Steps actually performed.
	Steps int
	// Converged reports whether ForceTol was reached.
	Converged bool
}

// FIRE parameters (Bitzek et al., PRL 97, 170201 (2006)).
const (
	fireNMin   = 5
	fireFInc   = 1.1
	fireFDec   = 0.5
	fireAStart = 0.1
	fireFA     = 0.99
	fireDtMaxF = 10.0 // dtMax = fireDtMaxF × DtInit
)

// Minimize relaxes the molecule on the given potential surface with FIRE.
func Minimize(mol *chem.Molecule, pot md.PotentialFunc, opts Options) (*Result, error) {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 200
	}
	if opts.ForceTol <= 0 {
		opts.ForceTol = 5e-4
	}
	if opts.MaxStepLength <= 0 {
		opts.MaxStepLength = 0.3
	}
	if opts.DtInit <= 0 {
		opts.DtInit = 0.3
	}
	m := mol.Clone()
	n := m.NAtoms()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty molecule")
	}
	vel := make([]chem.Vec3, n)
	dt := opts.DtInit
	dtMax := fireDtMaxF * opts.DtInit
	alpha := fireAStart
	nPos := 0

	frc, err := md.Forces(m, pot, opts.FDStep)
	if err != nil {
		return nil, err
	}
	energy, err := pot(m)
	if err != nil {
		return nil, err
	}
	res := &Result{Mol: m, Energy: energy, MaxForce: maxAbs(frc)}

	for step := 1; step <= opts.MaxSteps; step++ {
		// MD half-step (unit masses: optimization dynamics, not physics).
		for i := 0; i < n; i++ {
			vel[i] = vel[i].Add(frc[i].Scale(dt))
		}
		// FIRE velocity mixing.
		p := power(frc, vel)
		if p > 0 {
			vn := norm(vel)
			fn := norm(frc)
			if fn > 0 {
				for i := 0; i < n; i++ {
					vel[i] = vel[i].Scale(1 - alpha).Add(frc[i].Scale(alpha * vn / fn))
				}
			}
			nPos++
			if nPos > fireNMin {
				dt = math.Min(dt*fireFInc, dtMax)
				alpha *= fireFA
			}
		} else {
			for i := range vel {
				vel[i] = chem.Vec3{}
			}
			dt *= fireFDec
			alpha = fireAStart
			nPos = 0
		}
		// Position update with step-length cap.
		for i := 0; i < n; i++ {
			d := vel[i].Scale(dt)
			if l := d.Norm(); l > opts.MaxStepLength {
				d = d.Scale(opts.MaxStepLength / l)
			}
			m.Atoms[i].Pos = m.Atoms[i].Pos.Add(d)
		}

		frc, err = md.Forces(m, pot, opts.FDStep)
		if err != nil {
			return res, err
		}
		energy, err = pot(m)
		if err != nil {
			return res, err
		}
		res.Energy = energy
		res.MaxForce = maxAbs(frc)
		res.Steps = step
		if opts.OnStep != nil {
			opts.OnStep(step, energy, res.MaxForce)
		}
		if res.MaxForce < opts.ForceTol {
			res.Converged = true
			break
		}
	}
	return res, nil
}

func maxAbs(f []chem.Vec3) float64 {
	var m float64
	for _, v := range f {
		for k := 0; k < 3; k++ {
			if a := math.Abs(v[k]); a > m {
				m = a
			}
		}
	}
	return m
}

func power(f, v []chem.Vec3) float64 {
	var p float64
	for i := range f {
		p += f[i].Dot(v[i])
	}
	return p
}

func norm(v []chem.Vec3) float64 {
	var s float64
	for _, x := range v {
		s += x.Norm2()
	}
	return math.Sqrt(s)
}
