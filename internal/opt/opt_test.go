package opt

import (
	"math"
	"testing"

	"hfxmd/internal/chem"
	"hfxmd/internal/scf"
)

// morse is an analytic Morse potential between atoms 0 and 1.
func morse(de, a, r0 float64) func(*chem.Molecule) (float64, error) {
	return func(m *chem.Molecule) (float64, error) {
		x := math.Exp(-a * (m.Distance(0, 1) - r0))
		return de * (1 - x) * (1 - x), nil
	}
}

// ljCluster is a Lennard-Jones potential over all pairs.
func ljCluster(eps, sigma float64) func(*chem.Molecule) (float64, error) {
	return func(m *chem.Molecule) (float64, error) {
		var e float64
		for i := 0; i < m.NAtoms(); i++ {
			for j := i + 1; j < m.NAtoms(); j++ {
				sr := sigma / m.Distance(i, j)
				sr6 := sr * sr * sr * sr * sr * sr
				e += 4 * eps * (sr6*sr6 - sr6)
			}
		}
		return e, nil
	}
}

func TestMinimizeMorseBond(t *testing.T) {
	mol := chem.Hydrogen(2.2) // start stretched
	res, err := Minimize(mol, morse(0.17, 1.0, 1.4), Options{FDStep: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged after %d steps (fmax %g)", res.Steps, res.MaxForce)
	}
	if r := res.Mol.Distance(0, 1); math.Abs(r-1.4) > 5e-3 {
		t.Fatalf("optimized bond %g want 1.4", r)
	}
	if res.Energy > 1e-5 {
		t.Fatalf("minimum energy %g should be ~0", res.Energy)
	}
}

func TestMinimizeLJTrimer(t *testing.T) {
	// Three atoms relax to an equilateral triangle with r = 2^{1/6}σ.
	mol := &chem.Molecule{Atoms: []chem.Atom{
		{El: chem.He, Pos: chem.Vec3{0, 0, 0}},
		{El: chem.He, Pos: chem.Vec3{2.5, 0.3, 0}},
		{El: chem.He, Pos: chem.Vec3{1.2, 2.4, 0.2}},
	}}
	sigma := 2.0
	res, err := Minimize(mol, ljCluster(0.05, sigma), Options{FDStep: 1e-5, MaxSteps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged (fmax %g)", res.MaxForce)
	}
	want := math.Pow(2, 1.0/6) * sigma
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if r := res.Mol.Distance(i, j); math.Abs(r-want) > 0.02 {
				t.Fatalf("pair (%d,%d) distance %g want %g", i, j, r, want)
			}
		}
	}
}

func TestMinimizeDoesNotMutateInput(t *testing.T) {
	mol := chem.Hydrogen(2.0)
	orig := mol.Atoms[1].Pos
	if _, err := Minimize(mol, morse(0.1, 1, 1.4), Options{FDStep: 1e-5}); err != nil {
		t.Fatal(err)
	}
	if mol.Atoms[1].Pos != orig {
		t.Fatal("input geometry mutated")
	}
}

func TestMinimizeValidation(t *testing.T) {
	if _, err := Minimize(&chem.Molecule{}, morse(1, 1, 1), Options{}); err == nil {
		t.Fatal("expected error for empty molecule")
	}
}

func TestMinimizeH2SCF(t *testing.T) {
	if testing.Short() {
		t.Skip("SCF optimization is slow")
	}
	// RHF/STO-3G H2 equilibrium bond: 1.346 a0 (Szabo–Ostlund).
	pot := func(m *chem.Molecule) (float64, error) {
		res, err := scf.Run(m, scf.Config{})
		if err != nil {
			return 0, err
		}
		return res.Energy, nil
	}
	res, err := Minimize(chem.Hydrogen(1.8), pot, Options{ForceTol: 2e-4, MaxSteps: 120})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("H2 optimization not converged (fmax %g)", res.MaxForce)
	}
	if r := res.Mol.Distance(0, 1); math.Abs(r-1.346) > 0.01 {
		t.Fatalf("optimized H2 bond %g want 1.346", r)
	}
}

func TestOnStepCallback(t *testing.T) {
	calls := 0
	_, err := Minimize(chem.Hydrogen(1.8), morse(0.1, 1, 1.4), Options{
		FDStep: 1e-5,
		OnStep: func(step int, e, f float64) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("OnStep never called")
	}
}
