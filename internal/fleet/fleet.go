package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hfxmd/internal/server"
	"hfxmd/internal/steal"
	"hfxmd/internal/store"
	"hfxmd/internal/trace"
)

// Options configures a Cluster. The zero value plus New's defaults give
// a 2-instance round-robin fleet.
type Options struct {
	// Instances is the number of hfxd instances to boot (default 2).
	Instances int
	// Policy selects the routing strategy (default RoundRobin).
	Policy Policy
	// Server is the per-instance configuration template.
	Server server.Config
	// WorkersPerInstance optionally overrides Server.Workers per
	// instance (len must equal Instances), modelling a heterogeneous
	// fleet — the case where CostWeighted and LeastLoaded diverge.
	WorkersPerInstance []int
	// OverloadDepth is the queue depth at which CacheAffinity abandons a
	// job's home instance and falls back to cost-weighted routing
	// (default max(2, QueueCap/4)).
	OverloadDepth int
	// MaxSweeps bounds how many times Submit retries the whole fleet
	// after finding every instance busy (default 3).
	MaxSweeps int
	// BackoffScale scales the servers' Retry-After hints between sweeps;
	// in-process harnesses use small values (default 1.0). MaxBackoff
	// caps a single wait (default 2s).
	BackoffScale float64
	MaxBackoff   time.Duration
	// StoreDir, when set, opens ONE shared tiered store and injects it
	// into every instance (server.Config.Store): a result computed by
	// any instance is a cache hit on all of them, prefix densities and
	// ERI spills are fleet-wide, and everything survives restarts. The
	// cluster owns the store and closes it after the instances drain.
	// (Do not instead set Server.StoreDir on the template: N stores
	// appending to one active segment would corrupt it.)
	StoreDir string
	// Registry receives the router's counters (fleet.*); one is created
	// when nil.
	Registry *trace.Registry
	// Calibrator, when set, is shared by the router and every instance:
	// the instances observe measured block walls into it as they run Fock
	// builds, and both their admission pricing and the router's
	// CostWeighted price memo use the calibrated cost model. The memo is
	// keyed by the calibrator's epoch, so a job is automatically re-priced
	// after the factors move — the mechanism that lets routing decisions
	// shift once measurements contradict the raw model.
	Calibrator *steal.Calibrator
}

func (o *Options) fillDefaults() {
	if o.Instances == 0 {
		o.Instances = 2
	}
	if o.OverloadDepth == 0 {
		// Server.QueueCap may itself be defaulted later; mirror its
		// default here.
		qc := o.Server.QueueCap
		if qc == 0 {
			qc = 64
		}
		o.OverloadDepth = qc / 4
		if o.OverloadDepth < 2 {
			o.OverloadDepth = 2
		}
	}
	if o.MaxSweeps == 0 {
		o.MaxSweeps = 3
	}
	if o.BackoffScale == 0 {
		o.BackoffScale = 1
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.Registry == nil {
		o.Registry = trace.NewRegistry()
	}
}

// Instance is one hfxd process-equivalent: a server.Server with its own
// queue, workers, caches and journal-less lifecycle, served over a real
// loopback listener, plus the client the router submits through.
type Instance struct {
	Index  int
	Srv    *server.Server
	Client *server.Client
	URL    string

	ls net.Listener
	hs *http.Server
}

// Cluster is N instances behind a routing policy. Create with New,
// submit with Submit, stop with Close.
type Cluster struct {
	opts  Options
	insts []*Instance
	reg   *trace.Registry
	store *store.Store // shared across instances when Options.StoreDir is set

	cursor atomic.Int64 // round-robin state

	// prices memoises PriceRequest by canonical key: the router prices
	// each distinct job once per calibrator epoch, not once per
	// submission. A memo entry from an older epoch is stale — the
	// calibrated cost model has moved — and is re-priced on next use.
	priceMu sync.Mutex
	prices  map[string]memoPrice
}

// memoPrice is one memoised job price plus the calibrator epoch it was
// computed under (always 0 without a calibrator).
type memoPrice struct {
	epoch uint64
	ns    float64
}

// New boots the instances — each on its own 127.0.0.1 port — and
// returns the routing front end.
func New(opts Options) (*Cluster, error) {
	opts.fillDefaults()
	if len(opts.WorkersPerInstance) != 0 && len(opts.WorkersPerInstance) != opts.Instances {
		return nil, fmt.Errorf("fleet: WorkersPerInstance has %d entries for %d instances",
			len(opts.WorkersPerInstance), opts.Instances)
	}
	c := &Cluster{opts: opts, reg: opts.Registry, prices: make(map[string]memoPrice)}
	if opts.Calibrator != nil {
		opts.Server.Calibrator = opts.Calibrator
		c.opts = opts
	}
	if opts.StoreDir != "" {
		st, err := store.Open(store.Options{
			Dir:      opts.StoreDir,
			HotBytes: opts.Server.CacheBytes,
			Registry: opts.Registry,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: shared store: %w", err)
		}
		c.store = st
		opts.Server.Store = st
		c.opts = opts
	}
	for _, name := range []string{
		"fleet.submitted", "fleet.cache_hits", "fleet.failover_draining",
		"fleet.rejected_busy", "fleet.retry_sweeps", "fleet.repriced",
	} {
		c.reg.Counter(name)
	}
	for i := 0; i < opts.Instances; i++ {
		cfg := opts.Server
		if len(opts.WorkersPerInstance) != 0 {
			cfg.Workers = opts.WorkersPerInstance[i]
		}
		srv, err := server.New(cfg)
		if err != nil {
			c.Close(context.Background())
			return nil, fmt.Errorf("fleet: instance %d: %w", i, err)
		}
		ls, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Shutdown(context.Background())
			c.Close(context.Background())
			return nil, fmt.Errorf("fleet: instance %d listen: %w", i, err)
		}
		inst := &Instance{
			Index: i,
			Srv:   srv,
			URL:   "http://" + ls.Addr().String(),
			ls:    ls,
			hs:    &http.Server{Handler: srv.Handler()},
		}
		inst.Client = server.NewClient(inst.URL)
		go inst.hs.Serve(ls)
		c.insts = append(c.insts, inst)
		c.reg.Counter(fmt.Sprintf("fleet.inst%d.routed", i))
	}
	return c, nil
}

// Instances exposes the booted instances (index-stable).
func (c *Cluster) Instances() []*Instance { return c.insts }

// Store exposes the shared tiered store (nil unless Options.StoreDir).
func (c *Cluster) Store() *store.Store { return c.store }

// Registry exposes the router's metrics registry.
func (c *Cluster) Registry() *trace.Registry { return c.reg }

// Policy reports the routing policy.
func (c *Cluster) Policy() Policy { return c.opts.Policy }

// DrainInstance begins draining instance i — the lifecycle hook behind
// rolling restarts and the failover tests. It returns once the
// instance's draining flag is visible to routing; queued and in-flight
// jobs keep running in the background and are awaited by Close.
func (c *Cluster) DrainInstance(i int) {
	go c.insts[i].Srv.Shutdown(context.Background())
	for !c.insts[i].Srv.Draining() {
		time.Sleep(100 * time.Microsecond)
	}
}

// Close drains every instance (completing queued and in-flight jobs)
// and tears the listeners down. The first error wins.
func (c *Cluster) Close(ctx context.Context) error {
	var firstErr error
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, inst := range c.insts {
		wg.Add(1)
		go func(inst *Instance) {
			defer wg.Done()
			err := inst.Srv.Shutdown(ctx)
			if herr := inst.hs.Shutdown(ctx); err == nil {
				err = herr
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("fleet: instance %d: %w", inst.Index, err)
				}
				mu.Unlock()
			}
		}(inst)
	}
	wg.Wait()
	// The instances share the store; close it only after every one of
	// them has drained.
	if c.store != nil {
		if err := c.store.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fleet: shared store: %w", err)
		}
		c.store = nil
	}
	return firstErr
}

// loads snapshots every instance's routing state. key may be empty when
// the policy does not need cache residency.
func (c *Cluster) loads(key string) []Load {
	out := make([]Load, len(c.insts))
	for i, inst := range c.insts {
		s := inst.Srv
		out[i] = Load{
			Depth:      s.QueueDepth(),
			QueuedNS:   s.QueuedCostNS(),
			InflightNS: s.InflightCostNS(),
			Workers:    s.Workers(),
			Draining:   s.Draining(),
			HoldsKey:   key != "" && s.CacheContains(key),
		}
	}
	return out
}

// price returns the job's canonical key and (for cost-aware policies)
// its sched.PredictMakespan cost, memoised per key.
func (c *Cluster) price(req server.JobRequest) (string, float64, error) {
	switch c.opts.Policy {
	case CacheAffinity:
		key, err := server.CanonicalKey(req)
		return key, 0, err
	case CostWeighted:
		key, err := server.CanonicalKey(req)
		if err != nil {
			return "", 0, err
		}
		epoch := c.opts.Calibrator.Epoch() // 0 with no calibrator
		c.priceMu.Lock()
		p, ok := c.prices[key]
		c.priceMu.Unlock()
		if ok && p.epoch == epoch {
			return key, p.ns, nil
		}
		if ok {
			c.reg.Counter("fleet.repriced").Add(1)
		}
		_, ns, err := server.PriceRequestCalibrated(req, c.opts.Server.BuilderThreads, c.opts.Calibrator)
		if err != nil {
			return "", 0, err
		}
		c.priceMu.Lock()
		c.prices[key] = memoPrice{epoch: epoch, ns: ns}
		c.priceMu.Unlock()
		return key, ns, nil
	default:
		return "", 0, nil
	}
}

// Submit routes one job and waits for its result, returning the index
// of the instance that served it. Failover is typed: an instance that
// answers *DrainingError is excluded for the rest of the call (the
// router's load snapshot was stale — the instance began draining after
// it was picked), an instance that answers *BusyError is excluded for
// the current sweep; when a sweep exhausts the fleet with everyone
// busy, Submit backs off by the smallest Retry-After hint (scaled by
// Options.BackoffScale) and sweeps again, up to Options.MaxSweeps.
func (c *Cluster) Submit(ctx context.Context, req server.JobRequest) (*server.JobResult, int, error) {
	key, predicted, err := c.price(req)
	if err != nil {
		return nil, -1, err
	}
	drained := make(map[int]bool)
	var lastErr error
	for sweep := 0; sweep < c.opts.MaxSweeps; sweep++ {
		busy := make(map[int]bool)
		var minRetry time.Duration
		for {
			i := decide(c.opts.Policy, c.loads(key), key, predicted,
				int(c.cursor.Add(1)-1), c.opts.OverloadDepth,
				func(i int) bool { return drained[i] || busy[i] })
			if i < 0 {
				break
			}
			res, err := c.insts[i].Client.Submit(ctx, req)
			if err == nil {
				c.reg.Counter("fleet.submitted").Add(1)
				c.reg.Counter(fmt.Sprintf("fleet.inst%d.routed", i)).Add(1)
				if res.CacheHit {
					c.reg.Counter("fleet.cache_hits").Add(1)
				}
				return res, i, nil
			}
			lastErr = err
			var drainErr *server.DrainingError
			var busyErr *server.BusyError
			switch {
			case errors.As(err, &drainErr):
				drained[i] = true
				c.reg.Counter("fleet.failover_draining").Add(1)
			case errors.As(err, &busyErr):
				busy[i] = true
				c.reg.Counter("fleet.rejected_busy").Add(1)
				if minRetry == 0 || busyErr.RetryAfter < minRetry {
					minRetry = busyErr.RetryAfter
				}
			default:
				return nil, i, err
			}
		}
		if len(drained) == len(c.insts) || len(busy) == 0 || sweep == c.opts.MaxSweeps-1 {
			break
		}
		if minRetry == 0 {
			minRetry = time.Second
		}
		wait := time.Duration(float64(minRetry) * c.opts.BackoffScale)
		if wait > c.opts.MaxBackoff {
			wait = c.opts.MaxBackoff
		}
		c.reg.Counter("fleet.retry_sweeps").Add(1)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, -1, ctx.Err()
		}
	}
	if lastErr == nil {
		lastErr = errors.New("fleet: no instance available")
	}
	return nil, -1, lastErr
}
