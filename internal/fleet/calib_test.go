package fleet

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"hfxmd/internal/server"
	"hfxmd/internal/steal"
)

// pClasses are the bra-pair angular-momentum classes (La<<4 | Lb) with a
// p shell: they dominate water's cost and are absent from a hydrogen
// chain, which is how calibration moves the two systems differentially.
var pClasses = []int{0x01, 0x10, 0x11}

func hChainXYZ(n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d\nhydrogen chain\n", n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "H %.3f 0.0 0.0\n", float64(i)*0.9)
	}
	return sb.String()
}

// TestFleetPriceMemoInvalidatesOnCalibratorEpoch pins the memo contract:
// a CostWeighted router prices each key once per calibrator epoch — a
// factor update re-prices on next use instead of serving the stale cost.
func TestFleetPriceMemoInvalidatesOnCalibratorEpoch(t *testing.T) {
	cal := steal.NewCalibrator(0)
	c := mustCluster(t, Options{Policy: CostWeighted, Calibrator: cal})
	defer c.Close(context.Background())

	chain := server.JobRequest{Kind: server.KindBuildJK, XYZ: hChainXYZ(10)}
	_, p1, err := c.price(chain)
	if err != nil {
		t.Fatal(err)
	}
	if _, p, _ := c.price(chain); p != p1 {
		t.Fatalf("memoised price moved without a calibrator change: %g != %g", p, p1)
	}
	if got := c.reg.Counter("fleet.repriced").Value(); got != 0 {
		t.Fatalf("fleet.repriced = %d after memo hits, want 0", got)
	}

	cal.SetFactor(0, 3) // epoch moves: the chain is pure class 0
	_, p2, err := c.price(chain)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * p1; math.Abs(p2-want) > 1e-9*want {
		t.Fatalf("re-priced %g, want 3x the raw price %g", p2, want)
	}
	if got := c.reg.Counter("fleet.repriced").Value(); got != 1 {
		t.Fatalf("fleet.repriced = %d, want 1", got)
	}
}

// routeProbe boots a fresh two-instance CostWeighted fleet sharing cal,
// parks one water build on instance 0 and one hydrogen-chain build on
// instance 1 (each held in-flight by a worker gate), then routes a probe
// job and reports which instance took it. The held jobs' in-flight
// predicted costs are the only load signal, so the winner is exactly the
// instance whose parked job the calibrated model prices cheaper.
func routeProbe(t *testing.T, cal *steal.Calibrator) int {
	t.Helper()
	gate := make(chan struct{})
	c := mustCluster(t, Options{
		Instances:  2,
		Policy:     CostWeighted,
		Calibrator: cal,
		Server: server.Config{
			Workers: 1, CacheBytes: -1,
			BeforeRun: func(kind string) { <-gate },
		},
	})
	defer c.Close(context.Background())

	water := server.JobRequest{Kind: server.KindBuildJK, System: "water"}
	chain := server.JobRequest{Kind: server.KindBuildJK, XYZ: hChainXYZ(10)}
	held := make(chan error, 2)
	go func() {
		_, err := c.Instances()[0].Client.Submit(context.Background(), water)
		held <- err
	}()
	go func() {
		_, err := c.Instances()[1].Client.Submit(context.Background(), chain)
		held <- err
	}()
	waitFor(t, "held jobs in flight", func() bool {
		return c.Instances()[0].Srv.InflightCostNS() > 0 &&
			c.Instances()[1].Srv.InflightCostNS() > 0
	})

	probeDone := make(chan int, 1)
	go func() {
		_, idx, err := c.Submit(context.Background(), server.JobRequest{
			Kind: server.KindScreen, System: "he",
		})
		if err != nil {
			t.Errorf("probe: %v", err)
			idx = -1
		}
		probeDone <- idx
	}()
	// Only release the workers once the probe is routed and queued on its
	// chosen instance — the decision must see the parked loads.
	waitFor(t, "probe queued", func() bool {
		return c.Instances()[0].Srv.QueueDepth()+c.Instances()[1].Srv.QueueDepth() == 1
	})
	close(gate)
	idx := <-probeDone
	for i := 0; i < 2; i++ {
		if err := <-held; err != nil {
			t.Fatalf("held job: %v", err)
		}
	}
	return idx
}

// TestFleetRoutingShiftsAfterCalibration is the satellite gate: the same
// fleet state routes the same probe differently before and after
// calibration. Raw model: the parked water build (1.6e6 cost-model ns)
// looks cheaper than the parked H10 build (5.6e6), so the probe joins
// instance 0. With 40x p-class factors — "p blocks run much slower than
// the raw model claims" — water's in-flight price inflates ~26x while
// the pure-s chain is untouched, and the identical probe flips to
// instance 1.
func TestFleetRoutingShiftsAfterCalibration(t *testing.T) {
	// Preconditions the shift rests on, pinned against the cost model.
	water := server.JobRequest{Kind: server.KindBuildJK, System: "water"}
	chain := server.JobRequest{Kind: server.KindBuildJK, XYZ: hChainXYZ(10)}
	_, waterRaw, err := server.PriceRequest(water, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, chainRaw, err := server.PriceRequest(chain, 1)
	if err != nil {
		t.Fatal(err)
	}
	if waterRaw >= chainRaw {
		t.Fatalf("precondition: raw water %g must undercut raw chain %g", waterRaw, chainRaw)
	}
	tuned := steal.NewCalibrator(0)
	for _, cls := range pClasses {
		tuned.SetFactor(cls, 40)
	}
	_, waterCal, err := server.PriceRequestCalibrated(water, 1, tuned)
	if err != nil {
		t.Fatal(err)
	}
	if waterCal <= chainRaw {
		t.Fatalf("precondition: calibrated water %g must overtake the chain %g", waterCal, chainRaw)
	}

	if idx := routeProbe(t, steal.NewCalibrator(0)); idx != 0 {
		t.Fatalf("uncalibrated probe routed to %d, want 0 (water looks cheap)", idx)
	}
	if idx := routeProbe(t, tuned); idx != 1 {
		t.Fatalf("calibrated probe routed to %d, want 1 (water's p blocks repriced)", idx)
	}
}
