// Package fleet grows hfxd from a single process into a cluster: N
// instances, each a full server.Server (bounded cost-priced admission
// queue, worker pool, LRU result cache) listening on its own loopback
// port, behind a router with pluggable policies. The router leans on the
// same observation the admission queue does — the paper's claim that HFX
// job cost is *predictable* from the screened pair list — so an instance
// can be scored by the predicted work ahead of it, not just its queue
// depth, and a job can be priced before any instance accepts it.
package fleet

import (
	"hash/fnv"
	"strconv"
)

// Policy selects the routing strategy of a Cluster.
type Policy int

const (
	// RoundRobin deals jobs cyclically over the non-draining instances,
	// ignoring load and cache state — the ablation baseline.
	RoundRobin Policy = iota
	// LeastLoaded routes to the instance with the least predicted work
	// outstanding (queued + in-flight cost-model ns), ignoring capacity.
	LeastLoaded
	// CostWeighted routes to the instance with the earliest predicted
	// completion for this job: (queued + in-flight predicted cost) /
	// workers + the job's own sched.PredictMakespan price. On a
	// heterogeneous fleet this prefers big instances that drain faster
	// even when their raw backlog is larger.
	CostWeighted
	// CacheAffinity routes a job to the instance already holding its
	// canonical result key (a guaranteed free hit), else to the job's
	// stable rendezvous-hash home so repeats warm one instance's caches
	// and builders; an overloaded home falls back to CostWeighted.
	CacheAffinity
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case CostWeighted:
		return "cost-weighted"
	case CacheAffinity:
		return "cache-affinity"
	default:
		return "Policy(" + strconv.Itoa(int(p)) + ")"
	}
}

// Policies lists every routing policy in presentation order.
func Policies() []Policy {
	return []Policy{RoundRobin, LeastLoaded, CostWeighted, CacheAffinity}
}

// PolicyByName maps a policy name to its value.
func PolicyByName(name string) (Policy, bool) {
	for _, p := range Policies() {
		if p.String() == name {
			return p, true
		}
	}
	return 0, false
}

// Load is one instance's routing-relevant state snapshot: the live
// signals the server exports (queue depth, queued and in-flight
// predicted cost, worker count, drain flag) plus whether its result
// cache holds the job's canonical key.
type Load struct {
	Depth      int
	QueuedNS   float64
	InflightNS float64
	Workers    int
	Draining   bool
	HoldsKey   bool
}

// outstanding is the predicted work an instance has committed to.
func (l Load) outstanding() float64 { return l.QueuedNS + l.InflightNS }

// eta is the predicted completion time of a job of cost predictedNS
// admitted to this instance now.
func (l Load) eta(predictedNS float64) float64 {
	w := l.Workers
	if w < 1 {
		w = 1
	}
	return l.outstanding()/float64(w) + predictedNS
}

// decide picks the target instance for one submission attempt, or -1
// when no instance is eligible (every one draining or excluded). It is a
// pure function of its snapshot, which is what makes every policy
// deterministic — and unit-testable — for a given cluster state:
// cursor drives RoundRobin, key/predictedNS drive the cost- and
// cache-aware policies, and excluded marks instances this failover sweep
// has already rejected.
func decide(p Policy, loads []Load, key string, predictedNS float64, cursor int, overloadDepth int, excluded func(int) bool) int {
	n := len(loads)
	eligible := func(i int) bool { return !loads[i].Draining && !excluded(i) }
	switch p {
	case RoundRobin:
		for k := 0; k < n; k++ {
			i := ((cursor+k)%n + n) % n
			if eligible(i) {
				return i
			}
		}
		return -1
	case LeastLoaded:
		return argmin(n, eligible, func(i int) float64 { return loads[i].outstanding() },
			func(i int) float64 { return float64(loads[i].Depth) })
	case CostWeighted:
		return argmin(n, eligible, func(i int) float64 { return loads[i].eta(predictedNS) },
			func(i int) float64 { return loads[i].outstanding() })
	case CacheAffinity:
		// A resident result key answers without queueing or builder work:
		// route there regardless of load.
		for i := 0; i < n; i++ {
			if eligible(i) && loads[i].HoldsKey {
				return i
			}
		}
		// Otherwise the key's stable home, so repeats of this key warm one
		// instance's result cache and builder instead of all of them.
		home := rendezvous(key, n, eligible)
		if home >= 0 && loads[home].Depth < overloadDepth {
			return home
		}
		// Overloaded (or no) home: pay the affinity loss, go for the
		// earliest completion.
		return argmin(n, eligible, func(i int) float64 { return loads[i].eta(predictedNS) },
			func(i int) float64 { return loads[i].outstanding() })
	default:
		return -1
	}
}

// argmin returns the eligible index minimising score, ties broken by
// tiebreak and then by index — fully deterministic.
func argmin(n int, eligible func(int) bool, score, tiebreak func(int) float64) int {
	best := -1
	for i := 0; i < n; i++ {
		if !eligible(i) {
			continue
		}
		if best < 0 || score(i) < score(best) ||
			(score(i) == score(best) && tiebreak(i) < tiebreak(best)) {
			best = i
		}
	}
	return best
}

// rendezvous returns the highest-random-weight home instance for a key
// among the eligible ones: every router maps the key to the same home
// without coordination, and removing an instance only remaps the keys
// it owned.
func rendezvous(key string, n int, eligible func(int) bool) int {
	best, bestScore := -1, uint64(0)
	for i := 0; i < n; i++ {
		if !eligible(i) {
			continue
		}
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{'#', byte(i), byte(i >> 8)})
		if s := h.Sum64(); best < 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}
