package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"hfxmd/internal/server"
)

// --- decide(): the policy layer is a pure function, so every routing
// rule is pinned against literal load snapshots.

func noneExcluded(int) bool { return false }

func TestDecideRoundRobinSkipsDraining(t *testing.T) {
	loads := []Load{{}, {Draining: true}, {}}
	got := make([]int, 0, 6)
	for cursor := 0; cursor < 6; cursor++ {
		got = append(got, decide(RoundRobin, loads, "", 0, cursor, 2, noneExcluded))
	}
	want := []int{0, 2, 2, 0, 2, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-robin order %v, want %v", got, want)
	}
	all := []Load{{Draining: true}, {Draining: true}}
	if i := decide(RoundRobin, all, "", 0, 0, 2, noneExcluded); i != -1 {
		t.Fatalf("all-draining fleet routed to %d, want -1", i)
	}
}

// TestDecideLeastLoadedVsCostWeighted is the heterogeneous-fleet case
// the two load policies are designed to disagree on: instance 0 has
// twice the backlog but four times the workers, so it drains sooner.
func TestDecideLeastLoadedVsCostWeighted(t *testing.T) {
	loads := []Load{
		{QueuedNS: 8e9, Workers: 4},
		{QueuedNS: 4e9, Workers: 1},
	}
	if i := decide(LeastLoaded, loads, "", 1e8, 0, 2, noneExcluded); i != 1 {
		t.Fatalf("least-loaded picked %d, want 1 (smaller raw backlog)", i)
	}
	if i := decide(CostWeighted, loads, "", 1e8, 0, 2, noneExcluded); i != 0 {
		t.Fatalf("cost-weighted picked %d, want 0 (8e9/4 < 4e9/1)", i)
	}
}

func TestDecideLeastLoadedCountsInflight(t *testing.T) {
	loads := []Load{
		{QueuedNS: 1e9, InflightNS: 5e9, Workers: 1},
		{QueuedNS: 2e9, Workers: 1},
	}
	if i := decide(LeastLoaded, loads, "", 0, 0, 2, noneExcluded); i != 1 {
		t.Fatalf("least-loaded ignored in-flight work, picked %d", i)
	}
}

func TestDecideCacheAffinity(t *testing.T) {
	key := "screen|h2|sto-3g"
	home := rendezvous(key, 3, func(int) bool { return true })
	if home < 0 || home > 2 {
		t.Fatalf("rendezvous home %d out of range", home)
	}
	// Stable: same key, same home, every time.
	for k := 0; k < 4; k++ {
		if h := rendezvous(key, 3, func(int) bool { return true }); h != home {
			t.Fatalf("rendezvous unstable: %d then %d", home, h)
		}
	}

	// A resident key beats the rendezvous home, regardless of load.
	holder := (home + 1) % 3
	loads := []Load{{Workers: 1}, {Workers: 1}, {Workers: 1}}
	loads[holder].HoldsKey = true
	loads[holder].QueuedNS = 1e12
	if i := decide(CacheAffinity, loads, key, 0, 0, 2, noneExcluded); i != holder {
		t.Fatalf("affinity ignored holder: picked %d, want %d", i, holder)
	}

	// No holder: the rendezvous home, while it is not overloaded.
	cold := []Load{{Workers: 1}, {Workers: 1}, {Workers: 1}}
	if i := decide(CacheAffinity, cold, key, 0, 0, 2, noneExcluded); i != home {
		t.Fatalf("cold fleet routed to %d, want home %d", i, home)
	}

	// Overloaded home: falls back to earliest completion.
	cold[home].Depth = 2 // == overloadDepth
	cold[home].QueuedNS = 9e9
	i := decide(CacheAffinity, cold, key, 0, 0, 2, noneExcluded)
	if i == home {
		t.Fatal("affinity kept routing to an overloaded home")
	}
	// Draining home: keys remap instead of failing.
	cold[home].Depth, cold[home].QueuedNS = 0, 0
	cold[home].Draining = true
	if i := decide(CacheAffinity, cold, key, 0, 0, 2, noneExcluded); i == home || i < 0 {
		t.Fatalf("draining home still routed: %d", i)
	}
}

func TestPolicyNamesRoundTrip(t *testing.T) {
	for _, p := range Policies() {
		got, ok := PolicyByName(p.String())
		if !ok || got != p {
			t.Fatalf("PolicyByName(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := PolicyByName("nope"); ok {
		t.Fatal("PolicyByName accepted an unknown name")
	}
}

// --- Cluster end-to-end: real servers on loopback ports.

func screenReq(system string) server.JobRequest {
	return server.JobRequest{Kind: server.KindScreen, System: system}
}

func mustCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := c.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return c
}

func TestClusterRoundRobinSpreadsJobs(t *testing.T) {
	c := mustCluster(t, Options{
		Instances: 3, Policy: RoundRobin,
		Server: server.Config{Workers: 1, QueueCap: 8},
	})
	systems := []string{"h2", "he", "lih", "water", "lif", "ch4"}
	ctx := context.Background()
	for _, sys := range systems {
		res, _, err := c.Submit(ctx, screenReq(sys))
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.State != server.StateDone {
			t.Fatalf("%s: state %s: %s", sys, res.State, res.Error)
		}
	}
	for i := 0; i < 3; i++ {
		if got := c.Registry().Counter(fmt.Sprintf("fleet.inst%d.routed", i)).Value(); got != 2 {
			t.Fatalf("inst%d routed %d jobs, want 2", i, got)
		}
	}
	if got := c.Registry().Counter("fleet.submitted").Value(); got != 6 {
		t.Fatalf("fleet.submitted = %d, want 6", got)
	}
}

// TestClusterCacheAffinityPinsRepeats submits the same job six times:
// exactly one miss (executed at the key's home) and five free hits from
// the same instance, with every other instance untouched.
func TestClusterCacheAffinityPinsRepeats(t *testing.T) {
	c := mustCluster(t, Options{
		Instances: 3, Policy: CacheAffinity,
		Server: server.Config{Workers: 1, QueueCap: 8},
	})
	ctx := context.Background()
	var servedBy int
	for k := 0; k < 6; k++ {
		res, i, err := c.Submit(ctx, screenReq("h2"))
		if err != nil {
			t.Fatal(err)
		}
		if k == 0 {
			servedBy = i
			if res.CacheHit {
				t.Fatal("first submission hit a cold cache")
			}
			continue
		}
		if i != servedBy {
			t.Fatalf("repeat %d routed to inst%d, want home inst%d", k, i, servedBy)
		}
		if !res.CacheHit {
			t.Fatalf("repeat %d missed the warm cache", k)
		}
	}
	if got := c.Registry().Counter("fleet.cache_hits").Value(); got != 5 {
		t.Fatalf("fleet.cache_hits = %d, want 5", got)
	}
	for i := 0; i < 3; i++ {
		got := c.Registry().Counter(fmt.Sprintf("fleet.inst%d.routed", i)).Value()
		want := int64(0)
		if i == servedBy {
			want = 6
		}
		if got != want {
			t.Fatalf("inst%d routed %d, want %d", i, got, want)
		}
	}
}

// TestClusterResultsBitwiseIdenticalAcrossPolicies pins the acceptance
// criterion that routing never changes answers: the same job through
// every policy yields an identical result payload.
func TestClusterResultsBitwiseIdenticalAcrossPolicies(t *testing.T) {
	ctx := context.Background()
	var ref *server.ScreenSummary
	for _, p := range Policies() {
		c := mustCluster(t, Options{
			Instances: 2, Policy: p,
			Server: server.Config{Workers: 1, QueueCap: 8},
		})
		res, _, err := c.Submit(ctx, screenReq("lih"))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Screen == nil {
			t.Fatalf("%v: no screen summary", p)
		}
		if ref == nil {
			ref = res.Screen
			continue
		}
		if !reflect.DeepEqual(*ref, *res.Screen) {
			t.Fatalf("%v diverged:\n  ref %+v\n  got %+v", p, *ref, *res.Screen)
		}
	}
}

// TestClusterFailsOverOnDrainingError exercises the stale-view path: the
// router's snapshot says instance 0 is healthy, but its submit answers a
// typed 503. A fake always-draining backend stands in for instance 0's
// client so the race is deterministic.
func TestClusterFailsOverOnDrainingError(t *testing.T) {
	c := mustCluster(t, Options{
		Instances: 2, Policy: RoundRobin,
		Server: server.Config{Workers: 1, QueueCap: 8},
	})
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"error": "server is draining"})
	}))
	defer fake.Close()
	c.Instances()[0].Client = server.NewClient(fake.URL)

	res, i, err := c.Submit(context.Background(), screenReq("h2"))
	if err != nil {
		t.Fatalf("failover did not save the job: %v", err)
	}
	if i != 1 {
		t.Fatalf("job served by inst%d, want failover to inst1", i)
	}
	if res.State != server.StateDone {
		t.Fatalf("state %s: %s", res.State, res.Error)
	}
	if got := c.Registry().Counter("fleet.failover_draining").Value(); got != 1 {
		t.Fatalf("fleet.failover_draining = %d, want 1", got)
	}
}

// TestClusterDrainInstanceReroutes drains a live instance and checks the
// router stops considering it: every subsequent job lands elsewhere.
func TestClusterDrainInstanceReroutes(t *testing.T) {
	c := mustCluster(t, Options{
		Instances: 2, Policy: RoundRobin,
		Server: server.Config{Workers: 1, QueueCap: 8},
	})
	c.DrainInstance(0)
	ctx := context.Background()
	for k, sys := range []string{"h2", "he", "lih"} {
		_, i, err := c.Submit(ctx, screenReq(sys))
		if err != nil {
			t.Fatalf("job %d: %v", k, err)
		}
		if i != 1 {
			t.Fatalf("job %d routed to drained inst%d", k, i)
		}
	}
}

// TestClusterSweepsWaitOutBusyFleet saturates a 1-instance fleet (worker
// held, queue full) and checks Submit retries across sweeps instead of
// surfacing the 429.
func TestClusterSweepsWaitOutBusyFleet(t *testing.T) {
	hold := make(chan struct{})
	c := mustCluster(t, Options{
		Instances: 1, Policy: RoundRobin,
		MaxSweeps: 200, BackoffScale: 0.005, MaxBackoff: 20 * time.Millisecond,
		Server: server.Config{
			Workers: 1, QueueCap: 1,
			BeforeRun: func(string) { <-hold },
		},
	})
	ctx := context.Background()
	bg := make(chan error, 2)
	go func() { _, _, err := c.Submit(ctx, screenReq("h2")); bg <- err }()
	// Screen jobs price at 0 predicted ns, so "worker holds the first
	// job" shows as submitted-and-dequeued, not as in-flight cost.
	waitFor(t, "first job picked up", func() bool {
		s := c.Instances()[0].Srv
		return s.Metrics().Counter("jobs.submitted").Value() >= 1 && s.QueueDepth() == 0
	})
	go func() { _, _, err := c.Submit(ctx, screenReq("he")); bg <- err }()
	waitFor(t, "second job queued", func() bool { return c.Instances()[0].Srv.QueueDepth() == 1 })

	time.AfterFunc(50*time.Millisecond, func() { close(hold) })
	res, _, err := c.Submit(ctx, screenReq("lih"))
	if err != nil {
		t.Fatalf("submit never got through the busy fleet: %v", err)
	}
	if res.State != server.StateDone {
		t.Fatalf("state %s: %s", res.State, res.Error)
	}
	if got := c.Registry().Counter("fleet.rejected_busy").Value(); got < 1 {
		t.Fatal("no busy rejection recorded, test never exercised the sweep")
	}
	if got := c.Registry().Counter("fleet.retry_sweeps").Value(); got < 1 {
		t.Fatal("no retry sweep recorded")
	}
	for k := 0; k < 2; k++ {
		if err := <-bg; err != nil {
			t.Fatalf("background job: %v", err)
		}
	}
}

func waitFor(t *testing.T, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition never became true: %s", msg)
}

// TestClusterSharedStoreCrossInstanceHits pins the fleet-wide store:
// with Options.StoreDir, a result computed by one instance is a cache
// hit on every other instance, and a freshly booted cluster over the
// same directory answers from the disk tier.
func TestClusterSharedStoreCrossInstanceHits(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	c := mustCluster(t, Options{
		Instances: 2, Policy: RoundRobin, StoreDir: dir,
		Server: server.Config{Workers: 1, QueueCap: 8},
	})
	if c.Store() == nil {
		t.Fatal("cluster did not open the shared store")
	}
	r1, i1, err := c.Submit(ctx, screenReq("h2"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.State != server.StateDone || r1.CacheHit {
		t.Fatalf("first submission: %+v", r1)
	}
	// Round-robin sends the repeat to the OTHER instance, which must
	// still hit: the store is shared, not per-instance.
	r2, i2, err := c.Submit(ctx, screenReq("h2"))
	if err != nil {
		t.Fatal(err)
	}
	if i2 == i1 {
		t.Fatalf("round-robin repeated instance %d; cannot prove sharing", i2)
	}
	if !r2.CacheHit {
		t.Fatal("second instance missed the shared store")
	}
	if got := c.Registry().Counter("fleet.cache_hits").Value(); got != 1 {
		t.Fatalf("fleet.cache_hits = %d, want 1", got)
	}

	// Restart the whole fleet over the same directory: disk-warm hit.
	closeCtx, cancel := context.WithTimeout(ctx, 20*time.Second)
	defer cancel()
	if err := c.Close(closeCtx); err != nil {
		t.Fatal(err)
	}
	c2 := mustCluster(t, Options{
		Instances: 2, Policy: RoundRobin, StoreDir: dir,
		Server: server.Config{Workers: 1, QueueCap: 8},
	})
	r3, _, err := c2.Submit(ctx, screenReq("h2"))
	if err != nil {
		t.Fatal(err)
	}
	if !r3.CacheHit {
		t.Fatal("rebooted fleet missed the disk tier")
	}
}
