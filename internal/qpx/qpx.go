// Package qpx emulates the Blue Gene/Q QPX short-vector unit: a 4-wide
// double-precision SIMD datapath. The paper's integral kernels gather four
// primitive quartets at a time, evaluate the Boys function and Hermite
// recurrences across all four lanes, and scatter the results back. This
// package reproduces exactly that restructuring in portable Go:
//
//   - Vec4 value type with lane-parallel arithmetic (the Go compiler
//     auto-vectorises fixed-size array loops on amd64, so the structure is
//     faithful even though no intrinsics are used);
//   - batched Boys evaluation (the hot kernel of HFX);
//   - lane-utilisation accounting, because screening produces ragged
//     batches: the final batch of a screened quartet list is usually
//     partially full, and the paper's vector efficiency depends on the
//     fraction of useful lanes.
package qpx

import (
	"math"
	"sync/atomic"

	"hfxmd/internal/boys"
)

// Width is the QPX vector width in doubles.
const Width = 4

// Vec4 is a 4-lane double-precision vector.
type Vec4 [Width]float64

// Splat returns a vector with all lanes equal to x.
func Splat(x float64) Vec4 { return Vec4{x, x, x, x} }

// Add returns a+b lanewise.
func (a Vec4) Add(b Vec4) Vec4 {
	return Vec4{a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]}
}

// Sub returns a-b lanewise.
func (a Vec4) Sub(b Vec4) Vec4 {
	return Vec4{a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3]}
}

// Mul returns a*b lanewise.
func (a Vec4) Mul(b Vec4) Vec4 {
	return Vec4{a[0] * b[0], a[1] * b[1], a[2] * b[2], a[3] * b[3]}
}

// Div returns a/b lanewise.
func (a Vec4) Div(b Vec4) Vec4 {
	return Vec4{a[0] / b[0], a[1] / b[1], a[2] / b[2], a[3] / b[3]}
}

// FMA returns a*b+c lanewise (fused in spirit; Go guarantees correct
// rounding per operation, which is sufficient for our accuracy targets).
func FMA(a, b, c Vec4) Vec4 {
	return Vec4{
		a[0]*b[0] + c[0],
		a[1]*b[1] + c[1],
		a[2]*b[2] + c[2],
		a[3]*b[3] + c[3],
	}
}

// Scale returns s*a lanewise.
func (a Vec4) Scale(s float64) Vec4 {
	return Vec4{s * a[0], s * a[1], s * a[2], s * a[3]}
}

// Exp returns e^a lanewise.
func (a Vec4) Exp() Vec4 {
	return Vec4{math.Exp(a[0]), math.Exp(a[1]), math.Exp(a[2]), math.Exp(a[3])}
}

// Sqrt returns √a lanewise.
func (a Vec4) Sqrt() Vec4 {
	return Vec4{math.Sqrt(a[0]), math.Sqrt(a[1]), math.Sqrt(a[2]), math.Sqrt(a[3])}
}

// Recip returns 1/a lanewise.
func (a Vec4) Recip() Vec4 {
	return Vec4{1 / a[0], 1 / a[1], 1 / a[2], 1 / a[3]}
}

// HSum returns the horizontal sum of the lanes.
func (a Vec4) HSum() float64 { return a[0] + a[1] + a[2] + a[3] }

// Max returns the lanewise maximum of a and b.
func (a Vec4) Max(b Vec4) Vec4 {
	return Vec4{
		math.Max(a[0], b[0]), math.Max(a[1], b[1]),
		math.Max(a[2], b[2]), math.Max(a[3], b[3]),
	}
}

// BoysBatch evaluates the Boys function orders 0..m for four T arguments
// at once, writing out[k][lane] = F_k(t[lane]). out must have length m+1.
// This is the vectorised hot kernel: the table lookup and Taylor expansion
// are performed lane-parallel, mirroring the QPX implementation.
func BoysBatch(m int, t Vec4, out []Vec4) {
	if m > boys.MaxOrder {
		panic("qpx: order exceeds boys.MaxOrder")
	}
	// Lane-parallel fast path is only uniform when all four T fall in the
	// tabulated range; mixed batches take the scalar path per lane, which
	// is exactly the lane-divergence penalty the real hardware pays.
	uniform := true
	for _, x := range t {
		if x >= boys.TableTMax || x < 0 {
			uniform = false
			break
		}
	}
	if !uniform {
		var buf [boys.MaxOrder + 1]float64
		for lane := 0; lane < Width; lane++ {
			boys.Eval(m, t[lane], buf[:m+1])
			for k := 0; k <= m; k++ {
				out[k][lane] = buf[k]
			}
		}
		return
	}
	// Uniform fast path: every lane lies in the tabulated range, so the
	// nearest-grid-point lookup, the downward Taylor expansion of order m
	// and the downward recursion to order 0 all proceed lane-parallel —
	// the gather/SIMD/scatter structure of the QPX kernel. The per-lane
	// arithmetic matches boys.Eval step for step.
	var rows [Width]*[boys.MaxOrder + boys.TaylorTerms + 1]float64
	var md Vec4 // −δ per lane
	for lane, x := range t {
		gi := int(x/boys.TableStep + 0.5)
		rows[lane] = boys.TableRow(gi)
		md[lane] = -(x - float64(gi)*boys.TableStep)
	}
	pow := Splat(1)
	var fm Vec4
	for k := 0; k < boys.TaylorTerms; k++ {
		ck := boys.TaylorCoeff(k)
		var rv Vec4
		for lane := 0; lane < Width; lane++ {
			rv[lane] = rows[lane][m+k]
		}
		fm = FMA(rv.Mul(pow), Splat(ck), fm)
		pow = pow.Mul(md)
	}
	out[m] = fm
	if m == 0 {
		return
	}
	et := t.Scale(-1).Exp()
	t2 := t.Add(t)
	for k := m; k > 0; k-- {
		out[k-1] = FMA(t2, out[k], et).Div(Splat(float64(2*k - 1)))
	}
}

// Stats accumulates lane-utilisation counters across batched kernels. It
// is safe for concurrent use.
type Stats struct {
	batches     atomic.Int64
	activeLanes atomic.Int64
}

// Record notes a batch with n active lanes (0 < n ≤ Width).
func (s *Stats) Record(active int) {
	if active < 0 {
		active = 0
	}
	if active > Width {
		active = Width
	}
	s.batches.Add(1)
	s.activeLanes.Add(int64(active))
}

// Batches returns the number of batches recorded.
func (s *Stats) Batches() int64 { return s.batches.Load() }

// Utilization returns the mean fraction of useful lanes, in [0,1].
func (s *Stats) Utilization() float64 {
	b := s.batches.Load()
	if b == 0 {
		return 0
	}
	return float64(s.activeLanes.Load()) / float64(b*Width)
}

// Reset zeroes the counters.
func (s *Stats) Reset() {
	s.batches.Store(0)
	s.activeLanes.Store(0)
}
