package qpx

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"hfxmd/internal/boys"
)

func TestVecArithmetic(t *testing.T) {
	a := Vec4{1, 2, 3, 4}
	b := Vec4{5, 6, 7, 8}
	if a.Add(b) != (Vec4{6, 8, 10, 12}) {
		t.Fatal("Add")
	}
	if b.Sub(a) != (Vec4{4, 4, 4, 4}) {
		t.Fatal("Sub")
	}
	if a.Mul(b) != (Vec4{5, 12, 21, 32}) {
		t.Fatal("Mul")
	}
	if b.Div(a) != (Vec4{5, 3, 7.0 / 3, 2}) {
		t.Fatal("Div")
	}
	if FMA(a, b, Splat(1)) != (Vec4{6, 13, 22, 33}) {
		t.Fatal("FMA")
	}
	if a.Scale(2) != (Vec4{2, 4, 6, 8}) {
		t.Fatal("Scale")
	}
	if a.HSum() != 10 {
		t.Fatal("HSum")
	}
	if a.Max(Vec4{4, 1, 5, 0}) != (Vec4{4, 2, 5, 4}) {
		t.Fatal("Max")
	}
}

func TestVecMath(t *testing.T) {
	v := Vec4{0, 1, 2, -1}
	e := v.Exp()
	for i, x := range v {
		if math.Abs(e[i]-math.Exp(x)) > 1e-15*math.Exp(x) {
			t.Fatalf("Exp lane %d", i)
		}
	}
	s := Vec4{1, 4, 9, 16}.Sqrt()
	if s != (Vec4{1, 2, 3, 4}) {
		t.Fatal("Sqrt")
	}
	r := Vec4{1, 2, 4, 8}.Recip()
	if r != (Vec4{1, 0.5, 0.25, 0.125}) {
		t.Fatal("Recip")
	}
}

func TestBoysBatchMatchesScalar(t *testing.T) {
	const m = 8
	out := make([]Vec4, m+1)
	ref := make([]float64, m+1)
	ts := []Vec4{
		{0.1, 1.5, 7.2, 29.9},  // all tabulated
		{0.0, 35.9, 36.1, 120}, // mixed tabulated/asymptotic
		{50, 60, 70, 80},       // all asymptotic
	}
	for _, tv := range ts {
		BoysBatch(m, tv, out)
		for lane := 0; lane < Width; lane++ {
			boys.Eval(m, tv[lane], ref)
			for k := 0; k <= m; k++ {
				if math.Abs(out[k][lane]-ref[k]) > 1e-14 {
					t.Fatalf("T=%g lane=%d k=%d: batch %.16g scalar %.16g",
						tv[lane], lane, k, out[k][lane], ref[k])
				}
			}
		}
	}
}

func TestBoysBatchProperty(t *testing.T) {
	const m = 4
	out := make([]Vec4, m+1)
	ref := make([]float64, m+1)
	f := func(a, b, c, d float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(math.Abs(x), 90)
		}
		tv := Vec4{clamp(a), clamp(b), clamp(c), clamp(d)}
		BoysBatch(m, tv, out)
		for lane := 0; lane < Width; lane++ {
			boys.Eval(m, tv[lane], ref)
			for k := 0; k <= m; k++ {
				if math.Abs(out[k][lane]-ref[k]) > 1e-13 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBoysBatchUniformFastPath drives the lane-parallel table/Taylor
// branch specifically: every lane inside the tabulated range, across the
// full span of supported orders and grid offsets, cross-checked against
// the scalar boys.Eval to 1e-12 (the actual agreement is much tighter —
// the lane arithmetic mirrors the scalar association step for step).
func TestBoysBatchUniformFastPath(t *testing.T) {
	out := make([]Vec4, boys.MaxOrder+1)
	ref := make([]float64, boys.MaxOrder+1)
	ts := []Vec4{
		{0, 0.024, 0.025, 0.026},      // near grid points and midpoints
		{0.3, 1.7, 8.9, 14.2},         // generic spread
		{11.111, 22.222, 33.333, 3.5}, // large tabulated arguments
		{35.94, 35.95, 35.96, 35.99},  // just below the table edge
		{0.7, 0.7, 0.7, 0.7},          // identical lanes
	}
	for _, m := range []int{0, 1, 4, 8, boys.MaxOrder} {
		for _, tv := range ts {
			for _, x := range tv {
				if x >= boys.TableTMax || x < 0 {
					t.Fatalf("test vector %v leaves the tabulated range", tv)
				}
			}
			BoysBatch(m, tv, out)
			for lane := 0; lane < Width; lane++ {
				boys.Eval(m, tv[lane], ref)
				for k := 0; k <= m; k++ {
					if d := math.Abs(out[k][lane] - ref[k]); d > 1e-12 {
						t.Fatalf("m=%d T=%g lane=%d k=%d: batch %.16g scalar %.16g (diff %g)",
							m, tv[lane], lane, k, out[k][lane], ref[k], d)
					}
				}
			}
		}
	}
}

func TestBoysBatchOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for order beyond boys.MaxOrder")
		}
	}()
	out := make([]Vec4, boys.MaxOrder+2)
	BoysBatch(boys.MaxOrder+1, Splat(1), out)
}

func TestStats(t *testing.T) {
	var s Stats
	s.Record(4)
	s.Record(2)
	if s.Batches() != 2 {
		t.Fatalf("batches %d", s.Batches())
	}
	if got := s.Utilization(); math.Abs(got-0.75) > 1e-15 {
		t.Fatalf("utilization %g", got)
	}
	s.Record(-3) // clamped to 0
	s.Record(9)  // clamped to 4
	if got := s.Utilization(); math.Abs(got-10.0/16.0) > 1e-15 {
		t.Fatalf("clamped utilization %g", got)
	}
	s.Reset()
	if s.Utilization() != 0 || s.Batches() != 0 {
		t.Fatal("reset failed")
	}
}

func TestStatsConcurrent(t *testing.T) {
	var s Stats
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Record(3)
			}
		}()
	}
	wg.Wait()
	if s.Batches() != 8000 {
		t.Fatalf("batches %d", s.Batches())
	}
	if math.Abs(s.Utilization()-0.75) > 1e-15 {
		t.Fatalf("utilization %g", s.Utilization())
	}
}

func BenchmarkBoysScalar4(b *testing.B) {
	out := make([]float64, 9)
	ts := [4]float64{0.3, 1.7, 8.9, 14.2}
	for i := 0; i < b.N; i++ {
		for _, T := range ts {
			boys.Eval(8, T, out)
		}
	}
}

func BenchmarkBoysBatch(b *testing.B) {
	out := make([]Vec4, 9)
	tv := Vec4{0.3, 1.7, 8.9, 14.2}
	for i := 0; i < b.N; i++ {
		BoysBatch(8, tv, out)
	}
}
