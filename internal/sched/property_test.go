package sched

import (
	"math"
	"math/rand"
	"testing"
)

// pathological cost distributions for the Balance property tests.
func propertyDistributions() map[string][]float64 {
	rng := rand.New(rand.NewSource(17))
	giant := make([]float64, 257)
	for i := range giant {
		giant[i] = 1
	}
	giant[40] = 1e6 // one task dominates the total

	powerlaw := make([]float64, 500)
	for i := range powerlaw {
		powerlaw[i] = math.Pow(rng.Float64(), -1.5) // heavy tail, alpha < 2
	}

	equal := make([]float64, 384)
	for i := range equal {
		equal[i] = 7
	}

	zerotail := make([]float64, 300)
	for i := range zerotail {
		if i < 100 {
			zerotail[i] = float64(1 + i%13)
		} // 200 zero-cost tasks: screened-out granules must still place
	}

	return map[string][]float64{
		"one-giant": giant,
		"power-law": powerlaw,
		"all-equal": equal,
		"zero-tail": zerotail,
	}
}

// TestBalanceValidityOnPathologicalCosts checks the structural contract
// of every algorithm on every distribution: each task placed exactly
// once, per-worker loads consistent with the cost array, worker count as
// requested, and the makespan never below the theoretical lower bound
// max(total/n, max task).
func TestBalanceValidityOnPathologicalCosts(t *testing.T) {
	algs := []Algorithm{Block, RoundRobin, LPT, Steal}
	for name, costs := range propertyDistributions() {
		var total, maxTask float64
		for _, c := range costs {
			total += c
			if c > maxTask {
				maxTask = c
			}
		}
		for _, alg := range algs {
			for _, n := range []int{1, 2, 3, 7, 16, 64, 1024} {
				asn := Balance(alg, costs, n)
				if asn.NWorkers() != n {
					t.Fatalf("%s/%v n=%d: got %d workers", name, alg, n, asn.NWorkers())
				}
				seen := make([]int, len(costs))
				for w, tasks := range asn.Workers {
					var load float64
					for _, ti := range tasks {
						if ti < 0 || ti >= len(costs) {
							t.Fatalf("%s/%v n=%d: task index %d out of range", name, alg, n, ti)
						}
						seen[ti]++
						load += costs[ti]
					}
					if math.Abs(load-asn.Loads[w]) > 1e-6*(1+load) {
						t.Fatalf("%s/%v n=%d: worker %d load %g, recomputed %g",
							name, alg, n, w, asn.Loads[w], load)
					}
				}
				for ti, cnt := range seen {
					if cnt != 1 {
						t.Fatalf("%s/%v n=%d: task %d assigned %d times", name, alg, n, ti, cnt)
					}
				}
				lower := total / float64(n)
				if maxTask > lower {
					lower = maxTask
				}
				if asn.MaxLoad() < lower-1e-6*(1+lower) {
					t.Fatalf("%s/%v n=%d: makespan %g below lower bound %g",
						name, alg, n, asn.MaxLoad(), lower)
				}
			}
		}
	}
}

// TestBalanceMakespanMonotoneInWorkers pins that for the cost-aware
// algorithms (LPT and the steal simulation), granting more worker slots
// never worsens the predicted makespan on any of the pathological
// distributions — the property the over-decomposed steal plan relies on
// when it splits ranks into more virtual slots.
func TestBalanceMakespanMonotoneInWorkers(t *testing.T) {
	for name, costs := range propertyDistributions() {
		for _, alg := range []Algorithm{LPT, Steal} {
			prev := math.Inf(1)
			for _, n := range []int{1, 2, 3, 4, 6, 8, 12, 16, 32, 64, 128, 512} {
				m := PredictMakespan(alg, costs, n)
				if m > prev*(1+1e-12) {
					t.Fatalf("%s/%v: makespan rose from %g to %g when workers grew to %d",
						name, alg, prev, m, n)
				}
				if m <= 0 {
					t.Fatalf("%s/%v n=%d: non-positive makespan %g", name, alg, n, m)
				}
				prev = m
			}
		}
	}
}
