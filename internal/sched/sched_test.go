package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func uniformCosts(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	c := make([]float64, n)
	for i := range c {
		c[i] = 0.5 + rng.Float64()
	}
	return c
}

// heavyTailCosts mimics HFX task costs: many cheap tasks, few expensive.
func heavyTailCosts(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	c := make([]float64, n)
	for i := range c {
		c[i] = math.Exp(3 * rng.NormFloat64())
	}
	return c
}

func TestAllTasksAssignedExactlyOnce(t *testing.T) {
	costs := heavyTailCosts(500, 1)
	for _, alg := range []Algorithm{Block, RoundRobin, LPT, Steal} {
		a := Balance(alg, costs, 7)
		seen := make([]bool, len(costs))
		for _, tasks := range a.Workers {
			for _, ti := range tasks {
				if seen[ti] {
					t.Fatalf("%v: task %d assigned twice", alg, ti)
				}
				seen[ti] = true
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("%v: task %d never assigned", alg, i)
			}
		}
	}
}

func TestLoadsMatchCosts(t *testing.T) {
	costs := uniformCosts(100, 2)
	var total float64
	for _, c := range costs {
		total += c
	}
	for _, alg := range []Algorithm{Block, RoundRobin, LPT, Steal} {
		a := Balance(alg, costs, 9)
		var sum float64
		for _, l := range a.Loads {
			sum += l
		}
		if math.Abs(sum-total) > 1e-9 {
			t.Fatalf("%v: loads sum %g != total %g", alg, sum, total)
		}
	}
}

func TestLPTBeatsBlockOnHeavyTail(t *testing.T) {
	costs := heavyTailCosts(2000, 3)
	nw := 64
	lpt := Balance(LPT, costs, nw).BalanceRatio()
	blk := Balance(Block, costs, nw).BalanceRatio()
	rr := Balance(RoundRobin, costs, nw).BalanceRatio()
	if lpt >= blk {
		t.Fatalf("LPT ratio %.3f not better than block %.3f", lpt, blk)
	}
	if lpt >= rr {
		t.Fatalf("LPT ratio %.3f not better than round-robin %.3f", lpt, rr)
	}
}

func TestLPTNearPerfectOnManySmallTasks(t *testing.T) {
	costs := uniformCosts(10000, 4)
	a := Balance(LPT, costs, 16)
	if r := a.BalanceRatio(); r > 1.001 {
		t.Fatalf("LPT ratio %.5f should be ~1 for many uniform tasks", r)
	}
}

func TestLPTApproximationBound(t *testing.T) {
	// Graham's bound: LPT makespan ≤ (4/3 − 1/(3m))·OPT, and
	// OPT ≥ max(total/m, max task). Check against that lower bound.
	f := func(seed int64) bool {
		costs := heavyTailCosts(50+int(uint64(seed)%200), seed)
		m := 2 + int(uint64(seed)%14)
		a := Balance(LPT, costs, m)
		var total, maxc float64
		for _, c := range costs {
			total += c
			if c > maxc {
				maxc = c
			}
		}
		opt := math.Max(total/float64(m), maxc)
		bound := (4.0/3.0 - 1.0/(3.0*float64(m))) * opt
		return a.MaxLoad() <= bound*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStealRespectsListOrderGreedy(t *testing.T) {
	// With one worker every algorithm degenerates to the same makespan.
	costs := uniformCosts(50, 5)
	var total float64
	for _, c := range costs {
		total += c
	}
	for _, alg := range []Algorithm{Block, RoundRobin, LPT, Steal} {
		a := Balance(alg, costs, 1)
		if math.Abs(a.MaxLoad()-total) > 1e-9 {
			t.Fatalf("%v: single-worker makespan wrong", alg)
		}
	}
}

func TestMoreWorkersNeverIncreaseMakespanLPT(t *testing.T) {
	costs := heavyTailCosts(300, 6)
	prev := math.Inf(1)
	for _, nw := range []int{1, 2, 4, 8, 16, 32} {
		m := Balance(LPT, costs, nw).MaxLoad()
		if m > prev*(1+1e-12) {
			t.Fatalf("LPT makespan increased from %g to %g at %d workers", prev, m, nw)
		}
		prev = m
	}
}

func TestBalanceRatioBounds(t *testing.T) {
	f := func(seed int64) bool {
		costs := heavyTailCosts(100, seed)
		for _, alg := range []Algorithm{Block, RoundRobin, LPT, Steal} {
			r := Balance(alg, costs, 8).BalanceRatio()
			if r < 1-1e-12 || math.IsNaN(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTaskList(t *testing.T) {
	for _, alg := range []Algorithm{Block, RoundRobin, LPT, Steal} {
		a := Balance(alg, nil, 4)
		if a.MaxLoad() != 0 || a.BalanceRatio() != 1 {
			t.Fatalf("%v: empty list gave max %g ratio %g", alg, a.MaxLoad(), a.BalanceRatio())
		}
	}
}

func TestMoreWorkersThanTasks(t *testing.T) {
	costs := []float64{3, 1, 2}
	for _, alg := range []Algorithm{Block, RoundRobin, LPT, Steal} {
		a := Balance(alg, costs, 10)
		if a.MaxLoad() < 3 {
			t.Fatalf("%v: makespan below largest task", alg)
		}
		if got := a.NWorkers(); got != 10 {
			t.Fatalf("%v: %d workers", alg, got)
		}
	}
}

func TestDeterminism(t *testing.T) {
	costs := heavyTailCosts(200, 7)
	a := Balance(LPT, costs, 13)
	b := Balance(LPT, costs, 13)
	for w := range a.Workers {
		if len(a.Workers[w]) != len(b.Workers[w]) {
			t.Fatal("LPT not deterministic")
		}
		for i := range a.Workers[w] {
			if a.Workers[w][i] != b.Workers[w][i] {
				t.Fatal("LPT not deterministic")
			}
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{Block: "block", RoundRobin: "round-robin", LPT: "lpt", Steal: "steal"}
	for alg, want := range names {
		if alg.String() != want {
			t.Fatalf("%d -> %q", alg, alg.String())
		}
	}
	if Algorithm(99).String() == "" {
		t.Fatal("unknown algorithm should still print")
	}
}

func TestBalancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 workers")
		}
	}()
	Balance(LPT, []float64{1}, 0)
}

func TestSummarize(t *testing.T) {
	st := Summarize([]float64{1, 2, 3, 4})
	if st.N != 4 || st.Total != 10 || st.Max != 4 || st.Min != 1 || st.Mean != 2.5 {
		t.Fatalf("stats %+v", st)
	}
	if st.CV <= 0 {
		t.Fatal("CV should be positive for non-constant costs")
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Total != 0 {
		t.Fatalf("empty stats %+v", empty)
	}
}

func TestTheoreticalEfficiency(t *testing.T) {
	costs := uniformCosts(4000, 8)
	a := Balance(LPT, costs, 8)
	eff := a.TheoreticalEfficiency()
	if eff < 0.999 || eff > 1 {
		t.Fatalf("efficiency %g", eff)
	}
	if got := 1 / a.BalanceRatio(); math.Abs(got-eff) > 1e-12 {
		t.Fatal("efficiency != 1/ratio")
	}
}

func BenchmarkLPT100k(b *testing.B) {
	costs := heavyTailCosts(100000, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Balance(LPT, costs, 1024)
	}
}

func TestPredictMakespanMatchesBalance(t *testing.T) {
	costs := []float64{9, 1, 7, 3, 5, 2, 8}
	for _, alg := range []Algorithm{Block, RoundRobin, LPT, Steal} {
		want := Balance(alg, costs, 3).MaxLoad()
		if got := PredictMakespan(alg, costs, 3); got != want {
			t.Fatalf("%v: predicted %g, want MaxLoad %g", alg, got, want)
		}
	}
	if got := PredictMakespan(LPT, costs, 1); got != TotalCost(costs) {
		t.Fatalf("1 worker: %g, want serial total %g", got, TotalCost(costs))
	}
	if got := PredictMakespan(LPT, nil, 4); got != 0 {
		t.Fatalf("empty costs: %g, want 0", got)
	}
	// More workers never predict worse.
	if PredictMakespan(LPT, costs, 8) > PredictMakespan(LPT, costs, 2) {
		t.Fatal("makespan prediction must be monotone in workers")
	}
}

func TestTotalCost(t *testing.T) {
	if got := TotalCost([]float64{1, 2, 3.5}); got != 6.5 {
		t.Fatalf("TotalCost %g, want 6.5", got)
	}
	if got := TotalCost(nil); got != 0 {
		t.Fatalf("TotalCost(nil) %g, want 0", got)
	}
}
