// Package sched provides the static load-balancing algorithms at the
// heart of the paper's parallelization scheme, plus the metrics used to
// judge them. The key observation of the paper is that HFX task costs are
// *predictable* from the screened pair list, so a static cost-sorted
// greedy assignment (LPT) achieves near-perfect balance across millions of
// threads without any runtime migration; block and round-robin layouts are
// kept as the ablation baselines, and an online list scheduler models the
// work-stealing fallback.
package sched

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Assignment maps each worker to the indices of the tasks it executes.
type Assignment struct {
	// Workers[w] lists task indices assigned to worker w.
	Workers [][]int
	// Loads[w] is the summed cost on worker w.
	Loads []float64
}

// NWorkers returns the worker count.
func (a *Assignment) NWorkers() int { return len(a.Workers) }

// MaxLoad returns the largest per-worker load (the makespan under the
// cost model).
func (a *Assignment) MaxLoad() float64 {
	var m float64
	for _, l := range a.Loads {
		if l > m {
			m = l
		}
	}
	return m
}

// MeanLoad returns the average per-worker load.
func (a *Assignment) MeanLoad() float64 {
	if len(a.Loads) == 0 {
		return 0
	}
	var s float64
	for _, l := range a.Loads {
		s += l
	}
	return s / float64(len(a.Loads))
}

// BalanceRatio returns max/mean load; 1.0 is perfect balance. The paper's
// parallel efficiency at P workers is ≈ 1/BalanceRatio when communication
// is negligible.
func (a *Assignment) BalanceRatio() float64 {
	mean := a.MeanLoad()
	if mean == 0 {
		return 1
	}
	return a.MaxLoad() / mean
}

// Imbalance returns (max-mean)/mean, i.e. BalanceRatio-1.
func (a *Assignment) Imbalance() float64 { return a.BalanceRatio() - 1 }

// Slice returns the sub-assignment of workers [lo, hi): the view a rank
// has of a global schedule whose worker slots are partitioned into
// contiguous per-rank blocks. The slices alias the original assignment.
func (a *Assignment) Slice(lo, hi int) *Assignment {
	if lo < 0 || hi > len(a.Workers) || lo > hi {
		panic(fmt.Sprintf("sched: slice [%d,%d) outside %d workers", lo, hi, len(a.Workers)))
	}
	return &Assignment{Workers: a.Workers[lo:hi], Loads: a.Loads[lo:hi]}
}

// GroupLoads sums per-worker loads over consecutive groups of groupSize
// workers — the per-rank predicted cost when a global schedule of
// ranks×threads worker slots is partitioned into contiguous rank blocks.
// The worker count must be a multiple of groupSize.
func (a *Assignment) GroupLoads(groupSize int) []float64 {
	if groupSize < 1 || len(a.Loads)%groupSize != 0 {
		panic(fmt.Sprintf("sched: group size %d does not divide %d workers", groupSize, len(a.Loads)))
	}
	out := make([]float64, len(a.Loads)/groupSize)
	for w, l := range a.Loads {
		out[w/groupSize] += l
	}
	return out
}

// Algorithm names a balancing strategy.
type Algorithm int

const (
	// Block splits the task list into contiguous equal-count chunks —
	// the naive layout of data-distributed codes.
	Block Algorithm = iota
	// RoundRobin deals tasks cyclically, ignoring costs.
	RoundRobin
	// LPT (longest processing time first) sorts tasks by descending cost
	// and greedily assigns each to the least-loaded worker. This is the
	// paper's static scheme; it is a 4/3-approximation of the optimal
	// makespan and in practice near-perfect for heavy-tailed HFX costs.
	LPT
	// Steal models the dynamic fallback: an online list scheduler where
	// idle workers take the next task from a shared queue in list order.
	Steal
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Block:
		return "block"
	case RoundRobin:
		return "round-robin"
	case LPT:
		return "lpt"
	case Steal:
		return "steal"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Balance assigns tasks with the given costs to nWorkers workers.
func Balance(alg Algorithm, costs []float64, nWorkers int) *Assignment {
	if nWorkers < 1 {
		panic("sched: need at least one worker")
	}
	a := &Assignment{
		Workers: make([][]int, nWorkers),
		Loads:   make([]float64, nWorkers),
	}
	switch alg {
	case Block:
		per := (len(costs) + nWorkers - 1) / nWorkers
		for i := range costs {
			w := i / max(per, 1)
			if w >= nWorkers {
				w = nWorkers - 1
			}
			a.assign(w, i, costs[i])
		}
	case RoundRobin:
		for i := range costs {
			a.assign(i%nWorkers, i, costs[i])
		}
	case LPT:
		order := make([]int, len(costs))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(x, y int) bool { return costs[order[x]] > costs[order[y]] })
		h := newLoadHeap(nWorkers)
		for _, i := range order {
			w := h.popMin()
			a.assign(w, i, costs[i])
			h.push(w, a.Loads[w])
		}
	case Steal:
		// Online greedy in list order: each task goes to the worker that
		// becomes free first. Equivalent to simulating a shared queue.
		h := newLoadHeap(nWorkers)
		for i := range costs {
			w := h.popMin()
			a.assign(w, i, costs[i])
			h.push(w, a.Loads[w])
		}
	default:
		panic(fmt.Sprintf("sched: unknown algorithm %v", alg))
	}
	return a
}

func (a *Assignment) assign(w, task int, cost float64) {
	a.Workers[w] = append(a.Workers[w], task)
	a.Loads[w] += cost
}

// loadHeap is a min-heap of (load, worker).
type loadHeap struct {
	loads   []float64
	workers []int
}

func newLoadHeap(n int) *loadHeap {
	h := &loadHeap{loads: make([]float64, n), workers: make([]int, n)}
	for i := range h.workers {
		h.workers[i] = i
	}
	return h
}

func (h *loadHeap) Len() int { return len(h.workers) }
func (h *loadHeap) Less(i, j int) bool {
	if h.loads[i] != h.loads[j] {
		return h.loads[i] < h.loads[j]
	}
	return h.workers[i] < h.workers[j] // deterministic tie-break
}
func (h *loadHeap) Swap(i, j int) {
	h.loads[i], h.loads[j] = h.loads[j], h.loads[i]
	h.workers[i], h.workers[j] = h.workers[j], h.workers[i]
}
func (h *loadHeap) Push(x any) {
	p := x.([2]float64)
	h.loads = append(h.loads, p[0])
	h.workers = append(h.workers, int(p[1]))
}
func (h *loadHeap) Pop() any {
	n := len(h.workers) - 1
	v := [2]float64{h.loads[n], float64(h.workers[n])}
	h.loads = h.loads[:n]
	h.workers = h.workers[:n]
	return v
}

func (h *loadHeap) popMin() int {
	v := heap.Pop(h).([2]float64)
	return int(v[1])
}

func (h *loadHeap) push(w int, load float64) {
	heap.Push(h, [2]float64{load, float64(w)})
}

// TotalCost returns the summed task cost — the serial wall-clock
// prediction of the cost model.
func TotalCost(costs []float64) float64 {
	var s float64
	for _, c := range costs {
		s += c
	}
	return s
}

// PredictMakespan returns the cost model's wall-clock prediction for
// executing tasks with the given costs on nWorkers workers under alg:
// the maximum per-worker load of the resulting assignment. This is the
// exported cost-prediction hook of the scheduling layer — the paper's
// observation that HFX cost is predictable from the screened pair list
// means a serving layer can price a job *before* running it, which the
// hfxd admission queue uses for shortest-predicted-job-first ordering.
func PredictMakespan(alg Algorithm, costs []float64, nWorkers int) float64 {
	if len(costs) == 0 {
		return 0
	}
	return Balance(alg, costs, nWorkers).MaxLoad()
}

// TheoreticalEfficiency returns the parallel efficiency implied by an
// assignment's balance alone (ignoring communication): mean/max.
func (a *Assignment) TheoreticalEfficiency() float64 {
	m := a.MaxLoad()
	if m == 0 {
		return 1
	}
	return a.MeanLoad() / m
}

// CostStats summarises a task-cost distribution (used in reports).
type CostStats struct {
	N               int
	Total, Max, Min float64
	Mean, CV        float64 // CV = stddev/mean, the heavy-tail indicator
}

// Summarize computes CostStats over costs.
func Summarize(costs []float64) CostStats {
	st := CostStats{N: len(costs), Min: math.Inf(1)}
	if len(costs) == 0 {
		st.Min = 0
		return st
	}
	for _, c := range costs {
		st.Total += c
		if c > st.Max {
			st.Max = c
		}
		if c < st.Min {
			st.Min = c
		}
	}
	st.Mean = st.Total / float64(st.N)
	var ss float64
	for _, c := range costs {
		d := c - st.Mean
		ss += d * d
	}
	if st.Mean > 0 {
		st.CV = math.Sqrt(ss/float64(st.N)) / st.Mean
	}
	return st
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
