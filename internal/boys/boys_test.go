package boys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReferenceAgainstClosedFormF0(t *testing.T) {
	out := make([]float64, 1)
	for _, T := range []float64{1e-14, 1e-6, 0.01, 0.5, 1, 2.5, 7, 15, 29, 35, 50, 200} {
		Reference(0, T, out)
		want := F0(T)
		if math.Abs(out[0]-want) > 1e-13*math.Max(1, want) {
			t.Fatalf("F0(%g): ref %.16g closed %.16g", T, out[0], want)
		}
	}
}

func TestReferenceAtZero(t *testing.T) {
	out := make([]float64, 9)
	Reference(8, 0, out)
	for k := 0; k <= 8; k++ {
		want := 1.0 / float64(2*k+1)
		if math.Abs(out[k]-want) > 1e-15 {
			t.Fatalf("F_%d(0) = %g want %g", k, out[k], want)
		}
	}
}

func TestReferenceKnownValues(t *testing.T) {
	// Independently computed values (Mathematica-grade) of F_m(T).
	cases := []struct {
		m    int
		t    float64
		want float64
	}{
		{0, 1.0, 0.7468241328124270},  // ½√π·erf(1)
		{0, 10.0, 0.2802473905066427}, // ½√(π/10)·erf(√10)
		{1, 1.0, 0.18947234582049235}, // (F0 - e^-1)/2
		{2, 1.0, 0.10026879814501755}, // (3F1 - e^-1)/2
	}
	out := make([]float64, 3)
	for _, c := range cases {
		Reference(c.m, c.t, out)
		if math.Abs(out[c.m]-c.want) > 1e-13 {
			t.Fatalf("F_%d(%g) = %.16g want %.16g", c.m, c.t, out[c.m], c.want)
		}
	}
}

func TestRecursionConsistency(t *testing.T) {
	// Upward recursion identity: F_{m+1} = ((2m+1)F_m − e^{-T})/(2T).
	out := make([]float64, 13)
	for _, T := range []float64{0.1, 1, 5, 20, 40, 80} {
		Reference(12, T, out)
		et := math.Exp(-T)
		for m := 0; m < 12; m++ {
			want := (float64(2*m+1)*out[m] - et) / (2 * T)
			if math.Abs(out[m+1]-want) > 1e-12*math.Max(out[m], 1e-30) {
				t.Fatalf("T=%g m=%d: recursion violated: %.16g vs %.16g", T, m, out[m+1], want)
			}
		}
	}
}

func TestEvalMatchesReference(t *testing.T) {
	ref := make([]float64, MaxOrder+1)
	fast := make([]float64, MaxOrder+1)
	for T := 0.0; T < 60; T += 0.0317 {
		Reference(MaxOrder, T, ref)
		Eval(MaxOrder, T, fast)
		for m := 0; m <= MaxOrder; m++ {
			diff := math.Abs(ref[m] - fast[m])
			if diff > 5e-13 {
				t.Fatalf("T=%g m=%d: table %.16g ref %.16g (diff %g)", T, m, fast[m], ref[m], diff)
			}
		}
	}
}

func TestEvalPanicsOnBadArgs(t *testing.T) {
	out := make([]float64, MaxOrder+2)
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { Eval(MaxOrder+1, 1, out) })
	mustPanic(func() { Eval(0, -1, out) })
	mustPanic(func() { Reference(0, -1, out) })
}

func TestPropertyMonotoneDecreasingInOrder(t *testing.T) {
	// F_{m+1}(T) < F_m(T) for T ≥ 0 (integrand shrinks with m).
	out := make([]float64, 11)
	f := func(raw float64) bool {
		T := math.Mod(math.Abs(raw), 80)
		if math.IsNaN(T) {
			T = 1
		}
		Eval(10, T, out)
		for m := 0; m < 10; m++ {
			if out[m+1] >= out[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBounds(t *testing.T) {
	// 0 < F_m(T) ≤ 1/(2m+1) with equality at T=0.
	out := make([]float64, 7)
	f := func(raw float64) bool {
		T := math.Mod(math.Abs(raw), 100)
		if math.IsNaN(T) {
			T = 1
		}
		Eval(6, T, out)
		for m := 0; m <= 6; m++ {
			if out[m] <= 0 || out[m] > 1.0/float64(2*m+1)+1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeTAsymptotics(t *testing.T) {
	// For large T, F_0 → ½√(π/T).
	out := make([]float64, 1)
	for _, T := range []float64{50, 100, 400} {
		Eval(0, T, out)
		want := 0.5 * math.Sqrt(math.Pi/T)
		if math.Abs(out[0]-want) > 1e-14 {
			t.Fatalf("T=%g: %.16g want %.16g", T, out[0], want)
		}
	}
}

func BenchmarkReference(b *testing.B) {
	out := make([]float64, 9)
	for i := 0; i < b.N; i++ {
		Reference(8, 7.3, out)
	}
}

func BenchmarkEvalTable(b *testing.B) {
	out := make([]float64, 9)
	for i := 0; i < b.N; i++ {
		Eval(8, 7.3, out)
	}
}
