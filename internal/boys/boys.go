// Package boys evaluates the Boys function
//
//	F_m(T) = ∫₀¹ t^{2m} e^{-T t²} dt,
//
// the kernel of every Gaussian Coulomb integral. Two evaluation paths are
// provided:
//
//   - Reference: a convergent power series for small T combined with the
//     asymptotic/erf closed form plus stable recursions for large T. This
//     is accurate to near machine precision and is used for validation.
//   - Table: a pre-tabulated grid with 6-term downward Taylor expansion,
//     the classic production fast path (and the one that vectorises: see
//     package qpx). Accuracy ≈ 1e-13 over the tabulated range.
//
// Both paths fill all orders 0..m in one call, which is how integral
// kernels consume them.
package boys

import "math"

// MaxOrder is the highest Boys order supported by the fast table. With
// Cartesian d functions the ERI engine needs orders up to 4·2 = 8; the
// table carries margin for the Taylor expansion terms.
const MaxOrder = 24

const (
	tableTMax   = 36.0  // switch to asymptotic form beyond this T
	tableStep   = 0.05  // grid spacing
	taylorTerms = 6     // downward Taylor terms
	seriesEps   = 1e-17 // series truncation
)

// Reference fills out[0..m] with F_0(T)..F_m(T) using the high-accuracy
// path. len(out) must be at least m+1. T must be non-negative.
func Reference(m int, t float64, out []float64) {
	if t < 0 {
		panic("boys: negative argument")
	}
	switch {
	case t < 1e-13:
		// F_m(0) = 1/(2m+1).
		for k := 0; k <= m; k++ {
			out[k] = 1.0 / float64(2*k+1)
		}
	case t < 30+2*float64(m):
		// Evaluate the highest order by its convergent series
		//   F_m(T) = e^{-T} Σ_k (2T)^k / (2m+1)(2m+3)...(2m+2k+1)
		// then recur downward: F_{m-1} = (2T F_m + e^{-T})/(2m-1).
		et := math.Exp(-t)
		sum := 1.0 / float64(2*m+1)
		term := sum
		for k := 1; ; k++ {
			term *= 2 * t / float64(2*m+2*k+1)
			sum += term
			if term < sum*seriesEps {
				break
			}
		}
		out[m] = et * sum
		for k := m; k > 0; k-- {
			out[k-1] = (2*t*out[k] + et) / float64(2*k-1)
		}
	default:
		// Large T: F_0 = ½√(π/T)·erf(√T) and upward recursion
		//   F_{k+1} = ((2k+1) F_k − e^{-T}) / (2T),
		// which is stable when T is large compared to m.
		st := math.Sqrt(t)
		out[0] = 0.5 * math.Sqrt(math.Pi) / st * math.Erf(st)
		et := math.Exp(-t)
		for k := 0; k < m; k++ {
			out[k+1] = (float64(2*k+1)*out[k] - et) / (2 * t)
		}
	}
}

// table[i][k] = F_k(i·tableStep) for k = 0..MaxOrder+taylorTerms.
var table [][MaxOrder + taylorTerms + 1]float64

func init() {
	n := int(tableTMax/tableStep) + 2
	table = make([][MaxOrder + taylorTerms + 1]float64, n)
	buf := make([]float64, MaxOrder+taylorTerms+1)
	for i := 0; i < n; i++ {
		Reference(MaxOrder+taylorTerms, float64(i)*tableStep, buf)
		copy(table[i][:], buf)
	}
}

// inverse factorials 1/k! for the Taylor expansion.
var invFact = [taylorTerms]float64{1, 1, 0.5, 1.0 / 6, 1.0 / 24, 1.0 / 120}

// Eval fills out[0..m] with F_0(T)..F_m(T) using the fast tabulated path.
// It panics if m exceeds MaxOrder.
func Eval(m int, t float64, out []float64) {
	if m > MaxOrder {
		panic("boys: order exceeds MaxOrder; use Reference")
	}
	if t < 0 {
		panic("boys: negative argument")
	}
	if t >= tableTMax {
		// Asymptotic: F_m(T) ≈ (2m-1)!!/(2T)^m · ½√(π/T); implemented via
		// the same stable upward recursion as Reference (erf(√T) = 1 here
		// to machine precision).
		out[0] = 0.5 * math.Sqrt(math.Pi/t)
		et := math.Exp(-t)
		for k := 0; k < m; k++ {
			out[k+1] = (float64(2*k+1)*out[k] - et) / (2 * t)
		}
		return
	}
	// Nearest grid point and downward Taylor:
	//   F_m(T0+δ) = Σ_k F_{m+k}(T0) (−δ)^k / k!.
	gi := int(t/tableStep + 0.5)
	d := t - float64(gi)*tableStep
	row := &table[gi]
	// Evaluate highest order by Taylor, then recur downward (cheaper and
	// more accurate than Taylor for every order).
	md := -d
	pow := 1.0
	var fm float64
	for k := 0; k < taylorTerms; k++ {
		fm += row[m+k] * pow * invFact[k]
		pow *= md
	}
	out[m] = fm
	if m > 0 {
		et := math.Exp(-t)
		for k := m; k > 0; k-- {
			out[k-1] = (2*t*out[k] + et) / float64(2*k-1)
		}
	}
}

// The constants below expose the tabulated fast path's grid so that
// lane-parallel consumers (package qpx) can perform the table lookup and
// Taylor expansion across SIMD lanes with exactly the same arithmetic as
// the scalar Eval.
const (
	// TableTMax is the upper end of the tabulated range; arguments at or
	// beyond it take the asymptotic branch.
	TableTMax = tableTMax
	// TableStep is the grid spacing of the table.
	TableStep = tableStep
	// TaylorTerms is the number of downward Taylor terms used off-grid.
	TaylorTerms = taylorTerms
)

// TableRow returns the precomputed row F_k(i·TableStep), k = 0..
// MaxOrder+TaylorTerms, for grid index i. The row is shared read-only
// storage; callers must not modify it.
func TableRow(i int) *[MaxOrder + taylorTerms + 1]float64 { return &table[i] }

// TaylorCoeff returns the inverse factorial 1/k! used as the k-th Taylor
// weight (k < TaylorTerms).
func TaylorCoeff(k int) float64 { return invFact[k] }

// F0 returns F_0(T) via the closed form ½√(π/T)·erf(√T); exact for
// validation purposes.
func F0(t float64) float64 {
	if t < 1e-13 {
		return 1 - t/3 // series limit, avoids 0/0
	}
	st := math.Sqrt(t)
	return 0.5 * math.Sqrt(math.Pi) / st * math.Erf(st)
}
