package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"hfxmd/internal/trace"
)

func counter(t *testing.T, reg *trace.Registry, name string) int64 {
	t.Helper()
	return reg.Counter(name).Value()
}

func openTest(t *testing.T, dir string, mut ...func(*Options)) *Store {
	t.Helper()
	opts := Options{Dir: dir, Registry: trace.NewRegistry()}
	for _, m := range mut {
		m(&opts)
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, t.TempDir())
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%03d", i)
		if err := s.Put(key, []byte(fmt.Sprintf("value-%03d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%03d", i)
		v, ok := s.Get(key)
		if !ok || string(v) != fmt.Sprintf("value-%03d", i) {
			t.Fatalf("Get(%s) = %q, %v", key, v, ok)
		}
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get(absent) hit")
	}
	if got := counter(t, s.Registry(), "store.misses"); got != 1 {
		t.Fatalf("store.misses = %d, want 1", got)
	}
}

func TestRebootRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	reg := trace.NewRegistry()
	s, err := Open(Options{Dir: dir, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("key-%d", i)
		val := bytes.Repeat([]byte{byte(i)}, 100+i)
		want[key] = val
		if err := s.Put(key, val); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite one key: last record must win at reboot.
	want["key-3"] = []byte("rewritten")
	if err := s.Put("key-3", want["key-3"]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir)
	s2.DropHot() // force the disk path
	for key, val := range want {
		got, ok := s2.Get(key)
		if !ok || !bytes.Equal(got, val) {
			t.Fatalf("after reboot Get(%s) = %q, %v; want %q", key, got, ok, val)
		}
	}
	if hits := counter(t, s2.Registry(), "store.disk_hits"); hits != int64(len(want)) {
		t.Fatalf("disk_hits = %d, want %d", hits, len(want))
	}
	if promos := counter(t, s2.Registry(), "store.promotions"); promos != int64(len(want)) {
		t.Fatalf("promotions = %d, want %d", promos, len(want))
	}
	// Promoted entries now hit the hot tier.
	for key := range want {
		if _, ok := s2.Get(key); !ok {
			t.Fatalf("post-promotion Get(%s) missed", key)
		}
	}
	if hh := counter(t, s2.Registry(), "store.hot_hits"); hh != int64(len(want)) {
		t.Fatalf("hot_hits = %d, want %d", hh, len(want))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, func(o *Options) { o.SegmentBytes = 1 << 10 })
	val := bytes.Repeat([]byte("x"), 200)
	for i := 0; i < 40; i++ {
		if err := s.Put(fmt.Sprintf("rot-%02d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected >=2 sealed segments, got %d", st.Segments)
	}
	if got := counter(t, s.Registry(), "store.seals"); got != st.Segments {
		t.Fatalf("store.seals = %d, want %d", got, st.Segments)
	}
	// Sealed files exist with their immutable names; refs still resolve.
	for n := int64(0); n < st.Segments; n++ {
		if _, err := os.Stat(filepath.Join(dir, segName(n))); err != nil {
			t.Fatalf("sealed segment %d missing: %v", n, err)
		}
	}
	s.DropHot()
	for i := 0; i < 40; i++ {
		if v, ok := s.Get(fmt.Sprintf("rot-%02d", i)); !ok || !bytes.Equal(v, val) {
			t.Fatalf("post-rotation Get(rot-%02d) failed", i)
		}
	}
	s.Close()

	// Reboot re-lists sealed segments and continues numbering.
	s2 := openTest(t, dir, func(o *Options) { o.SegmentBytes = 1 << 10 })
	s2.DropHot()
	for i := 0; i < 40; i++ {
		if _, ok := s2.Get(fmt.Sprintf("rot-%02d", i)); !ok {
			t.Fatalf("reboot after rotation lost rot-%02d", i)
		}
	}
	if err := s2.Put("post-reboot", val); err != nil {
		t.Fatal(err)
	}
	if s2.Stats().Segments < st.Segments {
		t.Fatal("segment numbering regressed after reboot")
	}
}

func TestTornTailTruncatedAtBoot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Registry: trace.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("intact", []byte("survives")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash mid-append: a frame header promising more bytes
	// than the file holds.
	active := filepath.Join(dir, activeName)
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := frameRecord("torn-key", bytes.Repeat([]byte("y"), 500))
	if _, err := f.Write(torn[:len(torn)-100]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(active)

	s2 := openTest(t, dir)
	if tb := counter(t, s2.Registry(), "store.torn_tail_bytes"); tb != int64(len(torn)-100) {
		t.Fatalf("torn_tail_bytes = %d, want %d", tb, len(torn)-100)
	}
	after, _ := os.Stat(active)
	if after.Size() >= before.Size() {
		t.Fatalf("active not truncated: %d -> %d", before.Size(), after.Size())
	}
	s2.DropHot()
	if v, ok := s2.Get("intact"); !ok || string(v) != "survives" {
		t.Fatalf("intact record lost after torn-tail truncation: %q, %v", v, ok)
	}
	if _, ok := s2.Get("torn-key"); ok {
		t.Fatal("torn record must not be indexed")
	}
	// Appending after truncation keeps the file scannable.
	if err := s2.Put("after-crash", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openTest(t, dir)
	s3.DropHot()
	for _, key := range []string{"intact", "after-crash"} {
		if _, ok := s3.Get(key); !ok {
			t.Fatalf("%s lost after post-crash append + reboot", key)
		}
	}
}

func TestCorruptRecordSkippedAndCounted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Registry: trace.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"a", "b", "c"} {
		if err := s.Put(key, bytes.Repeat([]byte(key), 64)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip one payload byte of record "b" (the middle record): its frame
	// length stays intact, so the scanner must skip it and still index
	// "a" and "c".
	active := filepath.Join(dir, activeName)
	b, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	recLen := len(frameRecord("a", bytes.Repeat([]byte("a"), 64)))
	// Offset of b's payload: magic + record a + frame header + klen+key.
	off := len(segMagic) + recLen + 8 + 2 + 1 + 10
	b[off] ^= 0xff
	if err := os.WriteFile(active, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir)
	if got := counter(t, s2.Registry(), "store.corrupt_records"); got != 1 {
		t.Fatalf("store.corrupt_records = %d, want 1", got)
	}
	s2.DropHot()
	for _, key := range []string{"a", "c"} {
		if v, ok := s2.Get(key); !ok || !bytes.Equal(v, bytes.Repeat([]byte(key), 64)) {
			t.Fatalf("record %q lost around corrupt sibling", key)
		}
	}
	if _, ok := s2.Get("b"); ok {
		t.Fatal("corrupt record must not be served")
	}
}

func TestHotTierByteBudget(t *testing.T) {
	s := openTest(t, "", func(o *Options) { o.HotBytes = 1 << 10 })
	val := bytes.Repeat([]byte("z"), 200)
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("hot-%d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.HotBytes > st.HotBudget {
		t.Fatalf("hot bytes %d exceed budget %d", st.HotBytes, st.HotBudget)
	}
	if ev := counter(t, s.Registry(), "store.hot_evictions"); ev == 0 {
		t.Fatal("expected hot-tier evictions under a 1 KiB budget")
	}
	// Memory-only store: evicted entries are gone; recent ones are hot.
	if _, ok := s.Get("hot-0"); ok {
		t.Fatal("hot-0 should have been evicted")
	}
	if _, ok := s.Get("hot-9"); !ok {
		t.Fatal("hot-9 should be resident")
	}
	// An entry larger than the whole budget is never admitted.
	if err := s.Put("huge", bytes.Repeat([]byte("h"), 4<<10)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("huge"); ok {
		t.Fatal("over-budget entry must not be admitted")
	}
}

func TestOversizeHotEntryStillOnDisk(t *testing.T) {
	s := openTest(t, t.TempDir(), func(o *Options) { o.HotBytes = 256 })
	big := bytes.Repeat([]byte("B"), 2048)
	if err := s.Put("big", big); err != nil {
		t.Fatal(err)
	}
	// Too big for the hot tier, but the disk tier holds it.
	if v, ok := s.Get("big"); !ok || !bytes.Equal(v, big) {
		t.Fatal("oversize entry must be served from disk")
	}
	if dh := counter(t, s.Registry(), "store.disk_hits"); dh != 1 {
		t.Fatalf("disk_hits = %d, want 1", dh)
	}
}

func TestContainsDoesNotPromote(t *testing.T) {
	s := openTest(t, t.TempDir())
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.DropHot()
	if !s.Contains("k") {
		t.Fatal("Contains missed a disk-resident key")
	}
	if hh := counter(t, s.Registry(), "store.hot_hits"); hh != 0 {
		t.Fatal("Contains must not touch hit counters")
	}
	if s.Stats().HotEntries != 0 {
		t.Fatal("Contains must not promote")
	}
	if s.Contains("absent") {
		t.Fatal("Contains(absent)")
	}
}

func TestConcurrentGetPutPromote(t *testing.T) {
	s := openTest(t, t.TempDir(), func(o *Options) {
		o.HotBytes = 4 << 10 // small: forces eviction + re-promotion churn
		o.SegmentBytes = 8 << 10
		o.NoFsync = true // keep the race test fast
	})
	const (
		workers = 8
		keys    = 32
		rounds  = 60
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				key := fmt.Sprintf("ck-%02d", (w*7+r)%keys)
				switch r % 3 {
				case 0:
					val := bytes.Repeat([]byte{byte(w)}, 64+r)
					if err := s.Put(key, val); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				case 1:
					if v, ok := s.Get(key); ok && len(v) == 0 {
						t.Errorf("Get(%s) returned empty payload", key)
						return
					}
				case 2:
					s.Contains(key)
					if r%12 == 2 {
						s.DropHot() // force promotion churn
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Every written key must be resolvable afterwards.
	s.DropHot()
	for i := 0; i < keys; i++ {
		if _, ok := s.Get(fmt.Sprintf("ck-%02d", i)); !ok {
			t.Fatalf("ck-%02d lost after concurrent churn", i)
		}
	}
}

func TestMatrixCodecRoundTrip(t *testing.T) {
	n := 7
	data := make([]float64, n*n)
	for i := range data {
		data[i] = float64(i) * 0.1234567890123456
	}
	data[3] = -0.0 // bit pattern must survive
	b := EncodeMatrix(n, data)
	n2, got, err := DecodeMatrix(b)
	if err != nil || n2 != n {
		t.Fatalf("DecodeMatrix: n=%d err=%v", n2, err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("element %d: %v != %v", i, got[i], data[i])
		}
	}
	if _, _, err := DecodeMatrix(b[:10]); err == nil {
		t.Fatal("truncated matrix payload must not decode")
	}
	if _, _, err := DecodeMatrix(append([]byte("XXXXXXXX"), b[8:]...)); err == nil {
		t.Fatal("bad magic must not decode")
	}
}

func TestMemoryOnlyStore(t *testing.T) {
	s := openTest(t, "")
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("k"); !ok || string(v) != "v" {
		t.Fatal("memory-only round trip failed")
	}
	s.DropHot()
	if _, ok := s.Get("k"); ok {
		t.Fatal("memory-only store has no disk tier to fall back to")
	}
	if s.Dir() != "" {
		t.Fatal("memory-only Dir() must be empty")
	}
}
