package store

import "container/list"

// hotEntryOverhead approximates the per-entry bookkeeping cost charged
// against the hot-tier byte budget on top of key and payload bytes
// (list element, map slot, headers).
const hotEntryOverhead = 96

// hotLRU is the hot tier: a byte-budgeted (not entry-counted) LRU over
// raw payloads. Results vary ~100× in encoded size, so an entry-count
// capacity makes worst-case memory unbounded; the budget charges
// len(key)+len(val)+overhead per entry and evicts least-recently-used
// entries until it fits. An entry larger than the whole budget is never
// admitted. Not safe for concurrent use — the Store's mutex guards it.
type hotLRU struct {
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
}

type hotEntry struct {
	key string
	val []byte
}

func entrySize(key string, val []byte) int64 {
	return int64(len(key)) + int64(len(val)) + hotEntryOverhead
}

func newHotLRU(budget int64) *hotLRU {
	return &hotLRU{budget: budget, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the payload for key, marking it most recently used.
func (h *hotLRU) get(key string) ([]byte, bool) {
	el, ok := h.items[key]
	if !ok {
		return nil, false
	}
	h.ll.MoveToFront(el)
	return el.Value.(*hotEntry).val, true
}

// contains reports residency without refreshing the LRU position: an
// affinity probe must not make an entry look hot.
func (h *hotLRU) contains(key string) bool {
	_, ok := h.items[key]
	return ok
}

// put stores (or replaces) an entry and evicts from the cold end until
// the budget holds. It returns the number of entries evicted.
func (h *hotLRU) put(key string, val []byte) (evicted int64) {
	if h.budget <= 0 || entrySize(key, val) > h.budget {
		return 0
	}
	if el, ok := h.items[key]; ok {
		e := el.Value.(*hotEntry)
		h.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		h.ll.MoveToFront(el)
	} else {
		h.items[key] = h.ll.PushFront(&hotEntry{key: key, val: val})
		h.bytes += entrySize(key, val)
	}
	for h.bytes > h.budget {
		last := h.ll.Back()
		e := last.Value.(*hotEntry)
		h.ll.Remove(last)
		delete(h.items, e.key)
		h.bytes -= entrySize(e.key, e.val)
		evicted++
	}
	return evicted
}

// drop clears the tier (bench/test hook for re-sampling disk hits).
func (h *hotLRU) drop() {
	h.ll.Init()
	clear(h.items)
	h.bytes = 0
}

// len returns the number of resident entries.
func (h *hotLRU) len() int { return h.ll.Len() }
