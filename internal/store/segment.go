package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strconv"
	"strings"
)

// segMagic identifies (and versions) the segment file format. Every
// segment — sealed or active — starts with it.
const segMagic = "HFXSEG\x01"

// activeName is the append target. It carries the temp suffix on
// purpose: sealing a segment is exactly the ckpt temp+fsync+rename
// dance — records are appended (and fsynced) into the temp file, and
// rotation renames it to its immutable seg-N name in one atomic step.
const activeName = "seg-active.tmp"

// maxRecordBytes is the sanity bound on a single framed record: a
// length field beyond it means the frame itself is garbage, so the
// scanner cannot skip over the record and must stop reading the file.
const maxRecordBytes = 1 << 30

// segName returns the immutable filename of sealed segment n.
func segName(n int64) string { return fmt.Sprintf("seg-%08d.seg", n) }

// segNum parses a sealed segment filename back to its number, or -1.
func segNum(name string) int64 {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".seg") {
		return -1
	}
	n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".seg"), 10, 64)
	if err != nil {
		return -1
	}
	return n
}

// listSegments returns the numbers of all sealed segments in dir,
// ascending.
func listSegments(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var nums []int64
	for _, e := range ents {
		if n := segNum(e.Name()); n >= 0 {
			nums = append(nums, n)
		}
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	return nums, nil
}

// frameRecord wraps a key/value pair in the size+CRC framing shared
// with the ckpt journal: u32 payload length, u32 CRC32-IEEE of the
// payload, payload = u16 key length + key + value.
func frameRecord(key string, val []byte) []byte {
	payload := len(key) + len(val) + 2
	b := make([]byte, 0, 8+payload)
	b = binary.LittleEndian.AppendUint32(b, uint32(payload))
	crc := crc32.NewIEEE()
	var klen [2]byte
	binary.LittleEndian.PutUint16(klen[:], uint16(len(key)))
	crc.Write(klen[:])
	crc.Write([]byte(key))
	crc.Write(val)
	b = binary.LittleEndian.AppendUint32(b, crc.Sum32())
	b = append(b, klen[:]...)
	b = append(b, key...)
	return append(b, val...)
}

// scannedRecord is one record surfaced by scanSegment: the key and the
// byte range of the *value* within the file, so Get can read just the
// payload later.
type scannedRecord struct {
	key string
	off int64 // value offset within the file
	len int32 // value length
}

// scanResult summarises one segment scan.
type scanResult struct {
	records []scannedRecord
	// corrupt counts CRC-mismatched records that were skipped (their
	// frame length was intact, so the scanner could step over them).
	corrupt int64
	// validLen is the byte length of the structurally scannable prefix:
	// everything after it is a torn tail (truncated frame, or a length
	// field too damaged to step over).
	validLen int64
	// torn reports whether the file extends beyond validLen.
	torn bool
}

// scanSegment reads one segment image and indexes its records. A
// CRC-mismatched record whose frame length is plausible is *skipped*
// and counted — one flipped payload byte must not hide the rest of the
// segment — while a frame that cannot be stepped over (length field
// out of range, or a record extending past EOF) ends the scan: that is
// the torn tail an interrupted append leaves.
func scanSegment(b []byte) scanResult {
	res := scanResult{}
	if len(b) < len(segMagic) || string(b[:len(segMagic)]) != segMagic {
		// No usable header: the whole file is a torn tail.
		res.torn = len(b) > 0
		return res
	}
	off := int64(len(segMagic))
	n := int64(len(b))
	for off+8 <= n {
		size := int64(binary.LittleEndian.Uint32(b[off:]))
		if size < 2 || size > maxRecordBytes || off+8+size > n {
			break // unsteppable frame: torn tail starts here
		}
		crc := binary.LittleEndian.Uint32(b[off+4:])
		payload := b[off+8 : off+8+size]
		if crc32.ChecksumIEEE(payload) != crc {
			res.corrupt++
			off += 8 + size
			continue
		}
		klen := int64(binary.LittleEndian.Uint16(payload))
		if 2+klen > size {
			res.corrupt++
			off += 8 + size
			continue
		}
		res.records = append(res.records, scannedRecord{
			key: string(payload[2 : 2+klen]),
			off: off + 8 + 2 + klen,
			len: int32(size - 2 - klen),
		})
		off += 8 + size
	}
	res.validLen = off
	res.torn = off < n
	return res
}
