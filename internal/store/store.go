// Package store implements the tiered, content-addressed result and
// ERI store shared across the hfxd fleet: a byte-budgeted in-memory
// LRU hot tier in front of an append-only on-disk segment store, with
// an in-memory index rebuilt by scanning segment records at boot.
//
// Keys are canonical content hashes (the server's result-cache key,
// the ERI spill layout hash, the density prefix key), so any process
// pointing at the same directory resolves the same key to the same
// bytes: a fleet restart answers repeated jobs from the disk tier with
// zero builder work, and a cold builder warms its ERI slabs from a
// neighbour's spill instead of recomputing ~300 ms of integrals.
//
// Disk layout: immutable sealed segments (seg-%08d.seg) plus one
// active append target (seg-active.tmp). Records are framed size+CRC
// exactly like the ckpt journal; sealing is the ckpt temp+fsync+rename
// dance (the active file *is* the temp file), so a crash never leaves
// a half-sealed segment. At boot the index is rebuilt by scanning
// every segment: CRC-corrupt records are skipped and counted
// (store.corrupt_records), and the active file's torn tail — the mark
// of an interrupted append — is truncated before appending resumes.
package store

import (
	"os"
	"path/filepath"
	"sync"

	"hfxmd/internal/ckpt"
	"hfxmd/internal/trace"
)

// Options configures a Store. The zero value is a memory-only store
// with the default hot budget.
type Options struct {
	// Dir is the segment directory (created if absent). Empty disables
	// the disk tier: the store degenerates to the hot LRU.
	Dir string
	// HotBytes is the hot-tier byte budget (default 64 MiB). Zero or
	// negative disables the hot tier — every hit is a disk hit.
	HotBytes int64
	// SegmentBytes is the seal threshold: when the active segment
	// exceeds it, the segment is fsynced and atomically renamed to its
	// immutable name and a fresh active file is started (default 16 MiB).
	SegmentBytes int64
	// NoFsync skips per-put fsync — only for benchmarks measuring the
	// format cost apart from the disk. Crash durability needs fsync.
	NoFsync bool
	// Registry receives the store.* counters and gauges (optional).
	Registry *trace.Registry
}

// ref locates one record's value on disk. Files are addressed through
// the file table so sealing (a rename) retargets every ref at once.
type ref struct {
	file int32
	off  int64
	len  int32
}

// Store is the two-tier content-addressed store. All methods are safe
// for concurrent use; a Store may be shared by every server instance
// of an in-process fleet.
type Store struct {
	mu    sync.Mutex
	dir   string
	fsync bool
	segCap int64

	hot   *hotLRU
	idx   map[string]ref
	files []string // file table: ref.file → path

	active     *os.File
	activeID   int32
	activeSize int64
	nextSeg    int64

	diskBytes int64
	reg       *trace.Registry
}

// DefaultHotBytes is the hot-tier budget when Options.HotBytes is zero.
const DefaultHotBytes = 64 << 20

// DefaultSegmentBytes is the seal threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 16 << 20

// Open builds the store: it creates the directory, scans every sealed
// segment and the active file into the index (skipping corrupt records,
// truncating the active torn tail), and reopens the active file for
// appending.
func Open(opts Options) (*Store, error) {
	if opts.HotBytes == 0 {
		opts.HotBytes = DefaultHotBytes
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Registry == nil {
		opts.Registry = trace.NewRegistry()
	}
	s := &Store{
		dir:    opts.Dir,
		fsync:  !opts.NoFsync,
		segCap: opts.SegmentBytes,
		hot:    newHotLRU(opts.HotBytes),
		idx:    make(map[string]ref),
		reg:    opts.Registry,
	}
	// Pre-create the instruments the hot path touches.
	for _, c := range []string{
		"store.hot_hits", "store.hot_misses", "store.disk_hits", "store.misses",
		"store.promotions", "store.hot_evictions", "store.puts", "store.put_bytes",
		"store.seals", "store.corrupt_records", "store.torn_tail_bytes",
		"store.boot_records",
	} {
		s.reg.Counter(c)
	}
	if opts.Dir == "" {
		s.publishGauges()
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	if err := s.boot(); err != nil {
		return nil, err
	}
	s.publishGauges()
	return s, nil
}

// boot rebuilds the index from the segment files and reopens the
// active file for appending.
func (s *Store) boot() error {
	nums, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	for _, n := range nums {
		path := filepath.Join(s.dir, segName(n))
		if err := s.bootFile(path, false); err != nil {
			return err
		}
		s.nextSeg = n + 1
	}
	activePath := filepath.Join(s.dir, activeName)
	b, err := os.ReadFile(activePath)
	switch {
	case os.IsNotExist(err):
		return s.newActive()
	case err != nil:
		return err
	}
	res := scanSegment(b)
	s.indexScan(activePath, res)
	if res.torn {
		s.reg.Counter("store.torn_tail_bytes").Add(int64(len(b)) - res.validLen)
		if res.validLen < int64(len(segMagic)) {
			// Even the header is damaged: start the active file over.
			return s.newActive()
		}
		if err := os.Truncate(activePath, res.validLen); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(activePath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.active = f
	s.activeID = int32(len(s.files) - 1) // indexScan appended activePath
	s.activeSize = max(res.validLen, int64(len(segMagic)))
	s.diskBytes += s.activeSize
	return nil
}

// bootFile scans one sealed segment into the index.
func (s *Store) bootFile(path string, _ bool) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	res := scanSegment(b)
	s.indexScan(path, res)
	if res.torn {
		// A sealed segment was renamed after fsync, so a torn tail here
		// means external damage; the intact prefix is still served.
		s.reg.Counter("store.torn_tail_bytes").Add(int64(len(b)) - res.validLen)
	}
	s.diskBytes += int64(len(b))
	return nil
}

// indexScan folds one scan result into the index (last writer wins:
// segments are scanned oldest-first, the active file last).
func (s *Store) indexScan(path string, res scanResult) {
	fid := int32(len(s.files))
	s.files = append(s.files, path)
	for _, r := range res.records {
		s.idx[r.key] = ref{file: fid, off: r.off, len: r.len}
	}
	s.reg.Counter("store.boot_records").Add(int64(len(res.records)))
	s.reg.Counter("store.corrupt_records").Add(res.corrupt)
}

// newActive starts a fresh active file holding just the magic.
func (s *Store) newActive() error {
	path := filepath.Join(s.dir, activeName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return err
	}
	if s.fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	s.active = f
	s.activeID = int32(len(s.files))
	s.files = append(s.files, path)
	s.activeSize = int64(len(segMagic))
	s.diskBytes += s.activeSize
	return nil
}

// Get returns the payload for key: hot tier first, then the disk
// index; a disk hit is promoted into the hot tier. The returned slice
// is shared with the hot tier and must be treated as read-only.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.hot.get(key); ok {
		s.reg.Counter("store.hot_hits").Add(1)
		return v, true
	}
	s.reg.Counter("store.hot_misses").Add(1)
	r, ok := s.idx[key]
	if !ok {
		s.reg.Counter("store.misses").Add(1)
		return nil, false
	}
	v, err := s.readAt(r)
	if err != nil {
		// The record indexed at boot is gone or unreadable: a full miss.
		s.reg.Counter("store.misses").Add(1)
		return nil, false
	}
	s.reg.Counter("store.disk_hits").Add(1)
	s.reg.Counter("store.promotions").Add(1)
	s.reg.Counter("store.hot_evictions").Add(s.hot.put(key, v))
	s.publishGauges()
	return v, true
}

// readAt reads one value range from its segment file. The active file
// is read through its own handle-independent path: O_APPEND writers and
// ReadAt readers do not disturb each other.
func (s *Store) readAt(r ref) ([]byte, error) {
	f, err := os.Open(s.files[r.file])
	if err != nil {
		return nil, err
	}
	defer f.Close()
	v := make([]byte, r.len)
	if _, err := f.ReadAt(v, r.off); err != nil {
		return nil, err
	}
	return v, nil
}

// Put stores a payload under its content key in both tiers. The store
// takes ownership of val — callers must not modify it afterwards. With
// a disk tier, the record is durable (fsynced) when Put returns, and
// the active segment is sealed once it exceeds the size threshold.
func (s *Store) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.Counter("store.puts").Add(1)
	s.reg.Counter("store.put_bytes").Add(int64(len(val)))
	s.reg.Counter("store.hot_evictions").Add(s.hot.put(key, val))
	if s.active == nil {
		s.publishGauges()
		return nil
	}
	rec := frameRecord(key, val)
	if _, err := s.active.Write(rec); err != nil {
		return err
	}
	if s.fsync {
		if err := s.active.Sync(); err != nil {
			return err
		}
	}
	// Value offset within the record: frame header (8) + klen (2) + key.
	s.idx[key] = ref{
		file: s.activeID,
		off:  s.activeSize + 8 + 2 + int64(len(key)),
		len:  int32(len(val)),
	}
	s.activeSize += int64(len(rec))
	s.diskBytes += int64(len(rec))
	if s.activeSize >= s.segCap {
		if err := s.seal(); err != nil {
			return err
		}
	}
	s.publishGauges()
	return nil
}

// seal rotates the active segment: fsync, close, atomic rename to the
// immutable seg-N name, directory fsync, fresh active file. Refs into
// the sealed segment keep working through the file table.
func (s *Store) seal() error {
	if s.fsync {
		if err := s.active.Sync(); err != nil {
			return err
		}
	}
	if err := s.active.Close(); err != nil {
		return err
	}
	sealed := filepath.Join(s.dir, segName(s.nextSeg))
	if err := os.Rename(filepath.Join(s.dir, activeName), sealed); err != nil {
		return err
	}
	if s.fsync {
		ckpt.SyncDir(s.dir)
	}
	s.files[s.activeID] = sealed
	s.nextSeg++
	s.reg.Counter("store.seals").Add(1)
	return s.newActive()
}

// Contains reports whether either tier holds the key, without touching
// the hot tier's LRU order — the probe behind cache-affinity routing.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hot.contains(key) {
		return true
	}
	_, ok := s.idx[key]
	return ok
}

// DropHot clears the hot tier so the next Get of every key exercises
// the disk path — the hook the latency benchmarks and crash tests use
// to re-sample disk-warm hits without a process restart.
func (s *Store) DropHot() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hot.drop()
	s.publishGauges()
}

// Stats is a point-in-time snapshot of both tiers.
type Stats struct {
	HotBytes    int64
	HotEntries  int
	HotBudget   int64
	DiskBytes   int64
	DiskEntries int
	Segments    int64
}

// Stats snapshots both tiers.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		HotBytes:    s.hot.bytes,
		HotEntries:  s.hot.len(),
		HotBudget:   s.hot.budget,
		DiskBytes:   s.diskBytes,
		DiskEntries: len(s.idx),
		Segments:    s.nextSeg,
	}
}

// Dir returns the segment directory ("" for a memory-only store).
func (s *Store) Dir() string { return s.dir }

// Registry exposes the store's metrics registry.
func (s *Store) Registry() *trace.Registry { return s.reg }

// publishGauges refreshes the gauge surface. Called with mu held.
func (s *Store) publishGauges() {
	s.reg.Gauge("store.hot_bytes").Set(s.hot.bytes)
	s.reg.Gauge("store.hot_entries").Set(int64(s.hot.len()))
	s.reg.Gauge("store.disk_bytes").Set(s.diskBytes)
	s.reg.Gauge("store.disk_entries").Set(int64(len(s.idx)))
	s.reg.Gauge("store.segments").Set(s.nextSeg)
}

// Close fsyncs and releases the active file. The directory remains
// fully resumable: the next Open rescans the sealed segments and the
// (still temp-named) active file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	var err error
	if s.fsync {
		err = s.active.Sync()
	}
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	s.active = nil
	return err
}
