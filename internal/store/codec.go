package store

import (
	"encoding/binary"
	"fmt"
	"math"
)

// matMagic versions the dense-matrix payload encoding. Integrity is the
// segment layer's job (CRC-framed records); the codec only has to make
// the round trip bitwise-exact, because the density prefix-reuse path
// feeds decoded matrices straight back into SCF as initial guesses.
const matMagic = "HFXMAT\x01"

// EncodeMatrix serializes an n×n dense matrix (row-major, len n*n) to
// a store payload. Float64 bit patterns are preserved exactly.
func EncodeMatrix(n int, data []float64) []byte {
	b := make([]byte, 0, len(matMagic)+4+8*len(data))
	b = append(b, matMagic...)
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	for _, v := range data {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// DecodeMatrix parses an EncodeMatrix payload back to (n, data).
func DecodeMatrix(b []byte) (int, []float64, error) {
	if len(b) < len(matMagic)+4 || string(b[:len(matMagic)]) != matMagic {
		return 0, nil, fmt.Errorf("store: not a matrix payload")
	}
	n := int(binary.LittleEndian.Uint32(b[len(matMagic):]))
	body := b[len(matMagic)+4:]
	if n < 0 || len(body) != 8*n*n {
		return 0, nil, fmt.Errorf("store: matrix payload length %d does not match n=%d", len(body), n)
	}
	data := make([]float64, n*n)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return n, data, nil
}
