package screen

import (
	"math"
	"testing"

	"hfxmd/internal/basis"
	"hfxmd/internal/chem"
	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
)

func waterEngine(n int) *integrals.Engine {
	var mol *chem.Molecule
	if n == 1 {
		mol = chem.Water()
	} else {
		mol = chem.WaterCluster(n, 1)
	}
	return integrals.NewEngine(basis.MustBuild("STO-3G", mol))
}

func TestPairListMonomerKeepsEverything(t *testing.T) {
	eng := waterEngine(1)
	res := BuildPairList(eng, DefaultOptions())
	ns := eng.Basis.NShells()
	want := ns * (ns + 1) / 2
	if res.Stats.TotalPairs != want {
		t.Fatalf("total pairs %d want %d", res.Stats.TotalPairs, want)
	}
	if len(res.Pairs) != want {
		t.Fatalf("a single water should keep all %d pairs, kept %d", want, len(res.Pairs))
	}
}

func TestPairListSortedDescending(t *testing.T) {
	res := BuildPairList(waterEngine(4), DefaultOptions())
	for i := 1; i < len(res.Pairs); i++ {
		if res.Pairs[i].Q > res.Pairs[i-1].Q {
			t.Fatal("pair list not sorted by descending Q")
		}
	}
}

func TestScreeningRemovesDistantPairs(t *testing.T) {
	// Two waters 40 bohr apart: the cross pairs must be screened out.
	m := chem.Water()
	w2 := chem.Water()
	w2.Translate(chem.Vec3{40, 0, 0})
	m = m.Merge(w2)
	eng := integrals.NewEngine(basis.MustBuild("STO-3G", m))
	res := BuildPairList(eng, DefaultOptions())
	for _, p := range res.Pairs {
		sa := &eng.Basis.Shells[p.A]
		sb := &eng.Basis.Shells[p.B]
		if sa.Atom < 3 != (sb.Atom < 3) {
			t.Fatalf("cross-molecule pair (%d,%d) at R=%.1f survived", p.A, p.B, p.R)
		}
	}
	if res.Stats.SchwarzSurvived >= res.Stats.TotalPairs {
		t.Fatal("screening removed nothing")
	}
}

func TestTighterThresholdKeepsMorePairs(t *testing.T) {
	eng := waterEngine(8)
	loose := BuildPairList(eng, Options{Threshold: 1e-4, ExtentEps: 1e-10})
	tight := BuildPairList(eng, Options{Threshold: 1e-12, ExtentEps: 1e-10})
	if len(tight.Pairs) < len(loose.Pairs) {
		t.Fatalf("tight %d < loose %d", len(tight.Pairs), len(loose.Pairs))
	}
}

func TestNoDistanceAblation(t *testing.T) {
	eng := waterEngine(8)
	with := BuildPairList(eng, Options{Threshold: 1e-8, ExtentEps: 1e-10})
	without := BuildPairList(eng, Options{Threshold: 1e-8, ExtentEps: 1e-10, NoDistance: true})
	if without.Stats.DistanceSurvived != without.Stats.TotalPairs {
		t.Fatal("NoDistance should pass every pair through the pre-screen")
	}
	// Schwarz alone must keep at least as many pairs as distance+Schwarz.
	if len(without.Pairs) < len(with.Pairs) {
		t.Fatalf("schwarz-only %d < combined %d", len(without.Pairs), len(with.Pairs))
	}
}

func TestQuartetSurvives(t *testing.T) {
	res := &Result{Opts: Options{Threshold: 1e-8}}
	strong := Pair{Q: 1.0}
	weak := Pair{Q: 1e-5}
	if !res.QuartetSurvives(strong, strong) {
		t.Fatal("strong quartet rejected")
	}
	if res.QuartetSurvives(weak, Pair{Q: 1e-4}) {
		t.Fatal("weak quartet accepted")
	}
	if res.QuartetSurvivesWeighted(strong, strong, 1e-9) {
		t.Fatal("density weighting ignored")
	}
	if !res.QuartetSurvivesWeighted(weak, weak, 1e8) {
		t.Fatal("large density should rescue quartet")
	}
}

func TestMaxDensityAbs(t *testing.T) {
	eng := waterEngine(1)
	n := eng.Basis.NBasis
	p := linalg.NewSquare(n)
	// Put a large element coupling shell 0 (O 1s, index 0) and shell 4
	// (H 1s, last index).
	p.Set(0, n-1, -3.5)
	got := MaxDensityAbs(eng.Basis, p, 0, 1, 4, 3)
	if math.Abs(got-3.5) > 1e-15 {
		t.Fatalf("MaxDensityAbs got %g want 3.5", got)
	}
	// A quartet not touching that element sees 0.
	if got := MaxDensityAbs(eng.Basis, p, 1, 2, 2, 3); got != 0 {
		t.Fatalf("expected 0, got %g", got)
	}
}

// TestMaxDensityAbsQuartetMatchesTwoCalls: the fused bound must equal the
// max of the two MaxDensityAbs calls it replaces in the HFX hot loop, for
// every quartet of an asymmetric dense matrix.
func TestMaxDensityAbsQuartetMatchesTwoCalls(t *testing.T) {
	eng := waterEngine(1)
	n := eng.Basis.NBasis
	p := linalg.NewSquare(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p.Set(i, j, math.Sin(float64(3*i+7*j+1))*float64(1+i-j))
		}
	}
	ns := len(eng.Basis.Shells)
	for a := 0; a < ns; a++ {
		for b := a; b < ns; b++ {
			for c := 0; c < ns; c++ {
				for d := c; d < ns; d++ {
					want := MaxDensityAbs(eng.Basis, p, a, b, c, d)
					if w2 := MaxDensityAbs(eng.Basis, p, a, c, b, d); w2 > want {
						want = w2
					}
					got := MaxDensityAbsQuartet(eng.Basis, p, a, b, c, d)
					if got != want {
						t.Fatalf("quartet (%d%d|%d%d): fused %g, two-call %g", a, b, c, d, got, want)
					}
				}
			}
		}
	}
}

func TestPeriodicMinimumImageScreening(t *testing.T) {
	// In a periodic box, shells near opposite faces are close under the
	// minimum-image convention: the distance pre-screen must keep them,
	// whereas the same geometry without a cell drops them.
	build := func(periodic bool) Stats {
		m := chem.Water()
		w2 := chem.Water()
		l := 40.0
		w2.Translate(chem.Vec3{l - 1.5, 0, 0}) // 1.5 bohr via minimum image
		m = m.Merge(w2)
		if periodic {
			m.Cell = &chem.Cell{L: chem.Vec3{l, l, l}}
		}
		eng := integrals.NewEngine(basis.MustBuild("STO-3G", m))
		return BuildPairList(eng, DefaultOptions()).Stats
	}
	open := build(false)
	pbc := build(true)
	if pbc.DistanceSurvived <= open.DistanceSurvived {
		t.Fatalf("minimum image should keep more pairs through the distance screen: pbc %d vs open %d",
			pbc.DistanceSurvived, open.DistanceSurvived)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{TotalPairs: 100, DistanceSurvived: 60, SchwarzSurvived: 40}
	if got := s.String(); got == "" {
		t.Fatal("empty stats string")
	}
}

func TestBuildPairListThreadsDeterministic(t *testing.T) {
	eng := waterEngine(4)
	opts := DefaultOptions()
	opts.Threads = 1
	ref := BuildPairList(eng, opts)
	for _, nw := range []int{2, 3, 8} {
		opts.Threads = nw
		got := BuildPairList(eng, opts)
		if len(got.Pairs) != len(ref.Pairs) {
			t.Fatalf("threads=%d: %d pairs, want %d", nw, len(got.Pairs), len(ref.Pairs))
		}
		for i := range ref.Pairs {
			if got.Pairs[i] != ref.Pairs[i] {
				t.Fatalf("threads=%d: pair %d = %+v, want %+v", nw, i, got.Pairs[i], ref.Pairs[i])
			}
		}
		if got.Stats.TotalPairs != ref.Stats.TotalPairs ||
			got.Stats.DistanceSurvived != ref.Stats.DistanceSurvived ||
			got.Stats.SchwarzSurvived != ref.Stats.SchwarzSurvived {
			t.Fatalf("threads=%d: counts differ: %+v vs %+v", nw, got.Stats, ref.Stats)
		}
		if d := linalg.MaxAbsDiff(got.Q, ref.Q); d != 0 {
			t.Fatalf("threads=%d: Schwarz matrix differs by %g", nw, d)
		}
	}
}

func TestBuildPairListWallTimesRecorded(t *testing.T) {
	res := BuildPairList(waterEngine(4), DefaultOptions())
	if res.Stats.SchwarzWall <= 0 || res.Stats.PairWall <= 0 {
		t.Fatalf("wall times not recorded: %+v", res.Stats)
	}
	if res.Stats.Wall() != res.Stats.SchwarzWall+res.Stats.PairWall {
		t.Fatal("Wall() is not the phase sum")
	}
	if res.Stats.Threads <= 0 {
		t.Fatalf("thread count not recorded: %d", res.Stats.Threads)
	}
}

// benchPairListEngine builds the (H2O)_8 / 6-31G system of the scaling
// acceptance test, warming the engine's shell-pair cache so the benchmark
// times screening work rather than one-time pair setup.
func benchPairListEngine(b *testing.B) *integrals.Engine {
	b.Helper()
	eng := integrals.NewEngine(basis.MustBuild("6-31G", chem.WaterCluster(8, 1)))
	BuildPairList(eng, DefaultOptions())
	return eng
}

func benchmarkBuildPairList(b *testing.B, threads int) {
	eng := benchPairListEngine(b)
	opts := DefaultOptions()
	opts.Threads = threads
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildPairList(eng, opts)
	}
}

func BenchmarkBuildPairListThreads1(b *testing.B) { benchmarkBuildPairList(b, 1) }
func BenchmarkBuildPairListThreads4(b *testing.B) { benchmarkBuildPairList(b, 4) }
