package screen

import (
	"math"
	"testing"

	"hfxmd/internal/basis"
	"hfxmd/internal/chem"
	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
)

func waterEngine(n int) *integrals.Engine {
	var mol *chem.Molecule
	if n == 1 {
		mol = chem.Water()
	} else {
		mol = chem.WaterCluster(n, 1)
	}
	return integrals.NewEngine(basis.MustBuild("STO-3G", mol))
}

func TestPairListMonomerKeepsEverything(t *testing.T) {
	eng := waterEngine(1)
	res := BuildPairList(eng, DefaultOptions())
	ns := eng.Basis.NShells()
	want := ns * (ns + 1) / 2
	if res.Stats.TotalPairs != want {
		t.Fatalf("total pairs %d want %d", res.Stats.TotalPairs, want)
	}
	if len(res.Pairs) != want {
		t.Fatalf("a single water should keep all %d pairs, kept %d", want, len(res.Pairs))
	}
}

func TestPairListSortedDescending(t *testing.T) {
	res := BuildPairList(waterEngine(4), DefaultOptions())
	for i := 1; i < len(res.Pairs); i++ {
		if res.Pairs[i].Q > res.Pairs[i-1].Q {
			t.Fatal("pair list not sorted by descending Q")
		}
	}
}

func TestScreeningRemovesDistantPairs(t *testing.T) {
	// Two waters 40 bohr apart: the cross pairs must be screened out.
	m := chem.Water()
	w2 := chem.Water()
	w2.Translate(chem.Vec3{40, 0, 0})
	m = m.Merge(w2)
	eng := integrals.NewEngine(basis.MustBuild("STO-3G", m))
	res := BuildPairList(eng, DefaultOptions())
	for _, p := range res.Pairs {
		sa := &eng.Basis.Shells[p.A]
		sb := &eng.Basis.Shells[p.B]
		if sa.Atom < 3 != (sb.Atom < 3) {
			t.Fatalf("cross-molecule pair (%d,%d) at R=%.1f survived", p.A, p.B, p.R)
		}
	}
	if res.Stats.SchwarzSurvived >= res.Stats.TotalPairs {
		t.Fatal("screening removed nothing")
	}
}

func TestTighterThresholdKeepsMorePairs(t *testing.T) {
	eng := waterEngine(8)
	loose := BuildPairList(eng, Options{Threshold: 1e-4, ExtentEps: 1e-10})
	tight := BuildPairList(eng, Options{Threshold: 1e-12, ExtentEps: 1e-10})
	if len(tight.Pairs) < len(loose.Pairs) {
		t.Fatalf("tight %d < loose %d", len(tight.Pairs), len(loose.Pairs))
	}
}

func TestNoDistanceAblation(t *testing.T) {
	eng := waterEngine(8)
	with := BuildPairList(eng, Options{Threshold: 1e-8, ExtentEps: 1e-10})
	without := BuildPairList(eng, Options{Threshold: 1e-8, ExtentEps: 1e-10, NoDistance: true})
	if without.Stats.DistanceSurvived != without.Stats.TotalPairs {
		t.Fatal("NoDistance should pass every pair through the pre-screen")
	}
	// Schwarz alone must keep at least as many pairs as distance+Schwarz.
	if len(without.Pairs) < len(with.Pairs) {
		t.Fatalf("schwarz-only %d < combined %d", len(without.Pairs), len(with.Pairs))
	}
}

func TestQuartetSurvives(t *testing.T) {
	res := &Result{Opts: Options{Threshold: 1e-8}}
	strong := Pair{Q: 1.0}
	weak := Pair{Q: 1e-5}
	if !res.QuartetSurvives(strong, strong) {
		t.Fatal("strong quartet rejected")
	}
	if res.QuartetSurvives(weak, Pair{Q: 1e-4}) {
		t.Fatal("weak quartet accepted")
	}
	if res.QuartetSurvivesWeighted(strong, strong, 1e-9) {
		t.Fatal("density weighting ignored")
	}
	if !res.QuartetSurvivesWeighted(weak, weak, 1e8) {
		t.Fatal("large density should rescue quartet")
	}
}

func TestMaxDensityAbs(t *testing.T) {
	eng := waterEngine(1)
	n := eng.Basis.NBasis
	p := linalg.NewSquare(n)
	// Put a large element coupling shell 0 (O 1s, index 0) and shell 4
	// (H 1s, last index).
	p.Set(0, n-1, -3.5)
	got := MaxDensityAbs(eng.Basis, p, 0, 1, 4, 3)
	if math.Abs(got-3.5) > 1e-15 {
		t.Fatalf("MaxDensityAbs got %g want 3.5", got)
	}
	// A quartet not touching that element sees 0.
	if got := MaxDensityAbs(eng.Basis, p, 1, 2, 2, 3); got != 0 {
		t.Fatalf("expected 0, got %g", got)
	}
}

func TestPeriodicMinimumImageScreening(t *testing.T) {
	// In a periodic box, shells near opposite faces are close under the
	// minimum-image convention: the distance pre-screen must keep them,
	// whereas the same geometry without a cell drops them.
	build := func(periodic bool) Stats {
		m := chem.Water()
		w2 := chem.Water()
		l := 40.0
		w2.Translate(chem.Vec3{l - 1.5, 0, 0}) // 1.5 bohr via minimum image
		m = m.Merge(w2)
		if periodic {
			m.Cell = &chem.Cell{L: chem.Vec3{l, l, l}}
		}
		eng := integrals.NewEngine(basis.MustBuild("STO-3G", m))
		return BuildPairList(eng, DefaultOptions()).Stats
	}
	open := build(false)
	pbc := build(true)
	if pbc.DistanceSurvived <= open.DistanceSurvived {
		t.Fatalf("minimum image should keep more pairs through the distance screen: pbc %d vs open %d",
			pbc.DistanceSurvived, open.DistanceSurvived)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{TotalPairs: 100, DistanceSurvived: 60, SchwarzSurvived: 40}
	if got := s.String(); got == "" {
		t.Fatal("empty stats string")
	}
}
