package screen

import "hfxmd/internal/chem"

// MaxDisplacement returns the largest per-atom displacement (bohr)
// between a reference position snapshot and the molecule's current
// geometry — the invalidation metric for cross-step pair-list reuse.
// Schwarz bounds decay smoothly with geometry, so a pair list built at
// the reference stays a valid screening surrogate while every atom has
// moved less than a small bound; past it the caller must rebuild. A
// length mismatch (a different system) returns a huge value so any
// finite bound forces the rebuild.
func MaxDisplacement(ref []chem.Vec3, m *chem.Molecule) float64 {
	if len(ref) != m.NAtoms() {
		return 1e308
	}
	var worst float64
	for i := range ref {
		if d := m.Atoms[i].Pos.Sub(ref[i]).Norm(); d > worst {
			worst = d
		}
	}
	return worst
}
