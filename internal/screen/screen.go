// Package screen implements the integral screening machinery that gives
// the paper's HFX evaluation its "highly controllable" accuracy and its
// condensed-phase efficiency:
//
//   - Cauchy–Schwarz shell-pair norms Q_ab = √(ab|ab) provide the rigorous
//     bound |(ab|cd)| ≤ Q_ab·Q_cd;
//   - shell-pair extents discard pairs whose Gaussian overlap is
//     negligible at their separation (real-space cutoff, minimum-image
//     aware for periodic cells);
//   - density weighting tightens the quartet bound by the largest density
//     matrix element that would multiply the integral in the exchange
//     contraction.
//
// The surviving pair list is the unit of work for the paper's task
// decomposition (package hfx).
package screen

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hfxmd/internal/basis"
	"hfxmd/internal/integrals"
	"hfxmd/internal/linalg"
)

// Pair is a surviving shell pair (A ≤ B) with its Schwarz norm and the
// Gaussian-product weight used by the cost model.
type Pair struct {
	A, B int
	// Q is the Cauchy–Schwarz norm √(ab|ab).
	Q float64
	// R is the inter-centre distance (minimum image when periodic).
	R float64
}

// Options controls the screening pipeline.
type Options struct {
	// Threshold is the integral neglect threshold ε: a quartet (ab|cd) is
	// skipped when Q_ab·Q_cd < ε (optionally density-weighted).
	Threshold float64
	// ExtentEps sets the amplitude cutoff defining shell extents for the
	// distance pre-screen; pairs separated by more than the sum of their
	// extents are discarded before any integral is touched.
	ExtentEps float64
	// NoDistance disables the real-space pre-screen (for ablation).
	NoDistance bool
	// Threads is the number of worker goroutines used for the Schwarz
	// matrix and the pair sweep, following the hfx.Options.Threads
	// convention: zero (or negative) means GOMAXPROCS. The result is
	// identical for every worker count.
	Threads int
}

// DefaultOptions matches the accuracy target used throughout the paper's
// production runs (ε = 1e-8).
func DefaultOptions() Options {
	return Options{Threshold: 1e-8, ExtentEps: 1e-10}
}

// Result is the output of the screening pipeline.
type Result struct {
	// Pairs is the surviving shell-pair list, sorted by descending Q.
	Pairs []Pair
	// Q is the full shell-pair Schwarz matrix (kept for quartet tests).
	Q *linalg.Matrix
	// Stats describes how much work screening removed.
	Stats Stats
	// Opts echoes the options used.
	Opts Options
}

// Stats quantifies screening effectiveness and cost.
type Stats struct {
	// TotalPairs is the number of unique shell pairs before screening.
	TotalPairs int
	// DistanceSurvived is the count after the real-space pre-screen.
	DistanceSurvived int
	// SchwarzSurvived is the final pair count.
	SchwarzSurvived int
	// SchwarzWall is the wall time spent building the Schwarz matrix.
	SchwarzWall time.Duration
	// PairWall is the wall time of the pair sweep (distance + Schwarz
	// tests and the final sort).
	PairWall time.Duration
	// Threads is the worker count the pipeline actually used.
	Threads int
}

// Wall returns the total screening wall time.
func (s Stats) Wall() time.Duration { return s.SchwarzWall + s.PairWall }

// String renders the screening statistics.
func (s Stats) String() string {
	return fmt.Sprintf("pairs %d -> distance %d -> schwarz %d (%.1f%% survive)",
		s.TotalPairs, s.DistanceSurvived, s.SchwarzSurvived,
		100*float64(s.SchwarzSurvived)/math.Max(1, float64(s.TotalPairs)))
}

// BuildPairList runs the screening pipeline over a basis set. The Schwarz
// matrix and the pair sweep are parallelised over shell rows across
// opts.Threads workers (zero means GOMAXPROCS); rows are claimed
// dynamically because row a carries ns−a candidate pairs, so static
// striding would leave the worker holding the early rows far behind.
// Per-row results are concatenated in row order before the final sort, so
// the output is identical for every worker count.
func BuildPairList(eng *integrals.Engine, opts Options) *Result {
	set := eng.Basis
	ns := set.NShells()
	res := &Result{Opts: opts}

	nw := opts.Threads
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw > ns && ns > 0 {
		nw = ns
	}
	res.Stats.Threads = nw

	start := time.Now()
	res.Q = eng.SchwarzMatrixThreads(opts.Threads)
	res.Stats.SchwarzWall = time.Since(start)

	start = time.Now()
	cell := set.Mol.Cell
	dist := func(a, b *basis.Shell) float64 {
		if cell != nil {
			return cell.MinimumImage(a.Center, b.Center).Norm()
		}
		d := [3]float64{
			a.Center[0] - b.Center[0],
			a.Center[1] - b.Center[1],
			a.Center[2] - b.Center[2],
		}
		return math.Sqrt(d[0]*d[0] + d[1]*d[1] + d[2]*d[2])
	}

	// The pair survives the Schwarz screen when its norm could still
	// contribute against the *largest* partner pair norm in the system.
	var qmax float64
	for a := 0; a < ns; a++ {
		for b := a; b < ns; b++ {
			if v := res.Q.At(a, b); v > qmax {
				qmax = v
			}
		}
	}

	rowPairs := make([][]Pair, ns)
	var distSurvived, schwarzSurvived atomic.Int64
	var nextRow atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				a := int(nextRow.Add(1)) - 1
				if a >= ns {
					return
				}
				sa := &set.Shells[a]
				var ds, ss int64
				for b := a; b < ns; b++ {
					sb := &set.Shells[b]
					r := dist(sa, sb)
					if !opts.NoDistance {
						if r > sa.Extent(opts.ExtentEps)+sb.Extent(opts.ExtentEps) {
							continue
						}
					}
					ds++
					q := res.Q.At(a, b)
					if q*qmax < opts.Threshold {
						continue
					}
					ss++
					rowPairs[a] = append(rowPairs[a], Pair{A: a, B: b, Q: q, R: r})
				}
				distSurvived.Add(ds)
				schwarzSurvived.Add(ss)
			}
		}()
	}
	wg.Wait()

	res.Stats.TotalPairs = ns * (ns + 1) / 2
	res.Stats.DistanceSurvived = int(distSurvived.Load())
	res.Stats.SchwarzSurvived = int(schwarzSurvived.Load())
	res.Pairs = make([]Pair, 0, res.Stats.SchwarzSurvived)
	for a := 0; a < ns; a++ {
		res.Pairs = append(res.Pairs, rowPairs[a]...)
	}
	// Descending Q: the HFX task generator consumes pairs most-significant
	// first so that the quartet loop can break out early. SliceStable keeps
	// the row-ordered concatenation deterministic among equal norms.
	sort.SliceStable(res.Pairs, func(i, j int) bool { return res.Pairs[i].Q > res.Pairs[j].Q })
	res.Stats.PairWall = time.Since(start)
	return res
}

// QuartetSurvives applies the Schwarz product test for a quartet built
// from two surviving pairs.
func (r *Result) QuartetSurvives(p1, p2 Pair) bool {
	return p1.Q*p2.Q >= r.Opts.Threshold
}

// QuartetSurvivesWeighted applies the density-weighted Schwarz test
// |P|·Q_ab·Q_cd ≥ ε with pmax the relevant density-matrix magnitude.
func (r *Result) QuartetSurvivesWeighted(p1, p2 Pair, pmax float64) bool {
	return pmax*p1.Q*p2.Q >= r.Opts.Threshold
}

// MaxDensityAbs returns max |P_ij| over the blocks coupling two shell
// pairs in the exchange contraction; used for density-weighted screening.
// The exchange term K_{μν} += P_{λσ}(μλ|νσ) couples the bra pair (μλ) and
// ket pair (νσ) through P on the λσ positions, so the four cross blocks
// are examined.
func MaxDensityAbs(set *basis.Set, p *linalg.Matrix, a, b, c, d int) float64 {
	blockMax := func(s1, s2 int) float64 {
		sh1, sh2 := &set.Shells[s1], &set.Shells[s2]
		var m float64
		for i := sh1.Index; i < sh1.Index+sh1.NFuncs(); i++ {
			row := p.Row(i)
			for j := sh2.Index; j < sh2.Index+sh2.NFuncs(); j++ {
				if v := math.Abs(row[j]); v > m {
					m = v
				}
			}
		}
		return m
	}
	m := blockMax(a, c)
	for _, bm := range []float64{blockMax(a, d), blockMax(b, c), blockMax(b, d)} {
		if bm > m {
			m = bm
		}
	}
	return m
}

// MaxDensityAbsQuartet returns the fused density bound for the quartet
// (ab|cd): the maximum of MaxDensityAbs(a,b,c,d) (exchange coupling
// blocks) and MaxDensityAbs(a,c,b,d) (the Coulomb-relevant bra/ket blocks)
// computed in one pass. The union of the two four-block scans is seven
// distinct blocks — (a,c) appears in both — so the fused form does the
// same work as 1¾ calls instead of 2, and saves the call overhead in the
// screening hot loop.
func MaxDensityAbsQuartet(set *basis.Set, p *linalg.Matrix, a, b, c, d int) float64 {
	var m float64
	blockMax := func(s1, s2 int) {
		sh1, sh2 := &set.Shells[s1], &set.Shells[s2]
		lo, hi := sh2.Index, sh2.Index+sh2.NFuncs()
		for i := sh1.Index; i < sh1.Index+sh1.NFuncs(); i++ {
			row := p.Row(i)
			for j := lo; j < hi; j++ {
				if v := math.Abs(row[j]); v > m {
					m = v
				}
			}
		}
	}
	// MaxDensityAbs(a,b,c,d) blocks: (a,c) (a,d) (b,c) (b,d).
	blockMax(a, c)
	blockMax(a, d)
	blockMax(b, c)
	blockMax(b, d)
	// MaxDensityAbs(a,c,b,d) adds: (a,b) (c,b) (c,d); (a,d) is shared.
	blockMax(a, b)
	blockMax(c, b)
	blockMax(c, d)
	return m
}
