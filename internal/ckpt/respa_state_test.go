package ckpt

import (
	"encoding/binary"
	"testing"

	"hfxmd/internal/chem"
)

// respaState is testState plus the slow-force section that marks a
// version-2 (RESPA) state.
func respaState(step int64, n int) *MDState {
	s := testState(step, n)
	for i := 0; i < n; i++ {
		f := float64(i+1) * 0.125
		s.Slow = append(s.Slow, chem.Vec3{f, -2 * f, f * f})
	}
	return s
}

func TestRespaStateEncodeDecodeRoundtrip(t *testing.T) {
	want := respaState(23, 4)
	img := EncodeState(want)
	if v := binary.LittleEndian.Uint64(img); v != stateVersionRESPA {
		t.Fatalf("RESPA state encoded as version %d, want %d", v, stateVersionRESPA)
	}
	got, err := DecodeState(img)
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, got, want)
	if _, err := DecodeState(img[:len(img)-8]); err == nil {
		t.Fatal("truncated RESPA image should not decode")
	}
}

// TestPlainStateImageUnchanged pins the version-1 wire format: a state
// without a slow force must encode exactly as before the RESPA
// extension, so every existing checkpoint, smoke fingerprint and
// bitwise pin stays valid.
func TestPlainStateImageUnchanged(t *testing.T) {
	s := testState(17, 5)
	img := EncodeState(s)
	if v := binary.LittleEndian.Uint64(img); v != stateVersion {
		t.Fatalf("plain state encoded as version %d, want %d", v, stateVersion)
	}
	if want := 10*8 + 3*24*len(s.Pos); len(img) != want {
		t.Fatalf("plain image is %d bytes, want %d (no slow section)", len(img), want)
	}
}

func TestRespaSnapshotRoundtrip(t *testing.T) {
	dir := t.TempDir()
	want := respaState(8, 3)
	path, err := WriteSnapshot(dir, want, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, got, want)
}

func TestRespaCloneCopiesSlow(t *testing.T) {
	s := respaState(3, 2)
	c := s.Clone()
	sameState(t, c, s)
	c.Slow[0][0] = 99
	if s.Slow[0][0] == 99 {
		t.Fatal("Clone must deep-copy the slow force")
	}
}
