package ckpt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hfxmd/internal/trace"
)

// ErrInjectedCrash is returned by Writer.OnStep when the fault plan
// fires: the driver must stop as if the process had died. The md layer
// wraps it in a StepError; tests match it with errors.Is.
var ErrInjectedCrash = errors.New("ckpt: injected crash (fault plan)")

// ErrNoCheckpoint is returned by Load when the directory holds no
// usable state at all.
var ErrNoCheckpoint = errors.New("ckpt: no usable checkpoint state")

// FaultPlan injects crash and corruption faults into a Writer, the test
// harness for every resume path. The zero value injects nothing.
type FaultPlan struct {
	// CrashAtStep makes OnStep return ErrInjectedCrash after processing
	// that step (0 disables; step 0 is never a crash point).
	CrashAtStep int64
	// TornWrite, with CrashAtStep, crashes halfway through that step's
	// journal record: only a prefix of the frame reaches the file.
	TornWrite bool
	// CorruptSection, with CrashAtStep, flips one byte in the named
	// section of the newest snapshot after the step completes — the
	// resume must detect the damage and fall back.
	CorruptSection string
}

// Config configures a Writer.
type Config struct {
	// Dir is the checkpoint directory (created if absent).
	Dir string
	// Every is the snapshot cadence in steps (default 10). The journal
	// covers the steps in between, so a crash loses nothing.
	Every int64
	// Keep is the snapshot ring size (default 3).
	Keep int
	// NoFsync skips fsync — only for benchmarks measuring the format
	// cost apart from the disk.
	NoFsync bool
	// Plan optionally injects faults.
	Plan *FaultPlan
	// Registry receives ckpt.* counters and timers (optional).
	Registry *trace.Registry
}

// Writer persists an MD trajectory: one journal record per step and a
// ring of periodic snapshots. Not safe for concurrent use — MD steps
// are sequential by construction.
type Writer struct {
	cfg      Config
	j        *journal
	lastSnap string
}

// NewWriter opens a checkpoint directory for writing.
func NewWriter(cfg Config) (*Writer, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("ckpt: Config.Dir is required")
	}
	if cfg.Every <= 0 {
		cfg.Every = 10
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 3
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	j, err := openJournal(journalPath(cfg.Dir), !cfg.NoFsync)
	if err != nil {
		return nil, err
	}
	w := &Writer{cfg: cfg, j: j}
	if steps, err := ListSnapshots(cfg.Dir); err == nil && len(steps) > 0 {
		w.lastSnap = filepath.Join(cfg.Dir, SnapshotName(steps[len(steps)-1]))
	}
	return w, nil
}

// Dir returns the checkpoint directory.
func (w *Writer) Dir() string { return w.cfg.Dir }

// reg returns the registry (never nil).
func (w *Writer) reg() *trace.Registry {
	if w.cfg.Registry == nil {
		w.cfg.Registry = trace.NewRegistry()
	}
	return w.cfg.Registry
}

// OnStep makes one completed MD step durable: a journal record always,
// plus a snapshot (and journal reset) every cfg.Every steps. Fault-plan
// crashes surface as ErrInjectedCrash after the injected damage is on
// disk.
func (w *Writer) OnStep(s *MDState) error {
	reg := w.reg()
	crash := w.cfg.Plan != nil && w.cfg.Plan.CrashAtStep > 0 && s.Step == w.cfg.Plan.CrashAtStep

	if crash && w.cfg.Plan.TornWrite {
		fr := frame(EncodeState(s))
		if _, err := w.j.writeRaw(fr[:len(fr)/2]); err != nil {
			return err
		}
		return fmt.Errorf("journal record for step %d torn: %w", s.Step, ErrInjectedCrash)
	}

	t0 := time.Now()
	n, err := w.j.append(s)
	if err != nil {
		return fmt.Errorf("ckpt: journal append step %d: %w", s.Step, err)
	}
	reg.Timer.Charge("ckpt.journal_append", time.Since(t0))
	reg.Counter("ckpt.journal_appends").Add(1)
	reg.Counter("ckpt.journal_bytes").Add(int64(n))

	if s.Step > 0 && s.Step%w.cfg.Every == 0 {
		if err := w.snapshot(s); err != nil {
			return err
		}
	}

	if crash {
		if sec := w.cfg.Plan.CorruptSection; sec != "" && w.lastSnap != "" {
			if err := corruptSection(w.lastSnap, sec); err != nil {
				return err
			}
		}
		return fmt.Errorf("after step %d: %w", s.Step, ErrInjectedCrash)
	}
	return nil
}

// snapshot writes one ring snapshot and resets the journal, in that
// order: the journal is only discarded once its replacement is durable.
func (w *Writer) snapshot(s *MDState) error {
	reg := w.reg()
	t0 := time.Now()
	path, err := WriteSnapshot(w.cfg.Dir, s, !w.cfg.NoFsync)
	if err != nil {
		return fmt.Errorf("ckpt: snapshot step %d: %w", s.Step, err)
	}
	reg.Timer.Charge("ckpt.snapshot_write", time.Since(t0))
	reg.Counter("ckpt.snapshots").Add(1)
	if fi, err := os.Stat(path); err == nil {
		reg.Counter("ckpt.snapshot_bytes").Add(fi.Size())
	}
	w.lastSnap = path
	pruneRing(w.cfg.Dir, w.cfg.Keep)
	if err := w.j.reset(); err != nil {
		return fmt.Errorf("ckpt: journal reset after snapshot %d: %w", s.Step, err)
	}
	return nil
}

// Close releases the journal handle. The directory remains resumable.
func (w *Writer) Close() error {
	if w.j == nil {
		return nil
	}
	err := w.j.close()
	w.j = nil
	return err
}

// Resume is the outcome of Load: the most advanced durable state and
// how it was reached.
type Resume struct {
	// State is the restored MD state.
	State *MDState
	// SnapshotStep is the newest valid snapshot's step (-1 if none).
	SnapshotStep int64
	// JournalStep is the last valid journal record's step (-1 if none).
	JournalStep int64
	// ReplayedSteps counts journal records ahead of the snapshot that
	// the resume point absorbed.
	ReplayedSteps int64
	// Fallbacks counts corrupt or truncated snapshots that were skipped
	// before a valid one was found.
	Fallbacks int
}

// Load restores the most advanced durable state from a checkpoint
// directory: the last valid journal record or, if the journal is behind
// (or empty), the newest CRC-clean snapshot. Corrupt snapshots are
// skipped oldest-preferred (newest first, falling back), corrupt
// journal tails are truncated at the last good record. Registry may be
// nil.
func Load(dir string, reg *trace.Registry) (*Resume, error) {
	if reg == nil {
		reg = trace.NewRegistry()
	}
	r := &Resume{SnapshotStep: -1, JournalStep: -1}

	records, err := readJournal(journalPath(dir))
	if err != nil {
		return nil, err
	}
	if len(records) > 0 {
		r.JournalStep = records[len(records)-1].Step
	}

	steps, err := ListSnapshots(dir)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	var snap *MDState
	for i := len(steps) - 1; i >= 0; i-- {
		s, err := ReadSnapshot(filepath.Join(dir, SnapshotName(steps[i])))
		if err != nil {
			var ce *CorruptError
			if errors.As(err, &ce) {
				r.Fallbacks++
				reg.Counter("ckpt.fallbacks").Add(1)
				continue
			}
			return nil, err
		}
		snap = s
		r.SnapshotStep = s.Step
		break
	}

	switch {
	case r.JournalStep >= 0 && r.JournalStep >= r.SnapshotStep:
		r.State = records[len(records)-1]
		if r.SnapshotStep >= 0 {
			r.ReplayedSteps = r.JournalStep - r.SnapshotStep
		} else {
			r.ReplayedSteps = int64(len(records))
		}
	case snap != nil:
		r.State = snap
	default:
		return nil, ErrNoCheckpoint
	}
	reg.Counter("ckpt.replayed_steps").Add(r.ReplayedSteps)
	reg.Counter("ckpt.resumes").Add(1)
	return r, nil
}
