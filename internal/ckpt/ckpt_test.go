package ckpt

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hfxmd/internal/chem"
)

// testState builds a deterministic dummy state for a step.
func testState(step int64, n int) *MDState {
	s := &MDState{
		Step: step,
		Epot: -1.5 + float64(step)*1e-3,
		ELo:  -1.6, EHi: -1.4,
		RNG:        [3]uint64{uint64(step) * 7, 42, 1},
		ParamsHash: 0xdeadbeefcafe,
	}
	for i := 0; i < n; i++ {
		f := float64(i+1) + float64(step)*0.25
		s.Pos = append(s.Pos, chem.Vec3{f, -f, f * math.Pi})
		s.Vel = append(s.Vel, chem.Vec3{f * 1e-3, 0, -f * 1e-3})
		s.Frc = append(s.Frc, chem.Vec3{-f, f, 0.5})
	}
	return s
}

func sameState(t *testing.T, got, want *MDState) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("state mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestStateEncodeDecodeRoundtrip(t *testing.T) {
	want := testState(17, 5)
	got, err := DecodeState(EncodeState(want))
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, got, want)
	if _, err := DecodeState(EncodeState(want)[:40]); err == nil {
		t.Fatal("truncated image should not decode")
	}
}

func TestSnapshotRoundtripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	want := testState(8, 3)
	path, err := WriteSnapshot(dir, want, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, got, want)

	// Every section must be individually protected by its CRC.
	for _, sec := range sectionOrder {
		p, err := WriteSnapshot(dir, testState(9, 3), true)
		if err != nil {
			t.Fatal(err)
		}
		if err := corruptSection(p, sec); err != nil {
			t.Fatal(err)
		}
		_, err = ReadSnapshot(p)
		var ce *CorruptError
		if !errors.As(err, &ce) || ce.Section != sec {
			t.Fatalf("corrupted section %q: got %v", sec, err)
		}
	}

	// Truncation is detected too.
	b, _ := os.ReadFile(path)
	trunc := filepath.Join(dir, SnapshotName(99))
	if err := os.WriteFile(trunc, b[:len(b)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, err := ReadSnapshot(trunc); !errors.As(err, &ce) {
		t.Fatalf("truncated snapshot: got %v", err)
	}
}

func TestWriterRingAndJournal(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir, Every: 4, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	for step := int64(0); step <= 13; step++ {
		if err := w.OnStep(testState(step, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Snapshots at 4, 8, 12 with Keep=2 leave {8, 12}.
	steps, err := ListSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(steps, []int64{8, 12}) {
		t.Fatalf("ring = %v, want [8 12]", steps)
	}
	// The journal holds only the post-snapshot tail: step 13.
	recs, err := readJournal(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Step != 13 {
		t.Fatalf("journal records = %d (last %v)", len(recs), recs)
	}

	r, err := Load(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.State.Step != 13 || r.SnapshotStep != 12 || r.JournalStep != 13 || r.ReplayedSteps != 1 {
		t.Fatalf("resume = %+v", r)
	}
	sameState(t, r.State, testState(13, 2))
}

func TestLoadPrefersJournalHead(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir, Every: 100, Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	for step := int64(0); step <= 5; step++ {
		if err := w.OnStep(testState(step, 2)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	r, err := Load(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.State.Step != 5 || r.SnapshotStep != -1 || r.ReplayedSteps != 6 {
		t.Fatalf("resume = %+v", r)
	}
}

func TestLoadFallsBackPastCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir, Every: 4, Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	for step := int64(0); step <= 8; step++ {
		if err := w.OnStep(testState(step, 2)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	// Corrupt the newest snapshot (step 8); the journal was just reset,
	// so the resume must fall back to the snapshot at step 4.
	if err := corruptSection(filepath.Join(dir, SnapshotName(8)), SectionPositions); err != nil {
		t.Fatal(err)
	}
	r, err := Load(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.State.Step != 4 || r.Fallbacks != 1 {
		t.Fatalf("resume = %+v", r)
	}
	sameState(t, r.State, testState(4, 2))
}

func TestTornJournalTailIsDiscardedAndTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir, Every: 100, Keep: 3,
		Plan: &FaultPlan{CrashAtStep: 3, TornWrite: true}})
	if err != nil {
		t.Fatal(err)
	}
	var failed error
	for step := int64(0); step <= 3; step++ {
		if failed = w.OnStep(testState(step, 2)); failed != nil {
			break
		}
	}
	if !errors.Is(failed, ErrInjectedCrash) {
		t.Fatalf("want injected crash, got %v", failed)
	}
	w.Close()

	r, err := Load(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.State.Step != 2 {
		t.Fatalf("torn tail not discarded: resumed at %d", r.State.Step)
	}

	// Re-opening for append must drop the torn bytes so post-resume
	// records stay reachable.
	w2, err := NewWriter(Config{Dir: dir, Every: 100, Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.OnStep(testState(3, 2)); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	recs, err := readJournal(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[3].Step != 3 {
		t.Fatalf("journal after resume: %d records, last %+v", len(recs), recs[len(recs)-1])
	}
}

func TestLoadEmptyDir(t *testing.T) {
	if _, err := Load(t.TempDir(), nil); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
}

func TestWriterMetrics(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir, Every: 2, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	for step := int64(0); step <= 4; step++ {
		if err := w.OnStep(testState(step, 2)); err != nil {
			t.Fatal(err)
		}
	}
	reg := w.reg()
	w.Close()
	if got := reg.Counter("ckpt.journal_appends").Value(); got != 5 {
		t.Fatalf("journal_appends = %d", got)
	}
	if got := reg.Counter("ckpt.snapshots").Value(); got != 2 {
		t.Fatalf("snapshots = %d", got)
	}
	if reg.Counter("ckpt.snapshot_bytes").Value() <= 0 {
		t.Fatal("snapshot_bytes not recorded")
	}
	if reg.Timer.Get("ckpt.snapshot_write") <= 0 {
		t.Fatal("snapshot_write wall not charged")
	}
}
