package ckpt

import (
	"fmt"
	"path/filepath"
	"testing"

	"hfxmd/internal/chem"
)

// benchState builds a deterministic synthetic state with n atoms — large
// enough that encoding cost is visible, no SCF required.
func benchState(n int, step int64) *MDState {
	s := &MDState{
		Step: step,
		Pos:  make([]chem.Vec3, n),
		Vel:  make([]chem.Vec3, n),
		Frc:  make([]chem.Vec3, n),
		Epot: -76.026, ELo: -76.3, EHi: -76.0,
		RNG:        [3]uint64{0x9e3779b97f4a7c15, 42, 1},
		ParamsHash: 0xfeedface,
	}
	for i := 0; i < n; i++ {
		f := float64(i + 1)
		s.Pos[i] = chem.Vec3{f * 0.1, f * 0.2, f * 0.3}
		s.Vel[i] = chem.Vec3{f * 1e-4, -f * 1e-4, f * 2e-4}
		s.Frc[i] = chem.Vec3{-f * 1e-2, f * 1e-2, -f * 2e-2}
	}
	return s
}

// BenchmarkEncodeState measures the canonical serialisation alone — the
// cost every journal append and snapshot pays before touching the disk.
func BenchmarkEncodeState(b *testing.B) {
	s := benchState(64, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeState(s)
	}
}

// BenchmarkSnapshotWrite measures one durable (fsynced) ring snapshot:
// temp file, fsync, atomic rename, directory sync.
func BenchmarkSnapshotWrite(b *testing.B) {
	dir := b.TempDir()
	s := benchState(64, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step = int64(i)
		if _, err := WriteSnapshot(dir, s, true); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	pruneRing(dir, 3)
}

// BenchmarkJournalAppend measures one durable per-step journal record —
// the cost added to every MD step when checkpointing is on. The fsync
// dominates; BenchmarkJournalAppendNoFsync isolates the format cost.
func BenchmarkJournalAppend(b *testing.B) {
	benchJournalAppend(b, true)
}

func BenchmarkJournalAppendNoFsync(b *testing.B) {
	benchJournalAppend(b, false)
}

func benchJournalAppend(b *testing.B, fsync bool) {
	path := filepath.Join(b.TempDir(), "journal.wal")
	j, err := openJournal(path, fsync)
	if err != nil {
		b.Fatal(err)
	}
	defer j.close()
	s := benchState(64, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step = int64(i)
		if _, err := j.append(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResumeReplay measures Load on a directory holding one
// snapshot plus a 100-record journal ahead of it — the worst-case
// restore a default cadence (Every=10) never exceeds, padded 10×.
func BenchmarkResumeReplay(b *testing.B) {
	dir := b.TempDir()
	s := benchState(64, 0)
	if _, err := WriteSnapshot(dir, s, false); err != nil {
		b.Fatal(err)
	}
	j, err := openJournal(journalPath(dir), false)
	if err != nil {
		b.Fatal(err)
	}
	for step := int64(1); step <= 100; step++ {
		s.Step = step
		if _, err := j.append(s); err != nil {
			b.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Load(dir, nil)
		if err != nil {
			b.Fatal(err)
		}
		if r.State.Step != 100 {
			b.Fatalf("resumed at step %d, want 100", r.State.Step)
		}
	}
}

// TestBenchStateRoundTrips keeps the synthetic bench fixture honest: it
// must survive the same encode/decode path the real states use.
func TestBenchStateRoundTrips(t *testing.T) {
	s := benchState(7, 3)
	got, err := DecodeState(EncodeState(s))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", s) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}
