package ckpt

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"hfxmd/internal/chem"
)

// snapMagic identifies (and versions) the snapshot container format.
const snapMagic = "HFXCKPT\x01"

// Section names of a snapshot, in file order. SectionSlow is present
// only for RESPA states (layout version 2).
const (
	SectionMeta       = "meta"
	SectionEnergies   = "energies"
	SectionRNG        = "rng"
	SectionPositions  = "positions"
	SectionVelocities = "velocities"
	SectionForces     = "forces"
	SectionSlow       = "slow"
)

var sectionOrder = []string{
	SectionMeta, SectionEnergies, SectionRNG,
	SectionPositions, SectionVelocities, SectionForces,
}

// sectionsFor returns the file order for a state: the RESPA slow-force
// section is appended only when present, keeping plain-MD snapshot
// bytes unchanged.
func sectionsFor(s *MDState) []string {
	if s.Slow == nil {
		return sectionOrder
	}
	return append(append([]string(nil), sectionOrder...), SectionSlow)
}

// SnapshotName returns the ring filename of a step's snapshot.
func SnapshotName(step int64) string { return fmt.Sprintf("snap-%012d.ckpt", step) }

// snapshotStep parses a ring filename back to its step, or -1.
func snapshotStep(name string) int64 {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".ckpt") {
		return -1
	}
	n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".ckpt"), 10, 64)
	if err != nil {
		return -1
	}
	return n
}

// encodeSections splits a state into the named snapshot sections.
func encodeSections(s *MDState) map[string][]byte {
	u64s := func(vs ...uint64) []byte {
		b := make([]byte, 0, 8*len(vs))
		for _, v := range vs {
			b = binary.LittleEndian.AppendUint64(b, v)
		}
		return b
	}
	vecs := func(vs []chem.Vec3) []byte {
		b := make([]byte, 0, 24*len(vs))
		for _, v := range vs {
			for k := 0; k < 3; k++ {
				b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v[k]))
			}
		}
		return b
	}
	sects := map[string][]byte{
		SectionMeta:       u64s(stateEncodingVersion(s), uint64(s.Step), uint64(len(s.Pos)), s.ParamsHash),
		SectionEnergies:   u64s(math.Float64bits(s.Epot), math.Float64bits(s.ELo), math.Float64bits(s.EHi)),
		SectionRNG:        u64s(s.RNG[0], s.RNG[1], s.RNG[2]),
		SectionPositions:  vecs(s.Pos),
		SectionVelocities: vecs(s.Vel),
		SectionForces:     vecs(s.Frc),
	}
	if s.Slow != nil {
		sects[SectionSlow] = vecs(s.Slow)
	}
	return sects
}

// WriteSnapshot durably writes one snapshot into dir: temp file in the
// same directory, fsync, atomic rename, directory fsync. It returns the
// final path.
func WriteSnapshot(dir string, s *MDState, fsync bool) (string, error) {
	sects := encodeSections(s)
	order := sectionsFor(s)
	var buf []byte
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(order)))
	for _, name := range order {
		p := sects[name]
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(p)))
		buf = binary.LittleEndian.AppendUint32(buf, crcIEEE(p))
		buf = append(buf, p...)
	}
	final := filepath.Join(dir, SnapshotName(s.Step))
	if err := AtomicWriteFile(dir, SnapshotName(s.Step), buf, fsync); err != nil {
		return "", err
	}
	return final, nil
}

// AtomicWriteFile durably writes name inside dir with the crash-safe
// sequence every on-disk artifact here uses: temp file in the same
// directory, fsync, atomic rename, directory fsync. Readers never see a
// partial file; a crash leaves either the old content or the new. It is
// exported because the content-addressed store (internal/store) seals
// its meta files with the same machinery.
func AtomicWriteFile(dir, name string, data []byte, fsync bool) error {
	tmp, err := os.CreateTemp(dir, "."+name+"-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if fsync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return err
	}
	if fsync {
		SyncDir(dir)
	}
	return nil
}

// SyncDir fsyncs a directory so a rename is durable; best-effort on
// filesystems that reject directory fsync.
func SyncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// ReadSnapshot parses and validates one snapshot file. Truncation, a
// bad magic, or any section CRC mismatch returns a *CorruptError.
func ReadSnapshot(path string) (*MDState, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	corrupt := func(section, reason string) (*MDState, error) {
		return nil, &CorruptError{Path: path, Section: section, Reason: reason}
	}
	if len(b) < len(snapMagic)+4 || string(b[:len(snapMagic)]) != snapMagic {
		return corrupt("", "bad magic or truncated header")
	}
	off := len(snapMagic)
	nsect := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	sects := make(map[string][]byte, nsect)
	for i := 0; i < nsect; i++ {
		if off+2 > len(b) {
			return corrupt("", "truncated section header")
		}
		nameLen := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if off+nameLen+12 > len(b) {
			return corrupt("", "truncated section header")
		}
		name := string(b[off : off+nameLen])
		off += nameLen
		size := int(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		crc := binary.LittleEndian.Uint32(b[off:])
		off += 4
		if off+size > len(b) {
			return corrupt(name, "truncated payload")
		}
		payload := b[off : off+size]
		off += size
		if crcIEEE(payload) != crc {
			return corrupt(name, "CRC mismatch")
		}
		sects[name] = payload
	}
	return assembleState(path, sects)
}

// assembleState rebuilds an MDState from validated sections.
func assembleState(path string, sects map[string][]byte) (*MDState, error) {
	need := func(name string, size int) ([]byte, error) {
		p, ok := sects[name]
		if !ok {
			return nil, &CorruptError{Path: path, Section: name, Reason: "missing"}
		}
		if size >= 0 && len(p) != size {
			return nil, &CorruptError{Path: path, Section: name,
				Reason: fmt.Sprintf("size %d, want %d", len(p), size)}
		}
		return p, nil
	}
	meta, err := need(SectionMeta, 32)
	if err != nil {
		return nil, err
	}
	ver := binary.LittleEndian.Uint64(meta)
	if ver != stateVersion && ver != stateVersionRESPA {
		return nil, &CorruptError{Path: path, Section: SectionMeta,
			Reason: fmt.Sprintf("state version %d, want %d or %d", ver, stateVersion, stateVersionRESPA)}
	}
	s := &MDState{
		Step:       int64(binary.LittleEndian.Uint64(meta[8:])),
		ParamsHash: binary.LittleEndian.Uint64(meta[24:]),
	}
	n := int(binary.LittleEndian.Uint64(meta[16:]))
	en, err := need(SectionEnergies, 24)
	if err != nil {
		return nil, err
	}
	s.Epot = math.Float64frombits(binary.LittleEndian.Uint64(en))
	s.ELo = math.Float64frombits(binary.LittleEndian.Uint64(en[8:]))
	s.EHi = math.Float64frombits(binary.LittleEndian.Uint64(en[16:]))
	rng, err := need(SectionRNG, 24)
	if err != nil {
		return nil, err
	}
	for i := range s.RNG {
		s.RNG[i] = binary.LittleEndian.Uint64(rng[8*i:])
	}
	vecs := func(name string) ([]chem.Vec3, error) {
		p, err := need(name, 24*n)
		if err != nil {
			return nil, err
		}
		vs := make([]chem.Vec3, n)
		for i := range vs {
			for k := 0; k < 3; k++ {
				vs[i][k] = math.Float64frombits(binary.LittleEndian.Uint64(p[24*i+8*k:]))
			}
		}
		return vs, nil
	}
	if s.Pos, err = vecs(SectionPositions); err != nil {
		return nil, err
	}
	if s.Vel, err = vecs(SectionVelocities); err != nil {
		return nil, err
	}
	if s.Frc, err = vecs(SectionForces); err != nil {
		return nil, err
	}
	if ver == stateVersionRESPA {
		if s.Slow, err = vecs(SectionSlow); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ListSnapshots returns the steps of all ring files in dir, ascending.
// Validity is not checked; Load does that newest-first.
func ListSnapshots(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var steps []int64
	for _, e := range ents {
		if st := snapshotStep(e.Name()); st >= 0 {
			steps = append(steps, st)
		}
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i] < steps[j] })
	return steps, nil
}

// pruneRing removes the oldest snapshots beyond keep.
func pruneRing(dir string, keep int) {
	steps, err := ListSnapshots(dir)
	if err != nil || keep <= 0 || len(steps) <= keep {
		return
	}
	for _, st := range steps[:len(steps)-keep] {
		os.Remove(filepath.Join(dir, SnapshotName(st)))
	}
}

// corruptSection flips one payload byte of the named section in a
// snapshot file — the corrupt-section mode of the fault plan. The CRC
// is left as written, so ReadSnapshot must reject the file.
func corruptSection(path, section string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		return err
	}
	off := len(snapMagic) + 4
	for off < len(b) {
		nameLen := int(binary.LittleEndian.Uint16(b[off:]))
		name := string(b[off+2 : off+2+nameLen])
		size := int(binary.LittleEndian.Uint64(b[off+2+nameLen:]))
		payloadOff := off + 2 + nameLen + 12
		if name == section {
			if size == 0 {
				return fmt.Errorf("ckpt: section %q empty, cannot corrupt", section)
			}
			if _, err := f.WriteAt([]byte{b[payloadOff] ^ 0xff}, int64(payloadOff)); err != nil {
				return err
			}
			return f.Sync()
		}
		off = payloadOff + size
	}
	return fmt.Errorf("ckpt: section %q not found in %s", section, path)
}
