// Package ckpt is the durability layer for AIMD trajectories: versioned
// binary snapshots, a per-step write-ahead journal, and fault injection
// for testing both. The paper's production workload — week-long PBE0
// dynamics on 96 BG/Q racks — survives node failures by periodically
// persisting the full MD state and replaying forward; this package is
// that mechanism for the md driver.
//
// # Snapshot format
//
// A snapshot file (snap-%012d.ckpt) is
//
//	magic   "HFXCKPT\x01"                      (8 bytes)
//	nsect   uint32 LE                           section count
//	nsect × sections:
//	    nameLen uint16 LE, name bytes
//	    size    uint64 LE                       payload bytes
//	    crc     uint32 LE                       CRC32 (IEEE) of payload
//	    payload
//
// Every section is independently CRC-checked on read, so a torn write or
// a flipped bit is detected (and reported as a *CorruptError) rather
// than silently resumed from. Snapshots are written to a temp file in
// the same directory, fsynced, and atomically renamed into place; the
// directory keeps a ring of the last Keep good snapshots.
//
// # Journal format
//
// The journal (journal.wal) is an append-only sequence of framed
// records:
//
//	magic   "HFXJRNL\x01"                      (8 bytes)
//	records:
//	    size uint32 LE                          payload bytes
//	    crc  uint32 LE                          CRC32 (IEEE) of payload
//	    payload                                 EncodeState bytes
//
// Each record carries the *complete* MD state of one step, so replay is
// a bitwise restore, not a recomputation: the resumed run continues
// from exactly the floats the crashed run last made durable. A torn
// tail (short frame or CRC mismatch) marks the end of the valid prefix
// and is discarded. The journal is truncated after every durable
// snapshot, bounding its size to Every records.
//
// # Resume invariant
//
// Load picks the most advanced durable state: the last valid journal
// record, or the newest CRC-clean snapshot, whichever carries the
// higher step. Because velocity-Verlet is deterministic and every state
// is restored bit-for-bit, a resumed trajectory is bitwise identical to
// the uninterrupted run from the restore point on — the md tests
// enforce this to the last ulp for every injected fault mode.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"hfxmd/internal/chem"
)

// MDState is the complete, restartable state of an MD trajectory after
// a given step: everything md.Run needs to continue bit-for-bit.
type MDState struct {
	// Step is the last completed MD step. For a RESPA trajectory it
	// counts *inner* steps, so Step mod k locates the state within the
	// outer cycle.
	Step int64
	// Pos, Vel, Frc are positions, velocities and forces (bohr, a.u.).
	// For a RESPA trajectory Frc holds the cheap reference force.
	Pos, Vel, Frc []chem.Vec3
	// Slow, when non-nil, marks the state as belonging to a RESPA
	// (multiple-time-step) trajectory and holds the slow correction
	// force F_full − F_cheap of the current outer cycle. Its presence
	// switches the encoding to version 2; plain MD states (Slow nil)
	// keep the byte-identical version-1 image.
	Slow []chem.Vec3
	// Epot is the potential energy at Pos in hartree.
	Epot float64
	// ELo/EHi are the accumulated extrema of the conserved total energy
	// over all frames so far — they make EnergyDrift of a resumed run
	// equal that of the uninterrupted run.
	ELo, EHi float64
	// RNG is the serialized velocity-initialisation RNG state.
	RNG [3]uint64
	// ParamsHash fingerprints the run configuration (timestep,
	// thermostat, seed, atom list). Load refuses to hand a state to a
	// run with a different fingerprint.
	ParamsHash uint64
}

// Clone deep-copies the state.
func (s *MDState) Clone() *MDState {
	c := *s
	c.Pos = append([]chem.Vec3(nil), s.Pos...)
	c.Vel = append([]chem.Vec3(nil), s.Vel...)
	c.Frc = append([]chem.Vec3(nil), s.Frc...)
	if s.Slow != nil {
		c.Slow = append([]chem.Vec3(nil), s.Slow...)
	}
	return &c
}

// CorruptError reports a snapshot or journal frame that failed
// validation; Load treats it as "this copy does not exist" and falls
// back to the previous good one.
type CorruptError struct {
	Path    string
	Section string
	Reason  string
}

func (e *CorruptError) Error() string {
	if e.Section != "" {
		return fmt.Sprintf("ckpt: %s: section %q %s", e.Path, e.Section, e.Reason)
	}
	return fmt.Sprintf("ckpt: %s: %s", e.Path, e.Reason)
}

// ---------------------------------------------------------------------------
// State encoding: fixed-layout little-endian float64 bit images. The
// encoding is the durability *and* identity format — the aimd -json
// finalStateSha256 is a hash of exactly these bytes.

// stateVersion is the layout of plain MD states. Version 2 appends the
// RESPA slow-force vectors and is emitted only when MDState.Slow is set,
// so every pre-existing version-1 byte image (and the finalStateSha256
// of plain trajectories) is unchanged.
const (
	stateVersion      = 1
	stateVersionRESPA = 2
)

// stateEncodingVersion returns the layout version a state serialises as.
func stateEncodingVersion(s *MDState) uint64 {
	if s.Slow != nil {
		return stateVersionRESPA
	}
	return stateVersion
}

// EncodeState serialises a state to its canonical binary image.
func EncodeState(s *MDState) []byte {
	n := len(s.Pos)
	buf := make([]byte, 0, 8*8+4*24*n+8*3)
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u64(stateEncodingVersion(s))
	u64(uint64(s.Step))
	u64(uint64(n))
	f64(s.Epot)
	f64(s.ELo)
	f64(s.EHi)
	u64(s.RNG[0])
	u64(s.RNG[1])
	u64(s.RNG[2])
	u64(s.ParamsHash)
	fields := [][]chem.Vec3{s.Pos, s.Vel, s.Frc}
	if s.Slow != nil {
		fields = append(fields, s.Slow)
	}
	for _, vs := range fields {
		for _, v := range vs {
			f64(v[0])
			f64(v[1])
			f64(v[2])
		}
	}
	return buf
}

// DecodeState parses an EncodeState image (either layout version).
func DecodeState(b []byte) (*MDState, error) {
	if len(b) < 10*8 {
		return nil, fmt.Errorf("ckpt: state image too short (%d bytes)", len(b))
	}
	off := 0
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v
	}
	f64 := func() float64 { return math.Float64frombits(u64()) }
	ver := u64()
	if ver != stateVersion && ver != stateVersionRESPA {
		return nil, fmt.Errorf("ckpt: state version %d, want %d or %d", ver, stateVersion, stateVersionRESPA)
	}
	s := &MDState{}
	s.Step = int64(u64())
	n := int(u64())
	nvec := 3
	if ver == stateVersionRESPA {
		nvec = 4
	}
	if want := 10*8 + nvec*24*n; len(b) != want {
		return nil, fmt.Errorf("ckpt: state image %d bytes, want %d for %d atoms (version %d)", len(b), want, n, ver)
	}
	s.Epot = f64()
	s.ELo = f64()
	s.EHi = f64()
	s.RNG[0] = u64()
	s.RNG[1] = u64()
	s.RNG[2] = u64()
	s.ParamsHash = u64()
	vecs := func() []chem.Vec3 {
		vs := make([]chem.Vec3, n)
		for i := range vs {
			vs[i] = chem.Vec3{f64(), f64(), f64()}
		}
		return vs
	}
	s.Pos = vecs()
	s.Vel = vecs()
	s.Frc = vecs()
	if ver == stateVersionRESPA {
		s.Slow = vecs()
	}
	return s, nil
}

// crcIEEE is the checksum both formats frame payloads with.
func crcIEEE(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
