package ckpt

import (
	"encoding/binary"
	"os"
	"path/filepath"
)

// jrnlMagic identifies (and versions) the journal format.
const jrnlMagic = "HFXJRNL\x01"

// JournalName is the write-ahead journal filename inside a checkpoint
// directory.
const JournalName = "journal.wal"

// journal is the append-only per-step write-ahead log. Each record is a
// complete EncodeState image framed by size+CRC, so replay restores
// states bit-for-bit and a torn tail is detected by its frame.
type journal struct {
	f     *os.File
	path  string
	fsync bool
}

// openJournal opens (or creates) the journal for appending. An existing
// file is truncated back to its valid record prefix first — appending
// after a torn tail would hide every later record from replay — and a
// file with a damaged magic is rewritten from scratch: its content
// could not be trusted anyway.
func openJournal(path string, fsync bool) (*journal, error) {
	j := &journal{path: path, fsync: fsync}
	b, err := os.ReadFile(path)
	if err == nil && len(b) >= len(jrnlMagic) && string(b[:len(jrnlMagic)]) == jrnlMagic {
		if n := validPrefixLen(b); n < len(b) {
			if err := os.Truncate(path, int64(n)); err != nil {
				return nil, err
			}
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		j.f = f
		return j, nil
	}
	if err := j.reset(); err != nil {
		return nil, err
	}
	return j, nil
}

// validPrefixLen returns the byte length of the longest prefix of a
// journal image that frames only intact records.
func validPrefixLen(b []byte) int {
	off := len(jrnlMagic)
	for off+8 <= len(b) {
		size := int(binary.LittleEndian.Uint32(b[off:]))
		crc := binary.LittleEndian.Uint32(b[off+4:])
		if off+8+size > len(b) || crcIEEE(b[off+8:off+8+size]) != crc {
			break
		}
		off += 8 + size
	}
	return off
}

// reset truncates the journal back to a bare magic — called after every
// durable snapshot, which supersedes all journaled steps.
func (j *journal) reset() error {
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(jrnlMagic); err != nil {
		f.Close()
		return err
	}
	if j.fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	j.f = f
	return nil
}

// frame wraps a payload in the size+CRC journal framing.
func frame(payload []byte) []byte {
	b := make([]byte, 0, 8+len(payload))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crcIEEE(payload))
	return append(b, payload...)
}

// append durably adds one state record.
func (j *journal) append(s *MDState) (int, error) {
	return j.writeRaw(frame(EncodeState(s)))
}

// writeRaw appends bytes (possibly a deliberately torn prefix, for the
// fault plan) and syncs.
func (j *journal) writeRaw(b []byte) (int, error) {
	n, err := j.f.Write(b)
	if err != nil {
		return n, err
	}
	if j.fsync {
		if err := j.f.Sync(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// close releases the file handle.
func (j *journal) close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// readJournal scans a journal file and returns every valid record in
// order. Scanning stops — without error — at the first torn or
// corrupt frame: everything before it is the durable prefix. A missing
// file is an empty journal.
func readJournal(path string) ([]*MDState, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(b) < len(jrnlMagic) || string(b[:len(jrnlMagic)]) != jrnlMagic {
		return nil, nil // unreadable header: no durable records
	}
	var states []*MDState
	off := len(jrnlMagic)
	end := validPrefixLen(b)
	for off < end {
		size := int(binary.LittleEndian.Uint32(b[off:]))
		s, err := DecodeState(b[off+8 : off+8+size])
		if err != nil {
			break // framed but undecodable: treat as end of prefix
		}
		states = append(states, s)
		off += 8 + size
	}
	return states, nil
}

// journalPath returns the journal location for a checkpoint directory.
func journalPath(dir string) string { return filepath.Join(dir, JournalName) }
