package hfxmd_test

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"hfxmd"
)

func TestFacadeSCFWater(t *testing.T) {
	res, err := hfxmd.RunSCF(hfxmd.Water(), hfxmd.SCFConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	if math.Abs(res.Energy-(-74.963)) > 5e-3 {
		t.Fatalf("energy %f", res.Energy)
	}
	q := hfxmd.MullikenCharges(res)
	if len(q) != 3 {
		t.Fatalf("charges %v", q)
	}
	mu := hfxmd.DipoleMoment(res)
	if mu[2] <= 0 {
		t.Fatalf("dipole %v", mu)
	}
}

func TestFacadeXYZRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := hfxmd.WriteXYZ(&buf, hfxmd.PropyleneCarbonate()); err != nil {
		t.Fatal(err)
	}
	m, err := hfxmd.ReadXYZ(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if m.Formula() != "C4H6O3" {
		t.Fatalf("formula %s", m.Formula())
	}
}

func TestFacadeBasisRegistry(t *testing.T) {
	if len(hfxmd.AvailableBasisSets()) != 4 {
		t.Fatalf("basis sets %v", hfxmd.AvailableBasisSets())
	}
	set, err := hfxmd.BuildBasis("6-31G", hfxmd.Water())
	if err != nil {
		t.Fatal(err)
	}
	if set.NBasis != 13 {
		t.Fatalf("6-31G water NBasis %d", set.NBasis)
	}
	if _, ok := hfxmd.FunctionalByName("PBE0"); !ok {
		t.Fatal("PBE0 missing")
	}
}

func TestFacadeMachineSim(t *testing.T) {
	m, err := hfxmd.NewMachine(2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Threads() != 131072 {
		t.Fatalf("threads %d", m.Threads())
	}
	w := hfxmd.CondensedPhaseWorkload(64, 1<<12, 1)
	res := m.Simulate(w, hfxmd.PaperScheme())
	if res.Total <= 0 {
		t.Fatalf("sim %+v", res)
	}
}

func TestFacadeExchangeBuilderErrors(t *testing.T) {
	_, err := hfxmd.NewExchangeBuilder(hfxmd.Water(), "NOPE",
		hfxmd.DefaultScreening(), hfxmd.PaperExchangeOptions())
	if err == nil {
		t.Fatal("expected basis error")
	}
}

func TestFacadeScanHelpers(t *testing.T) {
	pts := []hfxmd.ScanPoint{
		{Coord: 4, Energy: -1.0, Rel: 0.02},
		{Coord: 3, Energy: -1.02, Rel: 0},
		{Coord: 2, Energy: -0.9, Rel: 0.12},
	}
	if hfxmd.BarrierHeight(pts) != 0.12 {
		t.Fatal("barrier")
	}
	if math.Abs(hfxmd.ReactionEnergy(pts)-0.1) > 1e-12 {
		t.Fatal("reaction energy")
	}
}

// ExampleRunSCF demonstrates the quickstart path; the energy matches the
// Szabo–Ostlund literature value.
func ExampleRunSCF() {
	res, err := hfxmd.RunSCF(hfxmd.Hydrogen(1.4), hfxmd.SCFConfig{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("E(H2, RHF/STO-3G) = %.4f Eh\n", res.Energy)
	// Output: E(H2, RHF/STO-3G) = -1.1167 Eh
}

// ExampleNewMachine shows the 96-rack partition of the scaling study.
func ExampleNewMachine() {
	m, err := hfxmd.NewMachine(96)
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Threads(), "hardware threads")
	// Output: 6291456 hardware threads
}

// TestBuildJKCopySurvivesRebuild pins the aliasing contract of the
// exchange facade: BuildJK returns views into the builder's pooled
// buffers that the next build overwrites in place (the trap that bit the
// UHF alpha/beta builds), while BuildJKCopy returns stable copies.
func TestBuildJKCopySurvivesRebuild(t *testing.T) {
	eb, err := hfxmd.NewExchangeBuilder(hfxmd.Water(), "STO-3G",
		hfxmd.DefaultScreening(), hfxmd.PaperExchangeOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer eb.Close()
	n := eb.NBasis()
	density := func(scale float64) *hfxmd.Matrix {
		p := &hfxmd.Matrix{Rows: n, Cols: n, Data: make([]float64, n*n)}
		for i := 0; i < n; i++ {
			p.Set(i, i, scale)
		}
		return p
	}
	p1, p2 := density(0.5), density(1.0)

	jc, kc, _ := eb.BuildJKCopy(p1)
	ja, ka, _ := eb.BuildJK(p1)
	maxDiff := func(a, b *hfxmd.Matrix, scaleB float64) float64 {
		var m float64
		for i := range a.Data {
			if d := math.Abs(a.Data[i] - scaleB*b.Data[i]); d > m {
				m = d
			}
		}
		return m
	}
	if d := maxDiff(jc, ja, 1); d != 0 {
		t.Fatalf("copy and aliased build disagree before rebuild: %g", d)
	}

	// Rebuild with the doubled density: the aliased matrices must be
	// silently overwritten while the copies stay put.
	j2, k2, _ := eb.BuildJK(p2)
	if d := maxDiff(ja, jc, 1); d == 0 {
		t.Fatal("aliased J was not overwritten by the second build — the aliasing trap this test guards vanished")
	}
	if d := maxDiff(ka, kc, 1); d == 0 {
		t.Fatal("aliased K was not overwritten by the second build")
	}
	// J and K are linear in P, so the stable copies must be exactly half
	// the doubled-density build (same quartets, same summation order).
	if d := maxDiff(j2, jc, 2); d > 1e-12 {
		t.Fatalf("BuildJKCopy J drifted after rebuild: max |J2 - 2*Jcopy| = %g", d)
	}
	if d := maxDiff(k2, kc, 2); d > 1e-12 {
		t.Fatalf("BuildJKCopy K drifted after rebuild: max |K2 - 2*Kcopy| = %g", d)
	}
}
