// Package hfxmd is a from-scratch Go reproduction of the system described
// in "Shedding Light on Lithium/Air Batteries Using Millions of Threads on
// the BG/Q Supercomputer" (Weber, Bekas, Laino, Curioni, Bertsch, Futral —
// IPDPS 2014): a scalable evaluation of Hartree–Fock exact exchange (HFX)
// for hybrid-functional ab initio molecular dynamics, together with every
// substrate it rests on and a Blue Gene/Q machine simulator that replays
// the paper's 6,291,456-thread scaling study.
//
// The package is a facade: it re-exports the stable surface of the
// internal packages so that a downstream user needs a single import.
//
// # Layers
//
//   - Chemistry: molecules, geometry builders for the paper's systems
//     (water clusters, propylene carbonate, DMSO, Li2O2), XYZ I/O.
//   - Electronic structure: Gaussian basis sets, McMurchie–Davidson
//     integrals, screening, the task-parallel HFX builder, semilocal DFT,
//     and an SCF driver for HF/LDA/PBE/PBE0.
//   - Dynamics: Born–Oppenheimer MD and reaction-coordinate scans.
//   - Machine: the BG/Q partition/torus/collective model and the strong-
//     scaling experiment harness.
//
// # Quick start
//
//	mol := hfxmd.Water()
//	res, err := hfxmd.RunSCF(mol, hfxmd.SCFConfig{Functional: hfxmd.PBE0{}})
//	if err != nil { ... }
//	fmt.Println(res.Energy)
//
// See the examples/ directory for complete programs and EXPERIMENTS.md
// for the per-figure reproduction index.
package hfxmd
