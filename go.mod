module hfxmd

go 1.22
