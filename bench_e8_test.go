package hfxmd_test

// E8 — the Li/air electrolyte chemistry figure, in two honest panels:
//
//  (a) rigid approach profiles of a Li2O2 unit along each solvent's open
//      axis (out-of-plane at PC's carbonate carbon; the open face of
//      DMSO). Both solvents form electrostatic encounter complexes; DMSO
//      binds lithium harder through its exposed S=O — which is precisely
//      why it is a good Li-electrolyte solvent.
//  (b) the degradation-prone indicator: the electrophilicity of the
//      solvent towards nucleophilic attack by the peroxide, measured by
//      the LUMO energy of the isolated molecule. PC's low-lying carbonate
//      π* is what the peroxide attacks in the paper's ring-opening
//      pathway; DMSO's LUMO lies higher — enhanced stability.
//
// Each point is a full SCF on a 10–17-atom system, so this is the most
// expensive benchmark in the suite.

import (
	"fmt"
	"testing"

	"hfxmd"
	"hfxmd/internal/phys"
)

// e8Config is shared with cmd/solvents: HF with damped, level-shifted SCF.
func e8Config() hfxmd.SCFConfig {
	scropt := hfxmd.DefaultScreening()
	scropt.Threshold = 1e-6
	return hfxmd.SCFConfig{
		Screen:        scropt,
		MaxIter:       80,
		EnergyTol:     1e-6,
		CommutatorTol: 1e-3,
		Damping:       0.5,
		DampIters:     8,
		LevelShift:    0.3,
	}
}

func BenchmarkE8SolventStability(b *testing.B) {
	coords := []float64{9.0, 5.0, 4.0}
	cfg := e8Config()

	type profile struct {
		solvent  string
		energies []float64
		rels     []float64 // kcal/mol vs the separated (first) point
		well     float64
		lumo     float64 // isolated-solvent LUMO (electrophilicity)
	}
	var profiles []profile
	for i := 0; i < b.N; i++ {
		profiles = profiles[:0]
		for _, solvent := range []string{"PC", "DMSO"} {
			pr := profile{solvent: solvent}
			for _, r := range coords {
				mol, err := hfxmd.SolvatedPeroxide(solvent, r)
				if err != nil {
					b.Fatal(err)
				}
				res, err := hfxmd.RunSCF(mol, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Logf("%s at R=%.1f not converged after %d iterations", solvent, r, res.Iterations)
				}
				pr.energies = append(pr.energies, res.Energy)
			}
			for _, e := range pr.energies {
				rel := (e - pr.energies[0]) * phys.HartreeToKcalMol
				pr.rels = append(pr.rels, rel)
				if rel < pr.well {
					pr.well = rel
				}
			}
			// Electrophilicity panel: isolated-solvent LUMO.
			var mono *hfxmd.Molecule
			if solvent == "PC" {
				mono = hfxmd.PropyleneCarbonate()
			} else {
				mono = hfxmd.DimethylSulfoxide()
			}
			res, err := hfxmd.RunSCF(mono, cfg)
			if err != nil {
				b.Fatal(err)
			}
			pr.lumo = res.LUMO()
			profiles = append(profiles, pr)
		}
	}
	b.ReportMetric(profiles[0].well, "PC-well-kcal")
	b.ReportMetric(profiles[1].well, "DMSO-well-kcal")
	b.ReportMetric(profiles[0].lumo, "PC-LUMO-Eh")
	b.ReportMetric(profiles[1].lumo, "DMSO-LUMO-Eh")
	once("e8", func() {
		fmt.Printf("\n[E8] (a) Li2O2 approach profiles (HF/STO-3G, rigid fragments)\n")
		for _, pr := range profiles {
			fmt.Printf("%s + Li2O2:\n%10s %16s %14s\n", pr.solvent, "R[bohr]", "E[Eh]", "ΔE[kcal/mol]")
			for k, r := range coords {
				fmt.Printf("%10.2f %16.8f %14.2f\n", r, pr.energies[k], pr.rels[k])
			}
		}
		fmt.Printf("encounter wells: PC %.1f, DMSO %.1f kcal/mol (DMSO's exposed S=O binds Li harder — its solvating strength)\n",
			profiles[0].well, profiles[1].well)
		fmt.Printf("\n[E8] (b) electrophilicity (LUMO of the isolated solvent):\n")
		fmt.Printf("    PC   %8.4f Eh\n    DMSO %8.4f Eh\n", profiles[0].lumo, profiles[1].lumo)
		if profiles[0].lumo < profiles[1].lumo {
			fmt.Println("PC's lower-lying carbonate π* invites nucleophilic attack by the peroxide ->")
			fmt.Println("degradation-prone; DMSO-class solvents show enhanced stability (paper's conclusion).")
		} else {
			fmt.Println("ordering unresolved at this level (paper resolves it with PBE0 + realistic liquid models)")
		}
	})
}
