#!/bin/sh
# Crash-restart smoke test for RESPA trajectories, end to end through
# the real binary: start a checkpointed multiple-time-step aimd run
# (-k 2: full SCF surface every 2nd step, spring reference between),
# SIGKILL it mid-campaign (a real kill, not an injected fault), resume
# from the directory it left behind — the restore point generally lands
# *between* outer boundaries, the harder case — and require the resumed
# run's finalStateSha256 to equal that of an uninterrupted reference
# run. Bitwise, or the smoke fails.
set -eu
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/aimd" ./cmd/aimd

STEPS=200 # outer steps: 400 inner at k=2
ARGS="-system h2 -steps $STEPS -k 2 -ref spring -dt 0.25 -temp 300 -seed 7"

# Reference: the same trajectory, never interrupted, no checkpointing.
"$tmp/aimd" $ARGS -json > "$tmp/ref.json"

sha() { sed -n 's/.*"finalStateSha256": "\([0-9a-f]*\)".*/\1/p' "$1"; }
ref_sha="$(sha "$tmp/ref.json")"
test -n "$ref_sha"

# Victim: checkpointed run, killed once the first snapshot is durable.
"$tmp/aimd" $ARGS -ckpt-dir "$tmp/ck" -ckpt-every 10 > "$tmp/victim.log" 2>&1 &
pid=$!
i=0
while [ ! -e "$tmp/ck" ] || [ -z "$(ls "$tmp/ck"/snap-*.ckpt 2>/dev/null)" ]; do
	i=$((i + 1))
	if [ "$i" -gt 600 ]; then
		echo "smoke_mts: no snapshot appeared before the run ended" >&2
		exit 1
	fi
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "smoke_mts: victim finished before it could be killed" >&2
		exit 1
	fi
	sleep 0.05
done
kill -KILL "$pid"
wait "$pid" 2>/dev/null || true

# Resume: must report a restore point and finish with the reference hash.
"$tmp/aimd" $ARGS -ckpt-dir "$tmp/ck" -ckpt-every 10 -resume -json > "$tmp/resumed.json"
res_sha="$(sha "$tmp/resumed.json")"
from="$(sed -n 's/.*"resumedFromStep": \([0-9]*\).*/\1/p' "$tmp/resumed.json")"

test -n "$from" || { echo "smoke_mts: resumed run reports no restore point" >&2; exit 1; }
if [ "$res_sha" != "$ref_sha" ]; then
	echo "smoke_mts: FAIL: resumed final state $res_sha != reference $ref_sha" >&2
	exit 1
fi
echo "smoke_mts: ok — killed at >= inner step $from, resumed to $STEPS outer steps, final state $ref_sha"
