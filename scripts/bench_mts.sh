#!/bin/sh
# Benchmark multiple-time-step AIMD (hfxscale -exp m1) and emit
# BENCH_mts.json: SCF iterations per inner step and per-atom energy
# drift at RESPA k ∈ {1, 2, 4} over the same simulated time span, the
# cold-per-step baseline and the warm/cold reuse ratio, and the
# mid-cycle crash/resume sha256 pair. The run aborts itself if any
# acceptance gate fails — the k² drift bound, the committed warm/cold
# reuse factor, or bitwise resume identity — so a written file is a
# passing file. This is the committed bench baseline scripts/check.sh
# re-validates.
#
# Usage: scripts/bench_mts.sh [output.json]
# M1_STEPS overrides the simulated time span (default 16 inner steps).
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_mts.json}"

go run ./cmd/hfxscale -exp m1 -m1-steps "${M1_STEPS:-16}" -m1-out "$out"
