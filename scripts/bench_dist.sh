#!/bin/sh
# Benchmark the rank-distributed Fock build across rank counts (1, 2, 4,
# 8 ranks on the dimension-exchange schedule, plus 4 ranks binomial) and
# emit BENCH_dist.json: ns/op, per-build collective traffic in bytes,
# measured schedule steps and allocs/op per configuration. This file is
# the committed distributed-build baseline.
#
# Usage: scripts/bench_dist.sh [output.json]
# BENCHTIME overrides -benchtime (default 3x).
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_dist.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test ./internal/hfx/ -run '^$' \
	-bench 'BenchmarkDistBuildR(1|2|4|8|4Binomial)$' \
	-benchtime "${BENCHTIME:-3x}" -count 1 | tee "$raw"

awk '
/^BenchmarkDistBuild/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	ns = "null"; cb = "null"; st = "null"; al = "null"
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op")        ns = $i
		if ($(i+1) == "commbytes/op") cb = $i
		if ($(i+1) == "steps/op")     st = $i
		if ($(i+1) == "allocs/op")    al = $i
	}
	n++
	lines[n] = sprintf("  \"%s\": {\"ns_per_op\": %s, \"comm_bytes_per_op\": %s, \"steps_per_op\": %s, \"allocs_per_op\": %s}", name, ns, cb, st, al)
}
END {
	if (n == 0) { print "bench_dist: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
	print "{"
	for (i = 1; i <= n; i++) printf "%s%s\n", lines[i], (i < n ? "," : "")
	print "}"
}' "$raw" > "$out"

echo "wrote $out"
