#!/bin/sh
# Benchmark the checkpoint layer and emit BENCH_ckpt.json: ns/op and
# allocs/op for the canonical state encoding, one durable (fsynced) ring
# snapshot, one durable journal append (the per-MD-step overhead when
# checkpointing is on), the same append without fsync (format cost
# alone), and a worst-case resume replaying a 100-record journal. This
# file is the committed checkpoint-overhead baseline.
#
# Usage: scripts/bench_ckpt.sh [output.json]
# BENCHTIME overrides -benchtime (default 50x).
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_ckpt.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test ./internal/ckpt/ -run '^$' \
	-bench 'Benchmark(EncodeState|SnapshotWrite|JournalAppend|JournalAppendNoFsync|ResumeReplay)$' \
	-benchtime "${BENCHTIME:-50x}" -count 1 | tee "$raw"

awk '
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	ns = "null"; al = "null"
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op")     ns = $i
		if ($(i+1) == "allocs/op") al = $i
	}
	n++
	lines[n] = sprintf("  \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, al)
}
END {
	if (n == 0) { print "bench_ckpt: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
	print "{"
	for (i = 1; i <= n; i++) printf "%s%s\n", lines[i], (i < n ? "," : "")
	print "}"
}' "$raw" > "$out"

echo "wrote $out"
