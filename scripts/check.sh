#!/bin/sh
# Repository check: vet, build, race-enabled tests, and the steady-state
# allocation guard (BenchmarkBuildJKPooled must report 0 allocs/op —
# enforced in-suite by TestSteadyStateBuildAllocs, surfaced here for
# inspection).
set -eux

go vet ./...
go build ./...
go test -race ./...
go test ./internal/hfx/ -run '^$' -bench 'BenchmarkBuildJKPooled$' -benchtime 3x
