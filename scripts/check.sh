#!/bin/sh
# Repository check: vet, build, race-enabled tests, the steady-state
# allocation guards (BenchmarkBuildJKPooled and BenchmarkBuildJKSemiDirect
# must report 0 allocs/op — enforced in-suite by TestSteadyStateBuildAllocs
# and TestSemiDirectReplayAllocs, surfaced here for inspection), an
# explicit race pass over the semi-direct cache correctness tests and the
# hfxd job service (its concurrency criteria: >= 8 parallel jobs, queue
# backpressure, drain, no goroutine leak), the hfxd end-to-end smoke test,
# and the Fock bench regression gate: a fresh scripts/bench_fock.sh run
# must not regress semi-direct ns/op by >20% against the committed
# BENCH_fock.json baseline. The mprt runtime gets its own race pass (the
# collectives and the bitwise-pinned distributed build), a model gate
# (TestMeasuredStepsMatchModel fails when the measured collective step
# counters diverge from the bgq machine-model prediction), and a 4-rank
# hfxscale d1 smoke run (expD1 itself aborts on model divergence).
# The checkpoint layer gets a race pass over every fault-injected resume
# path plus a real SIGKILL crash-restart smoke (scripts/smoke_ckpt.sh)
# that diffs the resumed run's final-state hash against an
# uninterrupted reference. The fleet router and workload generator get
# their own race pass (routing policies, typed failover, trace replay),
# and a seeded-replay determinism smoke: the same c1 workload replayed
# twice must print identical per-SLO-class counts and digests.
# The tiered store gets a race pass (torn tails, corrupt-CRC skips,
# concurrent get/put/promote), a SIGKILL kill-and-restart smoke
# (scripts/smoke_store.sh: the repeated job must be a disk-warm hit with
# zero Fock builds on the restarted daemon), and a fast bench_store.sh
# run whose in-run gates enforce the tier latency ordering, the bitwise
# ERI spill round trip, and the shared-store fleet hit-ratio gain.
# The work-stealing runtime gets a race pass (deques, victim order,
# bitwise steal-vs-static pin under noise, calibrator convergence, the
# calibrated admission/routing seams) and the full w1 gate run: stealing
# must beat static measured balance under >=20% mispredicts plus a
# straggler rank, every arm must stay bitwise identical, and the final
# build's calibrated prediction error must undercut the raw cost model.
# The RESPA multiple-time-step layer gets a race pass (the k-sweep drift
# gates, bitwise resume on and between outer boundaries, the cross-step
# session's warm-start/invalidation tests, the hfxd trajectory job),
# a SIGKILL crash-restart smoke over a k=2 campaign (scripts/smoke_mts.sh,
# resume must land bitwise on the uninterrupted reference), and the full
# m1 gate run: the k=4 drift must stay within the committed k^2 bound of
# the k=1 baseline, the warm/cold SCF-iteration ratio must undercut the
# committed reuse factor, and the in-process mid-cycle crash/resume must
# be bitwise identical.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
# Semi-direct/early-exit correctness under the race detector, explicitly.
go test -race -count=1 ./internal/hfx/ -run 'SemiDirect|EarlyExit|Cache|SteadyState'
# Alloc guards: one iteration is enough — the benchmarks fail themselves
# on warm-cache misses, and the allocs/op column must read 0.
go test ./internal/hfx/ -run '^$' -bench 'BenchmarkBuildJK(Pooled|SemiDirect)$' -benchtime 1x
go test -race -count=1 ./internal/server/ ./internal/trace/
# mprt runtime and the rank-distributed build: race pass over the
# collectives, the bitwise single-rank pin, and the torus embedding.
go test -race -count=1 ./internal/mprt/ ./internal/torus/
go test -race -count=1 ./internal/hfx/ -run 'TestDistributedBuildMatchesSingleRank|TestDistBuilder'
# Model gate: measured collective steps must equal the bgq machine-model
# prediction for both schedules on every tested world size.
go test -count=1 ./internal/mprt/ -run 'TestMeasuredStepsMatchModel'
# 4-rank distributed scaling smoke: expD1 log.Fatals if the measured
# step counters diverge from the model.
go run ./cmd/hfxscale -exp d1 -d1-ranks 1,4 -d1-waters 1
scripts/smoke_hfxd.sh
# Checkpoint/restart: race pass over the durability layer, the bitwise
# resume tests (every fault mode: clean crash, torn journal write,
# corrupt snapshot section), the rank-fault recovery pin, and the hfxd
# job-journal boot replay.
go test -race -count=1 ./internal/ckpt/
go test -race -count=1 ./internal/md/ -run 'TestResume|TestStepError|TestSCFNonConvergence'
go test -race -count=1 ./internal/hfx/ -run 'TestDistBuilderRankFaultRecovery'
go test -race -count=1 ./internal/server/ -run 'TestJobJournal|TestServerRestoresJournaledJobsOnBoot|TestServerJournalsLiveJobs'
# Crash-restart smoke: SIGKILL a checkpointed aimd run, resume it, and
# require the resumed final state hash to equal the uninterrupted
# reference — bitwise.
scripts/smoke_ckpt.sh

# Fleet router + workload generator: race pass over the routing
# policies, typed draining/busy failover, the client retry loop, and
# both replay modes.
go test -race -count=1 ./internal/fleet/ ./internal/workload/
go test -race -count=1 ./internal/server/ -run 'TestClientDrainingErrorTyped|TestClientSubmitRetryWaitsOutBusy|TestRetryAfterIncludesInflightWork|TestCacheHitIDsDistinctFromJournaledJobIDs'
# Seeded-replay determinism smoke: two independent c1 runs (serial
# replays only) must agree on every per-class count and digest line.
rep1="$(mktemp)"; rep2="$(mktemp)"
go run ./cmd/hfxscale -exp c1 -c1-events 12 -c1-live=false | grep '^replay-digest' > "$rep1"
go run ./cmd/hfxscale -exp c1 -c1-events 12 -c1-live=false | grep '^replay-digest' > "$rep2"
diff "$rep1" "$rep2"
test -s "$rep1"
rm -f "$rep1" "$rep2"

# Tiered store: race pass over the crash-safety tests (torn active tail,
# corrupt-CRC record skip, concurrent get/put/promote churn), the server
# integration (restart disk-warm hit, ERI spill/warm, prefix density
# seeding, store/journal dir validation), and the shared-store fleet pin.
go test -race -count=1 ./internal/store/
go test -race -count=1 ./internal/hfx/ -run 'TestSpill'
go test -race -count=1 ./internal/server/ -run 'TestStoreDir|TestRestartAnswersFromDisk|TestERISpillWarms|TestPrefixDensity|TestDensityChains|TestCacheByteBudget'
go test -race -count=1 ./internal/fleet/ -run 'TestClusterSharedStore'
# SIGKILL kill-and-restart smoke: disk-warm hit, zero Fock builds.
scripts/smoke_store.sh
# Store bench (fast mode): the run fails itself if any acceptance gate
# (tier ordering, bitwise spill warm, fleet hit-ratio gain) breaks.
store_json="$(mktemp)"
S1_FAST=1 scripts/bench_store.sh "$store_json"
rm -f "$store_json"

# Work-stealing runtime: race pass over the deque/victim-order unit
# tests, the bitwise steal-vs-static pins (including injected mispredict
# noise across rank counts), the calibration loop, the pathological
# Balance property tests, and the calibrated admission/routing seams in
# the server and fleet.
go test -race -count=1 ./internal/steal/ ./internal/sched/
go test -race -count=1 ./internal/hfx/ -run 'TestStealBuild|TestStealRecoversBalance|TestStealBuilder'
go test -race -count=1 ./internal/server/ -run 'TestPriceRequestCalibrated|TestServerCalibrated|TestRetryAfterUsesCalibratedCosts|TestServerCalibratorPersists'
go test -race -count=1 ./internal/fleet/ -run 'TestFleetPriceMemo|TestFleetRoutingShifts'
# W1 gate run: aborts itself if any arm's J/K checksum diverges, if
# stealing fails to beat the static measured balance on the >=20%
# mispredict + straggler row, or if the final build's calibrated error
# is not below the raw model's.
w1_json="$(mktemp)"
go run ./cmd/hfxscale -exp w1 -w1-out "$w1_json"
rm -f "$w1_json"

# RESPA multiple time stepping: race pass over the integrator (drift
# across k, bitwise resume on and between outer boundaries, split
# fingerprint rejection), the cross-step session (ΔP warm start,
# pair-list invalidation bound, seeded FD displacements), and the hfxd
# trajectory job (streamed steps, cancel-names-step, journal replay).
go test -race -count=1 ./internal/respa/
go test -race -count=1 ./internal/md/ -run 'TestSession|TestForcesNSeeded'
go test -race -count=1 ./internal/ckpt/ -run 'TestRespa|TestPlainStateImageUnchanged'
go test -race -count=1 ./internal/server/ -run 'TestServerTrajectory'
# SIGKILL crash-restart smoke over a k=2 campaign: the resumed run's
# final state hash must equal the uninterrupted reference — bitwise.
scripts/smoke_mts.sh
# M1 gate run: aborts itself if the k=4 drift breaks the k^2 bound (or
# the absolute ceiling), if the warm/cold SCF-iteration ratio misses
# the committed reuse factor, or if the mid-cycle crash/resume is not
# bitwise identical to the uninterrupted reference.
m1_json="$(mktemp)"
scripts/bench_mts.sh "$m1_json"
rm -f "$m1_json"

# Fock bench regression gate against the committed baseline.
fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT
scripts/bench_fock.sh "$fresh"
extract_ns() {
	sed -n 's/.*"BenchmarkBuildJKSemiDirect": {"ns_per_op": \([0-9.e+]*\).*/\1/p' "$1"
}
base_ns="$(extract_ns BENCH_fock.json)"
new_ns="$(extract_ns "$fresh")"
test -n "$base_ns" && test -n "$new_ns"
awk -v base="$base_ns" -v new="$new_ns" 'BEGIN {
	if (new > 1.2 * base) {
		printf "FAIL: semi-direct Fock build regressed: %.0f ns/op vs baseline %.0f (>20%%)\n", new, base
		exit 1
	}
	printf "semi-direct Fock build: %.0f ns/op vs baseline %.0f (ok)\n", new, base
}'
