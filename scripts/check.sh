#!/bin/sh
# Repository check: vet, build, race-enabled tests, the steady-state
# allocation guard (BenchmarkBuildJKPooled must report 0 allocs/op —
# enforced in-suite by TestSteadyStateBuildAllocs, surfaced here for
# inspection), an explicit race pass over the hfxd job service (its
# concurrency criteria: >= 8 parallel jobs, queue backpressure, drain,
# no goroutine leak), and the hfxd end-to-end smoke test (boot on a
# random port, cache hit on the second identical job, clean SIGTERM
# drain).
set -eux

go vet ./...
go build ./...
go test -race ./...
go test ./internal/hfx/ -run '^$' -bench 'BenchmarkBuildJKPooled$' -benchtime 3x
go test -race -count=1 ./internal/server/ ./internal/trace/
"$(dirname "$0")/smoke_hfxd.sh"
