#!/bin/sh
# Crash-restart smoke test for the checkpoint layer, end to end through
# the real binary: start a checkpointed aimd trajectory, SIGKILL it
# mid-run (a real kill, not an injected fault), resume from the
# directory it left behind, and require the resumed run's
# finalStateSha256 — a hash of the complete final MD state — to equal
# that of an uninterrupted reference run. Bitwise, or the smoke fails.
set -eu
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/aimd" ./cmd/aimd

STEPS=400
ARGS="-system h2 -steps $STEPS -dt 0.4 -temp 300 -seed 7"

# Reference: the same trajectory, never interrupted, no checkpointing.
"$tmp/aimd" $ARGS -json > "$tmp/ref.json"

sha() { sed -n 's/.*"finalStateSha256": "\([0-9a-f]*\)".*/\1/p' "$1"; }
ref_sha="$(sha "$tmp/ref.json")"
test -n "$ref_sha"

# Victim: checkpointed run, killed once the first snapshot is durable.
"$tmp/aimd" $ARGS -ckpt-dir "$tmp/ck" -ckpt-every 10 > "$tmp/victim.log" 2>&1 &
pid=$!
i=0
while [ ! -e "$tmp/ck" ] || [ -z "$(ls "$tmp/ck"/snap-*.ckpt 2>/dev/null)" ]; do
	i=$((i + 1))
	if [ "$i" -gt 600 ]; then
		echo "smoke_ckpt: no snapshot appeared before the run ended" >&2
		exit 1
	fi
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "smoke_ckpt: victim finished before it could be killed" >&2
		exit 1
	fi
	sleep 0.05
done
kill -KILL "$pid"
wait "$pid" 2>/dev/null || true

# Resume: must report a restore point and finish with the reference hash.
"$tmp/aimd" $ARGS -ckpt-dir "$tmp/ck" -ckpt-every 10 -resume -json > "$tmp/resumed.json"
res_sha="$(sha "$tmp/resumed.json")"
from="$(sed -n 's/.*"resumedFromStep": \([0-9]*\).*/\1/p' "$tmp/resumed.json")"

test -n "$from" || { echo "smoke_ckpt: resumed run reports no restore point" >&2; exit 1; }
if [ "$res_sha" != "$ref_sha" ]; then
	echo "smoke_ckpt: FAIL: resumed final state $res_sha != reference $ref_sha" >&2
	exit 1
fi
echo "smoke_ckpt: ok — killed at >= step $from, resumed to step $STEPS, final state $ref_sha"
