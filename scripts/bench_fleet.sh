#!/bin/sh
# Benchmark the hfxd fleet router and emit BENCH_fleet.json: the full
# routing-policy x load-shape matrix of `hfxscale -exp c1` — for every
# (policy, load) cell a deterministic serial replay (per-SLO-class
# counts, per-instance routing and cache hit ratios, replay digests) and
# a live wall-clock-paced replay (per-class latency percentiles,
# throughput, Jain fairness, 429/retry counts). The run itself enforces
# the two fleet invariants: identical result signatures across all
# policies, and cache-affinity beating round-robin on warm-hit ratio
# under the repeated-key traffic. This file is the committed fleet
# routing baseline.
#
# Usage: scripts/bench_fleet.sh [output.json]
# C1_EVENTS / C1_INSTANCES / C1_SEED override the matrix size and seed.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_fleet.json}"

go run ./cmd/hfxscale -exp c1 \
	-c1-instances "${C1_INSTANCES:-2}" \
	-c1-events "${C1_EVENTS:-24}" \
	-c1-seed "${C1_SEED:-1}" \
	-c1-out "$out"

echo "wrote $out"
