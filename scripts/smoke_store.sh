#!/bin/sh
# Kill-and-restart smoke test for the tiered store: boot hfxd with a
# store directory, run one SCF job, SIGKILL the daemon (no drain, no
# graceful close), boot a fresh daemon over the same directory, and
# assert the repeated job is answered from the disk tier — cacheHit true
# with the restarted process reporting hfx.fock_builds = 0 (it never did
# quantum-chemistry work).
#
# Needs only a POSIX shell + go; uses hfxd's own client mode.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT INT TERM

go build -o "$tmp/hfxd" ./cmd/hfxd

start_server() {
    log="$1"
    "$tmp/hfxd" -addr 127.0.0.1:0 -workers 1 -store-dir "$tmp/store" >"$log" 2>&1 &
    pid=$!
    url=""
    for _ in $(seq 1 100); do
        url=$(sed -n 's/^hfxd: listening on \(http:\/\/[^ ]*\).*/\1/p' "$log")
        [ -n "$url" ] && break
        kill -0 "$pid" 2>/dev/null || { echo "hfxd died on startup:"; cat "$log"; exit 1; }
        sleep 0.1
    done
    [ -n "$url" ] || { echo "no handshake from hfxd:"; cat "$log"; exit 1; }
}

start_server "$tmp/boot1.log"
echo "smoke-store: first server at $url (store $tmp/store)"

"$tmp/hfxd" -submit -url "$url" -system water -basis STO-3G >"$tmp/first.json"
grep -q '"state": "done"' "$tmp/first.json"
grep -q '"cacheHit": false' "$tmp/first.json"
grep -q '"converged": true' "$tmp/first.json"

# Crash, not drain: SIGKILL leaves no chance to flush anything that was
# not already durable.
kill -9 "$pid"
wait "$pid" 2>/dev/null || true

start_server "$tmp/boot2.log"
echo "smoke-store: restarted server at $url"

"$tmp/hfxd" -submit -url "$url" -system water -basis STO-3G >"$tmp/second.json"
grep -q '"state": "done"' "$tmp/second.json"
grep -q '"cacheHit": true' "$tmp/second.json" || {
    echo "repeated job after SIGKILL+restart was not a disk-warm hit:"
    cat "$tmp/second.json"; exit 1; }

# The stored payload must be byte-identical economics: same energy.
e1=$(sed -n 's/.*"energy": \([^,]*\),.*/\1/p' "$tmp/first.json" | head -1)
e2=$(sed -n 's/.*"energy": \([^,]*\),.*/\1/p' "$tmp/second.json" | head -1)
[ "$e1" = "$e2" ] || { echo "disk tier returned a different energy: $e1 vs $e2"; exit 1; }

# The restarted process must have done zero Fock builds: the answer came
# from the store, not from recomputation.
if command -v curl >/dev/null 2>&1; then
    metrics=$(curl -s "$url/metrics?format=json")
    echo "$metrics" | grep -q '"store.disk_hits"' || {
        echo "metrics do not expose the store counters:"; echo "$metrics"; exit 1; }
    echo "$metrics" | grep -q '"hfx.fock_builds": 0' || {
        echo "restarted server recomputed instead of reading the disk tier:"
        echo "$metrics"; exit 1; }
fi

kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
kill -9 "$pid" 2>/dev/null || true

echo "smoke-store: OK (SIGKILL survived, disk-warm hit, zero Fock builds after restart)"
