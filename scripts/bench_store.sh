#!/bin/sh
# Benchmark the tiered content-addressed store and emit BENCH_store.json:
# the `hfxscale -exp s1` report — cold vs disk-warm vs RAM-warm service
# latency through a restarted hfxd instance, hot-tier vs disk-tier Get
# micro-latency, the ERI spill/warm round trip (bitwise-checked, with
# cold vs warmed build walls), and the fleet-wide cache hit-ratio gain
# from sharing one store across instances. The run enforces its own
# acceptance gates (cold > disk-warm, disk Get > hot Get, warmed build
# computes nothing and matches bitwise, shared store raises the hit
# ratio) and exits non-zero if any fail. This file is the committed
# store baseline.
#
# Usage: scripts/bench_store.sh [output.json]
# S1_TRIALS / S1_WATERS override the trial count and ERI system size;
# S1_FAST=1 is shorthand for a quick CI run.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_store.json}"

trials="${S1_TRIALS:-25}"
waters="${S1_WATERS:-2}"
if [ "${S1_FAST:-0}" = "1" ]; then
	trials=5
	waters=1
fi

go run ./cmd/hfxscale -exp s1 \
	-s1-trials "$trials" \
	-s1-waters "$waters" \
	-s1-out "$out"

echo "wrote $out"
