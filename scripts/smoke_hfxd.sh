#!/bin/sh
# End-to-end smoke test for the hfxd job service: boot the daemon on a
# random port, submit the same water/STO-3G SCF job twice, assert the
# second submission is answered from the result cache, and check that
# SIGTERM drains cleanly.
#
# Needs only a POSIX shell + go; uses hfxd's own client mode instead of
# curl/jq so it runs anywhere the toolchain does.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT INT TERM

go build -o "$tmp/hfxd" ./cmd/hfxd

"$tmp/hfxd" -addr 127.0.0.1:0 -workers 2 >"$tmp/hfxd.log" 2>&1 &
pid=$!

# The first stdout line is the handshake: "hfxd: listening on http://ADDR (...)".
url=""
for _ in $(seq 1 100); do
    url=$(sed -n 's/^hfxd: listening on \(http:\/\/[^ ]*\).*/\1/p' "$tmp/hfxd.log")
    [ -n "$url" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "hfxd died on startup:"; cat "$tmp/hfxd.log"; exit 1; }
    sleep 0.1
done
[ -n "$url" ] || { echo "no handshake from hfxd:"; cat "$tmp/hfxd.log"; exit 1; }
echo "smoke: server at $url"

"$tmp/hfxd" -submit -url "$url" -system water -basis STO-3G >"$tmp/first.json"
grep -q '"state": "done"' "$tmp/first.json"
grep -q '"cacheHit": false' "$tmp/first.json"
grep -q '"converged": true' "$tmp/first.json"

"$tmp/hfxd" -submit -url "$url" -system water -basis STO-3G >"$tmp/second.json"
grep -q '"state": "done"' "$tmp/second.json"
grep -q '"cacheHit": true' "$tmp/second.json" || {
    echo "second identical job was not a cache hit:"; cat "$tmp/second.json"; exit 1; }

# The energies must agree exactly: the hit is the stored payload.
e1=$(sed -n 's/.*"energy": \([^,]*\),.*/\1/p' "$tmp/first.json" | head -1)
e2=$(sed -n 's/.*"energy": \([^,]*\),.*/\1/p' "$tmp/second.json" | head -1)
[ "$e1" = "$e2" ] || { echo "cache returned a different energy: $e1 vs $e2"; exit 1; }

# /metrics must report the hit (skipped when curl is unavailable).
if command -v curl >/dev/null 2>&1; then
    metrics=$(curl -s "$url/metrics?format=json")
    echo "$metrics" | grep -q '"cache.hits": 1' || {
        echo "metrics do not show the cache hit:"; echo "$metrics"; exit 1; }
    echo "$metrics" | grep -q '"jobs.executed": 1' || {
        echo "cache hit should not have executed a second job:"; echo "$metrics"; exit 1; }
fi

# Graceful drain: SIGTERM, then the process must exit cleanly.
kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
    echo "hfxd did not drain after SIGTERM:"; cat "$tmp/hfxd.log"; exit 1
fi
wait "$pid" 2>/dev/null || true
grep -q "drained cleanly" "$tmp/hfxd.log" || {
    echo "drain was not clean:"; cat "$tmp/hfxd.log"; exit 1; }

echo "smoke: OK (cache hit verified, clean drain)"
