#!/bin/sh
# Benchmark the three Fock-build configurations — direct pooled, warm
# semi-direct (full ERI cache replay), and incremental+semi-direct (ΔP
# build on a warm cache) — and emit BENCH_fock.json: ns/op, quartets
# computed per build, cache hit ratio and allocs/op per configuration.
# This file is the committed bench baseline; scripts/check.sh fails when
# the semi-direct ns/op regresses >20% against it.
#
# Usage: scripts/bench_fock.sh [output.json]
# BENCHTIME overrides -benchtime (default 3x).
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_fock.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test ./internal/hfx/ -run '^$' \
	-bench 'BenchmarkBuildJK(Pooled|SemiDirect|IncrementalSemiDirect)$' \
	-benchtime "${BENCHTIME:-3x}" -count 1 | tee "$raw"

awk '
/^BenchmarkBuildJK/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	ns = "null"; q = "null"; hr = "null"; al = "null"
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op")       ns = $i
		if ($(i+1) == "quartets/op") q  = $i
		if ($(i+1) == "hitratio")    hr = $i
		if ($(i+1) == "allocs/op")   al = $i
	}
	n++
	lines[n] = sprintf("  \"%s\": {\"ns_per_op\": %s, \"quartets_per_op\": %s, \"cache_hit_ratio\": %s, \"allocs_per_op\": %s}", name, ns, q, hr, al)
}
END {
	if (n == 0) { print "bench_fock: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
	print "{"
	for (i = 1; i <= n; i++) printf "%s%s\n", lines[i], (i < n ? "," : "")
	print "}"
}' "$raw" > "$out"

echo "wrote $out"
