#!/bin/sh
# Benchmark deterministic work stealing under cost-model mispredicts and
# emit BENCH_steal.json: the W1 noise sweep (static vs stealing balance
# at 0/20/50% mispredicts and under a 4x straggler rank, with the
# bitwise J/K checksum per arm) plus the online-calibration error table.
# The run gates itself: all arms must stay bitwise identical, stealing
# must beat the static measured balance on the straggler row, and the
# final build's calibrated prediction error must undercut the raw cost
# model's. This file is the committed work-stealing baseline.
#
# Usage: scripts/bench_steal.sh [output.json]
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_steal.json}"

go run ./cmd/hfxscale -exp w1 -w1-out "$out"
